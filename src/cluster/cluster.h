// Cluster substrate: machines with SKU-specific local SSDs, task placement,
// and temp-data storage accounting over time.
//
// This module plays the role of the Cosmos cluster for back-testing: it
// replays generated job instances at machine granularity to measure local
// SSD pressure (Figure 2 left), and evaluates how checkpoint plans change
// that pressure (Section 6.2) and per-machine container capacity (§6.5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dag/job_graph.h"
#include "workload/job_instance.h"

namespace phoebe::cluster {

/// \brief Hardware SKU: local SSD capacity and container slots.
struct SkuInfo {
  std::string name;
  double ssd_gb = 1000.0;   ///< local SSD reserved for temp data
  int slots = 16;           ///< container slots per machine
  double weight = 1.0;      ///< share of the fleet with this SKU
};

/// \brief How a stage's tasks (and hence its temp output) are placed.
enum class Placement {
  kRandomSpread,  ///< random machines (YARN-style, storage-oblivious; the
                  ///< paper's footnote 1 discusses why this stays the default)
  kLeastLoaded,   ///< place on the machines with the least temp data — the
                  ///< "SSD-aware scheduler" alternative the paper rejects as
                  ///< operationally expensive; kept for the ablation bench
};

/// \brief Cluster shape and physical constants.
struct ClusterConfig {
  int num_machines = 200;
  Placement placement = Placement::kRandomSpread;
  std::vector<SkuInfo> skus = {
      {"Gen3_balanced", 1800.0, 16, 0.45},
      {"Gen4_compute", 1200.0, 24, 0.35},   // storage-skewed: more CPU per SSD GB
      {"Gen5_dense", 3600.0, 32, 0.20},
  };
  double mtbf_hours = 12.0;          ///< mean time between failures per task slot
  double local_write_gbps = 1.2;     ///< local SSD write bandwidth per task
  double global_write_gbps = 0.60;   ///< durable-store write bandwidth per task
  int global_replication = 3;
  uint64_t seed = 101;

  Status Validate() const;
};

/// \brief One machine in the simulated fleet.
struct Machine {
  int id = 0;
  int sku = 0;  ///< index into ClusterConfig::skus
};

/// \brief Decomposition of one job induced by a cut: stages before the cut
/// (the z_u = 1 set, paper §5), with checkpoint stages derived from it.
struct CutSet {
  std::vector<bool> before_cut;  ///< indexed by StageId; empty = no checkpoint

  bool empty() const { return before_cut.empty(); }
};

/// Checkpoint stages of a cut: before-cut stages with an edge to a stage
/// after the cut (their outputs must persist to global storage).
std::vector<dag::StageId> CheckpointStages(const dag::JobGraph& graph,
                                           const CutSet& cut);

/// True iff `u` is a checkpoint stage of `cut` (allocation-free membership
/// test for hot paths; CheckpointStages is exactly the stages this accepts,
/// in ascending id order). `cut` must be non-empty and sized to the graph.
bool IsCheckpointStage(const dag::JobGraph& graph, const CutSet& cut, dag::StageId u);

/// Global storage bytes a cut requires: sum of checkpoint stages' outputs.
double GlobalStorageBytes(const workload::JobInstance& job, const CutSet& cut);

/// Time (relative to job start) at which all before-cut stages have finished
/// and their temp data can be cleared. Returns job end time for empty cuts.
double CutClearTime(const workload::JobInstance& job, const CutSet& cut);

/// \brief Per-machine temp-storage usage measured by a replay.
struct TempUsageReport {
  std::vector<double> peak_bytes;       ///< per machine
  std::vector<double> peak_fraction;    ///< per machine, relative to SSD size
  std::vector<int> machine_sku;         ///< per machine
  double total_byte_seconds = 0.0;      ///< integral of temp usage over time
  double fleet_peak_bytes = 0.0;

  /// Fraction of machines of `sku` whose peak exceeded `fraction` of SSD.
  double FractionAbove(int sku, double fraction) const;
};

/// \brief Replays job instances on a simulated fleet.
class ClusterSimulator {
 public:
  explicit ClusterSimulator(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  const std::vector<Machine>& machines() const { return machines_; }

  /// Replay the jobs (submitted at their in-day submit times) and account
  /// temp-storage bytes per machine. `cuts`, if non-null, maps job index ->
  /// CutSet and clears before-cut temp data at the cut clear time.
  TempUsageReport SimulateTempUsage(const std::vector<workload::JobInstance>& jobs,
                                    const std::vector<CutSet>* cuts = nullptr);

  /// Maximum container slots per machine of `sku` such that the expected
  /// temp-data footprint fits the SSD: slots * per-container footprint <=
  /// ssd_gb. Used for the §6.5 "+28% containers" anecdote.
  int MaxContainersForFootprint(int sku, double bytes_per_container) const;

 private:
  ClusterConfig config_;
  std::vector<Machine> machines_;
  Rng rng_;
};

}  // namespace phoebe::cluster
