// Checkpoint write-impact replay (paper §6.4, Figure 15).
//
// Materializing a checkpoint adds a parallel write of the stage output to
// the 3x-replicated global store. The write runs alongside the rest of the
// job, so it only extends job latency when it outlasts the remaining work.
#pragma once

#include "cluster/cluster.h"
#include "workload/job_instance.h"

namespace phoebe::cluster {

/// \brief Latency / IO impact of one job's checkpoint plan.
struct ImpactReport {
  double base_latency = 0.0;      ///< job runtime without checkpointing
  double new_latency = 0.0;       ///< with checkpoint writes
  double latency_increase = 0.0;  ///< fraction, (new-base)/base

  double base_io_seconds = 0.0;   ///< total task-seconds spent on IO
  double new_io_seconds = 0.0;
  double io_increase = 0.0;       ///< fraction

  double checkpointed_bytes = 0.0;      ///< data persisted to global storage
  double checkpointed_fraction = 0.0;   ///< vs total temp bytes
  double temp_saving_fraction = 0.0;    ///< byte-seconds cleared early / total
};

/// Evaluate the impact of `cut` on `job` under the cluster's bandwidth and
/// replication constants. An empty cut yields zero impact.
ImpactReport EvaluateImpact(const workload::JobInstance& job, const CutSet& cut,
                            const ClusterConfig& config);

}  // namespace phoebe::cluster
