#include "cluster/impact.h"

#include <algorithm>

namespace phoebe::cluster {

ImpactReport EvaluateImpact(const workload::JobInstance& job, const CutSet& cut,
                            const ClusterConfig& config) {
  ImpactReport r;
  r.base_latency = job.JobRuntime();

  // Baseline IO: every stage writes its output to local SSD and reads its
  // input from upstream local SSDs (reads charged at write bandwidth for
  // symmetry; only deltas matter for the report).
  const double local_bw = config.local_write_gbps * 1e9;
  for (const workload::StageTruth& t : job.truth) {
    r.base_io_seconds += (t.output_bytes + t.input_bytes) / local_bw;
  }

  if (cut.empty()) {
    r.new_latency = r.base_latency;
    r.new_io_seconds = r.base_io_seconds;
    return r;
  }

  const double global_bw = config.global_write_gbps * 1e9;
  double extra_io = 0.0;
  double write_finish = 0.0;  // latest completion of any checkpoint write
  for (dag::StageId u : CheckpointStages(job.graph, cut)) {
    const workload::StageTruth& t = job.truth[static_cast<size_t>(u)];
    // The store replicates via a pipelined chain: the client streams one
    // copy and pays a small per-extra-replica overhead, not N full writes.
    double repl_bytes =
        t.output_bytes *
        (1.0 + 0.15 * static_cast<double>(config.global_replication - 1));
    // Tasks write their partitions in parallel.
    double write_secs =
        repl_bytes / (global_bw * static_cast<double>(std::max(1, t.num_tasks)));
    extra_io += repl_bytes / global_bw;
    write_finish = std::max(write_finish, t.end_time + write_secs);
    r.checkpointed_bytes += t.output_bytes;
  }

  // The job is complete only when both the plan and the checkpoint writes
  // finish; writes overlapping remaining stages are hidden.
  r.new_latency = std::max(r.base_latency, write_finish);
  r.latency_increase =
      r.base_latency > 0.0 ? (r.new_latency - r.base_latency) / r.base_latency : 0.0;

  r.new_io_seconds = r.base_io_seconds + extra_io;
  r.io_increase =
      r.base_io_seconds > 0.0 ? extra_io / r.base_io_seconds : 0.0;

  double total_temp = job.TotalTempBytes();
  r.checkpointed_fraction = total_temp > 0.0 ? r.checkpointed_bytes / total_temp : 0.0;

  // Temp byte-seconds saved: before-cut outputs are released at the cut
  // clear time instead of job end.
  double clear = CutClearTime(job, cut);
  double saved = 0.0, total_bs = 0.0;
  for (size_t u = 0; u < job.truth.size(); ++u) {
    const workload::StageTruth& t = job.truth[u];
    total_bs += t.output_bytes * t.ttl;
    if (cut.before_cut[u]) {
      double held = std::max(0.0, clear - t.end_time);
      saved += t.output_bytes * std::max(0.0, t.ttl - held);
    }
  }
  r.temp_saving_fraction = total_bs > 0.0 ? saved / total_bs : 0.0;
  return r;
}

}  // namespace phoebe::cluster
