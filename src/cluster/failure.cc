#include "cluster/failure.h"

#include <algorithm>
#include <cmath>

namespace phoebe::cluster {

FailureModel::FailureModel(const workload::JobInstance& job, double mtbf_seconds)
    : job_(job), mtbf_seconds_(mtbf_seconds) {
  PHOEBE_CHECK(mtbf_seconds > 0.0);
  stage_fail_.reserve(job.truth.size());
  for (const workload::StageTruth& t : job.truth) {
    // P(stage has >= 1 failed task) = 1 - exp(-tasks * task_runtime / MTBF);
    // for small exponents this matches the paper's delta * v_u approximation.
    double lam = static_cast<double>(t.num_tasks) * t.exec_seconds / mtbf_seconds;
    stage_fail_.push_back(1.0 - std::exp(-lam));
  }
}

double FailureModel::StageFailureProb(dag::StageId u) const {
  return stage_fail_[static_cast<size_t>(u)];
}

double FailureModel::JobFailureProb() const {
  double no_fail = 1.0;
  for (double p : stage_fail_) no_fail *= (1.0 - p);
  return 1.0 - no_fail;
}

double FailureModel::FailureAfterCutProb(const CutSet& cut) const {
  // P_F = prod_{before} (1-p_u) * (1 - prod_{after} (1-p_u))  — eq. (35).
  double no_fail_before = 1.0, no_fail_after = 1.0;
  for (size_t u = 0; u < stage_fail_.size(); ++u) {
    bool before = !cut.empty() && cut.before_cut[u];
    if (before) no_fail_before *= (1.0 - stage_fail_[u]);
    else no_fail_after *= (1.0 - stage_fail_[u]);
  }
  return no_fail_before * (1.0 - no_fail_after);
}

double FailureModel::ExpectedLossNoCheckpoint() const {
  // Condition on exactly which stage fails first (independent approximation:
  // weight each stage by its failure probability).
  double weight = 0.0, loss = 0.0;
  for (size_t u = 0; u < stage_fail_.size(); ++u) {
    weight += stage_fail_[u];
    loss += stage_fail_[u] * job_.truth[u].end_time;
  }
  return weight > 0.0 ? loss / weight : 0.0;
}

double FailureModel::ExpectedLossWithCut(const CutSet& cut) const {
  if (cut.empty()) return ExpectedLossNoCheckpoint();
  // Recovery line: the earliest start among after-cut stages (min TFS of
  // Group III, constraint (34)). Work before that line is durable once the
  // checkpoint completes.
  double recovery_line = 0.0;
  bool any_after = false;
  double min_tfs_after = 0.0;
  for (size_t u = 0; u < cut.before_cut.size(); ++u) {
    if (!cut.before_cut[u]) {
      double tfs = job_.truth[u].tfs;
      if (!any_after || tfs < min_tfs_after) min_tfs_after = tfs;
      any_after = true;
    }
  }
  if (any_after) recovery_line = min_tfs_after;
  const double clear_time = CutClearTime(job_, cut);

  double weight = 0.0, loss = 0.0;
  for (size_t u = 0; u < stage_fail_.size(); ++u) {
    double p = stage_fail_[u];
    if (p <= 0.0) continue;
    double end = job_.truth[u].end_time;
    double l;
    if (cut.before_cut[u]) {
      // Failure before the checkpoint completes: nothing durable yet.
      l = end;
    } else {
      // Failure after the cut: if the checkpoint had completed by the time
      // this stage ends, only work past the recovery line is lost.
      l = (end >= clear_time) ? std::max(0.0, end - recovery_line) : end;
    }
    weight += p;
    loss += p * l;
  }
  return weight > 0.0 ? loss / weight : 0.0;
}

double FailureModel::RecoveryLine(const CutSet& cut) const {
  double line = 0.0;
  bool any_after = false;
  for (size_t u = 0; u < stage_fail_.size(); ++u) {
    bool after = cut.empty() || !cut.before_cut[u];
    if (after) {
      double tfs = job_.truth[u].tfs;
      if (!any_after || tfs < line) line = tfs;
      any_after = true;
    }
  }
  return any_after ? line : 0.0;
}

double FailureModel::ExpectedSavingFraction(const CutSet& cut) const {
  if (cut.empty()) return 0.0;
  double expected_loss = JobFailureProb() * ExpectedLossNoCheckpoint();
  if (expected_loss <= 0.0) return 0.0;
  double saving = FailureAfterCutProb(cut) * RecoveryLine(cut);
  return std::clamp(saving / expected_loss, 0.0, 1.0);
}

double FailureModel::RestartSavingFraction(const CutSet& cut) const {
  if (cut.empty()) return 0.0;
  double line = RecoveryLine(cut);
  double weight = 0.0, loss = 0.0;
  for (size_t u = 0; u < stage_fail_.size(); ++u) {
    if (cut.before_cut[u]) continue;
    weight += stage_fail_[u];
    loss += stage_fail_[u] * job_.truth[u].end_time;
  }
  if (weight <= 0.0 || loss <= 0.0) return 0.0;
  return std::clamp(line * weight / loss, 0.0, 1.0);
}

double FailureModel::RecoverySavingFraction(const CutSet& cut) const {
  double base = ExpectedLossNoCheckpoint();
  if (base <= 0.0) return 0.0;
  double with = ExpectedLossWithCut(cut);
  return std::clamp(1.0 - with / base, 0.0, 1.0);
}

FailureSample SampleFailure(const workload::JobInstance& job, double mtbf_seconds,
                            Rng* rng) {
  FailureSample best;
  for (size_t u = 0; u < job.truth.size(); ++u) {
    const workload::StageTruth& t = job.truth[u];
    double lam = static_cast<double>(t.num_tasks) * t.exec_seconds / mtbf_seconds;
    if (lam <= 0.0) continue;
    if (!rng->Bernoulli(1.0 - std::exp(-lam))) continue;
    // Failure occurs uniformly within the stage's execution window.
    double when = t.start_time + rng->Uniform() * t.exec_seconds;
    if (!best.failed || when < best.time) {
      best.failed = true;
      best.stage = static_cast<dag::StageId>(u);
      best.time = when;
    }
  }
  return best;
}

RecoveryReplayResult ReplayRecovery(const workload::JobInstance& job,
                                    const CutSet& cut, double mtbf_seconds,
                                    int trials, Rng* rng) {
  PHOEBE_CHECK(trials > 0);
  FailureModel fm(job, mtbf_seconds);
  const double line = fm.RecoveryLine(cut);
  const double clear = CutClearTime(job, cut);

  RecoveryReplayResult r;
  r.trials = trials;
  double wasted_scratch = 0.0, wasted_ckpt = 0.0;
  for (int t = 0; t < trials; ++t) {
    FailureSample f = SampleFailure(job, mtbf_seconds, rng);
    if (!f.failed) continue;
    ++r.failures;
    wasted_scratch += f.time;
    bool covered = !cut.empty() &&
                   !cut.before_cut[static_cast<size_t>(f.stage)] && f.time >= clear;
    if (covered) {
      ++r.helped;
      wasted_ckpt += std::max(0.0, f.time - line);
    } else {
      wasted_ckpt += f.time;
    }
  }
  if (r.failures > 0) {
    r.mean_wasted_scratch = wasted_scratch / r.failures;
    r.mean_wasted_ckpt = wasted_ckpt / r.failures;
    if (wasted_scratch > 0.0) r.saving_fraction = 1.0 - wasted_ckpt / wasted_scratch;
  }
  return r;
}

}  // namespace phoebe::cluster
