// Failure and recovery model (paper §5.3, Figures 2-right and 14).
//
// Tasks fail independently with rate 1/MTBF over their runtime. A job-level
// failure aborts the job; without a checkpoint it restarts from scratch,
// with a checkpoint it resumes from the durable cut. Both analytic
// expectations and Monte-Carlo sampling are provided.
#pragma once

#include "common/rng.h"
#include "cluster/cluster.h"
#include "workload/job_instance.h"

namespace phoebe::cluster {

/// \brief Analytic failure probabilities for one job.
class FailureModel {
 public:
  /// \param mtbf_seconds mean time between failures of one task slot
  FailureModel(const workload::JobInstance& job, double mtbf_seconds);

  /// Per-task failure probability for stage u: delta * (runtime scaling).
  double StageFailureProb(dag::StageId u) const;

  /// P(at least one stage of the job fails).
  double JobFailureProb() const;

  /// P(failure in a stage after the cut AND no failure before it) — the P_F
  /// of constraint (35).
  double FailureAfterCutProb(const CutSet& cut) const;

  /// Expected wasted work on a failure without checkpoints: E[end time of
  /// the failed stage | some stage fails].
  double ExpectedLossNoCheckpoint() const;

  /// Expected wasted work with the cut in place: failures in stages after
  /// the cut only lose work back to the cut's recovery line (min TFS of
  /// after-cut stages); failures before the cut lose everything.
  double ExpectedLossWithCut(const CutSet& cut) const;

  /// Expected recovery-time saving fraction, in [0, 1]:
  /// 1 - ExpectedLossWithCut / ExpectedLossNoCheckpoint.
  double RecoverySavingFraction(const CutSet& cut) const;

  /// The paper's §5.3 expected-saving metric: P_F * T-bar (eq. 33-35) as a
  /// fraction of the expected loss of an uncheckpointed failure,
  /// P(job fails) * E[end of failed stage | failure]. In [0, 1].
  double ExpectedSavingFraction(const CutSet& cut) const;

  /// Minimum TFS among after-cut stages (the recovery line, eq. 34).
  double RecoveryLine(const CutSet& cut) const;

  /// Restart-time saving for failures the checkpoint helps: conditional on a
  /// failure in an after-cut stage, the fraction of the wasted work that the
  /// checkpoint avoids, T-bar / E[end of failed stage | failure after cut].
  /// This is the per-failed-job saving the paper reports in Figure 14
  /// ("restart failed jobs 68% faster on average"). In [0, 1].
  double RestartSavingFraction(const CutSet& cut) const;

 private:
  const workload::JobInstance& job_;
  double mtbf_seconds_;
  std::vector<double> stage_fail_;  ///< per-stage failure probability
};

/// \brief One sampled failure event.
struct FailureSample {
  bool failed = false;
  dag::StageId stage = dag::kInvalidStage;
  double time = 0.0;  ///< failure time relative to job start
};

/// Sample whether/where the job first fails (Monte Carlo; for back-testing).
FailureSample SampleFailure(const workload::JobInstance& job, double mtbf_seconds,
                            Rng* rng);

/// \brief Aggregate result of a Monte-Carlo recovery replay.
struct RecoveryReplayResult {
  int trials = 0;
  int failures = 0;                ///< trials with at least one task failure
  int helped = 0;                  ///< failures the checkpoint could help
  double mean_wasted_scratch = 0;  ///< wasted seconds restarting from scratch
  double mean_wasted_ckpt = 0;     ///< wasted seconds restarting from the cut
  /// 1 - wasted_ckpt / wasted_scratch, over failing trials; 0 if none fail.
  double saving_fraction = 0;
};

/// Replay `trials` failure draws for `job` under `cut`. A failure in an
/// after-cut stage at time t wastes t when restarting from scratch and
/// max(0, t - recovery_line) when the checkpoint has completed by then;
/// failures in before-cut stages waste t either way. Validates the analytic
/// RestartSavingFraction (see tests).
RecoveryReplayResult ReplayRecovery(const workload::JobInstance& job,
                                    const CutSet& cut, double mtbf_seconds,
                                    int trials, Rng* rng);

}  // namespace phoebe::cluster
