#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <queue>

#include "common/strings.h"

namespace phoebe::cluster {

Status ClusterConfig::Validate() const {
  if (num_machines < 1) return Status::InvalidArgument("num_machines must be >= 1");
  if (skus.empty()) return Status::InvalidArgument("at least one SKU required");
  for (const SkuInfo& s : skus) {
    if (s.ssd_gb <= 0 || s.slots < 1 || s.weight < 0) {
      return Status::InvalidArgument(StrFormat("bad SKU '%s'", s.name.c_str()));
    }
  }
  if (mtbf_hours <= 0) return Status::InvalidArgument("mtbf_hours must be > 0");
  if (local_write_gbps <= 0 || global_write_gbps <= 0) {
    return Status::InvalidArgument("bandwidths must be > 0");
  }
  if (global_replication < 1) return Status::InvalidArgument("replication must be >= 1");
  return Status::OK();
}

std::vector<dag::StageId> CheckpointStages(const dag::JobGraph& graph,
                                           const CutSet& cut) {
  std::vector<dag::StageId> out;
  if (cut.empty()) return out;
  PHOEBE_CHECK(cut.before_cut.size() == graph.num_stages());
  for (dag::StageId u = 0; u < static_cast<dag::StageId>(graph.num_stages()); ++u) {
    if (IsCheckpointStage(graph, cut, u)) out.push_back(u);
  }
  return out;
}

bool IsCheckpointStage(const dag::JobGraph& graph, const CutSet& cut, dag::StageId u) {
  if (!cut.before_cut[static_cast<size_t>(u)]) return false;
  for (dag::StageId v : graph.downstream(u)) {
    if (!cut.before_cut[static_cast<size_t>(v)]) return true;
  }
  return false;
}

double GlobalStorageBytes(const workload::JobInstance& job, const CutSet& cut) {
  double total = 0.0;
  for (dag::StageId u : CheckpointStages(job.graph, cut)) {
    total += job.truth[static_cast<size_t>(u)].output_bytes;
  }
  return total;
}

double CutClearTime(const workload::JobInstance& job, const CutSet& cut) {
  if (cut.empty()) return job.JobRuntime();
  PHOEBE_CHECK(cut.before_cut.size() == job.graph.num_stages());
  double clear = 0.0;
  bool any = false;
  for (size_t u = 0; u < cut.before_cut.size(); ++u) {
    if (cut.before_cut[u]) {
      clear = std::max(clear, job.truth[u].end_time);
      any = true;
    }
  }
  return any ? clear : job.JobRuntime();
}

ClusterSimulator::ClusterSimulator(ClusterConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  config_.Validate().Check();
  // Assign SKUs proportionally to weights, deterministically.
  double total_w = 0.0;
  for (const SkuInfo& s : config_.skus) total_w += s.weight;
  machines_.reserve(static_cast<size_t>(config_.num_machines));
  double acc = 0.0;
  size_t sku = 0;
  for (int m = 0; m < config_.num_machines; ++m) {
    double target = total_w * (static_cast<double>(m) + 0.5) /
                    static_cast<double>(config_.num_machines);
    while (sku + 1 < config_.skus.size() &&
           acc + config_.skus[sku].weight < target) {
      acc += config_.skus[sku].weight;
      ++sku;
    }
    machines_.push_back(Machine{m, static_cast<int>(sku)});
  }
}

TempUsageReport ClusterSimulator::SimulateTempUsage(
    const std::vector<workload::JobInstance>& jobs,
    const std::vector<CutSet>* cuts) {
  if (cuts) PHOEBE_CHECK(cuts->size() == jobs.size());
  const size_t nm = machines_.size();

  // Per-stage occupancy intervals: output bytes live on `spread` machines
  // from stage end until release. Machine choice happens later, in time
  // order, so the least-loaded policy can see the fleet state at placement
  // time.
  struct Interval {
    double acquire;
    double release;
    int spread;
    double per_machine;
  };
  std::vector<Interval> intervals;

  for (size_t ji = 0; ji < jobs.size(); ++ji) {
    const workload::JobInstance& job = jobs[ji];
    const CutSet* cut = (cuts && !(*cuts)[ji].empty()) ? &(*cuts)[ji] : nullptr;
    const double t0 = job.submit_time;
    const double job_end = t0 + job.JobRuntime();
    const double clear_time = cut ? t0 + CutClearTime(job, *cut) : job_end;

    for (size_t si = 0; si < job.graph.num_stages(); ++si) {
      const workload::StageTruth& tr = job.truth[si];
      if (tr.output_bytes <= 0.0) continue;
      bool before_cut = cut && cut->before_cut[si];
      double release = before_cut ? std::max(clear_time, t0 + tr.end_time) : job_end;
      double acquire = t0 + tr.end_time;
      if (release <= acquire) continue;

      int spread = std::min<int>(tr.num_tasks, static_cast<int>(nm));
      spread = std::max(spread, 1);
      intervals.push_back(Interval{acquire, release,
                                   spread,
                                   tr.output_bytes / static_cast<double>(spread)});
    }
  }

  std::sort(intervals.begin(), intervals.end(), [](const Interval& a, const Interval& b) {
    return a.acquire < b.acquire;
  });

  // Pending releases, earliest first: (time, machine, bytes).
  struct Release {
    double time;
    int machine;
    double bytes;
    bool operator>(const Release& o) const { return time > o.time; }
  };
  std::priority_queue<Release, std::vector<Release>, std::greater<Release>> releases;

  TempUsageReport report;
  report.peak_bytes.assign(nm, 0.0);
  report.machine_sku.resize(nm);
  for (size_t m = 0; m < nm; ++m) report.machine_sku[m] = machines_[m].sku;

  std::vector<double> current(nm, 0.0);
  double fleet_current = 0.0;
  double last_time = intervals.empty() ? 0.0 : intervals.front().acquire;
  double final_time = last_time;
  Rng placement = rng_.Fork();
  std::vector<int> pick_scratch(nm);

  auto advance_to = [&](double time) {
    while (!releases.empty() && releases.top().time <= time) {
      Release r = releases.top();
      releases.pop();
      report.total_byte_seconds += fleet_current * (r.time - last_time);
      last_time = r.time;
      current[static_cast<size_t>(r.machine)] -= r.bytes;
      fleet_current -= r.bytes;
    }
    report.total_byte_seconds += fleet_current * (time - last_time);
    last_time = time;
  };

  for (const Interval& iv : intervals) {
    advance_to(iv.acquire);
    final_time = std::max(final_time, iv.release);

    if (config_.placement == Placement::kLeastLoaded) {
      // The `spread` machines with the least temp data right now.
      std::iota(pick_scratch.begin(), pick_scratch.end(), 0);
      std::partial_sort(pick_scratch.begin(),
                        pick_scratch.begin() + iv.spread, pick_scratch.end(),
                        [&](int a, int b) {
                          return current[static_cast<size_t>(a)] <
                                 current[static_cast<size_t>(b)];
                        });
      for (int k = 0; k < iv.spread; ++k) {
        int machine = pick_scratch[static_cast<size_t>(k)];
        current[static_cast<size_t>(machine)] += iv.per_machine;
        fleet_current += iv.per_machine;
        report.peak_bytes[static_cast<size_t>(machine)] =
            std::max(report.peak_bytes[static_cast<size_t>(machine)],
                     current[static_cast<size_t>(machine)]);
        releases.push(Release{iv.release, machine, iv.per_machine});
      }
    } else {
      // Storage-oblivious: random base + stride over the fleet.
      int64_t base = placement.UniformInt(0, static_cast<int64_t>(nm) - 1);
      int64_t stride = 1 + placement.UniformInt(0, static_cast<int64_t>(nm) - 1);
      for (int k = 0; k < iv.spread; ++k) {
        int machine = static_cast<int>((base + static_cast<int64_t>(k) * stride) %
                                       static_cast<int64_t>(nm));
        current[static_cast<size_t>(machine)] += iv.per_machine;
        fleet_current += iv.per_machine;
        report.peak_bytes[static_cast<size_t>(machine)] =
            std::max(report.peak_bytes[static_cast<size_t>(machine)],
                     current[static_cast<size_t>(machine)]);
        releases.push(Release{iv.release, machine, iv.per_machine});
      }
    }
    report.fleet_peak_bytes = std::max(report.fleet_peak_bytes, fleet_current);
  }
  advance_to(final_time);  // drain remaining releases into the integral

  report.peak_fraction.resize(nm);
  for (size_t m = 0; m < nm; ++m) {
    double cap = config_.skus[static_cast<size_t>(machines_[m].sku)].ssd_gb * 1e9;
    report.peak_fraction[m] = report.peak_bytes[m] / cap;
  }
  return report;
}

double TempUsageReport::FractionAbove(int sku, double fraction) const {
  size_t total = 0, above = 0;
  for (size_t m = 0; m < peak_fraction.size(); ++m) {
    if (machine_sku[m] != sku) continue;
    ++total;
    if (peak_fraction[m] >= fraction) ++above;
  }
  return total ? static_cast<double>(above) / static_cast<double>(total) : 0.0;
}

int ClusterSimulator::MaxContainersForFootprint(int sku,
                                                double bytes_per_container) const {
  PHOEBE_CHECK(sku >= 0 && static_cast<size_t>(sku) < config_.skus.size());
  const SkuInfo& info = config_.skus[static_cast<size_t>(sku)];
  if (bytes_per_container <= 0.0) return info.slots;
  double fit = info.ssd_gb * 1e9 / bytes_per_container;  // clamp before the
  if (fit >= static_cast<double>(info.slots)) return info.slots;  // int cast:
  return std::max(0, static_cast<int>(fit));  // huge ratios overflow int

}

}  // namespace phoebe::cluster
