#include "obs/metrics.h"

#include <algorithm>

#include "common/json.h"
#include "common/macros.h"

namespace phoebe::obs {

Status MetricsConfig::Validate() const {
  if (!enabled && !output_path.empty()) {
    return Status::InvalidArgument(
        "metrics output_path set but metrics are disabled");
  }
  return Status::OK();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  PHOEBE_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bounds must be sorted ascending");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    PHOEBE_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                     "histogram bounds must be strictly increasing");
  }
}

void Histogram::Observe(double v) {
  // upper_bound over a handful of doubles; the atomics dominate. NaN
  // compares false against every bound and lands in the overflow bucket.
  size_t i = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int n) {
  PHOEBE_CHECK(start > 0.0 && factor > 1.0 && n >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(n));
  double b = start;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  if (root_ != this) return root_->counter(prefix_ + name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  PHOEBE_CHECK_MSG(kinds_.count(name) == 0,
                   "metric name already registered as another kind");
  kinds_[name] = Kind::kCounter;
  return counters_.emplace(name, std::make_unique<Counter>())
      .first->second.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  if (root_ != this) return root_->gauge(prefix_ + name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second.get();
  PHOEBE_CHECK_MSG(kinds_.count(name) == 0,
                   "metric name already registered as another kind");
  kinds_[name] = Kind::kGauge;
  return gauges_.emplace(name, std::make_unique<Gauge>()).first->second.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  if (root_ != this) return root_->histogram(prefix_ + name, std::move(bounds));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second.get();
  PHOEBE_CHECK_MSG(kinds_.count(name) == 0,
                   "metric name already registered as another kind");
  kinds_[name] = Kind::kHistogram;
  return histograms_
      .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
      .first->second.get();
}

MetricsRegistry* MetricsRegistry::Namespaced(const std::string& prefix) {
  // A view delegates to the root so nested prefixes concatenate and all
  // views — whatever they were created from — live in one flat map.
  if (root_ != this) return root_->Namespaced(prefix_ + prefix);
  if (prefix.empty()) return this;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(prefix);
  if (it != views_.end()) return it->second.get();
  std::unique_ptr<MetricsRegistry> view(new MetricsRegistry(this, prefix));
  return views_.emplace(prefix, std::move(view)).first->second.get();
}

namespace {

/// Keep only the metrics whose (full) name starts with `prefix`.
MetricsSnapshot FilterSnapshot(MetricsSnapshot snap, const std::string& prefix) {
  MetricsSnapshot out;
  for (auto& [name, v] : snap.counters) {
    if (name.rfind(prefix, 0) == 0) out.counters[name] = v;
  }
  for (auto& [name, v] : snap.gauges) {
    if (name.rfind(prefix, 0) == 0) out.gauges[name] = v;
  }
  for (auto& [name, h] : snap.histograms) {
    if (name.rfind(prefix, 0) == 0) out.histograms[name] = std::move(h);
  }
  return out;
}

}  // namespace

MetricsSnapshot MetricsRegistry::Snapshot() const {
  if (root_ != this) return FilterSnapshot(root_->Snapshot(), prefix_);
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramView view;
    view.bounds = h->bounds_;
    view.buckets.reserve(h->buckets_.size());
    for (const auto& b : h->buckets_) {
      view.buckets.push_back(b.load(std::memory_order_relaxed));
    }
    view.count = h->count();
    view.sum = h->sum();
    snap.histograms[name] = std::move(view);
  }
  return snap;
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, v] : after.counters) {
    auto it = before.counters.find(name);
    delta.counters[name] = it == before.counters.end() ? v : v - it->second;
  }
  delta.gauges = after.gauges;  // levels, not flows
  for (const auto& [name, h] : after.histograms) {
    MetricsSnapshot::HistogramView view = h;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end() && it->second.bounds == h.bounds) {
      for (size_t i = 0; i < view.buckets.size(); ++i) {
        view.buckets[i] -= it->second.buckets[i];
      }
      view.count -= it->second.count;
      view.sum -= it->second.sum;
    }
    delta.histograms[name] = std::move(view);
  }
  return delta;
}

std::string TelemetryLineJson(const MetricsSnapshot& snapshot,
                              const std::string& scope, int day) {
  JsonWriter w;
  w.BeginObject();
  w.KV("telemetry", "phoebe.obs.v1");
  w.KV("scope", scope);
  w.KV("day", day);
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, v] : snapshot.counters) w.KV(name, v);
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, v] : snapshot.gauges) w.KV(name, v);
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : snapshot.histograms) {
    w.Key(name);
    w.BeginObject();
    w.KV("count", h.count);
    w.KV("sum", h.sum);
    w.KV("mean", h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0);
    w.Key("bounds");
    w.BeginArray();
    for (double b : h.bounds) w.Value(b);
    w.EndArray();
    w.Key("buckets");
    w.BeginArray();
    for (int64_t b : h.buckets) w.Value(b);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace phoebe::obs
