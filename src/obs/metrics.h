// Fleet observability: a small, dependency-free metrics subsystem.
//
// Phoebe's premise is that a Workload Insight Service *watches* the
// production fleet (paper §2, Figure 4), yet until this layer existed the
// fleet driver was a black box — FleetDayReport says what was decided, not
// where decide-time went. src/obs/ answers the "where" question:
//
//   * MetricsRegistry — named counters, gauges, and fixed-bucket histograms.
//     Registration (name -> metric object) takes a mutex; every update is a
//     relaxed atomic, so the parallel decide phase can record freely with no
//     lock contention and no TSan reports (obs_registry_test pins this).
//   * ScopedTimer — RAII span over a named phase: construct at phase entry,
//     the destructor observes the elapsed seconds into a histogram. Phase
//     hierarchy is expressed in the metric name ("fleet.day.decide.seconds"
//     is a child span of "fleet.day.seconds"; see DESIGN.md "Observability").
//   * Snapshot / Delta / TelemetryLineJson — a deterministic point-in-time
//     view (names sorted, values exact), the difference between two views,
//     and the single-line JSON rendering exported per fleet day next to
//     FleetDayReportJson.
//
// Metrics are strictly passive. Every instrumented call site takes a
// nullable registry (or metric pointer) and the helpers below no-op on
// nullptr, so with metrics off the only cost is a branch — and with metrics
// on, nothing feeds back into any decision: FleetDayReport streams are
// byte-identical either way (core_fleet_metrics_test pins this; the nightly
// bench gates the overhead at <= 2% of decide time).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace phoebe::obs {

/// \brief Knobs for the observability layer (off by default).
struct MetricsConfig {
  /// Master switch: callers construct a registry (and pass it down the fleet
  /// stack) only when enabled.
  bool enabled = false;
  /// Where the per-day telemetry JSONL goes; "" means "caller's stdout/none".
  std::string output_path;

  Status Validate() const;
};

/// \brief Monotonically increasing integer metric.
class Counter {
 public:
  void Add(int64_t v) { v_.fetch_add(v, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Last-written double metric (e.g. a queue depth or artifact size).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// \brief Fixed-bucket histogram: bucket i counts observations <= bounds[i],
/// plus one overflow bucket. Bucket counts and the observation count are
/// exact under concurrency; `sum` is a relaxed float accumulation, so its
/// last bits may depend on interleaving (fine for telemetry, never used in
/// any decision).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Exponential bucket upper bounds: start, start*factor, ... (n bounds).
  static std::vector<double> ExponentialBounds(double start, double factor, int n);
  /// The default latency scale: 1us .. ~100s in 4x steps (14 bounds).
  static std::vector<double> LatencyBounds() {
    return ExponentialBounds(1e-6, 4.0, 14);
  }

 private:
  friend class MetricsRegistry;
  std::vector<double> bounds_;                    ///< sorted upper bounds
  std::vector<std::atomic<int64_t>> buckets_;     ///< bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Null-safe update helpers: instrumented code holds possibly-null metric
/// pointers (null = metrics off) and calls these unconditionally.
inline void Add(Counter* c, int64_t v) {
  if (c != nullptr) c->Add(v);
}
inline void Increment(Counter* c) {
  if (c != nullptr) c->Increment();
}
inline void Set(Gauge* g, double v) {
  if (g != nullptr) g->Set(v);
}
inline void Observe(Histogram* h, double v) {
  if (h != nullptr) h->Observe(v);
}

/// \brief Deterministic point-in-time view of a registry (names sorted by
/// std::map; values read with relaxed loads — exact when no update is
/// concurrent with the snapshot, e.g. taken between fleet days).
struct MetricsSnapshot {
  struct HistogramView {
    std::vector<double> bounds;
    std::vector<int64_t> buckets;  ///< bounds.size() + 1 (last = overflow)
    int64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramView> histograms;
};

/// `after - before`, metric by metric: counters and histogram buckets
/// subtract, gauges keep the `after` value (a gauge is a level, not a flow).
/// Metrics absent from `before` pass through unchanged.
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

/// Single-line JSON rendering of one snapshot — the per-day telemetry line
/// written next to FleetDayReportJson. `scope` says what the line covers
/// ("day" deltas or the cumulative "run"); `day` is the 0-based day index
/// (-1 for run-scope lines). Key order is fixed and doubles print %.17g, so
/// equal snapshots render byte-identically. Ends without a newline.
std::string TelemetryLineJson(const MetricsSnapshot& snapshot,
                              const std::string& scope, int day);

/// \brief Thread-safe registry of named metrics.
///
/// Registration interns the name and returns a stable pointer (metrics are
/// never removed); instrumented components resolve their metric pointers
/// once — typically at construction — and update through the lock-free
/// objects on the hot path. Re-registering a name returns the existing
/// object; registering the same name as two different kinds is a programming
/// bug and aborts.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// `bounds` applies on first registration only (first caller wins).
  Histogram* histogram(const std::string& name,
                       std::vector<double> bounds = Histogram::LatencyBounds());

  /// A namespaced view over this registry: every registration through the
  /// returned registry gets `prefix` prepended to its name ("ab.arm0." +
  /// "engine.decide.ml_stacked.seconds"), and its Snapshot() sees only the
  /// prefixed names (full names kept). This is how N DecisionEngine arms
  /// share one output file without colliding on `engine.<source>.*` — each
  /// arm registers through its own view, all storage stays in this root.
  ///
  /// The view is owned by the root (same lifetime; callers never delete it),
  /// calling with the same prefix returns the same pointer, an empty prefix
  /// returns the root itself, and nesting concatenates prefixes. Thread-safe
  /// like every other registry call.
  MetricsRegistry* Namespaced(const std::string& prefix);

  MetricsSnapshot Snapshot() const;

 private:
  MetricsRegistry(MetricsRegistry* root, std::string prefix)
      : root_(root), prefix_(std::move(prefix)) {}

  enum class Kind { kCounter, kGauge, kHistogram };
  MetricsRegistry* root_ = this;  ///< self for a root, the root for a view
  std::string prefix_;            ///< empty for a root
  mutable std::mutex mu_;
  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<MetricsRegistry>> views_;  ///< by prefix
};

/// \brief RAII span over a named phase: observes the elapsed wall-clock
/// seconds into `h` on destruction. Null histogram = metrics off: the timer
/// then never reads the clock at all.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { Stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Observe now instead of at scope exit (idempotent).
  void Stop() {
    if (h_ == nullptr) return;
    h_->Observe(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start_)
                    .count());
    h_ = nullptr;
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace phoebe::obs
