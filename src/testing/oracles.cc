#include "testing/oracles.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "workload/trace.h"

namespace phoebe::testing {

namespace {

Status Fail(const char* what, size_t stage) {
  return Status::Internal(StrFormat("oracle: %s at stage %zu", what, stage));
}

bool SameDouble(double a, double b) {
  // Bit-equality modulo -0.0 == 0.0; NaN never round-trips in these formats.
  return a == b;
}

}  // namespace

Status CheckScheduleSane(const dag::JobGraph& graph,
                         const std::vector<double>& exec_seconds,
                         const core::SimulatedSchedule& sched) {
  const size_t n = graph.num_stages();
  if (sched.start.size() != n || sched.end.size() != n) {
    return Status::Internal(StrFormat("oracle: schedule sized %zu/%zu for %zu stages",
                                      sched.start.size(), sched.end.size(), n));
  }
  const double kTol = 1e-9;
  double max_end = 0.0;
  bool any_zero_ttl = n == 0;
  for (size_t u = 0; u < n; ++u) {
    double expect_start = 0.0;
    for (dag::StageId up : graph.upstream(static_cast<dag::StageId>(u))) {
      expect_start = std::max(expect_start, sched.end[static_cast<size_t>(up)]);
    }
    double rel = kTol * std::max(1.0, std::abs(expect_start));
    if (std::abs(sched.start[u] - expect_start) > rel) {
      return Fail("start != max upstream end", u);
    }
    double expect_end = sched.start[u] + std::max(0.0, exec_seconds[u]);
    if (std::abs(sched.end[u] - expect_end) > kTol * std::max(1.0, expect_end)) {
      return Fail("end != start + exec", u);
    }
    max_end = std::max(max_end, sched.end[u]);
    double ttl = sched.Ttl(static_cast<dag::StageId>(u));
    if (ttl < -kTol * std::max(1.0, sched.job_end)) return Fail("negative TTL", u);
    if (!SameDouble(sched.Tfs(static_cast<dag::StageId>(u)), sched.start[u])) {
      return Fail("TFS != start", u);
    }
    if (ttl <= kTol * std::max(1.0, sched.job_end)) any_zero_ttl = true;
  }
  if (std::abs(sched.job_end - max_end) > kTol * std::max(1.0, max_end)) {
    return Status::Internal("oracle: job_end != max stage end");
  }
  if (!any_zero_ttl) {
    return Status::Internal("oracle: no stage ends at job end (min TTL > 0)");
  }
  return Status::OK();
}

Status CheckCutValid(const dag::JobGraph& graph, const cluster::CutSet& cut,
                     bool require_ancestor_closed) {
  if (cut.empty()) return Status::OK();
  const size_t n = graph.num_stages();
  if (cut.before_cut.size() != n) {
    return Status::Internal(StrFormat("oracle: cut sized %zu for %zu stages",
                                      cut.before_cut.size(), n));
  }
  size_t before = 0;
  for (bool b : cut.before_cut) before += b ? 1 : 0;
  if (before == 0 || before == n) {
    return Status::Internal(
        StrFormat("oracle: non-empty cut must split the graph (%zu of %zu stages "
                  "before)",
                  before, n));
  }
  if (require_ancestor_closed) {
    for (const dag::Edge& e : graph.edges()) {
      if (cut.before_cut[static_cast<size_t>(e.to)] &&
          !cut.before_cut[static_cast<size_t>(e.from)]) {
        return Status::Internal(
            StrFormat("oracle: edge %d->%d crosses the cut backwards "
                      "(before-cut set not ancestor-closed)",
                      e.from, e.to));
      }
    }
  }
  return Status::OK();
}

Status CheckCutsNested(const std::vector<core::CutResult>& cuts) {
  for (size_t c = 1; c < cuts.size(); ++c) {
    const auto& inner = cuts[c - 1].cut.before_cut;
    const auto& outer = cuts[c].cut.before_cut;
    if (inner.size() != outer.size()) {
      return Status::Internal("oracle: nested cuts sized differently");
    }
    for (size_t u = 0; u < inner.size(); ++u) {
      if (inner[u] && !outer[u]) {
        return Status::Internal(
            StrFormat("oracle: cut %zu not contained in cut %zu (stage %zu)", c - 1,
                      c, u));
      }
    }
  }
  return Status::OK();
}

Status CheckGraphRoundTrip(const dag::JobGraph& graph) {
  dag::JobGraph restored;
  Status st = dag::JobGraph::FromText(std::string_view(graph.ToText()), &restored);
  if (!st.ok()) {
    return Status::Internal("oracle: FromText failed: " + st.ToString());
  }
  if (restored.name() != graph.name()) {
    return Status::Internal("oracle: name changed in round-trip");
  }
  if (restored.num_stages() != graph.num_stages() ||
      restored.num_edges() != graph.num_edges()) {
    return Status::Internal("oracle: graph shape changed in round-trip");
  }
  for (size_t u = 0; u < graph.num_stages(); ++u) {
    const dag::Stage& a = graph.stage(static_cast<dag::StageId>(u));
    const dag::Stage& b = restored.stage(static_cast<dag::StageId>(u));
    if (a.name != b.name || a.stage_type != b.stage_type ||
        a.num_tasks != b.num_tasks || a.operators != b.operators) {
      return Fail("stage changed in round-trip", u);
    }
  }
  for (size_t i = 0; i < graph.edges().size(); ++i) {
    if (!(graph.edges()[i] == restored.edges()[i])) {
      return Status::Internal(StrFormat("oracle: edge %zu changed in round-trip", i));
    }
  }
  return Status::OK();
}

Status CheckTraceRoundTrip(const std::vector<workload::JobInstance>& jobs) {
  std::vector<workload::JobInstance> restored;
  Status st = workload::ParseTrace(
      std::string_view(workload::SerializeTrace(jobs)), &restored);
  if (!st.ok()) {
    return Status::Internal("oracle: ParseTrace failed: " + st.ToString());
  }
  if (restored.size() != jobs.size()) {
    return Status::Internal("oracle: job count changed in round-trip");
  }
  for (size_t j = 0; j < jobs.size(); ++j) {
    const workload::JobInstance& a = jobs[j];
    const workload::JobInstance& b = restored[j];
    if (a.job_id != b.job_id || a.template_id != b.template_id || a.day != b.day ||
        !SameDouble(a.submit_time, b.submit_time) || a.job_name != b.job_name ||
        a.norm_input_name != b.norm_input_name) {
      return Status::Internal(StrFormat("oracle: job %zu header changed", j));
    }
    PHOEBE_RETURN_NOT_OK(CheckGraphRoundTrip(a.graph));
    if (b.graph.num_stages() != a.graph.num_stages()) {
      return Status::Internal(StrFormat("oracle: job %zu graph changed", j));
    }
    for (size_t s = 0; s < a.truth.size(); ++s) {
      const workload::StageTruth& x = a.truth[s];
      const workload::StageTruth& y = b.truth[s];
      if (!SameDouble(x.input_bytes, y.input_bytes) ||
          !SameDouble(x.output_bytes, y.output_bytes) ||
          !SameDouble(x.exec_seconds, y.exec_seconds) ||
          !SameDouble(x.wall_seconds, y.wall_seconds) ||
          x.num_tasks != y.num_tasks || !SameDouble(x.start_time, y.start_time) ||
          !SameDouble(x.end_time, y.end_time) || !SameDouble(x.ttl, y.ttl) ||
          !SameDouble(x.tfs, y.tfs)) {
        return Status::Internal(
            StrFormat("oracle: job %zu stage %zu truth changed", j, s));
      }
      const workload::StageEstimates& p = a.est[s];
      const workload::StageEstimates& q = b.est[s];
      if (!SameDouble(p.est_cost, q.est_cost) ||
          !SameDouble(p.est_exclusive_cost, q.est_exclusive_cost) ||
          !SameDouble(p.est_input_cardinality, q.est_input_cardinality) ||
          !SameDouble(p.est_cardinality, q.est_cardinality) ||
          !SameDouble(p.est_output_bytes, q.est_output_bytes)) {
        return Status::Internal(
            StrFormat("oracle: job %zu stage %zu estimates changed", j, s));
      }
    }
  }
  return Status::OK();
}

}  // namespace phoebe::testing
