#include "testing/generators.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "core/simulator.h"
#include "workload/generator.h"

namespace phoebe::testing {

namespace {

double LogUniform(double lo, double hi, Rng* rng) {
  return std::exp(rng->Uniform(std::log(lo), std::log(hi)));
}

dag::Stage MakeStage(int index, int max_tasks, Rng* rng) {
  dag::Stage s;
  s.name = "s" + std::to_string(index);
  s.operators = {dag::OperatorKind::kFilter};
  s.stage_type = static_cast<int>(rng->UniformInt(0, 7));
  s.num_tasks = static_cast<int>(rng->UniformInt(1, std::max(1, max_tasks)));
  return s;
}

}  // namespace

dag::JobGraph RandomGraph(const GraphGenOptions& opt, Rng* rng) {
  const int n = static_cast<int>(
      rng->UniformInt(std::max(1, opt.min_stages), std::max(1, opt.max_stages)));
  dag::JobGraph g("random");

  if (opt.num_layers > 0) {
    // Layered DAG: assign each stage a layer (layer 0 non-empty), connect
    // each stage in layer l > 0 to 1..max_fan_in stages of layer l - 1.
    const int layers = std::min(opt.num_layers, n);
    std::vector<int> layer_of(static_cast<size_t>(n), 0);
    std::vector<std::vector<dag::StageId>> members(static_cast<size_t>(layers));
    for (int i = 0; i < n; ++i) {
      layer_of[static_cast<size_t>(i)] =
          (i < layers) ? i : static_cast<int>(rng->UniformInt(0, layers - 1));
    }
    std::sort(layer_of.begin(), layer_of.end());
    for (int i = 0; i < n; ++i) {
      dag::StageId id = g.AddStage(MakeStage(i, opt.max_tasks, rng));
      members[static_cast<size_t>(layer_of[static_cast<size_t>(i)])].push_back(id);
    }
    for (int l = 1; l < layers; ++l) {
      for (dag::StageId v : members[static_cast<size_t>(l)]) {
        const auto& prev = members[static_cast<size_t>(l - 1)];
        int fan = static_cast<int>(
            rng->UniformInt(1, std::max(1, std::min<int>(opt.max_fan_in,
                                                         static_cast<int>(prev.size())))));
        for (int e = 0; e < fan; ++e) {
          dag::StageId u =
              prev[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(prev.size()) - 1))];
          (void)g.AddEdge(u, v);  // duplicate draws are rejected; fine
        }
      }
    }
    return g;
  }

  // Free-form DAG: stage v draws upstream edges among stages < v, unless it
  // starts a fresh component.
  for (int i = 0; i < n; ++i) g.AddStage(MakeStage(i, opt.max_tasks, rng));
  for (int v = 1; v < n; ++v) {
    if (rng->Bernoulli(opt.p_new_root)) continue;
    int fan = static_cast<int>(
        rng->UniformInt(1, std::max(1, std::min(opt.max_fan_in, v))));
    for (int e = 0; e < fan; ++e) {
      dag::StageId u = static_cast<dag::StageId>(rng->UniformInt(0, v - 1));
      (void)g.AddEdge(u, static_cast<dag::StageId>(v));
    }
    if (v >= 2 && rng->Bernoulli(opt.p_extra_edge)) {
      dag::StageId u = static_cast<dag::StageId>(rng->UniformInt(0, v - 1));
      (void)g.AddEdge(u, static_cast<dag::StageId>(v));
    }
  }
  return g;
}

std::vector<double> RandomExecSeconds(const dag::JobGraph& graph,
                                      const CostGenOptions& opt, Rng* rng) {
  std::vector<double> exec(graph.num_stages());
  for (double& e : exec) e = LogUniform(opt.exec_lo, opt.exec_hi, rng);
  return exec;
}

core::StageCosts RandomCosts(const dag::JobGraph& graph, const CostGenOptions& opt,
                             Rng* rng) {
  const size_t n = graph.num_stages();
  std::vector<double> exec = RandomExecSeconds(graph, opt, rng);
  auto sim = core::SimulateSchedule(graph, exec);
  sim.status().Check();  // generated graphs are acyclic by construction

  core::StageCosts costs;
  costs.end_time = sim->end;
  costs.tfs = sim->start;
  costs.ttl.resize(n);
  costs.output_bytes.resize(n);
  costs.num_tasks.resize(n);
  for (size_t u = 0; u < n; ++u) {
    costs.ttl[u] = sim->Ttl(static_cast<dag::StageId>(u));
    costs.output_bytes[u] = rng->Bernoulli(opt.p_zero_output)
                                ? 0.0
                                : LogUniform(opt.bytes_lo, opt.bytes_hi, rng);
    costs.num_tasks[u] = graph.stage(static_cast<dag::StageId>(u)).num_tasks;
  }
  return costs;
}

std::string JobCase::ToText() const {
  std::string out = graph.ToText();
  for (size_t u = 0; u < costs.size(); ++u) {
    out += StrFormat("cost %zu out=%.6g ttl=%.6g end=%.6g tfs=%.6g tasks=%d\n", u,
                     costs.output_bytes[u], costs.ttl[u], costs.end_time[u],
                     costs.tfs[u], costs.num_tasks[u]);
  }
  return out;
}

JobCase RandomJobCase(const GraphGenOptions& gopt, const CostGenOptions& copt,
                      Rng* rng) {
  JobCase c;
  c.graph = RandomGraph(gopt, rng);
  c.costs = RandomCosts(c.graph, copt, rng);
  return c;
}

std::vector<workload::JobInstance> RandomTrace(int num_templates, int days,
                                               uint64_t seed) {
  workload::WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.num_templates = num_templates;
  workload::WorkloadGenerator gen(cfg);
  std::vector<workload::JobInstance> jobs;
  for (int d = 0; d < days; ++d) {
    auto day = gen.GenerateDay(d);
    jobs.insert(jobs.end(), day.begin(), day.end());
  }
  return jobs;
}

}  // namespace phoebe::testing
