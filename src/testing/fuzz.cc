#include "testing/fuzz.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/strings.h"
#include "testing/property.h"

namespace phoebe::testing {

namespace {

/// Numeric tokens chosen to break lenient parsers: int32/int64 overflow,
/// double overflow to inf, nan, hex, signs, and empty-ish garbage.
const char* const kHostileTokens[] = {
    "999999999999999999999999",
    "-999999999999999999999999",
    "2147483648",   // INT32_MAX + 1
    "-2147483649",  // INT32_MIN - 1
    "9223372036854775808",
    "1e9999",
    "-1e9999",
    "1e308",
    "nan",
    "inf",
    "-inf",
    "0x7fffffff",
    "1.5e",
    "--3",
    "+",
    "",
};

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::string cur;
  for (char ch : line) {
    if (ch == ' ' || ch == '\t') {
      if (!cur.empty()) words.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) words.push_back(std::move(cur));
  return words;
}

/// Rebuild a document from lines (trailing newline preserved).
std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace

std::string MutateText(const std::string& text, Rng* rng) {
  // Line-level strategies need the line split; byte-level ones do not.
  // Strategy indices: 0 truncate, 1 byte flip, 2 byte insert, 3 swap two
  // fields on a line, 4 hostile numeric token, 5 delete a line, 6 duplicate
  // a line, 7 swap two lines, 8 delete a field.
  const int strategy = static_cast<int>(rng->UniformInt(0, 8));
  std::string out = text;
  switch (strategy) {
    case 0: {  // truncate anywhere, including mid-token
      if (out.empty()) break;
      out.resize(static_cast<size_t>(rng->UniformInt(0, static_cast<int>(out.size()) - 1)));
      break;
    }
    case 1: {  // flip one byte to an arbitrary value (may create '\0', UTF junk)
      if (out.empty()) break;
      size_t pos = static_cast<size_t>(rng->UniformInt(0, static_cast<int>(out.size()) - 1));
      out[pos] = static_cast<char>(rng->UniformInt(0, 255));
      break;
    }
    case 2: {  // insert a short burst of random bytes
      size_t pos = static_cast<size_t>(rng->UniformInt(0, static_cast<int>(out.size())));
      std::string burst;
      int len = (int)rng->UniformInt(1, 8);
      for (int i = 0; i < len; ++i) burst.push_back(static_cast<char>(rng->UniformInt(0, 255)));
      out.insert(pos, burst);
      break;
    }
    default: {  // line-structured strategies
      std::vector<std::string> lines = Split(out, '\n');
      if (lines.empty()) break;
      int li = (int)rng->UniformInt(0, static_cast<int>(lines.size()) - 1);
      switch (strategy) {
        case 3: {  // swap two whitespace-separated fields on one line
          std::vector<std::string> words = SplitWords(lines[li]);
          if (words.size() >= 2) {
            int a = (int)rng->UniformInt(0, static_cast<int>(words.size()) - 1);
            int b = (int)rng->UniformInt(0, static_cast<int>(words.size()) - 1);
            std::swap(words[a], words[b]);
            lines[li] = Join(words, " ");
          }
          break;
        }
        case 4: {  // replace one field with a hostile numeric token
          std::vector<std::string> words = SplitWords(lines[li]);
          if (!words.empty()) {
            int a = (int)rng->UniformInt(0, static_cast<int>(words.size()) - 1);
            constexpr int kNumTokens =
                static_cast<int>(sizeof(kHostileTokens) / sizeof(kHostileTokens[0]));
            words[a] = kHostileTokens[rng->UniformInt(0, kNumTokens - 1)];
            lines[li] = Join(words, " ");
          }
          break;
        }
        case 5:  // delete a line
          lines.erase(lines.begin() + li);
          break;
        case 6:  // duplicate a line
          lines.insert(lines.begin() + li, lines[li]);
          break;
        case 7: {  // swap two lines
          int lj = (int)rng->UniformInt(0, static_cast<int>(lines.size()) - 1);
          std::swap(lines[li], lines[lj]);
          break;
        }
        case 8: {  // delete one field from a line
          std::vector<std::string> words = SplitWords(lines[li]);
          if (!words.empty()) {
            int a = (int)rng->UniformInt(0, static_cast<int>(words.size()) - 1);
            words.erase(words.begin() + a);
            lines[li] = Join(words, " ");
          }
          break;
        }
        default: break;
      }
      out = JoinLines(lines);
      break;
    }
  }
  return out;
}

std::string MutateDocument(const std::vector<std::string>& seeds,
                           const FuzzOptions& opt, uint64_t case_seed) {
  Rng rng(case_seed);
  // A few fixed pathological documents ride along with the mutated seeds.
  // (std::string with explicit length so embedded NULs survive.)
  static const std::string kPathological[] = {
      std::string(),          std::string("\n"),  std::string(" \t \n\n"),
      std::string("\0\0\0\0", 4), std::string("\xff\xfe\xfd"), std::string("job"),
      std::string("0"),       std::string("-1\n"),
  };
  constexpr int kNumPathological =
      static_cast<int>(sizeof(kPathological) / sizeof(kPathological[0]));
  std::string doc;
  if (!seeds.empty() && rng.Uniform() > 0.1) {
    doc = seeds[static_cast<size_t>(rng.UniformInt(0, static_cast<int>(seeds.size()) - 1))];
  } else {
    doc = kPathological[rng.UniformInt(0, kNumPathological - 1)];
  }
  int mutations = (int)rng.UniformInt(1, std::max(1, opt.max_mutations));
  for (int m = 0; m < mutations; ++m) doc = MutateText(doc, &rng);
  return doc;
}

FuzzReport FuzzParser(const FuzzOptions& opt, const std::vector<std::string>& seeds,
                      const ParseFn& parse) {
  FuzzReport report;
  const int num_inputs = ScaledCaseCount(opt.num_inputs);
  for (int i = 0; i < num_inputs; ++i) {
    const uint64_t case_seed = opt.seed + static_cast<uint64_t>(i);
    std::string doc = MutateDocument(seeds, opt, case_seed);
    ++report.inputs_run;
    try {
      Status st = parse(doc);
      if (st.ok()) {
        ++report.accepted;
      } else {
        ++report.rejected;
      }
    } catch (const std::exception& e) {
      report.ok = false;
      report.failed_seed = case_seed;
      report.failure = StrFormat("parser threw %s", e.what());
      report.failing_input = std::move(doc);
      return report;
    } catch (...) {
      report.ok = false;
      report.failed_seed = case_seed;
      report.failure = "parser threw a non-std exception";
      report.failing_input = std::move(doc);
      return report;
    }
  }
  return report;
}

std::string FuzzReport::Describe() const {
  if (ok) {
    return StrFormat("fuzzed %d inputs: %d accepted, %d cleanly rejected",
                     inputs_run, accepted, rejected);
  }
  return StrFormat(
      "fuzz FAILURE on seed %llu: %s\ninput (%zu bytes):\n%s",
      static_cast<unsigned long long>(failed_seed), failure.c_str(),
      failing_input.size(), failing_input.c_str());
}

}  // namespace phoebe::testing
