// Seeded corruption fuzzer for the textual parsers.
//
// The contract under test is total: for ANY input string, a parser must
// either succeed or return a clean error Status — never crash, hang, throw,
// or trip a sanitizer. The mutator takes well-formed seed documents (real
// serializer output) and applies structured corruptions that target the
// parser's assumptions: truncation mid-token, byte flips, field swaps and
// deletions, line shuffling, and numeric tokens far outside any valid range
// (overflow, inf/nan, hex junk). Everything is deterministic from the seed,
// so a failure replays exactly: `FuzzReport::failed_seed` regenerates the
// offending input via MutateDocument.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace phoebe::testing {

/// \brief Parser under test. Must return OK or an error for every input;
/// any other behaviour (crash, throw, sanitizer report) is the bug.
using ParseFn = std::function<Status(const std::string&)>;

/// \brief Fuzzer configuration.
struct FuzzOptions {
  /// Mutated inputs per run, scaled by CaseCountMultiplier() (PHOEBE_NUM_CASES)
  /// like the property runner, so the nightly sweep fuzzes deeper too.
  int num_inputs = 1000;
  uint64_t seed = 0xf0cc;  ///< base seed; input i uses seed + i
  int max_mutations = 4;   ///< mutations stacked per input, in [1, max]
};

/// Apply one random corruption to `text` (deterministic in *rng). Exposed so
/// tests can exercise individual strategies; FuzzParser stacks several.
std::string MutateText(const std::string& text, Rng* rng);

/// The full per-case pipeline: pick a seed document, stack 1..max_mutations
/// MutateText passes. `case_seed` is the value FuzzReport reports, so
/// MutateDocument(seeds, opt, failed_seed) reproduces the failing input.
std::string MutateDocument(const std::vector<std::string>& seeds,
                           const FuzzOptions& opt, uint64_t case_seed);

/// \brief Outcome of a fuzz run.
struct FuzzReport {
  bool ok = true;
  int inputs_run = 0;
  int accepted = 0;  ///< inputs the parser accepted
  int rejected = 0;  ///< inputs rejected with a clean error Status
  uint64_t failed_seed = 0;   ///< case seed of the first failure (iff !ok)
  std::string failure;        ///< what went wrong (exception text)
  std::string failing_input;  ///< the input that triggered it

  /// One-line summary, or a replayable failure description.
  std::string Describe() const;
};

/// Run `parse` over `opt.num_inputs` corrupted variants of the `seeds`
/// documents (plus a few fixed pathological inputs: empty, whitespace,
/// binary junk). A C++ exception escaping the parser fails the run with a
/// replayable seed; crashes and sanitizer reports abort the test process,
/// which is the intended signal under ASan/UBSan.
FuzzReport FuzzParser(const FuzzOptions& opt, const std::vector<std::string>& seeds,
                      const ParseFn& parse);

}  // namespace phoebe::testing
