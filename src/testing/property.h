// Minimal deterministic property-based testing harness.
//
// A property is a predicate over a generated JobCase, expressed as a Status:
// OK means "holds" (or "case outside the property's precondition"), anything
// else is a violation whose message becomes the counterexample report. The
// runner draws `num_cases` cases from a seeded Rng; on the first failure it
// greedily shrinks the case (delete stages, then edges, re-checking that the
// property still fails) so the report shows a near-minimal reproducer, plus
// the per-case seed to replay the original.
#pragma once

#include <functional>
#include <string>

#include "common/status.h"
#include "testing/generators.h"

namespace phoebe::testing {

/// \brief Predicate under test. Return OK when the property holds on the
/// case; return a descriptive error when it is violated. Properties must
/// treat cases outside their precondition (e.g. too few stages) as OK —
/// the shrinker interprets any non-OK status as "still failing".
using Property = std::function<Status(const JobCase&)>;

/// \brief Runner configuration.
struct PropertyOptions {
  int num_cases = 200;
  uint64_t seed = 0xbe57;  ///< base seed; case i uses seed + i
  bool shrink = true;
  int max_shrink_steps = 2000;  ///< property re-evaluations the shrinker may spend
  GraphGenOptions graph;
  CostGenOptions costs;
};

/// Case-count multiplier from the PHOEBE_NUM_CASES environment variable
/// (read once per process). Unset, empty, non-numeric, or < 1 → 1. The
/// scheduled CI sweep sets PHOEBE_NUM_CASES=10 to run every property at 10×
/// depth under sanitizers without touching the tests.
int CaseCountMultiplier();

/// `base * CaseCountMultiplier()`, the case count CheckProperty actually
/// runs for `PropertyOptions::num_cases == base`. Tests asserting on
/// `PropertyReport::cases_run` should compare against this.
int ScaledCaseCount(int base);

/// \brief Outcome of a property run.
struct PropertyReport {
  bool ok = true;
  int cases_run = 0;
  int failed_case = -1;       ///< index of the first failing case
  uint64_t failed_seed = 0;   ///< seed + failed_case; replays the original
  Status failure;             ///< property status on the (shrunk) counterexample
  JobCase counterexample;     ///< shrunk failing case (valid iff !ok)
  size_t original_stages = 0;
  size_t shrunk_stages = 0;

  /// Multi-line description: failure message, seeds, and the shrunk case.
  std::string Describe() const;
};

/// Run `prop` on `opt.num_cases` generated cases. Stops at the first failure.
PropertyReport CheckProperty(const PropertyOptions& opt, const Property& prop);

/// Greedy shrinker: repeatedly try deleting one stage (with its incident
/// edges; cost rows follow) or one edge, keeping any deletion under which
/// `prop` still fails, until a fixpoint or `max_steps` evaluations. Exposed
/// for the self-test; CheckProperty calls it automatically.
JobCase ShrinkCase(const JobCase& failing, const Property& prop, int max_steps);

/// Building blocks of the shrinker, also useful to write custom shrink loops:
/// a copy of `c` without stage `victim` (ids above shift down) / without the
/// `edge_index`-th edge.
JobCase RemoveStage(const JobCase& c, dag::StageId victim);
JobCase RemoveEdge(const JobCase& c, size_t edge_index);

}  // namespace phoebe::testing
