// Random-structure generators for property-based tests.
//
// Everything here is deterministic given an Rng: the same seed regenerates
// the same graphs, costs, and traces, so a failing property run can be
// replayed exactly from the seed printed in its report. Graphs are built
// "edges point forward" (stage v only receives edges from stages with a
// smaller id), which makes them acyclic by construction while still covering
// chains, diamonds, layered DAGs, and disconnected unions.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "dag/job_graph.h"
#include "workload/job_instance.h"

namespace phoebe::testing {

/// \brief Shape parameters for random JobGraphs.
struct GraphGenOptions {
  int min_stages = 2;
  int max_stages = 24;
  int max_fan_in = 3;          ///< upstream edges drawn per non-root stage
  double p_extra_edge = 0.25;  ///< chance of one extra (possibly transitive) edge
  double p_new_root = 0.10;    ///< chance a non-first stage starts a new component
  int num_layers = 0;          ///< 0 = free-form; > 0 = layered (edges only
                               ///< between consecutive layers)
  int max_tasks = 50;          ///< per-stage task count in [1, max_tasks]
};

/// Random acyclic JobGraph. Always passes JobGraph::Validate().
dag::JobGraph RandomGraph(const GraphGenOptions& opt, Rng* rng);

/// \brief Shape parameters for random StageCosts.
struct CostGenOptions {
  double exec_lo = 1.0;  ///< per-stage execution seconds, log-uniform
  double exec_hi = 3600.0;
  double bytes_lo = 1e8;  ///< per-stage output bytes, log-uniform
  double bytes_hi = 50e9;
  double p_zero_output = 0.05;  ///< fraction of stages that write nothing
};

/// Random per-stage execution times, log-uniform in [exec_lo, exec_hi].
std::vector<double> RandomExecSeconds(const dag::JobGraph& graph,
                                      const CostGenOptions& opt, Rng* rng);

/// Random StageCosts whose schedule columns (end_time / ttl / tfs) come from
/// running Algorithm 1 on random execution times, so they are mutually
/// consistent; output_bytes and num_tasks are drawn independently. Always
/// passes StageCosts::Validate(graph).
core::StageCosts RandomCosts(const dag::JobGraph& graph, const CostGenOptions& opt,
                             Rng* rng);

/// \brief One generated test case: a graph plus consistent costs.
struct JobCase {
  dag::JobGraph graph;
  core::StageCosts costs;

  /// Human-readable dump for counterexample reports: the graph text format
  /// followed by one `cost` line per stage.
  std::string ToText() const;
};

/// Random graph + costs in one call (costs drawn after the graph, same rng).
JobCase RandomJobCase(const GraphGenOptions& gopt, const CostGenOptions& copt,
                      Rng* rng);

/// Small random workload trace: `num_templates` recurring templates replayed
/// for `days` days through the real WorkloadGenerator. For persistence and
/// round-trip properties that need full JobInstances (truth + estimates).
std::vector<workload::JobInstance> RandomTrace(int num_templates, int days,
                                               uint64_t seed);

}  // namespace phoebe::testing
