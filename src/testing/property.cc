#include "testing/property.h"

#include <cstdlib>
#include <utility>

#include "common/strings.h"

namespace phoebe::testing {

namespace {

/// Copy a stage with its identity fields (id is reassigned by AddStage).
dag::Stage CloneStage(const dag::Stage& s) {
  dag::Stage out;
  out.name = s.name;
  out.operators = s.operators;
  out.stage_type = s.stage_type;
  out.num_tasks = s.num_tasks;
  return out;
}

}  // namespace

JobCase RemoveStage(const JobCase& c, dag::StageId victim) {
  JobCase out;
  out.graph.set_name(c.graph.name());
  const size_t n = c.graph.num_stages();
  for (size_t u = 0; u < n; ++u) {
    if (static_cast<dag::StageId>(u) == victim) continue;
    out.graph.AddStage(CloneStage(c.graph.stage(static_cast<dag::StageId>(u))));
    out.costs.output_bytes.push_back(c.costs.output_bytes[u]);
    out.costs.ttl.push_back(c.costs.ttl[u]);
    out.costs.end_time.push_back(c.costs.end_time[u]);
    out.costs.tfs.push_back(c.costs.tfs[u]);
    out.costs.num_tasks.push_back(c.costs.num_tasks[u]);
  }
  auto shift = [victim](dag::StageId u) {
    return u > victim ? u - 1 : u;
  };
  for (const dag::Edge& e : c.graph.edges()) {
    if (e.from == victim || e.to == victim) continue;
    out.graph.AddEdge(shift(e.from), shift(e.to)).Check();
  }
  return out;
}

JobCase RemoveEdge(const JobCase& c, size_t edge_index) {
  JobCase out;
  out.graph.set_name(c.graph.name());
  out.costs = c.costs;
  for (const dag::Stage& s : c.graph.stages()) out.graph.AddStage(CloneStage(s));
  for (size_t i = 0; i < c.graph.edges().size(); ++i) {
    if (i == edge_index) continue;
    const dag::Edge& e = c.graph.edges()[i];
    out.graph.AddEdge(e.from, e.to).Check();
  }
  return out;
}

JobCase ShrinkCase(const JobCase& failing, const Property& prop, int max_steps) {
  JobCase best = failing;
  int steps = 0;
  bool improved = true;
  while (improved && steps < max_steps) {
    improved = false;
    // Pass 1: stage deletions (largest structural reduction first).
    for (size_t u = 0; u < best.graph.num_stages() && steps < max_steps; ++u) {
      if (best.graph.num_stages() <= 1) break;
      JobCase candidate = RemoveStage(best, static_cast<dag::StageId>(u));
      ++steps;
      if (!prop(candidate).ok()) {
        best = std::move(candidate);
        improved = true;
        --u;  // same index now names the next stage
      }
    }
    // Pass 2: edge deletions.
    for (size_t e = 0; e < best.graph.num_edges() && steps < max_steps; ++e) {
      JobCase candidate = RemoveEdge(best, e);
      ++steps;
      if (!prop(candidate).ok()) {
        best = std::move(candidate);
        improved = true;
        --e;
      }
    }
  }
  return best;
}

int CaseCountMultiplier() {
  static const int kMultiplier = [] {
    const char* env = std::getenv("PHOEBE_NUM_CASES");
    if (env == nullptr) return 1;
    int32_t value = 0;
    if (!ParseInt32(env, &value).ok() || value < 1) return 1;
    return static_cast<int>(value);
  }();
  return kMultiplier;
}

int ScaledCaseCount(int base) { return base * CaseCountMultiplier(); }

PropertyReport CheckProperty(const PropertyOptions& opt, const Property& prop) {
  PropertyReport report;
  const int num_cases = ScaledCaseCount(opt.num_cases);
  for (int i = 0; i < num_cases; ++i) {
    const uint64_t case_seed = opt.seed + static_cast<uint64_t>(i);
    Rng rng(case_seed);
    JobCase c = RandomJobCase(opt.graph, opt.costs, &rng);
    ++report.cases_run;
    Status st = prop(c);
    if (st.ok()) continue;

    report.ok = false;
    report.failed_case = i;
    report.failed_seed = case_seed;
    report.original_stages = c.graph.num_stages();
    report.counterexample =
        opt.shrink ? ShrinkCase(c, prop, opt.max_shrink_steps) : c;
    report.shrunk_stages = report.counterexample.graph.num_stages();
    report.failure = prop(report.counterexample);
    if (report.failure.ok()) {
      // Defensive: a flaky property (shrink invalidated the failure without
      // the shrinker noticing) — report the original status instead.
      report.failure = st;
      report.counterexample = std::move(c);
      report.shrunk_stages = report.original_stages;
    }
    return report;
  }
  return report;
}

std::string PropertyReport::Describe() const {
  if (ok) return StrFormat("property held on %d cases", cases_run);
  return StrFormat(
      "property FAILED on case %d (seed %llu): %s\n"
      "counterexample shrunk from %zu to %zu stages:\n%s",
      failed_case, static_cast<unsigned long long>(failed_seed),
      failure.ToString().c_str(), original_stages, shrunk_stages,
      counterexample.ToText().c_str());
}

}  // namespace phoebe::testing
