// Reusable oracle checks shared by the property suites.
//
// Each oracle re-derives an invariant from first principles (never by calling
// the code under test a second way) and returns a descriptive error Status on
// violation, suitable for a PropertyReport.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "core/checkpoint.h"
#include "core/simulator.h"
#include "dag/job_graph.h"
#include "workload/job_instance.h"

namespace phoebe::testing {

/// Algorithm-1 sanity: every stage starts exactly when its slowest upstream
/// ends (roots at 0), ends start + exec later, job_end is the max end, and
/// the TTL/TFS identities hold (ttl = job_end - end >= 0, tfs = start, and
/// at least one stage has ttl == 0).
Status CheckScheduleSane(const dag::JobGraph& graph,
                         const std::vector<double>& exec_seconds,
                         const core::SimulatedSchedule& sched);

/// Structural cut validity: empty, or sized to the graph with at least one
/// stage on each side. With `require_ancestor_closed`, additionally no
/// after-cut stage may feed a before-cut stage (the before-cut set is a down
/// set of the DAG) — true for every end-time-prefix cut on a consistent
/// schedule with positive execution times.
Status CheckCutValid(const dag::JobGraph& graph, const cluster::CutSet& cut,
                     bool require_ancestor_closed);

/// A sequence of cuts is nested: consecutive before-cut sets are ordered by
/// inclusion (as OptimizeTempStorageMultiCut and the multi-cut IP promise).
Status CheckCutsNested(const std::vector<core::CutResult>& cuts);

/// JobGraph ToText -> FromText reproduces the graph exactly (names, types,
/// tasks, operators, edges).
Status CheckGraphRoundTrip(const dag::JobGraph& graph);

/// SerializeTrace -> ParseTrace reproduces every job field bit-for-bit.
Status CheckTraceRoundTrip(const std::vector<workload::JobInstance>& jobs);

}  // namespace phoebe::testing
