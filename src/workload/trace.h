// Trace (de)serialization: a line-oriented text format for job instances,
// so externally collected traces (or generated workloads) can be stored,
// shipped, and replayed without the generator.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "workload/job_instance.h"

namespace phoebe::workload {

/// Serialize jobs into the text trace format:
///
///   trace v1 <num_jobs>
///   beginjob <job_id> <template_id> <day> <submit_time> <job_name> <input_name>
///   <job-graph text (see dag::JobGraph::ToText)>
///   endgraph
///   truth <input> <output> <exec> <wall> <tasks> <start> <end> <ttl> <tfs>   # per stage
///   est <cost> <exclusive> <in_card> <card> <out_bytes>                      # per stage
///   endjob
///
/// Names must not contain whitespace (generated names never do).
std::string SerializeTrace(const std::vector<JobInstance>& jobs);

/// Parse a trace produced by SerializeTrace. Validates graph structure and
/// per-stage array sizes. Sole Status-first entry point: on error `*out`
/// is untouched and the Status names the malformed job/stage (never a
/// crash; fuzz_parser_test pins this).
Status ParseTrace(std::string_view text, std::vector<JobInstance>* out);

}  // namespace phoebe::workload
