// Synthetic SCOPE/Cosmos workload generation.
//
// The generator produces a population of recurring job *templates* (stable
// DAG, stage types, selectivities, input paths) and, per day, a stream of job
// *instances* with:
//   * ground-truth telemetry: input/output sizes, average task latency, task
//     counts, and a ground-truth schedule that includes pipelined overlap and
//     queueing jitter (the effects Phoebe's simulator does NOT model, which
//     is what the stacking model learns to correct);
//   * a query-optimizer estimate channel whose errors are multiplicative,
//     systematically biased per template+stage, and compound with DAG depth —
//     matching the "off by orders of magnitude" behaviour reported in §3.
//
// Distribution targets mirror the paper's motivation figures: heavy-tailed
// job sizes, most jobs finishing within ~20 minutes, task volume growing ~34%
// and input volume ~80% over two years (Figure 1), and >70% recurrence.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "workload/job_instance.h"
#include "workload/stage_type.h"

namespace phoebe::workload {

/// \brief Per-day shaping hook over the generator's base distributions.
///
/// A shaper multiplies selected generator inputs by day-dependent factors
/// without touching the underlying random streams, so a shaped workload stays
/// deterministic per (config, shaper, day) and the identity shaper (all
/// factors 1.0) is byte-identical to running with no shaper at all — ×1.0 is
/// exact in IEEE arithmetic. The scenario layer (src/scenario/) implements
/// this interface from a declarative event schedule.
///
/// Implementations must be pure functions of their constructor state: the
/// generator may call any method for any day, repeatedly, in any order.
class DayShaper {
 public:
  virtual ~DayShaper() = default;

  /// Multiplier on every template's expected arrivals for `day`.
  virtual double ArrivalMultiplier(int day) const { return 1.0; }
  /// Multiplier on the parameter random-walk step sigma at `day`.
  virtual double DriftSigmaScale(int day) const { return 1.0; }
  /// Multiplier on the per-day input-volume scale at `day`.
  virtual double InputScaleMultiplier(int day) const { return 1.0; }
  /// Relative popularity weight of template `index` out of `num_templates`.
  /// Day-independent; implementations should keep the mean over all templates
  /// at 1.0 so the total expected arrival volume stays matched.
  virtual double TemplateWeight(int index, int num_templates) const {
    (void)index;
    (void)num_templates;
    return 1.0;
  }
};

/// \brief Knobs for the synthetic workload.
struct WorkloadConfig {
  uint64_t seed = 7;
  int num_templates = 100;

  // --- DAG shape (log-normal stage counts, heavy tail).
  double mean_stages = 16.0;
  double stage_sigma = 0.75;
  int min_stages = 3;
  int max_stages = 400;
  double p_disjoint = 0.10;  ///< fraction of templates with 2 independent sub-DAGs

  // --- Data scale.
  double input_gb_log_mean = 2.6;   ///< ln of mean source input in GB (~13.5 GB)
  double input_gb_log_sigma = 1.4;  ///< across templates
  double input_instance_sigma = 0.25;  ///< per-instance input jitter
  double mean_instances_per_day = 4.0; ///< per template (Poisson)

  // --- Temporal drift.
  double daily_input_growth = 0.00082;  ///< (1+g)^730 ~ 1.82 (+80% over 2 years)
  double weekly_amplitude = 0.12;       ///< weekday/weekend seasonality
  double daily_drift_sigma = 0.11;      ///< random walk on template parameters

  // --- Ground-truth noise. The exec/output sigmas bound what any predictor
  // can reach (the paper's best models stop at R^2 0.85 / 0.91); the schedule
  // noise (congestion, queue outliers, stragglers, overlap jitter) is
  // invisible to the strict-boundary simulator and caps TTL predictability
  // (paper: R^2 0.35, correlation 0.77).
  double exec_noise_sigma = 0.22;
  double output_noise_sigma = 0.10;
  double queue_delay_mean_sec = 2.0;
  double congestion_sigma = 0.7;      ///< per-instance log factor on queueing
  double queue_outlier_prob = 0.03;   ///< chance of a Pareto queueing spike
  double queue_outlier_scale_sec = 10.0;
  double straggler_prob = 0.06;       ///< chance a stage's wall time stretches
  double straggler_max_factor = 1.6;
  double overlap_jitter_lo = 0.2;     ///< per-instance pipeline-overlap range

  // --- Optimizer-estimate channel (the flawed CLEO-style inputs).
  // Cardinality/output-size estimates are badly biased; the exclusive-cost
  // estimate is cleaner at the operator level (it is the top PFI feature in
  // the paper) but still compounds with depth, which is what produces the
  // long QError tail on large plans (Figure 9).
  double est_bias_sigma = 1.5;    ///< persistent per-(template,stage) log bias
  double est_noise_sigma = 0.50;  ///< per-instance log noise
  double est_depth_sigma = 0.22;  ///< extra log error per unit of DAG depth
  double est_cost_bias_sigma = 0.45;   ///< persistent bias on exclusive cost
  double est_cost_noise_sigma = 0.15;  ///< per-instance noise on exclusive cost
  double est_cost_depth_sigma = 0.50;  ///< depth compounding on exclusive cost
  /// Systematic depth bias: production optimizers tend to under-estimate
  /// cardinalities (and hence costs) ever more as errors propagate through
  /// joins/UDFs, which reorders whole estimated schedules.
  double est_depth_bias = -0.22;       ///< log-bias per depth level (sizes)
  double est_cost_depth_bias = -0.18;  ///< log-bias per depth level (cost)

  /// Partition sizes also grow over time (newer SKUs, bigger containers), so
  /// task counts grow slower than input volume: (1+g)^730 ~ 1.34 vs 1.82.
  double daily_partition_growth = 0.00032;

  int max_tasks_per_stage = 2000;

  Status Validate() const;
};

/// \brief Per-stage template parameters (stable across occurrences).
struct TemplateStage {
  int stage_type = 0;
  double sel_log = 0.0;      ///< log selectivity for this template's stage
  double rate_factor = 1.0;  ///< multiplier on the type's sec_per_gb
  double est_bias_log = 0.0; ///< persistent estimate-channel bias
  double est_cost_bias_log = 0.0;
};

/// \brief A recurring job: structure plus stable parameters.
struct JobTemplate {
  int id = 0;
  std::string name;              ///< normalized job name (text feature)
  std::string input_name;        ///< normalized input path (text feature)
  double input_format_factor = 1.0;  ///< text inputs are slower to extract
  double base_input_gb = 10.0;   ///< per source stage at day 0
  double instances_per_day = 4.0;
  double row_bytes = 256.0;      ///< for byte<->cardinality conversion
  uint64_t seed = 0;             ///< template-private randomness stream
  // Template-level scheduling character: how aggressively this pipeline
  // overlaps and how contended its queue is. Neither is visible to the TTL
  // stacking features, so they bound TTL predictability from below (the
  // paper's stacked TTL stays at R^2 0.35 despite correlation 0.77).
  double overlap_scale = 1.0;
  double queue_scale = 1.0;

  dag::JobGraph graph;           ///< stage names/types/ops; tasks filled per run
  std::vector<TemplateStage> stages;  ///< indexed by StageId
  std::vector<int> depth;        ///< DAG depth per stage (error compounding)
};

/// \brief Deterministic workload generator.
///
/// Days must be generated in non-decreasing order (the parameter random walk
/// advances with the day counter); regenerating the same day twice returns
/// identical instances.
class WorkloadGenerator {
 public:
  /// `shaper` may be null (the common case): no per-day shaping. A non-null
  /// shaper must be supplied at construction because the drift walk advances
  /// cumulatively — retrofitting a shaper mid-stream would desynchronize the
  /// walk from a fresh generator with the same shaper.
  explicit WorkloadGenerator(WorkloadConfig config,
                             std::shared_ptr<const DayShaper> shaper = nullptr);

  const WorkloadConfig& config() const { return config_; }
  const std::vector<JobTemplate>& templates() const { return templates_; }

  /// All job instances submitted on `day` (0-based).
  std::vector<JobInstance> GenerateDay(int day);

  /// Convenience: a span of consecutive days.
  std::vector<std::vector<JobInstance>> GenerateDays(int first_day, int num_days);

  /// Aggregate per-day scale factors (exposed for the Figure 1 bench).
  double InputScale(int day) const;

 private:
  struct DriftState {
    int day = -1;
    double rate_walk = 0.0;  ///< cumulative log drift on execution rates
    double sel_walk = 0.0;   ///< cumulative log drift on selectivities
  };

  JobTemplate MakeTemplate(int id, Rng* rng) const;
  void BuildDag(JobTemplate* tmpl, Rng* rng) const;
  JobInstance MakeInstance(const JobTemplate& tmpl, const DriftState& drift, int day,
                           int64_t job_id, Rng* rng) const;
  void AdvanceDrift(int template_idx, int day);

  WorkloadConfig config_;
  std::shared_ptr<const DayShaper> shaper_;  ///< null = no shaping
  std::vector<JobTemplate> templates_;
  std::vector<DriftState> drift_;  ///< per template
  int64_t next_job_id_ = 1;
  int last_day_ = -1;
};

}  // namespace phoebe::workload
