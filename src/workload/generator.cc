#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "ml/text.h"  // Fnv1a64 for deterministic stream derivation

namespace phoebe::workload {

namespace {

constexpr double kGb = 1e9;

uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t v[2] = {a, b};
  return ml::Fnv1a64(v, sizeof(v));
}

const char* kTeams[] = {"ads",    "bing",   "office", "xbox",  "azure",
                        "mail",   "search", "store",  "maps",  "news"};
const char* kPurposes[] = {"click_agg",  "revenue_rollup", "session_join",
                           "index_build", "dedup_scrub",   "funnel_report",
                           "model_feats", "geo_enrich",    "spam_filter",
                           "usage_daily"};
const char* kCadence[] = {"hourly", "daily", "weekly", "adhoc"};

struct ExtInfo {
  const char* ext;
  double weight;
  double format_factor;  // extraction slowdown vs structured streams
};
const ExtInfo kExts[] = {
    {"ss", 0.60, 1.0}, {"log", 0.18, 2.6}, {"tsv", 0.12, 1.8}, {"csv", 0.10, 1.7}};

}  // namespace

Status WorkloadConfig::Validate() const {
  if (num_templates < 1) return Status::InvalidArgument("num_templates must be >= 1");
  if (min_stages < 2) return Status::InvalidArgument("min_stages must be >= 2");
  if (max_stages < min_stages)
    return Status::InvalidArgument("max_stages must be >= min_stages");
  if (mean_stages <= 0 || stage_sigma < 0)
    return Status::InvalidArgument("bad stage-count distribution");
  if (p_disjoint < 0 || p_disjoint > 1)
    return Status::InvalidArgument("p_disjoint must be in [0, 1]");
  if (max_tasks_per_stage < 1)
    return Status::InvalidArgument("max_tasks_per_stage must be >= 1");
  if (mean_instances_per_day <= 0)
    return Status::InvalidArgument("mean_instances_per_day must be > 0");
  return Status::OK();
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config,
                                     std::shared_ptr<const DayShaper> shaper)
    : config_(config), shaper_(std::move(shaper)) {
  config_.Validate().Check();
  Rng rng(config_.seed);
  templates_.reserve(static_cast<size_t>(config_.num_templates));
  for (int i = 0; i < config_.num_templates; ++i) {
    Rng tmpl_rng = rng.Fork();
    templates_.push_back(MakeTemplate(i, &tmpl_rng));
  }
  drift_.assign(templates_.size(), DriftState{});
}

double WorkloadGenerator::InputScale(int day) const {
  double growth = std::pow(1.0 + config_.daily_input_growth, static_cast<double>(day));
  double weekly =
      1.0 + config_.weekly_amplitude * std::sin(2.0 * M_PI * static_cast<double>(day) / 7.0);
  return growth * weekly;
}

JobTemplate WorkloadGenerator::MakeTemplate(int id, Rng* rng) const {
  JobTemplate t;
  t.id = id;
  t.seed = rng->NextU64();

  const char* team = kTeams[rng->UniformInt(0, 9)];
  const char* purpose = kPurposes[rng->UniformInt(0, 9)];
  const char* cadence = kCadence[static_cast<size_t>(rng->Categorical({4, 4, 1, 1}))];
  t.name = StrFormat("%s_%s_%s_v%d", team, purpose, cadence,
                     static_cast<int>(rng->UniformInt(1, 5)));

  const ExtInfo& ext = kExts[rng->Categorical(
      {kExts[0].weight, kExts[1].weight, kExts[2].weight, kExts[3].weight})];
  t.input_name = StrFormat("shares/%s/%s/part.%s", team, purpose, ext.ext);
  t.input_format_factor = ext.format_factor;

  t.base_input_gb = rng->LogNormal(config_.input_gb_log_mean, config_.input_gb_log_sigma);
  t.instances_per_day =
      std::max(0.2, rng->LogNormal(std::log(config_.mean_instances_per_day) - 0.5, 1.0));
  t.row_bytes = rng->Uniform(64.0, 2048.0);
  t.overlap_scale = rng->Uniform(0.4, 1.6);
  t.queue_scale = rng->LogNormal(0.0, 0.25);

  BuildDag(&t, rng);

  // Stable per-stage parameters.
  const auto& catalog = StageTypeCatalog();
  t.stages.reserve(t.graph.num_stages());
  for (const dag::Stage& s : t.graph.stages()) {
    const StageTypeInfo& info = catalog[static_cast<size_t>(s.stage_type)];
    TemplateStage ts;
    ts.stage_type = s.stage_type;
    ts.sel_log = info.sel_log_mean + rng->Normal(0.0, info.sel_log_sigma);
    ts.rate_factor = rng->LogNormal(0.0, 0.30);
    ts.est_bias_log = rng->Normal(0.0, config_.est_bias_sigma);
    ts.est_cost_bias_log = rng->Normal(0.0, config_.est_cost_bias_sigma);
    t.stages.push_back(ts);
  }

  // DAG depth per stage, for estimate-error compounding.
  auto order = t.graph.TopologicalOrder();
  order.status().Check();
  t.depth.assign(t.graph.num_stages(), 1);
  for (dag::StageId u : *order) {
    for (dag::StageId v : t.graph.downstream(u)) {
      t.depth[static_cast<size_t>(v)] = std::max(
          t.depth[static_cast<size_t>(v)], t.depth[static_cast<size_t>(u)] + 1);
    }
  }
  return t;
}

void WorkloadGenerator::BuildDag(JobTemplate* tmpl, Rng* rng) const {
  double mu = std::log(config_.mean_stages) - 0.5 * config_.stage_sigma * config_.stage_sigma;
  int n = static_cast<int>(std::lround(rng->LogNormal(mu, config_.stage_sigma)));
  n = std::clamp(n, config_.min_stages, config_.max_stages);

  dag::JobGraph g(tmpl->name);
  const auto& catalog = StageTypeCatalog();

  // Per-template preference weights over interior types, so templates have
  // distinct operator mixes (some join-heavy, some aggregation-heavy, ...).
  const auto& interior_types = InteriorStageTypes();
  std::vector<double> type_weights(interior_types.size());
  for (double& w : type_weights) w = rng->Exponential(1.0) + 0.05;

  int n_components = (n >= 8 && rng->Bernoulli(config_.p_disjoint)) ? 2 : 1;

  auto add_stage = [&](int stage_type) {
    const StageTypeInfo& info = catalog[static_cast<size_t>(stage_type)];
    dag::Stage s;
    s.stage_type = stage_type;
    s.operators = info.ops;
    s.num_tasks = 1;  // filled per instance
    dag::StageId id = g.AddStage(std::move(s));
    g.mutable_stage(id).name =
        StrFormat("SV%d_%s", static_cast<int>(id) + 1, info.name.c_str());
    return id;
  };

  for (int comp = 0; comp < n_components; ++comp) {
    int nc = (n_components == 1) ? n : (comp == 0 ? n / 2 : n - n / 2);
    nc = std::max(nc, config_.min_stages);
    int n_src = std::max(1, static_cast<int>(std::lround(nc * rng->Uniform(0.10, 0.25))));
    int n_sink = std::max(1, static_cast<int>(std::lround(nc * rng->Uniform(0.05, 0.15))));
    while (n_src + n_sink > nc - 1) {
      if (n_src > 1) --n_src;
      else if (n_sink > 1) --n_sink;
      else break;
    }
    int n_interior = std::max(1, nc - n_src - n_sink);

    std::vector<dag::StageId> non_sinks;  // eligible upstream candidates

    const auto& sources = SourceStageTypes();
    for (int i = 0; i < n_src; ++i) {
      // Favor plain Extract; others uniform.
      size_t pick = rng->Bernoulli(0.4)
                        ? 0
                        : static_cast<size_t>(rng->UniformInt(
                              0, static_cast<int64_t>(sources.size()) - 1));
      non_sinks.push_back(add_stage(sources[pick]));
    }

    auto pick_upstream = [&](dag::StageId self, std::vector<dag::StageId>* chosen,
                             int k) {
      // Recency-biased choice: recent producers are likelier parents, giving
      // the long chains real SCOPE plans show.
      int limit = 0;
      for (dag::StageId cand : non_sinks) {
        if (cand < self) ++limit;
      }
      if (limit == 0) return;
      for (int tries = 0; tries < 8 * k && static_cast<int>(chosen->size()) < k;
           ++tries) {
        int back = static_cast<int>(rng->Exponential(1.0 / 3.0));
        int idx = std::max(0, limit - 1 - back);
        dag::StageId cand = non_sinks[static_cast<size_t>(idx)];
        if (std::find(chosen->begin(), chosen->end(), cand) == chosen->end()) {
          chosen->push_back(cand);
        }
      }
    };

    for (int i = 0; i < n_interior; ++i) {
      size_t w = rng->Categorical(type_weights);
      int type = interior_types[w];
      bool multi = catalog[static_cast<size_t>(type)].needs_multi_input;
      if (multi && non_sinks.size() < 2) {
        // Not enough producers yet; fall back to a single-input type.
        while (catalog[static_cast<size_t>(type)].needs_multi_input) {
          type = interior_types[rng->Categorical(type_weights)];
        }
        multi = false;
      }
      dag::StageId id = add_stage(type);
      std::vector<dag::StageId> ups;
      pick_upstream(id, &ups, multi ? static_cast<int>(rng->UniformInt(2, 3)) : 1);
      for (dag::StageId u : ups) g.AddEdge(u, id).Check();
      non_sinks.push_back(id);
    }

    const auto& sinks = SinkStageTypes();
    std::vector<dag::StageId> sink_ids;
    for (int i = 0; i < n_sink; ++i) {
      dag::StageId id = add_stage(sinks[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(sinks.size()) - 1))]);
      std::vector<dag::StageId> ups;
      pick_upstream(id, &ups, static_cast<int>(rng->UniformInt(1, 2)));
      for (dag::StageId u : ups) g.AddEdge(u, id).Check();
      sink_ids.push_back(id);
    }

    // Every producer must feed something: dangling non-sink stages connect to
    // a random sink of this component.
    for (dag::StageId u : non_sinks) {
      if (g.downstream(u).empty()) {
        dag::StageId sink = sink_ids[static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(sink_ids.size()) - 1))];
        if (u != sink) g.AddEdge(u, sink).Check();
      }
    }
  }

  g.Validate().Check();
  tmpl->graph = std::move(g);
}

void WorkloadGenerator::AdvanceDrift(int template_idx, int day) {
  DriftState& st = drift_[static_cast<size_t>(template_idx)];
  if (day < st.day) {
    // Backward request: recompute the walk from scratch.
    st = DriftState{};
  }
  const JobTemplate& tmpl = templates_[static_cast<size_t>(template_idx)];
  // Mean-reverting (AR(1)) drift: parameters wander day to day — enough to
  // make week-old models stale (Figure 8) — but stay bounded over the
  // two-year horizon of Figure 1 (stationary std ~ 3x the daily sigma).
  constexpr double kReversion = 0.95;
  while (st.day < day) {
    ++st.day;
    const double sigma =
        shaper_ ? config_.daily_drift_sigma * shaper_->DriftSigmaScale(st.day)
                : config_.daily_drift_sigma;
    Rng step(Mix(tmpl.seed, 0xD41F7000ULL + static_cast<uint64_t>(st.day)));
    st.rate_walk = kReversion * st.rate_walk + step.Normal(0.0, sigma);
    st.sel_walk = kReversion * st.sel_walk + step.Normal(0.0, sigma);
  }
}

std::vector<JobInstance> WorkloadGenerator::GenerateDay(int day) {
  PHOEBE_CHECK(day >= 0);
  std::vector<JobInstance> out;
  int64_t seq = 0;
  const int num_templates = static_cast<int>(templates_.size());
  for (size_t ti = 0; ti < templates_.size(); ++ti) {
    AdvanceDrift(static_cast<int>(ti), day);
    const JobTemplate& tmpl = templates_[ti];
    Rng day_rng(Mix(Mix(config_.seed, tmpl.seed), 0xDA70000ULL + static_cast<uint64_t>(day)));
    double mean_arrivals = tmpl.instances_per_day;
    if (shaper_) {
      mean_arrivals *= shaper_->ArrivalMultiplier(day) *
                       shaper_->TemplateWeight(static_cast<int>(ti), num_templates);
    }
    int64_t count = day_rng.Poisson(mean_arrivals);
    for (int64_t k = 0; k < count; ++k) {
      Rng inst_rng = day_rng.Fork();
      int64_t job_id = static_cast<int64_t>(day) * 1000000 + seq++;
      out.push_back(MakeInstance(tmpl, drift_[ti], day, job_id, &inst_rng));
    }
  }
  last_day_ = day;
  return out;
}

std::vector<std::vector<JobInstance>> WorkloadGenerator::GenerateDays(int first_day,
                                                                      int num_days) {
  std::vector<std::vector<JobInstance>> out;
  out.reserve(static_cast<size_t>(num_days));
  for (int d = 0; d < num_days; ++d) out.push_back(GenerateDay(first_day + d));
  return out;
}

JobInstance WorkloadGenerator::MakeInstance(const JobTemplate& tmpl,
                                            const DriftState& drift, int day,
                                            int64_t job_id, Rng* rng) const {
  JobInstance inst;
  inst.job_id = job_id;
  inst.template_id = tmpl.id;
  inst.day = day;
  inst.submit_time = rng->Uniform(0.0, 86400.0);
  inst.job_name = tmpl.name;
  inst.norm_input_name = tmpl.input_name;
  inst.graph = tmpl.graph;

  const size_t n = inst.graph.num_stages();
  inst.truth.assign(n, StageTruth{});
  inst.est.assign(n, StageEstimates{});

  const auto& catalog = StageTypeCatalog();
  auto order = inst.graph.TopologicalOrder();
  order.status().Check();

  const double scale =
      shaper_ ? InputScale(day) * shaper_->InputScaleMultiplier(day)
              : InputScale(day);
  const double instance_factor = rng->LogNormal(0.0, config_.input_instance_sigma);
  const double rate_drift = std::exp(drift.rate_walk);
  const double partition_scale =
      std::pow(1.0 + config_.daily_partition_growth, static_cast<double>(day));

  // --- Data flow + per-stage cost. Two parallel flows:
  //  * the *expected* flow — what a perfect compile-time model could know
  //    (root input sizes are known; selectivities and rates at their current
  //    means) — feeds the optimizer-estimate channel;
  //  * the *realized* flow adds the per-instance execution noise and is what
  //    telemetry records.
  const size_t n_stages = inst.graph.num_stages();
  std::vector<double> exp_input(n_stages), exp_output(n_stages), exp_exec(n_stages);
  for (dag::StageId u : *order) {
    const size_t ui = static_cast<size_t>(u);
    const TemplateStage& ts = tmpl.stages[ui];
    const StageTypeInfo& info = catalog[static_cast<size_t>(ts.stage_type)];
    StageTruth& tr = inst.truth[ui];

    if (inst.graph.upstream(u).empty()) {
      // Root input files: their sizes are known exactly at compile time.
      tr.input_bytes = tmpl.base_input_gb * kGb * scale * instance_factor *
                       rng->LogNormal(0.0, 0.20);
      exp_input[ui] = tr.input_bytes;
    } else {
      tr.input_bytes = 0.0;
      exp_input[ui] = 0.0;
      for (dag::StageId up : inst.graph.upstream(u)) {
        tr.input_bytes += inst.truth[static_cast<size_t>(up)].output_bytes;
        exp_input[ui] += exp_output[static_cast<size_t>(up)];
      }
    }
    tr.input_bytes = std::max(tr.input_bytes, 1e3);
    exp_input[ui] = std::max(exp_input[ui], 1e3);

    double mean_sel = std::exp(ts.sel_log + 0.2 * drift.sel_walk);
    double sel = mean_sel * std::exp(rng->Normal(0.0, config_.output_noise_sigma));
    tr.output_bytes = std::clamp(tr.input_bytes * sel, 1e3, tr.input_bytes * 20.0);
    exp_output[ui] = std::clamp(exp_input[ui] * mean_sel, 1e3, exp_input[ui] * 20.0);

    double input_gb = tr.input_bytes / kGb;
    tr.num_tasks = static_cast<int>(std::clamp<int64_t>(
        static_cast<int64_t>(std::ceil(input_gb / (info.gb_per_task * partition_scale))),
        1, config_.max_tasks_per_stage));

    double fmt = info.is_source ? tmpl.input_format_factor : 1.0;
    double gb_per_task = input_gb / tr.num_tasks;
    double mean_exec =
        info.fixed_sec + info.sec_per_gb * ts.rate_factor * rate_drift * fmt * gb_per_task;
    tr.exec_seconds = mean_exec * rng->LogNormal(0.0, config_.exec_noise_sigma);
    exp_exec[ui] =
        info.fixed_sec + info.sec_per_gb * ts.rate_factor * rate_drift * fmt *
                             (exp_input[ui] / kGb / tr.num_tasks);
  }

  // --- Ground-truth schedule: pipelined overlap, queueing jitter, cluster
  // congestion, and straggler waves. Deliberately richer than Phoebe's
  // strict-boundary simulator — the gap is what the stacking model must
  // (partially) learn, and what caps TTL predictability overall.
  const double congestion = rng->LogNormal(0.0, config_.congestion_sigma);
  // Per-run pipelining aggressiveness: how much of the configured overlap
  // this particular execution realizes (cluster load dependent, unobservable
  // at compile time). Zero-overlap simulation is an upper envelope on the
  // schedule, so this spread is one-sided unlearnable TTL error.
  const double pipe_factor = rng->Uniform(0.2, 1.2);
  for (dag::StageId u : *order) {
    const size_t ui = static_cast<size_t>(u);
    const TemplateStage& ts = tmpl.stages[ui];
    const StageTypeInfo& info = catalog[static_cast<size_t>(ts.stage_type)];
    StageTruth& tr = inst.truth[ui];

    // Wall-clock duration: stragglers stretch the stage beyond the average
    // task latency the cost models predict.
    tr.wall_seconds = tr.exec_seconds;
    if (rng->Bernoulli(config_.straggler_prob)) {
      tr.wall_seconds *= rng->Uniform(1.2, config_.straggler_max_factor);
    }

    double overlap =
        std::min(0.95, info.pipeline_overlap * tmpl.overlap_scale * pipe_factor *
                           rng->Uniform(config_.overlap_jitter_lo, 1.0));
    double start = 0.0;
    for (dag::StageId up : inst.graph.upstream(u)) {
      const StageTruth& ut = inst.truth[static_cast<size_t>(up)];
      // This stage may start before the upstream fully finishes.
      double dep = ut.end_time - overlap * ut.wall_seconds;
      dep = std::max(dep, ut.start_time + 0.05 * ut.wall_seconds);
      start = std::max(start, dep);
    }
    start += rng->Exponential(
        1.0 / (config_.queue_delay_mean_sec * congestion * tmpl.queue_scale));
    if (rng->Bernoulli(config_.queue_outlier_prob)) {
      start += rng->Pareto(config_.queue_outlier_scale_sec, 1.5);
    }
    tr.start_time = start;
    tr.end_time = start + tr.wall_seconds;
  }
  double job_end = 0.0;
  for (const StageTruth& t : inst.truth) job_end = std::max(job_end, t.end_time);
  // Finalization phase: output commit, validation, and manager teardown hold
  // temp data past the last stage's end. Unobservable at compile time, so it
  // shifts every stage's TTL by an unlearnable amount.
  job_end += rng->Exponential(1.0 / (0.10 * std::max(1.0, job_end)));
  for (StageTruth& t : inst.truth) {
    t.ttl = job_end - t.end_time;
    t.tfs = t.start_time;
  }

  // --- Optimizer-estimate channel: persistent bias + depth-compounded noise.
  for (dag::StageId u : *order) {
    const size_t ui = static_cast<size_t>(u);
    const TemplateStage& ts = tmpl.stages[ui];
    const StageTruth& tr = inst.truth[ui];
    StageEstimates& e = inst.est[ui];

    double d = static_cast<double>(tmpl.depth[ui] - 1);
    double sigma = std::sqrt(config_.est_noise_sigma * config_.est_noise_sigma +
                             config_.est_depth_sigma * config_.est_depth_sigma * d * d);

    e.est_output_bytes =
        exp_output[ui] *
        std::exp(ts.est_bias_log + config_.est_depth_bias * d + rng->Normal(0.0, sigma));
    e.est_cardinality = std::max(1.0, e.est_output_bytes / tmpl.row_bytes);
    e.est_input_cardinality = std::max(
        1.0, exp_input[ui] * std::exp(0.8 * ts.est_bias_log + rng->Normal(0.0, sigma)) /
                 tmpl.row_bytes);
    double sigma_cost =
        std::sqrt(config_.est_cost_noise_sigma * config_.est_cost_noise_sigma +
                  config_.est_cost_depth_sigma * config_.est_cost_depth_sigma * d * d);
    e.est_exclusive_cost =
        exp_exec[ui] * std::exp(ts.est_cost_bias_log + config_.est_cost_depth_bias * d +
                                rng->Normal(0.0, sigma_cost));
    // Naive cumulative cost: sums over all upstream paths (double counts in
    // diamonds, as production optimizers tend to).
    e.est_cost = e.est_exclusive_cost;
    for (dag::StageId up : inst.graph.upstream(u)) {
      e.est_cost += inst.est[static_cast<size_t>(up)].est_cost;
    }
  }

  // Publish per-stage task counts into the graph (the compiler would know
  // the intended degree of parallelism).
  for (size_t i = 0; i < n; ++i) {
    inst.graph.mutable_stage(static_cast<dag::StageId>(i)).num_tasks =
        inst.truth[i].num_tasks;
  }
  return inst;
}

}  // namespace phoebe::workload
