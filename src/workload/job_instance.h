// One executed occurrence of a recurring job, with per-stage ground truth
// (what the cluster would have measured) and per-stage query-optimizer
// estimates (what the compiler knows at submission time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/job_graph.h"

namespace phoebe::workload {

/// \brief Ground-truth per-stage execution facts (telemetry).
struct StageTruth {
  double input_bytes = 0.0;
  double output_bytes = 0.0;
  double exec_seconds = 0.0;  ///< average task latency of the stage
  double wall_seconds = 0.0;  ///< stage wall-clock duration (>= exec_seconds
                              ///< under stragglers; what the schedule sees)
  int num_tasks = 1;

  // Ground-truth schedule (relative to job start).
  double start_time = 0.0;
  double end_time = 0.0;
  double ttl = 0.0;  ///< job end time - stage end time
  double tfs = 0.0;  ///< stage start time (time from start)
};

/// \brief Compile-time query-optimizer estimates (CLEO-style channel).
///
/// These are intentionally biased and noisy, with errors compounding along
/// the DAG depth — Phoebe uses them only as model *features*.
struct StageEstimates {
  double est_cost = 0.0;               ///< estimated total stage cost (s)
  double est_exclusive_cost = 0.0;     ///< estimated exclusive cost (s)
  double est_input_cardinality = 0.0;  ///< rows in
  double est_cardinality = 0.0;        ///< rows out of the last operator
  double est_output_bytes = 0.0;       ///< bytes out
};

/// \brief One job occurrence on one day.
struct JobInstance {
  int64_t job_id = 0;
  int template_id = 0;
  int day = 0;                 ///< day index since workload epoch
  double submit_time = 0.0;    ///< seconds within the day

  std::string job_name;        ///< normalized job name (text feature)
  std::string norm_input_name; ///< normalized input path (text feature)

  dag::JobGraph graph;
  std::vector<StageTruth> truth;     ///< indexed by StageId
  std::vector<StageEstimates> est;   ///< indexed by StageId

  /// Ground-truth job runtime: max stage end time.
  double JobRuntime() const;
  /// Sum of per-stage output bytes (total temp data written).
  double TotalTempBytes() const;
  /// Total temp-storage occupancy in byte-seconds: sum_u o_u * ttl_u.
  double TempByteSeconds() const;
  /// Total task count.
  int TotalTasks() const;
};

}  // namespace phoebe::workload
