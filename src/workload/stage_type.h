// Stage-type catalog: the 33 canonical operator combinations the paper's
// production workload exhibits (Section 4.1.2). Each type carries the
// ground-truth cost-model coefficients used by the workload generator; the
// learned predictors never see these coefficients, only their effects.
#pragma once

#include <string>
#include <vector>

#include "dag/operator_kind.h"

namespace phoebe::workload {

/// \brief Ground-truth characteristics of one stage type.
struct StageTypeInfo {
  std::string name;                          ///< e.g. "Extract_Split"
  std::vector<dag::OperatorKind> ops;        ///< operator pipeline

  // Cost model (ground truth; per average task).
  double sec_per_gb = 10.0;    ///< processing rate on input data
  double fixed_sec = 2.0;      ///< per-task startup overhead
  double sel_log_mean = 0.0;   ///< log(output/input) mean
  double sel_log_sigma = 0.3;  ///< log-selectivity spread across templates

  // Scheduling behaviour.
  double pipeline_overlap = 0.0;  ///< fraction of upstream runtime this type
                                  ///< can overlap (violates strict boundaries)
  double gb_per_task = 1.0;       ///< data partition size per task

  // Structural role.
  bool is_source = false;       ///< reads external input (Extract-like)
  bool needs_multi_input = false;  ///< joins/unions need >= 2 upstreams
  bool is_sink = false;         ///< terminal output stage
};

/// The catalog; exactly 33 entries, index == stage_type id.
const std::vector<StageTypeInfo>& StageTypeCatalog();

inline constexpr int kNumStageTypes = 33;

/// Indices of catalog entries that are sources / sinks / interior types,
/// precomputed for the generator.
const std::vector<int>& SourceStageTypes();
const std::vector<int>& SinkStageTypes();
const std::vector<int>& InteriorStageTypes();      ///< neither source nor sink
const std::vector<int>& MultiInputStageTypes();    ///< interior with >= 2 inputs

}  // namespace phoebe::workload
