#include "workload/job_instance.h"

#include <algorithm>

namespace phoebe::workload {

double JobInstance::JobRuntime() const {
  double end = 0.0;
  for (const StageTruth& t : truth) end = std::max(end, t.end_time);
  return end;
}

double JobInstance::TotalTempBytes() const {
  double total = 0.0;
  for (const StageTruth& t : truth) total += t.output_bytes;
  return total;
}

double JobInstance::TempByteSeconds() const {
  double total = 0.0;
  for (const StageTruth& t : truth) total += t.output_bytes * t.ttl;
  return total;
}

int JobInstance::TotalTasks() const {
  int total = 0;
  for (const StageTruth& t : truth) total += t.num_tasks;
  return total;
}

}  // namespace phoebe::workload
