#include "workload/stage_type.h"

#include "common/macros.h"

namespace phoebe::workload {

namespace {

using dag::OperatorKind;
using K = OperatorKind;

std::vector<StageTypeInfo> BuildCatalog() {
  std::vector<StageTypeInfo> c;
  c.reserve(kNumStageTypes);

  auto add = [&](std::string name, std::vector<K> ops, double sec_per_gb,
                 double fixed_sec, double sel_log_mean, double sel_log_sigma,
                 double overlap, double gb_per_task, bool source, bool multi,
                 bool sink) {
    StageTypeInfo t;
    t.name = std::move(name);
    t.ops = std::move(ops);
    t.sec_per_gb = sec_per_gb;
    t.fixed_sec = fixed_sec;
    t.sel_log_mean = sel_log_mean;
    t.sel_log_sigma = sel_log_sigma;
    t.pipeline_overlap = overlap;
    t.gb_per_task = gb_per_task;
    t.is_source = source;
    t.needs_multi_input = multi;
    t.is_sink = sink;
    c.push_back(std::move(t));
  };

  // --- Sources (Extract-like). Extract overlaps heavily with downstream in
  // the real engine, which is what biases the simulator's TTL upward.
  add("Extract",            {K::kExtract},                 14, 3, -0.05, 0.15, 0.00, 2.0, true,  false, false);
  add("Extract_Filter",     {K::kExtract, K::kFilter},     16, 3, -1.20, 0.60, 0.00, 2.0, true,  false, false);
  add("Extract_Split",      {K::kExtract, K::kSplit},      15, 3, -0.10, 0.20, 0.00, 2.0, true,  false, false);
  add("Extract_Partition",  {K::kExtract, K::kPartition},  18, 4, -0.02, 0.10, 0.00, 2.0, true,  false, false);
  add("Extract_Process",    {K::kExtract, K::kProcess},    30, 5, -0.40, 0.70, 0.00, 1.5, true,  false, false);

  // --- Interior single-input types.
  add("Filter",             {K::kFilter},                   5, 1, -1.40, 0.80, 0.78, 1.0, false, false, false);
  add("Filter_Project",     {K::kFilter, K::kProject},      6, 1, -1.70, 0.80, 0.78, 1.0, false, false, false);
  add("Project",            {K::kProject},                  4, 1, -0.45, 0.30, 0.82, 1.0, false, false, false);
  add("Aggregate",          {K::kAggregate},               12, 2, -2.80, 1.00, 0.35, 1.0, false, false, false);
  add("Aggregate_Split",    {K::kAggregate, K::kSplit},    13, 2, -2.60, 1.00, 0.35, 1.0, false, false, false);
  add("Aggregate_Partition",{K::kAggregate, K::kPartition},15, 3, -2.50, 1.00, 0.30, 1.0, false, false, false);
  add("Sort",               {K::kSort},                    20, 3,  0.00, 0.02, 0.25, 0.8, false, false, false);
  add("Sort_TopN",          {K::kSort, K::kTopN},          18, 3, -4.50, 1.20, 0.25, 0.8, false, false, false);
  add("Partition",          {K::kPartition},                8, 2, -0.01, 0.05, 0.72, 1.2, false, false, false);
  add("Merge",              {K::kMerge},                    6, 2, -0.02, 0.05, 0.60, 1.2, false, false, false);
  add("Merge_Aggregate",    {K::kMerge, K::kAggregate},    14, 3, -2.40, 1.00, 0.32, 1.0, false, false, false);
  add("Merge_Sort",         {K::kMerge, K::kSort},         22, 3, -0.01, 0.02, 0.22, 0.8, false, false, false);
  add("Split",              {K::kSplit},                    4, 1, -0.05, 0.10, 0.75, 1.2, false, false, false);
  add("Process",            {K::kProcess},                 26, 4, -0.30, 0.90, 0.45, 1.0, false, false, false);
  add("Process_Partition",  {K::kProcess, K::kPartition},  28, 4, -0.25, 0.90, 0.45, 1.0, false, false, false);
  add("Reduce",             {K::kReduce},                  24, 4, -1.80, 1.00, 0.30, 1.0, false, false, false);
  add("Reduce_Partition",   {K::kReduce, K::kPartition},   26, 4, -1.70, 1.00, 0.30, 1.0, false, false, false);
  add("TopN",               {K::kTopN},                     6, 1, -5.00, 1.00, 0.65, 1.0, false, false, false);
  add("Window",             {K::kWindow},                  17, 3, -0.10, 0.20, 0.35, 0.9, false, false, false);
  add("Spool",              {K::kSpool},                    7, 2,  0.00, 0.02, 0.55, 1.2, false, false, false);

  // --- Interior multi-input types (joins / unions).
  add("HashJoin",           {K::kHashJoin},                16, 3,  0.15, 0.70, 0.50, 0.9, false, true,  false);
  add("HashJoin_Filter",    {K::kHashJoin, K::kFilter},    17, 3, -0.90, 0.90, 0.50, 0.9, false, true,  false);
  add("HashJoin_Partition", {K::kHashJoin, K::kPartition}, 19, 4,  0.10, 0.70, 0.45, 0.9, false, true,  false);
  add("MergeJoin",          {K::kMergeJoin},               21, 3,  0.05, 0.60, 0.40, 0.9, false, true,  false);
  add("MergeJoin_Filter",   {K::kMergeJoin, K::kFilter},   22, 3, -1.00, 0.90, 0.40, 0.9, false, true,  false);
  add("Broadcast",          {K::kBroadcast},                5, 2, -0.01, 0.05, 0.65, 1.5, false, true,  false);
  add("Union",              {K::kUnion},                    4, 1,  0.00, 0.02, 0.70, 1.5, false, true,  false);

  // --- Sink.
  add("Output",             {K::kOutput},                   9, 2, -0.01, 0.02, 0.20, 1.5, false, false, true);

  PHOEBE_CHECK(static_cast<int>(c.size()) == kNumStageTypes);
  return c;
}

std::vector<int> Filtered(bool (*pred)(const StageTypeInfo&)) {
  std::vector<int> out;
  const auto& cat = StageTypeCatalog();
  for (int i = 0; i < static_cast<int>(cat.size()); ++i) {
    if (pred(cat[static_cast<size_t>(i)])) out.push_back(i);
  }
  return out;
}

}  // namespace

const std::vector<StageTypeInfo>& StageTypeCatalog() {
  static const std::vector<StageTypeInfo> kCatalog = BuildCatalog();
  return kCatalog;
}

const std::vector<int>& SourceStageTypes() {
  static const std::vector<int> kIds =
      Filtered([](const StageTypeInfo& t) { return t.is_source; });
  return kIds;
}

const std::vector<int>& SinkStageTypes() {
  static const std::vector<int> kIds =
      Filtered([](const StageTypeInfo& t) { return t.is_sink; });
  return kIds;
}

const std::vector<int>& InteriorStageTypes() {
  static const std::vector<int> kIds = Filtered(
      [](const StageTypeInfo& t) { return !t.is_source && !t.is_sink; });
  return kIds;
}

const std::vector<int>& MultiInputStageTypes() {
  static const std::vector<int> kIds =
      Filtered([](const StageTypeInfo& t) { return t.needs_multi_input; });
  return kIds;
}

}  // namespace phoebe::workload
