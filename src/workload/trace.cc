#include "workload/trace.h"

#include "common/strings.h"

namespace phoebe::workload {

std::string SerializeTrace(const std::vector<JobInstance>& jobs) {
  std::string out = StrFormat("trace v1 %zu\n", jobs.size());
  for (const JobInstance& job : jobs) {
    PHOEBE_CHECK_MSG(job.truth.size() == job.graph.num_stages() &&
                         job.est.size() == job.graph.num_stages(),
                     "job arrays inconsistent with graph");
    out += StrFormat("beginjob %lld %d %d %.17g %s %s\n",
                     static_cast<long long>(job.job_id), job.template_id, job.day,
                     job.submit_time, job.job_name.c_str(),
                     job.norm_input_name.c_str());
    out += job.graph.ToText();
    out += "endgraph\n";
    for (const StageTruth& t : job.truth) {
      out += StrFormat("truth %.17g %.17g %.17g %.17g %d %.17g %.17g %.17g %.17g\n",
                       t.input_bytes, t.output_bytes, t.exec_seconds, t.wall_seconds,
                       t.num_tasks, t.start_time, t.end_time, t.ttl, t.tfs);
    }
    for (const StageEstimates& e : job.est) {
      out += StrFormat("est %.17g %.17g %.17g %.17g %.17g\n", e.est_cost,
                       e.est_exclusive_cost, e.est_input_cardinality,
                       e.est_cardinality, e.est_output_bytes);
    }
    out += "endjob\n";
  }
  return out;
}

Status ParseTrace(std::string_view text, std::vector<JobInstance>* out) {
  PHOEBE_CHECK(out != nullptr);
  std::vector<std::string> lines = Split(std::string(text), '\n');
  size_t i = 0;
  auto next = [&]() -> const std::string* {
    while (i < lines.size() && lines[i].empty()) ++i;
    return i < lines.size() ? &lines[i++] : nullptr;
  };

  const std::string* line = next();
  if (!line) return Status::InvalidArgument("empty trace");
  std::vector<std::string> hdr = Split(*line, ' ');
  if (hdr.size() != 3 || hdr[0] != "trace" || hdr[1] != "v1") {
    return Status::InvalidArgument("bad trace header (expected 'trace v1 <n>')");
  }
  int64_t n_jobs_decl = 0;
  if (!ParseInt64(hdr[2], &n_jobs_decl).ok() || n_jobs_decl < 0) {
    return Status::InvalidArgument("bad trace header: job count not a number");
  }
  // Every job occupies at least three lines; a declared count beyond that is
  // a lie (or a fuzzed header) and must not drive a giant reserve().
  if (static_cast<size_t>(n_jobs_decl) > lines.size()) {
    return Status::InvalidArgument(
        StrFormat("trace header declares %lld jobs but has only %zu lines",
                  static_cast<long long>(n_jobs_decl), lines.size()));
  }
  const size_t n_jobs = static_cast<size_t>(n_jobs_decl);

  std::vector<JobInstance> jobs;
  jobs.reserve(n_jobs);
  for (size_t j = 0; j < n_jobs; ++j) {
    line = next();
    if (!line) return Status::InvalidArgument("truncated trace: missing beginjob");
    std::vector<std::string> jh = Split(*line, ' ');
    if (jh.size() != 7 || jh[0] != "beginjob") {
      return Status::InvalidArgument(
          StrFormat("job %zu: bad beginjob line '%s'", j, line->c_str()));
    }
    JobInstance job;
    if (!ParseInt64(jh[1], &job.job_id).ok() || !ParseInt32(jh[2], &job.template_id).ok() ||
        !ParseInt32(jh[3], &job.day).ok() || !ParseFiniteDouble(jh[4], &job.submit_time).ok()) {
      return Status::InvalidArgument(
          StrFormat("job %zu: bad beginjob fields '%s'", j, line->c_str()));
    }
    job.job_name = jh[5];
    job.norm_input_name = jh[6];

    // Graph block up to 'endgraph'.
    std::string graph_text;
    while (true) {
      line = next();
      if (!line) return Status::InvalidArgument("truncated trace: missing endgraph");
      if (*line == "endgraph") break;
      graph_text += *line;
      graph_text += '\n';
    }
    PHOEBE_RETURN_NOT_OK(
        dag::JobGraph::FromText(std::string_view(graph_text), &job.graph));

    const size_t n = job.graph.num_stages();
    job.truth.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      line = next();
      if (!line) return Status::InvalidArgument("truncated trace: missing truth");
      std::vector<std::string> tok = Split(*line, ' ');
      if (tok.size() != 10 || tok[0] != "truth") {
        return Status::InvalidArgument(
            StrFormat("job %zu stage %zu: bad truth line", j, s));
      }
      StageTruth t;
      bool ok = ParseFiniteDouble(tok[1], &t.input_bytes).ok() &&
                ParseFiniteDouble(tok[2], &t.output_bytes).ok() &&
                ParseFiniteDouble(tok[3], &t.exec_seconds).ok() &&
                ParseFiniteDouble(tok[4], &t.wall_seconds).ok() &&
                ParseInt32(tok[5], &t.num_tasks).ok() &&
                ParseFiniteDouble(tok[6], &t.start_time).ok() &&
                ParseFiniteDouble(tok[7], &t.end_time).ok() &&
                ParseFiniteDouble(tok[8], &t.ttl).ok() && ParseFiniteDouble(tok[9], &t.tfs).ok();
      if (!ok) {
        return Status::InvalidArgument(
            StrFormat("job %zu stage %zu: bad truth fields", j, s));
      }
      if (t.num_tasks < 1) {
        return Status::InvalidArgument(
            StrFormat("job %zu stage %zu: num_tasks < 1", j, s));
      }
      job.truth.push_back(t);
    }
    job.est.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      line = next();
      if (!line) return Status::InvalidArgument("truncated trace: missing est");
      std::vector<std::string> tok = Split(*line, ' ');
      if (tok.size() != 6 || tok[0] != "est") {
        return Status::InvalidArgument(
            StrFormat("job %zu stage %zu: bad est line", j, s));
      }
      StageEstimates e;
      bool ok = ParseFiniteDouble(tok[1], &e.est_cost).ok() &&
                ParseFiniteDouble(tok[2], &e.est_exclusive_cost).ok() &&
                ParseFiniteDouble(tok[3], &e.est_input_cardinality).ok() &&
                ParseFiniteDouble(tok[4], &e.est_cardinality).ok() &&
                ParseFiniteDouble(tok[5], &e.est_output_bytes).ok();
      if (!ok) {
        return Status::InvalidArgument(
            StrFormat("job %zu stage %zu: bad est fields", j, s));
      }
      job.est.push_back(e);
    }
    line = next();
    if (!line || *line != "endjob") {
      return Status::InvalidArgument(StrFormat("job %zu: missing endjob", j));
    }
    jobs.push_back(std::move(job));
  }
  *out = std::move(jobs);
  return Status::OK();
}

}  // namespace phoebe::workload
