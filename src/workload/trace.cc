#include "workload/trace.h"

#include <cstdlib>

#include "common/strings.h"

namespace phoebe::workload {

std::string SerializeTrace(const std::vector<JobInstance>& jobs) {
  std::string out = StrFormat("trace v1 %zu\n", jobs.size());
  for (const JobInstance& job : jobs) {
    PHOEBE_CHECK_MSG(job.truth.size() == job.graph.num_stages() &&
                         job.est.size() == job.graph.num_stages(),
                     "job arrays inconsistent with graph");
    out += StrFormat("beginjob %lld %d %d %.17g %s %s\n",
                     static_cast<long long>(job.job_id), job.template_id, job.day,
                     job.submit_time, job.job_name.c_str(),
                     job.norm_input_name.c_str());
    out += job.graph.ToText();
    out += "endgraph\n";
    for (const StageTruth& t : job.truth) {
      out += StrFormat("truth %.17g %.17g %.17g %.17g %d %.17g %.17g %.17g %.17g\n",
                       t.input_bytes, t.output_bytes, t.exec_seconds, t.wall_seconds,
                       t.num_tasks, t.start_time, t.end_time, t.ttl, t.tfs);
    }
    for (const StageEstimates& e : job.est) {
      out += StrFormat("est %.17g %.17g %.17g %.17g %.17g\n", e.est_cost,
                       e.est_exclusive_cost, e.est_input_cardinality,
                       e.est_cardinality, e.est_output_bytes);
    }
    out += "endjob\n";
  }
  return out;
}

Result<std::vector<JobInstance>> ParseTrace(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  size_t i = 0;
  auto next = [&]() -> const std::string* {
    while (i < lines.size() && lines[i].empty()) ++i;
    return i < lines.size() ? &lines[i++] : nullptr;
  };

  const std::string* line = next();
  if (!line) return Status::InvalidArgument("empty trace");
  std::vector<std::string> hdr = Split(*line, ' ');
  if (hdr.size() != 3 || hdr[0] != "trace" || hdr[1] != "v1") {
    return Status::InvalidArgument("bad trace header (expected 'trace v1 <n>')");
  }
  size_t n_jobs = static_cast<size_t>(std::atoll(hdr[2].c_str()));

  std::vector<JobInstance> jobs;
  jobs.reserve(n_jobs);
  for (size_t j = 0; j < n_jobs; ++j) {
    line = next();
    if (!line) return Status::InvalidArgument("truncated trace: missing beginjob");
    std::vector<std::string> jh = Split(*line, ' ');
    if (jh.size() != 7 || jh[0] != "beginjob") {
      return Status::InvalidArgument(
          StrFormat("job %zu: bad beginjob line '%s'", j, line->c_str()));
    }
    JobInstance job;
    job.job_id = std::atoll(jh[1].c_str());
    job.template_id = std::atoi(jh[2].c_str());
    job.day = std::atoi(jh[3].c_str());
    job.submit_time = std::atof(jh[4].c_str());
    job.job_name = jh[5];
    job.norm_input_name = jh[6];

    // Graph block up to 'endgraph'.
    std::string graph_text;
    while (true) {
      line = next();
      if (!line) return Status::InvalidArgument("truncated trace: missing endgraph");
      if (*line == "endgraph") break;
      graph_text += *line;
      graph_text += '\n';
    }
    PHOEBE_ASSIGN_OR_RETURN(job.graph, dag::JobGraph::FromText(graph_text));

    const size_t n = job.graph.num_stages();
    job.truth.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      line = next();
      if (!line) return Status::InvalidArgument("truncated trace: missing truth");
      std::vector<std::string> tok = Split(*line, ' ');
      if (tok.size() != 10 || tok[0] != "truth") {
        return Status::InvalidArgument(
            StrFormat("job %zu stage %zu: bad truth line", j, s));
      }
      StageTruth t;
      t.input_bytes = std::atof(tok[1].c_str());
      t.output_bytes = std::atof(tok[2].c_str());
      t.exec_seconds = std::atof(tok[3].c_str());
      t.wall_seconds = std::atof(tok[4].c_str());
      t.num_tasks = std::atoi(tok[5].c_str());
      t.start_time = std::atof(tok[6].c_str());
      t.end_time = std::atof(tok[7].c_str());
      t.ttl = std::atof(tok[8].c_str());
      t.tfs = std::atof(tok[9].c_str());
      if (t.num_tasks < 1) {
        return Status::InvalidArgument(
            StrFormat("job %zu stage %zu: num_tasks < 1", j, s));
      }
      job.truth.push_back(t);
    }
    job.est.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      line = next();
      if (!line) return Status::InvalidArgument("truncated trace: missing est");
      std::vector<std::string> tok = Split(*line, ' ');
      if (tok.size() != 6 || tok[0] != "est") {
        return Status::InvalidArgument(
            StrFormat("job %zu stage %zu: bad est line", j, s));
      }
      StageEstimates e;
      e.est_cost = std::atof(tok[1].c_str());
      e.est_exclusive_cost = std::atof(tok[2].c_str());
      e.est_input_cardinality = std::atof(tok[3].c_str());
      e.est_cardinality = std::atof(tok[4].c_str());
      e.est_output_bytes = std::atof(tok[5].c_str());
      job.est.push_back(e);
    }
    line = next();
    if (!line || *line != "endjob") {
      return Status::InvalidArgument(StrFormat("job %zu: missing endjob", j));
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace phoebe::workload
