// ServeClient: a small blocking client for the `phoebe serve` daemon.
//
// One client = one TCP connection + a monotonically increasing request id.
// The high-level calls (Decide / Ping / Reload / RequestShutdown) each send
// one frame and block for the frame that echoes their id; the low-level
// SendFrame / ReadFrame / SendRaw surface is public because the protocol and
// concurrency tests drive the wire directly (pipelined frames, corrupted
// bytes, out-of-order responses).
//
// Thread-safety: none — a client is a single-threaded handle. Concurrent
// load uses one client per thread (bench_serve_latency, the concurrency
// test), which is also the honest model of independent cluster compilers
// calling the optimizer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace phoebe::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { Close(); }

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connect to a serve daemon (loopback only, like the server).
  Status Connect(int port, const std::string& host = "127.0.0.1");
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Decide one job. Blocks for the response with this request's id (other
  /// ids arriving meanwhile are buffered for their callers). A kError frame
  /// becomes this call's error Status. When `raw_payload` is non-null it
  /// receives the exact response payload bytes (the determinism tests
  /// compare these against locally serialized decisions).
  Result<DecideResponse> Decide(const workload::JobInstance& job,
                                const core::DecideOptions& options,
                                std::string* raw_payload = nullptr);

  /// Liveness probe; OK iff the server answered "pong".
  Status Ping();

  /// Ask the server to hot-swap its bundle ("" = the server's own
  /// --bundle-path). Returns the new bundle checksum.
  Result<uint32_t> Reload(const std::string& path = "");

  /// Ask the daemon to exit its WaitForShutdown loop.
  Status RequestShutdown();

  // --- low-level wire access (tests / bench) ---

  /// Send one encoded frame.
  Status SendFrame(const Frame& frame);
  /// Send arbitrary bytes verbatim (for feeding the server corrupt frames).
  Status SendRaw(const std::string& bytes);
  /// Block for the next frame on the wire, whatever its id.
  Result<Frame> ReadFrame();
  /// The id the next high-level request will use.
  uint64_t next_id() const { return next_id_; }

 private:
  /// Block until the frame echoing `id` arrives; frames for other ids are
  /// queued so interleaved callers on one connection still match up.
  Result<Frame> ReadFrameForId(uint64_t id);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  std::string pending_;               ///< undecoded bytes from the socket
  std::vector<Frame> out_of_order_;   ///< frames read past, awaiting their id
};

}  // namespace phoebe::serve
