#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace phoebe::serve {

Status ServeClient::Connect(int port, const std::string& host) {
  if (fd_ >= 0) return Status::FailedPrecondition("client already connected");
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument(StrFormat("port must be in [1, 65535], got %d", port));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(StrFormat("socket(): %s", std::strerror(errno)));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IoError(
        StrFormat("connect(%s:%d): %s", host.c_str(), port, std::strerror(errno)));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  pending_.clear();
  out_of_order_.clear();
  return Status::OK();
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ServeClient::SendFrame(const Frame& frame) {
  return SendRaw(EncodeFrame(frame));
}

Status ServeClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return Status::IoError(StrFormat("send(): %s", std::strerror(errno)));
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> ServeClient::ReadFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  char buf[4096];
  while (true) {
    Frame frame;
    size_t consumed = 0;
    Status error;
    FrameDecode d = DecodeFrame(pending_, &frame, &consumed, &error);
    if (d == FrameDecode::kError) return error;
    if (d == FrameDecode::kFrame) {
      pending_.erase(0, consumed);
      return frame;
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return Status::IoError(StrFormat("recv(): %s", std::strerror(errno)));
    if (n == 0) return Status::IoError("connection closed by server");
    pending_.append(buf, static_cast<size_t>(n));
  }
}

Result<Frame> ServeClient::ReadFrameForId(uint64_t id) {
  for (size_t i = 0; i < out_of_order_.size(); ++i) {
    if (out_of_order_[i].id == id) {
      Frame frame = std::move(out_of_order_[i]);
      out_of_order_.erase(out_of_order_.begin() + static_cast<long>(i));
      return frame;
    }
  }
  while (true) {
    PHOEBE_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.id == id) return frame;
    out_of_order_.push_back(std::move(frame));
  }
}

Result<DecideResponse> ServeClient::Decide(const workload::JobInstance& job,
                                           const core::DecideOptions& options,
                                           std::string* raw_payload) {
  const uint64_t id = next_id_++;
  PHOEBE_RETURN_NOT_OK(SendFrame(
      Frame{FrameType::kDecide, id, SerializeDecideRequest(job, options)}));
  PHOEBE_ASSIGN_OR_RETURN(Frame reply, ReadFrameForId(id));
  if (reply.type == FrameType::kError) {
    return Status::Internal("server error: " + reply.payload);
  }
  if (reply.type != FrameType::kDecision) {
    return Status::Internal(StrFormat("expected a decision frame, got '%s'",
                                      FrameTypeToken(reply.type)));
  }
  DecideResponse response;
  PHOEBE_RETURN_NOT_OK(ParseDecideResponse(reply.payload, &response));
  if (raw_payload != nullptr) *raw_payload = std::move(reply.payload);
  return response;
}

Status ServeClient::Ping() {
  const uint64_t id = next_id_++;
  PHOEBE_RETURN_NOT_OK(SendFrame(Frame{FrameType::kPing, id, ""}));
  PHOEBE_ASSIGN_OR_RETURN(Frame reply, ReadFrameForId(id));
  if (reply.type == FrameType::kError) {
    return Status::Internal("server error: " + reply.payload);
  }
  if (reply.type != FrameType::kOk || reply.payload != "pong") {
    return Status::Internal("unexpected ping reply '" + reply.payload + "'");
  }
  return Status::OK();
}

Result<uint32_t> ServeClient::Reload(const std::string& path) {
  const uint64_t id = next_id_++;
  const std::string payload = path.empty() ? std::string() : "bundle " + path;
  PHOEBE_RETURN_NOT_OK(SendFrame(Frame{FrameType::kReload, id, payload}));
  PHOEBE_ASSIGN_OR_RETURN(Frame reply, ReadFrameForId(id));
  if (reply.type == FrameType::kError) {
    return Status::Internal("server error: " + reply.payload);
  }
  const std::vector<std::string> tokens = Split(reply.payload, ' ');
  uint32_t checksum = 0;
  if (reply.type != FrameType::kOk || tokens.size() != 2 || tokens[0] != "reloaded" ||
      !ParseHexU32(tokens[1], &checksum).ok()) {
    return Status::Internal("unexpected reload reply '" + reply.payload + "'");
  }
  return checksum;
}

Status ServeClient::RequestShutdown() {
  const uint64_t id = next_id_++;
  PHOEBE_RETURN_NOT_OK(SendFrame(Frame{FrameType::kShutdown, id, ""}));
  PHOEBE_ASSIGN_OR_RETURN(Frame reply, ReadFrameForId(id));
  if (reply.type == FrameType::kError) {
    return Status::Internal("server error: " + reply.payload);
  }
  if (reply.type != FrameType::kOk || reply.payload != "bye") {
    return Status::Internal("unexpected shutdown reply '" + reply.payload + "'");
  }
  return Status::OK();
}

}  // namespace phoebe::serve
