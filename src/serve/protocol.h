// Serve wire protocol: length-framed, CRC-checked request/response frames
// for the `phoebe serve` decision daemon.
//
// The socket is the third artifact boundary in the repo (after the bundle
// file and the shard blob), and it reuses their framing idiom: a strict
// text header carrying a byte length and a CRC-32, followed by exactly that
// many payload bytes. One frame on the wire:
//
//   phoebe_frame 1 <type> <id> <nbytes> <crc32 hex8>\n
//   <nbytes payload bytes>\n
//
//   * `type` is one of the request tokens (`decide`, `reload`, `ping`,
//     `shutdown`) or response tokens (`decision`, `ok`, `error`).
//   * `id` is a client-assigned request id; the matching response echoes it
//     (responses to one connection may complete out of order when the
//     server coalesces batches across workers).
//   * `nbytes` is the exact payload length, capped at kMaxPayloadBytes so a
//     hostile length can never drive a huge allocation.
//   * the CRC-32 covers the payload bytes, so a flipped bit inside an
//     otherwise well-framed payload is rejected before any deeper parser
//     runs — the same gate the bundle file applies.
//
// Payloads are themselves text documents built from existing formats:
//   decide request   `decide_options <objective> <source> <num_cuts>\n`
//                    + workload::SerializeTrace of exactly one job
//   decision reply   `decision <bundle-checksum hex8>\n` + one shard-blob
//                    job record (`job 0 ...` / `cut <bits>`; see
//                    core/fleet_shard.h) — the decision wire format IS the
//                    shard format, so both cross-process paths stay pinned
//                    by the same tests
//   reload request   `bundle <path>\n` (empty = reload the path the server
//                    was started with)
//   ok reply         `pong` / `reloaded <checksum hex8>` / `bye`
//   error reply      the Status rendered as text (never a crash server-side)
//
// Every parser here is total: for ANY byte sequence it returns a frame or a
// clean error Status, with out-params untouched on error
// (fuzz_serve_test pins this under ASan/UBSan with corrupted frames).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/engine.h"
#include "workload/job_instance.h"

namespace phoebe::serve {

/// Frame kinds, requests then responses. Token order matches FrameTypeToken.
enum class FrameType {
  kDecide,    ///< request: decide one job
  kReload,    ///< request: hot-swap the served bundle
  kPing,      ///< request: liveness probe
  kShutdown,  ///< request: ask the daemon to stop accepting and exit
  kDecision,  ///< response: a decide result
  kOk,        ///< response: success for ping/reload/shutdown
  kError,     ///< response: Status text for a failed request
};

/// Wire token for a frame type ("decide", "decision", ...).
const char* FrameTypeToken(FrameType type);
/// Inverse of FrameTypeToken; unknown tokens are an error.
Status FrameTypeFromToken(const std::string& token, FrameType* out);

/// \brief One protocol frame: type + request id + raw payload bytes.
struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t id = 0;
  std::string payload;
};

inline constexpr const char* kFrameMagic = "phoebe_frame";
inline constexpr int kFrameVersion = 1;
/// Hard cap on `nbytes`: a hostile header cannot force a large allocation.
/// Generous for real traffic (a serialized job is a few KB).
inline constexpr size_t kMaxPayloadBytes = 8u << 20;
/// A well-formed header line always fits in this many bytes; a longer
/// prefix without a newline is malformed, not "need more".
inline constexpr size_t kMaxHeaderBytes = 128;

/// Serialize one frame (header + payload + separator newline).
std::string EncodeFrame(const Frame& frame);

/// \brief Outcome of one incremental decode attempt.
enum class FrameDecode {
  kFrame,     ///< a complete frame was decoded; *consumed bytes were used
  kNeedMore,  ///< `buffer` is a proper prefix of a valid frame; read more
  kError,     ///< malformed bytes; *error says why (connection must close)
};

/// Decode the first frame in `buffer`. On kFrame, fills *out and sets
/// *consumed to the bytes the frame occupied (the caller erases them and
/// retries for pipelined frames). On kNeedMore nothing is written. On
/// kError, *error is set and *out / *consumed are untouched.
FrameDecode DecodeFrame(std::string_view buffer, Frame* out, size_t* consumed,
                        Status* error);

/// Parse a string that must contain exactly one complete frame (truncation
/// and trailing bytes are errors). `*out` untouched on error. This is the
/// fuzz entry point.
Status ParseFrame(const std::string& text, Frame* out);

/// \brief A parsed decide request: the job plus its decision context.
struct DecideRequest {
  core::DecideOptions options;
  workload::JobInstance job;
};

/// Build a decide-request payload for one job.
std::string SerializeDecideRequest(const workload::JobInstance& job,
                                   const core::DecideOptions& options);
/// Strict parse of a decide-request payload (options line + a one-job
/// trace). The payload must be byte-for-byte what SerializeDecideRequest
/// emits for the parsed request (one canonical wire form; no trailing
/// bytes). `*out` untouched on error.
Status ParseDecideRequest(const std::string& payload, DecideRequest* out);

/// \brief A parsed decision response: which bundle answered, and the
/// decision (nullopt = job ineligible, mirroring the shard blob's `-`).
struct DecideResponse {
  uint32_t bundle_checksum = 0;
  std::optional<core::FleetDecision> decision;
};

/// Build a decision-response payload. The job record reuses the shard-blob
/// line format byte for byte, so socket answers are directly comparable to
/// shard/merge artifacts from the same bundle.
std::string SerializeDecideResponse(uint32_t bundle_checksum,
                                    const std::optional<core::FleetDecision>& decision);
/// Strict parse of a decision-response payload. `*out` untouched on error.
Status ParseDecideResponse(const std::string& payload, DecideResponse* out);

/// Wire token for an objective ("temp" / "recovery"), matching the CLI.
const char* ObjectiveToken(core::Objective objective);
/// Inverse of ObjectiveToken; unknown tokens are an error.
Status ObjectiveFromToken(const std::string& token, core::Objective* out);

}  // namespace phoebe::serve
