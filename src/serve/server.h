// ServeServer: the long-running decision daemon behind `phoebe serve`.
//
// Architecture (one process, one TCP listen socket on 127.0.0.1):
//
//   accept thread ──▶ one reader thread per connection
//                        │  DecodeFrame loop; malformed bytes → error frame
//                        │  + connection close (framing is unrecoverable);
//                        │  ping/reload/shutdown answered inline; decide
//                        │  requests pin the CURRENT bundle and enqueue
//                        ▼
//                bounded MPSC request queue (mutex + condvars; a full queue
//                blocks producers — requests are never dropped)
//                        │
//                        ▼
//   worker threads: pop up to `max_batch` requests in one go (coalescing;
//   `coalesce=false` degrades to batches of 1), decide each via a const
//   DecisionEngine over the request's *pinned* bundle, write the response
//   frame back under the connection's write mutex.
//
// Hot reload: the served bundle lives in a std::atomic<shared_ptr<const
// PipelineBundle>>. Reload() loads + verifies the new file (checksum-gated
// like every bundle load) and swaps the pointer; every queued or in-flight
// request keeps deciding against the bundle it pinned at enqueue time, so a
// reload never drops a request and never mixes two bundles inside one
// response. The swap is logged with old → new checksums and counted in
// `serve.reloads`.
//
// Determinism: DecideJob is a pure function of (bundle, options, job,
// stats), the queue only reorders *between* requests (each response carries
// its request id), and metrics are strictly passive — so socket answers are
// byte-identical to direct DecisionEngine calls for any worker count,
// coalescing mode, and metrics setting, before/during/after a reload to the
// same artifact (serve_determinism_test pins this; serve_concurrency_test
// runs the reload/decide races under TSan).
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/bundle.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "serve/protocol.h"

namespace phoebe::serve {

/// \brief Knobs for the decision daemon.
struct ServeConfig {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see port()).
  int port = 0;
  /// Decide worker threads draining the request queue.
  int num_workers = 1;
  /// Max requests one worker pops per wakeup (the coalesced batch size).
  int max_batch = 16;
  /// Bounded queue capacity; producers block (never drop) when full.
  int queue_capacity = 256;
  /// When false, workers pop one request at a time (serve_determinism_test
  /// pins that this knob cannot change any response byte).
  bool coalesce = true;
  /// Bundle file reloaded on SIGHUP / an empty-payload reload frame.
  std::string bundle_path;
  /// Optional observability registry (borrowed; must outlive the server).
  /// Null = metrics off. Strictly passive.
  obs::MetricsRegistry* metrics = nullptr;

  Status Validate() const;
};

/// \brief The daemon. Construct with a loaded bundle, Start(), then either
/// WaitForShutdown() (CLI) or talk to it via ServeClient (tests/bench);
/// Stop() drains and joins everything.
class ServeServer {
 public:
  ServeServer(std::shared_ptr<const core::PipelineBundle> bundle, ServeConfig config);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Bind + listen on 127.0.0.1:port and spawn the accept/worker threads.
  Status Start();

  /// Stop accepting, drain every queued request (responses still go out),
  /// join all threads, close all sockets. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (differs from config.port when it was 0).
  int port() const { return port_; }

  /// Checksum of the currently served bundle.
  uint32_t bundle_checksum() const { return CurrentBundle()->checksum(); }
  /// Successful reloads so far.
  int64_t reload_count() const { return reload_count_.load(std::memory_order_relaxed); }

  /// Load `path`, verify it, and atomically swap it in as the served
  /// bundle. In-flight requests keep their pinned bundle. Thread-safe
  /// (serialized against concurrent reloads); returns the new checksum.
  Result<uint32_t> Reload(const std::string& path);

  /// Block until a shutdown frame arrives or Stop() is called; returns true
  /// iff shutdown was requested within `timeout_seconds` (<= 0 waits
  /// forever).
  bool WaitForShutdown(double timeout_seconds = 0.0);
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

 private:
  /// One accepted connection: the fd plus a write mutex so reader-thread
  /// error replies and worker-thread decision replies interleave whole
  /// frames, never bytes.
  struct Connection {
    ~Connection();  ///< closes fd when the last holder (reader/queue) lets go
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> closed{false};
  };

  /// One queued decide request. `bundle` is pinned at enqueue time: this is
  /// the request's immutable view of the model state, whatever Reload()
  /// does afterwards.
  struct Request {
    std::shared_ptr<Connection> conn;
    uint64_t id = 0;
    core::DecideOptions options;
    workload::JobInstance job;
    std::shared_ptr<const core::PipelineBundle> bundle;
    std::chrono::steady_clock::time_point received;
  };

  std::shared_ptr<const core::PipelineBundle> CurrentBundle() const {
    return bundle_.load(std::memory_order_acquire);
  }

  /// Blocking bounded push; returns false when the queue is closed (server
  /// stopping) and the request was not enqueued.
  bool Enqueue(Request request);
  /// Pop up to `max_count` requests; blocks until at least one is available
  /// or the queue is closed and drained (then returns an empty batch).
  std::vector<Request> PopBatch(int max_count);

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  void HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  /// Serialize + send one frame; failures mark the connection closed (the
  /// client went away — its queued requests still compute, writes no-op).
  void WriteFrame(const std::shared_ptr<Connection>& conn, const Frame& frame);
  void WriteError(const std::shared_ptr<Connection>& conn, uint64_t id,
                  const Status& status);
  void CloseConnection(const std::shared_ptr<Connection>& conn);

  std::atomic<std::shared_ptr<const core::PipelineBundle>> bundle_;
  ServeConfig config_;
  Status config_status_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<int64_t> reload_count_{0};
  std::mutex reload_mu_;  ///< serializes Reload() load+swap+log

  std::mutex queue_mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Request> queue_;
  bool queue_closed_ = false;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> readers_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;

  /// Metric pointers resolved once at Start() (all null = metrics off).
  struct Metrics {
    obs::Counter* connections = nullptr;   ///< serve.connections
    obs::Counter* requests = nullptr;      ///< serve.requests
    obs::Counter* errors = nullptr;        ///< serve.errors
    obs::Counter* reloads = nullptr;       ///< serve.reloads
    obs::Gauge* queue_depth = nullptr;     ///< serve.queue.depth
    obs::Histogram* batch_size = nullptr;  ///< serve.batch.size
    obs::Histogram* request_seconds = nullptr;  ///< serve.request.seconds
  } metrics_;
};

}  // namespace phoebe::serve
