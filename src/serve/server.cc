#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/strings.h"
#include "core/fleet_shard.h"

namespace phoebe::serve {

namespace {

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

Status ServeConfig::Validate() const {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument(StrFormat("port must be in [0, 65535], got %d", port));
  }
  if (num_workers < 1) {
    return Status::InvalidArgument(
        StrFormat("num_workers must be >= 1, got %d", num_workers));
  }
  if (max_batch < 1) {
    return Status::InvalidArgument(StrFormat("max_batch must be >= 1, got %d", max_batch));
  }
  if (queue_capacity < 1) {
    return Status::InvalidArgument(
        StrFormat("queue_capacity must be >= 1, got %d", queue_capacity));
  }
  return Status::OK();
}

ServeServer::Connection::~Connection() { CloseFd(fd); }

ServeServer::ServeServer(std::shared_ptr<const core::PipelineBundle> bundle,
                         ServeConfig config)
    : bundle_(std::move(bundle)), config_(std::move(config)) {
  PHOEBE_CHECK(CurrentBundle() != nullptr);
  config_status_ = config_.Validate();
}

ServeServer::~ServeServer() { Stop(); }

Status ServeServer::Start() {
  PHOEBE_RETURN_NOT_OK(config_status_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(StrFormat("socket(): %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IoError(
        StrFormat("bind(127.0.0.1:%d): %s", config_.port, std::strerror(errno)));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status s = Status::IoError(StrFormat("listen(): %s", std::strerror(errno)));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status s = Status::IoError(StrFormat("getsockname(): %s", std::strerror(errno)));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(addr.sin_port);

  if (config_.metrics != nullptr) {
    obs::MetricsRegistry* m = config_.metrics;
    metrics_.connections = m->counter("serve.connections");
    metrics_.requests = m->counter("serve.requests");
    metrics_.errors = m->counter("serve.errors");
    metrics_.reloads = m->counter("serve.reloads");
    metrics_.queue_depth = m->gauge("serve.queue.depth");
    metrics_.batch_size = m->histogram(
        "serve.batch.size", obs::Histogram::ExponentialBounds(1.0, 2.0, 10));
    metrics_.request_seconds = m->histogram("serve.request.seconds");
  }

  stopping_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = false;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void ServeServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);

  // 1. Close the listener: no new connections; the accept thread exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  CloseFd(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;

  // 2. Half-close every live connection for reads: recv() in each reader
  // returns 0, readers finish enqueuing what they already framed and exit.
  // No request that reached the server is dropped.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RD);
    readers.swap(readers_);
  }
  for (std::thread& t : readers) {
    if (t.joinable()) t.join();
  }

  // 3. Close the queue: workers drain everything still queued (responses go
  // out over the still-write-open sockets), then exit.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();

  // 4. Drop connection refs; each fd closes when the last holder lets go.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      conn->closed.store(true, std::memory_order_release);
      ::shutdown(conn->fd, SHUT_RDWR);
    }
    conns_.clear();
  }

  running_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
  }
  shutdown_cv_.notify_all();
}

Result<uint32_t> ServeServer::Reload(const std::string& path) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  PHOEBE_ASSIGN_OR_RETURN(std::shared_ptr<const core::PipelineBundle> next,
                          core::PipelineBundle::LoadFromFile(path, config_.metrics));
  std::shared_ptr<const core::PipelineBundle> prev = CurrentBundle();
  bundle_.store(next, std::memory_order_release);
  reload_count_.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics_.reloads);
  std::fprintf(stderr, "phoebe serve: reloaded bundle %s: checksum %08x -> %08x\n",
               path.c_str(), prev->checksum(), next->checksum());
  return next->checksum();
}

bool ServeServer::WaitForShutdown(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  auto done = [this] {
    return shutdown_requested_.load(std::memory_order_acquire) ||
           !running_.load(std::memory_order_acquire);
  };
  if (timeout_seconds <= 0.0) {
    shutdown_cv_.wait(lock, done);
  } else {
    shutdown_cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds), done);
  }
  return shutdown_requested_.load(std::memory_order_acquire);
}

bool ServeServer::Enqueue(Request request) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_not_full_.wait(lock, [this] {
    return queue_closed_ || queue_.size() < static_cast<size_t>(config_.queue_capacity);
  });
  if (queue_closed_) return false;
  queue_.push_back(std::move(request));
  obs::Set(metrics_.queue_depth, static_cast<double>(queue_.size()));
  lock.unlock();
  queue_not_empty_.notify_one();
  return true;
}

std::vector<ServeServer::Request> ServeServer::PopBatch(int max_count) {
  std::vector<Request> batch;
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_not_empty_.wait(lock, [this] { return queue_closed_ || !queue_.empty(); });
  while (!queue_.empty() && batch.size() < static_cast<size_t>(max_count)) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  obs::Set(metrics_.queue_depth, static_cast<double>(queue_.size()));
  lock.unlock();
  queue_not_full_.notify_all();
  return batch;
}

void ServeServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal accept error
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    obs::Increment(metrics_.connections);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      CloseFd(fd);
      return;
    }
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { ReaderLoop(conn); });
  }
}

void ServeServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  [this, &conn] {
    std::string pending;
    char buf[4096];
    while (true) {
      ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // client closed, connection error, or Stop()'s SHUT_RD
      pending.append(buf, static_cast<size_t>(n));
      while (true) {
        Frame frame;
        size_t consumed = 0;
        Status error;
        FrameDecode d = DecodeFrame(pending, &frame, &consumed, &error);
        if (d == FrameDecode::kNeedMore) break;
        if (d == FrameDecode::kError) {
          // Framing is broken: the stream boundary is lost, so after one last
          // error reply the connection must close.
          obs::Increment(metrics_.errors);
          WriteError(conn, 0, error);
          CloseConnection(conn);
          return;
        }
        pending.erase(0, consumed);
        HandleFrame(conn, std::move(frame));
      }
    }
  }();
  // Drop the registry's ref so the fd closes as soon as the last queued
  // request for this connection is answered (a long-running daemon must not
  // leak one fd per disconnected client). Stop() still finds live readers'
  // connections here for its SHUT_RD sweep.
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i] == conn) {
      conns_.erase(conns_.begin() + static_cast<long>(i));
      break;
    }
  }
}

void ServeServer::HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame) {
  switch (frame.type) {
    case FrameType::kPing:
      WriteFrame(conn, Frame{FrameType::kOk, frame.id, "pong"});
      return;
    case FrameType::kShutdown: {
      WriteFrame(conn, Frame{FrameType::kOk, frame.id, "bye"});
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_.store(true, std::memory_order_release);
      }
      shutdown_cv_.notify_all();
      return;
    }
    case FrameType::kReload: {
      std::string path = config_.bundle_path;
      if (!frame.payload.empty()) {
        if (!StartsWith(frame.payload, "bundle ")) {
          obs::Increment(metrics_.errors);
          WriteError(conn, frame.id,
                     Status::InvalidArgument(
                         "reload payload must be empty or 'bundle <path>'"));
          return;
        }
        path = frame.payload.substr(std::strlen("bundle "));
        while (!path.empty() && path.back() == '\n') path.pop_back();
      }
      if (path.empty()) {
        obs::Increment(metrics_.errors);
        WriteError(conn, frame.id,
                   Status::InvalidArgument(
                       "no bundle path: server started without --bundle-path and "
                       "the reload frame named none"));
        return;
      }
      Result<uint32_t> checksum = Reload(path);
      if (!checksum.ok()) {
        obs::Increment(metrics_.errors);
        WriteError(conn, frame.id, checksum.status());
        return;
      }
      WriteFrame(conn, Frame{FrameType::kOk, frame.id,
                             StrFormat("reloaded %08x", *checksum)});
      return;
    }
    case FrameType::kDecide: {
      Request request;
      DecideRequest parsed;
      Status s = ParseDecideRequest(frame.payload, &parsed);
      if (!s.ok()) {
        // The frame itself was sound (length + CRC passed), so the stream is
        // still in sync: reply with the payload error and keep the
        // connection.
        obs::Increment(metrics_.errors);
        WriteError(conn, frame.id, s);
        return;
      }
      request.conn = conn;
      request.id = frame.id;
      request.options = parsed.options;
      request.job = std::move(parsed.job);
      request.bundle = CurrentBundle();  // pin: this request's model state
      request.received = std::chrono::steady_clock::now();
      if (!Enqueue(std::move(request))) {
        obs::Increment(metrics_.errors);
        WriteError(conn, frame.id, Status::FailedPrecondition("server stopping"));
      }
      return;
    }
    case FrameType::kDecision:
    case FrameType::kOk:
    case FrameType::kError:
      obs::Increment(metrics_.errors);
      WriteError(conn, frame.id,
                 Status::InvalidArgument(
                     StrFormat("unexpected response-type frame '%s' from client",
                               FrameTypeToken(frame.type))));
      return;
  }
}

void ServeServer::WorkerLoop() {
  // An engine is just a shared_ptr + resolved metric pointers, but rebuilding
  // it per request would hit the registry mutex; rebuild only when the batch
  // crosses a reload boundary (pinned bundle pointer changes).
  std::shared_ptr<const core::PipelineBundle> engine_bundle;
  std::optional<core::DecisionEngine> engine;
  while (true) {
    std::vector<Request> batch = PopBatch(config_.coalesce ? config_.max_batch : 1);
    if (batch.empty()) return;  // queue closed and drained
    obs::Observe(metrics_.batch_size, static_cast<double>(batch.size()));
    for (Request& request : batch) {
      if (request.bundle != engine_bundle) {
        engine_bundle = request.bundle;
        engine.emplace(engine_bundle, config_.metrics);
      }
      std::optional<core::FleetDecision> decision;
      if (request.job.graph.num_stages() >= 2) {
        Result<core::FleetDecision> r =
            engine->DecideJob(request.job, engine_bundle->stats(), request.options);
        if (!r.ok()) {
          obs::Increment(metrics_.errors);
          WriteError(request.conn, request.id, r.status());
          continue;
        }
        decision = std::move(r).ValueOrDie();
      }
      std::string payload =
          SerializeDecideResponse(engine_bundle->checksum(), decision);
      WriteFrame(request.conn,
                 Frame{FrameType::kDecision, request.id, std::move(payload)});
      obs::Increment(metrics_.requests);
      obs::Observe(metrics_.request_seconds,
                   std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 request.received)
                       .count());
    }
  }
}

void ServeServer::WriteFrame(const std::shared_ptr<Connection>& conn,
                             const Frame& frame) {
  const std::string wire = EncodeFrame(frame);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load(std::memory_order_acquire)) return;
  size_t off = 0;
  while (off < wire.size()) {
    ssize_t n = ::send(conn->fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // The client went away mid-response; nothing left to deliver here.
      conn->closed.store(true, std::memory_order_release);
      return;
    }
    off += static_cast<size_t>(n);
  }
}

void ServeServer::WriteError(const std::shared_ptr<Connection>& conn, uint64_t id,
                             const Status& status) {
  WriteFrame(conn, Frame{FrameType::kError, id, status.ToString()});
}

void ServeServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  ::shutdown(conn->fd, SHUT_RDWR);
}

}  // namespace phoebe::serve
