#include "serve/protocol.h"

#include <utility>
#include <vector>

#include "common/checksum.h"
#include "common/strings.h"
#include "core/fleet_shard.h"
#include "workload/trace.h"

namespace phoebe::serve {

namespace {

/// Split `payload` at the first newline into (line, rest). The line is
/// required: a payload without any newline is malformed for every
/// structured payload kind.
Status FirstLine(const std::string& payload, std::string* line, std::string* rest) {
  size_t nl = payload.find('\n');
  if (nl == std::string::npos) {
    return Status::InvalidArgument("serve payload: missing header line");
  }
  *line = payload.substr(0, nl);
  *rest = payload.substr(nl + 1);
  return Status::OK();
}

}  // namespace

const char* FrameTypeToken(FrameType type) {
  switch (type) {
    case FrameType::kDecide: return "decide";
    case FrameType::kReload: return "reload";
    case FrameType::kPing: return "ping";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kDecision: return "decision";
    case FrameType::kOk: return "ok";
    case FrameType::kError: return "error";
  }
  return "unknown";
}

Status FrameTypeFromToken(const std::string& token, FrameType* out) {
  for (FrameType t : {FrameType::kDecide, FrameType::kReload, FrameType::kPing,
                      FrameType::kShutdown, FrameType::kDecision, FrameType::kOk,
                      FrameType::kError}) {
    if (token == FrameTypeToken(t)) {
      *out = t;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("serve frame: unknown type token '" + token + "'");
}

std::string EncodeFrame(const Frame& frame) {
  std::string out = StrFormat("%s %d %s %llu %zu %08x\n", kFrameMagic, kFrameVersion,
                              FrameTypeToken(frame.type),
                              static_cast<unsigned long long>(frame.id),
                              frame.payload.size(), Crc32(frame.payload));
  out += frame.payload;
  out += '\n';
  return out;
}

FrameDecode DecodeFrame(std::string_view buffer, Frame* out, size_t* consumed,
                        Status* error) {
  size_t nl = buffer.find('\n');
  if (nl == std::string_view::npos) {
    if (buffer.size() >= kMaxHeaderBytes) {
      *error = Status::InvalidArgument("serve frame: header line too long");
      return FrameDecode::kError;
    }
    return FrameDecode::kNeedMore;
  }
  if (nl >= kMaxHeaderBytes) {
    *error = Status::InvalidArgument("serve frame: header line too long");
    return FrameDecode::kError;
  }

  std::vector<std::string> tok = Split(std::string(buffer.substr(0, nl)), ' ');
  if (tok.size() != 6 || tok[0] != kFrameMagic) {
    *error = Status::InvalidArgument("serve frame: bad magic/header shape");
    return FrameDecode::kError;
  }
  int32_t version = 0;
  if (!ParseInt32(tok[1], &version).ok()) {
    *error = Status::InvalidArgument("serve frame: malformed version");
    return FrameDecode::kError;
  }
  if (version != kFrameVersion) {
    *error = Status::InvalidArgument(StrFormat(
        "serve frame: unsupported version %d (expected %d)", version, kFrameVersion));
    return FrameDecode::kError;
  }
  FrameType type;
  if (Status st = FrameTypeFromToken(tok[2], &type); !st.ok()) {
    *error = std::move(st);
    return FrameDecode::kError;
  }
  int64_t id = 0;
  if (!ParseInt64(tok[3], &id).ok() || id < 0) {
    *error = Status::InvalidArgument("serve frame: malformed id '" + tok[3] + "'");
    return FrameDecode::kError;
  }
  int64_t nbytes = 0;
  if (!ParseInt64(tok[4], &nbytes).ok() || nbytes < 0) {
    *error = Status::InvalidArgument("serve frame: malformed length '" + tok[4] + "'");
    return FrameDecode::kError;
  }
  if (static_cast<size_t>(nbytes) > kMaxPayloadBytes) {
    *error = Status::InvalidArgument(
        StrFormat("serve frame: payload length %lld exceeds cap %zu",
                  static_cast<long long>(nbytes), kMaxPayloadBytes));
    return FrameDecode::kError;
  }
  uint32_t stored_crc = 0;
  if (!ParseHexU32(tok[5], &stored_crc).ok()) {
    *error = Status::InvalidArgument("serve frame: malformed checksum '" + tok[5] + "'");
    return FrameDecode::kError;
  }

  // Header parsed; wait for the payload plus its separator newline.
  size_t header_len = nl + 1;
  size_t total = header_len + static_cast<size_t>(nbytes) + 1;
  if (buffer.size() < total) return FrameDecode::kNeedMore;
  std::string_view payload = buffer.substr(header_len, static_cast<size_t>(nbytes));
  if (buffer[total - 1] != '\n') {
    *error = Status::InvalidArgument("serve frame: payload not newline-terminated");
    return FrameDecode::kError;
  }
  uint32_t actual_crc = Crc32(payload.data(), payload.size());
  if (actual_crc != stored_crc) {
    *error = Status::InvalidArgument(
        StrFormat("serve frame: payload checksum mismatch: stored %08x, computed %08x",
                  stored_crc, actual_crc));
    return FrameDecode::kError;
  }

  out->type = type;
  out->id = static_cast<uint64_t>(id);
  out->payload.assign(payload.data(), payload.size());
  *consumed = total;
  return FrameDecode::kFrame;
}

Status ParseFrame(const std::string& text, Frame* out) {
  Frame frame;
  size_t consumed = 0;
  Status error;
  switch (DecodeFrame(text, &frame, &consumed, &error)) {
    case FrameDecode::kError:
      return error;
    case FrameDecode::kNeedMore:
      return Status::InvalidArgument("serve frame: truncated");
    case FrameDecode::kFrame:
      break;
  }
  if (consumed != text.size()) {
    return Status::InvalidArgument("serve frame: trailing bytes after frame");
  }
  *out = std::move(frame);
  return Status::OK();
}

const char* ObjectiveToken(core::Objective objective) {
  return objective == core::Objective::kRecovery ? "recovery" : "temp";
}

Status ObjectiveFromToken(const std::string& token, core::Objective* out) {
  if (token == "temp") {
    *out = core::Objective::kTempStorage;
    return Status::OK();
  }
  if (token == "recovery") {
    *out = core::Objective::kRecovery;
    return Status::OK();
  }
  return Status::InvalidArgument("serve: unknown objective token '" + token + "'");
}

std::string SerializeDecideRequest(const workload::JobInstance& job,
                                   const core::DecideOptions& options) {
  std::string out = StrFormat("decide_options %s %s %d\n",
                              ObjectiveToken(options.objective),
                              core::CostSourceToken(options.source), options.num_cuts);
  out += workload::SerializeTrace({job});
  return out;
}

Status ParseDecideRequest(const std::string& payload, DecideRequest* out) {
  std::string line, rest;
  PHOEBE_RETURN_NOT_OK(FirstLine(payload, &line, &rest));
  std::vector<std::string> tok = Split(line, ' ');
  if (tok.size() != 4 || tok[0] != "decide_options") {
    return Status::InvalidArgument("serve decide: malformed options line '" + line + "'");
  }
  core::DecideOptions options;
  PHOEBE_RETURN_NOT_OK(ObjectiveFromToken(tok[1], &options.objective));
  PHOEBE_RETURN_NOT_OK(core::CostSourceFromToken(tok[2], &options.source));
  int32_t num_cuts = 0;
  if (!ParseInt32(tok[3], &num_cuts).ok() || num_cuts < 1 || num_cuts > 64) {
    return Status::InvalidArgument("serve decide: bad num_cuts '" + tok[3] + "'");
  }
  options.num_cuts = num_cuts;

  std::vector<workload::JobInstance> jobs;
  PHOEBE_RETURN_NOT_OK(workload::ParseTrace(std::string_view(rest), &jobs));
  if (jobs.size() != 1) {
    return Status::InvalidArgument(
        StrFormat("serve decide: expected exactly 1 job, got %zu", jobs.size()));
  }
  // Canonical-form gate: the payload must be exactly what the serializer
  // emits for the parsed request. This rejects trailing bytes the trace
  // parser would tolerate and pins one wire form per request, so equal
  // requests are equal bytes end to end.
  if (SerializeDecideRequest(jobs.front(), options) != payload) {
    return Status::InvalidArgument(
        "serve decide: payload is not in canonical serialized form");
  }
  out->options = options;
  out->job = std::move(jobs.front());
  return Status::OK();
}

std::string SerializeDecideResponse(uint32_t bundle_checksum,
                                    const std::optional<core::FleetDecision>& decision) {
  std::string out = StrFormat("decision %08x\n", bundle_checksum);
  out += core::SerializeJobDecisionRecord(0, decision);
  return out;
}

Status ParseDecideResponse(const std::string& payload, DecideResponse* out) {
  std::string line, rest;
  PHOEBE_RETURN_NOT_OK(FirstLine(payload, &line, &rest));
  std::vector<std::string> tok = Split(line, ' ');
  uint32_t checksum = 0;
  if (tok.size() != 2 || tok[0] != "decision" ||
      !ParseHexU32(tok[1], &checksum).ok()) {
    return Status::InvalidArgument("serve decision: malformed header '" + line + "'");
  }
  std::optional<core::FleetDecision> decision;
  PHOEBE_RETURN_NOT_OK(core::ParseJobDecisionRecord(rest, 0, &decision));
  out->bundle_checksum = checksum;
  out->decision = std::move(decision);
  return Status::OK();
}

}  // namespace phoebe::serve
