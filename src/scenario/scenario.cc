#include "scenario/scenario.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/macros.h"
#include "common/strings.h"

namespace phoebe::scenario {

namespace {

const char kMagic[] = "phoebe_scenario";
constexpr int kFormatVersion = 1;

const char* KindToken(EventKind kind) {
  switch (kind) {
    case EventKind::kBurst: return "burst";
    case EventKind::kMtbf: return "mtbf";
    case EventKind::kDrift: return "drift";
    case EventKind::kInput: return "input";
  }
  return "?";
}

bool KindFromToken(const std::string& token, EventKind* out) {
  if (token == "burst") { *out = EventKind::kBurst; return true; }
  if (token == "mtbf") { *out = EventKind::kMtbf; return true; }
  if (token == "drift") { *out = EventKind::kDrift; return true; }
  if (token == "input") { *out = EventKind::kInput; return true; }
  return false;
}

const char* ModeToken(EventMode mode) {
  return mode == EventMode::kStep ? "step" : "ramp";
}

bool ModeFromToken(const std::string& token, EventMode* out) {
  if (token == "step") { *out = EventMode::kStep; return true; }
  if (token == "ramp") { *out = EventMode::kRamp; return true; }
  return false;
}

bool TokenSafe(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

/// The overlay fields in canonical serialization order.
struct OverlayField {
  const char* name;
  std::optional<double> ScenarioSpec::* member;
};
constexpr OverlayField kOverlayFields[] = {
    {"mean_instances_per_day", &ScenarioSpec::mean_instances_per_day},
    {"daily_drift_sigma", &ScenarioSpec::daily_drift_sigma},
    {"daily_input_growth", &ScenarioSpec::daily_input_growth},
    {"weekly_amplitude", &ScenarioSpec::weekly_amplitude},
    {"exec_noise_sigma", &ScenarioSpec::exec_noise_sigma},
};

/// Sequential line reader over the input; never reads past the end.
class LineReader {
 public:
  explicit LineReader(std::string_view text) : text_(text) {}

  bool Next(std::string* line) {
    if (pos_ >= text_.size()) return false;
    size_t nl = text_.find('\n', pos_);
    if (nl == std::string_view::npos) {
      // Last line without a trailing newline still counts.
      *line = std::string(text_.substr(pos_));
      pos_ = text_.size();
    } else {
      *line = std::string(text_.substr(pos_, nl - pos_));
      pos_ = nl + 1;
    }
    ++line_no_;
    return true;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  int line_no() const { return line_no_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_no_ = 0;
};

double CombinedFactor(const std::vector<ScenarioEvent>& events, EventKind kind,
                      int day) {
  double f = 1.0;
  for (const ScenarioEvent& e : events) {
    if (e.kind == kind) f *= e.FactorAt(day);
  }
  return f;
}

}  // namespace

double ScenarioEvent::FactorAt(int day) const {
  if (day < first_day) return 1.0;
  if (mode == EventMode::kStep) {
    return (last_day < 0 || day <= last_day) ? magnitude : 1.0;
  }
  // Ramp: linear 1 -> magnitude over [first_day, last_day], held after.
  if (day >= last_day) return magnitude;
  const double t = static_cast<double>(day - first_day) /
                   static_cast<double>(last_day - first_day);
  return 1.0 + (magnitude - 1.0) * t;
}

Status ScenarioSpec::Validate() const {
  if (!TokenSafe(name)) {
    return Status::InvalidArgument(
        StrFormat("scenario name '%s' must be a non-empty token of "
                  "[A-Za-z0-9._-]",
                  name.c_str()));
  }
  if (!std::isfinite(zipf_exponent) || zipf_exponent < 0.0) {
    return Status::InvalidArgument("zipf_exponent must be finite and >= 0");
  }
  if (mean_instances_per_day && *mean_instances_per_day <= 0.0) {
    return Status::InvalidArgument("overlay mean_instances_per_day must be > 0");
  }
  if (daily_drift_sigma && *daily_drift_sigma < 0.0) {
    return Status::InvalidArgument("overlay daily_drift_sigma must be >= 0");
  }
  if (daily_input_growth && *daily_input_growth <= -1.0) {
    return Status::InvalidArgument("overlay daily_input_growth must be > -1");
  }
  if (weekly_amplitude && (*weekly_amplitude < 0.0 || *weekly_amplitude > 1.0)) {
    return Status::InvalidArgument("overlay weekly_amplitude must be in [0, 1]");
  }
  if (exec_noise_sigma && *exec_noise_sigma < 0.0) {
    return Status::InvalidArgument("overlay exec_noise_sigma must be >= 0");
  }
  for (size_t i = 0; i < events.size(); ++i) {
    const ScenarioEvent& e = events[i];
    const auto bad = [&](const char* why) {
      return Status::InvalidArgument(
          StrFormat("event %zu (%s %s): %s", i, KindToken(e.kind),
                    ModeToken(e.mode), why));
    };
    if (!std::isfinite(e.magnitude) || e.magnitude <= 0.0) {
      return bad("magnitude must be finite and > 0");
    }
    if (e.first_day < 0) return bad("first_day must be >= 0");
    if (e.mode == EventMode::kStep) {
      if (e.last_day != -1 && e.last_day < e.first_day) {
        return bad("last_day must be -1 (open-ended) or >= first_day");
      }
    } else {
      if (e.last_day < e.first_day) {
        return bad("ramp needs last_day >= first_day");
      }
    }
  }
  return Status::OK();
}

double ScenarioSpec::ArrivalFactor(int day) const {
  return CombinedFactor(events, EventKind::kBurst, day);
}
double ScenarioSpec::DriftFactor(int day) const {
  return CombinedFactor(events, EventKind::kDrift, day);
}
double ScenarioSpec::InputFactor(int day) const {
  return CombinedFactor(events, EventKind::kInput, day);
}
double ScenarioSpec::MtbfFactor(int day) const {
  return CombinedFactor(events, EventKind::kMtbf, day);
}

workload::WorkloadConfig ScenarioSpec::ApplyOverlay(
    workload::WorkloadConfig base) const {
  if (mean_instances_per_day) base.mean_instances_per_day = *mean_instances_per_day;
  if (daily_drift_sigma) base.daily_drift_sigma = *daily_drift_sigma;
  if (daily_input_growth) base.daily_input_growth = *daily_input_growth;
  if (weekly_amplitude) base.weekly_amplitude = *weekly_amplitude;
  if (exec_noise_sigma) base.exec_noise_sigma = *exec_noise_sigma;
  return base;
}

const std::vector<std::string>& ScenarioPresetNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "baseline",    "zipf",          "flash-crowd",
      "failure-storm", "drift-sudden", "drift-gradual"};
  return *names;
}

Status ScenarioFromPreset(std::string_view name, ScenarioSpec* out) {
  ScenarioSpec spec;
  spec.name = std::string(name);
  if (name == "baseline") {
    // The null scenario: byte-identical to running without one.
  } else if (name == "zipf") {
    // Hot-template skew: template 0 draws ~an order of magnitude more
    // traffic than the median template, stressing the decision cache's LRU.
    spec.zipf_exponent = 1.1;
  } else if (name == "flash-crowd") {
    // Two single-day arrival spikes inside a typical test span.
    spec.events.push_back({EventKind::kBurst, EventMode::kStep, 3, 3, 25.0});
    spec.events.push_back({EventKind::kBurst, EventMode::kStep, 9, 9, 80.0});
  } else if (name == "failure-storm") {
    // A correlated outage window: failure rate 8x baseline on days 2..4,
    // extending the Fig. 14 recovery evaluation.
    spec.events.push_back({EventKind::kMtbf, EventMode::kStep, 2, 4, 8.0});
  } else if (name == "drift-sudden") {
    // A step regime change from day 3 on: parameter drift 4x, inputs 1.6x.
    spec.events.push_back({EventKind::kDrift, EventMode::kStep, 3, -1, 4.0});
    spec.events.push_back({EventKind::kInput, EventMode::kStep, 3, -1, 1.6});
  } else if (name == "drift-gradual") {
    // The same destination reached by a ramp over days 1..8 (stresses the
    // accuracy-decay trigger rather than the age trigger).
    spec.events.push_back({EventKind::kDrift, EventMode::kRamp, 1, 8, 4.0});
    spec.events.push_back({EventKind::kInput, EventMode::kRamp, 1, 8, 1.6});
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown scenario preset '%s' (have: %s)",
                  std::string(name).c_str(),
                  Join(ScenarioPresetNames(), ", ").c_str()));
  }
  spec.Validate().Check();
  *out = std::move(spec);
  return Status::OK();
}

std::string SerializeScenario(const ScenarioSpec& spec) {
  std::string out = StrFormat("%s %d\n", kMagic, kFormatVersion);
  out += StrFormat("name %s\n", spec.name.c_str());
  out += StrFormat("zipf_exponent %.17g\n", spec.zipf_exponent);
  for (const OverlayField& f : kOverlayFields) {
    const std::optional<double>& v = spec.*(f.member);
    if (v) out += StrFormat("overlay %s %.17g\n", f.name, *v);
  }
  for (const ScenarioEvent& e : spec.events) {
    out += StrFormat("event %s %s %d %d %.17g\n", KindToken(e.kind),
                     ModeToken(e.mode), e.first_day, e.last_day, e.magnitude);
  }
  out += "end_scenario\n";
  return out;
}

Status ScenarioFromText(std::string_view text, ScenarioSpec* out) {
  LineReader reader(text);
  std::string line;
  const auto fail = [&](const std::string& why) {
    return Status::InvalidArgument(
        StrFormat("scenario line %d: %s", reader.line_no(), why.c_str()));
  };

  if (!reader.Next(&line)) return fail("empty input");
  if (line != StrFormat("%s %d", kMagic, kFormatVersion)) {
    return fail(StrFormat("bad magic (want '%s %d')", kMagic, kFormatVersion));
  }

  ScenarioSpec spec;
  bool saw_name = false, saw_zipf = false;
  bool saw_overlay[sizeof(kOverlayFields) / sizeof(kOverlayFields[0])] = {};
  bool terminated = false;

  while (reader.Next(&line)) {
    std::vector<std::string> tok = Split(line, ' ');
    if (tok.empty() || tok[0].empty()) return fail("blank line");
    if (tok[0] == "end_scenario") {
      if (tok.size() != 1) return fail("trailing tokens after end_scenario");
      terminated = true;
      break;
    }
    if (tok[0] == "name") {
      if (tok.size() != 2) return fail("want: name <token>");
      if (saw_name) return fail("duplicate name line");
      if (!TokenSafe(tok[1])) return fail("name is not token-safe");
      spec.name = tok[1];
      saw_name = true;
    } else if (tok[0] == "zipf_exponent") {
      if (tok.size() != 2) return fail("want: zipf_exponent <double>");
      if (saw_zipf) return fail("duplicate zipf_exponent line");
      PHOEBE_RETURN_NOT_OK(ParseFiniteDouble(tok[1], &spec.zipf_exponent));
      saw_zipf = true;
    } else if (tok[0] == "overlay") {
      if (tok.size() != 3) return fail("want: overlay <field> <double>");
      size_t fi = 0;
      for (; fi < sizeof(kOverlayFields) / sizeof(kOverlayFields[0]); ++fi) {
        if (tok[1] == kOverlayFields[fi].name) break;
      }
      if (fi == sizeof(kOverlayFields) / sizeof(kOverlayFields[0])) {
        return fail(StrFormat("unknown overlay field '%s'", tok[1].c_str()));
      }
      if (saw_overlay[fi]) {
        return fail(StrFormat("duplicate overlay field '%s'", tok[1].c_str()));
      }
      double v = 0.0;
      PHOEBE_RETURN_NOT_OK(ParseFiniteDouble(tok[2], &v));
      spec.*(kOverlayFields[fi].member) = v;
      saw_overlay[fi] = true;
    } else if (tok[0] == "event") {
      if (tok.size() != 6) {
        return fail("want: event <kind> <mode> <first_day> <last_day> <mag>");
      }
      ScenarioEvent e;
      if (!KindFromToken(tok[1], &e.kind)) {
        return fail(StrFormat("unknown event kind '%s'", tok[1].c_str()));
      }
      if (!ModeFromToken(tok[2], &e.mode)) {
        return fail(StrFormat("unknown event mode '%s'", tok[2].c_str()));
      }
      int32_t first = 0, last = 0;
      PHOEBE_RETURN_NOT_OK(ParseInt32(tok[3], &first));
      PHOEBE_RETURN_NOT_OK(ParseInt32(tok[4], &last));
      e.first_day = first;
      e.last_day = last;
      PHOEBE_RETURN_NOT_OK(ParseFiniteDouble(tok[5], &e.magnitude));
      spec.events.push_back(e);
    } else {
      return fail(StrFormat("unknown directive '%s'", tok[0].c_str()));
    }
  }

  if (!terminated) return fail("missing end_scenario terminator");
  if (!reader.AtEnd()) return fail("trailing bytes after end_scenario");
  if (!saw_name) return fail("missing name line");
  PHOEBE_RETURN_NOT_OK(spec.Validate());
  *out = std::move(spec);
  return Status::OK();
}

Status ResolveScenario(const std::string& arg, ScenarioSpec* out) {
  for (const std::string& preset : ScenarioPresetNames()) {
    if (arg == preset) return ScenarioFromPreset(arg, out);
  }
  std::ifstream in(arg);
  if (!in) {
    return Status::InvalidArgument(
        StrFormat("--scenario '%s' is neither a preset (%s) nor a readable "
                  "scenario file",
                  arg.c_str(), Join(ScenarioPresetNames(), ", ").c_str()));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ScenarioFromText(buf.str(), out);
}

double ScenarioShaper::TemplateWeight(int index, int num_templates) const {
  const double s = spec_.zipf_exponent;
  if (s == 0.0 || num_templates <= 1) return 1.0;
  // weight_i proportional to 1/(i+1)^s, normalized to mean 1 over all
  // templates. O(num_templates) per call; generation is offline and template
  // counts are small, so recomputing beats caching state on a const shaper.
  double sum = 0.0;
  for (int j = 0; j < num_templates; ++j) {
    sum += std::pow(static_cast<double>(j + 1), -s);
  }
  const double w = std::pow(static_cast<double>(index + 1), -s);
  return w * static_cast<double>(num_templates) / sum;
}

std::unique_ptr<workload::WorkloadGenerator> MakeScenarioGenerator(
    const ScenarioSpec& spec, const workload::WorkloadConfig& base) {
  spec.Validate().Check();
  workload::WorkloadConfig cfg = spec.ApplyOverlay(base);
  std::shared_ptr<const workload::DayShaper> shaper;
  if (spec.zipf_exponent != 0.0 || !spec.events.empty()) {
    shaper = std::make_shared<ScenarioShaper>(spec);
  }
  return std::make_unique<workload::WorkloadGenerator>(cfg, std::move(shaper));
}

}  // namespace phoebe::scenario
