// Scenario layer: named hostile-workload presets over the synthetic
// generator.
//
// A ScenarioSpec is a declarative description of *how a workload misbehaves*:
// a Zipfian template-popularity overlay (hot templates dominate traffic,
// stressing the recurring-template decision cache's LRU), a typed overlay of
// WorkloadConfig knobs, and a schedule of per-day events (arrival bursts,
// correlated MTBF collapses, stepped or ramped drift/input-scale regimes).
// Specs come from named presets (`ScenarioFromPreset`) or a round-tripping
// `phoebe_scenario 1` text format, and turn into a workload via
// `MakeScenarioGenerator`, which attaches a `ScenarioShaper` (a
// workload::DayShaper) to the generator.
//
// Determinism: a scenario only reshapes the deterministic per-(seed, day)
// generation inputs — it never touches decide/replay — so every preset keeps
// the byte-identical-report contract across threads x cache x shards
// (core_scenario_determinism_test pins this). The `baseline` preset is
// byte-identical to running with no scenario at all.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "workload/generator.h"

namespace phoebe::scenario {

/// \brief What a scheduled event multiplies.
enum class EventKind {
  kBurst,  ///< expected arrivals (all templates)
  kMtbf,   ///< failure rate: effective MTBF = base / magnitude
  kDrift,  ///< parameter random-walk step sigma
  kInput,  ///< per-day input-volume scale
};

/// \brief How the event's magnitude applies over its day window.
enum class EventMode {
  kStep,  ///< full magnitude on every day in [first_day, last_day]
  kRamp,  ///< linear 1 -> magnitude over [first_day, last_day], held after
};

/// \brief One scheduled multiplicative disturbance.
///
/// Days outside the window contribute 1.0 (ramp events hold `magnitude` past
/// `last_day`); overlapping events of the same kind multiply. `last_day` of
/// -1 means open-ended and is only legal for step events.
struct ScenarioEvent {
  EventKind kind = EventKind::kBurst;
  EventMode mode = EventMode::kStep;
  int first_day = 0;
  int last_day = -1;
  double magnitude = 1.0;

  /// This event's factor at `day` (1.0 outside the window).
  double FactorAt(int day) const;
};

/// \brief A named workload scenario: popularity skew + config overlay +
/// event schedule.
struct ScenarioSpec {
  std::string name = "baseline";

  /// Zipf exponent s for template popularity: template i gets relative
  /// weight 1/(i+1)^s, normalized so the mean weight over all templates is
  /// 1.0 (total expected arrivals stay matched; only the mix skews, with
  /// template 0 hottest). 0 = uniform popularity (no overlay).
  double zipf_exponent = 0.0;

  /// Typed overlay: fields override the base WorkloadConfig when set.
  std::optional<double> mean_instances_per_day;
  std::optional<double> daily_drift_sigma;
  std::optional<double> daily_input_growth;
  std::optional<double> weekly_amplitude;
  std::optional<double> exec_noise_sigma;

  std::vector<ScenarioEvent> events;

  Status Validate() const;

  /// Combined factor of all events of one kind at `day`.
  double ArrivalFactor(int day) const;
  double DriftFactor(int day) const;
  double InputFactor(int day) const;
  /// Failure-rate multiplier: divide the baseline MTBF by this.
  double MtbfFactor(int day) const;

  /// `base` with the overlay applied.
  workload::WorkloadConfig ApplyOverlay(workload::WorkloadConfig base) const;
};

/// The built-in preset names, in canonical order.
const std::vector<std::string>& ScenarioPresetNames();

/// Builds one of the named presets: baseline, zipf, flash-crowd,
/// failure-storm, drift-sudden, drift-gradual. `*out` untouched on error.
Status ScenarioFromPreset(std::string_view name, ScenarioSpec* out);

/// Canonical `phoebe_scenario 1` text form; ScenarioFromText inverts it
/// byte-exactly (Serialize -> Parse -> Serialize is the identity).
std::string SerializeScenario(const ScenarioSpec& spec);

/// Total, strict parser for the text format: never crashes on arbitrary
/// bytes, rejects bad magic, malformed lines, duplicate scalar fields,
/// invalid events, truncation, and trailing bytes. `*out` untouched on error.
Status ScenarioFromText(std::string_view text, ScenarioSpec* out);

/// Resolves a `--scenario` argument: a preset name, else a path to a
/// `phoebe_scenario 1` file. `*out` untouched on error.
Status ResolveScenario(const std::string& arg, ScenarioSpec* out);

/// \brief DayShaper over a spec's event schedule and Zipf overlay.
class ScenarioShaper : public workload::DayShaper {
 public:
  explicit ScenarioShaper(ScenarioSpec spec) : spec_(std::move(spec)) {}

  double ArrivalMultiplier(int day) const override {
    return spec_.ArrivalFactor(day);
  }
  double DriftSigmaScale(int day) const override {
    return spec_.DriftFactor(day);
  }
  double InputScaleMultiplier(int day) const override {
    return spec_.InputFactor(day);
  }
  double TemplateWeight(int index, int num_templates) const override;

  const ScenarioSpec& spec() const { return spec_; }

 private:
  ScenarioSpec spec_;
};

/// A generator for `base` reshaped by `spec`: overlay applied to the config,
/// a ScenarioShaper attached. For the baseline preset (no overlay, no
/// events, no skew) the result is byte-identical to
/// `WorkloadGenerator(base)`.
std::unique_ptr<workload::WorkloadGenerator> MakeScenarioGenerator(
    const ScenarioSpec& spec, const workload::WorkloadConfig& base);

}  // namespace phoebe::scenario
