#include "dag/dot_export.h"

#include "common/strings.h"

namespace phoebe::dag {

namespace {
std::string EscapeLabel(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

std::string ToDot(const JobGraph& graph, const DotOptions& options) {
  PHOEBE_CHECK(options.before_cut.empty() ||
               options.before_cut.size() == graph.num_stages());
  PHOEBE_CHECK(options.annotations.empty() ||
               options.annotations.size() == graph.num_stages());

  std::string out = "digraph \"" + EscapeLabel(graph.name()) + "\" {\n";
  if (options.left_to_right) out += "  rankdir=LR;\n";
  out += "  node [shape=box, fontsize=10];\n";

  for (StageId u = 0; u < static_cast<StageId>(graph.num_stages()); ++u) {
    const Stage& s = graph.stage(u);
    std::string label = EscapeLabel(s.name);
    if (!options.annotations.empty() &&
        !options.annotations[static_cast<size_t>(u)].empty()) {
      label += "\\n" + EscapeLabel(options.annotations[static_cast<size_t>(u)]);
    }
    std::string attrs = StrFormat("label=\"%s\"", label.c_str());
    if (!options.before_cut.empty() && options.before_cut[static_cast<size_t>(u)]) {
      attrs += ", style=filled, fillcolor=lightgrey";
      // Checkpoint stage: an edge crosses the cut.
      for (StageId v : graph.downstream(u)) {
        if (!options.before_cut[static_cast<size_t>(v)]) {
          attrs += ", penwidth=2.5";
          break;
        }
      }
    }
    out += StrFormat("  s%d [%s];\n", u, attrs.c_str());
  }
  for (const Edge& e : graph.edges()) {
    bool crossing = !options.before_cut.empty() &&
                    options.before_cut[static_cast<size_t>(e.from)] &&
                    !options.before_cut[static_cast<size_t>(e.to)];
    out += StrFormat("  s%d -> s%d%s;\n", e.from, e.to,
                     crossing ? " [style=dashed]" : "");
  }
  out += "}\n";
  return out;
}

}  // namespace phoebe::dag
