// Job execution graphs: DAGs of stages, as produced by the SCOPE compiler.
//
// A JobGraph is the unit Phoebe optimizes over. Stages are identified by a
// dense StageId (their index), edges point from upstream (producer) to
// downstream (consumer). The graph is append-only; validation and traversal
// helpers live on the class.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dag/operator_kind.h"

namespace phoebe::dag {

using StageId = int32_t;
inline constexpr StageId kInvalidStage = -1;

/// \brief One executable unit of a job plan: a chain of operators that runs
/// as parallel tasks over data partitions.
struct Stage {
  StageId id = kInvalidStage;
  std::string name;                      ///< e.g. "SV2_Aggregate_Split"
  std::vector<OperatorKind> operators;   ///< pipeline within the stage
  int stage_type = -1;                   ///< index into the stage-type catalog
  int num_tasks = 1;                     ///< parallel tasks (v_u in the paper)

  /// True if any operator matches `kind`.
  bool HasOperator(OperatorKind kind) const;
};

/// \brief Directed edge from producer stage `from` to consumer stage `to`.
struct Edge {
  StageId from = kInvalidStage;
  StageId to = kInvalidStage;
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// \brief DAG of stages with adjacency in both directions.
class JobGraph {
 public:
  JobGraph() = default;
  explicit JobGraph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Append a stage; its id is assigned and returned. `stage.id` is ignored.
  StageId AddStage(Stage stage);

  /// Add an edge; fails on out-of-range ids, self-loops, or duplicates.
  /// Cycles are detected by Validate(), not here (O(1) insertion).
  Status AddEdge(StageId from, StageId to);

  size_t num_stages() const { return stages_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const Stage& stage(StageId id) const;
  Stage& mutable_stage(StageId id);
  const std::vector<Stage>& stages() const { return stages_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Producer stages feeding `id` / consumer stages fed by `id`.
  const std::vector<StageId>& upstream(StageId id) const;
  const std::vector<StageId>& downstream(StageId id) const;

  /// Stages with no upstream / no downstream.
  std::vector<StageId> Roots() const;
  std::vector<StageId> Leaves() const;

  /// Full structural validation: ids dense, edges in range, acyclic.
  Status Validate() const;

  /// Reusable working storage for TopologicalOrderInto. A warm scratch (one
  /// that has seen a graph at least this large) makes the traversal
  /// allocation-free.
  struct TopoScratch {
    std::vector<int> indeg;
    std::vector<StageId> ready;
  };

  /// Kahn topological order (deterministic: ready stages are taken in id
  /// order). Fails with FailedPrecondition on a cycle.
  Result<std::vector<StageId>> TopologicalOrder() const;

  /// Same order, written into caller-owned storage (hot decide path; see
  /// core/engine.h DecideScratch). `*out` is resized to num_stages() on
  /// success and unspecified on error.
  Status TopologicalOrderInto(TopoScratch* scratch, std::vector<StageId>* out) const;

  /// Longest path length measured in stages (the "depth" of the DAG).
  /// Requires an acyclic graph.
  Result<int> CriticalPathLength() const;

  /// True if `ancestor` can reach `descendant` through directed edges.
  bool Reaches(StageId ancestor, StageId descendant) const;

  /// Serialize to the textual job-graph format (see FromText).
  std::string ToText() const;

  /// Parse the textual format:
  ///   job <name>
  ///   stage <name> <stage_type> <num_tasks> <op>[,<op>...]
  ///   edge <from_id> <to_id>
  /// Stage ids are assigned in file order. Blank lines and '#' comments are
  /// ignored. On error `*out` is untouched; any malformed input yields a
  /// clean Status naming the line (never a crash; fuzz_parser_test pins
  /// this). This is the sole parse entry point — the Status-first
  /// convention every Phoebe parser follows (see DESIGN.md).
  static Status FromText(std::string_view text, JobGraph* out);

 private:
  std::string name_;
  std::vector<Stage> stages_;
  std::vector<Edge> edges_;
  std::vector<std::vector<StageId>> upstream_;
  std::vector<std::vector<StageId>> downstream_;
};

}  // namespace phoebe::dag
