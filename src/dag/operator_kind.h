// Physical operator kinds appearing in SCOPE-style execution plans.
//
// A stage packs one or more of these operators; the *stage type* (see
// workload/stage_type.h) is the canonical operator combination, mirroring how
// the paper groups its 33 stage types.
#pragma once

#include <string>

namespace phoebe::dag {

enum class OperatorKind : int {
  kExtract = 0,   ///< read input from storage
  kFilter,        ///< predicate evaluation
  kProject,       ///< column projection / scalar computation
  kAggregate,     ///< hash/stream aggregation
  kHashJoin,      ///< hash join build+probe
  kMergeJoin,     ///< sort-merge join
  kSort,          ///< full sort
  kPartition,     ///< hash partitioning (shuffle write)
  kMerge,         ///< shuffle read / n-ary merge
  kSplit,         ///< split one stream into several
  kUnion,         ///< concatenate streams
  kProcess,       ///< user-defined processor (UDF)
  kReduce,        ///< user-defined reducer
  kTopN,          ///< top-N selection
  kWindow,        ///< windowed analytic function
  kBroadcast,     ///< broadcast small side of a join
  kSpool,         ///< materialize-and-share (super-operator input reuse)
  kOutput,        ///< write final output
  kMaxValue,      // sentinel; keep last
};

inline constexpr int kNumOperatorKinds = static_cast<int>(OperatorKind::kMaxValue);

/// Stable short name, e.g. "Extract".
const std::string& OperatorKindName(OperatorKind kind);

/// Inverse of OperatorKindName; returns kMaxValue if unknown.
OperatorKind OperatorKindFromName(const std::string& name);

}  // namespace phoebe::dag
