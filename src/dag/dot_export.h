// Graphviz export of job graphs, optionally annotated with a checkpoint cut
// (before-cut stages shaded, checkpoint stages outlined).
#pragma once

#include <string>
#include <vector>

#include "dag/job_graph.h"

namespace phoebe::dag {

/// \brief Rendering options for ToDot.
struct DotOptions {
  /// before_cut[stage] shades the stage; producers of crossing edges are
  /// drawn with a bold border. Empty = no annotation.
  std::vector<bool> before_cut;
  /// Extra per-stage label lines (e.g. "12.3 GB"); empty = names only.
  std::vector<std::string> annotations;
  bool left_to_right = true;
};

/// Render the graph as a Graphviz dot document.
std::string ToDot(const JobGraph& graph, const DotOptions& options = {});

}  // namespace phoebe::dag
