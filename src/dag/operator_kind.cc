#include "dag/operator_kind.h"

#include <array>

#include "common/macros.h"

namespace phoebe::dag {

namespace {
const std::array<std::string, kNumOperatorKinds>& Names() {
  static const std::array<std::string, kNumOperatorKinds> kNames = {
      "Extract", "Filter",  "Project",   "Aggregate", "HashJoin", "MergeJoin",
      "Sort",    "Partition", "Merge",   "Split",     "Union",    "Process",
      "Reduce",  "TopN",    "Window",    "Broadcast", "Spool",    "Output"};
  return kNames;
}
}  // namespace

const std::string& OperatorKindName(OperatorKind kind) {
  int i = static_cast<int>(kind);
  PHOEBE_CHECK(i >= 0 && i < kNumOperatorKinds);
  return Names()[static_cast<size_t>(i)];
}

OperatorKind OperatorKindFromName(const std::string& name) {
  const auto& names = Names();
  for (int i = 0; i < kNumOperatorKinds; ++i) {
    if (names[static_cast<size_t>(i)] == name) return static_cast<OperatorKind>(i);
  }
  return OperatorKind::kMaxValue;
}

}  // namespace phoebe::dag
