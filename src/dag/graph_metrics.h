// Structural metrics of a job graph, used for workload characterization
// (Figure 1/2 motivation) and for binning jobs by size/shape.
#pragma once

#include "common/status.h"
#include "dag/job_graph.h"

namespace phoebe::dag {

/// \brief Shape summary of one job graph.
struct GraphMetrics {
  int num_stages = 0;
  int num_edges = 0;
  int num_tasks = 0;        ///< sum of per-stage task counts
  int critical_path = 0;    ///< longest path in stages
  int max_fan_in = 0;
  int max_fan_out = 0;
  int num_roots = 0;
  int num_leaves = 0;
  int num_components = 0;   ///< weakly-connected components (free-cut candidates)
};

/// Compute all metrics in one pass. Fails on cyclic graphs.
Result<GraphMetrics> ComputeMetrics(const JobGraph& graph);

}  // namespace phoebe::dag
