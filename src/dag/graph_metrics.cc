#include "dag/graph_metrics.h"

#include <algorithm>
#include <numeric>

namespace phoebe::dag {

namespace {
/// Disjoint-set find with path halving.
int Find(std::vector<int>& parent, int x) {
  while (parent[static_cast<size_t>(x)] != x) {
    parent[static_cast<size_t>(x)] = parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
    x = parent[static_cast<size_t>(x)];
  }
  return x;
}
}  // namespace

Result<GraphMetrics> ComputeMetrics(const JobGraph& graph) {
  GraphMetrics m;
  m.num_stages = static_cast<int>(graph.num_stages());
  m.num_edges = static_cast<int>(graph.num_edges());
  for (const Stage& s : graph.stages()) m.num_tasks += s.num_tasks;

  PHOEBE_ASSIGN_OR_RETURN(m.critical_path, graph.CriticalPathLength());

  for (StageId u = 0; u < static_cast<StageId>(graph.num_stages()); ++u) {
    m.max_fan_in = std::max(m.max_fan_in, static_cast<int>(graph.upstream(u).size()));
    m.max_fan_out = std::max(m.max_fan_out, static_cast<int>(graph.downstream(u).size()));
  }
  m.num_roots = static_cast<int>(graph.Roots().size());
  m.num_leaves = static_cast<int>(graph.Leaves().size());

  if (graph.num_stages() > 0) {
    std::vector<int> parent(graph.num_stages());
    std::iota(parent.begin(), parent.end(), 0);
    for (const Edge& e : graph.edges()) {
      int a = Find(parent, e.from), b = Find(parent, e.to);
      if (a != b) parent[static_cast<size_t>(a)] = b;
    }
    for (int i = 0; i < m.num_stages; ++i) {
      if (Find(parent, i) == i) ++m.num_components;
    }
  }
  return m;
}

}  // namespace phoebe::dag
