#include "dag/job_graph.h"

#include <algorithm>
#include <deque>

#include "common/strings.h"

namespace phoebe::dag {

bool Stage::HasOperator(OperatorKind kind) const {
  return std::find(operators.begin(), operators.end(), kind) != operators.end();
}

StageId JobGraph::AddStage(Stage stage) {
  stage.id = static_cast<StageId>(stages_.size());
  stages_.push_back(std::move(stage));
  upstream_.emplace_back();
  downstream_.emplace_back();
  return stages_.back().id;
}

Status JobGraph::AddEdge(StageId from, StageId to) {
  auto in_range = [this](StageId id) {
    return id >= 0 && static_cast<size_t>(id) < stages_.size();
  };
  if (!in_range(from) || !in_range(to)) {
    return Status::InvalidArgument(
        StrFormat("edge (%d, %d) references unknown stage", from, to));
  }
  if (from == to) {
    return Status::InvalidArgument(StrFormat("self-loop on stage %d", from));
  }
  const auto& down = downstream_[static_cast<size_t>(from)];
  if (std::find(down.begin(), down.end(), to) != down.end()) {
    return Status::AlreadyExists(StrFormat("duplicate edge (%d, %d)", from, to));
  }
  edges_.push_back(Edge{from, to});
  downstream_[static_cast<size_t>(from)].push_back(to);
  upstream_[static_cast<size_t>(to)].push_back(from);
  return Status::OK();
}

const Stage& JobGraph::stage(StageId id) const {
  PHOEBE_CHECK(id >= 0 && static_cast<size_t>(id) < stages_.size());
  return stages_[static_cast<size_t>(id)];
}

Stage& JobGraph::mutable_stage(StageId id) {
  PHOEBE_CHECK(id >= 0 && static_cast<size_t>(id) < stages_.size());
  return stages_[static_cast<size_t>(id)];
}

const std::vector<StageId>& JobGraph::upstream(StageId id) const {
  PHOEBE_CHECK(id >= 0 && static_cast<size_t>(id) < upstream_.size());
  return upstream_[static_cast<size_t>(id)];
}

const std::vector<StageId>& JobGraph::downstream(StageId id) const {
  PHOEBE_CHECK(id >= 0 && static_cast<size_t>(id) < downstream_.size());
  return downstream_[static_cast<size_t>(id)];
}

std::vector<StageId> JobGraph::Roots() const {
  std::vector<StageId> roots;
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (upstream_[i].empty()) roots.push_back(static_cast<StageId>(i));
  }
  return roots;
}

std::vector<StageId> JobGraph::Leaves() const {
  std::vector<StageId> leaves;
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (downstream_[i].empty()) leaves.push_back(static_cast<StageId>(i));
  }
  return leaves;
}

Status JobGraph::Validate() const {
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].id != static_cast<StageId>(i)) {
      return Status::Internal(StrFormat("stage %zu has id %d", i, stages_[i].id));
    }
    if (stages_[i].num_tasks < 1) {
      return Status::InvalidArgument(
          StrFormat("stage %zu has %d tasks", i, stages_[i].num_tasks));
    }
  }
  auto order = TopologicalOrder();
  if (!order.ok()) return order.status();
  return Status::OK();
}

Result<std::vector<StageId>> JobGraph::TopologicalOrder() const {
  TopoScratch scratch;
  std::vector<StageId> order;
  PHOEBE_RETURN_NOT_OK(TopologicalOrderInto(&scratch, &order));
  return order;
}

Status JobGraph::TopologicalOrderInto(TopoScratch* scratch,
                                      std::vector<StageId>* out) const {
  std::vector<int>& indeg = scratch->indeg;
  indeg.assign(stages_.size(), 0);
  for (const Edge& e : edges_) ++indeg[static_cast<size_t>(e.to)];

  // Min-id-first ready set keeps the order deterministic; with dense ids a
  // sorted deque insertion is fine for the graph sizes we handle.
  std::vector<StageId>& ready = scratch->ready;
  ready.clear();
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (indeg[i] == 0) ready.push_back(static_cast<StageId>(i));
  }
  // Process in ascending id order via a sorted stack (reverse-sorted vector).
  std::sort(ready.rbegin(), ready.rend());

  out->clear();
  out->reserve(stages_.size());
  while (!ready.empty()) {
    StageId u = ready.back();
    ready.pop_back();
    out->push_back(u);
    for (StageId v : downstream_[static_cast<size_t>(u)]) {
      if (--indeg[static_cast<size_t>(v)] == 0) {
        // Insert keeping reverse-sorted order.
        auto it = std::lower_bound(ready.begin(), ready.end(), v, std::greater<>());
        ready.insert(it, v);
      }
    }
  }
  if (out->size() != stages_.size()) {
    return Status::FailedPrecondition("job graph contains a cycle");
  }
  return Status::OK();
}

Result<int> JobGraph::CriticalPathLength() const {
  PHOEBE_ASSIGN_OR_RETURN(std::vector<StageId> order, TopologicalOrder());
  if (order.empty()) return 0;
  std::vector<int> depth(stages_.size(), 1);
  for (StageId u : order) {
    for (StageId v : downstream_[static_cast<size_t>(u)]) {
      depth[static_cast<size_t>(v)] =
          std::max(depth[static_cast<size_t>(v)], depth[static_cast<size_t>(u)] + 1);
    }
  }
  return *std::max_element(depth.begin(), depth.end());
}

bool JobGraph::Reaches(StageId ancestor, StageId descendant) const {
  if (ancestor == descendant) return true;
  std::vector<bool> seen(stages_.size(), false);
  std::deque<StageId> frontier{ancestor};
  seen[static_cast<size_t>(ancestor)] = true;
  while (!frontier.empty()) {
    StageId u = frontier.front();
    frontier.pop_front();
    for (StageId v : downstream_[static_cast<size_t>(u)]) {
      if (v == descendant) return true;
      if (!seen[static_cast<size_t>(v)]) {
        seen[static_cast<size_t>(v)] = true;
        frontier.push_back(v);
      }
    }
  }
  return false;
}

std::string JobGraph::ToText() const {
  std::string out = "job " + name_ + "\n";
  for (const Stage& s : stages_) {
    std::vector<std::string> ops;
    ops.reserve(s.operators.size());
    for (OperatorKind k : s.operators) ops.push_back(OperatorKindName(k));
    out += StrFormat("stage %s %d %d %s\n", s.name.c_str(), s.stage_type, s.num_tasks,
                     Join(ops, ",").c_str());
  }
  for (const Edge& e : edges_) out += StrFormat("edge %d %d\n", e.from, e.to);
  return out;
}

Status JobGraph::FromText(std::string_view text, JobGraph* out) {
  PHOEBE_CHECK(out != nullptr);
  JobGraph g;
  int lineno = 0;
  for (const std::string& raw : Split(std::string(text), '\n')) {
    ++lineno;
    std::string line = raw;
    // Trim trailing CR and surrounding whitespace.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    line = line.substr(start);
    if (line.empty() || line[0] == '#') continue;

    std::vector<std::string> tok = Split(line, ' ');
    if (tok[0] == "job") {
      g.set_name(tok.size() > 1 ? tok[1] : "");
    } else if (tok[0] == "stage") {
      if (tok.size() != 5) {
        return Status::InvalidArgument(
            StrFormat("line %d: expected 'stage <name> <type> <tasks> <ops>'", lineno));
      }
      Stage s;
      s.name = tok[1];
      if (!ParseInt32(tok[2], &s.stage_type).ok() || !ParseInt32(tok[3], &s.num_tasks).ok()) {
        return Status::InvalidArgument(
            StrFormat("line %d: bad stage type/tasks '%s %s'", lineno, tok[2].c_str(),
                      tok[3].c_str()));
      }
      for (const std::string& op : Split(tok[4], ',')) {
        OperatorKind k = OperatorKindFromName(op);
        if (k == OperatorKind::kMaxValue) {
          return Status::InvalidArgument(
              StrFormat("line %d: unknown operator '%s'", lineno, op.c_str()));
        }
        s.operators.push_back(k);
      }
      g.AddStage(std::move(s));
    } else if (tok[0] == "edge") {
      if (tok.size() != 3) {
        return Status::InvalidArgument(StrFormat("line %d: expected 'edge <u> <v>'", lineno));
      }
      StageId from = kInvalidStage, to = kInvalidStage;
      if (!ParseInt32(tok[1], &from).ok() || !ParseInt32(tok[2], &to).ok()) {
        return Status::InvalidArgument(
            StrFormat("line %d: bad edge ids '%s %s'", lineno, tok[1].c_str(),
                      tok[2].c_str()));
      }
      PHOEBE_RETURN_NOT_OK(g.AddEdge(from, to));
    } else {
      return Status::InvalidArgument(
          StrFormat("line %d: unknown directive '%s'", lineno, tok[0].c_str()));
    }
  }
  PHOEBE_RETURN_NOT_OK(g.Validate());
  *out = std::move(g);
  return Status::OK();
}

}  // namespace phoebe::dag
