#include "lifecycle/lifecycle.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/json.h"
#include "common/strings.h"

namespace phoebe::lifecycle {

namespace {

constexpr const char* kPromotionLogFile = "promotion.log";
constexpr const char* kDayReportsFile = "day_reports.jsonl";
constexpr const char* kCurrentBundleFile = "current.phoebe";

std::string HexChecksum(uint32_t crc) { return StrFormat("%08x", crc); }

}  // namespace

Status LifecycleConfig::Validate() const {
  PHOEBE_RETURN_NOT_OK(policy.Validate());
  if (backtest_window_days < 1) {
    return Status::InvalidArgument("backtest_window_days must be >= 1");
  }
  if (!(mtbf_seconds > 0.0) || !std::isfinite(mtbf_seconds)) {
    return Status::InvalidArgument("mtbf_seconds must be positive and finite");
  }
  PHOEBE_RETURN_NOT_OK(fleet.Validate());
  if (fleet.storage_budget_bytes != std::numeric_limits<double>::infinity()) {
    return Status::InvalidArgument(
        "lifecycle requires an unlimited fleet storage budget (admission "
        "calibration is not wired into the loop)");
  }
  if (fleet.source != core::CostSource::kMlStacked) {
    return Status::InvalidArgument(
        "lifecycle requires CostSource::kMlStacked (the source the canary "
        "backtest compares)");
  }
  const int deepest =
      std::max(policy.train_window_days, backtest_window_days);
  if (retention_days != 0 && retention_days < deepest) {
    return Status::InvalidArgument(
        StrFormat("retention_days (%d) must be 0 or >= the deepest lookback "
                  "window (%d)",
                  retention_days, deepest));
  }
  return Status::OK();
}

std::string LifecycleDayReportJson(const LifecycleDayReport& report) {
  // No cache hit/miss counters here on purpose: this line is byte-compared
  // across template-cache modes, and cache traffic is the one report field
  // that legitimately differs between them.
  JsonWriter w;
  w.BeginObject();
  w.KV("day", report.day);
  w.KV("jobs", report.jobs);
  w.KV("served", report.served);
  w.KV("jobs_with_cut", report.jobs_with_cut);
  w.KV("jobs_admitted", report.jobs_admitted);
  w.KV("saving_fraction", report.saving_fraction);
  w.KV("exec_r2", report.exec_r2);
  w.KV("model_age_days", report.model_age_days);
  w.KV("retrained", report.retrained);
  w.KV("reason", report.reason);
  w.KV("incumbent", HexChecksum(report.incumbent_checksum));
  w.KV("candidate", HexChecksum(report.candidate_checksum));
  w.KV("incumbent_cost", report.incumbent_cost);
  w.KV("candidate_cost", report.candidate_cost);
  w.KV("verdict", report.verdict);
  w.KV("shadow_jobs", report.shadow_jobs);
  w.KV("shadow_differing", report.shadow_differing);
  w.EndObject();
  return w.str();
}

LifecycleDriver::LifecycleDriver(LifecycleConfig config)
    : config_(std::move(config)), config_status_(config_.Validate()) {
  // The serving stack shares the loop's registry; FleetConfig carries its
  // own pointer so the driver's phase timers land in the same place.
  config_.fleet.metrics = config_.metrics;
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    metrics_.days = m.counter("lifecycle.days");
    metrics_.jobs = m.counter("lifecycle.jobs");
    metrics_.retrains = m.counter("lifecycle.retrains");
    metrics_.promotions = m.counter("lifecycle.promotions");
    metrics_.rejections = m.counter("lifecycle.rejections");
    metrics_.shadow_jobs = m.counter("lifecycle.shadow.jobs");
    metrics_.shadow_diffs = m.counter("lifecycle.shadow.diffs");
    metrics_.evicted_days = m.counter("lifecycle.evicted.days");
    metrics_.day_seconds = m.histogram("lifecycle.day.seconds");
    metrics_.train_seconds = m.histogram("lifecycle.train.seconds");
    metrics_.backtest_seconds = m.histogram("lifecycle.backtest.seconds");
    metrics_.shadow_seconds = m.histogram("lifecycle.shadow.seconds");
    metrics_.exec_r2 = m.gauge("lifecycle.exec_r2");
    metrics_.model_age = m.gauge("lifecycle.model.age_days");
  }
  AdoptIncumbent(
      std::make_shared<const core::PipelineBundle>(config_.pipeline), -1);
}

Status LifecycleDriver::InitArtifacts() {
  if (artifacts_ready_ || config_.out_dir.empty()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(config_.out_dir, ec);
  if (ec) {
    return Status::IoError(StrFormat("cannot create out dir '%s': %s",
                                     config_.out_dir.c_str(),
                                     ec.message().c_str()));
  }
  // Fresh run: the promotion log starts at its header and the day-report
  // stream starts empty. Records only ever append afterwards.
  const std::string log_path = config_.out_dir + "/" + kPromotionLogFile;
  {
    std::ofstream out(log_path, std::ios::trunc | std::ios::binary);
    out << StrFormat("%s %d\n", kPromotionLogMagic, kPromotionLogVersion);
    if (!out) return Status::IoError("cannot write " + log_path);
  }
  const std::string reports_path = config_.out_dir + "/" + kDayReportsFile;
  {
    std::ofstream out(reports_path, std::ios::trunc | std::ios::binary);
    if (!out) return Status::IoError("cannot write " + reports_path);
  }
  artifacts_ready_ = true;
  return Status::OK();
}

Status LifecycleDriver::AppendArtifactLine(const std::string& file,
                                           const std::string& line) {
  if (config_.out_dir.empty()) return Status::OK();
  const std::string path = config_.out_dir + "/" + file;
  std::ofstream out(path, std::ios::app | std::ios::binary);
  out << line;
  if (!out) return Status::IoError("cannot append to " + path);
  return Status::OK();
}

void LifecycleDriver::AdoptIncumbent(
    std::shared_ptr<const core::PipelineBundle> bundle, int day) {
  incumbent_ = std::move(bundle);
  engine_ = std::make_unique<core::DecisionEngine>(incumbent_, config_.metrics);
  // A fresh fleet driver restarts the template cache empty: cached decisions
  // were made by the previous model and must not serve the new one.
  fleet_ = std::make_unique<core::FleetDriver>(engine_.get(), config_.fleet);
  trained_on_day_ = day;
}

Result<std::vector<double>> LifecycleDriver::WindowCosts(
    const std::vector<std::shared_ptr<const core::PipelineBundle>>& bundles,
    const telemetry::WorkloadRepository& repo, int day, int window_first) const {
  std::vector<std::unique_ptr<core::DecisionEngine>> engines;
  std::vector<const core::DecisionEngine*> arms;
  for (const auto& bundle : bundles) {
    engines.push_back(std::make_unique<core::DecisionEngine>(bundle));
    arms.push_back(engines.back().get());
  }
  std::vector<double> sums(bundles.size(), 0.0);
  std::vector<size_t> counts(bundles.size(), 0);
  for (int d = window_first; d <= day; ++d) {
    if (!repo.HasDay(d)) continue;
    // One pass over the day's jobs costs every bundle: the stats view and
    // the per-job generation work are shared across arms.
    const double mtbf =
        config_.mtbf_factor ? config_.mtbf_seconds / config_.mtbf_factor(d)
                            : config_.mtbf_seconds;
    PHOEBE_ASSIGN_OR_RETURN(
        std::vector<RunningStats> day_stats,
        core::EvaluateApproachArms(arms, repo.Day(d), repo.StatsBefore(d),
                                   core::Approach::kMlStacked,
                                   config_.fleet.objective, mtbf));
    for (size_t k = 0; k < bundles.size(); ++k) {
      sums[k] += day_stats[k].sum();
      counts[k] += day_stats[k].count();
    }
  }
  std::vector<double> costs(bundles.size(), 1.0);
  for (size_t k = 0; k < bundles.size(); ++k) {
    if (counts[k] == 0) continue;  // nothing eligible: no saving captured
    const double cost = 1.0 - sums[k] / static_cast<double>(counts[k]);
    costs[k] = std::min(1.0, std::max(0.0, cost));
  }
  return costs;
}

Result<LifecycleDayReport> LifecycleDriver::OnDayCompleted(
    telemetry::WorkloadRepository* repo, int day) {
  PHOEBE_RETURN_NOT_OK(config_status_);
  if (day <= last_day_) {
    return Status::InvalidArgument(StrFormat(
        "days must arrive in increasing order (%d after %d)", day, last_day_));
  }
  if (!repo->HasDay(day)) {
    return Status::NotFound(StrFormat("day %d not in repository", day));
  }
  PHOEBE_RETURN_NOT_OK(InitArtifacts());
  last_day_ = day;

  obs::ScopedTimer day_timer(metrics_.day_seconds);
  const std::vector<workload::JobInstance>& jobs = repo->Day(day);

  LifecycleDayReport report;
  report.day = day;
  report.jobs = static_cast<int>(jobs.size());
  report.model_age_days = trained_on_day_ < 0 ? -1 : day - trained_on_day_;

  // 1. The incumbent serves the day (decide + admit under the fleet config).
  if (incumbent_->trained()) {
    const telemetry::HistoricStats stats = repo->StatsBefore(day);
    PHOEBE_ASSIGN_OR_RETURN(core::FleetDayReport fleet_report,
                            fleet_->RunDay(jobs, stats));
    report.served = true;
    report.jobs_with_cut = fleet_report.jobs_with_cut;
    report.jobs_admitted = fleet_report.jobs_admitted;
    report.saving_fraction = fleet_report.SavingFraction();
    // 2. Measure its accuracy on the day — the Figure 8 drift signal.
    report.exec_r2 = core::EvaluateExecR2(incumbent_->exec_predictor(), *repo, day);
    obs::Set(metrics_.exec_r2, report.exec_r2);
  }
  obs::Set(metrics_.model_age, static_cast<double>(report.model_age_days));

  // 3. Retrain trigger: bootstrap | accuracy decay | age.
  if (!incumbent_->trained()) {
    if (day + 1 >= config_.policy.min_history_days) report.reason = "bootstrap";
  } else if (report.exec_r2 < config_.policy.min_exec_r2) {
    report.reason = "accuracy";
  } else if (report.model_age_days >= config_.policy.max_age_days) {
    report.reason = "age";
  }

  if (!report.reason.empty()) {
    report.retrained = true;
    obs::Increment(metrics_.retrains);
    const bool bootstrap = !incumbent_->trained();
    report.incumbent_checksum = incumbent_->checksum();

    // 4. Train the candidate on the trailing train window.
    std::shared_ptr<const core::PipelineBundle> candidate;
    {
      obs::ScopedTimer t(metrics_.train_seconds);
      core::PhoebePipeline trainer(config_.candidate_pipeline
                                       ? *config_.candidate_pipeline
                                       : config_.pipeline);
      const int first = std::max(0, day - config_.policy.train_window_days + 1);
      PHOEBE_RETURN_NOT_OK(trainer.Train(*repo, first, day - first + 1));
      candidate = trainer.bundle();
    }
    report.candidate_checksum = candidate->checksum();

    // 5. Canary backtest: both bundles replay the trailing window as two
    // arms of one pass, cost = 1 - mean realized saving. The bootstrap
    // candidate has no incumbent to beat and is promoted unconditionally
    // (cost recorded for the audit trail; the incumbent side keeps the -1
    // "not measured" sentinel).
    const int window_first = std::max(0, day - config_.backtest_window_days + 1);
    {
      obs::ScopedTimer t(metrics_.backtest_seconds);
      std::vector<std::shared_ptr<const core::PipelineBundle>> bundles;
      if (!bootstrap) bundles.push_back(incumbent_);
      bundles.push_back(candidate);
      PHOEBE_ASSIGN_OR_RETURN(std::vector<double> costs,
                              WindowCosts(bundles, *repo, day, window_first));
      if (!bootstrap) report.incumbent_cost = costs.front();
      report.candidate_cost = costs.back();
    }
    const bool promote =
        bootstrap || report.candidate_cost < report.incumbent_cost;
    report.verdict = promote ? "promoted" : "rejected";

    // 6. Shadow the rollover: incumbent and candidate run as two decision
    // arms over one shared DayContext, and the diff consumes the paired
    // decisions. Runs before any swap so both sides decide under their own
    // model.
    if (config_.shadow && !bootstrap) {
      obs::ScopedTimer t(metrics_.shadow_seconds);
      const telemetry::HistoricStats stats = repo->StatsBefore(day);
      const core::DayContext ctx(day, jobs, stats);
      core::DecisionEngine candidate_engine(candidate);
      core::FleetConfig shadow_config = config_.fleet;
      shadow_config.metrics = nullptr;  // shadow traffic must not pollute fleet.*
      core::DecisionArm candidate_arm(&candidate_engine, shadow_config);
      // The serving arm decides the same context (DecideDay is const: no
      // cache interaction, so serving state is untouched).
      PHOEBE_ASSIGN_OR_RETURN(core::FleetDayDecisions incumbent_decisions,
                              fleet_->arm().DecideDay(ctx));
      PHOEBE_ASSIGN_OR_RETURN(core::FleetDayDecisions candidate_decisions,
                              candidate_arm.DecideDay(ctx));
      PHOEBE_ASSIGN_OR_RETURN(
          ShadowDayDiff diff,
          DiffShadowDecisions(day, incumbent_->checksum(), candidate->checksum(),
                              incumbent_decisions, candidate_decisions));
      report.shadow_jobs = diff.jobs;
      report.shadow_differing = diff.differing;
      obs::Add(metrics_.shadow_jobs, diff.jobs);
      obs::Add(metrics_.shadow_diffs, diff.differing);
      if (!config_.out_dir.empty()) {
        PHOEBE_RETURN_NOT_OK(
            AppendArtifactLine(StrFormat("shadow_day_%03d.diff", day), diff.text));
      }
      shadow_diffs_.push_back(std::move(diff));
    }

    // 7. One CRC-checked promotion record either way.
    PromotionRecord record;
    record.day = day;
    record.window_first = window_first;
    record.window_last = day;
    record.incumbent_checksum = report.incumbent_checksum;
    record.candidate_checksum = report.candidate_checksum;
    record.incumbent_cost = report.incumbent_cost;
    record.candidate_cost = report.candidate_cost;
    record.reason = report.reason;
    record.verdict = report.verdict;
    PHOEBE_RETURN_NOT_OK(
        AppendArtifactLine(kPromotionLogFile, SerializePromotionRecord(record)));
    promotion_records_.push_back(std::move(record));

    if (promote) {
      obs::Increment(metrics_.promotions);
      if (!config_.out_dir.empty()) {
        // Immutable versioned artifact plus the stable serving path; the
        // atomic save means a racing `phoebe serve` reload of current.phoebe
        // sees old bytes or new bytes, never a torn file.
        PHOEBE_RETURN_NOT_OK(candidate->SaveToFile(
            config_.out_dir + "/" +
            StrFormat("bundle_day_%03d_%s.phoebe", day,
                      HexChecksum(candidate->checksum()).c_str())));
        PHOEBE_RETURN_NOT_OK(
            candidate->SaveToFile(config_.out_dir + "/" + kCurrentBundleFile));
      }
      AdoptIncumbent(std::move(candidate), day);
    } else {
      obs::Increment(metrics_.rejections);
    }
  }

  // 8. Bounded retention: drop repository days the deepest window has
  // outgrown.
  if (config_.retention_days > 0) {
    const size_t evicted = repo->EvictDaysBefore(day - config_.retention_days + 1);
    obs::Add(metrics_.evicted_days, static_cast<int64_t>(evicted));
  }

  obs::Increment(metrics_.days);
  obs::Add(metrics_.jobs, report.jobs);
  PHOEBE_RETURN_NOT_OK(
      AppendArtifactLine(kDayReportsFile, LifecycleDayReportJson(report) + "\n"));
  history_.push_back(report);
  return report;
}

}  // namespace phoebe::lifecycle
