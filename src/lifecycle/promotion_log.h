// Promotion log: the append-only, CRC-checked record of every canary
// decision the lifecycle loop makes.
//
// Phoebe in production (paper §6.4) replaces a deployed model only when a
// freshly retrained candidate is demonstrably better on recent history. The
// promotion log is the audit trail of that gate: one record per retrain,
// naming the day, the trailing backtest window, both bundle checksums, both
// realized trailing-window costs, why the retrain triggered, and the
// verdict. Rejections are recorded with the same fidelity as promotions —
// "the incumbent kept serving" is as much an operational fact as a rollover.
//
// File format (text, line-oriented, '\n' line ends):
//
//   phoebe_promotion_log 1
//   record day <d> window <w0> <w1> incumbent <crc8> candidate <crc8>
//     incumbent_cost <g17> candidate_cost <g17> reason <tok> verdict <tok>
//     crc <crc8>
//
// (each record is ONE line; wrapped above for readability). The trailing
// `crc` field is the CRC-32 of every record byte before " crc ", so a
// bit-flip anywhere in a record — day, checksum, cost digits — fails that
// record's parse. There is deliberately no trailer: the log is append-only,
// and a writer crash mid-record leaves a file whose intact prefix still
// parses record by record. Costs are the fraction of the objective NOT
// captured over the window (lower is better); -1 marks "not measured"
// (the bootstrap promotion has no incumbent to backtest). All numeric
// tokens go through the strict parsers in common/strings.h and any
// malformed input surfaces as a clean Status (fuzz_lifecycle_test pins
// this under ASan/UBSan).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace phoebe::lifecycle {

/// \brief One canary decision: a candidate bundle was trained and judged.
struct PromotionRecord {
  int day = 0;               ///< day whose completion triggered the retrain
  int window_first = 0;      ///< trailing backtest window, inclusive
  int window_last = 0;
  uint32_t incumbent_checksum = 0;  ///< 0 = no incumbent yet (bootstrap)
  uint32_t candidate_checksum = 0;
  /// Trailing-window cost: 1 - mean realized saving fraction, in [0, 1];
  /// -1 when not measured (the bootstrap record's incumbent side).
  double incumbent_cost = -1.0;
  double candidate_cost = -1.0;
  std::string reason;   ///< why the retrain triggered: bootstrap|accuracy|age
  std::string verdict;  ///< promoted|rejected
};

/// The fixed first line of every log, without the newline.
constexpr const char* kPromotionLogMagic = "phoebe_promotion_log";
constexpr int kPromotionLogVersion = 1;

/// One newline-terminated record line, CRC included.
std::string SerializePromotionRecord(const PromotionRecord& record);

/// Strict parse of one record line (no trailing newline). Verifies the CRC
/// before any field is interpreted. `*out` untouched on error.
Status ParsePromotionRecord(std::string_view line, PromotionRecord* out);

/// Header plus every record — the full file content.
std::string SerializePromotionLog(const std::vector<PromotionRecord>& records);

/// Strict parse of a whole log: header line first, then records. Any
/// malformed line (bad magic, wrong version, CRC mismatch, unknown reason
/// or verdict token, non-finite cost) is an error Status naming the line;
/// `*out` is untouched on error.
Status ParsePromotionLog(std::string_view text, std::vector<PromotionRecord>* out);

}  // namespace phoebe::lifecycle
