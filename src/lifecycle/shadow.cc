#include "lifecycle/shadow.h"

#include "common/strings.h"
#include "core/fleet_shard.h"

namespace phoebe::lifecycle {

namespace {

/// Prefix every line of a (newline-terminated) record with `prefix`.
void AppendPrefixed(std::string* out, const std::string& record,
                    const char* prefix) {
  for (const std::string& line : Split(record, '\n')) {
    if (line.empty()) continue;  // the record's trailing newline
    *out += prefix;
    *out += line;
    *out += '\n';
  }
}

}  // namespace

Result<ShadowDayDiff> DiffShadowDecisions(int day, uint32_t incumbent_checksum,
                                          uint32_t candidate_checksum,
                                          const core::FleetDayDecisions& incumbent,
                                          const core::FleetDayDecisions& candidate) {
  if (incumbent.decisions.size() != candidate.decisions.size()) {
    return Status::InvalidArgument(
        StrFormat("shadow diff: slot count mismatch (%zu incumbent vs %zu "
                  "candidate)",
                  incumbent.decisions.size(), candidate.decisions.size()));
  }
  ShadowDayDiff diff;
  diff.day = day;
  diff.incumbent_checksum = incumbent_checksum;
  diff.candidate_checksum = candidate_checksum;
  diff.jobs = static_cast<int>(incumbent.decisions.size());

  std::string jobs_text;
  for (size_t i = 0; i < incumbent.decisions.size(); ++i) {
    const std::string inc = core::SerializeJobDecisionRecord(i, incumbent.decisions[i]);
    const std::string cand =
        core::SerializeJobDecisionRecord(i, candidate.decisions[i]);
    if (inc == cand) {
      jobs_text += StrFormat("job %zu same\n", i);
      continue;
    }
    ++diff.differing;
    diff.differing_jobs.push_back(i);
    jobs_text += StrFormat("job %zu differs\n", i);
    AppendPrefixed(&jobs_text, inc, "- ");
    AppendPrefixed(&jobs_text, cand, "+ ");
  }

  diff.text = "phoebe_shadow_diff 1\n";
  diff.text += StrFormat("day %d jobs %d incumbent %08x candidate %08x differing %d\n",
                         diff.day, diff.jobs, diff.incumbent_checksum,
                         diff.candidate_checksum, diff.differing);
  diff.text += jobs_text;
  diff.text += "end_shadow_diff\n";
  return diff;
}

}  // namespace phoebe::lifecycle
