// LifecycleDriver: the simulated-production continuous-operation loop.
//
// The paper's Phoebe runs as a loop, not a batch job (§6.4): telemetry
// accumulates day by day in the workload repository, models are retrained
// as their accuracy decays (Figure 8), and a new model replaces the old one
// only after it proves itself on recent history. This driver is that loop
// over the repo's existing pieces:
//
//   day d completes
//     ├─ the incumbent bundle serves the day's decisions (FleetDriver,
//     │  threads + template cache, budget-free admission)
//     ├─ the incumbent's exec R^2 on the day is measured (EvaluateExecR2 —
//     │  the same Figure 8 signal RetrainingDriver uses)
//     ├─ RetrainPolicy decides: bootstrap | accuracy decay | age → train a
//     │  *candidate* PipelineBundle on the trailing train window
//     ├─ canary backtest: incumbent and candidate decide the trailing
//     │  backtest window as two arms of one pass (EvaluateApproachArms),
//     │  cost = 1 - mean realized saving; the candidate is promoted only on
//     │  a strictly lower cost
//     ├─ shadow mode (optional): incumbent and candidate run as two
//     │  DecisionArms over the day's shared DayContext; their would-be
//     │  decisions are serialized as shard-blob job records and byte-diffed
//     │  (lifecycle/shadow.h — a paired-arm report consumer)
//     └─ one CRC-checked record is appended to the promotion log either way
//
// Determinism contract: every artifact the loop emits — the promotion log,
// the shadow diffs, the per-day report JSON — is byte-identical for any
// FleetConfig::num_threads and for the exact-mode template cache on or off
// (lifecycle_determinism_test pins both axes). Promotion decisions flow only
// from backtests and training, which never touch the cache or the pool.
//
// On promotion with an `out_dir`, the new bundle is saved both as an
// immutable versioned artifact (`bundle_day_<ddd>_<crc8>.phoebe`) and
// atomically over `current.phoebe` — the stable path a `phoebe serve`
// daemon watches; SIGHUP it (or send a reload frame) and it picks the
// promoted bundle up without dropping a request.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluate.h"
#include "core/fleet.h"
#include "core/pipeline.h"
#include "core/retrainer.h"
#include "lifecycle/promotion_log.h"
#include "lifecycle/shadow.h"
#include "obs/metrics.h"
#include "telemetry/repository.h"

namespace phoebe::lifecycle {

/// \brief Knobs for the continuous-operation loop.
struct LifecycleConfig {
  /// When to retrain (accuracy decay / age / bootstrap) and how much history
  /// each training run sees — shared with RetrainingDriver.
  core::RetrainPolicy policy;
  /// Trailing days (ending at the retrain day) both bundles are backtested
  /// on for the canary comparison.
  int backtest_window_days = 3;
  /// Cluster MTBF for the recovery objective's failure model.
  double mtbf_seconds = 12 * 3600.0;
  /// Optional per-day failure-rate multiplier: day d's canary backtest
  /// divides mtbf_seconds by mtbf_factor(d) (a failure-storm scenario spikes
  /// this over its window). Null means 1.0 everywhere. Must return a finite
  /// positive value for every day it is asked about.
  std::function<double(int)> mtbf_factor;
  /// Day-serving configuration: objective, cuts, threads, template cache.
  /// The storage budget must stay unlimited (admission calibration is not
  /// wired into the loop), and the source must be kMlStacked — the only
  /// source the canary backtest compares.
  core::FleetConfig fleet;
  /// Architecture of the incumbent (and, absent the override below, every
  /// candidate).
  core::PipelineConfig pipeline = core::PhoebePipeline::DefaultConfig();
  /// Canary a *different* architecture: candidates train under this config
  /// while the incumbent keeps its own. The promotion gate then answers
  /// "is the new architecture actually better on our traffic" — and keeps
  /// serving the old one when it is not.
  std::optional<core::PipelineConfig> candidate_pipeline;
  /// Record + byte-diff the candidate's would-be decisions for the retrain
  /// day (lifecycle/shadow.h). Off by default: it costs one extra
  /// decide-phase pass per retrain.
  bool shadow = false;
  /// Evict repository days older than this after each completed day
  /// (0 = keep everything). Must cover the deepest lookback window.
  int retention_days = 0;
  /// Artifact directory: promotion.log, day_reports.jsonl, shadow diffs,
  /// versioned bundles, current.phoebe. Empty = in-memory only (tests).
  std::string out_dir;
  /// Optional observability registry (borrowed; must outlive the driver).
  /// Strictly passive: artifacts are byte-identical with metrics on or off.
  obs::MetricsRegistry* metrics = nullptr;

  Status Validate() const;
};

/// \brief Everything that happened on one simulated day.
struct LifecycleDayReport {
  int day = 0;
  int jobs = 0;
  bool served = false;  ///< incumbent was trained and decided the day
  int jobs_with_cut = 0;
  int jobs_admitted = 0;
  double saving_fraction = 0.0;  ///< realized, fleet-wide (0 when not served)
  double exec_r2 = 0.0;          ///< incumbent accuracy on the day (served only)
  int model_age_days = -1;       ///< -1 until an incumbent exists
  bool retrained = false;
  std::string reason;            ///< "", bootstrap|accuracy|age
  /// Canary outcome, meaningful iff retrained.
  uint32_t incumbent_checksum = 0;
  uint32_t candidate_checksum = 0;
  double incumbent_cost = -1.0;
  double candidate_cost = -1.0;
  std::string verdict;           ///< "", promoted|rejected
  /// Shadow outcome, meaningful iff a shadow diff ran this day.
  int shadow_jobs = 0;
  int shadow_differing = 0;
};

/// Canonical single-line JSON rendering of a day report — the byte-compared
/// unit of the lifecycle determinism contract (key order fixed, doubles as
/// %.17g; template-cache traffic is deliberately absent so exact-cache and
/// uncached runs render identically). Ends without a newline.
std::string LifecycleDayReportJson(const LifecycleDayReport& report);

/// \brief Drives the retrain → canary backtest → promote/reject loop.
class LifecycleDriver {
 public:
  explicit LifecycleDriver(LifecycleConfig config);

  /// Process the freshly completed `day`, which must already be stored in
  /// `*repo` along with the surviving history. Days must arrive in strictly
  /// increasing order. The repository is mutated only by retention eviction
  /// (LifecycleConfig::retention_days).
  Result<LifecycleDayReport> OnDayCompleted(telemetry::WorkloadRepository* repo,
                                            int day);

  bool deployed() const { return incumbent_->trained(); }
  int trained_on_day() const { return trained_on_day_; }
  uint32_t incumbent_checksum() const { return incumbent_->checksum(); }
  std::shared_ptr<const core::PipelineBundle> incumbent() const {
    return incumbent_;
  }

  const std::vector<PromotionRecord>& promotion_records() const {
    return promotion_records_;
  }
  const std::vector<LifecycleDayReport>& history() const { return history_; }
  const std::vector<ShadowDayDiff>& shadow_diffs() const { return shadow_diffs_; }

 private:
  /// Resolved once at construction; all null when metrics are off.
  struct Metrics {
    obs::Counter* days = nullptr;          ///< lifecycle.days
    obs::Counter* jobs = nullptr;          ///< lifecycle.jobs
    obs::Counter* retrains = nullptr;      ///< lifecycle.retrains
    obs::Counter* promotions = nullptr;    ///< lifecycle.promotions
    obs::Counter* rejections = nullptr;    ///< lifecycle.rejections
    obs::Counter* shadow_jobs = nullptr;   ///< lifecycle.shadow.jobs
    obs::Counter* shadow_diffs = nullptr;  ///< lifecycle.shadow.diffs
    obs::Counter* evicted_days = nullptr;  ///< lifecycle.evicted.days
    obs::Histogram* day_seconds = nullptr;       ///< lifecycle.day.seconds
    obs::Histogram* train_seconds = nullptr;     ///< lifecycle.train.seconds
    obs::Histogram* backtest_seconds = nullptr;  ///< lifecycle.backtest.seconds
    obs::Histogram* shadow_seconds = nullptr;    ///< lifecycle.shadow.seconds
    obs::Gauge* exec_r2 = nullptr;         ///< lifecycle.exec_r2
    obs::Gauge* model_age = nullptr;       ///< lifecycle.model.age_days
  };

  /// Lazy out_dir setup: create the directory, truncate promotion.log to its
  /// header and day_reports.jsonl to empty. No-op without an out_dir.
  Status InitArtifacts();
  Status AppendArtifactLine(const std::string& file, const std::string& line);

  /// Re-seat the serving side on `bundle` (fresh engine + fleet driver; the
  /// template cache restarts empty — entries decided under the old model
  /// must not serve the new one).
  void AdoptIncumbent(std::shared_ptr<const core::PipelineBundle> bundle, int day);

  /// Mean trailing-window cost (1 - realized saving) of each bundle over the
  /// backtest window ending at `day`, entry k for bundle k. One window pass
  /// evaluates every bundle (core::EvaluateApproachArms), so the canary
  /// costs incumbent and candidate against identical inputs with one
  /// generation pass instead of one per bundle.
  Result<std::vector<double>> WindowCosts(
      const std::vector<std::shared_ptr<const core::PipelineBundle>>& bundles,
      const telemetry::WorkloadRepository& repo, int day, int window_first) const;

  LifecycleConfig config_;
  Status config_status_;
  Metrics metrics_;
  bool artifacts_ready_ = false;

  std::shared_ptr<const core::PipelineBundle> incumbent_;
  std::unique_ptr<core::DecisionEngine> engine_;
  std::unique_ptr<core::FleetDriver> fleet_;
  int trained_on_day_ = -1;
  int last_day_ = -1;

  std::vector<PromotionRecord> promotion_records_;
  std::vector<LifecycleDayReport> history_;
  std::vector<ShadowDayDiff> shadow_diffs_;
};

}  // namespace phoebe::lifecycle
