#include "lifecycle/promotion_log.h"

#include <cmath>

#include "common/checksum.h"
#include "common/strings.h"

namespace phoebe::lifecycle {

namespace {

bool ValidReason(const std::string& reason) {
  return reason == "bootstrap" || reason == "accuracy" || reason == "age";
}

bool ValidVerdict(const std::string& verdict) {
  return verdict == "promoted" || verdict == "rejected";
}

/// The record body: every byte the trailing CRC covers.
std::string RecordBody(const PromotionRecord& r) {
  return StrFormat(
      "record day %d window %d %d incumbent %08x candidate %08x "
      "incumbent_cost %.17g candidate_cost %.17g reason %s verdict %s",
      r.day, r.window_first, r.window_last, r.incumbent_checksum,
      r.candidate_checksum, r.incumbent_cost, r.candidate_cost, r.reason.c_str(),
      r.verdict.c_str());
}

/// A cost is either the -1 "not measured" sentinel or a fraction in [0, 1].
bool ValidCost(double cost) {
  return cost == -1.0 || (cost >= 0.0 && cost <= 1.0);
}

}  // namespace

std::string SerializePromotionRecord(const PromotionRecord& record) {
  std::string body = RecordBody(record);
  uint32_t crc = Crc32(body);
  return body + StrFormat(" crc %08x\n", crc);
}

Status ParsePromotionRecord(std::string_view line, PromotionRecord* out) {
  const std::string text(line);
  size_t crc_at = text.rfind(" crc ");
  if (crc_at == std::string::npos) {
    return Status::InvalidArgument("promotion record: missing crc field");
  }
  const std::string body = text.substr(0, crc_at);
  uint32_t stated = 0;
  PHOEBE_RETURN_NOT_OK(ParseHexU32(text.substr(crc_at + 5), &stated));
  if (Crc32(body) != stated) {
    return Status::InvalidArgument(
        StrFormat("promotion record: crc mismatch (stated %08x, computed %08x)",
                  stated, Crc32(body)));
  }

  std::vector<std::string> t = Split(body, ' ');
  if (t.size() != 18 || t[0] != "record" || t[1] != "day" || t[3] != "window" ||
      t[6] != "incumbent" || t[8] != "candidate" || t[10] != "incumbent_cost" ||
      t[12] != "candidate_cost" || t[14] != "reason" || t[16] != "verdict") {
    return Status::InvalidArgument("promotion record: malformed field layout");
  }
  PromotionRecord r;
  PHOEBE_RETURN_NOT_OK(ParseInt32(t[2], &r.day));
  PHOEBE_RETURN_NOT_OK(ParseInt32(t[4], &r.window_first));
  PHOEBE_RETURN_NOT_OK(ParseInt32(t[5], &r.window_last));
  PHOEBE_RETURN_NOT_OK(ParseHexU32(t[7], &r.incumbent_checksum));
  PHOEBE_RETURN_NOT_OK(ParseHexU32(t[9], &r.candidate_checksum));
  PHOEBE_RETURN_NOT_OK(ParseFiniteDouble(t[11], &r.incumbent_cost));
  PHOEBE_RETURN_NOT_OK(ParseFiniteDouble(t[13], &r.candidate_cost));
  r.reason = t[15];
  r.verdict = t[17];
  if (r.day < 0) {
    return Status::InvalidArgument("promotion record: negative day");
  }
  if (r.window_first < 0 || r.window_first > r.window_last ||
      r.window_last > r.day) {
    return Status::InvalidArgument(
        StrFormat("promotion record: bad window [%d, %d] for day %d",
                  r.window_first, r.window_last, r.day));
  }
  if (!ValidCost(r.incumbent_cost) || !ValidCost(r.candidate_cost)) {
    return Status::InvalidArgument(
        "promotion record: cost outside [0, 1] and not the -1 sentinel");
  }
  if (!ValidReason(r.reason)) {
    return Status::InvalidArgument("promotion record: unknown reason '" + r.reason +
                                   "'");
  }
  if (!ValidVerdict(r.verdict)) {
    return Status::InvalidArgument("promotion record: unknown verdict '" +
                                   r.verdict + "'");
  }
  *out = std::move(r);
  return Status::OK();
}

std::string SerializePromotionLog(const std::vector<PromotionRecord>& records) {
  std::string out = StrFormat("%s %d\n", kPromotionLogMagic, kPromotionLogVersion);
  for (const PromotionRecord& r : records) out += SerializePromotionRecord(r);
  return out;
}

Status ParsePromotionLog(std::string_view text, std::vector<PromotionRecord>* out) {
  std::vector<std::string> lines = Split(std::string(text), '\n');
  // A well-formed log ends with '\n', so the split leaves one empty tail.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) {
    return Status::InvalidArgument("promotion log: empty input");
  }
  const std::string header =
      StrFormat("%s %d", kPromotionLogMagic, kPromotionLogVersion);
  if (lines[0] != header) {
    return Status::InvalidArgument("promotion log: bad header '" + lines[0] + "'");
  }
  std::vector<PromotionRecord> records;
  records.reserve(lines.size() - 1);
  for (size_t i = 1; i < lines.size(); ++i) {
    PromotionRecord r;
    Status st = ParsePromotionRecord(lines[i], &r);
    if (!st.ok()) {
      return Status::InvalidArgument(
          StrFormat("promotion log line %zu: %s", i + 1, st.message().c_str()));
    }
    records.push_back(std::move(r));
  }
  *out = std::move(records);
  return Status::OK();
}

}  // namespace phoebe::lifecycle
