// Shadow mode: "what would the new model have done" as a first-class
// artifact.
//
// When the lifecycle loop trains a candidate bundle, the candidate's
// would-be decisions for the day's jobs are computed through the same
// decide-phase code path a fleet shard runs (FleetDriver::DecideDay) and
// serialized as shard-blob job records (core/fleet_shard.h) — the exact
// bytes a shard process or the serve daemon would emit for the same job
// under that bundle. The diff against the incumbent's records is therefore
// a *byte* diff, not a semantic one: an identical candidate produces a
// zero-diff artifact (lifecycle_test pins this), and any divergence names
// the jobs whose cut, global bytes, or objective value would change under
// the rollover.
//
// Artifact text format (line-oriented, '\n' line ends):
//
//   phoebe_shadow_diff 1
//   day <d> jobs <m> incumbent <crc8> candidate <crc8> differing <k>
//   job <i> same                     # per job, arrival order
//   job <i> differs
//   - <incumbent record lines, "- " prefixed>
//   + <candidate record lines, "+ " prefixed>
//   end_shadow_diff
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fleet.h"

namespace phoebe::lifecycle {

/// \brief Byte-diff of one day's decide-phase records under two bundles.
struct ShadowDayDiff {
  int day = 0;
  uint32_t incumbent_checksum = 0;
  uint32_t candidate_checksum = 0;
  int jobs = 0;       ///< job slots compared (arrival order)
  int differing = 0;  ///< slots whose serialized records differ by >= 1 byte
  std::vector<size_t> differing_jobs;  ///< their indices, ascending
  std::string text;   ///< the full artifact in the format above
};

/// Diff `candidate` against `incumbent` job by job. Both must hold the same
/// number of slots (the same day's jobs); a size mismatch is an error.
Result<ShadowDayDiff> DiffShadowDecisions(int day, uint32_t incumbent_checksum,
                                          uint32_t candidate_checksum,
                                          const core::FleetDayDecisions& incumbent,
                                          const core::FleetDayDecisions& candidate);

}  // namespace phoebe::lifecycle
