#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"

namespace phoebe {

void JsonWriter::MaybeComma() {
  if (stack_.empty()) return;
  if (pending_key_) return;  // value directly follows its key
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

void JsonWriter::Escape(const std::string& s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  pending_key_ = false;
  out_ += '{';
  stack_.push_back(Scope::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  PHOEBE_CHECK(!stack_.empty() && stack_.back() == Scope::kObject && !pending_key_);
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  pending_key_ = false;
  out_ += '[';
  stack_.push_back(Scope::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  PHOEBE_CHECK(!stack_.empty() && stack_.back() == Scope::kArray && !pending_key_);
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  PHOEBE_CHECK(!stack_.empty() && stack_.back() == Scope::kObject && !pending_key_);
  MaybeComma();
  Escape(k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  MaybeComma();
  pending_key_ = false;
  Escape(v);
  return *this;
}

JsonWriter& JsonWriter::Value(const char* v) { return Value(std::string(v)); }

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  pending_key_ = false;
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  pending_key_ = false;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  pending_key_ = false;
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  pending_key_ = false;
  out_ += "null";
  return *this;
}

}  // namespace phoebe
