#include "common/status.h"

namespace phoebe {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kInfeasible: return "Infeasible";
    case StatusCode::kUnbounded: return "Unbounded";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace phoebe
