// Minimal streaming JSON writer for dumping experiment results and model
// artifacts. Write-only by design: nothing in Phoebe needs to parse foreign
// JSON, and a writer alone cannot be driven out of spec by untrusted input.
#pragma once

#include <string>
#include <vector>

namespace phoebe {

/// \brief Streaming JSON writer with correct escaping and nesting checks.
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object key; must be followed by a value or Begin*.
  JsonWriter& Key(const std::string& k);

  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v);
  JsonWriter& Value(double v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(size_t v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Null();

  /// Shorthand: Key(k) followed by Value(v).
  template <typename T>
  JsonWriter& KV(const std::string& k, const T& v) {
    Key(k);
    return Value(v);
  }

  /// The serialized document. Valid once all scopes are closed.
  const std::string& str() const { return out_; }

 private:
  enum class Scope { kObject, kArray };
  void MaybeComma();
  void Escape(const std::string& s);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_;   // first element in the current scope?
  bool pending_key_ = false;  // a Key() was emitted, expect a value
};

}  // namespace phoebe
