#include "common/argparse.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"

namespace phoebe {
namespace {

const char* KindName(int kind) {
  switch (kind) {
    case 0: return "int";
    case 1: return "double";
    case 2: return "string";
    case 3: return "bool";
    default: return "string";  // kStringList values are plain strings
  }
}

size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser::Flag& ArgParser::Register(const std::string& name, Kind kind,
                                     const std::string& help) {
  PHOEBE_CHECK_MSG(!name.empty() && name.rfind("--", 0) != 0,
                   "flag names are registered without the leading --");
  auto [it, inserted] = flags_.emplace(name, Flag{});
  PHOEBE_CHECK_MSG(inserted, "duplicate flag registration");
  order_.push_back(name);
  it->second.kind = kind;
  it->second.help = help;
  return it->second;
}

ArgParser& ArgParser::AddInt(const std::string& name, int default_value,
                             const std::string& help) {
  Flag& f = Register(name, Kind::kInt, help);
  f.int_value = default_value;
  f.default_text = StrFormat("%d", default_value);
  return *this;
}

ArgParser& ArgParser::AddDouble(const std::string& name, double default_value,
                                const std::string& help) {
  Flag& f = Register(name, Kind::kDouble, help);
  f.double_value = default_value;
  f.default_text = StrFormat("%g", default_value);
  return *this;
}

ArgParser& ArgParser::AddString(const std::string& name, const std::string& default_value,
                                const std::string& help) {
  Flag& f = Register(name, Kind::kString, help);
  f.string_value = default_value;
  f.default_text = default_value.empty() ? "\"\"" : default_value;
  return *this;
}

ArgParser& ArgParser::AddBool(const std::string& name, const std::string& help) {
  Flag& f = Register(name, Kind::kBool, help);
  f.default_text = "false";
  return *this;
}

ArgParser& ArgParser::AddStringList(const std::string& name, const std::string& help) {
  Flag& f = Register(name, Kind::kStringList, help);
  f.default_text = "none, repeatable";
  return *this;
}

std::string ArgParser::Suggest(const std::string& name) const {
  std::string best;
  size_t best_dist = name.size();  // a suggestion must beat retyping from scratch
  auto consider = [&](const std::string& candidate) {
    size_t d = EditDistance(name, candidate);
    if (d < best_dist) {
      best_dist = d;
      best = candidate;
    }
  };
  consider("help");  // special-cased in Parse, so not in flags_
  for (const auto& [candidate, flag] : flags_) consider(candidate);
  return best_dist <= 3 ? best : "";
}

Status ArgParser::Parse(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument(
          StrFormat("unexpected positional argument '%s' (flags are --name value; "
                    "see %s --help)",
                    arg.c_str(), program_.c_str()));
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (size_t eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    if (name == "help") {
      help_requested_ = true;
      return Status::OK();
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::string hint = Suggest(name);
      if (!hint.empty()) {
        return Status::InvalidArgument(StrFormat(
            "unknown flag '--%s'; did you mean '--%s'?", name.c_str(), hint.c_str()));
      }
      return Status::InvalidArgument(StrFormat("unknown flag '--%s' (see %s --help)",
                                               name.c_str(), program_.c_str()));
    }
    Flag& flag = it->second;
    flag.provided = true;

    if (flag.kind == Kind::kBool) {
      if (!has_inline) {
        flag.bool_value = true;
      } else if (inline_value == "true" || inline_value == "1") {
        flag.bool_value = true;
      } else if (inline_value == "false" || inline_value == "0") {
        flag.bool_value = false;
      } else {
        return Status::InvalidArgument(
            StrFormat("flag '--%s' expects true/false, got '%s'", name.c_str(),
                      inline_value.c_str()));
      }
      continue;
    }

    std::string value;
    if (has_inline) {
      value = inline_value;
    } else {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(
            StrFormat("flag '--%s' is missing its %s value", name.c_str(),
                      KindName(static_cast<int>(flag.kind))));
      }
      value = argv[++i];
    }

    Status parsed = Status::OK();
    switch (flag.kind) {
      case Kind::kInt: {
        int32_t v = 0;
        parsed = ParseInt32(value, &v);
        if (parsed.ok()) flag.int_value = v;
        break;
      }
      case Kind::kDouble: {
        double v = 0.0;
        parsed = ParseFiniteDouble(value, &v);
        if (parsed.ok()) flag.double_value = v;
        break;
      }
      case Kind::kString:
        flag.string_value = value;
        break;
      case Kind::kStringList:
        flag.list_value.push_back(value);
        break;
      case Kind::kBool:
        break;  // handled above
    }
    if (!parsed.ok()) {
      return Status::InvalidArgument(StrFormat("flag '--%s': %s", name.c_str(),
                                               parsed.message().c_str()));
    }
  }
  return Status::OK();
}

std::string ArgParser::Help() const {
  std::string out = program_;
  out += " [--flag value ...]\n";
  if (!description_.empty()) {
    out += description_;
    out += "\n";
  }
  out += "\nflags:\n";
  size_t width = 0;
  for (const std::string& name : order_) width = std::max(width, name.size());
  for (const std::string& name : order_) {
    const Flag& f = flags_.at(name);
    out += StrFormat("  --%-*s  %s", static_cast<int>(width), name.c_str(),
                     f.help.c_str());
    if (f.kind != Kind::kBool) {
      out += StrFormat(" (default %s)", f.default_text.c_str());
    }
    out += "\n";
  }
  out += "  --help" + std::string(width > 4 ? width - 4 : 0, ' ') +
         "  print this help and exit\n";
  return out;
}

const ArgParser::Flag& ArgParser::Lookup(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  PHOEBE_CHECK_MSG(it != flags_.end(), "flag read but never registered");
  PHOEBE_CHECK_MSG(it->second.kind == kind, "flag read with the wrong type");
  return it->second;
}

int ArgParser::GetInt(const std::string& name) const {
  return Lookup(name, Kind::kInt).int_value;
}

double ArgParser::GetDouble(const std::string& name) const {
  return Lookup(name, Kind::kDouble).double_value;
}

const std::string& ArgParser::GetString(const std::string& name) const {
  return Lookup(name, Kind::kString).string_value;
}

bool ArgParser::GetBool(const std::string& name) const {
  return Lookup(name, Kind::kBool).bool_value;
}

const std::vector<std::string>& ArgParser::GetStrings(const std::string& name) const {
  return Lookup(name, Kind::kStringList).list_value;
}

bool ArgParser::Provided(const std::string& name) const {
  auto it = flags_.find(name);
  PHOEBE_CHECK_MSG(it != flags_.end(), "flag read but never registered");
  return it->second.provided;
}

}  // namespace phoebe
