// Summary statistics used throughout evaluation: running moments, quantiles,
// ECDFs, histograms, and regression-quality metrics live here so that every
// bench reports numbers computed the same way.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace phoebe {

/// \brief Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Quantile of a sample via linear interpolation between order statistics.
/// `q` in [0, 1]. The input need not be sorted. Returns 0 for empty input.
double Quantile(std::vector<double> values, double q);

/// Median convenience wrapper.
double Median(std::vector<double> values);

/// \brief Empirical cumulative distribution function over a fixed sample.
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> values);
  /// Fraction of samples <= x.
  double Eval(double x) const;
  /// Inverse: the q-quantile, q in [0, 1].
  double Inverse(double q) const;
  size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

/// \brief Fixed-width histogram for reporting distributions in benches.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);
  void Add(double x);
  size_t bin_count() const { return counts_.size(); }
  size_t count(size_t bin) const { return counts_[bin]; }
  size_t total() const { return total_; }
  double bin_lo(size_t bin) const;
  double bin_hi(size_t bin) const;
  /// Render as rows of "[lo, hi) count frac" for textual figures.
  std::string ToString() const;

 private:
  double lo_, hi_, width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

/// Coefficient of determination R^2 = 1 - SS_res / SS_tot.
/// Returns 0 when the target has zero variance.
double RSquared(const std::vector<double>& y_true, const std::vector<double>& y_pred);

/// Pearson correlation coefficient; 0 when either side has zero variance.
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

/// QError(y, yhat) = max(y/yhat, yhat/y), the symmetric ratio error used for
/// cardinality/runtime estimates (Moerkotte et al.). Values are clamped below
/// by `eps` to keep the ratio finite.
double QError(double y_true, double y_pred, double eps = 1e-9);

/// Mean absolute error.
double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred);

}  // namespace phoebe
