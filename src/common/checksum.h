// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for artifact
// integrity checks. The bundle format stores the checksum of its payload so
// a truncated or bit-flipped file is rejected before any model text reaches
// the deeper parsers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace phoebe {

/// CRC-32 of `len` bytes starting at `data`. `seed` chains incremental
/// updates: Crc32(b, n) == Crc32(b + k, n - k, Crc32(b, k)).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Convenience overload for whole strings.
uint32_t Crc32(const std::string& text, uint32_t seed = 0);

}  // namespace phoebe
