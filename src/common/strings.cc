#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace phoebe {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(const std::string& s, const std::string& sub) {
  return s.find(sub) != std::string::npos;
}

bool ParseInt64(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  // strtoll skips leading whitespace; the strict contract forbids it.
  if (std::isspace(static_cast<unsigned char>(token.front()))) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno == ERANGE) return false;
  if (end != token.c_str() + token.size()) return false;  // junk or embedded NUL
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseInt32(const std::string& token, int32_t* out) {
  int64_t v = 0;
  if (!ParseInt64(token, &v)) return false;
  if (v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<int32_t>(v);
  return true;
}

bool ParseFiniteDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  if (std::isspace(static_cast<unsigned char>(token.front()))) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (!std::isfinite(v)) return false;  // covers ERANGE overflow, inf, nan
  *out = v;
  return true;
}

bool ParseHexU32(const std::string& token, uint32_t* out) {
  if (token.empty() || token.size() > 8) return false;
  uint32_t v = 0;
  for (char ch : token) {
    uint32_t digit;
    if (ch >= '0' && ch <= '9') digit = static_cast<uint32_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f') digit = static_cast<uint32_t>(ch - 'a') + 10;
    else if (ch >= 'A' && ch <= 'F') digit = static_cast<uint32_t>(ch - 'A') + 10;
    else return false;
    v = (v << 4) | digit;
  }
  *out = v;
  return true;
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB", "EB"};
  int unit = 0;
  double v = std::abs(bytes);
  while (v >= 1024.0 && unit < 6) {
    v /= 1024.0;
    ++unit;
  }
  return StrFormat("%s%.2f %s", bytes < 0 ? "-" : "", v, kUnits[unit]);
}

std::string HumanDuration(double seconds) {
  if (seconds < 60.0) return StrFormat("%.1fs", seconds);
  if (seconds < 3600.0)
    return StrFormat("%dm %.0fs", static_cast<int>(seconds / 60), std::fmod(seconds, 60.0));
  return StrFormat("%dh %dm", static_cast<int>(seconds / 3600),
                   static_cast<int>(std::fmod(seconds, 3600.0) / 60.0));
}

}  // namespace phoebe
