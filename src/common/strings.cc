#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace phoebe {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(const std::string& s, const std::string& sub) {
  return s.find(sub) != std::string::npos;
}

namespace {

/// Quote a (possibly hostile/binary/huge) token for an error message:
/// non-printable bytes become '?', long tokens truncate with an ellipsis.
std::string QuoteToken(const std::string& token) {
  constexpr size_t kMax = 32;
  std::string q = "'";
  for (size_t i = 0; i < token.size() && i < kMax; ++i) {
    unsigned char c = static_cast<unsigned char>(token[i]);
    q += (c >= 0x20 && c < 0x7f) ? token[i] : '?';
  }
  if (token.size() > kMax) q += "...";
  q += "'";
  return q;
}

Status BadToken(const char* what, const std::string& token) {
  return Status::InvalidArgument(std::string(what) + ": " + QuoteToken(token));
}

}  // namespace

Status ParseInt64(const std::string& token, int64_t* out) {
  if (token.empty()) return Status::InvalidArgument("empty integer token");
  // strtoll skips leading whitespace; the strict contract forbids it.
  if (std::isspace(static_cast<unsigned char>(token.front()))) {
    return BadToken("integer token starts with whitespace", token);
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno == ERANGE) return BadToken("integer out of range", token);
  if (end != token.c_str() + token.size()) {
    return BadToken("not an integer", token);  // junk or embedded NUL
  }
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ParseInt32(const std::string& token, int32_t* out) {
  int64_t v = 0;
  PHOEBE_RETURN_NOT_OK(ParseInt64(token, &v));
  if (v < INT32_MIN || v > INT32_MAX) {
    return BadToken("integer out of int32 range", token);
  }
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

Status ParseFiniteDouble(const std::string& token, double* out) {
  if (token.empty()) return Status::InvalidArgument("empty numeric token");
  if (std::isspace(static_cast<unsigned char>(token.front()))) {
    return BadToken("numeric token starts with whitespace", token);
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return BadToken("not a number", token);
  if (!std::isfinite(v)) {
    return BadToken("number is not finite", token);  // ERANGE, inf, nan
  }
  *out = v;
  return Status::OK();
}

Status ParseHexU32(const std::string& token, uint32_t* out) {
  if (token.empty() || token.size() > 8) {
    return BadToken("not an 8-digit-or-less hex token", token);
  }
  uint32_t v = 0;
  for (char ch : token) {
    uint32_t digit;
    if (ch >= '0' && ch <= '9') digit = static_cast<uint32_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f') digit = static_cast<uint32_t>(ch - 'a') + 10;
    else if (ch >= 'A' && ch <= 'F') digit = static_cast<uint32_t>(ch - 'A') + 10;
    else return BadToken("not a hex token", token);
    v = (v << 4) | digit;
  }
  *out = v;
  return Status::OK();
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB", "EB"};
  int unit = 0;
  double v = std::abs(bytes);
  while (v >= 1024.0 && unit < 6) {
    v /= 1024.0;
    ++unit;
  }
  return StrFormat("%s%.2f %s", bytes < 0 ? "-" : "", v, kUnits[unit]);
}

std::string HumanDuration(double seconds) {
  if (seconds < 60.0) return StrFormat("%.1fs", seconds);
  if (seconds < 3600.0)
    return StrFormat("%dm %.0fs", static_cast<int>(seconds / 60), std::fmod(seconds, 60.0));
  return StrFormat("%dh %dm", static_cast<int>(seconds / 3600),
                   static_cast<int>(std::fmod(seconds, 3600.0) / 60.0));
}

}  // namespace phoebe
