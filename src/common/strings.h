// Small string helpers shared across modules.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace phoebe {

/// Split `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(const std::string& s, char sep);

/// Join pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, const std::string& sep);

/// ASCII lower-casing.
std::string ToLower(std::string s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` starts with / ends with / contains `sub`.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);
bool Contains(const std::string& s, const std::string& sub);

/// Strict numeric token parsers for untrusted text (fuzzed traces, external
/// graph files). Unlike atoi/atof, they reject empty tokens, trailing junk,
/// and out-of-range values instead of returning garbage or invoking UB, so a
/// corrupted input surfaces as a clean error Status naming the offending
/// token (never a crash; fuzz_parser_test pins this). The whole token must be
/// the number; leading/trailing whitespace is rejected. On error `*out` is
/// untouched. Callers that only want a yes/no test use `.ok()`; callers
/// building a richer message can still wrap the returned Status.
Status ParseInt32(const std::string& token, int32_t* out);
Status ParseInt64(const std::string& token, int64_t* out);
/// Accepts only finite values (inf/nan/overflow are rejected): every numeric
/// field in the text formats is a finite quantity, and letting an overflowed
/// 1e999 through as +inf would poison downstream arithmetic.
Status ParseFiniteDouble(const std::string& token, double* out);
/// Unsigned 32-bit hex token (no 0x prefix), e.g. a CRC-32 printed "%08x".
/// Same strictness as the parsers above: the whole token must be hex digits.
Status ParseHexU32(const std::string& token, uint32_t* out);

/// Human-readable byte count, e.g. "1.50 GB".
std::string HumanBytes(double bytes);

/// Human-readable duration from seconds, e.g. "2h 15m".
std::string HumanDuration(double seconds);

}  // namespace phoebe
