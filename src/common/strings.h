// Small string helpers shared across modules.
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace phoebe {

/// Split `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(const std::string& s, char sep);

/// Join pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, const std::string& sep);

/// ASCII lower-casing.
std::string ToLower(std::string s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` starts with / ends with / contains `sub`.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);
bool Contains(const std::string& s, const std::string& sub);

/// Human-readable byte count, e.g. "1.50 GB".
std::string HumanBytes(double bytes);

/// Human-readable duration from seconds, e.g. "2h 15m".
std::string HumanDuration(double seconds);

}  // namespace phoebe
