// Aligned text table, used by benches to print the rows/series of each paper
// table and figure in a uniform format.
#pragma once

#include <string>
#include <vector>

namespace phoebe {

/// \brief Simple column-aligned table printer.
///
/// Usage:
///   TablePrinter t({"approach", "saving %"});
///   t.AddRow({"Random", "36.0"});
///   std::fputs(t.ToString().c_str(), stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Convenience: format doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  std::string ToString() const;
  /// Print to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace phoebe
