// Common macros used across the Phoebe codebase.
#pragma once

#include <cstdio>
#include <cstdlib>

/// Propagate a non-OK Status from the current function.
#define PHOEBE_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::phoebe::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Assign the value of a Result<T> to `lhs`, or propagate its error Status.
#define PHOEBE_ASSIGN_OR_RETURN(lhs, rexpr)         \
  auto PHOEBE_CONCAT(_res_, __LINE__) = (rexpr);    \
  if (!PHOEBE_CONCAT(_res_, __LINE__).ok())         \
    return PHOEBE_CONCAT(_res_, __LINE__).status(); \
  lhs = std::move(PHOEBE_CONCAT(_res_, __LINE__)).ValueOrDie()

#define PHOEBE_CONCAT_IMPL(x, y) x##y
#define PHOEBE_CONCAT(x, y) PHOEBE_CONCAT_IMPL(x, y)

/// Internal invariant check; aborts on violation. Enabled in all build types:
/// the cost is negligible compared to the simulation work around it, and a
/// silent invariant break in a simulator invalidates every downstream number.
#define PHOEBE_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PHOEBE_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define PHOEBE_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PHOEBE_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                                \
      std::abort();                                                         \
    }                                                                       \
  } while (0)
