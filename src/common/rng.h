// Deterministic pseudo-random number generation.
//
// All randomness in Phoebe flows through Rng so that every experiment is
// reproducible from a single seed. The generator is xoshiro256++ seeded via
// SplitMix64, which is fast, has a 2^256-1 period, and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace phoebe {

/// \brief Deterministic random number generator with common distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached spare).
  double Normal();
  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);
  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);
  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);
  /// Pareto with scale xm > 0 and shape alpha > 0.
  double Pareto(double xm, double alpha);
  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  int64_t Poisson(double mean);
  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);
  /// Zipf-distributed integer in [1, n] with exponent s (inverse-CDF on a
  /// precomputed table is the caller's job for hot paths; this is O(n) setup
  /// free but O(log n) per draw via rejection-free cumulative search).
  int64_t Zipf(int64_t n, double s);

  /// Sample an index in [0, weights.size()) proportionally to weights.
  size_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derive an independent child generator (for per-job / per-day streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace phoebe
