// Typed command-line flag parser for the tools in this repo.
//
// Flags are registered up front with a type, a default, and one line of help;
// Parse then walks argv and fills them in. Design points:
//
//  - `--flag value` and `--flag=value` are both accepted; bool flags take no
//    value (`--graph`) but tolerate an explicit `--graph=false`.
//  - Unknown flags are an InvalidArgument Status, with a "did you mean"
//    suggestion from the registered set — a typo must never silently fall
//    back to a default.
//  - Typed values parse through the hardened common/strings.h parsers, so a
//    bad value is a clean Status naming the flag and token, never UB.
//  - `--help` is synthesized from the registrations (Help()); callers check
//    help_requested() after a successful Parse.
//
// Getters abort on programmer error (asking for an unregistered flag or the
// wrong type); user error always comes back as a Status from Parse.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace phoebe {

class ArgParser {
 public:
  /// `program` and `description` head the generated --help text.
  ArgParser(std::string program, std::string description);

  /// Register a flag. Registration order is the --help order. Registering
  /// the same name twice aborts (programmer error).
  ArgParser& AddInt(const std::string& name, int default_value, const std::string& help);
  ArgParser& AddDouble(const std::string& name, double default_value,
                       const std::string& help);
  ArgParser& AddString(const std::string& name, const std::string& default_value,
                       const std::string& help);
  /// Presence flag, default false. `--name` sets it; `--name=true/false`
  /// also works.
  ArgParser& AddBool(const std::string& name, const std::string& help);
  /// Repeatable string flag: every `--name value` occurrence appends to the
  /// list, in command-line order. Default is the empty list.
  ArgParser& AddStringList(const std::string& name, const std::string& help);

  /// Parse argv[first..argc). On error (unknown flag, missing or malformed
  /// value, positional argument) returns InvalidArgument and leaves parsed
  /// values unspecified. `--help` anywhere short-circuits to OK with
  /// help_requested() set.
  Status Parse(int argc, char** argv, int first);

  bool help_requested() const { return help_requested_; }
  /// Usage text generated from the registrations.
  std::string Help() const;

  int GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  /// All occurrences of a repeatable flag, in command-line order (empty if
  /// the flag never appeared).
  const std::vector<std::string>& GetStrings(const std::string& name) const;
  /// True if the flag appeared on the command line (vs. its default).
  bool Provided(const std::string& name) const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool, kStringList };

  struct Flag {
    Kind kind = Kind::kString;
    std::string help;
    std::string default_text;  // rendered in --help
    bool provided = false;
    int int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
    std::vector<std::string> list_value;
  };

  Flag& Register(const std::string& name, Kind kind, const std::string& help);
  const Flag& Lookup(const std::string& name, Kind kind) const;
  /// Closest registered flag name by edit distance, or "" if nothing close.
  std::string Suggest(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  bool help_requested_ = false;
};

}  // namespace phoebe
