#include "common/threadpool.h"

#include "common/macros.h"

namespace phoebe {

int ThreadPool::Resolve(int requested) {
  if (requested > 0) return requested;
  if (requested < 0) return 1;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  PHOEBE_CHECK(num_threads >= 1);
  // The caller is worker 0; spawn the rest.
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunIterations(int worker) {
  while (true) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    (*body_)(worker, i);
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    RunIterations(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--busy_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  ParallelForWorker(n, [&body](int, size_t i) { body(i); });
}

void ThreadPool::ParallelForWorker(size_t n,
                                   const std::function<void(int, size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty()) {
    // Serial path: no synchronization, identical to a plain loop.
    for (size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    PHOEBE_CHECK_MSG(busy_ == 0, "nested/concurrent ParallelFor on one pool");
    n_ = n;
    body_ = &body;
    next_.store(0, std::memory_order_relaxed);
    busy_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  RunIterations(0);  // the caller participates as worker 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return busy_ == 0; });
  body_ = nullptr;
}

}  // namespace phoebe
