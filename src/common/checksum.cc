#include "common/checksum.h"

#include <array>

namespace phoebe {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::string& text, uint32_t seed) {
  return Crc32(text.data(), text.size(), seed);
}

}  // namespace phoebe
