#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/macros.h"

namespace phoebe {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  PHOEBE_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) { return Quantile(std::move(values), 0.5); }

Ecdf::Ecdf(std::vector<double> values) : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::Eval(double x) const {
  if (sorted_.empty()) return 0.0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::Inverse(double q) const {
  if (sorted_.empty()) return 0.0;
  PHOEBE_CHECK(q >= 0.0 && q <= 1.0);
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_.size()));
  if (idx >= sorted_.size()) idx = sorted_.size() - 1;
  return sorted_[idx];
}

Histogram::Histogram(double lo, double hi, size_t bins) : lo_(lo), hi_(hi) {
  PHOEBE_CHECK(hi > lo && bins > 0);
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++counts_.front();
    return;
  }
  size_t bin = static_cast<size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
}

double Histogram::bin_lo(size_t bin) const { return lo_ + width_ * static_cast<double>(bin); }
double Histogram::bin_hi(size_t bin) const { return lo_ + width_ * static_cast<double>(bin + 1); }

std::string Histogram::ToString() const {
  std::string out;
  char buf[128];
  for (size_t b = 0; b < counts_.size(); ++b) {
    double frac = total_ ? static_cast<double>(counts_[b]) / static_cast<double>(total_) : 0.0;
    std::snprintf(buf, sizeof(buf), "[%10.3g, %10.3g) %8zu  %6.2f%%\n", bin_lo(b),
                  bin_hi(b), counts_[b], 100.0 * frac);
    out += buf;
  }
  return out;
}

double RSquared(const std::vector<double>& y_true, const std::vector<double>& y_pred) {
  PHOEBE_CHECK(y_true.size() == y_pred.size());
  if (y_true.empty()) return 0.0;
  double mean = 0.0;
  for (double y : y_true) mean += y;
  mean /= static_cast<double>(y_true.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    double r = y_true[i] - y_pred[i];
    double t = y_true[i] - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  PHOEBE_CHECK(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(x.size());
  my /= static_cast<double>(y.size());
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double QError(double y_true, double y_pred, double eps) {
  double a = std::max(std::abs(y_true), eps);
  double b = std::max(std::abs(y_pred), eps);
  return std::max(a / b, b / a);
}

double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred) {
  PHOEBE_CHECK(y_true.size() == y_pred.size());
  if (y_true.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) s += std::abs(y_true[i] - y_pred[i]);
  return s / static_cast<double>(y_true.size());
}

}  // namespace phoebe
