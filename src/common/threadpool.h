// Fixed-size fork-join thread pool for embarrassingly parallel loops.
//
// Deliberately work-stealing-free: one shared atomic index hands out loop
// iterations to a fixed set of workers, which is all the fleet driver needs
// (per-job checkpoint decisions are independent) and keeps the concurrency
// surface small enough to audit under TSan. Results must be written to
// per-index slots by the body; the pool itself never reorders or merges
// anything, so callers that replay results in index order are byte-identical
// to a serial loop regardless of thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace phoebe {

/// \brief Fixed-size pool running index-based parallel loops.
class ThreadPool {
 public:
  /// \param num_threads total workers participating in ParallelFor, including
  /// the calling thread. Must be >= 1 (use Resolve to map a user-facing
  /// config value). 1 means "run everything inline on the caller" — no
  /// threads are spawned at all, so the pool is free to construct on the
  /// legacy serial path.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs `body(i)` for every i in [0, n) across the pool; the calling
  /// thread participates as a worker. Returns once every iteration has
  /// finished. `body` must be safe to invoke concurrently for distinct
  /// indices and must not call ParallelFor on the same pool (no nesting).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// ParallelFor that also tells the body which worker runs the iteration:
  /// `body(worker, i)` with worker in [0, num_threads), caller = worker 0.
  /// Which worker gets which index is scheduling-dependent — use the worker
  /// id only for telemetry (per-thread work counts) or for indexing
  /// per-worker scratch space, never for anything that feeds a result.
  void ParallelForWorker(size_t n,
                         const std::function<void(int, size_t)>& body);

  /// Workers participating in ParallelFor (>= 1, caller included).
  int num_threads() const { return num_threads_; }

  /// Maps a user-facing thread-count config to an actual count: 0 selects
  /// the hardware concurrency (at least 1), negative values are clamped to
  /// 1, anything else passes through.
  static int Resolve(int requested);

 private:
  void WorkerLoop(int worker);
  void RunIterations(int worker);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for a new generation
  std::condition_variable done_cv_;   ///< caller waits for workers to drain
  uint64_t generation_ = 0;           ///< bumped per ParallelFor call
  int busy_ = 0;                      ///< workers still inside RunIterations
  bool stop_ = false;

  // Current loop; valid while busy_ > 0 or the caller is in ParallelFor.
  size_t n_ = 0;
  const std::function<void(int, size_t)>* body_ = nullptr;
  std::atomic<size_t> next_{0};
};

}  // namespace phoebe
