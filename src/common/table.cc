#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"
#include "common/strings.h"

namespace phoebe {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  PHOEBE_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  PHOEBE_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label, const std::vector<double>& values,
                          int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(StrFormat("%.*f", precision, v));
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  out += rule + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace phoebe
