#include "common/rng.h"

#include <cmath>

namespace phoebe {

namespace {
inline uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PHOEBE_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Lemire's rejection method for unbiased bounded integers.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < range) {
    uint64_t t = (~range + 1) % range;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<uint64_t>(m);
    }
  }
  return lo + static_cast<int64_t>(m >> 64);
}

double Rng::Normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  double u2 = Uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double rate) {
  PHOEBE_CHECK(rate > 0.0);
  double u = 0.0;
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / rate;
}

double Rng::Pareto(double xm, double alpha) {
  PHOEBE_CHECK(xm > 0.0 && alpha > 0.0);
  double u = 0.0;
  while (u <= 1e-300) u = Uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

int64_t Rng::Poisson(double mean) {
  PHOEBE_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for workload
    // generation where mean counts are large.
    double v = Normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = Uniform();
  int64_t n = 0;
  while (prod > limit) {
    prod *= Uniform();
    ++n;
  }
  return n;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Zipf(int64_t n, double s) {
  PHOEBE_CHECK(n >= 1);
  // Rejection-inversion (Hörmann) would be faster; direct inversion over the
  // harmonic CDF is fine for the small n used in workload generation.
  double h = 0.0;
  for (int64_t k = 1; k <= n; ++k) h += 1.0 / std::pow(static_cast<double>(k), s);
  double u = Uniform() * h;
  double acc = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (acc >= u) return k;
  }
  return n;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  PHOEBE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    PHOEBE_CHECK(w >= 0.0);
    total += w;
  }
  PHOEBE_CHECK(total > 0.0);
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (acc >= u) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace phoebe
