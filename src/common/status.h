// Status / Result<T> error handling, following the Arrow/RocksDB idiom:
// recoverable errors are returned as values, never thrown.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace phoebe {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
  kIoError,
  kInfeasible,  ///< optimization model has no feasible solution
  kUnbounded,   ///< optimization model is unbounded
};

/// \brief Value-semantics error signal.
///
/// A Status is cheap to copy in the OK case (empty message). Functions that
/// can fail return Status (or Result<T> when they also produce a value).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInfeasible() const { return code_ == StatusCode::kInfeasible; }
  bool IsUnbounded() const { return code_ == StatusCode::kUnbounded; }

  std::string ToString() const;

  /// Abort the process if this status is not OK. For use in tests, examples,
  /// and benches, where an error is a programming bug.
  void Check() const {
    if (!ok()) {
      std::fprintf(stderr, "Status not OK: %s\n", ToString().c_str());
      std::abort();
    }
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}                  // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {            // NOLINT implicit
    PHOEBE_CHECK_MSG(!std::get<Status>(v_).ok(),
                     "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  /// Returns the value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(v_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(v_);
  }
  T ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(v_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::fprintf(stderr, "Result holds error: %s\n",
                   std::get<Status>(v_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> v_;
};

}  // namespace phoebe
