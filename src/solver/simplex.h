// Dense two-phase primal simplex for LPs built with solver::Model.
//
// Scope: exact-arithmetic-free teaching-grade simplex that is nonetheless
// robust enough for Phoebe's checkpoint IPs (hundreds of variables). Finite
// lower bounds are shifted to zero; finite upper bounds become explicit
// constraints; >=/= rows get artificial variables driven out in phase 1.
// Dantzig pricing with a Bland's-rule fallback guards against cycling.
#pragma once

#include "common/status.h"
#include "solver/model.h"

namespace phoebe::solver {

/// \brief Limits for one LP solve.
struct LpOptions {
  int64_t max_pivots = 200000;
  double eps = 1e-9;
};

/// Solve the LP relaxation of `model` (integrality is ignored).
/// `bound_override`, if non-null, replaces the variable bounds (used by
/// branch-and-bound); it must have one (lo, hi) pair per variable.
///
/// Returns kInfeasible / kUnbounded statuses for those outcomes.
Result<Solution> SolveLp(const Model& model, const LpOptions& options = {},
                         const std::vector<std::pair<double, double>>* bound_override =
                             nullptr);

}  // namespace phoebe::solver
