// Model-builder API for linear and mixed 0/1-integer programs.
//
// Phoebe's checkpoint IP formulations (Section 5 of the paper) are built
// against this interface and solved by the bundled simplex / branch-and-bound
// engine — the from-scratch replacement for OR-Tools + CBC.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace phoebe::solver {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kLe, kGe, kEq };

/// \brief Sparse linear expression: sum of coeff * var.
struct LinearExpr {
  std::vector<std::pair<int, double>> terms;  ///< (variable index, coefficient)

  LinearExpr& Add(int var, double coeff) {
    terms.emplace_back(var, coeff);
    return *this;
  }
};

/// \brief A variable with bounds; `integer` restricts it to whole values
/// within its bounds (use [0,1] bounds for binaries).
struct Variable {
  std::string name;
  double lo = 0.0;
  double hi = kInfinity;
  bool integer = false;
};

/// \brief One linear constraint: expr (sense) rhs.
struct Constraint {
  LinearExpr expr;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// \brief An optimization model: variables, constraints, linear objective.
class Model {
 public:
  /// Add a continuous variable; returns its index.
  int AddContinuous(double lo, double hi, std::string name = "");
  /// Add an integer variable; returns its index.
  int AddInteger(double lo, double hi, std::string name = "");
  /// Add a binary (0/1) variable; returns its index.
  int AddBinary(std::string name = "");

  void AddConstraint(LinearExpr expr, Sense sense, double rhs);

  /// Set the objective; `maximize` false means minimize.
  void SetObjective(LinearExpr expr, bool maximize);

  size_t num_variables() const { return variables_.size(); }
  size_t num_constraints() const { return constraints_.size(); }
  size_t num_integer_variables() const;

  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  const LinearExpr& objective() const { return objective_; }
  bool maximize() const { return maximize_; }

  /// Structural sanity: indices in range, lo <= hi, finite rhs.
  Status Validate() const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  LinearExpr objective_;
  bool maximize_ = true;
};

/// \brief Result of an LP or MILP solve.
struct Solution {
  double objective = 0.0;
  std::vector<double> values;  ///< one per variable
  int64_t nodes = 0;           ///< branch-and-bound nodes (0 for pure LP)
  int64_t pivots = 0;          ///< total simplex pivots
  bool optimal = true;         ///< false if a limit stopped the search early
};

}  // namespace phoebe::solver
