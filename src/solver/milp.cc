#include "solver/milp.h"

#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "common/strings.h"

namespace phoebe::solver {

namespace {

using Bounds = std::vector<std::pair<double, double>>;

struct Node {
  Bounds bounds;
  double parent_bound;  // LP objective of the parent (for ordering/pruning)
};

/// Index of the most fractional integer variable, or -1 if all integral.
int MostFractional(const Model& model, const std::vector<double>& x, double tol) {
  int best = -1;
  double best_dist = tol;
  for (size_t v = 0; v < model.num_variables(); ++v) {
    if (!model.variables()[v].integer) continue;
    double frac = x[v] - std::floor(x[v]);
    double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = static_cast<int>(v);
    }
  }
  return best;
}

}  // namespace

Result<Solution> SolveMilp(const Model& model, const MilpOptions& options) {
  PHOEBE_RETURN_NOT_OK(model.Validate());
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };
  const double sign = model.maximize() ? 1.0 : -1.0;  // compare in max space

  Bounds root_bounds;
  root_bounds.reserve(model.num_variables());
  for (const Variable& v : model.variables()) {
    // Integer bounds can be tightened to whole numbers up front.
    double lo = v.integer ? std::ceil(v.lo - options.int_tol) : v.lo;
    double hi = v.integer && std::isfinite(v.hi) ? std::floor(v.hi + options.int_tol) : v.hi;
    root_bounds.emplace_back(lo, hi);
  }

  bool have_incumbent = false;
  Solution incumbent;
  int64_t nodes = 0, pivots = 0;
  bool hit_limit = false;

  // DFS uses the vector as a stack; best-first pops the node with the best
  // parent LP bound (in maximization space).
  const bool best_first = options.node_selection == NodeSelection::kBestFirst;
  std::vector<Node> stack;
  stack.push_back(Node{std::move(root_bounds), sign * kInfinity});

  auto pop_node = [&]() -> Node {
    size_t pick = stack.size() - 1;
    if (best_first) {
      for (size_t i = 0; i < stack.size(); ++i) {
        if (sign * stack[i].parent_bound > sign * stack[pick].parent_bound) pick = i;
      }
    }
    Node node = std::move(stack[pick]);
    stack.erase(stack.begin() + static_cast<long>(pick));
    return node;
  };

  while (!stack.empty()) {
    if (nodes >= options.max_nodes || elapsed() > options.time_limit_seconds) {
      hit_limit = true;
      break;
    }
    Node node = pop_node();
    ++nodes;

    // Prune by parent bound before paying for the LP.
    if (have_incumbent &&
        sign * node.parent_bound <= sign * incumbent.objective + options.gap_tol) {
      continue;
    }

    Result<Solution> lp = SolveLp(model, options.lp, &node.bounds);
    if (!lp.ok()) {
      if (lp.status().IsInfeasible()) continue;  // dead branch
      return lp.status();
    }
    pivots += lp->pivots;
    if (have_incumbent &&
        sign * lp->objective <= sign * incumbent.objective + options.gap_tol) {
      continue;
    }

    int branch_var = MostFractional(model, lp->values, options.int_tol);
    if (branch_var < 0) {
      // Integer feasible: snap and accept as the new incumbent.
      for (size_t v = 0; v < model.num_variables(); ++v) {
        if (model.variables()[v].integer) {
          lp->values[v] = std::round(lp->values[v]);
        }
      }
      incumbent = std::move(*lp);
      have_incumbent = true;
      continue;
    }

    double x = lp->values[static_cast<size_t>(branch_var)];
    double floor_hi = std::floor(x);
    double ceil_lo = floor_hi + 1.0;

    Node down{node.bounds, lp->objective};
    down.bounds[static_cast<size_t>(branch_var)].second =
        std::min(down.bounds[static_cast<size_t>(branch_var)].second, floor_hi);
    Node up{std::move(node.bounds), lp->objective};
    up.bounds[static_cast<size_t>(branch_var)].first =
        std::max(up.bounds[static_cast<size_t>(branch_var)].first, ceil_lo);

    // DFS; push the branch nearer the LP value last so it is explored first.
    double frac = x - floor_hi;
    if (frac > 0.5) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }

  if (!have_incumbent) {
    if (hit_limit) {
      return Status::Internal(
          StrFormat("MILP limits reached after %lld nodes with no incumbent",
                    static_cast<long long>(nodes)));
    }
    return Status::Infeasible("no integer-feasible solution");
  }
  incumbent.nodes = nodes;
  incumbent.pivots = pivots;
  incumbent.optimal = !hit_limit;
  return incumbent;
}

}  // namespace phoebe::solver
