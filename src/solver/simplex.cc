#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/strings.h"

namespace phoebe::solver {

namespace {

/// Dense simplex tableau. Columns: structural vars first, then slack/surplus,
/// then artificial. The cost row holds reduced costs (maximization).
struct Tableau {
  int m = 0;             // rows (constraints)
  int n = 0;             // columns (all variables)
  int n_structural = 0;  // structural columns
  int first_artificial = 0;
  std::vector<double> a;     // m * n
  std::vector<double> rhs;   // m
  std::vector<double> cost;  // n, reduced costs
  double obj = 0.0;          // current objective value
  std::vector<int> basis;    // m

  double& At(int i, int j) { return a[static_cast<size_t>(i) * n + j]; }
  double At(int i, int j) const { return a[static_cast<size_t>(i) * n + j]; }

  void Pivot(int row, int col) {
    double p = At(row, col);
    double inv = 1.0 / p;
    for (int j = 0; j < n; ++j) At(row, j) *= inv;
    rhs[static_cast<size_t>(row)] *= inv;
    At(row, col) = 1.0;  // cancel rounding
    for (int i = 0; i < m; ++i) {
      if (i == row) continue;
      double f = At(i, col);
      if (f == 0.0) continue;
      for (int j = 0; j < n; ++j) At(i, j) -= f * At(row, j);
      At(i, col) = 0.0;
      rhs[static_cast<size_t>(i)] -= f * rhs[static_cast<size_t>(row)];
    }
    double cf = cost[static_cast<size_t>(col)];
    if (cf != 0.0) {
      for (int j = 0; j < n; ++j) cost[static_cast<size_t>(j)] -= cf * At(row, j);
      cost[static_cast<size_t>(col)] = 0.0;
      obj += cf * rhs[static_cast<size_t>(row)];
    }
    basis[static_cast<size_t>(row)] = col;
  }
};

enum class IterResult { kOptimal, kUnbounded, kPivotLimit };

/// Run simplex iterations until optimal/unbounded/limit. `allow_col` filters
/// columns eligible to enter (used to block artificials in phase 2).
IterResult Iterate(Tableau* t, const LpOptions& opt, int64_t* pivots,
                   const std::vector<bool>& allow_col) {
  const double eps = opt.eps;
  int64_t stall = 0;
  while (true) {
    if (*pivots >= opt.max_pivots) return IterResult::kPivotLimit;

    // Entering column: Dantzig (largest reduced cost); Bland after stalls.
    bool bland = stall > 2LL * (t->m + t->n);
    int enter = -1;
    double best = eps;
    for (int j = 0; j < t->n; ++j) {
      if (!allow_col[static_cast<size_t>(j)]) continue;
      double c = t->cost[static_cast<size_t>(j)];
      if (c > eps) {
        if (bland) {
          enter = j;
          break;
        }
        if (c > best) {
          best = c;
          enter = j;
        }
      }
    }
    if (enter < 0) return IterResult::kOptimal;

    // Ratio test; ties broken by smallest basis index (lexicographic-lite).
    int leave = -1;
    double best_ratio = 0.0;
    for (int i = 0; i < t->m; ++i) {
      double aij = t->At(i, enter);
      if (aij > eps) {
        double ratio = t->rhs[static_cast<size_t>(i)] / aij;
        if (leave < 0 || ratio < best_ratio - eps ||
            (ratio < best_ratio + eps &&
             t->basis[static_cast<size_t>(i)] < t->basis[static_cast<size_t>(leave)])) {
          leave = i;
          best_ratio = ratio;
        }
      }
    }
    if (leave < 0) return IterResult::kUnbounded;

    stall = (best_ratio < eps) ? stall + 1 : 0;
    t->Pivot(leave, enter);
    ++*pivots;
  }
}

}  // namespace

Result<Solution> SolveLp(const Model& model, const LpOptions& options,
                         const std::vector<std::pair<double, double>>* bound_override) {
  PHOEBE_RETURN_NOT_OK(model.Validate());
  const size_t nv = model.num_variables();
  if (bound_override) PHOEBE_CHECK(bound_override->size() == nv);

  // Effective bounds, with lower bounds shifted to zero: x = x' + lo.
  std::vector<double> lo(nv), hi(nv);
  for (size_t v = 0; v < nv; ++v) {
    lo[v] = bound_override ? (*bound_override)[v].first : model.variables()[v].lo;
    hi[v] = bound_override ? (*bound_override)[v].second : model.variables()[v].hi;
    if (lo[v] > hi[v] + 1e-12) return Status::Infeasible("contradictory bounds");
  }

  // Count rows: model constraints + finite upper bounds.
  struct Row {
    LinearExpr expr;
    Sense sense;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(model.num_constraints() + nv);
  for (const Constraint& c : model.constraints()) {
    double shift = 0.0;
    for (const auto& [var, coeff] : c.expr.terms) shift += coeff * lo[static_cast<size_t>(var)];
    rows.push_back(Row{c.expr, c.sense, c.rhs - shift});
  }
  for (size_t v = 0; v < nv; ++v) {
    if (std::isfinite(hi[v])) {
      LinearExpr e;
      e.Add(static_cast<int>(v), 1.0);
      rows.push_back(Row{std::move(e), Sense::kLe, hi[v] - lo[v]});
    }
  }

  const int m = static_cast<int>(rows.size());
  const int ns = static_cast<int>(nv);

  // Normalize rhs >= 0 and count auxiliary columns.
  int n_slack = 0, n_art = 0;
  std::vector<int> slack_col(rows.size(), -1), art_col(rows.size(), -1);
  for (Row& r : rows) {
    if (r.rhs < 0.0) {
      for (auto& [var, coeff] : r.expr.terms) coeff = -coeff;
      r.rhs = -r.rhs;
      if (r.sense == Sense::kLe) r.sense = Sense::kGe;
      else if (r.sense == Sense::kGe) r.sense = Sense::kLe;
    }
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].sense != Sense::kEq) slack_col[i] = n_slack++;
    if (rows[i].sense != Sense::kLe) art_col[i] = n_art++;
  }

  Tableau t;
  t.m = m;
  t.n_structural = ns;
  t.first_artificial = ns + n_slack;
  t.n = ns + n_slack + n_art;
  t.a.assign(static_cast<size_t>(t.m) * t.n, 0.0);
  t.rhs.resize(static_cast<size_t>(m));
  t.cost.assign(static_cast<size_t>(t.n), 0.0);
  t.basis.assign(static_cast<size_t>(m), -1);

  for (int i = 0; i < m; ++i) {
    const Row& r = rows[static_cast<size_t>(i)];
    for (const auto& [var, coeff] : r.expr.terms) t.At(i, var) += coeff;
    t.rhs[static_cast<size_t>(i)] = r.rhs;
    if (slack_col[static_cast<size_t>(i)] >= 0) {
      int sc = ns + slack_col[static_cast<size_t>(i)];
      t.At(i, sc) = (r.sense == Sense::kLe) ? 1.0 : -1.0;  // slack or surplus
      if (r.sense == Sense::kLe) t.basis[static_cast<size_t>(i)] = sc;
    }
    if (art_col[static_cast<size_t>(i)] >= 0) {
      int ac = t.first_artificial + art_col[static_cast<size_t>(i)];
      t.At(i, ac) = 1.0;
      t.basis[static_cast<size_t>(i)] = ac;
    }
  }

  int64_t pivots = 0;
  std::vector<bool> allow_all(static_cast<size_t>(t.n), true);

  // ---- Phase 1: drive artificials to zero (maximize -sum artificials).
  if (n_art > 0) {
    for (int j = t.first_artificial; j < t.n; ++j) t.cost[static_cast<size_t>(j)] = -1.0;
    t.obj = 0.0;
    // Price out basic artificials so their reduced costs start at zero; the
    // running objective is -sum of basic artificial values.
    for (int i = 0; i < m; ++i) {
      int b = t.basis[static_cast<size_t>(i)];
      if (b >= t.first_artificial) {
        for (int j = 0; j < t.n; ++j) t.cost[static_cast<size_t>(j)] += t.At(i, j);
        t.obj -= t.rhs[static_cast<size_t>(i)];
      }
    }

    IterResult r = Iterate(&t, options, &pivots, allow_all);
    if (r == IterResult::kPivotLimit) {
      return Status::Internal("simplex pivot limit reached in phase 1");
    }
    // Phase-1 optimum should be 0 for a feasible model.
    if (t.obj < -1e-7) {
      return Status::Infeasible(
          StrFormat("phase-1 objective %g (artificials remain)", -t.obj));
    }
    // Pivot remaining basic artificials out (degenerate) or drop their rows.
    for (int i = 0; i < m; ++i) {
      if (t.basis[static_cast<size_t>(i)] < t.first_artificial) continue;
      int enter = -1;
      for (int j = 0; j < t.first_artificial; ++j) {
        if (std::abs(t.At(i, j)) > 1e-7) {
          enter = j;
          break;
        }
      }
      if (enter >= 0) {
        t.Pivot(i, enter);
        ++pivots;
      }
      // else: redundant row; the artificial stays basic at value ~0, and its
      // column can never re-enter, so it is harmless.
    }
  }

  // ---- Phase 2: original objective over structural columns.
  {
    std::fill(t.cost.begin(), t.cost.end(), 0.0);
    double sign = model.maximize() ? 1.0 : -1.0;
    double const_term = 0.0;
    for (const auto& [var, coeff] : model.objective().terms) {
      t.cost[static_cast<size_t>(var)] += sign * coeff;
      const_term += sign * coeff * lo[static_cast<size_t>(var)];
    }
    t.obj = const_term;
    // Price out the current basis.
    for (int i = 0; i < m; ++i) {
      int b = t.basis[static_cast<size_t>(i)];
      double cb = t.cost[static_cast<size_t>(b)];
      if (cb != 0.0) {
        for (int j = 0; j < t.n; ++j) t.cost[static_cast<size_t>(j)] -= cb * t.At(i, j);
        t.cost[static_cast<size_t>(b)] = 0.0;
        t.obj += cb * t.rhs[static_cast<size_t>(i)];
      }
    }
    std::vector<bool> allow(static_cast<size_t>(t.n), true);
    for (int j = t.first_artificial; j < t.n; ++j) allow[static_cast<size_t>(j)] = false;

    IterResult r = Iterate(&t, options, &pivots, allow);
    if (r == IterResult::kPivotLimit) {
      return Status::Internal("simplex pivot limit reached in phase 2");
    }
    if (r == IterResult::kUnbounded) return Status::Unbounded("LP is unbounded");

    Solution sol;
    sol.pivots = pivots;
    sol.values.assign(nv, 0.0);
    for (int i = 0; i < m; ++i) {
      int b = t.basis[static_cast<size_t>(i)];
      if (b < ns) sol.values[static_cast<size_t>(b)] = t.rhs[static_cast<size_t>(i)];
    }
    for (size_t v = 0; v < nv; ++v) sol.values[v] += lo[v];
    sol.objective = model.maximize() ? t.obj : -t.obj;
    return sol;
  }
}

}  // namespace phoebe::solver
