// Branch-and-bound solver for mixed 0/1-integer programs on top of the
// simplex LP engine. Depth-first search with best-LP-bound child ordering,
// most-fractional branching, and incumbent pruning.
#pragma once

#include "common/status.h"
#include "solver/model.h"
#include "solver/simplex.h"

namespace phoebe::solver {

/// \brief Node-selection strategy for the branch-and-bound search.
enum class NodeSelection {
  kDepthFirst,  ///< finds incumbents fast, low memory (default)
  kBestFirst,   ///< explores by best parent LP bound; fewer nodes on models
                ///< with tight relaxations, more memory
};

/// \brief Limits and tolerances for one MILP solve.
struct MilpOptions {
  int64_t max_nodes = 200000;
  double time_limit_seconds = 60.0;
  double int_tol = 1e-6;    ///< integrality tolerance
  double gap_tol = 1e-9;    ///< prune when bound <= incumbent + gap_tol
  NodeSelection node_selection = NodeSelection::kDepthFirst;
  LpOptions lp;
};

/// Solve `model` to optimality (within tolerances). Returns kInfeasible if no
/// integer-feasible point exists. If a limit stops the search with an
/// incumbent in hand, that incumbent is returned with `optimal == false`; if
/// no incumbent was found before the limit, Internal is returned.
Result<Solution> SolveMilp(const Model& model, const MilpOptions& options = {});

}  // namespace phoebe::solver
