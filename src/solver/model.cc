#include "solver/model.h"

#include <cmath>

#include "common/strings.h"

namespace phoebe::solver {

int Model::AddContinuous(double lo, double hi, std::string name) {
  variables_.push_back(Variable{std::move(name), lo, hi, false});
  return static_cast<int>(variables_.size()) - 1;
}

int Model::AddInteger(double lo, double hi, std::string name) {
  variables_.push_back(Variable{std::move(name), lo, hi, true});
  return static_cast<int>(variables_.size()) - 1;
}

int Model::AddBinary(std::string name) { return AddInteger(0.0, 1.0, std::move(name)); }

void Model::AddConstraint(LinearExpr expr, Sense sense, double rhs) {
  constraints_.push_back(Constraint{std::move(expr), sense, rhs});
}

void Model::SetObjective(LinearExpr expr, bool maximize) {
  objective_ = std::move(expr);
  maximize_ = maximize;
}

size_t Model::num_integer_variables() const {
  size_t n = 0;
  for (const Variable& v : variables_) n += v.integer ? 1 : 0;
  return n;
}

Status Model::Validate() const {
  auto check_expr = [this](const LinearExpr& e) -> Status {
    for (const auto& [var, coeff] : e.terms) {
      if (var < 0 || static_cast<size_t>(var) >= variables_.size()) {
        return Status::InvalidArgument(StrFormat("term references variable %d", var));
      }
      if (!std::isfinite(coeff)) {
        return Status::InvalidArgument("non-finite coefficient");
      }
    }
    return Status::OK();
  };
  for (size_t i = 0; i < variables_.size(); ++i) {
    const Variable& v = variables_[i];
    if (v.lo > v.hi) {
      return Status::InvalidArgument(StrFormat("variable %zu has lo > hi", i));
    }
    if (!std::isfinite(v.lo)) {
      return Status::InvalidArgument(
          StrFormat("variable %zu needs a finite lower bound", i));
    }
  }
  for (const Constraint& c : constraints_) {
    PHOEBE_RETURN_NOT_OK(check_expr(c.expr));
    if (!std::isfinite(c.rhs)) return Status::InvalidArgument("non-finite rhs");
  }
  return check_expr(objective_);
}

}  // namespace phoebe::solver
