// Workload repository: the telemetry store Phoebe trains from.
//
// Mirrors the role of the Cosmos workload repository in Figure 4 of the
// paper: per-stage execution records accumulate per day, and the "Historic
// Statistics" feature group of Table 1 (average exclusive time and output
// size per job template + stage type) is computed from days strictly before
// the day being predicted, so there is no train/test leakage.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "workload/job_instance.h"

namespace phoebe::telemetry {

/// \brief One flattened per-stage telemetry row (what the engine emits).
struct StageRecord {
  int64_t job_id = 0;
  int template_id = 0;
  int day = 0;
  int stage_id = 0;
  int stage_type = 0;
  std::string job_name;
  std::string norm_input_name;
  int num_tasks = 1;

  // Measured.
  double input_bytes = 0.0;
  double output_bytes = 0.0;
  double exec_seconds = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;
  double ttl = 0.0;
  double tfs = 0.0;

  // Compile-time estimates attached for later model training.
  workload::StageEstimates est;
};

/// Flatten a job instance into per-stage rows.
std::vector<StageRecord> Flatten(const workload::JobInstance& instance);

/// \brief Historic per-(template, stage-type) averages with fallbacks.
class HistoricStats {
 public:
  /// Aggregated statistics for one lookup.
  struct Entry {
    double avg_exclusive_time = 0.0;  ///< mean stage exec seconds
    double avg_output_bytes = 0.0;
    double avg_ttl = 0.0;
    int64_t support = 0;  ///< number of observations behind the averages
  };

  /// Fold one executed instance into the statistics.
  void Accumulate(const workload::JobInstance& instance);

  /// Lookup with fallback: (template, stage_type) -> stage_type -> global.
  /// `support` reports the observation count at the level that answered.
  Entry Get(int template_id, int stage_type) const;

  /// True if the exact (template, stage_type) combination has been seen.
  bool HasExact(int template_id, int stage_type) const;

  int64_t total_observations() const { return global_.n; }

  /// Serialize to a line-oriented text format; FromText round-trips it.
  std::string ToText() const;
  /// Primary Status-first parse entry point: on error `*out` is untouched
  /// and the Status names what was malformed (never a crash).
  static Status FromText(std::string_view text, HistoricStats* out);
  /// Deprecated shim; delegates to the two-argument overload.
  static Result<HistoricStats> FromText(const std::string& text);

 private:
  struct Acc {
    double sum_exec = 0.0;
    double sum_output = 0.0;
    double sum_ttl = 0.0;
    int64_t n = 0;
    Entry ToEntry() const;
  };

  std::map<std::pair<int, int>, Acc> by_template_type_;
  std::map<int, Acc> by_type_;
  Acc global_;
};

/// \brief Day-partitioned store of executed job instances.
class WorkloadRepository {
 public:
  /// Store the instances executed on `day`. A day can only be added once.
  Status AddDay(int day, std::vector<workload::JobInstance> instances);

  bool HasDay(int day) const { return days_.count(day) > 0; }
  const std::vector<workload::JobInstance>& Day(int day) const;
  std::vector<int> Days() const;

  size_t TotalJobs() const;
  size_t TotalStageRecords() const;

  /// Historic statistics over all stored days strictly before `day`.
  HistoricStats StatsBefore(int day) const;

  /// Drop every stored day strictly before `day`, returning how many days
  /// were evicted. Bounded retention for the continuous-operation loop: a
  /// repository that accumulates forever eventually swamps memory, so the
  /// lifecycle evicts days older than its deepest lookback window.
  /// StatsBefore and Train only see surviving days afterwards — callers must
  /// not evict days a later window still needs.
  size_t EvictDaysBefore(int day);

  /// Export all stored records as CSV (one row per stage).
  std::string ToCsv() const;

 private:
  std::map<int, std::vector<workload::JobInstance>> days_;
};

}  // namespace phoebe::telemetry
