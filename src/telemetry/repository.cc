#include "telemetry/repository.h"

#include "common/strings.h"

namespace phoebe::telemetry {

std::vector<StageRecord> Flatten(const workload::JobInstance& instance) {
  std::vector<StageRecord> out;
  out.reserve(instance.graph.num_stages());
  for (size_t i = 0; i < instance.graph.num_stages(); ++i) {
    const dag::Stage& s = instance.graph.stage(static_cast<dag::StageId>(i));
    const workload::StageTruth& t = instance.truth[i];
    StageRecord r;
    r.job_id = instance.job_id;
    r.template_id = instance.template_id;
    r.day = instance.day;
    r.stage_id = static_cast<int>(i);
    r.stage_type = s.stage_type;
    r.job_name = instance.job_name;
    r.norm_input_name = instance.norm_input_name;
    r.num_tasks = t.num_tasks;
    r.input_bytes = t.input_bytes;
    r.output_bytes = t.output_bytes;
    r.exec_seconds = t.exec_seconds;
    r.start_time = t.start_time;
    r.end_time = t.end_time;
    r.ttl = t.ttl;
    r.tfs = t.tfs;
    r.est = instance.est[i];
    out.push_back(std::move(r));
  }
  return out;
}

HistoricStats::Entry HistoricStats::Acc::ToEntry() const {
  Entry e;
  if (n > 0) {
    e.avg_exclusive_time = sum_exec / static_cast<double>(n);
    e.avg_output_bytes = sum_output / static_cast<double>(n);
    e.avg_ttl = sum_ttl / static_cast<double>(n);
    e.support = n;
  }
  return e;
}

void HistoricStats::Accumulate(const workload::JobInstance& instance) {
  for (size_t i = 0; i < instance.graph.num_stages(); ++i) {
    const dag::Stage& s = instance.graph.stage(static_cast<dag::StageId>(i));
    const workload::StageTruth& t = instance.truth[i];
    auto fold = [&](Acc* a) {
      a->sum_exec += t.exec_seconds;
      a->sum_output += t.output_bytes;
      a->sum_ttl += t.ttl;
      ++a->n;
    };
    fold(&by_template_type_[{instance.template_id, s.stage_type}]);
    fold(&by_type_[s.stage_type]);
    fold(&global_);
  }
}

HistoricStats::Entry HistoricStats::Get(int template_id, int stage_type) const {
  auto it = by_template_type_.find({template_id, stage_type});
  if (it != by_template_type_.end() && it->second.n > 0) return it->second.ToEntry();
  auto it2 = by_type_.find(stage_type);
  if (it2 != by_type_.end() && it2->second.n > 0) return it2->second.ToEntry();
  return global_.ToEntry();
}

bool HistoricStats::HasExact(int template_id, int stage_type) const {
  return by_template_type_.count({template_id, stage_type}) > 0;
}

std::string HistoricStats::ToText() const {
  // Only the exact (template, type) accumulators and the global accumulator
  // need to persist; the per-type fallbacks rebuild from the exact entries
  // only approximately, so they are stored too.
  std::string out = StrFormat("historic_stats %zu %zu\n", by_template_type_.size(),
                              by_type_.size());
  auto acc_line = [](const char* tag, const Acc& a) {
    return StrFormat("%s %.17g %.17g %.17g %lld\n", tag, a.sum_exec, a.sum_output,
                     a.sum_ttl, static_cast<long long>(a.n));
  };
  out += acc_line("global", global_);
  for (const auto& [key, acc] : by_template_type_) {
    out += StrFormat("tt %d %d ", key.first, key.second) + acc_line("", acc).substr(1);
  }
  for (const auto& [type, acc] : by_type_) {
    out += StrFormat("t %d ", type) + acc_line("", acc).substr(1);
  }
  return out;
}

Status HistoricStats::FromText(std::string_view text, HistoricStats* out) {
  PHOEBE_CHECK(out != nullptr);
  HistoricStats stats;
  std::vector<std::string> lines = Split(std::string(text), '\n');
  size_t i = 0;
  auto next = [&]() -> const std::string* {
    while (i < lines.size() && lines[i].empty()) ++i;
    return i < lines.size() ? &lines[i++] : nullptr;
  };
  const std::string* line = next();
  if (!line) return Status::InvalidArgument("empty historic stats");
  std::vector<std::string> hdr = Split(*line, ' ');
  if (hdr.size() != 3 || hdr[0] != "historic_stats") {
    return Status::InvalidArgument("bad historic_stats header");
  }
  size_t n_tt = static_cast<size_t>(std::atoll(hdr[1].c_str()));
  size_t n_t = static_cast<size_t>(std::atoll(hdr[2].c_str()));

  auto parse_acc = [](const std::vector<std::string>& tok, size_t base,
                      Acc* out) -> bool {
    if (tok.size() != base + 4) return false;
    out->sum_exec = std::atof(tok[base].c_str());
    out->sum_output = std::atof(tok[base + 1].c_str());
    out->sum_ttl = std::atof(tok[base + 2].c_str());
    out->n = std::atoll(tok[base + 3].c_str());
    return true;
  };

  line = next();
  if (!line) return Status::InvalidArgument("missing global accumulator");
  std::vector<std::string> tok = Split(*line, ' ');
  if (tok.empty() || tok[0] != "global" || !parse_acc(tok, 1, &stats.global_)) {
    return Status::InvalidArgument("bad global accumulator");
  }
  for (size_t k = 0; k < n_tt; ++k) {
    line = next();
    if (!line) return Status::InvalidArgument("truncated template-type entries");
    tok = Split(*line, ' ');
    Acc acc;
    if (tok.size() != 7 || tok[0] != "tt" || !parse_acc(tok, 3, &acc)) {
      return Status::InvalidArgument("bad template-type entry");
    }
    stats.by_template_type_[{std::atoi(tok[1].c_str()), std::atoi(tok[2].c_str())}] =
        acc;
  }
  for (size_t k = 0; k < n_t; ++k) {
    line = next();
    if (!line) return Status::InvalidArgument("truncated type entries");
    tok = Split(*line, ' ');
    Acc acc;
    if (tok.size() != 6 || tok[0] != "t" || !parse_acc(tok, 2, &acc)) {
      return Status::InvalidArgument("bad type entry");
    }
    stats.by_type_[std::atoi(tok[1].c_str())] = acc;
  }
  *out = std::move(stats);
  return Status::OK();
}

Result<HistoricStats> HistoricStats::FromText(const std::string& text) {
  HistoricStats stats;
  PHOEBE_RETURN_NOT_OK(FromText(std::string_view(text), &stats));
  return stats;
}

Status WorkloadRepository::AddDay(int day, std::vector<workload::JobInstance> instances) {
  if (days_.count(day)) {
    return Status::AlreadyExists(StrFormat("day %d already stored", day));
  }
  days_.emplace(day, std::move(instances));
  return Status::OK();
}

size_t WorkloadRepository::EvictDaysBefore(int day) {
  size_t evicted = 0;
  for (auto it = days_.begin(); it != days_.end() && it->first < day;) {
    it = days_.erase(it);
    ++evicted;
  }
  return evicted;
}

const std::vector<workload::JobInstance>& WorkloadRepository::Day(int day) const {
  auto it = days_.find(day);
  PHOEBE_CHECK_MSG(it != days_.end(), "day not in repository");
  return it->second;
}

std::vector<int> WorkloadRepository::Days() const {
  std::vector<int> out;
  out.reserve(days_.size());
  for (const auto& [day, _] : days_) out.push_back(day);
  return out;
}

size_t WorkloadRepository::TotalJobs() const {
  size_t n = 0;
  for (const auto& [_, jobs] : days_) n += jobs.size();
  return n;
}

size_t WorkloadRepository::TotalStageRecords() const {
  size_t n = 0;
  for (const auto& [_, jobs] : days_) {
    for (const auto& j : jobs) n += j.graph.num_stages();
  }
  return n;
}

HistoricStats WorkloadRepository::StatsBefore(int day) const {
  HistoricStats stats;
  for (const auto& [d, jobs] : days_) {
    if (d >= day) break;  // map is ordered
    for (const auto& j : jobs) stats.Accumulate(j);
  }
  return stats;
}

std::string WorkloadRepository::ToCsv() const {
  std::string out =
      "job_id,template_id,day,stage_id,stage_type,job_name,norm_input_name,"
      "num_tasks,input_bytes,output_bytes,exec_seconds,start_time,end_time,ttl,tfs,"
      "est_cost,est_exclusive_cost,est_input_cardinality,est_cardinality,"
      "est_output_bytes\n";
  for (const auto& [_, jobs] : days_) {
    for (const auto& j : jobs) {
      for (const StageRecord& r : Flatten(j)) {
        out += StrFormat(
            "%lld,%d,%d,%d,%d,%s,%s,%d,%.0f,%.0f,%.3f,%.3f,%.3f,%.3f,%.3f,"
            "%.3f,%.3f,%.0f,%.0f,%.0f\n",
            static_cast<long long>(r.job_id), r.template_id, r.day, r.stage_id,
            r.stage_type, r.job_name.c_str(), r.norm_input_name.c_str(), r.num_tasks,
            r.input_bytes, r.output_bytes, r.exec_seconds, r.start_time, r.end_time,
            r.ttl, r.tfs, r.est.est_cost, r.est.est_exclusive_cost,
            r.est.est_input_cardinality, r.est.est_cardinality, r.est.est_output_bytes);
      }
    }
  }
  return out;
}

}  // namespace phoebe::telemetry
