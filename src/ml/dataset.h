// Dense feature matrices and supervised datasets for the ML substrate.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace phoebe::ml {

/// \brief Row-major dense matrix of feature values with named columns.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  explicit FeatureMatrix(std::vector<std::string> feature_names)
      : names_(std::move(feature_names)) {}

  size_t num_rows() const { return names_.empty() ? 0 : data_.size() / names_.size(); }
  size_t num_features() const { return names_.size(); }
  const std::vector<std::string>& feature_names() const { return names_; }

  /// Append one row; must have exactly num_features() values.
  void AddRow(std::span<const double> row);

  /// Drop all rows but keep the column names and the underlying row storage —
  /// the reuse hook for per-worker featurization scratch (see core/engine.h
  /// DecideScratch): repeated JobMatrixInto fills stop allocating once the
  /// matrix has seen its widest job.
  void ClearRows() { data_.clear(); }

  std::span<const double> Row(size_t i) const;
  std::span<double> MutableRow(size_t i);
  double At(size_t row, size_t col) const { return data_[row * names_.size() + col]; }
  void Set(size_t row, size_t col, double v) { data_[row * names_.size() + col] = v; }

  /// Index of a named feature; -1 if absent.
  int FeatureIndex(const std::string& name) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> data_;
};

/// \brief Features plus regression target.
struct Dataset {
  FeatureMatrix x;
  std::vector<double> y;

  size_t size() const { return y.size(); }
  Status Validate() const;

  /// Deterministically shuffle and split into (train, test) with the given
  /// train fraction.
  std::pair<Dataset, Dataset> Split(double train_fraction, Rng* rng) const;

  /// Subset by row indices.
  Dataset Subset(const std::vector<size_t>& rows) const;
};

}  // namespace phoebe::ml
