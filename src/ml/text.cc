#include "ml/text.h"

#include <cmath>

#include "common/macros.h"
#include "common/strings.h"

namespace phoebe::ml {

uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

TextHasher::TextHasher(size_t dims, int min_n, int max_n)
    : dims_(dims), min_n_(min_n), max_n_(max_n) {
  PHOEBE_CHECK(dims_ > 0 && min_n_ >= 1 && max_n_ >= min_n_);
}

std::vector<double> TextHasher::Embed(const std::string& text) const {
  std::vector<double> out;
  out.reserve(dims_);
  EmbedInto(text, &out);
  return std::vector<double>(out.end() - static_cast<long>(dims_), out.end());
}

void TextHasher::EmbedInto(const std::string& text, std::vector<double>* out) const {
  size_t base = out->size();
  out->resize(base + dims_, 0.0);
  std::string s = ToLower(text);
  for (int n = min_n_; n <= max_n_; ++n) {
    if (s.size() < static_cast<size_t>(n)) break;
    for (size_t i = 0; i + static_cast<size_t>(n) <= s.size(); ++i) {
      uint64_t h = Fnv1a64(s.data() + i, static_cast<size_t>(n));
      // Signed hashing (sign from one hash bit) reduces bucket-collision bias.
      double sign = (h & 1) ? 1.0 : -1.0;
      (*out)[base + (h >> 1) % dims_] += sign;
    }
  }
  double norm = 0.0;
  for (size_t d = 0; d < dims_; ++d) norm += (*out)[base + d] * (*out)[base + d];
  if (norm > 0.0) {
    norm = std::sqrt(norm);
    for (size_t d = 0; d < dims_; ++d) (*out)[base + d] /= norm;
  }
}

}  // namespace phoebe::ml
