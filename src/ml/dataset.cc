#include "ml/dataset.h"

#include <algorithm>
#include <numeric>

#include "common/strings.h"

namespace phoebe::ml {

void FeatureMatrix::AddRow(std::span<const double> row) {
  PHOEBE_CHECK(row.size() == names_.size());
  data_.insert(data_.end(), row.begin(), row.end());
}

std::span<const double> FeatureMatrix::Row(size_t i) const {
  PHOEBE_CHECK(i < num_rows());
  return {data_.data() + i * names_.size(), names_.size()};
}

std::span<double> FeatureMatrix::MutableRow(size_t i) {
  PHOEBE_CHECK(i < num_rows());
  return {data_.data() + i * names_.size(), names_.size()};
}

int FeatureMatrix::FeatureIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status Dataset::Validate() const {
  if (x.num_rows() != y.size()) {
    return Status::InvalidArgument(StrFormat("feature rows (%zu) != targets (%zu)",
                                             x.num_rows(), y.size()));
  }
  if (x.num_features() == 0 && !y.empty()) {
    return Status::InvalidArgument("dataset has rows but no features");
  }
  return Status::OK();
}

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction, Rng* rng) const {
  PHOEBE_CHECK(train_fraction >= 0.0 && train_fraction <= 1.0);
  std::vector<size_t> idx(size());
  std::iota(idx.begin(), idx.end(), 0);
  rng->Shuffle(&idx);
  size_t n_train = static_cast<size_t>(train_fraction * static_cast<double>(size()));
  std::vector<size_t> train_idx(idx.begin(), idx.begin() + static_cast<long>(n_train));
  std::vector<size_t> test_idx(idx.begin() + static_cast<long>(n_train), idx.end());
  return {Subset(train_idx), Subset(test_idx)};
}

Dataset Dataset::Subset(const std::vector<size_t>& rows) const {
  Dataset out;
  out.x = FeatureMatrix(x.feature_names());
  out.y.reserve(rows.size());
  for (size_t r : rows) {
    out.x.AddRow(x.Row(r));
    out.y.push_back(y[r]);
  }
  return out;
}

}  // namespace phoebe::ml
