#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/strings.h"

namespace phoebe::ml {

Status GbdtParams::Validate() const {
  if (num_trees < 1) return Status::InvalidArgument("num_trees must be >= 1");
  if (num_leaves < 2) return Status::InvalidArgument("num_leaves must be >= 2");
  if (learning_rate <= 0.0) return Status::InvalidArgument("learning_rate must be > 0");
  if (max_bins < 2 || max_bins > 255)
    return Status::InvalidArgument("max_bins must be in [2, 255]");
  if (min_data_in_leaf < 1) return Status::InvalidArgument("min_data_in_leaf must be >= 1");
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (subsample <= 0.0 || subsample > 1.0)
    return Status::InvalidArgument("subsample must be in (0, 1]");
  if (feature_fraction <= 0.0 || feature_fraction > 1.0)
    return Status::InvalidArgument("feature_fraction must be in (0, 1]");
  if (early_stopping_rounds < 0)
    return Status::InvalidArgument("early_stopping_rounds must be >= 0");
  if (early_stopping_rounds > 0 &&
      (validation_fraction <= 0.0 || validation_fraction >= 1.0))
    return Status::InvalidArgument("validation_fraction must be in (0, 1)");
  if (objective == GbdtObjective::kQuantile &&
      (quantile_alpha <= 0.0 || quantile_alpha >= 1.0))
    return Status::InvalidArgument("quantile_alpha must be in (0, 1)");
  return Status::OK();
}

double Tree::Predict(std::span<const double> x) const {
  PHOEBE_CHECK(!nodes.empty());
  int idx = 0;
  while (!nodes[static_cast<size_t>(idx)].is_leaf()) {
    const TreeNode& n = nodes[static_cast<size_t>(idx)];
    idx = (x[static_cast<size_t>(n.feature)] <= n.threshold) ? n.left : n.right;
  }
  return nodes[static_cast<size_t>(idx)].value;
}

namespace {

/// Per-feature quantile binning: bin_edges[f][b] is the upper edge of bin b;
/// a value v maps to the first bin whose edge is >= v.
struct Binner {
  std::vector<std::vector<double>> edges;  // per feature, ascending

  uint8_t BinOf(size_t feature, double v) const {
    const auto& e = edges[feature];
    // upper_bound over edges: index of first edge > v is the bin past v's.
    size_t b = static_cast<size_t>(
        std::lower_bound(e.begin(), e.end(), v) - e.begin());
    return static_cast<uint8_t>(std::min(b, e.size()));
  }
};

Binner BuildBinner(const FeatureMatrix& x, int max_bins) {
  const size_t nf = x.num_features();
  const size_t nr = x.num_rows();
  Binner binner;
  binner.edges.resize(nf);
  std::vector<double> col(nr);
  for (size_t f = 0; f < nf; ++f) {
    for (size_t r = 0; r < nr; ++r) col[r] = x.At(r, f);
    std::sort(col.begin(), col.end());
    col.erase(std::unique(col.begin(), col.end()), col.end());
    auto& edges = binner.edges[f];
    if (col.size() <= static_cast<size_t>(max_bins)) {
      // One bin per distinct value; edges between consecutive values.
      for (size_t i = 0; i + 1 < col.size(); ++i)
        edges.push_back(0.5 * (col[i] + col[i + 1]));
    } else {
      // Quantile edges over distinct values.
      for (int b = 1; b < max_bins; ++b) {
        size_t idx = static_cast<size_t>(
            static_cast<double>(b) * static_cast<double>(col.size()) / max_bins);
        idx = std::min(idx, col.size() - 1);
        double edge = col[idx];
        if (edges.empty() || edge > edges.back()) edges.push_back(edge);
      }
    }
  }
  return binner;
}

struct LeafInfo {
  int node = -1;                 // index into tree.nodes
  std::vector<uint32_t> rows;    // training rows in this leaf
  double sum_g = 0.0;
  double best_gain = -1.0;
  int best_feature = -1;
  int best_bin = -1;             // split: bin index b => left has bins <= b
  double best_left_g = 0.0;
  int best_left_count = 0;
};

}  // namespace

GbdtRegressor::GbdtRegressor(GbdtParams params) : params_(params) {}

Status GbdtRegressor::Fit(const Dataset& data) {
  PHOEBE_RETURN_NOT_OK(params_.Validate());
  PHOEBE_RETURN_NOT_OK(data.Validate());
  if (data.size() == 0) return Status::InvalidArgument("empty training set");

  best_validation_mse_ = 0.0;
  if (params_.early_stopping_rounds > 0) {
    // Deterministic holdout split for early stopping.
    Rng rng(params_.seed ^ 0x9E5Fu);
    Dataset shuffled = data;
    {
      std::vector<size_t> idx(data.size());
      std::iota(idx.begin(), idx.end(), 0);
      rng.Shuffle(&idx);
      shuffled = data.Subset(idx);
    }
    size_t n_valid = std::max<size_t>(
        1, static_cast<size_t>(params_.validation_fraction *
                               static_cast<double>(data.size())));
    if (n_valid >= data.size()) {
      return Status::InvalidArgument("not enough rows for a validation split");
    }
    std::vector<size_t> train_rows, valid_rows;
    for (size_t r = 0; r < shuffled.size(); ++r) {
      (r < n_valid ? valid_rows : train_rows).push_back(r);
    }
    Dataset valid = shuffled.Subset(valid_rows);
    Dataset train = shuffled.Subset(train_rows);
    return FitCore(train, &valid);
  }
  return FitCore(data, nullptr);
}

Status GbdtRegressor::FitCore(const Dataset& data, const Dataset* valid) {
  const size_t nr = data.size();
  const size_t nf = data.x.num_features();
  num_features_ = nf;
  trees_.clear();
  gain_by_feature_.assign(nf, 0.0);

  // Base score: target mean (squared loss) or the target quantile.
  if (params_.objective == GbdtObjective::kQuantile) {
    std::vector<double> sorted = data.y;
    std::sort(sorted.begin(), sorted.end());
    size_t q = static_cast<size_t>(params_.quantile_alpha *
                                   static_cast<double>(sorted.size()));
    base_score_ = sorted[std::min(q, sorted.size() - 1)];
  } else {
    base_score_ = std::accumulate(data.y.begin(), data.y.end(), 0.0) /
                  static_cast<double>(nr);
  }

  Binner binner = BuildBinner(data.x, params_.max_bins);

  // Pre-bin the matrix, feature-major, for cache-friendly histogram builds.
  std::vector<std::vector<uint8_t>> binned(nf, std::vector<uint8_t>(nr));
  std::vector<int> bins_per_feature(nf);
  for (size_t f = 0; f < nf; ++f) {
    bins_per_feature[f] = static_cast<int>(binner.edges[f].size()) + 1;
    for (size_t r = 0; r < nr; ++r) binned[f][r] = binner.BinOf(f, data.x.At(r, f));
  }

  std::vector<double> pred(nr, base_score_);
  std::vector<double> grad(nr);  // squared loss: g = pred - y (h == 1)
  Rng rng(params_.seed);

  // Early-stopping state over the holdout set.
  std::vector<double> vpred;
  double best_mse = 0.0;
  size_t best_round = 0;
  int stall_rounds = 0;
  if (valid) vpred.assign(valid->size(), base_score_);

  auto leaf_value = [&](double sum_g, int count) {
    return -sum_g / (static_cast<double>(count) + params_.lambda) *
           params_.learning_rate;
  };

  auto split_gain = [&](double gl, int nl, double gr, int nrt, double g, int n) {
    auto score = [&](double gg, int cc) {
      return gg * gg / (static_cast<double>(cc) + params_.lambda);
    };
    return 0.5 * (score(gl, nl) + score(gr, nrt) - score(g, n));
  };

  // Scratch for the active feature subset of each tree.
  std::vector<size_t> all_features(nf);
  std::iota(all_features.begin(), all_features.end(), 0);

  // Loss gradients: squared loss g = pred - y; pinball loss at alpha has
  // g = (1 - alpha) when pred > y and g = -alpha otherwise.
  const bool quantile = params_.objective == GbdtObjective::kQuantile;
  const double alpha = params_.quantile_alpha;
  auto loss_grad = [&](double prediction, double target) {
    if (!quantile) return prediction - target;
    return prediction > target ? (1.0 - alpha) : -alpha;
  };
  auto point_loss = [&](double prediction, double target) {
    if (!quantile) {
      double e = prediction - target;
      return e * e;
    }
    double d = target - prediction;
    return d >= 0 ? alpha * d : (alpha - 1.0) * d;
  };

  for (int t = 0; t < params_.num_trees; ++t) {
    for (size_t r = 0; r < nr; ++r) grad[r] = loss_grad(pred[r], data.y[r]);

    // Row subsample.
    std::vector<uint32_t> root_rows;
    if (params_.subsample >= 1.0) {
      root_rows.resize(nr);
      std::iota(root_rows.begin(), root_rows.end(), 0u);
    } else {
      root_rows.reserve(static_cast<size_t>(params_.subsample * static_cast<double>(nr)) + 1);
      for (size_t r = 0; r < nr; ++r)
        if (rng.Bernoulli(params_.subsample)) root_rows.push_back(static_cast<uint32_t>(r));
      if (root_rows.empty()) root_rows.push_back(static_cast<uint32_t>(rng.UniformInt(
          0, static_cast<int64_t>(nr) - 1)));
    }

    // Feature subsample.
    std::vector<size_t> features = all_features;
    if (params_.feature_fraction < 1.0) {
      rng.Shuffle(&features);
      size_t keep = std::max<size_t>(
          1, static_cast<size_t>(params_.feature_fraction * static_cast<double>(nf)));
      features.resize(keep);
      std::sort(features.begin(), features.end());
    }

    Tree tree;
    tree.nodes.push_back(TreeNode{});  // root placeholder (leaf for now)

    auto find_best_split = [&](LeafInfo* leaf) {
      leaf->best_gain = -1.0;
      const int n = static_cast<int>(leaf->rows.size());
      if (n < 2 * params_.min_data_in_leaf) return;
      for (size_t f : features) {
        const int nb = bins_per_feature[f];
        if (nb < 2) continue;
        thread_local std::vector<double> hg;
        thread_local std::vector<int> hc;
        hg.assign(static_cast<size_t>(nb), 0.0);
        hc.assign(static_cast<size_t>(nb), 0);
        const uint8_t* fb = binned[f].data();
        for (uint32_t r : leaf->rows) {
          hg[fb[r]] += grad[r];
          ++hc[fb[r]];
        }
        double gl = 0.0;
        int nl = 0;
        for (int b = 0; b + 1 < nb; ++b) {
          gl += hg[static_cast<size_t>(b)];
          nl += hc[static_cast<size_t>(b)];
          int nrt = n - nl;
          if (nl < params_.min_data_in_leaf) continue;
          if (nrt < params_.min_data_in_leaf) break;
          double gain = split_gain(gl, nl, leaf->sum_g - gl, nrt, leaf->sum_g, n);
          if (gain > leaf->best_gain) {
            leaf->best_gain = gain;
            leaf->best_feature = static_cast<int>(f);
            leaf->best_bin = b;
            leaf->best_left_g = gl;
            leaf->best_left_count = nl;
          }
        }
      }
    };

    std::vector<LeafInfo> leaves;
    {
      LeafInfo root;
      root.node = 0;
      root.rows = std::move(root_rows);
      root.sum_g = 0.0;
      for (uint32_t r : root.rows) root.sum_g += grad[r];
      find_best_split(&root);
      leaves.push_back(std::move(root));
    }

    int n_leaves = 1;
    while (n_leaves < params_.num_leaves) {
      // Pick the leaf with the highest gain.
      int best = -1;
      for (size_t i = 0; i < leaves.size(); ++i) {
        if (leaves[i].best_gain > params_.min_gain &&
            (best < 0 || leaves[i].best_gain > leaves[static_cast<size_t>(best)].best_gain)) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;

      LeafInfo leaf = std::move(leaves[static_cast<size_t>(best)]);
      leaves.erase(leaves.begin() + best);

      gain_by_feature_[static_cast<size_t>(leaf.best_feature)] += leaf.best_gain;

      // Materialize the split.
      const size_t f = static_cast<size_t>(leaf.best_feature);
      const auto& edges = binner.edges[f];
      double threshold = edges[static_cast<size_t>(leaf.best_bin)];

      LeafInfo left, right;
      left.rows.reserve(static_cast<size_t>(leaf.best_left_count));
      right.rows.reserve(leaf.rows.size() - static_cast<size_t>(leaf.best_left_count));
      for (uint32_t r : leaf.rows) {
        if (binned[f][r] <= leaf.best_bin) left.rows.push_back(r);
        else right.rows.push_back(r);
      }
      left.sum_g = leaf.best_left_g;
      right.sum_g = leaf.sum_g - leaf.best_left_g;

      TreeNode& parent = tree.nodes[static_cast<size_t>(leaf.node)];
      parent.feature = leaf.best_feature;
      parent.threshold = threshold;
      parent.left = static_cast<int>(tree.nodes.size());
      parent.right = parent.left + 1;
      left.node = parent.left;
      right.node = parent.right;
      tree.nodes.push_back(TreeNode{});
      tree.nodes.push_back(TreeNode{});

      find_best_split(&left);
      find_best_split(&right);
      leaves.push_back(std::move(left));
      leaves.push_back(std::move(right));
      ++n_leaves;
    }

    // Finalize leaf values and update predictions.
    for (const LeafInfo& leaf : leaves) {
      double v = leaf_value(leaf.sum_g, static_cast<int>(leaf.rows.size()));
      tree.nodes[static_cast<size_t>(leaf.node)].value = v;
      for (uint32_t r : leaf.rows) pred[r] += v;
    }
    // Rows not in the subsample still need their predictions refreshed for
    // the next round's gradients.
    if (params_.subsample < 1.0) {
      std::vector<bool> covered(nr, false);
      for (const LeafInfo& leaf : leaves)
        for (uint32_t r : leaf.rows) covered[r] = true;
      for (size_t r = 0; r < nr; ++r)
        if (!covered[r]) pred[r] += tree.Predict(data.x.Row(r));
    }
    trees_.push_back(std::move(tree));

    if (valid) {
      double mse = 0.0;
      for (size_t r = 0; r < valid->size(); ++r) {
        vpred[r] += trees_.back().Predict(valid->x.Row(r));
        mse += point_loss(vpred[r], valid->y[r]);
      }
      mse /= static_cast<double>(valid->size());
      if (trees_.size() == 1 || mse < best_mse - 1e-12) {
        best_mse = mse;
        best_round = trees_.size();
        stall_rounds = 0;
      } else if (++stall_rounds >= params_.early_stopping_rounds) {
        break;
      }
    }
  }

  if (valid) {
    trees_.resize(best_round);  // keep the best round only
    best_validation_mse_ = best_mse;
  }
  RebuildFlatForest();
  fitted_ = true;
  return Status::OK();
}

void GbdtRegressor::RebuildFlatForest() {
  flat_ = FlatForest{};
  size_t total = 0;
  for (const Tree& t : trees_) total += t.nodes.size();
  flat_.feature.reserve(total);
  flat_.threshold.reserve(total);
  flat_.left.reserve(total);
  flat_.right.reserve(total);
  flat_.value.reserve(total);
  flat_.root.reserve(trees_.size());
  for (const Tree& t : trees_) {
    const int32_t base = static_cast<int32_t>(flat_.feature.size());
    flat_.root.push_back(base);
    for (const TreeNode& n : t.nodes) {
      flat_.feature.push_back(n.feature);
      flat_.threshold.push_back(n.threshold);
      flat_.left.push_back(n.is_leaf() ? -1 : base + n.left);
      flat_.right.push_back(n.is_leaf() ? -1 : base + n.right);
      flat_.value.push_back(n.value);
    }
  }
}

std::vector<double> GbdtRegressor::PredictBatch(const FeatureMatrix& x) const {
  PHOEBE_CHECK_MSG(fitted_, "PredictBatch called before Fit");
  const size_t nr = x.num_rows();
  std::vector<double> out(nr, base_score_);
  if (nr == 0) return out;
  PHOEBE_CHECK(x.num_features() == num_features_);

  const int32_t* feat = flat_.feature.data();
  const double* thresh = flat_.threshold.data();
  const int32_t* left = flat_.left.data();
  const int32_t* right = flat_.right.data();
  const double* value = flat_.value.data();

  constexpr size_t kRowBlock = 64;
  const double* rows[kRowBlock];
  for (size_t b0 = 0; b0 < nr; b0 += kRowBlock) {
    const size_t bn = std::min(kRowBlock, nr - b0);
    for (size_t k = 0; k < bn; ++k) rows[k] = x.Row(b0 + k).data();
    for (int32_t r0 : flat_.root) {
      for (size_t k = 0; k < bn; ++k) {
        int32_t idx = r0;
        int32_t f;
        while ((f = feat[idx]) >= 0) {
          idx = rows[k][f] <= thresh[idx] ? left[idx] : right[idx];
        }
        out[b0 + k] += value[idx];
      }
    }
  }
  return out;
}

void GbdtRegressor::PredictRowsInto(const FeatureMatrix& x, std::span<const size_t> rows,
                                    std::vector<double>* out) const {
  PHOEBE_CHECK_MSG(fitted_, "PredictRowsInto called before Fit");
  const size_t nr = rows.size();
  out->assign(nr, base_score_);
  if (nr == 0) return;
  PHOEBE_CHECK(x.num_features() == num_features_);

  const int32_t* feat = flat_.feature.data();
  const double* thresh = flat_.threshold.data();
  const int32_t* left = flat_.left.data();
  const int32_t* right = flat_.right.data();
  const double* value = flat_.value.data();

  constexpr size_t kRowBlock = 64;
  const double* row_ptr[kRowBlock];
  for (size_t b0 = 0; b0 < nr; b0 += kRowBlock) {
    const size_t bn = std::min(kRowBlock, nr - b0);
    for (size_t k = 0; k < bn; ++k) row_ptr[k] = x.Row(rows[b0 + k]).data();
    for (int32_t r0 : flat_.root) {
      for (size_t k = 0; k < bn; ++k) {
        int32_t idx = r0;
        int32_t f;
        while ((f = feat[idx]) >= 0) {
          idx = row_ptr[k][f] <= thresh[idx] ? left[idx] : right[idx];
        }
        (*out)[b0 + k] += value[idx];
      }
    }
  }
}

double GbdtRegressor::Predict(std::span<const double> features) const {
  PHOEBE_CHECK_MSG(fitted_, "Predict called before Fit");
  PHOEBE_CHECK(features.size() == num_features_);
  double out = base_score_;
  for (const Tree& t : trees_) out += t.Predict(features);
  return out;
}

std::vector<double> GbdtRegressor::FeatureImportanceGain() const {
  double total = std::accumulate(gain_by_feature_.begin(), gain_by_feature_.end(), 0.0);
  std::vector<double> out = gain_by_feature_;
  if (total > 0.0) {
    for (double& v : out) v /= total;
  }
  return out;
}

std::string GbdtRegressor::ToText() const {
  PHOEBE_CHECK_MSG(fitted_, "ToText called before Fit");
  std::string out = StrFormat("gbdt %zu %zu %.17g\n", num_features_, trees_.size(),
                              base_score_);
  for (const Tree& t : trees_) {
    out += StrFormat("tree %zu\n", t.nodes.size());
    for (const TreeNode& n : t.nodes) {
      out += StrFormat("node %d %.17g %d %d %.17g\n", n.feature, n.threshold, n.left,
                       n.right, n.value);
    }
  }
  return out;
}

Status GbdtRegressor::FromText(std::string_view text, GbdtRegressor* out) {
  PHOEBE_CHECK(out != nullptr);
  GbdtRegressor model;
  std::vector<std::string> lines = Split(std::string(text), '\n');
  size_t i = 0;
  auto next = [&]() -> const std::string* {
    while (i < lines.size() && lines[i].empty()) ++i;
    return i < lines.size() ? &lines[i++] : nullptr;
  };

  const std::string* line = next();
  if (!line) return Status::InvalidArgument("empty model text");
  {
    std::vector<std::string> tok = Split(*line, ' ');
    if (tok.size() != 4 || tok[0] != "gbdt")
      return Status::InvalidArgument("bad gbdt header");
    model.num_features_ = static_cast<size_t>(std::atoll(tok[1].c_str()));
    size_t n_trees = static_cast<size_t>(std::atoll(tok[2].c_str()));
    model.base_score_ = std::atof(tok[3].c_str());
    model.trees_.reserve(n_trees);
    for (size_t t = 0; t < n_trees; ++t) {
      line = next();
      if (!line) return Status::InvalidArgument("truncated model: missing tree");
      std::vector<std::string> th = Split(*line, ' ');
      if (th.size() != 2 || th[0] != "tree")
        return Status::InvalidArgument("bad tree header");
      size_t n_nodes = static_cast<size_t>(std::atoll(th[1].c_str()));
      Tree tree;
      tree.nodes.reserve(n_nodes);
      for (size_t k = 0; k < n_nodes; ++k) {
        line = next();
        if (!line) return Status::InvalidArgument("truncated model: missing node");
        std::vector<std::string> tn = Split(*line, ' ');
        if (tn.size() != 6 || tn[0] != "node")
          return Status::InvalidArgument("bad node line");
        TreeNode n;
        n.feature = std::atoi(tn[1].c_str());
        n.threshold = std::atof(tn[2].c_str());
        n.left = std::atoi(tn[3].c_str());
        n.right = std::atoi(tn[4].c_str());
        n.value = std::atof(tn[5].c_str());
        tree.nodes.push_back(n);
      }
      model.trees_.push_back(std::move(tree));
    }
  }
  model.gain_by_feature_.assign(model.num_features_, 0.0);
  model.RebuildFlatForest();
  model.fitted_ = true;
  *out = std::move(model);
  return Status::OK();
}

Result<GbdtRegressor> GbdtRegressor::FromText(const std::string& text) {
  GbdtRegressor model;
  PHOEBE_RETURN_NOT_OK(FromText(std::string_view(text), &model));
  return model;
}

}  // namespace phoebe::ml
