// Model selection utilities: k-fold cross-validation and grid search over
// GBDT hyperparameters. Used to pick the stage-cost model configuration the
// way the paper's Azure ML experiments did, but offline and in-process.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "ml/gbdt.h"

namespace phoebe::ml {

/// \brief Result of one cross-validation run.
struct CvResult {
  double mean_r2 = 0.0;
  double stddev_r2 = 0.0;
  std::vector<double> fold_r2;  ///< one entry per fold
};

/// K-fold cross-validation of an arbitrary regressor factory: for each fold,
/// a fresh model is built, trained on the other folds, and scored (R^2, in
/// target space) on the held-out fold. Folds are split deterministically
/// from `seed`.
Result<CvResult> CrossValidate(
    const std::function<std::unique_ptr<Regressor>()>& make_model,
    const Dataset& data, int folds = 5, uint64_t seed = 99);

/// \brief One evaluated grid-search candidate.
struct GridSearchEntry {
  GbdtParams params;
  CvResult cv;
};

/// Exhaustive grid search over GBDT hyperparameters, ranked by mean CV R^2
/// (best first). Empty axes keep the base value.
struct GbdtGrid {
  std::vector<int> num_trees;
  std::vector<int> num_leaves;
  std::vector<double> learning_rate;
  std::vector<int> min_data_in_leaf;
};

Result<std::vector<GridSearchEntry>> GridSearch(const GbdtParams& base,
                                                const GbdtGrid& grid,
                                                const Dataset& data, int folds = 3,
                                                uint64_t seed = 99);

}  // namespace phoebe::ml
