// Common interface for all regressors in the ML substrate.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

namespace phoebe::ml {

/// \brief Abstract regression model: fit on a Dataset, predict per row.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Train on `data`. Implementations must be deterministic given their seed.
  virtual Status Fit(const Dataset& data) = 0;

  /// Predict one row (length must equal the training feature count).
  virtual double Predict(std::span<const double> features) const = 0;

  /// Predict all rows of a matrix. The base implementation is the scalar row
  /// loop; learners with a vectorizable forward pass (GBDT, MLP) override it
  /// with a blocked traversal. Every override must be *bit-equal* to the row
  /// loop — same model, same row, same double — so callers may switch between
  /// the paths freely (prop_batch_inference_test pins this contract).
  virtual std::vector<double> PredictBatch(const FeatureMatrix& x) const;

  /// Predict an explicit row subset into a caller-owned buffer: `out` is
  /// resized to `rows.size()` and `(*out)[k]` equals `Predict(x.Row(rows[k]))`
  /// bit for bit. This is the zero-steady-state-allocation serving entry
  /// point: overrides may only touch caller-owned or per-thread buffers, so a
  /// warm caller reusing `out` triggers no heap traffic. The base
  /// implementation is the scalar row loop; blocked overrides (GBDT, MLP) are
  /// held to the same bit-equality contract as PredictBatch.
  virtual void PredictRowsInto(const FeatureMatrix& x, std::span<const size_t> rows,
                               std::vector<double>* out) const;

  /// True once Fit succeeded.
  virtual bool fitted() const = 0;
};

}  // namespace phoebe::ml
