// Common interface for all regressors in the ML substrate.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

namespace phoebe::ml {

/// \brief Abstract regression model: fit on a Dataset, predict per row.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Train on `data`. Implementations must be deterministic given their seed.
  virtual Status Fit(const Dataset& data) = 0;

  /// Predict one row (length must equal the training feature count).
  virtual double Predict(std::span<const double> features) const = 0;

  /// Predict all rows of a matrix.
  std::vector<double> PredictBatch(const FeatureMatrix& x) const;

  /// True once Fit succeeded.
  virtual bool fitted() const = 0;
};

}  // namespace phoebe::ml
