// Permutation Feature Importance (PFI): the drop in R^2 when one feature
// column is shuffled, as used in Section 6.1 of the paper to rank the cost
// model inputs.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/model.h"

namespace phoebe::ml {

/// \brief Importance of one feature.
struct FeatureImportance {
  std::string name;
  double delta_r2 = 0.0;  ///< baseline R^2 minus shuffled R^2
};

/// Compute PFI of `model` on `data`. Each feature column is shuffled
/// `repeats` times (results averaged); output is sorted by descending
/// importance. The model must already be fitted.
std::vector<FeatureImportance> PermutationImportance(const Regressor& model,
                                                     const Dataset& data, Rng* rng,
                                                     int repeats = 3);

}  // namespace phoebe::ml
