#include "ml/model.h"

namespace phoebe::ml {

std::vector<double> Regressor::PredictBatch(const FeatureMatrix& x) const {
  std::vector<double> out;
  out.reserve(x.num_rows());
  for (size_t i = 0; i < x.num_rows(); ++i) out.push_back(Predict(x.Row(i)));
  return out;
}

}  // namespace phoebe::ml
