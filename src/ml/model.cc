#include "ml/model.h"

namespace phoebe::ml {

std::vector<double> Regressor::PredictBatch(const FeatureMatrix& x) const {
  std::vector<double> out;
  out.reserve(x.num_rows());
  for (size_t i = 0; i < x.num_rows(); ++i) out.push_back(Predict(x.Row(i)));
  return out;
}

void Regressor::PredictRowsInto(const FeatureMatrix& x, std::span<const size_t> rows,
                                std::vector<double>* out) const {
  out->resize(rows.size());
  for (size_t k = 0; k < rows.size(); ++k) (*out)[k] = Predict(x.Row(rows[k]));
}

}  // namespace phoebe::ml
