// Gradient-boosted regression trees with histogram-based split finding and
// leaf-wise (best-first) growth — the LightGBM-style learner the paper uses
// for its stage-level cost models, reimplemented from scratch.
//
// Training:
//  * Features are quantile-binned into at most `max_bins` bins once up front.
//  * Each boosting round fits one tree to the negative gradient of squared
//    loss (residuals); trees grow leaf-wise, always splitting the leaf with
//    the highest gain until `num_leaves` is reached.
//  * Split gain uses the standard second-order formula with L2 regularization
//    lambda: gain = GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l).
//  * Optional row subsampling and feature fraction per tree (stochastic GBM).
//
// Prediction walks raw (un-binned) feature values against real-valued
// thresholds recovered from bin boundaries, so models serialize independently
// of the training binning.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "ml/model.h"

namespace phoebe::ml {

/// \brief Training objective.
enum class GbdtObjective {
  kSquared,   ///< mean squared error (default)
  kQuantile,  ///< pinball loss at `quantile_alpha` (e.g. 0.9 for a p90
              ///< conservative cost estimate)
};

/// \brief Hyperparameters for GbdtRegressor.
struct GbdtParams {
  int num_trees = 100;
  int num_leaves = 31;
  double learning_rate = 0.1;
  int max_bins = 64;
  int min_data_in_leaf = 20;
  double lambda = 1.0;          ///< L2 regularization on leaf values
  double min_gain = 1e-12;      ///< minimum gain to accept a split
  double subsample = 1.0;       ///< row fraction per tree
  double feature_fraction = 1.0;///< feature fraction per tree
  uint64_t seed = 42;

  /// Early stopping: when > 0, `validation_fraction` of the rows are held
  /// out; boosting stops once the held-out MSE has not improved for this
  /// many rounds, and the model is truncated to the best round.
  int early_stopping_rounds = 0;
  double validation_fraction = 0.15;

  GbdtObjective objective = GbdtObjective::kSquared;
  double quantile_alpha = 0.5;  ///< only used with kQuantile

  Status Validate() const;
};

/// \brief One node of a regression tree (internal or leaf).
struct TreeNode {
  int feature = -1;        ///< -1 for leaves
  double threshold = 0.0;  ///< go left if x[feature] <= threshold
  int left = -1;
  int right = -1;
  double value = 0.0;      ///< leaf output (learning rate already applied)
  bool is_leaf() const { return feature < 0; }
};

/// \brief A single regression tree as a flat node array (root at index 0).
struct Tree {
  std::vector<TreeNode> nodes;
  double Predict(std::span<const double> x) const;
};

/// \brief Gradient-boosted decision tree regressor.
class GbdtRegressor : public Regressor {
 public:
  explicit GbdtRegressor(GbdtParams params = {});

  Status Fit(const Dataset& data) override;
  double Predict(std::span<const double> features) const override;

  /// Batched forest traversal over the flattened SoA node arrays: tree-major
  /// within fixed row blocks, so one tree's nodes stay cache-hot while a
  /// whole block of rows walks it. Bit-equal to the scalar Predict (same
  /// thresholds, same per-row tree accumulation order).
  std::vector<double> PredictBatch(const FeatureMatrix& x) const override;

  /// Same blocked tree-major traversal over an explicit row subset, writing
  /// into a caller-owned buffer (no allocation once `out` is warm). Per-row
  /// accumulation order matches Predict exactly, so results stay bit-equal.
  void PredictRowsInto(const FeatureMatrix& x, std::span<const size_t> rows,
                       std::vector<double>* out) const override;

  bool fitted() const override { return fitted_; }

  const GbdtParams& params() const { return params_; }
  size_t num_trees() const { return trees_.size(); }
  double base_score() const { return base_score_; }
  /// Held-out MSE at the kept round (0 when early stopping is off).
  double best_validation_mse() const { return best_validation_mse_; }

  /// Total split gain accumulated per feature during training (normalized to
  /// sum to 1). Empty before Fit.
  std::vector<double> FeatureImportanceGain() const;

  /// Serialize to a line-oriented text format; FromText round-trips it.
  std::string ToText() const;
  /// Primary Status-first parse entry point: on error `*out` is untouched
  /// and the Status names what was malformed (never a crash).
  static Status FromText(std::string_view text, GbdtRegressor* out);
  /// Deprecated shim; delegates to the two-argument overload.
  static Result<GbdtRegressor> FromText(const std::string& text);

 private:
  Status FitCore(const Dataset& train, const Dataset* valid);

  /// Serving layout for PredictBatch: all trees' nodes concatenated into
  /// contiguous structure-of-arrays columns (child indices already offset
  /// into the concatenated arrays), replacing the per-tree vector-of-structs
  /// pointer chase. Rebuilt from `trees_` after Fit and FromText; never
  /// serialized.
  struct FlatForest {
    std::vector<int32_t> feature;    ///< split feature; -1 marks a leaf
    std::vector<double> threshold;   ///< go left if x[feature] <= threshold
    std::vector<int32_t> left;
    std::vector<int32_t> right;
    std::vector<double> value;       ///< leaf output
    std::vector<int32_t> root;       ///< root node index of each tree
  };
  void RebuildFlatForest();

  GbdtParams params_;
  double base_score_ = 0.0;
  double best_validation_mse_ = 0.0;
  std::vector<Tree> trees_;
  FlatForest flat_;
  std::vector<double> gain_by_feature_;
  size_t num_features_ = 0;
  bool fitted_ = false;
};

}  // namespace phoebe::ml
