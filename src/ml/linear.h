// Ridge-regularized linear regression (normal equations + Cholesky).
// Serves as the simple baseline learner the paper compares LightGBM against.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ml/model.h"

namespace phoebe::ml {

/// \brief Hyperparameters for RidgeRegressor.
struct RidgeParams {
  double lambda = 1.0;       ///< L2 penalty (not applied to the intercept)
  bool standardize = true;   ///< z-score features before solving
};

/// \brief Linear least-squares with L2 regularization.
class RidgeRegressor : public Regressor {
 public:
  explicit RidgeRegressor(RidgeParams params = {});

  Status Fit(const Dataset& data) override;
  double Predict(std::span<const double> features) const override;
  /// Row-subset scoring without the per-row virtual dispatch of the base
  /// implementation; same dot product, bit-equal to Predict.
  void PredictRowsInto(const FeatureMatrix& x, std::span<const size_t> rows,
                       std::vector<double>* out) const override;
  bool fitted() const override { return fitted_; }

  /// Learned weights in original (un-standardized) feature space.
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

  /// Serialize to a line-oriented text format; FromText round-trips it.
  std::string ToText() const;
  /// Primary Status-first parse entry point: on error `*out` is untouched
  /// and the Status names what was malformed (never a crash).
  static Status FromText(std::string_view text, RidgeRegressor* out);
  /// Deprecated shim; delegates to the two-argument overload.
  static Result<RidgeRegressor> FromText(const std::string& text);

 private:
  RidgeParams params_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

/// Solve A x = b for symmetric positive-definite A (dense, row-major n x n)
/// via Cholesky decomposition. Fails if A is not positive definite.
Result<std::vector<double>> SolveCholesky(std::vector<double> a,
                                          std::vector<double> b, size_t n);

}  // namespace phoebe::ml
