// Text featurization for job names and normalized input paths.
//
// The paper trains a word embedding + DNN over "Norm Job Name" / "Norm Input
// Name". We reproduce the role of that component with a character n-gram
// hashing embedder: each n-gram is FNV-hashed into a fixed number of buckets,
// giving a dense fixed-width vector that any regressor can consume. This
// preserves the property the paper relies on — lexically similar paths (e.g.
// anything containing "log", or ending in ".ss") map to nearby vectors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phoebe::ml {

/// \brief Character n-gram hashing featurizer.
class TextHasher {
 public:
  /// \param dims output vector width (number of hash buckets)
  /// \param min_n,max_n n-gram sizes to extract (inclusive)
  TextHasher(size_t dims = 16, int min_n = 3, int max_n = 4);

  /// Embed a string into `dims` buckets; counts are L2-normalized so that
  /// string length does not dominate.
  std::vector<double> Embed(const std::string& text) const;

  /// Append the embedding of `text` to `out`.
  void EmbedInto(const std::string& text, std::vector<double>* out) const;

  size_t dims() const { return dims_; }

 private:
  size_t dims_;
  int min_n_, max_n_;
};

/// 64-bit FNV-1a hash. The seeded overload continues a hash in progress:
/// `Fnv1a64(b, nb, Fnv1a64(a, na))` equals hashing the concatenated bytes,
/// so callers can stream fields without materialising a buffer.
inline constexpr uint64_t kFnv1a64Basis = 0xcbf29ce484222325ULL;
uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed = kFnv1a64Basis);

}  // namespace phoebe::ml
