#include "ml/importance.h"

#include <algorithm>

#include "common/stats.h"

namespace phoebe::ml {

std::vector<FeatureImportance> PermutationImportance(const Regressor& model,
                                                     const Dataset& data, Rng* rng,
                                                     int repeats) {
  PHOEBE_CHECK(model.fitted());
  PHOEBE_CHECK(repeats >= 1);
  const size_t nr = data.size();
  const size_t nf = data.x.num_features();

  std::vector<double> base_pred = model.PredictBatch(data.x);
  double base_r2 = RSquared(data.y, base_pred);

  std::vector<FeatureImportance> out;
  out.reserve(nf);

  // Work on a mutable copy of the matrix, one column at a time.
  FeatureMatrix shuffled = data.x;
  std::vector<double> col(nr), perm(nr), pred(nr);

  for (size_t f = 0; f < nf; ++f) {
    for (size_t r = 0; r < nr; ++r) col[r] = data.x.At(r, f);
    double delta_sum = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      perm = col;
      rng->Shuffle(&perm);
      for (size_t r = 0; r < nr; ++r) shuffled.Set(r, f, perm[r]);
      pred = model.PredictBatch(shuffled);
      delta_sum += base_r2 - RSquared(data.y, pred);
    }
    // Restore the column.
    for (size_t r = 0; r < nr; ++r) shuffled.Set(r, f, col[r]);
    out.push_back(FeatureImportance{data.x.feature_names()[f],
                                    delta_sum / static_cast<double>(repeats)});
  }

  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.delta_r2 > b.delta_r2;
  });
  return out;
}

}  // namespace phoebe::ml
