#include "ml/linear.h"

#include <cmath>

#include "common/strings.h"

namespace phoebe::ml {

Result<std::vector<double>> SolveCholesky(std::vector<double> a, std::vector<double> b,
                                          size_t n) {
  PHOEBE_CHECK(a.size() == n * n && b.size() == n);
  // In-place lower-triangular factorization A = L L^T.
  for (size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (d <= 0.0) {
      return Status::FailedPrecondition(
          StrFormat("matrix not positive definite at pivot %zu (d=%g)", j, d));
    }
    a[j * n + j] = std::sqrt(d);
    for (size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / a[j * n + j];
    }
  }
  // Forward substitution L y = b.
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= a[i * n + k] * b[k];
    b[i] = s / a[i * n + i];
  }
  // Back substitution L^T x = y.
  for (size_t i = n; i-- > 0;) {
    double s = b[i];
    for (size_t k = i + 1; k < n; ++k) s -= a[k * n + i] * b[k];
    b[i] = s / a[i * n + i];
  }
  return b;
}

RidgeRegressor::RidgeRegressor(RidgeParams params) : params_(params) {}

Status RidgeRegressor::Fit(const Dataset& data) {
  PHOEBE_RETURN_NOT_OK(data.Validate());
  if (data.size() == 0) return Status::InvalidArgument("empty training set");
  if (params_.lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");

  const size_t nr = data.size();
  const size_t nf = data.x.num_features();

  // Column means/stds for centering (ridge with unpenalized intercept).
  std::vector<double> mean(nf, 0.0), stddev(nf, 1.0);
  for (size_t r = 0; r < nr; ++r) {
    auto row = data.x.Row(r);
    for (size_t f = 0; f < nf; ++f) mean[f] += row[f];
  }
  for (double& m : mean) m /= static_cast<double>(nr);
  if (params_.standardize) {
    std::vector<double> var(nf, 0.0);
    for (size_t r = 0; r < nr; ++r) {
      auto row = data.x.Row(r);
      for (size_t f = 0; f < nf; ++f) {
        double d = row[f] - mean[f];
        var[f] += d * d;
      }
    }
    for (size_t f = 0; f < nf; ++f) {
      stddev[f] = std::sqrt(var[f] / static_cast<double>(nr));
      if (stddev[f] < 1e-12) stddev[f] = 1.0;  // constant column contributes 0
    }
  }

  double y_mean = 0.0;
  for (double y : data.y) y_mean += y;
  y_mean /= static_cast<double>(nr);

  // Normal equations on centered/standardized data: (X^T X + lambda I) w = X^T y.
  std::vector<double> xtx(nf * nf, 0.0), xty(nf, 0.0);
  std::vector<double> z(nf);
  for (size_t r = 0; r < nr; ++r) {
    auto row = data.x.Row(r);
    for (size_t f = 0; f < nf; ++f) z[f] = (row[f] - mean[f]) / stddev[f];
    double yc = data.y[r] - y_mean;
    for (size_t i = 0; i < nf; ++i) {
      xty[i] += z[i] * yc;
      for (size_t j = i; j < nf; ++j) xtx[i * nf + j] += z[i] * z[j];
    }
  }
  for (size_t i = 0; i < nf; ++i) {
    xtx[i * nf + i] += params_.lambda + 1e-9;  // jitter guards degenerate columns
    for (size_t j = i + 1; j < nf; ++j) xtx[j * nf + i] = xtx[i * nf + j];
  }

  PHOEBE_ASSIGN_OR_RETURN(std::vector<double> w, SolveCholesky(std::move(xtx),
                                                               std::move(xty), nf));

  // Fold standardization back into original-space weights.
  weights_.assign(nf, 0.0);
  intercept_ = y_mean;
  for (size_t f = 0; f < nf; ++f) {
    weights_[f] = w[f] / stddev[f];
    intercept_ -= weights_[f] * mean[f];
  }
  fitted_ = true;
  return Status::OK();
}

double RidgeRegressor::Predict(std::span<const double> features) const {
  PHOEBE_CHECK_MSG(fitted_, "Predict called before Fit");
  PHOEBE_CHECK(features.size() == weights_.size());
  double out = intercept_;
  for (size_t f = 0; f < weights_.size(); ++f) out += weights_[f] * features[f];
  return out;
}

void RidgeRegressor::PredictRowsInto(const FeatureMatrix& x, std::span<const size_t> rows,
                                     std::vector<double>* out) const {
  PHOEBE_CHECK_MSG(fitted_, "PredictRowsInto called before Fit");
  out->resize(rows.size());
  for (size_t k = 0; k < rows.size(); ++k) {
    auto row = x.Row(rows[k]);
    PHOEBE_CHECK(row.size() == weights_.size());
    double y = intercept_;
    for (size_t f = 0; f < weights_.size(); ++f) y += weights_[f] * row[f];
    (*out)[k] = y;
  }
}

std::string RidgeRegressor::ToText() const {
  PHOEBE_CHECK_MSG(fitted_, "ToText called before Fit");
  std::string out = StrFormat("ridge %zu %.17g\n", weights_.size(), intercept_);
  for (double w : weights_) out += StrFormat("w %.17g\n", w);
  return out;
}

Status RidgeRegressor::FromText(std::string_view text, RidgeRegressor* out) {
  PHOEBE_CHECK(out != nullptr);
  std::vector<std::string> lines = Split(std::string(text), '\n');
  size_t i = 0;
  while (i < lines.size() && lines[i].empty()) ++i;
  if (i >= lines.size()) return Status::InvalidArgument("empty ridge model");
  std::vector<std::string> hdr = Split(lines[i++], ' ');
  if (hdr.size() != 3 || hdr[0] != "ridge") {
    return Status::InvalidArgument("bad ridge header");
  }
  RidgeRegressor model;
  size_t n = static_cast<size_t>(std::atoll(hdr[1].c_str()));
  model.intercept_ = std::atof(hdr[2].c_str());
  model.weights_.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    while (i < lines.size() && lines[i].empty()) ++i;
    if (i >= lines.size()) return Status::InvalidArgument("truncated ridge model");
    std::vector<std::string> tok = Split(lines[i++], ' ');
    if (tok.size() != 2 || tok[0] != "w") {
      return Status::InvalidArgument("bad ridge weight line");
    }
    model.weights_.push_back(std::atof(tok[1].c_str()));
  }
  model.fitted_ = true;
  *out = std::move(model);
  return Status::OK();
}

Result<RidgeRegressor> RidgeRegressor::FromText(const std::string& text) {
  RidgeRegressor model;
  PHOEBE_RETURN_NOT_OK(FromText(std::string_view(text), &model));
  return model;
}

}  // namespace phoebe::ml
