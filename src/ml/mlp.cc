#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"

namespace phoebe::ml {

Status MlpParams::Validate() const {
  if (hidden.empty()) return Status::InvalidArgument("at least one hidden layer required");
  for (int h : hidden)
    if (h < 1) return Status::InvalidArgument("hidden widths must be >= 1");
  if (epochs < 1) return Status::InvalidArgument("epochs must be >= 1");
  if (batch_size < 1) return Status::InvalidArgument("batch_size must be >= 1");
  if (learning_rate <= 0.0) return Status::InvalidArgument("learning_rate must be > 0");
  if (weight_decay < 0.0) return Status::InvalidArgument("weight_decay must be >= 0");
  return Status::OK();
}

MlpRegressor::MlpRegressor(MlpParams params) : params_(std::move(params)) {}

double MlpRegressor::Forward(std::span<const double> x,
                             std::vector<std::vector<double>>* acts) const {
  // acts[l] holds the post-activation output of layer l (input is acts[0]).
  std::vector<double> cur(x.begin(), x.end());
  for (size_t f = 0; f < cur.size(); ++f) cur[f] = (cur[f] - x_mean_[f]) / x_std_[f];
  if (acts) acts->push_back(cur);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(static_cast<size_t>(layer.out));
    for (int o = 0; o < layer.out; ++o) {
      double s = layer.b[static_cast<size_t>(o)];
      const double* wrow = layer.w.data() + static_cast<size_t>(o) * static_cast<size_t>(layer.in);
      for (int i = 0; i < layer.in; ++i) s += wrow[i] * cur[static_cast<size_t>(i)];
      // ReLU on hidden layers, identity on the output layer.
      next[static_cast<size_t>(o)] =
          (l + 1 < layers_.size()) ? std::max(0.0, s) : s;
    }
    cur = std::move(next);
    if (acts) acts->push_back(cur);
  }
  return cur[0] * y_std_ + y_mean_;
}

Status MlpRegressor::Fit(const Dataset& data) {
  PHOEBE_RETURN_NOT_OK(params_.Validate());
  PHOEBE_RETURN_NOT_OK(data.Validate());
  if (data.size() == 0) return Status::InvalidArgument("empty training set");

  const size_t nr = data.size();
  const size_t nf = data.x.num_features();
  Rng rng(params_.seed);

  // Standardization statistics.
  x_mean_.assign(nf, 0.0);
  x_std_.assign(nf, 1.0);
  if (params_.standardize) {
    for (size_t r = 0; r < nr; ++r) {
      auto row = data.x.Row(r);
      for (size_t f = 0; f < nf; ++f) x_mean_[f] += row[f];
    }
    for (double& m : x_mean_) m /= static_cast<double>(nr);
    std::vector<double> var(nf, 0.0);
    for (size_t r = 0; r < nr; ++r) {
      auto row = data.x.Row(r);
      for (size_t f = 0; f < nf; ++f) {
        double d = row[f] - x_mean_[f];
        var[f] += d * d;
      }
    }
    for (size_t f = 0; f < nf; ++f) {
      x_std_[f] = std::sqrt(var[f] / static_cast<double>(nr));
      if (x_std_[f] < 1e-12) x_std_[f] = 1.0;
    }
    y_mean_ = std::accumulate(data.y.begin(), data.y.end(), 0.0) / static_cast<double>(nr);
    double yv = 0.0;
    for (double y : data.y) yv += (y - y_mean_) * (y - y_mean_);
    y_std_ = std::sqrt(yv / static_cast<double>(nr));
    if (y_std_ < 1e-12) y_std_ = 1.0;
  } else {
    y_mean_ = 0.0;
    y_std_ = 1.0;
  }

  // Layer setup with He initialization.
  std::vector<int> widths;
  widths.push_back(static_cast<int>(nf));
  for (int h : params_.hidden) widths.push_back(h);
  widths.push_back(1);
  layers_.clear();
  for (size_t l = 0; l + 1 < widths.size(); ++l) {
    Layer layer;
    layer.in = widths[l];
    layer.out = widths[l + 1];
    size_t nw = static_cast<size_t>(layer.in) * static_cast<size_t>(layer.out);
    layer.w.resize(nw);
    double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (double& w : layer.w) w = rng.Normal(0.0, scale);
    layer.b.assign(static_cast<size_t>(layer.out), 0.0);
    layer.mw.assign(nw, 0.0);
    layer.vw.assign(nw, 0.0);
    layer.mb.assign(static_cast<size_t>(layer.out), 0.0);
    layer.vb.assign(static_cast<size_t>(layer.out), 0.0);
    layers_.push_back(std::move(layer));
  }
  fitted_ = true;  // Forward() below needs the standardization state

  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  int64_t step = 0;

  std::vector<size_t> order(nr);
  std::iota(order.begin(), order.end(), 0);

  // Per-layer gradient accumulators.
  std::vector<std::vector<double>> gw(layers_.size()), gb(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    gw[l].assign(layers_[l].w.size(), 0.0);
    gb[l].assign(layers_[l].b.size(), 0.0);
  }

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t batch_start = 0;
    while (batch_start < nr) {
      size_t batch_end = std::min(batch_start + static_cast<size_t>(params_.batch_size), nr);
      size_t bs = batch_end - batch_start;
      for (auto& g : gw) std::fill(g.begin(), g.end(), 0.0);
      for (auto& g : gb) std::fill(g.begin(), g.end(), 0.0);

      for (size_t k = batch_start; k < batch_end; ++k) {
        size_t r = order[k];
        std::vector<std::vector<double>> acts;
        double pred = Forward(data.x.Row(r), &acts);
        double err_std = (pred - data.y[r]) / y_std_;  // d(loss)/d(output) in std space
        epoch_loss += (pred - data.y[r]) * (pred - data.y[r]);

        // Backprop: delta of output layer is the (scaled) error.
        std::vector<double> delta{2.0 * err_std / static_cast<double>(bs)};
        for (size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          const std::vector<double>& in_act = acts[l];
          std::vector<double> prev_delta(static_cast<size_t>(layer.in), 0.0);
          for (int o = 0; o < layer.out; ++o) {
            double d = delta[static_cast<size_t>(o)];
            if (d == 0.0) continue;
            gb[l][static_cast<size_t>(o)] += d;
            double* gwrow = gw[l].data() + static_cast<size_t>(o) * static_cast<size_t>(layer.in);
            const double* wrow = layer.w.data() + static_cast<size_t>(o) * static_cast<size_t>(layer.in);
            for (int i = 0; i < layer.in; ++i) {
              gwrow[i] += d * in_act[static_cast<size_t>(i)];
              prev_delta[static_cast<size_t>(i)] += d * wrow[i];
            }
          }
          if (l > 0) {
            // ReLU derivative on the previous layer's outputs.
            const std::vector<double>& out_act = acts[l];
            for (int i = 0; i < layer.in; ++i) {
              if (out_act[static_cast<size_t>(i)] <= 0.0)
                prev_delta[static_cast<size_t>(i)] = 0.0;
            }
          }
          delta = std::move(prev_delta);
        }
      }

      // Adam update.
      ++step;
      double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step));
      double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step));
      for (size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (size_t i = 0; i < layer.w.size(); ++i) {
          double g = gw[l][i] + params_.weight_decay * layer.w[i];
          layer.mw[i] = beta1 * layer.mw[i] + (1 - beta1) * g;
          layer.vw[i] = beta2 * layer.vw[i] + (1 - beta2) * g * g;
          layer.w[i] -= params_.learning_rate * (layer.mw[i] / bc1) /
                        (std::sqrt(layer.vw[i] / bc2) + eps);
        }
        for (size_t i = 0; i < layer.b.size(); ++i) {
          double g = gb[l][i];
          layer.mb[i] = beta1 * layer.mb[i] + (1 - beta1) * g;
          layer.vb[i] = beta2 * layer.vb[i] + (1 - beta2) * g * g;
          layer.b[i] -= params_.learning_rate * (layer.mb[i] / bc1) /
                        (std::sqrt(layer.vb[i] / bc2) + eps);
        }
      }
      batch_start = batch_end;
    }
    final_train_loss_ = epoch_loss / static_cast<double>(nr);
  }
  return Status::OK();
}

double MlpRegressor::Predict(std::span<const double> features) const {
  PHOEBE_CHECK_MSG(fitted_, "Predict called before Fit");
  PHOEBE_CHECK(features.size() == x_mean_.size());
  return Forward(features, nullptr);
}

std::vector<double> MlpRegressor::PredictBatch(const FeatureMatrix& x) const {
  PHOEBE_CHECK_MSG(fitted_, "PredictBatch called before Fit");
  const size_t nr = x.num_rows();
  std::vector<double> out(nr, 0.0);
  if (nr == 0) return out;
  PHOEBE_CHECK(x.num_features() == x_mean_.size());

  // Widest activation across input and every layer; each row occupies a
  // fixed max_w-sized slot in the ping-pong buffers so layers can swap
  // buffers without reshaping.
  size_t max_w = x_mean_.size();
  for (const Layer& l : layers_) max_w = std::max(max_w, static_cast<size_t>(l.out));

  constexpr size_t kRowBlock = 32;
  std::vector<double> buf_a(kRowBlock * max_w, 0.0);
  std::vector<double> buf_b(kRowBlock * max_w, 0.0);
  for (size_t b0 = 0; b0 < nr; b0 += kRowBlock) {
    const size_t bn = std::min(kRowBlock, nr - b0);
    for (size_t k = 0; k < bn; ++k) {
      auto row = x.Row(b0 + k);
      double* dst = buf_a.data() + k * max_w;
      for (size_t f = 0; f < x_mean_.size(); ++f) {
        dst[f] = (row[f] - x_mean_[f]) / x_std_[f];
      }
    }
    double* cur = buf_a.data();
    double* nxt = buf_b.data();
    for (size_t l = 0; l < layers_.size(); ++l) {
      const Layer& layer = layers_[l];
      const bool relu = l + 1 < layers_.size();
      for (int o = 0; o < layer.out; ++o) {
        const double bias = layer.b[static_cast<size_t>(o)];
        const double* wrow =
            layer.w.data() + static_cast<size_t>(o) * static_cast<size_t>(layer.in);
        for (size_t k = 0; k < bn; ++k) {
          const double* in_row = cur + k * max_w;
          double s = bias;
          for (int i = 0; i < layer.in; ++i) s += wrow[i] * in_row[static_cast<size_t>(i)];
          nxt[k * max_w + static_cast<size_t>(o)] = relu ? std::max(0.0, s) : s;
        }
      }
      std::swap(cur, nxt);
    }
    for (size_t k = 0; k < bn; ++k) out[b0 + k] = cur[k * max_w] * y_std_ + y_mean_;
  }
  return out;
}

void MlpRegressor::PredictRowsInto(const FeatureMatrix& x, std::span<const size_t> rows,
                                   std::vector<double>* out) const {
  PHOEBE_CHECK_MSG(fitted_, "PredictRowsInto called before Fit");
  const size_t nr = rows.size();
  out->assign(nr, 0.0);
  if (nr == 0) return;
  PHOEBE_CHECK(x.num_features() == x_mean_.size());

  size_t max_w = x_mean_.size();
  for (const Layer& l : layers_) max_w = std::max(max_w, static_cast<size_t>(l.out));

  constexpr size_t kRowBlock = 32;
  // Per-thread ping-pong buffers: grown to the widest model this thread has
  // served, then reused — the serving path stays allocation-free after warmup.
  thread_local std::vector<double> buf_a, buf_b;
  if (buf_a.size() < kRowBlock * max_w) {
    buf_a.assign(kRowBlock * max_w, 0.0);
    buf_b.assign(kRowBlock * max_w, 0.0);
  }
  for (size_t b0 = 0; b0 < nr; b0 += kRowBlock) {
    const size_t bn = std::min(kRowBlock, nr - b0);
    for (size_t k = 0; k < bn; ++k) {
      auto row = x.Row(rows[b0 + k]);
      double* dst = buf_a.data() + k * max_w;
      for (size_t f = 0; f < x_mean_.size(); ++f) {
        dst[f] = (row[f] - x_mean_[f]) / x_std_[f];
      }
    }
    double* cur = buf_a.data();
    double* nxt = buf_b.data();
    for (size_t l = 0; l < layers_.size(); ++l) {
      const Layer& layer = layers_[l];
      const bool relu = l + 1 < layers_.size();
      for (int o = 0; o < layer.out; ++o) {
        const double bias = layer.b[static_cast<size_t>(o)];
        const double* wrow =
            layer.w.data() + static_cast<size_t>(o) * static_cast<size_t>(layer.in);
        for (size_t k = 0; k < bn; ++k) {
          const double* in_row = cur + k * max_w;
          double s = bias;
          for (int i = 0; i < layer.in; ++i) s += wrow[i] * in_row[static_cast<size_t>(i)];
          nxt[k * max_w + static_cast<size_t>(o)] = relu ? std::max(0.0, s) : s;
        }
      }
      std::swap(cur, nxt);
    }
    for (size_t k = 0; k < bn; ++k) (*out)[b0 + k] = cur[k * max_w] * y_std_ + y_mean_;
  }
}

std::string MlpRegressor::ToText() const {
  PHOEBE_CHECK_MSG(fitted_, "ToText called before Fit");
  std::string out = StrFormat("mlp %zu %zu %.17g %.17g\n", x_mean_.size(),
                              layers_.size(), y_mean_, y_std_);
  for (size_t f = 0; f < x_mean_.size(); ++f) {
    out += StrFormat("norm %.17g %.17g\n", x_mean_[f], x_std_[f]);
  }
  for (const Layer& l : layers_) {
    out += StrFormat("layer %d %d\n", l.in, l.out);
    for (double w : l.w) out += StrFormat("%.17g\n", w);
    for (double b : l.b) out += StrFormat("%.17g\n", b);
  }
  return out;
}

Status MlpRegressor::FromText(std::string_view text, MlpRegressor* out) {
  PHOEBE_CHECK(out != nullptr);
  std::vector<std::string> lines = Split(std::string(text), '\n');
  size_t i = 0;
  auto next = [&]() -> const std::string* {
    while (i < lines.size() && lines[i].empty()) ++i;
    return i < lines.size() ? &lines[i++] : nullptr;
  };
  const std::string* line = next();
  if (!line) return Status::InvalidArgument("empty mlp model");
  std::vector<std::string> hdr = Split(*line, ' ');
  if (hdr.size() != 5 || hdr[0] != "mlp") return Status::InvalidArgument("bad mlp header");

  MlpRegressor model;
  size_t nf = static_cast<size_t>(std::atoll(hdr[1].c_str()));
  size_t nl = static_cast<size_t>(std::atoll(hdr[2].c_str()));
  model.y_mean_ = std::atof(hdr[3].c_str());
  model.y_std_ = std::atof(hdr[4].c_str());
  for (size_t f = 0; f < nf; ++f) {
    line = next();
    if (!line) return Status::InvalidArgument("truncated mlp norms");
    std::vector<std::string> tok = Split(*line, ' ');
    if (tok.size() != 3 || tok[0] != "norm") {
      return Status::InvalidArgument("bad mlp norm line");
    }
    model.x_mean_.push_back(std::atof(tok[1].c_str()));
    model.x_std_.push_back(std::atof(tok[2].c_str()));
  }
  for (size_t l = 0; l < nl; ++l) {
    line = next();
    if (!line) return Status::InvalidArgument("truncated mlp layers");
    std::vector<std::string> tok = Split(*line, ' ');
    if (tok.size() != 3 || tok[0] != "layer") {
      return Status::InvalidArgument("bad mlp layer header");
    }
    Layer layer;
    layer.in = std::atoi(tok[1].c_str());
    layer.out = std::atoi(tok[2].c_str());
    if (layer.in < 1 || layer.out < 1) {
      return Status::InvalidArgument("bad mlp layer shape");
    }
    size_t nw = static_cast<size_t>(layer.in) * static_cast<size_t>(layer.out);
    layer.w.reserve(nw);
    for (size_t k = 0; k < nw; ++k) {
      line = next();
      if (!line) return Status::InvalidArgument("truncated mlp weights");
      layer.w.push_back(std::atof(line->c_str()));
    }
    for (int k = 0; k < layer.out; ++k) {
      line = next();
      if (!line) return Status::InvalidArgument("truncated mlp biases");
      layer.b.push_back(std::atof(line->c_str()));
    }
    model.layers_.push_back(std::move(layer));
  }
  model.fitted_ = true;
  *out = std::move(model);
  return Status::OK();
}

Result<MlpRegressor> MlpRegressor::FromText(const std::string& text) {
  MlpRegressor model;
  PHOEBE_RETURN_NOT_OK(FromText(std::string_view(text), &model));
  return model;
}

}  // namespace phoebe::ml
