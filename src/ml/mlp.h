// Feed-forward neural network regressor (ReLU hidden layers, Adam optimizer).
//
// Stands in for the paper's "DNN benchmark" (word embedding + 2 hidden
// layers): text features are embedded via ml/text.h hashing and fed to this
// MLP. Expected to be slightly less accurate and far slower to train than the
// GBDT, matching the paper's findings in Section 6.1.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "ml/model.h"

namespace phoebe::ml {

/// \brief Hyperparameters for MlpRegressor.
struct MlpParams {
  std::vector<int> hidden = {64, 64};  ///< hidden layer widths
  int epochs = 50;
  int batch_size = 64;
  double learning_rate = 1e-3;  ///< Adam step size
  double weight_decay = 0.0;    ///< L2 regularization
  uint64_t seed = 42;
  bool standardize = true;      ///< z-score inputs and target

  Status Validate() const;
};

/// \brief Multi-layer perceptron for regression, trained with Adam on MSE.
class MlpRegressor : public Regressor {
 public:
  explicit MlpRegressor(MlpParams params = {});

  Status Fit(const Dataset& data) override;
  double Predict(std::span<const double> features) const override;

  /// GEMM-style blocked forward pass: fixed row blocks flow through all
  /// layers using two flat ping-pong buffers, with each weight row reused
  /// across the whole block (loop order layer → output neuron → row → input).
  /// No per-row heap allocations, unlike the scalar Forward. Bit-equal to the
  /// row loop: the inner input-index accumulation order is unchanged.
  std::vector<double> PredictBatch(const FeatureMatrix& x) const override;

  /// Blocked forward pass over an explicit row subset into a caller-owned
  /// buffer. The ping-pong activation buffers are per-thread and sized once,
  /// so a warm caller sees no heap traffic. Bit-equal to Predict.
  void PredictRowsInto(const FeatureMatrix& x, std::span<const size_t> rows,
                       std::vector<double>* out) const override;

  bool fitted() const override { return fitted_; }

  /// Mean training loss of the final epoch (for convergence checks in tests).
  double final_train_loss() const { return final_train_loss_; }

  /// Serialize weights and normalization to text; FromText round-trips it.
  std::string ToText() const;
  /// Primary Status-first parse entry point: on error `*out` is untouched
  /// and the Status names what was malformed (never a crash).
  static Status FromText(std::string_view text, MlpRegressor* out);
  /// Deprecated shim; delegates to the two-argument overload.
  static Result<MlpRegressor> FromText(const std::string& text);

 private:
  struct Layer {
    int in = 0, out = 0;
    std::vector<double> w;  // out x in, row-major
    std::vector<double> b;  // out
    // Adam state
    std::vector<double> mw, vw, mb, vb;
  };

  double Forward(std::span<const double> x, std::vector<std::vector<double>>* acts) const;

  MlpParams params_;
  std::vector<Layer> layers_;
  std::vector<double> x_mean_, x_std_;
  double y_mean_ = 0.0, y_std_ = 1.0;
  double final_train_loss_ = 0.0;
  bool fitted_ = false;
};

}  // namespace phoebe::ml
