#include "ml/tuning.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/stats.h"
#include "common/strings.h"

namespace phoebe::ml {

Result<CvResult> CrossValidate(
    const std::function<std::unique_ptr<Regressor>()>& make_model,
    const Dataset& data, int folds, uint64_t seed) {
  PHOEBE_RETURN_NOT_OK(data.Validate());
  if (folds < 2) return Status::InvalidArgument("folds must be >= 2");
  if (data.size() < static_cast<size_t>(folds)) {
    return Status::InvalidArgument(
        StrFormat("%zu rows cannot fill %d folds", data.size(), folds));
  }

  // Deterministic shuffled fold assignment.
  std::vector<size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&idx);

  CvResult result;
  RunningStats stats;
  for (int f = 0; f < folds; ++f) {
    std::vector<size_t> train_rows, test_rows;
    for (size_t i = 0; i < idx.size(); ++i) {
      (static_cast<int>(i % static_cast<size_t>(folds)) == f ? test_rows : train_rows)
          .push_back(idx[i]);
    }
    Dataset train = data.Subset(train_rows);
    Dataset test = data.Subset(test_rows);

    std::unique_ptr<Regressor> model = make_model();
    PHOEBE_CHECK(model != nullptr);
    PHOEBE_RETURN_NOT_OK(model->Fit(train));
    double r2 = RSquared(test.y, model->PredictBatch(test.x));
    result.fold_r2.push_back(r2);
    stats.Add(r2);
  }
  result.mean_r2 = stats.mean();
  result.stddev_r2 = stats.stddev();
  return result;
}

Result<std::vector<GridSearchEntry>> GridSearch(const GbdtParams& base,
                                                const GbdtGrid& grid,
                                                const Dataset& data, int folds,
                                                uint64_t seed) {
  auto axis = [](auto grid_values, auto base_value) {
    using T = decltype(base_value);
    std::vector<T> out(grid_values.begin(), grid_values.end());
    if (out.empty()) out.push_back(base_value);
    return out;
  };
  std::vector<int> trees = axis(grid.num_trees, base.num_trees);
  std::vector<int> leaves = axis(grid.num_leaves, base.num_leaves);
  std::vector<double> rates = axis(grid.learning_rate, base.learning_rate);
  std::vector<int> min_leaf = axis(grid.min_data_in_leaf, base.min_data_in_leaf);

  std::vector<GridSearchEntry> entries;
  for (int t : trees) {
    for (int l : leaves) {
      for (double r : rates) {
        for (int m : min_leaf) {
          GbdtParams p = base;
          p.num_trees = t;
          p.num_leaves = l;
          p.learning_rate = r;
          p.min_data_in_leaf = m;
          PHOEBE_RETURN_NOT_OK(p.Validate());
          PHOEBE_ASSIGN_OR_RETURN(
              CvResult cv,
              CrossValidate([&p] { return std::make_unique<GbdtRegressor>(p); }, data,
                            folds, seed));
          entries.push_back(GridSearchEntry{p, std::move(cv)});
        }
      }
    }
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.cv.mean_r2 > b.cv.mean_r2;
  });
  return entries;
}

}  // namespace phoebe::ml
