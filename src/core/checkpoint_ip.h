// Exact integer-programming formulations of the checkpoint problem
// (paper §5.1/§5.2, equations (1)-(26)), solved with the bundled
// branch-and-bound engine. Used to validate the heuristic (they must agree
// for single cuts with alpha = 0) and for the Figure 10/11 benches.
//
// Notes on the encoding:
//  * z_u (stage before cut c) are binary; d_uv and g_u are relaxed to
//    continuous [0, 1] — with z integral, d_uv = max(0, z_u - z_v) and
//    g_u = max_v d_uv at any optimum that minimizes the alpha * G term, so
//    the relaxation is exact while shrinking the branch space.
//  * Bytes are scaled to GB and times to hours inside the model to keep the
//    simplex numerically comfortable; reported results are unscaled.
#pragma once

#include "core/checkpoint.h"
#include "solver/milp.h"

namespace phoebe::core {

/// \brief Options for an exact checkpoint solve.
struct IpOptions {
  int num_cuts = 1;       ///< K+1 cuts in paper terms is num_cuts here
  double alpha = 0.0;     ///< cost factor of global storage (per byte-second
                          ///< equivalent; applied in scaled units)
  solver::MilpOptions milp;
};

/// \brief Result of an exact checkpoint solve.
struct IpResult {
  std::vector<CutResult> cuts;  ///< outermost-first; empty if no cut pays off
  double objective = 0.0;       ///< byte-seconds (unscaled), net of alpha * G
  double global_bytes = 0.0;    ///< actual storage for the chosen cuts
  int64_t nodes = 0;
  int64_t pivots = 0;
  bool optimal = true;
};

/// Solve the temp-data-saving formulation (eq. (15)-(19), or (20)-(26) for
/// multiple cuts) exactly.
Result<IpResult> SolveTempStorageIp(const dag::JobGraph& graph, const StageCosts& costs,
                                    const IpOptions& options = {});

}  // namespace phoebe::core
