#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "cluster/cluster.h"
#include "core/simulator.h"

namespace phoebe::core {

const char* CostSourceToken(CostSource source) {
  switch (source) {
    case CostSource::kTruth: return "truth";
    case CostSource::kOptimizerEstimates: return "opt_est";
    case CostSource::kConstant: return "constant";
    case CostSource::kMlSimulator: return "ml_sim";
    case CostSource::kMlStacked: return "ml_stacked";
  }
  return "unknown";
}

Status CostSourceFromToken(const std::string& token, CostSource* out) {
  for (CostSource s : {CostSource::kTruth, CostSource::kOptimizerEstimates,
                       CostSource::kConstant, CostSource::kMlSimulator,
                       CostSource::kMlStacked}) {
    if (token == CostSourceToken(s)) {
      *out = s;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown cost source token '" + token + "'");
}

DecisionEngine::DecisionEngine(std::shared_ptr<const PipelineBundle> bundle,
                               obs::MetricsRegistry* metrics)
    : bundle_(std::move(bundle)) {
  PHOEBE_CHECK(bundle_ != nullptr);
  if (metrics == nullptr) return;
  for (CostSource s : {CostSource::kTruth, CostSource::kOptimizerEstimates,
                       CostSource::kConstant, CostSource::kMlSimulator,
                       CostSource::kMlStacked}) {
    const std::string base = std::string("engine.") + CostSourceToken(s);
    SourceMetrics& m = source_metrics_[static_cast<size_t>(s)];
    m.decide_seconds = metrics->histogram(base + ".decide.seconds");
    m.infer_seconds = metrics->histogram(base + ".inference.seconds");
    m.batch_stages = metrics->histogram(
        base + ".inference.batch_stages",
        obs::Histogram::ExponentialBounds(1.0, 2.0, 12));
    m.batches = metrics->counter(base + ".inference.batches");
  }
}

Result<StageCosts> DecisionEngine::BuildCosts(const workload::JobInstance& job,
                                              CostSource source) const {
  return BuildCosts(job, source, bundle_->stats());
}

Result<StageCosts> DecisionEngine::BuildCosts(
    const workload::JobInstance& job, CostSource source,
    const telemetry::HistoricStats& stats) const {
  const size_t n = job.graph.num_stages();
  StageCosts costs;
  costs.num_tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    costs.num_tasks.push_back(job.truth[i].num_tasks);
  }

  if (source == CostSource::kTruth) {
    costs.output_bytes.reserve(n);
    costs.ttl.reserve(n);
    costs.end_time.reserve(n);
    costs.tfs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const workload::StageTruth& t = job.truth[i];
      costs.output_bytes.push_back(t.output_bytes);
      costs.ttl.push_back(t.ttl);
      costs.end_time.push_back(t.end_time);
      costs.tfs.push_back(t.tfs);
      // True job end: every stage's temp data clears there, so end + ttl is
      // the same value for all stages up to the generator's finalization
      // slack; the max is the true clear time the optimizers price.
      costs.job_end = std::max(costs.job_end, t.end_time + t.ttl);
    }
    return costs;
  }

  // Per-stage execution time and output size from the chosen source.
  std::vector<double> exec(n), output(n);
  switch (source) {
    case CostSource::kOptimizerEstimates:
      for (size_t i = 0; i < n; ++i) {
        exec[i] = std::max(0.0, job.est[i].est_exclusive_cost);
        output[i] = std::max(0.0, job.est[i].est_output_bytes);
      }
      break;
    case CostSource::kConstant:
      for (size_t i = 0; i < n; ++i) {
        exec[i] = 1.0;
        output[i] = 1.0;
      }
      break;
    case CostSource::kMlSimulator:
    case CostSource::kMlStacked: {
      if (!bundle_->trained()) return Status::FailedPrecondition("pipeline not trained");
      const SourceMetrics& m = metrics_for(source);
      obs::ScopedTimer infer_timer(m.infer_seconds);
      exec = bundle_->exec_predictor().PredictJob(job, stats);
      output = bundle_->size_predictor().PredictJob(job, stats);
      infer_timer.Stop();
      // Each PredictJob scores the job's stages as one batch.
      obs::Observe(m.batch_stages, static_cast<double>(n));
      obs::Observe(m.batch_stages, static_cast<double>(n));
      obs::Add(m.batches, 2);
      break;
    }
    case CostSource::kTruth:
      PHOEBE_CHECK(false);
  }

  PHOEBE_ASSIGN_OR_RETURN(SimulatedSchedule sim, SimulateSchedule(job.graph, exec));

  costs.output_bytes = std::move(output);
  costs.end_time = sim.end;
  costs.tfs = sim.start;
  // The simulator has no finalization slack (job_end == max end), so for the
  // estimate-based sources this leaves the final-clear adjustment at zero.
  costs.job_end = sim.job_end;
  if (source == CostSource::kMlStacked && bundle_->trained()) {
    const SourceMetrics& m = metrics_for(source);
    obs::ScopedTimer ttl_timer(m.infer_seconds);
    costs.ttl = bundle_->ttl_estimator().Predict(job, sim);
    ttl_timer.Stop();
    obs::Observe(m.batch_stages, static_cast<double>(n));
    obs::Increment(m.batches);
  } else {
    costs.ttl.resize(n);
    for (size_t i = 0; i < n; ++i) {
      costs.ttl[i] = sim.Ttl(static_cast<dag::StageId>(i));
    }
  }
  return costs;
}

Result<PipelineDecision> DecisionEngine::Decide(const workload::JobInstance& job,
                                                Objective objective,
                                                CostSource source) const {
  using Clock = std::chrono::steady_clock;
  PipelineDecision decision;

  auto t0 = Clock::now();
  // Metadata/model lookup: resolve stats entries for every stage type in the
  // plan (in production this is the Workload Insight Service round trip).
  for (size_t i = 0; i < job.graph.num_stages(); ++i) {
    (void)bundle_->stats().Get(job.template_id,
                               job.graph.stage(static_cast<int>(i)).stage_type);
  }
  auto t1 = Clock::now();

  PHOEBE_ASSIGN_OR_RETURN(StageCosts costs, BuildCosts(job, source));
  auto t2 = Clock::now();

  switch (objective) {
    case Objective::kTempStorage: {
      PHOEBE_ASSIGN_OR_RETURN(decision.cut, OptimizeTempStorage(job.graph, costs));
      break;
    }
    case Objective::kRecovery: {
      PHOEBE_ASSIGN_OR_RETURN(decision.cut,
                              OptimizeRecovery(job.graph, costs, bundle_->delta()));
      break;
    }
  }
  auto t3 = Clock::now();

  auto secs = [](auto a, auto b) {
    return std::chrono::duration<double>(b - a).count();
  };
  decision.lookup_seconds = secs(t0, t1);
  decision.scoring_seconds = secs(t1, t2);
  decision.optimize_seconds = secs(t2, t3);
  return decision;
}

Result<FleetDecision> DecisionEngine::DecideJob(const workload::JobInstance& job,
                                                const telemetry::HistoricStats& stats,
                                                const DecideOptions& options) const {
  obs::ScopedTimer decide_timer(metrics_for(options.source).decide_seconds);
  PHOEBE_ASSIGN_OR_RETURN(StageCosts costs, BuildCosts(job, options.source, stats));
  FleetDecision d;
  if (options.objective == Objective::kRecovery) {
    PHOEBE_ASSIGN_OR_RETURN(d.combined,
                            OptimizeRecovery(job.graph, costs, bundle_->delta()));
    if (!d.combined.cut.empty()) d.cuts.push_back(d.combined.cut);
    return d;
  }
  if (options.num_cuts <= 1) {
    PHOEBE_ASSIGN_OR_RETURN(d.combined, OptimizeTempStorage(job.graph, costs));
    if (!d.combined.cut.empty()) d.cuts.push_back(d.combined.cut);
    return d;
  }

  // Multi-cut plan, reported under the physical semantics the cluster
  // realizes: the DP-total objective (each stage credited at its earliest
  // cut), and global bytes as the union of checkpoint stages across cuts —
  // a stage persists its output once even if edges cross several cuts.
  PHOEBE_ASSIGN_OR_RETURN(
      std::vector<CutResult> cuts,
      OptimizeTempStorageMultiCut(job.graph, costs, options.num_cuts));
  if (cuts.empty()) return d;
  d.combined.cut = cuts.back().cut;           // outermost (largest) set
  d.combined.objective = cuts.front().objective;  // DP total
  std::set<dag::StageId> persisted;
  for (const CutResult& c : cuts) {
    d.cuts.push_back(c.cut);
    for (dag::StageId u : cluster::CheckpointStages(job.graph, c.cut)) {
      persisted.insert(u);
    }
  }
  for (dag::StageId u : persisted) {
    d.combined.global_bytes += costs.output_bytes[static_cast<size_t>(u)];
  }
  return d;
}

}  // namespace phoebe::core
