#include "core/engine.h"

#include <algorithm>
#include <chrono>

#include "cluster/cluster.h"
#include "core/simulator.h"

namespace phoebe::core {

const char* CostSourceToken(CostSource source) {
  switch (source) {
    case CostSource::kTruth: return "truth";
    case CostSource::kOptimizerEstimates: return "opt_est";
    case CostSource::kConstant: return "constant";
    case CostSource::kMlSimulator: return "ml_sim";
    case CostSource::kMlStacked: return "ml_stacked";
  }
  return "unknown";
}

Status CostSourceFromToken(const std::string& token, CostSource* out) {
  for (CostSource s : {CostSource::kTruth, CostSource::kOptimizerEstimates,
                       CostSource::kConstant, CostSource::kMlSimulator,
                       CostSource::kMlStacked}) {
    if (token == CostSourceToken(s)) {
      *out = s;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown cost source token '" + token + "'");
}

DecisionEngine::DecisionEngine(std::shared_ptr<const PipelineBundle> bundle,
                               obs::MetricsRegistry* metrics)
    : bundle_(std::move(bundle)) {
  PHOEBE_CHECK(bundle_ != nullptr);
  if (metrics == nullptr) return;
  for (CostSource s : {CostSource::kTruth, CostSource::kOptimizerEstimates,
                       CostSource::kConstant, CostSource::kMlSimulator,
                       CostSource::kMlStacked}) {
    const std::string base = std::string("engine.") + CostSourceToken(s);
    SourceMetrics& m = source_metrics_[static_cast<size_t>(s)];
    m.decide_seconds = metrics->histogram(base + ".decide.seconds");
    m.infer_seconds = metrics->histogram(base + ".inference.seconds");
    m.batch_stages = metrics->histogram(
        base + ".inference.batch_stages",
        obs::Histogram::ExponentialBounds(1.0, 2.0, 12));
    m.batches = metrics->counter(base + ".inference.batches");
  }
}

Result<StageCosts> DecisionEngine::BuildCosts(const workload::JobInstance& job,
                                              CostSource source) const {
  return BuildCosts(job, source, bundle_->stats());
}

Result<StageCosts> DecisionEngine::BuildCosts(
    const workload::JobInstance& job, CostSource source,
    const telemetry::HistoricStats& stats) const {
  DecideScratch scratch;
  StageCosts costs;
  PHOEBE_RETURN_NOT_OK(BuildCostsInto(job, source, stats, &scratch, &costs));
  return costs;
}

Status DecisionEngine::BuildCostsInto(const workload::JobInstance& job,
                                      CostSource source,
                                      const telemetry::HistoricStats& stats,
                                      DecideScratch* scratch, StageCosts* out) const {
  const size_t n = job.graph.num_stages();
  out->num_tasks.clear();
  out->num_tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out->num_tasks.push_back(job.truth[i].num_tasks);
  }
  out->job_end = 0.0;

  if (source == CostSource::kTruth) {
    out->output_bytes.clear();
    out->ttl.clear();
    out->end_time.clear();
    out->tfs.clear();
    out->output_bytes.reserve(n);
    out->ttl.reserve(n);
    out->end_time.reserve(n);
    out->tfs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const workload::StageTruth& t = job.truth[i];
      out->output_bytes.push_back(t.output_bytes);
      out->ttl.push_back(t.ttl);
      out->end_time.push_back(t.end_time);
      out->tfs.push_back(t.tfs);
      // True job end: every stage's temp data clears there, so end + ttl is
      // the same value for all stages up to the generator's finalization
      // slack; the max is the true clear time the optimizers price.
      out->job_end = std::max(out->job_end, t.end_time + t.ttl);
    }
    return Status::OK();
  }

  // Per-stage execution time and output size from the chosen source, written
  // straight into the arena (exec) and the result (output bytes) — no
  // zero-init-then-overwrite temporaries.
  std::vector<double>& exec = scratch->exec;
  switch (source) {
    case CostSource::kOptimizerEstimates:
      exec.resize(n);
      out->output_bytes.resize(n);
      for (size_t i = 0; i < n; ++i) {
        exec[i] = std::max(0.0, job.est[i].est_exclusive_cost);
        out->output_bytes[i] = std::max(0.0, job.est[i].est_output_bytes);
      }
      break;
    case CostSource::kConstant:
      exec.assign(n, 1.0);
      out->output_bytes.assign(n, 1.0);
      break;
    case CostSource::kMlSimulator:
    case CostSource::kMlStacked: {
      if (!bundle_->trained()) return Status::FailedPrecondition("pipeline not trained");
      const SourceMetrics& m = metrics_for(source);
      obs::ScopedTimer infer_timer(m.infer_seconds);
      bundle_->exec_predictor().PredictJobInto(job, stats, &scratch->exec_features,
                                               &exec);
      bundle_->size_predictor().PredictJobInto(job, stats, &scratch->size_features,
                                               &out->output_bytes);
      infer_timer.Stop();
      // Each PredictJobInto scores the job's stages as one batch.
      obs::Observe(m.batch_stages, static_cast<double>(n));
      obs::Observe(m.batch_stages, static_cast<double>(n));
      obs::Add(m.batches, 2);
      break;
    }
    case CostSource::kTruth:
      PHOEBE_CHECK(false);
  }

  PHOEBE_RETURN_NOT_OK(
      SimulateScheduleInto(job.graph, exec, &scratch->sim_scratch, &scratch->sim));
  const SimulatedSchedule& sim = scratch->sim;

  out->end_time.assign(sim.end.begin(), sim.end.end());
  out->tfs.assign(sim.start.begin(), sim.start.end());
  // The simulator has no finalization slack (job_end == max end), so for the
  // estimate-based sources this leaves the final-clear adjustment at zero.
  out->job_end = sim.job_end;
  if (source == CostSource::kMlStacked && bundle_->trained()) {
    const SourceMetrics& m = metrics_for(source);
    obs::ScopedTimer ttl_timer(m.infer_seconds);
    bundle_->ttl_estimator().PredictInto(job, sim, &scratch->ttl_features, &out->ttl);
    ttl_timer.Stop();
    obs::Observe(m.batch_stages, static_cast<double>(n));
    obs::Increment(m.batches);
  } else {
    out->ttl.resize(n);
    for (size_t i = 0; i < n; ++i) {
      out->ttl[i] = sim.Ttl(static_cast<dag::StageId>(i));
    }
  }
  return Status::OK();
}

Result<PipelineDecision> DecisionEngine::Decide(const workload::JobInstance& job,
                                                Objective objective,
                                                CostSource source) const {
  DecideScratch scratch;
  PipelineDecision decision;
  PHOEBE_RETURN_NOT_OK(DecideInto(job, objective, source, &scratch, &decision));
  return decision;
}

Status DecisionEngine::DecideInto(const workload::JobInstance& job,
                                  Objective objective, CostSource source,
                                  DecideScratch* scratch,
                                  PipelineDecision* out) const {
  using Clock = std::chrono::steady_clock;

  auto t0 = Clock::now();
  // Metadata/model lookup: resolve stats entries for every stage type in the
  // plan (in production this is the Workload Insight Service round trip).
  for (size_t i = 0; i < job.graph.num_stages(); ++i) {
    (void)bundle_->stats().Get(job.template_id,
                               job.graph.stage(static_cast<int>(i)).stage_type);
  }
  auto t1 = Clock::now();

  PHOEBE_RETURN_NOT_OK(
      BuildCostsInto(job, source, bundle_->stats(), scratch, &scratch->costs));
  auto t2 = Clock::now();

  switch (objective) {
    case Objective::kTempStorage: {
      PHOEBE_RETURN_NOT_OK(OptimizeTempStorageInto(job.graph, scratch->costs,
                                                   &scratch->checkpoint, &out->cut));
      break;
    }
    case Objective::kRecovery: {
      PHOEBE_RETURN_NOT_OK(OptimizeRecoveryInto(job.graph, scratch->costs,
                                                bundle_->delta(), &scratch->checkpoint,
                                                &out->cut));
      break;
    }
  }
  auto t3 = Clock::now();

  auto secs = [](auto a, auto b) {
    return std::chrono::duration<double>(b - a).count();
  };
  out->lookup_seconds = secs(t0, t1);
  out->scoring_seconds = secs(t1, t2);
  out->optimize_seconds = secs(t2, t3);
  return Status::OK();
}

Result<FleetDecision> DecisionEngine::DecideJob(const workload::JobInstance& job,
                                                const telemetry::HistoricStats& stats,
                                                const DecideOptions& options) const {
  DecideScratch scratch;
  FleetDecision d;
  PHOEBE_RETURN_NOT_OK(DecideJobInto(job, stats, options, &scratch, &d));
  return d;
}

Status DecisionEngine::DecideJobInto(const workload::JobInstance& job,
                                     const telemetry::HistoricStats& stats,
                                     const DecideOptions& options,
                                     DecideScratch* scratch, FleetDecision* out) const {
  obs::ScopedTimer decide_timer(metrics_for(options.source).decide_seconds);
  PHOEBE_RETURN_NOT_OK(
      BuildCostsInto(job, options.source, stats, scratch, &scratch->costs));
  const StageCosts& costs = scratch->costs;

  // Single-cut objectives: the optimizer writes the combined result in
  // place; the nested-cut list mirrors it, recycling its bitset.
  auto mirror_single_cut = [out] {
    if (out->combined.cut.empty()) {
      out->cuts.clear();
    } else {
      out->cuts.resize(1);
      out->cuts[0].before_cut = out->combined.cut.before_cut;
    }
  };
  if (options.objective == Objective::kRecovery) {
    PHOEBE_RETURN_NOT_OK(OptimizeRecoveryInto(job.graph, costs, bundle_->delta(),
                                              &scratch->checkpoint, &out->combined));
    mirror_single_cut();
    return Status::OK();
  }
  if (options.num_cuts <= 1) {
    PHOEBE_RETURN_NOT_OK(OptimizeTempStorageInto(job.graph, costs,
                                                 &scratch->checkpoint, &out->combined));
    mirror_single_cut();
    return Status::OK();
  }

  // Multi-cut plan, reported under the physical semantics the cluster
  // realizes: the DP-total objective (each stage credited at its earliest
  // cut), and global bytes as the union of checkpoint stages across cuts —
  // a stage persists its output once even if edges cross several cuts.
  PHOEBE_RETURN_NOT_OK(OptimizeTempStorageMultiCutInto(
      job.graph, costs, options.num_cuts, &scratch->checkpoint, &scratch->multicut));
  const std::vector<CutResult>& cuts = scratch->multicut;
  if (cuts.empty()) {
    out->combined.cut.before_cut.clear();
    out->combined.objective = 0.0;
    out->combined.global_bytes = 0.0;
    out->cuts.clear();
    return Status::OK();
  }
  out->combined.cut.before_cut = cuts.back().cut.before_cut;  // outermost set
  out->combined.objective = cuts.front().objective;           // DP total
  out->combined.global_bytes = 0.0;
  const size_t n = job.graph.num_stages();
  std::vector<char>& persisted = scratch->persisted;
  persisted.assign(n, 0);
  out->cuts.resize(cuts.size());
  for (size_t c = 0; c < cuts.size(); ++c) {
    out->cuts[c].before_cut = cuts[c].cut.before_cut;
    for (dag::StageId u = 0; u < static_cast<dag::StageId>(n); ++u) {
      if (cluster::IsCheckpointStage(job.graph, cuts[c].cut, u)) {
        persisted[static_cast<size_t>(u)] = 1;
      }
    }
  }
  // Ascending-id union sum — the same order the old std::set walk produced.
  for (size_t u = 0; u < n; ++u) {
    if (persisted[u]) out->combined.global_bytes += costs.output_bytes[u];
  }
  return Status::OK();
}

}  // namespace phoebe::core
