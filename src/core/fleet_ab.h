// Differential fleet A/B harness: N decision arms over one DayContext —
// or, in the per-arm-context form, one DayContext per arm so scenario arms
// can decide a differently-generated workload for the same day index.
//
// "Is the new model/config better?" is only answerable when the
// alternatives are costed against *identical* inputs. The arm/context split
// in core/fleet.h makes that structural: one DayContext (jobs + stats,
// generated once) drives N DecisionArms — each an immutable bundle plus its
// own FleetConfig, template cache, scratch arenas, and metrics prefix — and
// every arm's FleetDayReport is byte-identical to the report that arm would
// have produced in a standalone single-arm run (core_fleet_ab_test pins
// this across threads, cache modes, and sharding).
//
// The harness's artifact is the paired per-day comparison: per-arm cost and
// realized saving, the decision diff against arm 0 (byte-diff of the
// shard-blob job records, the same bytes lifecycle shadow mode diffs), which
// jobs/stages flipped, and which admissions flipped. Serialized in a
// versioned text format:
//
//   phoebe_ab_report 1
//   day <d> jobs <m> arms <n>
//   arm <k> <name> <crc8> considered <c> with_cut <w> admitted <a>
//       storage <g> temp <g> realized <g> saving <g> cost <g>   # one line, %.17g
//   delta <k> decision_flips <f> admission_flips <g> saving_delta <g>
//       cost_delta <g>                                # k = 1..n-1, one line
//   flip <k> job <i> stages <s>                       # f lines, ascending i
//   admission_flip <k> job <i> <+|->                  # g lines, ascending i
//   end_day
//   ...
//   end_ab_report
//
// Arm summaries deliberately carry no template-cache counters, so a paired
// report is byte-identical whether an arm ran cache-off or exact-cache —
// the same neutrality contract the lifecycle day-report JSON keeps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/fleet.h"

namespace phoebe::core {

/// \brief One arm of a differential run: a serving engine (borrowed; must
/// outlive the driver) plus the fleet config it decides under.
struct FleetArmSpec {
  /// Report label. Must be non-empty and free of whitespace (it is a token
  /// in the paired-report text format); unique across the run's arms.
  std::string name;
  const DecisionEngine* engine = nullptr;
  FleetConfig config;
  /// Checksum of the arm's bundle (0 for config-only arms over a shared
  /// bundle) — stamped into the paired report and the per-arm shard
  /// sections.
  uint32_t bundle_checksum = 0;
};

/// \brief One arm's aggregate day outcome inside a paired report. A strict
/// subset of FleetDayReport: no cache counters (cache-mode neutrality), no
/// knapsack threshold (admission replays per arm; the threshold is an
/// arm-config detail, not a comparison axis).
struct AbArmDaySummary {
  std::string name;
  uint32_t checksum = 0;
  int jobs_considered = 0;
  int jobs_with_cut = 0;
  int jobs_admitted = 0;
  double storage_used_bytes = 0.0;
  double total_temp_byte_seconds = 0.0;
  double realized_saving_byte_seconds = 0.0;
  double saving_fraction = 0.0;  ///< realized / total (0 when total == 0)
  double cost = 1.0;             ///< 1 - saving_fraction (the canary metric)
};

/// \brief One decision flip vs arm 0: job `job`'s serialized decision record
/// differs; `stage_flips` counts the stages whose membership in the
/// outermost checkpoint-before set changed (an absent cut = all stages out).
struct AbDecisionFlip {
  size_t job = 0;
  int stage_flips = 0;
};

/// \brief One admission flip vs arm 0: exactly one of the two arms admitted
/// job `job`. `admitted_in_arm` says which way it flipped (true = this arm
/// admitted it and arm 0 did not).
struct AbAdmissionFlip {
  size_t job = 0;
  bool admitted_in_arm = false;
};

/// \brief Arm k's diff against arm 0 (all-zero for k = 0).
struct AbArmDelta {
  int decision_flips = 0;   ///< job slots whose decision records differ
  int admission_flips = 0;  ///< jobs admitted by exactly one of the arms
  std::vector<AbDecisionFlip> flipped_jobs;        ///< ascending job index
  std::vector<AbAdmissionFlip> admission_flipped;  ///< ascending job index
  double saving_delta = 0.0;  ///< arm.saving_fraction - arm0.saving_fraction
  double cost_delta = 0.0;    ///< arm.cost - arm0.cost
};

/// \brief The paired comparison for one day: per-arm summaries plus each
/// arm's delta against arm 0. `deltas` is aligned with `arms` (entry 0 is
/// the trivial self-diff, all zero).
struct AbDayComparison {
  int day = 0;
  int jobs = 0;  ///< day size (all arms decide the same jobs)
  std::vector<AbArmDaySummary> arms;
  std::vector<AbArmDelta> deltas;
};

/// Build the paired comparison for one day from every arm's decide-phase
/// output and replayed report. `specs`, `decisions`, and `reports` are
/// parallel (one entry per arm, >= 1); every day must hold `ctx.jobs->size()`
/// slots. Pure function — this is the consumer the shadow path reuses.
Result<AbDayComparison> BuildAbDayComparison(
    const DayContext& ctx, const std::vector<FleetArmSpec>& specs,
    const std::vector<FleetDayDecisions>& decisions,
    const std::vector<FleetDayReport>& reports);

/// Per-arm-context form: `ctxs` holds one DayContext per arm (all sharing one
/// day index). Scenario arms decide a differently-generated workload, so a
/// job-slot byte diff against arm 0 is meaningless there — decision and
/// admission flips are computed only for arms whose `jobs` pointer *is* arm
/// 0's vector (the harness passes the identical vector for shared-context
/// arms); other arms report zero flips but still carry saving/cost deltas.
/// `jobs` in the result is arm 0's day size.
Result<AbDayComparison> BuildAbDayComparison(
    const std::vector<DayContext>& ctxs, const std::vector<FleetArmSpec>& specs,
    const std::vector<FleetDayDecisions>& decisions,
    const std::vector<FleetDayReport>& reports);

/// Serialize paired day comparisons in the versioned text format above.
/// Doubles print as %.17g, so Parse(Serialize(x)) == x and equal comparisons
/// serialize byte-identically.
std::string SerializeAbReport(const std::vector<AbDayComparison>& days);

/// Strict parse of a paired report occupying the whole string (format
/// version 1); any malformed line, count mismatch, or trailing byte is an
/// error.
Result<std::vector<AbDayComparison>> ParseAbReport(const std::string& text);

/// \brief Runs N arms over shared day contexts and emits paired comparisons.
///
/// Each arm is a full DecisionArm: its own template cache, admission
/// calibration, per-phase scratch arenas, and (when the specs carry
/// namespaced registries) its own metric names. The driver itself owns no
/// day state — callers build one DayContext per day and every arm decides
/// exactly those jobs.
class FleetAbDriver {
 public:
  /// `specs` must hold >= 1 arm with non-null engines and unique,
  /// token-safe names; violations surface as a failed status from every
  /// entry point (same pattern as FleetConfig validation).
  explicit FleetAbDriver(std::vector<FleetArmSpec> specs);

  size_t num_arms() const { return arms_.size(); }
  const FleetArmSpec& spec(size_t k) const { return specs_[k]; }
  DecisionArm& arm(size_t k) { return *arms_[k]; }
  const DecisionArm& arm(size_t k) const { return *arms_[k]; }

  /// Calibrate every arm's admission threshold from one historical day.
  Status Calibrate(const DayContext& history);

  /// Per-arm-context form: arm k calibrates from `histories[k]` (scenario
  /// arms calibrate against their own workload's history).
  Status Calibrate(const std::vector<DayContext>& histories);

  /// \brief One day under every arm: per-arm decisions, per-arm reports
  /// (byte-identical to that arm's standalone run), and the paired
  /// comparison.
  struct AbDayResult {
    AbDayComparison comparison;
    std::vector<FleetDayDecisions> decisions;  ///< per arm
    std::vector<FleetDayReport> reports;       ///< per arm
  };

  /// Decide + replay the day under every arm. Runs each arm's decide phase
  /// (fresh decisions, no cache interaction) and then replays cache +
  /// admission per arm in arrival order — the same decide/replay split a
  /// shard merge uses, so each arm's report is byte-identical to a
  /// standalone FleetDriver::RunDay under that arm's engine and config.
  Result<AbDayResult> RunDay(const DayContext& ctx);

  /// Per-arm-context form: arm k decides + replays `ctxs[k]` (one context
  /// per arm, all sharing one day index). This is how scenario arms run one
  /// day under per-arm workloads; arms passed the identical jobs vector keep
  /// the full flip diff (see BuildAbDayComparison's per-arm-context form).
  Result<AbDayResult> RunDay(const std::vector<DayContext>& ctxs);

  /// Decide phase only, every arm — the per-arm work a shard process
  /// performs (see fleet_shard.h's v3 per-arm sections).
  Result<std::vector<FleetDayDecisions>> DecideDay(const DayContext& ctx) const;

  /// Per-arm-context decide phase: arm k decides `ctxs[k]`.
  Result<std::vector<FleetDayDecisions>> DecideDay(
      const std::vector<DayContext>& ctxs) const;

  /// RunDay with every arm's decide phase replaced by `precomputed`
  /// (parallel to the arms; from DecideDay, possibly in another process).
  Result<AbDayResult> ReplayDay(const DayContext& ctx,
                                const std::vector<FleetDayDecisions>& precomputed);

  /// Per-arm-context replay: arm k replays `precomputed[k]` over `ctxs[k]`.
  Result<AbDayResult> ReplayDay(const std::vector<DayContext>& ctxs,
                                const std::vector<FleetDayDecisions>& precomputed);

 private:
  Status specs_status_;
  std::vector<FleetArmSpec> specs_;
  std::vector<std::unique_ptr<DecisionArm>> arms_;
};

}  // namespace phoebe::core
