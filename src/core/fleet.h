// Fleet driver: the day-level production loop (paper §5.4/§5.5, two-step
// design). For every job submitted in a day it makes the per-job cut
// decision, admits jobs under the global-storage budget with the online
// knapsack, and reports what the fleet realized — the layer the Workload
// Insight Service runs in Figure 4.
//
// The layer is split along the arm/context seam (see DESIGN.md
// "Differential evaluation"):
//
//   * DayContext — everything about the day that is *arm-independent*: the
//     day index, the materialized jobs, and the historic-stats view they
//     were submitted under. One context is built once per day and can drive
//     any number of arms; nothing in it mutates.
//   * DecisionArm — everything *bundle/config-specific*: the const serving
//     engine, the fleet config, the recurring-template decision cache, the
//     admission calibration sample, and the (optionally prefix-namespaced)
//     metrics. An arm is the unit the differential A/B harness replicates
//     (core/fleet_ab.h): N arms over one context decide the same jobs under
//     N models or configs in a single pass.
//   * FleetDriver — the single-arm convenience wrapper (the N=1 case). Its
//     API and reports are byte-identical to the pre-split driver; the whole
//     legacy surface forwards to one owned DecisionArm.
//
// The arm serves from a const DecisionEngine (see core/engine.h): the
// decide path has no access to mutable pipeline state, which is what makes
// both of its parallel forms safe by construction:
//   1. thread-level — the day loop's decision phase runs across a
//      fixed-size thread pool, and a serial admission phase replays the
//      online-knapsack offers in arrival order, so the FleetDayReport is
//      byte-identical for any `FleetConfig::num_threads`;
//   2. process-level — DecideDay computes a day's raw decisions with no
//      shared state at all, and ReplayDay re-runs the day with those
//      precomputed decisions through the *same* cache/admission code path,
//      so N shard processes + a serial merge reproduce the unsharded report
//      byte for byte (see core/fleet_shard.h).
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "core/decision_cache.h"
#include "core/engine.h"
#include "core/evaluate.h"
#include "core/knapsack.h"

namespace phoebe::core {

/// \brief Fleet-level configuration for one day of decisions.
struct FleetConfig {
  Objective objective = Objective::kTempStorage;
  CostSource source = CostSource::kMlStacked;
  /// Global-storage budget for the day, in bytes. Infinite admits everything.
  double storage_budget_bytes = std::numeric_limits<double>::infinity();
  /// Expected number of checkpointable arrivals per day (lambda * T for the
  /// knapsack threshold); <= 0 means "use the calibration sample size".
  double expected_arrivals = 0.0;
  /// Cuts per job for the temp-storage objective (Figure 11; 1 = the classic
  /// single-cut sweep). With multiple cuts the driver reports the DP's
  /// *physical* semantics — each stage's temp data clears at the earliest cut
  /// containing it, and checkpoint bytes are counted once per stage even when
  /// an edge crosses several cuts. This deliberately diverges from the
  /// paper's IP constraint (12), which credits each edge at most once; see
  /// DESIGN.md "Multi-cut semantics" and core_multicut_semantics_test.
  int num_cuts = 1;
  /// Worker threads for the decision phase: 0 = hardware concurrency,
  /// 1 = legacy serial path (no pool is created). Any value yields
  /// byte-identical reports; >1 only changes wall-clock time.
  int num_threads = 1;
  /// Per-template decision cache for recurring instances (off by default;
  /// see core/decision_cache.h). All cache traffic is serialized in arrival
  /// order, so reports stay byte-identical for any num_threads; with
  /// quantize_bps == 0 they are also byte-identical to cache-off runs.
  TemplateCacheConfig template_cache;
  /// Optional observability registry (borrowed; must outlive the driver).
  /// Null = metrics off. Strictly passive: reports are byte-identical with
  /// metrics on or off (core_fleet_metrics_test pins this). Multi-arm
  /// callers pass per-arm `MetricsRegistry::Namespaced` views here so the
  /// arms' engine/fleet metric names never collide.
  obs::MetricsRegistry* metrics = nullptr;

  DecideOptions decide_options() const {
    return DecideOptions{objective, source, num_cuts};
  }

  /// Structural validity of every knob (budget/arrivals not NaN, cut and
  /// thread counts in range, nested TemplateCacheConfig valid). Checked once
  /// at driver construction; every entry point fails fast on the result.
  Status Validate() const;
};

/// \brief Decision and outcome for one job of the day.
struct FleetJobOutcome {
  int64_t job_id = 0;
  cluster::CutSet cut;          ///< outermost cut; empty if not checkpointed
  /// All selected cuts, innermost-first (nested; size 1 unless
  /// FleetConfig::num_cuts > 1 found a better multi-cut plan). Empty iff
  /// `cut` is empty.
  std::vector<cluster::CutSet> cuts;
  bool admitted = false;        ///< passed the budget admission
  double global_bytes = 0.0;    ///< estimated storage (0 if not admitted)
  double predicted_value = 0.0; ///< optimizer objective (estimate-based)
  double realized_value = 0.0;  ///< realized byte-seconds saved (admitted only)
};

/// \brief Aggregate report for the day.
struct FleetDayReport {
  std::vector<FleetJobOutcome> outcomes;  ///< one per input job, same order
  int jobs_considered = 0;
  int jobs_with_cut = 0;
  int jobs_admitted = 0;
  double storage_used_bytes = 0.0;
  double total_temp_byte_seconds = 0.0;     ///< fleet total (all jobs)
  double realized_saving_byte_seconds = 0.0;
  double knapsack_threshold = 0.0;
  /// Template-cache traffic for this day (all zero when the cache is off).
  /// Hits count both reuse of prior-day entries and within-day followers of
  /// a leader instance; misses count the decisions actually computed.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;

  double SavingFraction() const {
    return total_temp_byte_seconds > 0.0
               ? realized_saving_byte_seconds / total_temp_byte_seconds
               : 0.0;
  }

  /// The admitted (outermost) cuts, aligned with the input job vector (empty
  /// CutSet for non-admitted jobs) — ready for
  /// cluster::ClusterSimulator::SimulateTempUsage.
  std::vector<cluster::CutSet> AdmittedCuts() const;
};

/// \brief The decide phase of one day, detached from cache and admission:
/// slot i holds the raw decision for job i, engaged iff the job is eligible
/// (>= 2 stages). This is what a shard process computes and serializes; the
/// merge replays it through ReplayDay.
struct FleetDayDecisions {
  std::vector<std::optional<FleetDecision>> decisions;
};

/// \brief Shared, arm-independent state of one fleet day: the generated
/// jobs and the historic-stats view under which every arm must decide them.
/// Built once per day (workload generation and stats materialization are the
/// expensive arm-independent work) and passed by const reference to every
/// arm — N arms over one context is what guarantees, structurally, that
/// alternatives are costed against *identical* inputs.
///
/// Borrows: `jobs` and `stats` must outlive every arm call made with the
/// context. Nothing in a DayContext ever mutates.
struct DayContext {
  int day = 0;  ///< caller's day index (reporting only; arms never read it)
  const std::vector<workload::JobInstance>* jobs = nullptr;
  const telemetry::HistoricStats* stats = nullptr;

  DayContext() = default;
  DayContext(int d, const std::vector<workload::JobInstance>& j,
             const telemetry::HistoricStats& s)
      : day(d), jobs(&j), stats(&s) {}
};

/// \brief One decision arm: a serving engine plus everything that belongs to
/// it — fleet config, template decision cache, admission calibration, and
/// resolved metric pointers. Arms own all bundle-specific day-loop state, so
/// any number of them can run over one DayContext; each keeps its own cache
/// and its own per-worker DecideScratch arenas (created per decide phase),
/// and admission replays per arm in arrival order.
class DecisionArm {
 public:
  /// \param engine const serving engine (borrowed; must outlive the arm).
  /// The engine's bundle is immutable, so the parallel phase is safe by
  /// construction; just don't re-seat the engine (PhoebePipeline::Train /
  /// Load / set_batch_inference) while an arm call is in flight.
  DecisionArm(const DecisionEngine* engine, FleetConfig config);

  /// Calibrate the admission threshold from a historical day's decisions.
  /// Must be called before RunDay when the budget is finite.
  Status Calibrate(const DayContext& history);

  /// Decide + admit every job of the day (arrival order = vector order).
  ///
  /// With config.template_cache.enabled, the day runs three sub-phases: a
  /// serial arrival-order prepass resolves cache hits and designates the
  /// first instance of each unseen key as that key's *leader*; the parallel
  /// phase computes only leader decisions; the serial admission replay then
  /// inserts leader decisions into the cache and copies them to followers.
  /// Every cache mutation happens in a serial phase in arrival order, so the
  /// report is byte-identical for any num_threads. The cache persists across
  /// RunDay calls on one arm (that is where cross-day hits come from);
  /// Calibrate never consults it.
  Result<FleetDayReport> RunDay(const DayContext& ctx);

  /// Decide phase only: a fresh decision for every eligible job, no cache
  /// interaction, no admission, no arm-state mutation. This is the work a
  /// shard process performs for the days it owns, and the per-arm pass the
  /// A/B harness diffs.
  Result<FleetDayDecisions> DecideDay(const DayContext& ctx) const;

  /// RunDay with the decision phase replaced by `precomputed` (from
  /// DecideDay, possibly in another process). The cache prepass, leader
  /// bookkeeping, admission replay, and every report counter run the same
  /// code RunDay runs, so for decisions produced by an engine+config equal
  /// to this arm's the report is byte-identical to RunDay's — including
  /// cache hit/miss/eviction counts and LRU eviction order.
  Result<FleetDayReport> ReplayDay(const DayContext& ctx,
                                   const FleetDayDecisions& precomputed);

  const FleetConfig& config() const { return config_; }
  const DecisionEngine& engine() const { return *engine_; }

 private:
  friend struct FleetDriverPeer;  // test-only access to resolved metrics

  /// Metric pointers resolved once at construction (null = metrics off).
  /// Phase names match DESIGN.md "Observability"; under a namespaced
  /// registry every name below carries the arm's prefix.
  struct Metrics {
    obs::Histogram* day_seconds = nullptr;        ///< fleet.day.seconds
    obs::Histogram* decide_seconds = nullptr;     ///< fleet.phase.decide.seconds
    obs::Histogram* admission_seconds = nullptr;  ///< fleet.phase.admission.seconds
    obs::Histogram* decide_day_seconds = nullptr; ///< fleet.shard.decide_day.seconds
    obs::Histogram* replay_day_seconds = nullptr; ///< fleet.shard.replay_day.seconds
    obs::Histogram* cache_lookup_seconds = nullptr;
    obs::Histogram* cache_insert_seconds = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* cache_evictions = nullptr;
    obs::Counter* jobs_decided = nullptr;         ///< fleet.decide.jobs
    /// fleet.worker.<w>.jobs — decisions computed by pool worker w. Worker
    /// attribution is scheduling-dependent (telemetry only); the sum equals
    /// fleet.decide.jobs.
    std::vector<obs::Counter*> worker_jobs;
  };

  Result<FleetDayReport> RunDayImpl(const DayContext& ctx,
                                    const FleetDayDecisions* precomputed);

  const DecisionEngine* engine_;
  FleetConfig config_;
  Status config_status_;  ///< FleetConfig::Validate() at construction
  Metrics metrics_;
  std::vector<KnapsackItem> calibration_;
  bool calibrated_ = false;
  TemplateDecisionCache<FleetDecision> template_cache_;
};

/// \brief Runs the per-day decision loop for one arm — the N=1 wrapper kept
/// for every existing single-bundle call site. Pure forwarding over one
/// owned DecisionArm, so reports are byte-identical to the pre-split driver
/// (core_fleet_ab_test pins arm-0-vs-standalone identity).
class FleetDriver {
 public:
  /// \param engine const serving engine (borrowed; must outlive the driver).
  FleetDriver(const DecisionEngine* engine, FleetConfig config)
      : arm_(engine, config) {}

  /// Calibrate the admission threshold from a historical day's decisions.
  /// Must be called before RunDay when the budget is finite.
  Status Calibrate(const std::vector<workload::JobInstance>& history_jobs,
                   const telemetry::HistoricStats& history_stats) {
    return arm_.Calibrate(DayContext(-1, history_jobs, history_stats));
  }

  /// Decide + admit every job of the day. See DecisionArm::RunDay.
  Result<FleetDayReport> RunDay(const std::vector<workload::JobInstance>& jobs,
                                const telemetry::HistoricStats& stats) {
    return arm_.RunDay(DayContext(-1, jobs, stats));
  }

  /// Decide phase only. See DecisionArm::DecideDay.
  Result<FleetDayDecisions> DecideDay(const std::vector<workload::JobInstance>& jobs,
                                      const telemetry::HistoricStats& stats) const {
    return arm_.DecideDay(DayContext(-1, jobs, stats));
  }

  /// RunDay over precomputed decisions. See DecisionArm::ReplayDay.
  Result<FleetDayReport> ReplayDay(const std::vector<workload::JobInstance>& jobs,
                                   const telemetry::HistoricStats& stats,
                                   const FleetDayDecisions& precomputed) {
    return arm_.ReplayDay(DayContext(-1, jobs, stats), precomputed);
  }

  /// The underlying arm (e.g. to run it against an externally built
  /// DayContext alongside other arms).
  DecisionArm& arm() { return arm_; }
  const DecisionArm& arm() const { return arm_; }

 private:
  DecisionArm arm_;
};

}  // namespace phoebe::core
