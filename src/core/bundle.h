// PipelineBundle: the versioned, immutable artifact that separates Phoebe's
// train time from its decide time.
//
// Phoebe is a compile-time optimizer (paper Figure 4): once the stage-cost
// models, the TTL stacker, and the optimizer configuration are trained,
// every job decision is a pure function of (frozen artifacts, job DAG,
// features). The bundle is that frozen state as one value: the full
// PipelineConfig (so the exact predictor architecture is reconstructed on
// load), the three trained model stacks, and the inference-time historic
// statistics snapshot. `phoebe train --out` serializes it to a single file;
// `DecisionEngine` serves decisions from a loaded bundle through const
// methods only — the compiler, not a comment, enforces const-after-Train.
//
// File format (text, single file):
//
//   | section   | contents                                                 |
//   |-----------|----------------------------------------------------------|
//   | magic     | `PHOEBEBUNDLE <format-version>`                          |
//   | checksum  | `checksum <crc32 hex>` over every byte after this line   |
//   | config    | `config <nbytes>` + key/value lines for every            |
//   |           | PipelineConfig field (predictor kinds, feature groups,   |
//   |           | GBDT/MLP hyperparameters, TTL stacker, delta)            |
//   | exec      | `section exec <nbytes>` + StageCostPredictor::ToText     |
//   | size      | `section size <nbytes>` + StageCostPredictor::ToText     |
//   | ttl       | `section ttl <nbytes>` + TtlEstimator::ToText            |
//   | stats     | `section stats <nbytes>` + HistoricStats::ToText         |
//   | trailer   | `end_bundle`                                             |
//
// Sections are byte-length framed, every numeric token goes through the
// strict parsers in common/strings.h, and the checksum gates the payload, so
// a truncated or corrupted file surfaces as a clean Status error
// (fuzz_bundle_test pins that contract under ASan/UBSan). Doubles are
// serialized with %.17g, which round-trips bit-exactly — a loaded bundle
// decides bit-identically to the in-memory pipeline that saved it
// (core_bundle_test pins this for every ModelKind).
#pragma once

#include <memory>
#include <string>

#include "core/predictors.h"
#include "core/ttl.h"
#include "obs/metrics.h"
#include "telemetry/repository.h"

namespace phoebe::core {

/// \brief Which cost inputs feed the optimizer — the Figure 12/14 variants.
enum class CostSource {
  kTruth,               ///< Optimal: true outputs/TTL/schedule (offline oracle)
  kOptimizerEstimates,  ///< OP: raw query-optimizer estimates + simulator
  kConstant,            ///< OCC: constant per-stage costs + simulator
  kMlSimulator,         ///< OML: ML cost models + simulator TTL
  kMlStacked,           ///< OMLS: ML cost models + stacking-model TTL
};

/// \brief Checkpoint objective to optimize.
enum class Objective {
  kTempStorage,  ///< free temp data on hotspots (OptCheck1)
  kRecovery,     ///< fast restart of failed jobs (OptCheck2)
};

/// \brief Pipeline configuration.
struct PipelineConfig {
  PredictorConfig exec_predictor;
  PredictorConfig size_predictor;
  TtlConfig ttl;
  /// Per-task failure probability delta ~ E[task runtime] / MTBF (eq. 31).
  double delta = 0.0005;
};

/// \brief Immutable trained state of one Phoebe pipeline.
///
/// A bundle never mutates after construction: every accessor is const and
/// returns const references, so any number of DecisionEngine views (across
/// threads or, via SaveToFile/LoadFromFile, across processes) can serve from
/// one bundle concurrently. An *untrained* bundle (first constructor) exists
/// so the non-ML cost sources (kTruth/kOptimizerEstimates/kConstant) work
/// without training; it cannot be serialized.
class PipelineBundle {
 public:
  static constexpr int kFormatVersion = 1;
  static constexpr const char* kMagic = "PHOEBEBUNDLE";

  /// Untrained bundle: fresh (empty) components under `config`.
  explicit PipelineBundle(PipelineConfig config);

  /// Trained bundle taking ownership of trained components. `checksum()` is
  /// computed eagerly from the serialized form.
  PipelineBundle(PipelineConfig config, std::unique_ptr<StageCostPredictor> exec,
                 std::unique_ptr<StageCostPredictor> size,
                 std::unique_ptr<TtlEstimator> ttl, telemetry::HistoricStats stats);

  PipelineBundle(const PipelineBundle&) = delete;
  PipelineBundle& operator=(const PipelineBundle&) = delete;

  bool trained() const { return trained_; }
  const PipelineConfig& config() const { return config_; }
  const StageCostPredictor& exec_predictor() const { return *exec_; }
  const StageCostPredictor& size_predictor() const { return *size_; }
  const TtlEstimator& ttl_estimator() const { return *ttl_; }
  const telemetry::HistoricStats& stats() const { return stats_; }
  double delta() const { return config_.delta; }

  /// CRC-32 of the serialized payload — the same value the `checksum` line
  /// of a saved file carries. Identifies "the same trained state" across
  /// processes (the shard protocol embeds it in every shard blob). 0 when
  /// untrained.
  uint32_t checksum() const { return checksum_; }

  /// Serialize to the single-file text format. Fails when untrained.
  Result<std::string> ToText() const;
  /// Parse + verify a serialized bundle: magic, format version, checksum,
  /// section framing, then the model/stats payloads. Any malformed input
  /// yields an error Status (never a crash; see fuzz_bundle_test).
  static Result<std::shared_ptr<const PipelineBundle>> FromText(const std::string& text);

  /// Save/load the serialized form. The save is atomic (temp file + rename),
  /// so a reader racing the write — a serve daemon reloading the path a
  /// lifecycle promotion just replaced — sees the old bytes or the new
  /// bytes, never a truncated file. `metrics` (optional, borrowed) records
  /// bundle.save/load.seconds and bundle.file.bytes; null = metrics off.
  Status SaveToFile(const std::string& path,
                    obs::MetricsRegistry* metrics = nullptr) const;
  static Result<std::shared_ptr<const PipelineBundle>> LoadFromFile(
      const std::string& path, obs::MetricsRegistry* metrics = nullptr);

  /// A copy of this bundle with batched inference toggled on every model
  /// stack — the only config change that does not invalidate trained state
  /// (both paths are bit-identical; see DESIGN.md "Inference performance").
  /// Trained state round-trips through the serialized form.
  Result<std::shared_ptr<const PipelineBundle>> WithBatchInference(bool on) const;

 private:
  PipelineConfig config_;
  std::unique_ptr<StageCostPredictor> exec_;
  std::unique_ptr<StageCostPredictor> size_;
  std::unique_ptr<TtlEstimator> ttl_;
  telemetry::HistoricStats stats_;
  bool trained_ = false;
  uint32_t checksum_ = 0;
};

}  // namespace phoebe::core
