#include "core/features.h"

#include <cmath>

#include "common/strings.h"

namespace phoebe::core {

StageFeaturizer::StageFeaturizer(FeatureConfig config)
    : config_(config), hasher_(config.text_dims, 3, 4), names_(BuildFeatureNames()) {}

std::vector<std::string> StageFeaturizer::BuildFeatureNames() const {
  std::vector<std::string> names;
  if (config_.query_optimizer) {
    names.insert(names.end(),
                 {"log_est_cost", "log_est_input_cardinality", "log_est_exclusive_cost",
                  "log_est_cardinality", "log_est_output_bytes", "log_num_tasks"});
  }
  if (config_.historic) {
    names.insert(names.end(), {"log_hist_exclusive_time", "log_hist_output_bytes",
                               "log_hist_support", "hist_exact"});
  }
  if (config_.stage_type_id) names.push_back("stage_type_id");
  if (config_.text) {
    for (size_t d = 0; d < config_.text_dims; ++d)
      names.push_back(StrFormat("jobname_h%zu", d));
    for (size_t d = 0; d < config_.text_dims; ++d)
      names.push_back(StrFormat("input_h%zu", d));
  }
  return names;
}

double StageFeaturizer::CompressTarget(double y) { return std::log1p(std::max(0.0, y)); }
double StageFeaturizer::ExpandTarget(double y_log) { return std::expm1(y_log); }

std::vector<double> StageFeaturizer::Features(const workload::JobInstance& job,
                                              int stage_id,
                                              const telemetry::HistoricStats& stats) const {
  std::vector<double> row;
  FeaturesInto(job, stage_id, stats, &row);
  return row;
}

void StageFeaturizer::FeaturesInto(const workload::JobInstance& job, int stage_id,
                                   const telemetry::HistoricStats& stats,
                                   std::vector<double>* row) const {
  const size_t si = static_cast<size_t>(stage_id);
  PHOEBE_CHECK(si < job.graph.num_stages());
  const workload::StageEstimates& e = job.est[si];
  const dag::Stage& s = job.graph.stage(stage_id);

  row->clear();
  auto lg = [](double v) { return std::log1p(std::max(0.0, v)); };

  if (config_.query_optimizer) {
    row->push_back(lg(e.est_cost));
    row->push_back(lg(e.est_input_cardinality));
    row->push_back(lg(e.est_exclusive_cost));
    row->push_back(lg(e.est_cardinality));
    row->push_back(lg(e.est_output_bytes));
    row->push_back(lg(static_cast<double>(s.num_tasks)));
  }
  if (config_.historic) {
    telemetry::HistoricStats::Entry h = stats.Get(job.template_id, s.stage_type);
    row->push_back(lg(h.avg_exclusive_time));
    row->push_back(lg(h.avg_output_bytes));
    row->push_back(lg(static_cast<double>(h.support)));
    row->push_back(stats.HasExact(job.template_id, s.stage_type) ? 1.0 : 0.0);
  }
  if (config_.stage_type_id) row->push_back(static_cast<double>(s.stage_type));
  if (config_.text) {
    hasher_.EmbedInto(job.job_name, row);
    hasher_.EmbedInto(job.norm_input_name, row);
  }
}

ml::FeatureMatrix StageFeaturizer::JobMatrix(const workload::JobInstance& job,
                                             const telemetry::HistoricStats& stats) const {
  ml::FeatureMatrix m;
  std::vector<double> row;
  JobMatrixInto(job, stats, &row, &m);
  return m;
}

void StageFeaturizer::JobMatrixInto(const workload::JobInstance& job,
                                    const telemetry::HistoricStats& stats,
                                    std::vector<double>* row,
                                    ml::FeatureMatrix* m) const {
  // Install the schema once; afterwards only the row storage is recycled.
  if (m->num_features() != names_.size()) *m = ml::FeatureMatrix(names_);
  m->ClearRows();
  for (size_t si = 0; si < job.graph.num_stages(); ++si) {
    FeaturesInto(job, static_cast<int>(si), stats, row);
    m->AddRow(*row);
  }
}

double StageFeaturizer::TargetValue(const workload::JobInstance& job, int stage_id,
                                    Target target) {
  const workload::StageTruth& t = job.truth[static_cast<size_t>(stage_id)];
  switch (target) {
    case Target::kExecSeconds: return t.exec_seconds;
    case Target::kOutputBytes: return t.output_bytes;
  }
  return 0.0;
}

ml::Dataset StageFeaturizer::BuildDataset(const std::vector<workload::JobInstance>& jobs,
                                          const telemetry::HistoricStats& stats,
                                          Target target) const {
  ml::Dataset ds;
  ds.x = ml::FeatureMatrix(FeatureNames());
  for (const workload::JobInstance& job : jobs) {
    for (size_t si = 0; si < job.graph.num_stages(); ++si) {
      std::vector<double> row = Features(job, static_cast<int>(si), stats);
      ds.x.AddRow(row);
      ds.y.push_back(CompressTarget(TargetValue(job, static_cast<int>(si), target)));
    }
  }
  return ds;
}

}  // namespace phoebe::core
