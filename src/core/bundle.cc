#include "core/bundle.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/checksum.h"
#include "common/strings.h"

namespace phoebe::core {

namespace {

// ---------------------------------------------------------------------------
// Config section: one "key value" line per PipelineConfig field. The key set
// is exact for format version 1 — an unknown or missing key is a parse
// error, so config drift needs a version bump instead of silently loading.
// ---------------------------------------------------------------------------

void AppendKv(std::string* out, const std::string& key, const std::string& value) {
  *out += key;
  *out += ' ';
  *out += value;
  *out += '\n';
}

std::string JoinInts(const std::vector<int>& v) {
  if (v.empty()) return "-";
  std::vector<std::string> pieces;
  pieces.reserve(v.size());
  for (int x : v) pieces.push_back(StrFormat("%d", x));
  return Join(pieces, ",");
}

void AppendGbdt(std::string* out, const std::string& p, const ml::GbdtParams& g) {
  AppendKv(out, p + ".num_trees", StrFormat("%d", g.num_trees));
  AppendKv(out, p + ".num_leaves", StrFormat("%d", g.num_leaves));
  AppendKv(out, p + ".learning_rate", StrFormat("%.17g", g.learning_rate));
  AppendKv(out, p + ".max_bins", StrFormat("%d", g.max_bins));
  AppendKv(out, p + ".min_data_in_leaf", StrFormat("%d", g.min_data_in_leaf));
  AppendKv(out, p + ".lambda", StrFormat("%.17g", g.lambda));
  AppendKv(out, p + ".min_gain", StrFormat("%.17g", g.min_gain));
  AppendKv(out, p + ".subsample", StrFormat("%.17g", g.subsample));
  AppendKv(out, p + ".feature_fraction", StrFormat("%.17g", g.feature_fraction));
  AppendKv(out, p + ".seed", StrFormat("%lld", static_cast<long long>(g.seed)));
  AppendKv(out, p + ".early_stopping_rounds", StrFormat("%d", g.early_stopping_rounds));
  AppendKv(out, p + ".validation_fraction", StrFormat("%.17g", g.validation_fraction));
  AppendKv(out, p + ".objective", StrFormat("%d", static_cast<int>(g.objective)));
  AppendKv(out, p + ".quantile_alpha", StrFormat("%.17g", g.quantile_alpha));
}

void AppendMlp(std::string* out, const std::string& p, const ml::MlpParams& m) {
  AppendKv(out, p + ".hidden", JoinInts(m.hidden));
  AppendKv(out, p + ".epochs", StrFormat("%d", m.epochs));
  AppendKv(out, p + ".batch_size", StrFormat("%d", m.batch_size));
  AppendKv(out, p + ".learning_rate", StrFormat("%.17g", m.learning_rate));
  AppendKv(out, p + ".weight_decay", StrFormat("%.17g", m.weight_decay));
  AppendKv(out, p + ".seed", StrFormat("%lld", static_cast<long long>(m.seed)));
  AppendKv(out, p + ".standardize", m.standardize ? "1" : "0");
}

void AppendPredictor(std::string* out, const std::string& p, const PredictorConfig& c) {
  AppendKv(out, p + ".kind", StrFormat("%d", static_cast<int>(c.kind)));
  AppendKv(out, p + ".min_samples_per_type", StrFormat("%d", c.min_samples_per_type));
  AppendKv(out, p + ".batch_inference", c.batch_inference ? "1" : "0");
  AppendKv(out, p + ".features.query_optimizer", c.features.query_optimizer ? "1" : "0");
  AppendKv(out, p + ".features.historic", c.features.historic ? "1" : "0");
  AppendKv(out, p + ".features.text", c.features.text ? "1" : "0");
  AppendKv(out, p + ".features.stage_type_id", c.features.stage_type_id ? "1" : "0");
  AppendKv(out, p + ".features.text_dims", StrFormat("%zu", c.features.text_dims));
  AppendGbdt(out, p + ".gbdt", c.gbdt);
  AppendMlp(out, p + ".mlp", c.mlp);
}

std::string SerializeConfig(const PipelineConfig& cfg) {
  std::string out;
  AppendKv(&out, "delta", StrFormat("%.17g", cfg.delta));
  AppendPredictor(&out, "exec", cfg.exec_predictor);
  AppendPredictor(&out, "size", cfg.size_predictor);
  AppendGbdt(&out, "ttl.gbdt", cfg.ttl.gbdt);
  AppendKv(&out, "ttl.min_samples_per_type",
           StrFormat("%d", cfg.ttl.min_samples_per_type));
  AppendKv(&out, "ttl.batch_inference", cfg.ttl.batch_inference ? "1" : "0");
  return out;
}

/// Key/value view of a parsed config section with strict typed getters.
/// Tracks which keys were consumed so leftovers are rejected.
class ConfigMap {
 public:
  static Result<ConfigMap> Parse(const std::string& text) {
    ConfigMap m;
    for (const std::string& line : Split(text, '\n')) {
      if (line.empty()) continue;
      size_t sp = line.find(' ');
      if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
        return Status::InvalidArgument("bundle config: malformed line '" + line + "'");
      }
      std::string key = line.substr(0, sp);
      std::string value = line.substr(sp + 1);
      if (!m.kv_.emplace(std::move(key), std::move(value)).second) {
        return Status::InvalidArgument("bundle config: duplicate key in '" + line + "'");
      }
    }
    return m;
  }

  Result<std::string> Raw(const std::string& key) {
    auto it = kv_.find(key);
    if (it == kv_.end()) {
      return Status::InvalidArgument("bundle config: missing key '" + key + "'");
    }
    used_.insert(key);
    return it->second;
  }

  Result<int> Int(const std::string& key) {
    PHOEBE_ASSIGN_OR_RETURN(std::string raw, Raw(key));
    int32_t v = 0;
    if (!ParseInt32(raw, &v).ok()) {
      return Status::InvalidArgument("bundle config: bad int for '" + key + "'");
    }
    return static_cast<int>(v);
  }

  Result<uint64_t> Seed(const std::string& key) {
    PHOEBE_ASSIGN_OR_RETURN(std::string raw, Raw(key));
    int64_t v = 0;
    if (!ParseInt64(raw, &v).ok() || v < 0) {
      return Status::InvalidArgument("bundle config: bad seed for '" + key + "'");
    }
    return static_cast<uint64_t>(v);
  }

  Result<double> Double(const std::string& key) {
    PHOEBE_ASSIGN_OR_RETURN(std::string raw, Raw(key));
    double v = 0.0;
    if (!ParseFiniteDouble(raw, &v).ok()) {
      return Status::InvalidArgument("bundle config: bad double for '" + key + "'");
    }
    return v;
  }

  Result<bool> Bool(const std::string& key) {
    PHOEBE_ASSIGN_OR_RETURN(int v, Int(key));
    if (v != 0 && v != 1) {
      return Status::InvalidArgument("bundle config: bad bool for '" + key + "'");
    }
    return v == 1;
  }

  Status CheckAllUsed() const {
    for (const auto& [key, value] : kv_) {
      if (!used_.count(key)) {
        return Status::InvalidArgument("bundle config: unknown key '" + key + "'");
      }
    }
    return Status::OK();
  }

 private:
  std::map<std::string, std::string> kv_;
  std::set<std::string> used_;
};

Status ParseGbdt(ConfigMap& m, const std::string& p, ml::GbdtParams* g) {
  PHOEBE_ASSIGN_OR_RETURN(g->num_trees, m.Int(p + ".num_trees"));
  PHOEBE_ASSIGN_OR_RETURN(g->num_leaves, m.Int(p + ".num_leaves"));
  PHOEBE_ASSIGN_OR_RETURN(g->learning_rate, m.Double(p + ".learning_rate"));
  PHOEBE_ASSIGN_OR_RETURN(g->max_bins, m.Int(p + ".max_bins"));
  PHOEBE_ASSIGN_OR_RETURN(g->min_data_in_leaf, m.Int(p + ".min_data_in_leaf"));
  PHOEBE_ASSIGN_OR_RETURN(g->lambda, m.Double(p + ".lambda"));
  PHOEBE_ASSIGN_OR_RETURN(g->min_gain, m.Double(p + ".min_gain"));
  PHOEBE_ASSIGN_OR_RETURN(g->subsample, m.Double(p + ".subsample"));
  PHOEBE_ASSIGN_OR_RETURN(g->feature_fraction, m.Double(p + ".feature_fraction"));
  PHOEBE_ASSIGN_OR_RETURN(g->seed, m.Seed(p + ".seed"));
  PHOEBE_ASSIGN_OR_RETURN(g->early_stopping_rounds, m.Int(p + ".early_stopping_rounds"));
  PHOEBE_ASSIGN_OR_RETURN(g->validation_fraction, m.Double(p + ".validation_fraction"));
  PHOEBE_ASSIGN_OR_RETURN(int objective, m.Int(p + ".objective"));
  if (objective < 0 || objective > static_cast<int>(ml::GbdtObjective::kQuantile)) {
    return Status::InvalidArgument("bundle config: bad gbdt objective");
  }
  g->objective = static_cast<ml::GbdtObjective>(objective);
  PHOEBE_ASSIGN_OR_RETURN(g->quantile_alpha, m.Double(p + ".quantile_alpha"));
  return Status::OK();
}

Status ParseMlp(ConfigMap& m, const std::string& p, ml::MlpParams* out) {
  PHOEBE_ASSIGN_OR_RETURN(std::string hidden, m.Raw(p + ".hidden"));
  out->hidden.clear();
  if (hidden != "-") {
    for (const std::string& piece : Split(hidden, ',')) {
      int32_t width = 0;
      if (!ParseInt32(piece, &width).ok() || width <= 0) {
        return Status::InvalidArgument("bundle config: bad mlp hidden widths");
      }
      out->hidden.push_back(width);
    }
  }
  PHOEBE_ASSIGN_OR_RETURN(out->epochs, m.Int(p + ".epochs"));
  PHOEBE_ASSIGN_OR_RETURN(out->batch_size, m.Int(p + ".batch_size"));
  PHOEBE_ASSIGN_OR_RETURN(out->learning_rate, m.Double(p + ".learning_rate"));
  PHOEBE_ASSIGN_OR_RETURN(out->weight_decay, m.Double(p + ".weight_decay"));
  PHOEBE_ASSIGN_OR_RETURN(out->seed, m.Seed(p + ".seed"));
  PHOEBE_ASSIGN_OR_RETURN(out->standardize, m.Bool(p + ".standardize"));
  return Status::OK();
}

Status ParsePredictor(ConfigMap& m, const std::string& p, PredictorConfig* c) {
  PHOEBE_ASSIGN_OR_RETURN(int kind, m.Int(p + ".kind"));
  if (kind < 0 || kind > static_cast<int>(ModelKind::kMlpGeneral)) {
    return Status::InvalidArgument("bundle config: bad model kind");
  }
  c->kind = static_cast<ModelKind>(kind);
  PHOEBE_ASSIGN_OR_RETURN(c->min_samples_per_type, m.Int(p + ".min_samples_per_type"));
  PHOEBE_ASSIGN_OR_RETURN(c->batch_inference, m.Bool(p + ".batch_inference"));
  PHOEBE_ASSIGN_OR_RETURN(c->features.query_optimizer,
                          m.Bool(p + ".features.query_optimizer"));
  PHOEBE_ASSIGN_OR_RETURN(c->features.historic, m.Bool(p + ".features.historic"));
  PHOEBE_ASSIGN_OR_RETURN(c->features.text, m.Bool(p + ".features.text"));
  PHOEBE_ASSIGN_OR_RETURN(c->features.stage_type_id,
                          m.Bool(p + ".features.stage_type_id"));
  PHOEBE_ASSIGN_OR_RETURN(int text_dims, m.Int(p + ".features.text_dims"));
  if (text_dims < 1) return Status::InvalidArgument("bundle config: bad text_dims");
  c->features.text_dims = static_cast<size_t>(text_dims);
  PHOEBE_RETURN_NOT_OK(ParseGbdt(m, p + ".gbdt", &c->gbdt));
  PHOEBE_RETURN_NOT_OK(ParseMlp(m, p + ".mlp", &c->mlp));
  return Status::OK();
}

Result<PipelineConfig> ParseConfig(const std::string& text) {
  PHOEBE_ASSIGN_OR_RETURN(ConfigMap m, ConfigMap::Parse(text));
  PipelineConfig cfg;
  PHOEBE_ASSIGN_OR_RETURN(cfg.delta, m.Double("delta"));
  PHOEBE_RETURN_NOT_OK(ParsePredictor(m, "exec", &cfg.exec_predictor));
  PHOEBE_RETURN_NOT_OK(ParsePredictor(m, "size", &cfg.size_predictor));
  PHOEBE_RETURN_NOT_OK(ParseGbdt(m, "ttl.gbdt", &cfg.ttl.gbdt));
  PHOEBE_ASSIGN_OR_RETURN(cfg.ttl.min_samples_per_type,
                          m.Int("ttl.min_samples_per_type"));
  PHOEBE_ASSIGN_OR_RETURN(cfg.ttl.batch_inference, m.Bool("ttl.batch_inference"));
  PHOEBE_RETURN_NOT_OK(m.CheckAllUsed());
  return cfg;
}

// ---------------------------------------------------------------------------
// Byte-length-framed section reader over the raw file text.
// ---------------------------------------------------------------------------

class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ >= text_.size(); }

  /// Next line without its newline. Fails at end of input.
  Result<std::string> ReadLine() {
    if (AtEnd()) return Status::InvalidArgument("bundle: unexpected end of file");
    size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos) {
      return Status::InvalidArgument("bundle: missing newline (truncated file)");
    }
    std::string line = text_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return line;
  }

  /// Exactly `n` payload bytes followed by one separator newline.
  Result<std::string> ReadBytes(size_t n) {
    if (n > text_.size() - pos_) {
      return Status::InvalidArgument("bundle: section length exceeds file size");
    }
    std::string payload = text_.substr(pos_, n);
    pos_ += n;
    if (AtEnd() || text_[pos_] != '\n') {
      return Status::InvalidArgument("bundle: section not newline-terminated");
    }
    ++pos_;
    return payload;
  }

  /// A `section <name> <nbytes>` header + its payload.
  Result<std::string> ReadSection(const std::string& name) {
    PHOEBE_ASSIGN_OR_RETURN(std::string header, ReadLine());
    std::vector<std::string> pieces = Split(header, ' ');
    int64_t n = 0;
    if (pieces.size() != 3 || pieces[0] != "section" || pieces[1] != name ||
        !ParseInt64(pieces[2], &n).ok() || n < 0) {
      return Status::InvalidArgument("bundle: expected 'section " + name +
                                     " <nbytes>', got '" + header + "'");
    }
    return ReadBytes(static_cast<size_t>(n));
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

void AppendSection(std::string* out, const std::string& name,
                   const std::string& payload) {
  *out += StrFormat("section %s %zu\n", name.c_str(), payload.size());
  *out += payload;
  *out += '\n';
}

// Atomic publish: write to a sibling temp file, then rename over the target.
// Concurrent readers (a serve daemon reloading on SIGHUP, a lifecycle run
// promoting into the same path the daemon watches) see either the old bundle
// or the new one, never a half-written file.
Status WriteFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary);
    if (!f) return Status::IoError("cannot open for write: " + tmp);
    f << content;
    if (!f.good()) return Status::IoError("write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open for read: " + path);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

}  // namespace

PipelineBundle::PipelineBundle(PipelineConfig config) : config_(std::move(config)) {
  exec_ = std::make_unique<StageCostPredictor>(config_.exec_predictor,
                                               Target::kExecSeconds);
  size_ = std::make_unique<StageCostPredictor>(config_.size_predictor,
                                               Target::kOutputBytes);
  ttl_ = std::make_unique<TtlEstimator>(config_.ttl);
}

PipelineBundle::PipelineBundle(PipelineConfig config,
                               std::unique_ptr<StageCostPredictor> exec,
                               std::unique_ptr<StageCostPredictor> size,
                               std::unique_ptr<TtlEstimator> ttl,
                               telemetry::HistoricStats stats)
    : config_(std::move(config)),
      exec_(std::move(exec)),
      size_(std::move(size)),
      ttl_(std::move(ttl)),
      stats_(std::move(stats)),
      trained_(true) {
  PHOEBE_CHECK(exec_ && size_ && ttl_);
  PHOEBE_CHECK(exec_->trained() && size_->trained() && ttl_->trained());
  // The payload is everything the checksum line guards; computing it here
  // makes checksum() a stable identity for "this trained state" that shard
  // blobs can embed without ever writing the bundle to disk.
  std::string payload;
  AppendSection(&payload, "config", SerializeConfig(config_));
  AppendSection(&payload, "exec", exec_->ToText());
  AppendSection(&payload, "size", size_->ToText());
  AppendSection(&payload, "ttl", ttl_->ToText());
  AppendSection(&payload, "stats", stats_.ToText());
  payload += "end_bundle\n";
  checksum_ = Crc32(payload);
}

Result<std::string> PipelineBundle::ToText() const {
  if (!trained_) {
    return Status::FailedPrecondition("cannot serialize an untrained bundle");
  }
  std::string payload;
  AppendSection(&payload, "config", SerializeConfig(config_));
  AppendSection(&payload, "exec", exec_->ToText());
  AppendSection(&payload, "size", size_->ToText());
  AppendSection(&payload, "ttl", ttl_->ToText());
  AppendSection(&payload, "stats", stats_.ToText());
  payload += "end_bundle\n";

  std::string out = StrFormat("%s %d\n", kMagic, kFormatVersion);
  out += StrFormat("checksum %08x\n", Crc32(payload));
  out += payload;
  return out;
}

Result<std::shared_ptr<const PipelineBundle>> PipelineBundle::FromText(
    const std::string& text) {
  Reader r(text);

  PHOEBE_ASSIGN_OR_RETURN(std::string magic_line, r.ReadLine());
  {
    std::vector<std::string> pieces = Split(magic_line, ' ');
    if (pieces.size() != 2 || pieces[0] != kMagic) {
      return Status::InvalidArgument("not a phoebe bundle (bad magic)");
    }
    int32_t version = 0;
    if (!ParseInt32(pieces[1], &version).ok()) {
      return Status::InvalidArgument("bundle: malformed format version");
    }
    if (version != kFormatVersion) {
      return Status::InvalidArgument(
          StrFormat("unsupported bundle format version %d (expected %d)", version,
                    kFormatVersion));
    }
  }

  PHOEBE_ASSIGN_OR_RETURN(std::string checksum_line, r.ReadLine());
  {
    std::vector<std::string> pieces = Split(checksum_line, ' ');
    uint32_t stored = 0;
    if (pieces.size() != 2 || pieces[0] != "checksum" ||
        !ParseHexU32(pieces[1], &stored).ok()) {
      return Status::InvalidArgument("bundle: malformed checksum line");
    }
    uint32_t actual = Crc32(text.data() + r.pos(), text.size() - r.pos());
    if (actual != stored) {
      return Status::InvalidArgument(
          StrFormat("bundle checksum mismatch: stored %08x, computed %08x "
                    "(corrupt or truncated file)",
                    stored, actual));
    }
  }

  PHOEBE_ASSIGN_OR_RETURN(std::string config_text, r.ReadSection("config"));
  PHOEBE_ASSIGN_OR_RETURN(PipelineConfig config, ParseConfig(config_text));

  auto exec = std::make_unique<StageCostPredictor>(config.exec_predictor,
                                                   Target::kExecSeconds);
  auto size = std::make_unique<StageCostPredictor>(config.size_predictor,
                                                   Target::kOutputBytes);
  auto ttl = std::make_unique<TtlEstimator>(config.ttl);

  PHOEBE_ASSIGN_OR_RETURN(std::string exec_text, r.ReadSection("exec"));
  PHOEBE_RETURN_NOT_OK(exec->LoadFromText(exec_text));
  PHOEBE_ASSIGN_OR_RETURN(std::string size_text, r.ReadSection("size"));
  PHOEBE_RETURN_NOT_OK(size->LoadFromText(size_text));
  PHOEBE_ASSIGN_OR_RETURN(std::string ttl_text, r.ReadSection("ttl"));
  PHOEBE_RETURN_NOT_OK(ttl->LoadFromText(ttl_text));
  PHOEBE_ASSIGN_OR_RETURN(std::string stats_text, r.ReadSection("stats"));
  PHOEBE_ASSIGN_OR_RETURN(telemetry::HistoricStats stats,
                          telemetry::HistoricStats::FromText(stats_text));

  PHOEBE_ASSIGN_OR_RETURN(std::string trailer, r.ReadLine());
  if (trailer != "end_bundle") {
    return Status::InvalidArgument("bundle: missing end_bundle trailer");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("bundle: trailing bytes after end_bundle");
  }

  return std::shared_ptr<const PipelineBundle>(
      new PipelineBundle(std::move(config), std::move(exec), std::move(size),
                         std::move(ttl), std::move(stats)));
}

Status PipelineBundle::SaveToFile(const std::string& path,
                                  obs::MetricsRegistry* metrics) const {
  obs::ScopedTimer timer(
      metrics != nullptr ? metrics->histogram("bundle.save.seconds") : nullptr);
  PHOEBE_ASSIGN_OR_RETURN(std::string text, ToText());
  if (metrics != nullptr) {
    metrics->gauge("bundle.file.bytes")->Set(static_cast<double>(text.size()));
  }
  return WriteFile(path, text);
}

Result<std::shared_ptr<const PipelineBundle>> PipelineBundle::LoadFromFile(
    const std::string& path, obs::MetricsRegistry* metrics) {
  obs::ScopedTimer timer(
      metrics != nullptr ? metrics->histogram("bundle.load.seconds") : nullptr);
  PHOEBE_ASSIGN_OR_RETURN(std::string text, ReadWholeFile(path));
  if (metrics != nullptr) {
    metrics->gauge("bundle.file.bytes")->Set(static_cast<double>(text.size()));
  }
  return FromText(text);
}

Result<std::shared_ptr<const PipelineBundle>> PipelineBundle::WithBatchInference(
    bool on) const {
  PipelineConfig cfg = config_;
  cfg.exec_predictor.batch_inference = on;
  cfg.size_predictor.batch_inference = on;
  cfg.ttl.batch_inference = on;
  if (!trained_) {
    return std::shared_ptr<const PipelineBundle>(new PipelineBundle(std::move(cfg)));
  }
  auto exec = std::make_unique<StageCostPredictor>(cfg.exec_predictor,
                                                   Target::kExecSeconds);
  auto size = std::make_unique<StageCostPredictor>(cfg.size_predictor,
                                                   Target::kOutputBytes);
  auto ttl = std::make_unique<TtlEstimator>(cfg.ttl);
  PHOEBE_RETURN_NOT_OK(exec->LoadFromText(exec_->ToText()));
  PHOEBE_RETURN_NOT_OK(size->LoadFromText(size_->ToText()));
  PHOEBE_RETURN_NOT_OK(ttl->LoadFromText(ttl_->ToText()));
  return std::shared_ptr<const PipelineBundle>(
      new PipelineBundle(std::move(cfg), std::move(exec), std::move(size),
                         std::move(ttl), stats_));
}

}  // namespace phoebe::core
