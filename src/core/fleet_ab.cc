#include "core/fleet_ab.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/strings.h"
#include "core/fleet_shard.h"

namespace phoebe::core {

namespace {

constexpr const char* kMagic = "phoebe_ab_report";
constexpr int kFormatVersion = 1;

/// Line cursor over the report text; every line must end in '\n' (a missing
/// final newline is a truncation error, same convention as the shard blob).
class LineReader {
 public:
  explicit LineReader(const std::string& text) : text_(text) {}

  Result<std::string> Next() {
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of ab report");
    }
    size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos) {
      return Status::InvalidArgument("ab report truncated (missing newline)");
    }
    std::string line = text_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return line;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

bool TokenSafe(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

Status ValidateSpecs(const std::vector<FleetArmSpec>& specs) {
  if (specs.empty()) {
    return Status::InvalidArgument("an A/B run needs at least one arm");
  }
  std::set<std::string> names;
  for (size_t k = 0; k < specs.size(); ++k) {
    if (specs[k].engine == nullptr) {
      return Status::InvalidArgument(
          StrFormat("arm %zu has no engine", k));
    }
    if (!TokenSafe(specs[k].name)) {
      return Status::InvalidArgument(StrFormat(
          "arm %zu name must be non-empty and whitespace-free", k));
    }
    if (!names.insert(specs[k].name).second) {
      return Status::InvalidArgument("duplicate arm name: " + specs[k].name);
    }
  }
  return Status::OK();
}

/// Stages whose membership in the outermost checkpoint-before set differs;
/// an absent cut means no stage is before any cut.
int CountStageFlips(const std::optional<FleetDecision>& a,
                    const std::optional<FleetDecision>& b) {
  const std::vector<bool> empty;
  const std::vector<bool>& ba =
      a.has_value() ? a->combined.cut.before_cut : empty;
  const std::vector<bool>& bb =
      b.has_value() ? b->combined.cut.before_cut : empty;
  const size_t n = std::max(ba.size(), bb.size());
  int flips = 0;
  for (size_t s = 0; s < n; ++s) {
    const bool in_a = s < ba.size() && ba[s];
    const bool in_b = s < bb.size() && bb[s];
    if (in_a != in_b) ++flips;
  }
  return flips;
}

}  // namespace

Result<AbDayComparison> BuildAbDayComparison(
    const DayContext& ctx, const std::vector<FleetArmSpec>& specs,
    const std::vector<FleetDayDecisions>& decisions,
    const std::vector<FleetDayReport>& reports) {
  return BuildAbDayComparison(std::vector<DayContext>(specs.size(), ctx), specs,
                              decisions, reports);
}

Result<AbDayComparison> BuildAbDayComparison(
    const std::vector<DayContext>& ctxs, const std::vector<FleetArmSpec>& specs,
    const std::vector<FleetDayDecisions>& decisions,
    const std::vector<FleetDayReport>& reports) {
  const size_t n = specs.size();
  if (n == 0 || ctxs.size() != n || decisions.size() != n ||
      reports.size() != n) {
    return Status::InvalidArgument(
        "specs, contexts, decisions, and reports must be parallel and "
        "non-empty");
  }
  for (size_t k = 0; k < n; ++k) {
    if (ctxs[k].jobs == nullptr) {
      return Status::InvalidArgument(StrFormat("arm %zu context has no jobs", k));
    }
    if (ctxs[k].day != ctxs[0].day) {
      return Status::InvalidArgument(
          "per-arm contexts must share one day index");
    }
  }
  const size_t m = ctxs[0].jobs->size();
  AbDayComparison c;
  c.day = ctxs[0].day;
  c.jobs = static_cast<int>(m);
  c.arms.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    const size_t mk = ctxs[k].jobs->size();
    if (decisions[k].decisions.size() != mk || reports[k].outcomes.size() != mk) {
      return Status::InvalidArgument(StrFormat(
          "arm %zu decisions/report do not cover the day's %zu jobs", k, mk));
    }
    AbArmDaySummary s;
    s.name = specs[k].name;
    s.checksum = specs[k].bundle_checksum;
    s.jobs_considered = reports[k].jobs_considered;
    s.jobs_with_cut = reports[k].jobs_with_cut;
    s.jobs_admitted = reports[k].jobs_admitted;
    s.storage_used_bytes = reports[k].storage_used_bytes;
    s.total_temp_byte_seconds = reports[k].total_temp_byte_seconds;
    s.realized_saving_byte_seconds = reports[k].realized_saving_byte_seconds;
    s.saving_fraction = reports[k].SavingFraction();
    s.cost = 1.0 - s.saving_fraction;
    c.arms.push_back(std::move(s));
  }

  c.deltas.resize(n);
  // The diff unit is the serialized shard-blob job record — the same bytes
  // lifecycle shadow mode compares — so "no flip" means byte-identical
  // decisions, not merely equal aggregates. Flips are only defined for arms
  // deciding arm 0's job vector (pointer identity); a scenario arm's jobs
  // are a different workload, where saving/cost deltas are the comparison.
  std::vector<std::string> base_records;
  for (size_t k = 1; k < n; ++k) {
    AbArmDelta& delta = c.deltas[k];
    delta.saving_delta = c.arms[k].saving_fraction - c.arms[0].saving_fraction;
    delta.cost_delta = c.arms[k].cost - c.arms[0].cost;
    if (ctxs[k].jobs != ctxs[0].jobs) continue;
    if (base_records.empty() && m > 0) {
      base_records.reserve(m);
      for (size_t i = 0; i < m; ++i) {
        base_records.push_back(
            SerializeJobDecisionRecord(i, decisions[0].decisions[i]));
      }
    }
    for (size_t i = 0; i < m; ++i) {
      if (SerializeJobDecisionRecord(i, decisions[k].decisions[i]) !=
          base_records[i]) {
        delta.flipped_jobs.push_back(AbDecisionFlip{
            i, CountStageFlips(decisions[0].decisions[i],
                               decisions[k].decisions[i])});
      }
      const bool base_admitted = reports[0].outcomes[i].admitted;
      const bool arm_admitted = reports[k].outcomes[i].admitted;
      if (base_admitted != arm_admitted) {
        delta.admission_flipped.push_back(AbAdmissionFlip{i, arm_admitted});
      }
    }
    delta.decision_flips = static_cast<int>(delta.flipped_jobs.size());
    delta.admission_flips = static_cast<int>(delta.admission_flipped.size());
  }
  return c;
}

std::string SerializeAbReport(const std::vector<AbDayComparison>& days) {
  std::string out = StrFormat("%s %d\n", kMagic, kFormatVersion);
  for (const AbDayComparison& c : days) {
    out += StrFormat("day %d jobs %d arms %zu\n", c.day, c.jobs, c.arms.size());
    for (size_t k = 0; k < c.arms.size(); ++k) {
      const AbArmDaySummary& s = c.arms[k];
      out += StrFormat(
          "arm %zu %s %08x considered %d with_cut %d admitted %d "
          "storage %.17g temp %.17g realized %.17g saving %.17g cost %.17g\n",
          k, s.name.c_str(), s.checksum, s.jobs_considered, s.jobs_with_cut,
          s.jobs_admitted, s.storage_used_bytes, s.total_temp_byte_seconds,
          s.realized_saving_byte_seconds, s.saving_fraction, s.cost);
    }
    for (size_t k = 1; k < c.deltas.size(); ++k) {
      const AbArmDelta& d = c.deltas[k];
      out += StrFormat(
          "delta %zu decision_flips %d admission_flips %d saving_delta %.17g "
          "cost_delta %.17g\n",
          k, d.decision_flips, d.admission_flips, d.saving_delta, d.cost_delta);
      for (const AbDecisionFlip& f : d.flipped_jobs) {
        out += StrFormat("flip %zu job %zu stages %d\n", k, f.job, f.stage_flips);
      }
      for (const AbAdmissionFlip& f : d.admission_flipped) {
        out += StrFormat("admission_flip %zu job %zu %s\n", k, f.job,
                         f.admitted_in_arm ? "+" : "-");
      }
    }
    out += "end_day\n";
  }
  out += "end_ab_report\n";
  return out;
}

Result<std::vector<AbDayComparison>> ParseAbReport(const std::string& text) {
  LineReader r(text);
  {
    PHOEBE_ASSIGN_OR_RETURN(std::string magic_line, r.Next());
    std::vector<std::string> tok = Split(magic_line, ' ');
    int32_t version = 0;
    if (tok.size() != 2 || tok[0] != kMagic || !ParseInt32(tok[1], &version).ok()) {
      return Status::InvalidArgument("not a phoebe ab report (bad magic)");
    }
    if (version != kFormatVersion) {
      return Status::InvalidArgument(StrFormat(
          "unsupported ab report version %d (expected %d)", version,
          kFormatVersion));
    }
  }

  std::vector<AbDayComparison> days;
  for (;;) {
    PHOEBE_ASSIGN_OR_RETURN(std::string line, r.Next());
    if (line == "end_ab_report") break;
    std::vector<std::string> tok = Split(line, ' ');
    AbDayComparison c;
    int32_t num_arms = 0;
    if (tok.size() != 6 || tok[0] != "day" || tok[2] != "jobs" ||
        tok[4] != "arms" || !ParseInt32(tok[1], &c.day).ok() ||
        !ParseInt32(tok[3], &c.jobs).ok() || c.jobs < 0 ||
        !ParseInt32(tok[5], &num_arms).ok() || num_arms < 1) {
      return Status::InvalidArgument("malformed ab day header: " + line);
    }
    c.arms.reserve(static_cast<size_t>(num_arms));
    for (int32_t k = 0; k < num_arms; ++k) {
      PHOEBE_ASSIGN_OR_RETURN(std::string arm_line, r.Next());
      std::vector<std::string> at = Split(arm_line, ' ');
      AbArmDaySummary s;
      int32_t index = -1;
      if (at.size() != 20 || at[0] != "arm" || !ParseInt32(at[1], &index).ok() ||
          index != k || !TokenSafe(at[2]) ||
          !ParseHexU32(at[3], &s.checksum).ok() || at[4] != "considered" ||
          !ParseInt32(at[5], &s.jobs_considered).ok() || at[6] != "with_cut" ||
          !ParseInt32(at[7], &s.jobs_with_cut).ok() || at[8] != "admitted" ||
          !ParseInt32(at[9], &s.jobs_admitted).ok() || at[10] != "storage" ||
          !ParseFiniteDouble(at[11], &s.storage_used_bytes).ok() ||
          at[12] != "temp" ||
          !ParseFiniteDouble(at[13], &s.total_temp_byte_seconds).ok() ||
          at[14] != "realized" ||
          !ParseFiniteDouble(at[15], &s.realized_saving_byte_seconds).ok() ||
          at[16] != "saving" ||
          !ParseFiniteDouble(at[17], &s.saving_fraction).ok() ||
          at[18] != "cost" || !ParseFiniteDouble(at[19], &s.cost).ok()) {
        return Status::InvalidArgument("malformed ab arm line: " + arm_line);
      }
      s.name = at[2];
      c.arms.push_back(std::move(s));
    }
    c.deltas.resize(static_cast<size_t>(num_arms));
    for (int32_t k = 1; k < num_arms; ++k) {
      PHOEBE_ASSIGN_OR_RETURN(std::string delta_line, r.Next());
      std::vector<std::string> dt = Split(delta_line, ' ');
      AbArmDelta& d = c.deltas[static_cast<size_t>(k)];
      int32_t index = -1;
      if (dt.size() != 10 || dt[0] != "delta" || !ParseInt32(dt[1], &index).ok() ||
          index != k || dt[2] != "decision_flips" || dt[4] != "admission_flips" ||
          dt[6] != "saving_delta" || dt[8] != "cost_delta" ||
          !ParseInt32(dt[3], &d.decision_flips).ok() || d.decision_flips < 0 ||
          d.decision_flips > c.jobs ||
          !ParseInt32(dt[5], &d.admission_flips).ok() || d.admission_flips < 0 ||
          d.admission_flips > c.jobs ||
          !ParseFiniteDouble(dt[7], &d.saving_delta).ok() ||
          !ParseFiniteDouble(dt[9], &d.cost_delta).ok()) {
        return Status::InvalidArgument("malformed ab delta line: " + delta_line);
      }
      int64_t last_job = -1;
      for (int32_t f = 0; f < d.decision_flips; ++f) {
        PHOEBE_ASSIGN_OR_RETURN(std::string flip_line, r.Next());
        std::vector<std::string> ft = Split(flip_line, ' ');
        int32_t fk = -1, job = -1, stages = -1;
        if (ft.size() != 6 || ft[0] != "flip" || !ParseInt32(ft[1], &fk).ok() ||
            fk != k || ft[2] != "job" || !ParseInt32(ft[3], &job).ok() ||
            job <= last_job || job >= c.jobs || ft[4] != "stages" ||
            !ParseInt32(ft[5], &stages).ok() || stages < 0) {
          return Status::InvalidArgument("malformed ab flip line: " + flip_line);
        }
        last_job = job;
        d.flipped_jobs.push_back(
            AbDecisionFlip{static_cast<size_t>(job), stages});
      }
      last_job = -1;
      for (int32_t f = 0; f < d.admission_flips; ++f) {
        PHOEBE_ASSIGN_OR_RETURN(std::string flip_line, r.Next());
        std::vector<std::string> ft = Split(flip_line, ' ');
        int32_t fk = -1, job = -1;
        if (ft.size() != 5 || ft[0] != "admission_flip" ||
            !ParseInt32(ft[1], &fk).ok() || fk != k || ft[2] != "job" ||
            !ParseInt32(ft[3], &job).ok() || job <= last_job || job >= c.jobs ||
            (ft[4] != "+" && ft[4] != "-")) {
          return Status::InvalidArgument("malformed ab admission_flip line: " +
                                         flip_line);
        }
        last_job = job;
        d.admission_flipped.push_back(
            AbAdmissionFlip{static_cast<size_t>(job), ft[4] == "+"});
      }
    }
    PHOEBE_ASSIGN_OR_RETURN(std::string end_line, r.Next());
    if (end_line != "end_day") {
      return Status::InvalidArgument("expected end_day, got: " + end_line);
    }
    days.push_back(std::move(c));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after end_ab_report");
  }
  return days;
}

FleetAbDriver::FleetAbDriver(std::vector<FleetArmSpec> specs)
    : specs_(std::move(specs)) {
  specs_status_ = ValidateSpecs(specs_);
  if (!specs_status_.ok()) return;
  arms_.reserve(specs_.size());
  for (const FleetArmSpec& spec : specs_) {
    arms_.push_back(std::make_unique<DecisionArm>(spec.engine, spec.config));
  }
}

Status FleetAbDriver::Calibrate(const DayContext& history) {
  PHOEBE_RETURN_NOT_OK(specs_status_);
  return Calibrate(std::vector<DayContext>(arms_.size(), history));
}

Status FleetAbDriver::Calibrate(const std::vector<DayContext>& histories) {
  PHOEBE_RETURN_NOT_OK(specs_status_);
  if (histories.size() != arms_.size()) {
    return Status::InvalidArgument(
        StrFormat("calibration contexts cover %zu arms, driver has %zu",
                  histories.size(), arms_.size()));
  }
  for (size_t k = 0; k < arms_.size(); ++k) {
    PHOEBE_RETURN_NOT_OK(arms_[k]->Calibrate(histories[k]));
  }
  return Status::OK();
}

Result<std::vector<FleetDayDecisions>> FleetAbDriver::DecideDay(
    const DayContext& ctx) const {
  PHOEBE_RETURN_NOT_OK(specs_status_);
  return DecideDay(std::vector<DayContext>(arms_.size(), ctx));
}

Result<std::vector<FleetDayDecisions>> FleetAbDriver::DecideDay(
    const std::vector<DayContext>& ctxs) const {
  PHOEBE_RETURN_NOT_OK(specs_status_);
  if (ctxs.size() != arms_.size()) {
    return Status::InvalidArgument(
        StrFormat("day contexts cover %zu arms, driver has %zu", ctxs.size(),
                  arms_.size()));
  }
  std::vector<FleetDayDecisions> decisions;
  decisions.reserve(arms_.size());
  for (size_t k = 0; k < arms_.size(); ++k) {
    PHOEBE_ASSIGN_OR_RETURN(FleetDayDecisions d, arms_[k]->DecideDay(ctxs[k]));
    decisions.push_back(std::move(d));
  }
  return decisions;
}

Result<FleetAbDriver::AbDayResult> FleetAbDriver::RunDay(const DayContext& ctx) {
  PHOEBE_RETURN_NOT_OK(specs_status_);
  return RunDay(std::vector<DayContext>(arms_.size(), ctx));
}

Result<FleetAbDriver::AbDayResult> FleetAbDriver::RunDay(
    const std::vector<DayContext>& ctxs) {
  PHOEBE_ASSIGN_OR_RETURN(std::vector<FleetDayDecisions> decisions,
                          DecideDay(ctxs));
  return ReplayDay(ctxs, decisions);
}

Result<FleetAbDriver::AbDayResult> FleetAbDriver::ReplayDay(
    const DayContext& ctx, const std::vector<FleetDayDecisions>& precomputed) {
  PHOEBE_RETURN_NOT_OK(specs_status_);
  return ReplayDay(std::vector<DayContext>(arms_.size(), ctx), precomputed);
}

Result<FleetAbDriver::AbDayResult> FleetAbDriver::ReplayDay(
    const std::vector<DayContext>& ctxs,
    const std::vector<FleetDayDecisions>& precomputed) {
  PHOEBE_RETURN_NOT_OK(specs_status_);
  if (ctxs.size() != arms_.size()) {
    return Status::InvalidArgument(
        StrFormat("day contexts cover %zu arms, driver has %zu", ctxs.size(),
                  arms_.size()));
  }
  if (precomputed.size() != arms_.size()) {
    return Status::InvalidArgument(
        StrFormat("precomputed decisions cover %zu arms, driver has %zu",
                  precomputed.size(), arms_.size()));
  }
  AbDayResult result;
  result.decisions = precomputed;
  result.reports.reserve(arms_.size());
  for (size_t k = 0; k < arms_.size(); ++k) {
    PHOEBE_ASSIGN_OR_RETURN(FleetDayReport report,
                            arms_[k]->ReplayDay(ctxs[k], precomputed[k]));
    result.reports.push_back(std::move(report));
  }
  PHOEBE_ASSIGN_OR_RETURN(
      result.comparison,
      BuildAbDayComparison(ctxs, specs_, result.decisions, result.reports));
  return result;
}

}  // namespace phoebe::core
