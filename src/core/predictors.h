// Stage-level cost predictors (paper §4.1): execution time and output size.
//
// The default configuration is the paper's best: one LightGBM-style GBDT per
// stage type ("stage-type specific models"), trained on Table-1 features,
// falling back to a general model for rare types. A general GBDT and a
// general MLP-with-text-features ("DNN benchmark") are available for the
// §6.1 ablations. Targets are modeled in log1p space and expanded back.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/features.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"

namespace phoebe::core {

/// \brief Which learner architecture to use.
enum class ModelKind {
  kGbdtPerStageType,  ///< paper default: stage-type specific LightGBM models
  kGbdtGeneral,       ///< one GBDT for all stages
  kMlpGeneral,        ///< DNN benchmark (pair with FeatureConfig.text = true)
};

/// \brief Configuration of one stage cost predictor.
struct PredictorConfig {
  ModelKind kind = ModelKind::kGbdtPerStageType;
  FeatureConfig features;
  ml::GbdtParams gbdt;
  ml::MlpParams mlp;
  /// Stage types with fewer training rows than this use the general model.
  int min_samples_per_type = 100;
  /// Score whole jobs with one PredictBatch call per serving model instead of
  /// a scalar Predict per stage. Bit-equal to the scalar path (the batch
  /// overrides pin that contract), so this is purely a throughput knob.
  bool batch_inference = true;
};

/// \brief One training example: a job paired with the historic statistics
/// that were available when it was compiled (days strictly before its own).
struct TrainExample {
  const workload::JobInstance* job = nullptr;
  const telemetry::HistoricStats* stats = nullptr;
};

/// \brief Reusable featurize→predict working storage for one inference
/// stream (see core/engine.h DecideScratch). A warm scratch — one that has
/// seen the widest job of the workload — makes PredictJobInto /
/// TtlEstimator::PredictInto allocation-free: the job matrix, the per-model
/// row gather, and the log-space output buffer are all recycled in place.
struct PredictScratch {
  ml::FeatureMatrix matrix;    ///< whole-job feature rows (schema sticks)
  std::vector<double> row;     ///< per-stage staging row
  std::vector<size_t> rows;    ///< row indices served by the current model
  std::vector<double> y_log;   ///< model outputs for those rows (log space)
  std::vector<char> served;    ///< per-stage flag: scored by a per-type model
};

/// \brief Predicts one target (exec time or output size) per stage.
class StageCostPredictor {
 public:
  StageCostPredictor(PredictorConfig config, Target target);

  /// Train on per-job examples, each carrying its own historic-stats view.
  Status Train(const std::vector<TrainExample>& examples);

  /// Convenience: all jobs share one stats view (`stats` must be computed
  /// from days at or before the training days; the caller controls leakage).
  Status Train(const std::vector<workload::JobInstance>& jobs,
               const telemetry::HistoricStats& stats);

  bool trained() const { return trained_; }
  Target target() const { return target_; }
  const PredictorConfig& config() const { return config_; }
  const StageFeaturizer& featurizer() const { return featurizer_; }

  /// Predict the target (origin scale, >= 0) for one stage of a job, using
  /// only compile-time information.
  double PredictStage(const workload::JobInstance& job, int stage_id,
                      const telemetry::HistoricStats& stats) const;

  /// Predict all stages of a job. With config().batch_inference on, stages
  /// are grouped by serving model and scored with one PredictBatch call per
  /// group; otherwise falls back to a scalar PredictStage loop. Both paths
  /// return bit-identical values.
  std::vector<double> PredictJob(const workload::JobInstance& job,
                                 const telemetry::HistoricStats& stats) const;

  /// PredictJob into caller-owned buffers: featurizes the whole job into
  /// `scratch->matrix`, scores each serving model's stages via
  /// Regressor::PredictRowsInto, and writes the per-stage predictions to
  /// `*out` (resized to the stage count). Values are bit-identical to
  /// PredictJob on both the batched and the scalar path; with warm buffers
  /// the call performs no heap allocation (the scalar reference path and
  /// FeatureConfig::text excepted). `out` must not alias scratch fields.
  void PredictJobInto(const workload::JobInstance& job,
                      const telemetry::HistoricStats& stats, PredictScratch* scratch,
                      std::vector<double>* out) const;

  /// Toggle batched scoring after construction (e.g. for benchmarking both
  /// paths on one trained predictor). Not safe to call concurrently with
  /// inference.
  void set_batch_inference(bool on) { config_.batch_inference = on; }

  /// Number of per-stage-type models actually trained (0 for general kinds).
  size_t num_type_models() const { return per_type_.size(); }

  /// The general (fallback) model, for feature-importance analysis.
  const ml::Regressor* general_model() const { return general_.get(); }

  /// Serialize the trained models (general + per-type + calibrations) to a
  /// text blob. LoadFromText restores them into a predictor constructed with
  /// a matching configuration.
  std::string ToText() const;
  Status LoadFromText(const std::string& text);

 private:
  std::unique_ptr<ml::Regressor> MakeGeneral() const;

  PredictorConfig config_;
  Target target_;
  StageFeaturizer featurizer_;
  std::unique_ptr<ml::Regressor> general_;
  std::map<int, ml::GbdtRegressor> per_type_;  ///< stage_type -> model
  // Smearing correction: training in log1p space under-predicts origin-scale
  // means (E[exp(x)] > exp(E[x])); each model carries a multiplicative
  // calibration fitted on its training rows.
  std::map<int, double> calibration_;
  double general_calibration_ = 1.0;
  bool trained_ = false;
};

}  // namespace phoebe::core
