// End-to-end Phoebe pipeline (Figure 4): train the three predictors from the
// workload repository, then — at "compile time" for a new job — score stage
// costs, simulate the schedule, stack the TTL, and pick the checkpoint cut.
#pragma once

#include <memory>

#include "core/checkpoint.h"
#include "core/predictors.h"
#include "core/ttl.h"
#include "telemetry/repository.h"

namespace phoebe::core {

/// \brief Which cost inputs feed the optimizer — the Figure 12/14 variants.
enum class CostSource {
  kTruth,               ///< Optimal: true outputs/TTL/schedule (offline oracle)
  kOptimizerEstimates,  ///< OP: raw query-optimizer estimates + simulator
  kConstant,            ///< OCC: constant per-stage costs + simulator
  kMlSimulator,         ///< OML: ML cost models + simulator TTL
  kMlStacked,           ///< OMLS: ML cost models + stacking-model TTL
};

/// \brief Checkpoint objective to optimize.
enum class Objective {
  kTempStorage,  ///< free temp data on hotspots (OptCheck1)
  kRecovery,     ///< fast restart of failed jobs (OptCheck2)
};

/// \brief Pipeline configuration.
struct PipelineConfig {
  PredictorConfig exec_predictor;
  PredictorConfig size_predictor;
  TtlConfig ttl;
  /// Per-task failure probability delta ~ E[task runtime] / MTBF (eq. 31).
  double delta = 0.0005;
};

/// \brief A compile-time checkpoint decision with overhead breakdown (§6.4).
struct PipelineDecision {
  CutResult cut;
  double lookup_seconds = 0.0;    ///< metadata/model lookup
  double scoring_seconds = 0.0;   ///< ML scoring + schedule simulation
  double optimize_seconds = 0.0;  ///< cut search
};

/// \brief Trained Phoebe instance.
///
/// Thread-safety: the pipeline is logically const after Train (or Load)
/// returns. Every inference entry point — BuildCosts, Decide, and the
/// predictor/estimator accessors — is a const member whose whole call tree
/// (featurizer, GBDT/MLP forests, TTL stacking models, historic-stats maps)
/// reads immutable state with no caches, so concurrent calls on one trained
/// pipeline are safe. The fleet driver's parallel decision phase depends on
/// this invariant; core_fleet_parallel_test pins it under TSan. Train and
/// Load are the only mutators and must not overlap any inference call.
class PhoebePipeline {
 public:
  explicit PhoebePipeline(PipelineConfig config = DefaultConfig());

  /// A config tuned for the experiment scale in this repo.
  static PipelineConfig DefaultConfig();

  /// Train all models from the repository days in [first_day, first_day +
  /// num_days). Each day's features use historic stats from days before it.
  /// Inference-time stats are those available after the last training day.
  Status Train(const telemetry::WorkloadRepository& repo, int first_day, int num_days);

  bool trained() const { return trained_; }

  /// Toggle batched inference on all three model stacks at once (predictors
  /// and TTL stacking). Both paths are bit-identical; this exists so a single
  /// trained pipeline can be benchmarked batch-on vs. batch-off without
  /// retraining. Mutator: must not overlap any inference call (see the
  /// thread-safety note above).
  void set_batch_inference(bool on);

  const telemetry::HistoricStats& inference_stats() const { return stats_; }
  const StageCostPredictor& exec_predictor() const { return *exec_; }
  const StageCostPredictor& size_predictor() const { return *size_; }
  const TtlEstimator& ttl_estimator() const { return *ttl_; }
  double delta() const { return config_.delta; }

  /// Build the optimizer inputs for one job under a cost source, using only
  /// compile-time information (plus truth for the kTruth oracle).
  Result<StageCosts> BuildCosts(const workload::JobInstance& job,
                                CostSource source) const;
  /// Same, with an explicit historic-stats view (e.g. for later days).
  Result<StageCosts> BuildCosts(const workload::JobInstance& job, CostSource source,
                                const telemetry::HistoricStats& stats) const;

  /// Full compile-time decision for one job.
  Result<PipelineDecision> Decide(const workload::JobInstance& job, Objective objective,
                                  CostSource source = CostSource::kMlStacked) const;

  /// Persist the trained models plus the inference-time statistics snapshot
  /// to `dir` (created if missing): exec.model, size.model, ttl.model,
  /// stats.txt. Load restores them into a pipeline constructed with the same
  /// configuration (model kind / feature groups must match).
  Status Save(const std::string& dir) const;
  Status Load(const std::string& dir);

 private:
  PipelineConfig config_;
  std::unique_ptr<StageCostPredictor> exec_;
  std::unique_ptr<StageCostPredictor> size_;
  std::unique_ptr<TtlEstimator> ttl_;
  telemetry::HistoricStats stats_;
  bool trained_ = false;
};

}  // namespace phoebe::core
