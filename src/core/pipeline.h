// End-to-end Phoebe pipeline (Figure 4): train the three predictors from the
// workload repository, then — at "compile time" for a new job — score stage
// costs, simulate the schedule, stack the TTL, and pick the checkpoint cut.
//
// The pipeline is the *train-time* half of the train/serve split: Train (or
// Load/LoadBundle) produces an immutable PipelineBundle, and all decide-path
// reads go through the pipeline's DecisionEngine view of it (`engine()`).
// The inference accessors and BuildCosts/Decide below delegate to that
// engine, so the serving code path is identical whether callers hold a
// pipeline or a bare engine over a loaded bundle.
#pragma once

#include <memory>
#include <string>

#include "core/engine.h"
#include "telemetry/repository.h"

namespace phoebe::core {

/// \brief Trained Phoebe instance.
///
/// Thread-safety: the pipeline is logically const after Train (or Load)
/// returns — trained state lives in an immutable PipelineBundle, and every
/// inference entry point delegates to the const-only DecisionEngine, so
/// concurrent inference calls on one trained pipeline are safe
/// (core_fleet_parallel_test pins this under TSan). Train, Load, LoadBundle,
/// and set_batch_inference swap the bundle and must not overlap any
/// inference call or outstanding engine() use.
class PhoebePipeline {
 public:
  explicit PhoebePipeline(PipelineConfig config = DefaultConfig());

  /// A config tuned for the experiment scale in this repo.
  static PipelineConfig DefaultConfig();

  /// Train all models from the repository days in [first_day, first_day +
  /// num_days). Each day's features use historic stats from days before it.
  /// Inference-time stats are those available after the last training day.
  Status Train(const telemetry::WorkloadRepository& repo, int first_day, int num_days);

  bool trained() const { return engine_.trained(); }

  /// The const-only serving view over the current bundle. The reference
  /// stays valid across Train/Load (the engine object is re-seated in
  /// place), but must not be *used* while one of the mutators runs.
  const DecisionEngine& engine() const { return engine_; }

  /// The current immutable bundle (shared; never mutates once returned).
  std::shared_ptr<const PipelineBundle> bundle() const {
    return engine_.shared_bundle();
  }

  /// Toggle batched inference on all three model stacks at once (predictors
  /// and TTL stacking). Both paths are bit-identical; this exists so a single
  /// trained pipeline can be benchmarked batch-on vs. batch-off without
  /// retraining. Mutator: swaps the bundle (trained state round-trips
  /// through the serialized form), so it must not overlap inference.
  void set_batch_inference(bool on);

  const telemetry::HistoricStats& inference_stats() const {
    return engine_.inference_stats();
  }
  const StageCostPredictor& exec_predictor() const {
    return engine_.bundle().exec_predictor();
  }
  const StageCostPredictor& size_predictor() const {
    return engine_.bundle().size_predictor();
  }
  const TtlEstimator& ttl_estimator() const {
    return engine_.bundle().ttl_estimator();
  }
  double delta() const { return engine_.delta(); }

  /// Build the optimizer inputs for one job under a cost source, using only
  /// compile-time information (plus truth for the kTruth oracle).
  Result<StageCosts> BuildCosts(const workload::JobInstance& job,
                                CostSource source) const {
    return engine_.BuildCosts(job, source);
  }
  /// Same, with an explicit historic-stats view (e.g. for later days).
  Result<StageCosts> BuildCosts(const workload::JobInstance& job, CostSource source,
                                const telemetry::HistoricStats& stats) const {
    return engine_.BuildCosts(job, source, stats);
  }

  /// Full compile-time decision for one job.
  Result<PipelineDecision> Decide(const workload::JobInstance& job, Objective objective,
                                  CostSource source = CostSource::kMlStacked) const {
    return engine_.Decide(job, objective, source);
  }

  /// Persist the trained models plus the inference-time statistics snapshot
  /// to `dir` (created if missing): exec.model, size.model, ttl.model,
  /// stats.txt. Load restores them into a pipeline constructed with the same
  /// configuration (model kind / feature groups must match). Prefer the
  /// single-file bundle (SaveBundle/LoadBundle) for new code — it carries
  /// the config and is integrity-checked.
  Status Save(const std::string& dir) const;
  Status Load(const std::string& dir);

  /// Persist / restore the single-file versioned bundle (see core/bundle.h).
  /// LoadBundle replaces this pipeline's config with the bundle's.
  Status SaveBundle(const std::string& path) const;
  Status LoadBundle(const std::string& path);

 private:
  PipelineConfig config_;
  DecisionEngine engine_;
};

}  // namespace phoebe::core
