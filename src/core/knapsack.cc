#include "core/knapsack.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace phoebe::core {

Result<OnlineKnapsack> OnlineKnapsack::Calibrate(
    double capacity, double expected_items, const std::vector<KnapsackItem>& history) {
  if (capacity < 0.0) return Status::InvalidArgument("capacity must be >= 0");
  if (expected_items <= 0.0) {
    return Status::InvalidArgument("expected_items must be > 0");
  }
  if (history.empty()) return Status::InvalidArgument("empty calibration history");

  double mean_w = 0.0;
  std::vector<double> ratios;
  ratios.reserve(history.size());
  for (const KnapsackItem& it : history) {
    if (it.weight < 0.0 || it.value < 0.0) {
      return Status::InvalidArgument("negative weight or value in history");
    }
    mean_w += it.weight;
    ratios.push_back(it.Ratio());
  }
  mean_w /= static_cast<double>(history.size());

  OnlineKnapsack k;
  k.capacity_ = capacity;
  k.remaining_ = capacity;

  // p = W / (lambda T E[w]); with zero mean weight everything fits.
  double expected_total_weight = expected_items * mean_w;
  k.p_ = expected_total_weight > 0.0
             ? std::clamp(capacity / expected_total_weight, 0.0, 1.0)
             : 1.0;

  // pi* = Phi_pi^{-1}(1 - p): the (1 - p) quantile of the ratio sample.
  std::sort(ratios.begin(), ratios.end());
  double q = 1.0 - k.p_;
  size_t idx = static_cast<size_t>(q * static_cast<double>(ratios.size()));
  if (idx >= ratios.size()) idx = ratios.size() - 1;
  k.threshold_ = (k.p_ >= 1.0) ? 0.0 : ratios[idx];
  return k;
}

bool OnlineKnapsack::Offer(const KnapsackItem& item) {
  ++offered_;
  if (item.Ratio() >= threshold_ && item.weight <= remaining_ && item.weight >= 0.0) {
    remaining_ -= item.weight;
    accepted_value_ += item.value;
    ++accepted_;
    return true;
  }
  return false;
}

}  // namespace phoebe::core
