#include "core/fleet_shard.h"

#include <utility>

#include "common/json.h"
#include "common/strings.h"

namespace phoebe::core {

namespace {

constexpr const char* kMagic = "phoebe_shard";
/// Maximum parseable format version. v2 added the optional per-day `report`
/// section; v3 added per-day `arm` sections for A/B runs; v1 blobs
/// (decisions only) still parse. The serializer stamps the lowest version
/// that can express the blob (2 without arm sections, 3 with), so output for
/// pre-v3 content is byte-identical to the pre-v3 serializer's.
constexpr int kFormatVersion = 3;
constexpr int kMinFormatVersion = 1;

std::string CutBits(const cluster::CutSet& cut) {
  std::string bits;
  bits.reserve(cut.before_cut.size());
  for (bool b : cut.before_cut) bits.push_back(b ? '1' : '0');
  return bits;
}

Result<cluster::CutSet> ParseCutBits(const std::string& bits) {
  if (bits.empty()) return Status::InvalidArgument("empty cut bitstring");
  cluster::CutSet cut;
  cut.before_cut.reserve(bits.size());
  for (char c : bits) {
    if (c != '0' && c != '1') {
      return Status::InvalidArgument("cut bitstring must be 0/1 only");
    }
    cut.before_cut.push_back(c == '1');
  }
  return cut;
}

/// Line cursor over the blob text; every line must end in '\n' (a missing
/// final newline is a truncation error, same convention as the bundle).
class LineReader {
 public:
  explicit LineReader(const std::string& text) : text_(text) {}

  Result<std::string> Next() {
    if (pos_ >= text_.size()) return Status::InvalidArgument("unexpected end of shard blob");
    size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos) {
      return Status::InvalidArgument("shard blob truncated (missing newline)");
    }
    std::string line = text_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return line;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

/// Parse the `cut` lines of one job record whose job line tokens are `jt`,
/// consuming from `r`. Shared body of ParseFleetShard and
/// ParseJobDecisionRecord; `*out` untouched on error.
Status ParseJobDecisionFromTokens(const std::vector<std::string>& jt,
                                  size_t expected_index, LineReader& r,
                                  std::optional<FleetDecision>* out) {
  int32_t index = -1;
  if (jt.size() < 2 || jt[0] != "job" || !ParseInt32(jt[1], &index).ok() ||
      index < 0 || static_cast<size_t>(index) != expected_index) {
    return Status::InvalidArgument("malformed job line: " + Join(jt, " "));
  }
  if (jt.size() == 3 && jt[2] == "-") {  // ineligible slot
    out->reset();
    return Status::OK();
  }
  int32_t num_cuts = -1;
  FleetDecision d;
  if (jt.size() != 5 || !ParseFiniteDouble(jt[2], &d.combined.objective).ok() ||
      !ParseFiniteDouble(jt[3], &d.combined.global_bytes).ok() ||
      !ParseInt32(jt[4], &num_cuts).ok() || num_cuts < 0) {
    return Status::InvalidArgument("malformed job line: " + Join(jt, " "));
  }
  for (int c = 0; c < num_cuts; ++c) {
    PHOEBE_ASSIGN_OR_RETURN(std::string cut_line, r.Next());
    std::vector<std::string> ct = Split(cut_line, ' ');
    if (ct.size() != 2 || ct[0] != "cut") {
      return Status::InvalidArgument("malformed cut line: " + cut_line);
    }
    PHOEBE_ASSIGN_OR_RETURN(cluster::CutSet cut, ParseCutBits(ct[1]));
    d.cuts.push_back(std::move(cut));
  }
  if (!d.cuts.empty()) d.combined.cut = d.cuts.back();  // outermost
  out->emplace(std::move(d));
  return Status::OK();
}

/// Serialize one day's embedded report section: the aggregate `report` line
/// plus one `outcome` line per job. Doubles print as %.17g so the parse
/// round-trips bit-exactly; outcome cut bitsets are not repeated (the
/// decision records carry them).
std::string SerializeDayReportSection(const FleetDayReport& report) {
  std::string out = StrFormat(
      "report %d %d %d %.17g %.17g %.17g %.17g %lld %lld %lld\n",
      report.jobs_considered, report.jobs_with_cut, report.jobs_admitted,
      report.storage_used_bytes, report.total_temp_byte_seconds,
      report.realized_saving_byte_seconds, report.knapsack_threshold,
      static_cast<long long>(report.cache_hits),
      static_cast<long long>(report.cache_misses),
      static_cast<long long>(report.cache_evictions));
  for (size_t i = 0; i < report.outcomes.size(); ++i) {
    const FleetJobOutcome& o = report.outcomes[i];
    out += StrFormat("outcome %zu %lld %d %.17g %.17g %.17g\n", i,
                     static_cast<long long>(o.job_id), o.admitted ? 1 : 0,
                     o.global_bytes, o.predicted_value, o.realized_value);
  }
  return out;
}

/// Parse the day report section whose `report` line tokens are `rt`,
/// consuming the `outcome` lines (one per job slot) from `r`. Cut bitsets
/// are reconstructed from `decisions` — the exact objects RunDay moves into
/// the outcomes — so the rebuilt report is byte-identical to the one the
/// shard serialized.
Status ParseDayReportSection(const std::vector<std::string>& rt,
                             const FleetDayDecisions& decisions, LineReader& r,
                             FleetDayReport* out) {
  FleetDayReport report;
  int64_t hits = 0, misses = 0, evictions = 0;
  if (rt.size() != 11 || rt[0] != "report" ||
      !ParseInt32(rt[1], &report.jobs_considered).ok() ||
      !ParseInt32(rt[2], &report.jobs_with_cut).ok() ||
      !ParseInt32(rt[3], &report.jobs_admitted).ok() ||
      !ParseFiniteDouble(rt[4], &report.storage_used_bytes).ok() ||
      !ParseFiniteDouble(rt[5], &report.total_temp_byte_seconds).ok() ||
      !ParseFiniteDouble(rt[6], &report.realized_saving_byte_seconds).ok() ||
      !ParseFiniteDouble(rt[7], &report.knapsack_threshold).ok() ||
      !ParseInt64(rt[8], &hits).ok() || !ParseInt64(rt[9], &misses).ok() ||
      !ParseInt64(rt[10], &evictions).ok()) {
    return Status::InvalidArgument("malformed report line: " + Join(rt, " "));
  }
  report.cache_hits = hits;
  report.cache_misses = misses;
  report.cache_evictions = evictions;
  report.outcomes.resize(decisions.decisions.size());
  for (size_t i = 0; i < decisions.decisions.size(); ++i) {
    PHOEBE_ASSIGN_OR_RETURN(std::string line, r.Next());
    std::vector<std::string> ot = Split(line, ' ');
    int32_t index = -1, admitted = -1;
    FleetJobOutcome& o = report.outcomes[i];
    if (ot.size() != 7 || ot[0] != "outcome" || !ParseInt32(ot[1], &index).ok() ||
        static_cast<size_t>(index) != i || !ParseInt64(ot[2], &o.job_id).ok() ||
        !ParseInt32(ot[3], &admitted).ok() || (admitted != 0 && admitted != 1) ||
        !ParseFiniteDouble(ot[4], &o.global_bytes).ok() ||
        !ParseFiniteDouble(ot[5], &o.predicted_value).ok() ||
        !ParseFiniteDouble(ot[6], &o.realized_value).ok()) {
      return Status::InvalidArgument("malformed outcome line: " + line);
    }
    o.admitted = admitted == 1;
    const std::optional<FleetDecision>& d = decisions.decisions[i];
    if (d.has_value() && !d->cuts.empty()) {
      o.cut = d->combined.cut;
      o.cuts = d->cuts;
    }
  }
  *out = std::move(report);
  return Status::OK();
}

}  // namespace

std::string SerializeJobDecisionRecord(size_t index,
                                       const std::optional<FleetDecision>& decision) {
  if (!decision.has_value()) return StrFormat("job %zu -\n", index);
  const FleetDecision& d = *decision;
  std::string out = StrFormat("job %zu %.17g %.17g %zu\n", index,
                              d.combined.objective, d.combined.global_bytes,
                              d.cuts.size());
  for (const cluster::CutSet& cut : d.cuts) {
    out += "cut " + CutBits(cut) + "\n";
  }
  return out;
}

Status ParseJobDecisionRecord(const std::string& text, size_t expected_index,
                              std::optional<FleetDecision>* out) {
  LineReader r(text);
  PHOEBE_ASSIGN_OR_RETURN(std::string job_line, r.Next());
  std::optional<FleetDecision> parsed;
  PHOEBE_RETURN_NOT_OK(
      ParseJobDecisionFromTokens(Split(job_line, ' '), expected_index, r, &parsed));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after job decision record");
  }
  *out = std::move(parsed);
  return Status::OK();
}

Result<std::string> SerializeFleetShard(
    const FleetShardHeader& header, const std::map<int, FleetDayDecisions>& days,
    const std::map<int, FleetDayReport>* reports,
    const std::map<int, std::map<int, FleetDayDecisions>>* arm_days,
    const std::map<int, std::map<int, FleetDayReport>>* arm_reports) {
  if (header.shard_count < 1 || header.shard_index < 0 ||
      header.shard_index >= header.shard_count) {
    return Status::InvalidArgument("invalid shard index/count");
  }
  if (header.num_days < 1) return Status::InvalidArgument("num_days must be >= 1");
  for (const auto& [day, decisions] : days) {
    if (day < 0 || day >= header.num_days) {
      return Status::InvalidArgument(StrFormat("day %d outside [0, %d)", day,
                                               header.num_days));
    }
    if (!ShardOwnsDay(day, header.shard_index, header.shard_count)) {
      return Status::InvalidArgument(
          StrFormat("day %d is not owned by shard %d/%d", day, header.shard_index,
                    header.shard_count));
    }
    (void)decisions;
  }
  if (reports != nullptr) {
    for (const auto& [day, report] : *reports) {
      auto it = days.find(day);
      if (it == days.end()) {
        return Status::InvalidArgument(
            StrFormat("report for day %d has no decision record", day));
      }
      if (report.outcomes.size() != it->second.decisions.size()) {
        return Status::InvalidArgument(
            StrFormat("report for day %d covers %zu jobs, decisions cover %zu", day,
                      report.outcomes.size(), it->second.decisions.size()));
      }
    }
  }
  bool has_arms = false;
  if (arm_days != nullptr) {
    for (const auto& [day, arms] : *arm_days) {
      auto it = days.find(day);
      if (it == days.end()) {
        return Status::InvalidArgument(
            StrFormat("arm sections for day %d have no arm-0 record", day));
      }
      for (const auto& [arm, decisions] : arms) {
        if (arm < 1) {
          return Status::InvalidArgument(StrFormat(
              "arm index %d for day %d must be >= 1 (arm 0 is the day record)",
              arm, day));
        }
        if (decisions.decisions.size() != it->second.decisions.size()) {
          return Status::InvalidArgument(StrFormat(
              "arm %d of day %d covers %zu jobs, arm 0 covers %zu", arm, day,
              decisions.decisions.size(), it->second.decisions.size()));
        }
        has_arms = true;
      }
    }
  }
  if (arm_reports != nullptr) {
    for (const auto& [day, arms] : *arm_reports) {
      const std::map<int, FleetDayDecisions>* day_arms = nullptr;
      if (arm_days != nullptr) {
        auto dit = arm_days->find(day);
        if (dit != arm_days->end()) day_arms = &dit->second;
      }
      for (const auto& [arm, report] : arms) {
        auto ait = day_arms == nullptr ? std::map<int, FleetDayDecisions>::const_iterator()
                                       : day_arms->find(arm);
        if (day_arms == nullptr || ait == day_arms->end()) {
          return Status::InvalidArgument(StrFormat(
              "report for arm %d of day %d has no decision record", arm, day));
        }
        if (report.outcomes.size() != ait->second.decisions.size()) {
          return Status::InvalidArgument(StrFormat(
              "report for arm %d of day %d covers %zu jobs, decisions cover %zu",
              arm, day, report.outcomes.size(), ait->second.decisions.size()));
        }
      }
    }
  }

  // Lowest version that can express the content: pre-v3 blobs must stay
  // byte-identical to the pre-v3 serializer's output.
  std::string out = StrFormat("%s %d\n", kMagic, has_arms ? 3 : 2);
  out += StrFormat("shard %d %d days %d checksum %08x\n", header.shard_index,
                   header.shard_count, header.num_days, header.bundle_checksum);
  for (const auto& [day, decisions] : days) {
    out += StrFormat("day %d jobs %zu\n", day, decisions.decisions.size());
    for (size_t i = 0; i < decisions.decisions.size(); ++i) {
      out += SerializeJobDecisionRecord(i, decisions.decisions[i]);
    }
    if (reports != nullptr) {
      auto it = reports->find(day);
      if (it != reports->end()) out += SerializeDayReportSection(it->second);
    }
    if (arm_days != nullptr) {
      auto dit = arm_days->find(day);
      if (dit != arm_days->end()) {
        for (const auto& [arm, arm_decisions] : dit->second) {
          out += StrFormat("arm %d jobs %zu\n", arm,
                           arm_decisions.decisions.size());
          for (size_t i = 0; i < arm_decisions.decisions.size(); ++i) {
            out += SerializeJobDecisionRecord(i, arm_decisions.decisions[i]);
          }
          if (arm_reports != nullptr) {
            auto rit = arm_reports->find(day);
            if (rit != arm_reports->end()) {
              auto arit = rit->second.find(arm);
              if (arit != rit->second.end()) {
                out += SerializeDayReportSection(arit->second);
              }
            }
          }
          out += "end_arm\n";
        }
      }
    }
    out += "end_day\n";
  }
  out += "end_shard\n";
  return out;
}

Result<FleetShardBlob> ParseFleetShard(const std::string& text) {
  LineReader r(text);

  PHOEBE_ASSIGN_OR_RETURN(std::string magic_line, r.Next());
  int32_t version = 0;
  {
    std::vector<std::string> tok = Split(magic_line, ' ');
    if (tok.size() != 2 || tok[0] != kMagic || !ParseInt32(tok[1], &version).ok()) {
      return Status::InvalidArgument("not a phoebe shard blob (bad magic)");
    }
    if (version < kMinFormatVersion || version > kFormatVersion) {
      return Status::InvalidArgument(
          StrFormat("unsupported shard blob version %d (expected %d..%d)", version,
                    kMinFormatVersion, kFormatVersion));
    }
  }

  FleetShardBlob blob;
  {
    PHOEBE_ASSIGN_OR_RETURN(std::string line, r.Next());
    std::vector<std::string> tok = Split(line, ' ');
    if (tok.size() != 7 || tok[0] != "shard" || tok[3] != "days" ||
        tok[5] != "checksum" ||
        !ParseInt32(tok[1], &blob.header.shard_index).ok() ||
        !ParseInt32(tok[2], &blob.header.shard_count).ok() ||
        !ParseInt32(tok[4], &blob.header.num_days).ok()) {
      return Status::InvalidArgument("malformed shard header: " + line);
    }
    if (!ParseHexU32(tok[6], &blob.header.bundle_checksum).ok()) {
      return Status::InvalidArgument("malformed shard checksum: " + tok[6]);
    }
    if (blob.header.shard_count < 1 || blob.header.shard_index < 0 ||
        blob.header.shard_index >= blob.header.shard_count) {
      return Status::InvalidArgument("invalid shard index/count in header");
    }
    if (blob.header.num_days < 1) {
      return Status::InvalidArgument("invalid num_days in header");
    }
  }

  for (;;) {
    PHOEBE_ASSIGN_OR_RETURN(std::string line, r.Next());
    if (line == "end_shard") break;
    std::vector<std::string> tok = Split(line, ' ');
    int32_t day = 0, num_jobs = 0;
    if (tok.size() != 4 || tok[0] != "day" || tok[2] != "jobs" ||
        !ParseInt32(tok[1], &day).ok() || !ParseInt32(tok[3], &num_jobs).ok() || num_jobs < 0) {
      return Status::InvalidArgument("malformed day header: " + line);
    }
    if (day < 0 || day >= blob.header.num_days) {
      return Status::InvalidArgument(StrFormat("day %d outside [0, %d)", day,
                                               blob.header.num_days));
    }
    if (!ShardOwnsDay(day, blob.header.shard_index, blob.header.shard_count)) {
      return Status::InvalidArgument(
          StrFormat("day %d is not owned by shard %d/%d", day,
                    blob.header.shard_index, blob.header.shard_count));
    }
    if (blob.days.count(day) != 0) {
      return Status::InvalidArgument(StrFormat("duplicate day %d in blob", day));
    }
    FleetDayDecisions decisions;
    decisions.decisions.resize(static_cast<size_t>(num_jobs));
    for (int i = 0; i < num_jobs; ++i) {
      PHOEBE_ASSIGN_OR_RETURN(std::string job_line, r.Next());
      PHOEBE_RETURN_NOT_OK(
          ParseJobDecisionFromTokens(Split(job_line, ' '), static_cast<size_t>(i), r,
                                     &decisions.decisions[static_cast<size_t>(i)]));
    }
    PHOEBE_ASSIGN_OR_RETURN(std::string end_line, r.Next());
    if (end_line.rfind("report ", 0) == 0) {  // v2: optional embedded report
      if (version < 2) {
        return Status::InvalidArgument(
            "report section in a version-1 shard blob");
      }
      FleetDayReport report;
      PHOEBE_RETURN_NOT_OK(
          ParseDayReportSection(Split(end_line, ' '), decisions, r, &report));
      blob.reports.emplace(day, std::move(report));
      PHOEBE_ASSIGN_OR_RETURN(end_line, r.Next());
    }
    int32_t last_arm = 0;
    while (end_line.rfind("arm ", 0) == 0) {  // v3: optional A/B arm sections
      if (version < 3) {
        return Status::InvalidArgument(StrFormat(
            "per-arm section in a version-%d shard blob", version));
      }
      std::vector<std::string> at = Split(end_line, ' ');
      int32_t arm = 0, arm_jobs = 0;
      if (at.size() != 4 || at[2] != "jobs" || !ParseInt32(at[1], &arm).ok() ||
          !ParseInt32(at[3], &arm_jobs).ok()) {
        return Status::InvalidArgument("malformed arm header: " + end_line);
      }
      // Arm 0 is the day's primary record; additional arms are strictly
      // increasing and decide the same jobs.
      if (arm <= last_arm || arm_jobs != num_jobs) {
        return Status::InvalidArgument("malformed arm header: " + end_line);
      }
      last_arm = arm;
      FleetDayDecisions arm_decisions;
      arm_decisions.decisions.resize(static_cast<size_t>(arm_jobs));
      for (int i = 0; i < arm_jobs; ++i) {
        PHOEBE_ASSIGN_OR_RETURN(std::string job_line, r.Next());
        PHOEBE_RETURN_NOT_OK(ParseJobDecisionFromTokens(
            Split(job_line, ' '), static_cast<size_t>(i), r,
            &arm_decisions.decisions[static_cast<size_t>(i)]));
      }
      PHOEBE_ASSIGN_OR_RETURN(std::string arm_end, r.Next());
      if (arm_end.rfind("report ", 0) == 0) {
        FleetDayReport report;
        PHOEBE_RETURN_NOT_OK(ParseDayReportSection(Split(arm_end, ' '),
                                                   arm_decisions, r, &report));
        blob.arm_reports[day].emplace(arm, std::move(report));
        PHOEBE_ASSIGN_OR_RETURN(arm_end, r.Next());
      }
      if (arm_end != "end_arm") {
        return Status::InvalidArgument("expected end_arm, got: " + arm_end);
      }
      blob.arm_days[day].emplace(arm, std::move(arm_decisions));
      PHOEBE_ASSIGN_OR_RETURN(end_line, r.Next());
    }
    if (end_line != "end_day") {
      return Status::InvalidArgument("expected end_day, got: " + end_line);
    }
    blob.days.emplace(day, std::move(decisions));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after end_shard");
  }
  return blob;
}

Result<CombinedFleetShards> CombineFleetShards(
    const std::vector<FleetShardBlob>& blobs, uint32_t expected_bundle_checksum) {
  if (blobs.empty()) return Status::InvalidArgument("no shard blobs to combine");
  const int shard_count = blobs.front().header.shard_count;
  const int num_days = blobs.front().header.num_days;
  if (static_cast<int>(blobs.size()) != shard_count) {
    return Status::InvalidArgument(
        StrFormat("expected %d shard blobs, got %zu", shard_count, blobs.size()));
  }
  std::vector<bool> seen(static_cast<size_t>(shard_count), false);
  CombinedFleetShards merged;
  for (const FleetShardBlob& blob : blobs) {
    const FleetShardHeader& h = blob.header;
    if (h.shard_count != shard_count || h.num_days != num_days) {
      return Status::InvalidArgument("shard blobs disagree on shard count or day range");
    }
    if (h.bundle_checksum != expected_bundle_checksum) {
      return Status::InvalidArgument(StrFormat(
          "shard %d was decided under bundle %08x, expected %08x — refusing to merge",
          h.shard_index, h.bundle_checksum, expected_bundle_checksum));
    }
    if (seen[static_cast<size_t>(h.shard_index)]) {
      return Status::InvalidArgument(StrFormat("duplicate shard index %d", h.shard_index));
    }
    seen[static_cast<size_t>(h.shard_index)] = true;
    for (const auto& [day, decisions] : blob.days) {
      merged.days.emplace(day, decisions);  // ParseFleetShard enforced ownership
    }
    for (const auto& [day, report] : blob.reports) {
      merged.reports.emplace(day, report);
    }
    for (const auto& [day, arms] : blob.arm_days) {
      merged.arm_days.emplace(day, arms);
    }
    for (const auto& [day, arms] : blob.arm_reports) {
      merged.arm_reports.emplace(day, arms);
    }
  }
  for (int s = 0; s < shard_count; ++s) {
    if (!seen[static_cast<size_t>(s)]) {
      return Status::InvalidArgument(StrFormat("missing shard %d of %d", s, shard_count));
    }
  }
  for (int d = 0; d < num_days; ++d) {
    if (merged.days.count(d) == 0) {
      return Status::InvalidArgument(
          StrFormat("day %d missing from shard %d's blob", d, d % shard_count));
    }
  }
  return merged;
}

std::string FleetDayReportJson(const FleetDayReport& report, int day) {
  JsonWriter w;
  w.BeginObject();
  w.KV("day", day);
  w.KV("jobs_considered", report.jobs_considered);
  w.KV("jobs_with_cut", report.jobs_with_cut);
  w.KV("jobs_admitted", report.jobs_admitted);
  w.KV("storage_used_bytes", report.storage_used_bytes);
  w.KV("total_temp_byte_seconds", report.total_temp_byte_seconds);
  w.KV("realized_saving_byte_seconds", report.realized_saving_byte_seconds);
  w.KV("saving_fraction", report.SavingFraction());
  w.KV("knapsack_threshold", report.knapsack_threshold);
  w.KV("cache_hits", report.cache_hits);
  w.KV("cache_misses", report.cache_misses);
  w.KV("cache_evictions", report.cache_evictions);
  w.Key("outcomes");
  w.BeginArray();
  for (const FleetJobOutcome& out : report.outcomes) {
    w.BeginObject();
    w.KV("job_id", out.job_id);
    w.KV("admitted", out.admitted);
    w.KV("global_bytes", out.global_bytes);
    w.KV("predicted_value", out.predicted_value);
    w.KV("realized_value", out.realized_value);
    w.Key("cuts");
    w.BeginArray();
    for (const cluster::CutSet& cut : out.cuts) w.Value(CutBits(cut));
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace phoebe::core
