#include "core/evaluate.h"

#include <algorithm>
#include <optional>

#include "cluster/failure.h"

namespace phoebe::core {

namespace {

/// Cost source of a deterministic approach (shared by BackTester and the
/// arm-based evaluator; kRandom also maps here for the member ChooseCut).
CostSource ApproachSource(Approach approach) {
  switch (approach) {
    case Approach::kOptimal: return CostSource::kTruth;
    case Approach::kOptimizerEst: return CostSource::kOptimizerEstimates;
    case Approach::kConstant: return CostSource::kConstant;
    case Approach::kMl: return CostSource::kMlSimulator;
    case Approach::kMlStacked: return CostSource::kMlStacked;
    case Approach::kRandom:
    case Approach::kMidPoint:
      // Baselines position the cut on the simulated schedule with ML exec
      // inputs (the schedule source does not matter for Random).
      return CostSource::kMlSimulator;
  }
  return CostSource::kMlSimulator;
}

}  // namespace

const std::string& ApproachName(Approach a) {
  static const std::map<Approach, std::string> kNames = {
      {Approach::kRandom, "Random"},
      {Approach::kMidPoint, "Mid-Point"},
      {Approach::kOptimizerEst, "Optimizer+EstimatedCost"},
      {Approach::kConstant, "Optimizer+ConstantCost"},
      {Approach::kMl, "Optimizer+MLCost"},
      {Approach::kMlStacked, "Optimizer+MLCost+Stacking"},
      {Approach::kOptimal, "Optimal"},
  };
  return kNames.at(a);
}

const std::vector<Approach>& AllApproaches() {
  static const std::vector<Approach> kAll = {
      Approach::kRandom,   Approach::kMidPoint,  Approach::kOptimizerEst,
      Approach::kConstant, Approach::kMl,        Approach::kMlStacked,
      Approach::kOptimal,
  };
  return kAll;
}

double RealizedTempSaving(const workload::JobInstance& job, const cluster::CutSet& cut) {
  double total = job.TempByteSeconds();
  if (total <= 0.0 || cut.empty()) return 0.0;
  double clear = cluster::CutClearTime(job, cut);
  double saved = 0.0;
  for (size_t u = 0; u < job.truth.size(); ++u) {
    if (!cut.before_cut[u]) continue;
    const workload::StageTruth& t = job.truth[u];
    double held = std::max(0.0, clear - t.end_time);
    saved += t.output_bytes * std::max(0.0, t.ttl - held);
  }
  return std::clamp(saved / total, 0.0, 1.0);
}

double RealizedTempSavingMultiCut(const workload::JobInstance& job,
                                  const std::vector<cluster::CutSet>& cuts) {
  if (cuts.empty()) return 0.0;
  if (cuts.size() == 1) return RealizedTempSaving(job, cuts.front());
  double total = job.TempByteSeconds();
  if (total <= 0.0) return 0.0;
  std::vector<double> clear(cuts.size());
  for (size_t c = 0; c < cuts.size(); ++c) {
    clear[c] = cluster::CutClearTime(job, cuts[c]);
  }
  double saved = 0.0;
  for (size_t u = 0; u < job.truth.size(); ++u) {
    // Earliest (innermost) cut containing the stage clears its data.
    for (size_t c = 0; c < cuts.size(); ++c) {
      if (cuts[c].before_cut.empty() || !cuts[c].before_cut[u]) continue;
      const workload::StageTruth& t = job.truth[u];
      double held = std::max(0.0, clear[c] - t.end_time);
      saved += t.output_bytes * std::max(0.0, t.ttl - held);
      break;
    }
  }
  return std::clamp(saved / total, 0.0, 1.0);
}

BackTester::BackTester(const DecisionEngine* engine, double mtbf_seconds,
                       uint64_t seed)
    : engine_(engine), mtbf_seconds_(mtbf_seconds), rng_(seed) {
  PHOEBE_CHECK(engine != nullptr);
  PHOEBE_CHECK(mtbf_seconds > 0.0);
}

CostSource BackTester::SourceFor(Approach approach) const {
  return ApproachSource(approach);
}

Result<CutResult> BackTester::ChooseCut(const workload::JobInstance& job,
                                        Approach approach, Objective objective,
                                        const telemetry::HistoricStats& stats) {
  PHOEBE_ASSIGN_OR_RETURN(StageCosts costs,
                          engine_->BuildCosts(job, SourceFor(approach), stats));
  switch (approach) {
    case Approach::kRandom:
      return RandomCut(job.graph, costs, &rng_);
    case Approach::kMidPoint:
      return MidPointCut(job.graph, costs);
    default:
      break;
  }
  if (objective == Objective::kTempStorage) {
    return OptimizeTempStorage(job.graph, costs);
  }
  return OptimizeRecovery(job.graph, costs, engine_->delta());
}

Result<std::map<Approach, RunningStats>> BackTester::EvaluateTempStorage(
    const std::vector<workload::JobInstance>& jobs,
    const telemetry::HistoricStats& stats, const std::vector<Approach>& approaches) {
  std::map<Approach, RunningStats> out;
  for (const workload::JobInstance& job : jobs) {
    if (job.graph.num_stages() < 2) continue;
    for (Approach a : approaches) {
      PHOEBE_ASSIGN_OR_RETURN(CutResult cut,
                              ChooseCut(job, a, Objective::kTempStorage, stats));
      out[a].Add(RealizedTempSaving(job, cut.cut));
    }
  }
  return out;
}

Result<std::map<Approach, RunningStats>> BackTester::EvaluateRecovery(
    const std::vector<workload::JobInstance>& jobs,
    const telemetry::HistoricStats& stats, const std::vector<Approach>& approaches) {
  std::map<Approach, RunningStats> out;
  for (const workload::JobInstance& job : jobs) {
    if (job.graph.num_stages() < 2) continue;
    cluster::FailureModel failure(job, mtbf_seconds_);
    for (Approach a : approaches) {
      PHOEBE_ASSIGN_OR_RETURN(CutResult cut,
                              ChooseCut(job, a, Objective::kRecovery, stats));
      // The paper's §5.3 metric: expected P_F * T-bar under the true
      // schedule, relative to the expected uncheckpointed loss.
      out[a].Add(failure.RestartSavingFraction(cut.cut));
    }
  }
  return out;
}

Result<RunningStats> BackTester::EvaluateApproach(
    const std::vector<workload::JobInstance>& jobs,
    const telemetry::HistoricStats& stats, Approach approach, Objective objective) {
  if (approach != Approach::kRandom) {
    PHOEBE_ASSIGN_OR_RETURN(
        std::vector<RunningStats> arms,
        EvaluateApproachArms({engine_}, jobs, stats, approach, objective,
                             mtbf_seconds_));
    return arms.front();
  }
  // kRandom consumes this tester's rng stream; it cannot share an arm pass.
  RunningStats out;
  for (const workload::JobInstance& job : jobs) {
    if (job.graph.num_stages() < 2) continue;
    PHOEBE_ASSIGN_OR_RETURN(CutResult cut, ChooseCut(job, approach, objective, stats));
    if (objective == Objective::kTempStorage) {
      out.Add(RealizedTempSaving(job, cut.cut));
    } else {
      cluster::FailureModel failure(job, mtbf_seconds_);
      out.Add(failure.RestartSavingFraction(cut.cut));
    }
  }
  return out;
}

Result<std::vector<RunningStats>> EvaluateApproachArms(
    const std::vector<const DecisionEngine*>& engines,
    const std::vector<workload::JobInstance>& jobs,
    const telemetry::HistoricStats& stats, Approach approach,
    Objective objective, double mtbf_seconds) {
  if (engines.empty()) return Status::InvalidArgument("no engines to evaluate");
  for (const DecisionEngine* e : engines) {
    if (e == nullptr) return Status::InvalidArgument("null engine in arm list");
  }
  if (approach == Approach::kRandom) {
    return Status::InvalidArgument(
        "Approach::kRandom needs a per-tester rng stream; use "
        "BackTester::EvaluateApproach");
  }
  if (mtbf_seconds <= 0.0) {
    return Status::InvalidArgument("mtbf_seconds must be > 0");
  }
  std::vector<RunningStats> out(engines.size());
  for (const workload::JobInstance& job : jobs) {
    if (job.graph.num_stages() < 2) continue;
    // Job-level work shared across arms: the eligibility check above and,
    // for recovery, the failure model over the true schedule.
    std::optional<cluster::FailureModel> failure;
    if (objective != Objective::kTempStorage) {
      failure.emplace(job, mtbf_seconds);
    }
    for (size_t k = 0; k < engines.size(); ++k) {
      const DecisionEngine* engine = engines[k];
      PHOEBE_ASSIGN_OR_RETURN(
          StageCosts costs,
          engine->BuildCosts(job, ApproachSource(approach), stats));
      CutResult cut;
      if (approach == Approach::kMidPoint) {
        PHOEBE_ASSIGN_OR_RETURN(cut, MidPointCut(job.graph, costs));
      } else if (objective == Objective::kTempStorage) {
        PHOEBE_ASSIGN_OR_RETURN(cut, OptimizeTempStorage(job.graph, costs));
      } else {
        PHOEBE_ASSIGN_OR_RETURN(cut,
                                OptimizeRecovery(job.graph, costs, engine->delta()));
      }
      if (objective == Objective::kTempStorage) {
        out[k].Add(RealizedTempSaving(job, cut.cut));
      } else {
        out[k].Add(failure->RestartSavingFraction(cut.cut));
      }
    }
  }
  return out;
}

}  // namespace phoebe::core
