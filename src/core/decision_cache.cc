#include "core/decision_cache.h"

#include <bit>
#include <cmath>
#include <limits>
#include <string>

#include "ml/text.h"

namespace phoebe::core {

Status TemplateCacheConfig::Validate() const {
  if (enabled && capacity == 0) {
    return Status::InvalidArgument(
        "template cache enabled with zero capacity — every insert would "
        "be dropped; disable the cache or give it room");
  }
  if (quantize_bps < 0) {
    return Status::InvalidArgument("template cache quantize_bps must be >= 0");
  }
  return Status::OK();
}

namespace {

/// Raw bit pattern of a double, with -0.0 collapsed to +0.0 so the two
/// compare equal the same way the arithmetic treats them.
int64_t Bits(double v) {
  if (v == 0.0) v = 0.0;
  return std::bit_cast<int64_t>(v);
}

/// Log-bucket a byte size with relative bucket width `bps` basis points:
/// sizes within a factor of (1 + bps/1e4) of each other share a bucket.
/// Non-finite and sub-byte values collapse to sentinel buckets so malformed
/// traces can never alias a real size.
int64_t SizeBucket(double v, int bps) {
  if (std::isnan(v)) return std::numeric_limits<int64_t>::min();
  if (std::isinf(v)) {
    return v > 0.0 ? std::numeric_limits<int64_t>::max()
                   : std::numeric_limits<int64_t>::min() + 1;
  }
  if (v <= 1.0) return 0;
  const double width = std::log1p(static_cast<double>(bps) / 1e4);
  return static_cast<int64_t>(std::floor(std::log(v) / width));
}

/// Structural digest of the template: topology, stage types, operators, and
/// the text-feature strings. Per-instance fields (task counts, estimates,
/// truth) are deliberately excluded — they live in the signature.
uint64_t GraphDigest(const workload::JobInstance& job) {
  // Streamed FNV-1a over the same byte sequence the buffered version hashed
  // (every field folded in as a little-endian int64, names as raw bytes) —
  // digests are unchanged, but the per-job std::string build is gone from
  // the cache-key hot path.
  uint64_t h = ml::kFnv1a64Basis;
  auto put_i = [&](int64_t v) { h = ml::Fnv1a64(&v, sizeof v, h); };
  const dag::JobGraph& g = job.graph;
  put_i(static_cast<int64_t>(g.num_stages()));
  for (const dag::Stage& s : g.stages()) {
    put_i(s.stage_type);
    put_i(static_cast<int64_t>(s.operators.size()));
    for (dag::OperatorKind op : s.operators) put_i(static_cast<int64_t>(op));
  }
  for (const dag::Edge& e : g.edges()) {
    put_i(e.from);
    put_i(e.to);
  }
  put_i(static_cast<int64_t>(job.job_name.size()));
  h = ml::Fnv1a64(job.job_name.data(), job.job_name.size(), h);
  put_i(static_cast<int64_t>(job.norm_input_name.size()));
  h = ml::Fnv1a64(job.norm_input_name.data(), job.norm_input_name.size(), h);
  return h;
}

}  // namespace

TemplateCacheKey BuildTemplateCacheKey(const workload::JobInstance& job,
                                       const telemetry::HistoricStats& stats,
                                       CostSource source, Objective objective,
                                       int num_cuts, int quantize_bps) {
  TemplateCacheKey key;
  key.template_id = job.template_id;
  key.source = static_cast<int>(source);
  key.objective = static_cast<int>(objective);
  key.num_cuts = num_cuts;
  key.graph_digest = GraphDigest(job);

  const size_t ns = job.graph.num_stages();
  if (quantize_bps > 0) {
    // Approximate mode: only the compile-time-known root input sizes, log
    // bucketed. Two instances of a template whose inputs drifted less than
    // the tolerance produce the same key and share the cached cut. Roots are
    // scanned in place (same stage order as JobGraph::Roots) to keep this
    // prepass free of temporary vectors.
    for (size_t i = 0; i < ns; ++i) {
      if (!job.graph.upstream(static_cast<dag::StageId>(i)).empty()) continue;
      key.signature.push_back(SizeBucket(job.truth[i].input_bytes, quantize_bps));
    }
    return key;
  }

  // Exact mode: the raw bits of every value DecideOne reads for this source,
  // so a key match implies the recomputed decision would be identical.
  key.signature.reserve(ns * (source == CostSource::kTruth ? 16 : 12));
  for (size_t i = 0; i < ns; ++i) {
    const workload::StageEstimates& e = job.est[i];
    key.signature.push_back(Bits(e.est_cost));
    key.signature.push_back(Bits(e.est_exclusive_cost));
    key.signature.push_back(Bits(e.est_input_cardinality));
    key.signature.push_back(Bits(e.est_cardinality));
    key.signature.push_back(Bits(e.est_output_bytes));
    const dag::Stage& s = job.graph.stage(static_cast<dag::StageId>(i));
    key.signature.push_back(s.num_tasks);
    key.signature.push_back(job.truth[i].num_tasks);
    telemetry::HistoricStats::Entry h = stats.Get(job.template_id, s.stage_type);
    key.signature.push_back(Bits(h.avg_exclusive_time));
    key.signature.push_back(Bits(h.avg_output_bytes));
    key.signature.push_back(Bits(h.avg_ttl));
    key.signature.push_back(h.support);
    key.signature.push_back(stats.HasExact(job.template_id, s.stage_type) ? 1 : 0);
    if (source == CostSource::kTruth) {
      const workload::StageTruth& t = job.truth[i];
      key.signature.push_back(Bits(t.output_bytes));
      key.signature.push_back(Bits(t.ttl));
      key.signature.push_back(Bits(t.end_time));
      key.signature.push_back(Bits(t.tfs));
    }
  }
  return key;
}

}  // namespace phoebe::core
