#include "core/simulator.h"

#include <algorithm>

#include "common/strings.h"

namespace phoebe::core {

Result<SimulatedSchedule> SimulateSchedule(const dag::JobGraph& graph,
                                           const std::vector<double>& exec_seconds) {
  SimulatorScratch scratch;
  SimulatedSchedule sched;
  PHOEBE_RETURN_NOT_OK(SimulateScheduleInto(graph, exec_seconds, &scratch, &sched));
  return sched;
}

Status SimulateScheduleInto(const dag::JobGraph& graph,
                            const std::vector<double>& exec_seconds,
                            SimulatorScratch* scratch, SimulatedSchedule* out) {
  if (exec_seconds.size() != graph.num_stages()) {
    return Status::InvalidArgument(
        StrFormat("exec_seconds has %zu entries for %zu stages", exec_seconds.size(),
                  graph.num_stages()));
  }
  PHOEBE_RETURN_NOT_OK(graph.TopologicalOrderInto(&scratch->topo, &scratch->order));

  out->start.assign(graph.num_stages(), 0.0);
  out->end.assign(graph.num_stages(), 0.0);
  out->job_end = 0.0;

  // Algorithm 1: D[s] = max over upstream P[u]; P[s] = D[s] + T[s].
  for (dag::StageId s : scratch->order) {
    const size_t si = static_cast<size_t>(s);
    double max_upstream_end = 0.0;
    for (dag::StageId up : graph.upstream(s)) {
      max_upstream_end = std::max(max_upstream_end, out->end[static_cast<size_t>(up)]);
    }
    out->start[si] = max_upstream_end;
    out->end[si] = max_upstream_end + std::max(0.0, exec_seconds[si]);
    out->job_end = std::max(out->job_end, out->end[si]);
  }
  return Status::OK();
}

}  // namespace phoebe::core
