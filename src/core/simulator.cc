#include "core/simulator.h"

#include <algorithm>

#include "common/strings.h"

namespace phoebe::core {

Result<SimulatedSchedule> SimulateSchedule(const dag::JobGraph& graph,
                                           const std::vector<double>& exec_seconds) {
  if (exec_seconds.size() != graph.num_stages()) {
    return Status::InvalidArgument(
        StrFormat("exec_seconds has %zu entries for %zu stages", exec_seconds.size(),
                  graph.num_stages()));
  }
  PHOEBE_ASSIGN_OR_RETURN(std::vector<dag::StageId> order, graph.TopologicalOrder());

  SimulatedSchedule sched;
  sched.start.assign(graph.num_stages(), 0.0);
  sched.end.assign(graph.num_stages(), 0.0);

  // Algorithm 1: D[s] = max over upstream P[u]; P[s] = D[s] + T[s].
  for (dag::StageId s : order) {
    const size_t si = static_cast<size_t>(s);
    double max_upstream_end = 0.0;
    for (dag::StageId up : graph.upstream(s)) {
      max_upstream_end = std::max(max_upstream_end, sched.end[static_cast<size_t>(up)]);
    }
    sched.start[si] = max_upstream_end;
    sched.end[si] = max_upstream_end + std::max(0.0, exec_seconds[si]);
    sched.job_end = std::max(sched.job_end, sched.end[si]);
  }
  return sched;
}

}  // namespace phoebe::core
