#include "core/explain.h"

#include <algorithm>

#include "common/json.h"
#include "common/strings.h"

namespace phoebe::core {

Result<std::string> ExplainDecisionJson(const workload::JobInstance& job,
                                        const StageCosts& costs,
                                        const CutResult& decision) {
  PHOEBE_ASSIGN_OR_RETURN(std::vector<SweepPoint> sweep,
                          TempStorageSweep(job.graph, costs));

  JsonWriter w;
  w.BeginObject();
  w.Key("job").BeginObject();
  w.KV("id", job.job_id)
      .KV("name", job.job_name)
      .KV("template", job.template_id)
      .KV("stages", job.graph.num_stages());
  w.EndObject();

  w.Key("sweep").BeginArray();
  for (const SweepPoint& p : sweep) {
    w.BeginObject()
        .KV("stage", job.graph.stage(p.stage).name)
        .KV("end_time", p.end_time)
        .KV("cum_bytes", p.cum_bytes)
        .KV("min_ttl", p.min_ttl)
        .KV("objective", p.objective)
        .EndObject();
  }
  w.EndArray();

  w.Key("decision").BeginObject();
  w.KV("has_cut", !decision.cut.empty());
  w.KV("objective", decision.objective);
  w.KV("global_bytes", decision.global_bytes);
  size_t before = 0;
  if (!decision.cut.empty()) {
    for (bool b : decision.cut.before_cut) before += b ? 1 : 0;
  }
  w.KV("stages_before_cut", before);
  w.Key("checkpoint_stages").BeginArray();
  if (!decision.cut.empty()) {
    for (dag::StageId u : cluster::CheckpointStages(job.graph, decision.cut)) {
      w.BeginObject()
          .KV("name", job.graph.stage(u).name)
          .KV("est_output_bytes", costs.output_bytes[static_cast<size_t>(u)])
          .KV("est_ttl", costs.ttl[static_cast<size_t>(u)])
          .EndObject();
    }
  }
  w.EndArray();
  w.EndObject();  // decision
  w.EndObject();  // root
  return w.str();
}

Result<std::string> ExplainDecisionText(const workload::JobInstance& job,
                                        const StageCosts& costs,
                                        const CutResult& decision) {
  PHOEBE_ASSIGN_OR_RETURN(std::vector<SweepPoint> sweep,
                          TempStorageSweep(job.graph, costs));
  std::string out = StrFormat("job '%s' (%zu stages)\n", job.job_name.c_str(),
                              job.graph.num_stages());
  if (decision.cut.empty()) {
    out += "decision: no profitable checkpoint\n";
    return out;
  }
  size_t before = 0;
  for (bool b : decision.cut.before_cut) before += b ? 1 : 0;
  out += StrFormat(
      "decision: cut after %zu stages; predicted saving %.3g byte-seconds; "
      "global storage %.3g bytes\n",
      before, decision.objective, decision.global_bytes);
  out += "checkpoint stages:\n";
  for (dag::StageId u : cluster::CheckpointStages(job.graph, decision.cut)) {
    out += StrFormat("  %-28s est output %.3g B, est TTL %.1f s\n",
                     job.graph.stage(u).name.c_str(),
                     costs.output_bytes[static_cast<size_t>(u)],
                     costs.ttl[static_cast<size_t>(u)]);
  }
  // Where the chosen point sits on the sweep curve.
  double peak = 0.0;
  for (const SweepPoint& p : sweep) peak = std::max(peak, p.objective);
  out += StrFormat("sweep: %zu candidates, curve peak %.3g byte-seconds\n",
                   sweep.size(), peak);
  return out;
}

}  // namespace phoebe::core
