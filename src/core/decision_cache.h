// Recurring-template decision cache for the fleet hot path.
//
// Phoebe decides at compile time for a fleet where >70% of jobs are
// recurrences of known templates (paper §2.1), so two instances of the same
// template usually present near-identical inputs to the optimizer. The cache
// keys a finished cut decision on (template, cost source, objective, cut
// count, graph digest, input-size signature) and replays it for later
// instances instead of re-running ML scoring + the DP cut search.
//
// Two signature modes, selected by `quantize_bps`:
//   * Exact (quantize_bps == 0, the default): the signature is the raw bit
//     pattern of every value the decision reads (optimizer estimates,
//     historic-stats entries, task counts; truth costs for the kTruth
//     oracle). A hit therefore *proves* the cached decision is the one
//     DecideOne would recompute, so enabling the cache is byte-neutral —
//     FleetDayReport outcomes are identical to cache-off runs.
//   * Approximate (quantize_bps > 0): the signature is only the job's
//     root-stage input sizes, log-bucketed with relative width quantize_bps
//     basis points. Instances whose inputs drift within the tolerance share
//     decisions even though per-instance estimate noise differs — this is
//     the mode that yields real hit rates on noisy recurring workloads, at
//     the cost of serving a slightly stale cut to drifted instances.
//
// Determinism: the cache itself is not thread-safe; the fleet driver performs
// all lookups and inserts in serial arrival order (see fleet.cc), which keeps
// reports byte-identical for any FleetConfig::num_threads.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/bundle.h"
#include "telemetry/repository.h"
#include "workload/job_instance.h"

namespace phoebe::core {

/// \brief Knobs for the per-template decision cache (off by default).
struct TemplateCacheConfig {
  bool enabled = false;
  /// Maximum cached decisions; least-recently-used entries evict beyond it.
  size_t capacity = 4096;
  /// Input-size drift tolerance in basis points (1/100 of a percent).
  /// 0 = exact mode (bit-identical inputs only; provably byte-neutral).
  /// e.g. 5000 = instances within ~±25% input size share a log bucket.
  int quantize_bps = 0;

  /// Structural validity: an enabled cache needs capacity >= 1, and
  /// quantize_bps must be non-negative.
  Status Validate() const;
};

/// \brief Cache key: decision context plus the input signature.
struct TemplateCacheKey {
  int template_id = 0;
  int source = 0;     ///< CostSource as int
  int objective = 0;  ///< Objective as int
  int num_cuts = 1;
  /// FNV-1a over the template's structure: stage count, stage types,
  /// operator lists, edges, and the text-feature strings. Deliberately
  /// excludes per-instance fields (task counts, estimates) — those belong to
  /// the signature so approximate mode can tolerate their drift.
  uint64_t graph_digest = 0;
  /// Exact mode: raw bits of every decision input. Approximate mode:
  /// log-bucketed root-stage input sizes.
  std::vector<int64_t> signature;

  friend bool operator<(const TemplateCacheKey& a, const TemplateCacheKey& b) {
    if (a.template_id != b.template_id) return a.template_id < b.template_id;
    if (a.source != b.source) return a.source < b.source;
    if (a.objective != b.objective) return a.objective < b.objective;
    if (a.num_cuts != b.num_cuts) return a.num_cuts < b.num_cuts;
    if (a.graph_digest != b.graph_digest) return a.graph_digest < b.graph_digest;
    return a.signature < b.signature;
  }
};

/// Build the cache key for one job under a decision context. `quantize_bps`
/// selects the signature mode (see file comment).
TemplateCacheKey BuildTemplateCacheKey(const workload::JobInstance& job,
                                       const telemetry::HistoricStats& stats,
                                       CostSource source, Objective objective,
                                       int num_cuts, int quantize_bps);

/// \brief Deterministic LRU cache from TemplateCacheKey to a decision value.
///
/// Recency is a logical tick bumped on every Lookup hit and Insert, so the
/// eviction order is a pure function of the operation sequence — no clocks,
/// no hashing nondeterminism (std::map keeps keys ordered). Not thread-safe;
/// callers serialize access (the fleet driver does all cache traffic in
/// arrival order).
template <typename V>
class TemplateDecisionCache {
 public:
  explicit TemplateDecisionCache(size_t capacity = 4096) : capacity_(capacity) {}

  /// Returns the cached value and refreshes its recency, or nullptr.
  const V* Lookup(const TemplateCacheKey& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    Touch(it);
    return &it->second.value;
  }

  /// Insert or overwrite; evicts the least-recently-used entry when full.
  void Insert(const TemplateCacheKey& key, V value) {
    if (capacity_ == 0) return;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.value = std::move(value);
      Touch(it);
      return;
    }
    if (entries_.size() >= capacity_) {
      auto lru = recency_.begin();  // smallest tick = least recently used
      entries_.erase(lru->second);
      recency_.erase(lru);
      ++evictions_;
    }
    Entry e;
    e.value = std::move(value);
    e.tick = ++tick_;
    auto [pos, inserted] = entries_.emplace(key, std::move(e));
    (void)inserted;
    recency_.emplace(pos->second.tick, pos->first);
  }

  size_t size() const { return entries_.size(); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }

  void Clear() {
    entries_.clear();
    recency_.clear();
  }

 private:
  struct Entry {
    V value;
    uint64_t tick = 0;
  };

  void Touch(typename std::map<TemplateCacheKey, Entry>::iterator it) {
    recency_.erase(it->second.tick);
    it->second.tick = ++tick_;
    recency_.emplace(it->second.tick, it->first);
  }

  size_t capacity_;
  uint64_t tick_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  std::map<TemplateCacheKey, Entry> entries_;
  std::map<uint64_t, TemplateCacheKey> recency_;  ///< tick -> key
};

}  // namespace phoebe::core
