// Multi-process fleet sharding: the serialization protocol that lets N
// independent processes split a multi-day fleet run by day and still produce
// a FleetDayReport stream byte-identical to the unsharded run.
//
// Protocol (see DESIGN.md "Artifacts & serving"):
//   1. Every process loads the *same* PipelineBundle (the header carries the
//      bundle checksum so a mismatched artifact fails loudly at merge).
//   2. Shard I of N decides the days it owns — day d (0-based) belongs to
//      shard d % N — with FleetDriver::DecideDay, which touches no shared
//      state, and writes one blob file.
//   3. A serial merge parses the blobs, checks they tile the day range
//      exactly, and replays each day in order through FleetDriver::ReplayDay
//      on one driver. The admission knapsack and the template decision cache
//      are inherently sequential (admission consumes budget in arrival
//      order; the cache carries state across days), so they run only here —
//      and because ReplayDay shares RunDay's code path, the merged reports
//      are byte-for-byte the unsharded ones.
//
// Blob text format (line-oriented, strict parse, '\n' line ends):
//   phoebe_shard 2
//   shard <index> <count> days <num_days> checksum <crc32 hex8>
//   day <d> jobs <m>
//     job <i> -                                    # ineligible (< 2 stages)
//     job <i> <objective> <global_bytes> <k>       # doubles as %.17g
//       cut <01-bitstring>                         # k lines, innermost-first
//     report <considered> <with_cut> <admitted> <storage> <total_tbs>
//            <realized> <threshold> <hits> <misses> <evictions>  # optional, v2
//       outcome <i> <job_id> <admitted01> <global_bytes> <predicted> <realized>
//                                                  # m lines when report present
//   end_day
//   ...
//   end_shard
//
// Version 2 adds the optional per-day `report` section: a shard that ran the
// day's full admission locally (only valid when the run is unbudgeted and
// cache-off — then each day is independent of every other day and of
// arrival-order cache state) embeds the finished FleetDayReport, and the
// merge becomes report concatenation instead of a per-day ReplayDay. Outcome
// cut bitsets are not repeated: the parser reconstructs them from the day's
// decision records, which RunDay copies them from verbatim. Version-1 blobs
// (no report sections) still parse.
//
// Version 3 adds optional per-day *arm* sections for differential A/B runs
// (core/fleet_ab.h): after the day's primary records (arm 0) and its
// optional report, each additional arm k >= 1 embeds its own decisions —
// same day, same job count — and optionally its own report:
//   arm <k> jobs <m>          # k strictly increasing within the day
//     job <i> ...             # m records, same line format as arm 0
//     report ...              # optional, same format/conditions as arm 0
//   end_arm
// The serializer stamps version 3 only when an arm section is present, so
// single-arm blobs stay byte-identical to v2 output; parsers reject arm
// sections in v1/v2 blobs the way v1 rejects report sections.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/fleet.h"

namespace phoebe::core {

/// \brief Identity of one shard's blob: which slice of which run it holds.
struct FleetShardHeader {
  int shard_index = 0;          ///< 0-based shard id
  int shard_count = 1;          ///< total shards N
  int num_days = 0;             ///< days in the whole run (not per shard)
  uint32_t bundle_checksum = 0; ///< PipelineBundle::checksum() of the artifact
};

/// \brief A parsed shard blob: header + decisions for the days it owns, plus
/// (v2, optional per day) the shard-side replayed report, plus (v3, optional
/// per day) the additional arms' decisions/reports of an A/B run. Arm 0 of
/// an A/B run is the primary `days`/`reports` pair, so single-arm consumers
/// can read a v3 blob without knowing about arms.
struct FleetShardBlob {
  FleetShardHeader header;
  std::map<int, FleetDayDecisions> days;  ///< day index -> decide-phase output
  /// Days whose report the shard replayed locally (subset of `days`; empty
  /// for v1 blobs or decide-only shards). Outcome cut/cuts are reconstructed
  /// from the decision records at parse time.
  std::map<int, FleetDayReport> reports;
  /// v3: day index -> arm index (>= 1) -> that arm's decide-phase output
  /// over the same jobs. Every day with an entry here also appears in
  /// `days` (its arm 0) with the same job count.
  std::map<int, std::map<int, FleetDayDecisions>> arm_days;
  /// v3: shard-side replayed reports per additional arm (subset of
  /// `arm_days`, same validity conditions as `reports`).
  std::map<int, std::map<int, FleetDayReport>> arm_reports;
};

/// True iff shard `shard_index` of `shard_count` owns day `day`.
inline bool ShardOwnsDay(int day, int shard_index, int shard_count) {
  return day % shard_count == shard_index;
}

/// One job's decision record in the blob line format: the `job <i> ...`
/// line plus its `cut <bits>` lines (all newline-terminated), or `job <i> -`
/// for an ineligible slot. Shared with the serve protocol, whose decision
/// responses carry exactly this record — the two cross-process decision
/// formats cannot drift apart because they are the same bytes.
std::string SerializeJobDecisionRecord(size_t index,
                                       const std::optional<FleetDecision>& decision);

/// Strict parse of one job decision record occupying the whole string. The
/// record's job index must equal `expected_index`. `*out` untouched on
/// error.
Status ParseJobDecisionRecord(const std::string& text, size_t expected_index,
                              std::optional<FleetDecision>* out);

/// Serialize one shard's decisions. `days` must hold exactly the days the
/// header's shard owns in [0, num_days). `reports`, if non-null, embeds the
/// shard-side replayed report for each day it covers (every report day must
/// also appear in `days`, with matching outcome count); callers must only
/// pass reports from unbudgeted, cache-off runs — the only configuration
/// where a day's report is independent of the other days. `arm_days` /
/// `arm_reports`, if non-null, embed the additional arms of an A/B run
/// (arm indices >= 1; every arm day must appear in `days` with the same job
/// count, every arm report in `arm_days`). The blob is stamped version 3
/// iff at least one arm section is written, version 2 otherwise.
Result<std::string> SerializeFleetShard(
    const FleetShardHeader& header, const std::map<int, FleetDayDecisions>& days,
    const std::map<int, FleetDayReport>* reports = nullptr,
    const std::map<int, std::map<int, FleetDayDecisions>>* arm_days = nullptr,
    const std::map<int, std::map<int, FleetDayReport>>* arm_reports = nullptr);

/// Strict parse of a shard blob (format version 1, 2, or 3); any malformed
/// line is an error.
Result<FleetShardBlob> ParseFleetShard(const std::string& text);

/// \brief Output of CombineFleetShards: the merged decision map (always
/// complete over [0, num_days)) plus whatever shard-side reports the blobs
/// embedded. When `reports` covers every day — and the merge-time config is
/// unbudgeted and cache-off — the merge can emit them directly instead of
/// replaying each day.
struct CombinedFleetShards {
  std::map<int, FleetDayDecisions> days;
  std::map<int, FleetDayReport> reports;
  /// v3 A/B runs: additional arms' decisions/reports, keyed like
  /// FleetShardBlob's maps. Arm coverage is the caller's to check (the A/B
  /// merge requires every day to carry the same arm set).
  std::map<int, std::map<int, FleetDayDecisions>> arm_days;
  std::map<int, std::map<int, FleetDayReport>> arm_reports;
};

/// Validate that `blobs` are the complete shard set of one run (headers
/// agree, indices 0..N-1 appear exactly once, every day is present in its
/// owner's blob and nowhere else) and merge them into one day->decisions map
/// covering [0, num_days), carrying along any embedded shard-side reports.
/// `expected_bundle_checksum` guards against merging blobs decided under a
/// different artifact.
Result<CombinedFleetShards> CombineFleetShards(
    const std::vector<FleetShardBlob>& blobs, uint32_t expected_bundle_checksum);

/// Canonical single-line JSON rendering of a day report — the byte-compared
/// unit of the shard/merge determinism guarantee (doubles as %.17g, key order
/// fixed, per-job outcomes included). Ends without a newline.
std::string FleetDayReportJson(const FleetDayReport& report, int day);

}  // namespace phoebe::core
