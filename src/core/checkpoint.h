// Checkpoint optimizer — heuristic algorithms (paper §5.2/§5.3/§5.5) and
// baseline selectors (§6.2/§6.3).
//
// The heuristic exploits Proposition 5.1: an optimal single cut is a
// TTL-threshold set, so sweeping stages in order of (estimated) end time and
// evaluating the objective at each prefix finds the optimum in O(n log n).
// A dynamic program extends the sweep to K cuts. Global storage budgets are
// applied separately (see core/knapsack.h), per the paper's two-phase design.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/status.h"
#include "dag/job_graph.h"

namespace phoebe::core {

/// \brief Per-stage cost estimates the optimizer consumes. All entries are
/// indexed by StageId. Different estimate sources (truth, optimizer
/// estimates, constants, ML predictions) plug into the same fields, which is
/// how the Figure 12/14 approach comparison is realized.
struct StageCosts {
  std::vector<double> output_bytes;
  std::vector<double> ttl;
  std::vector<double> end_time;  ///< schedule position; job_end - ttl
  std::vector<double> tfs;       ///< time from start (recovery objective)
  std::vector<int> num_tasks;    ///< for failure probabilities
  /// (Estimated) time the whole job ends and the cluster clears *all*
  /// remaining temp data for free. When it exceeds the last stage's end time
  /// (the workload generator's finalization slack), that surplus is TTL no
  /// cut can realize — the final clear would have released it anyway — so
  /// the temp-storage optimizers subtract it from every stage's TTL (see
  /// FinalClearSlack). 0 means "unknown": no adjustment, the pre-job_end
  /// behavior. BuildCosts fills it: the true job end (max of end + ttl) for
  /// kTruth, the simulated schedule end (slack 0) otherwise.
  double job_end = 0.0;

  size_t size() const { return output_bytes.size(); }
  Status Validate(const dag::JobGraph& graph) const;
};

/// \brief One selected cut and its predicted value.
struct CutResult {
  cluster::CutSet cut;
  double objective = 0.0;     ///< objective value under the given costs
  double global_bytes = 0.0;  ///< estimated global storage the cut needs
};

/// Estimated global storage for a cut: sum of `costs.output_bytes` over the
/// cut's checkpoint stages. Allocation-free.
double EstimateGlobalBytes(const dag::JobGraph& graph, const StageCosts& costs,
                           const cluster::CutSet& cut);

/// \brief Reusable working storage for the scratch-based optimizer entry
/// points below (part of core/engine.h's DecideScratch). Holds the end-time
/// order, the sweep prefix tables, the flattened multi-cut DP, and the
/// recovery prefix/suffix tables; once warm (sized for the largest job seen)
/// every *Into optimizer runs with zero heap allocations.
struct CheckpointScratch {
  std::vector<dag::StageId> order;     ///< end-time (or TFS) stage order
  std::vector<double> pre_bytes;       ///< multi-cut: prefix output bytes
  std::vector<double> pre_min_ttl;     ///< multi-cut: prefix min effective TTL
  std::vector<double> dp;              ///< multi-cut: (c, k) table, flattened
  std::vector<size_t> parent;          ///< multi-cut: DP backtrack, flattened
  std::vector<size_t> positions;       ///< multi-cut: recovered cut prefixes
  std::vector<double> p;               ///< recovery: per-stage failure prob
  std::vector<double> pre_nofail;      ///< recovery: prefix no-failure product
  std::vector<double> suf_min_tfs;     ///< recovery: suffix min TFS
};

/// OptimizeTempStorage into caller-owned storage: `*out` is fully
/// overwritten (an empty-cut result leaves out->cut empty). Bit-identical to
/// OptimizeTempStorage; with warm scratch the call performs no heap
/// allocation beyond out->cut growth.
Status OptimizeTempStorageInto(const dag::JobGraph& graph, const StageCosts& costs,
                               CheckpointScratch* scratch, CutResult* out);

/// OptimizeTempStorageMultiCut on scratch DP tables. The *result* vector
/// still owns its cut sets (they are handed to the caller), so this variant
/// removes the table allocations only; use num_cuts == 1 paths for strict
/// zero-allocation serving. Bit-identical to OptimizeTempStorageMultiCut.
Status OptimizeTempStorageMultiCutInto(const dag::JobGraph& graph,
                                       const StageCosts& costs, int num_cuts,
                                       CheckpointScratch* scratch,
                                       std::vector<CutResult>* out);

/// OptimizeRecovery into caller-owned storage; same contract as
/// OptimizeTempStorageInto.
Status OptimizeRecoveryInto(const dag::JobGraph& graph, const StageCosts& costs,
                            double delta, CheckpointScratch* scratch, CutResult* out);

/// Finalization slack: max(0, job_end - max end_time), i.e. how long the
/// last-ending stage's temp data lives before the job-end clear releases it.
/// The temp-storage sweep/DP/baselines price TTLs net of this slack
/// (`max(0, ttl - slack)`), which zeroes the value of the disallowed
/// full-stage "cut" and un-biases the comparison among legal prefixes.
/// Returns 0 when `costs.job_end` is unset.
double FinalClearSlack(const StageCosts& costs);

/// \brief One candidate cut of the Proposition-5.1 sweep (Figure 6 of the
/// paper: saving as a function of the checkpoint timestamp).
struct SweepPoint {
  dag::StageId stage = dag::kInvalidStage;  ///< last stage entering the cut
  double end_time = 0.0;      ///< checkpoint timestamp (stage end)
  double cum_bytes = 0.0;     ///< temp bytes accumulated by then
  double min_ttl = 0.0;       ///< min before-cut TTL, net of FinalClearSlack
  double objective = 0.0;     ///< cum_bytes * min_ttl
};

/// All |S| sweep candidates in end-time order — the curve of Figure 6. The
/// last point (the full set) is included even though it is not a usable cut.
Result<std::vector<SweepPoint>> TempStorageSweep(const dag::JobGraph& graph,
                                                 const StageCosts& costs);

/// OptCheck1 (eq. 27): maximize temp-data saving T = (sum of before-cut
/// output bytes) * (min TTL among before-cut stages). Returns the best cut;
/// the objective unit is byte-seconds. If every cut has zero value the empty
/// cut (objective 0) is returned.
Result<CutResult> OptimizeTempStorage(const dag::JobGraph& graph,
                                      const StageCosts& costs);

/// Multi-cut extension of OptCheck1 via dynamic programming over end-time
/// prefixes: places up to `num_cuts` cuts, crediting each stage's data at
/// its *earliest* cut — (segment bytes) * (min TTL at that cut) — which is
/// the physical clearing semantics the cluster realizes. Note this is NOT
/// the paper's IP constraint (12), whose edge-disjoint crediting can fall
/// below this objective; the repo-wide convention is the physical semantics
/// (see DESIGN.md "Multi-cut semantics", pinned by
/// core_multicut_semantics_test). Returns one CutResult per cut, ordered
/// innermost-first (cut c contains cut c-1, constraint (10)); the total
/// objective is reported on the innermost (front) entry.
Result<std::vector<CutResult>> OptimizeTempStorageMultiCut(const dag::JobGraph& graph,
                                                           const StageCosts& costs,
                                                           int num_cuts);

/// OptCheck2 (eq. 33): maximize expected recovery saving P_F * min-TFS(after
/// cut), with per-task failure probability `delta` (eq. 31). Objective unit:
/// expected saved seconds.
Result<CutResult> OptimizeRecovery(const dag::JobGraph& graph, const StageCosts& costs,
                                   double delta);

/// Weighted multi-objective sweep (§5.5: the optimizer is "adaptive to
/// different objectives"): maximize
///   w_temp * T(cut) / T_max + w_recovery * R(cut) / R_max
/// over end-time-prefix cuts, where T is the OptCheck1 saving, R the
/// OptCheck2 expected recovery saving, and each term is normalized by its
/// single-objective optimum so the weights are unitless. With one weight
/// zero this reduces to (the prefix-family restriction of) the single
/// objective.
Result<CutResult> OptimizeWeighted(const dag::JobGraph& graph, const StageCosts& costs,
                                   double delta, double w_temp, double w_recovery);

// --- Baseline selectors (Figures 12 and 14). -------------------------------

/// Random baseline: cut at a uniformly random prefix of the end-time order.
Result<CutResult> RandomCut(const dag::JobGraph& graph, const StageCosts& costs,
                            Rng* rng);

/// Mid-point baseline: stages whose (estimated) end time falls in the first
/// half of the (estimated) job runtime are placed before the cut.
Result<CutResult> MidPointCut(const dag::JobGraph& graph, const StageCosts& costs);

}  // namespace phoebe::core
