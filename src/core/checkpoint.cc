#include "core/checkpoint.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"

namespace phoebe::core {

namespace {

/// Stage ids sorted by ascending (estimated) end time; ties by id for
/// determinism. Prefixes of this order are the Proposition-5.1 candidates.
std::vector<dag::StageId> EndTimeOrder(const StageCosts& costs) {
  std::vector<dag::StageId> order(costs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](dag::StageId a, dag::StageId b) {
    double ea = costs.end_time[static_cast<size_t>(a)];
    double eb = costs.end_time[static_cast<size_t>(b)];
    if (ea != eb) return ea < eb;
    return a < b;
  });
  return order;
}

/// In-place EndTimeOrder for the scratch-based optimizers: same order, but
/// the caller's buffer is recycled.
void EndTimeOrderInto(const StageCosts& costs, std::vector<dag::StageId>* order) {
  order->resize(costs.size());
  std::iota(order->begin(), order->end(), 0);
  std::sort(order->begin(), order->end(), [&](dag::StageId a, dag::StageId b) {
    double ea = costs.end_time[static_cast<size_t>(a)];
    double eb = costs.end_time[static_cast<size_t>(b)];
    if (ea != eb) return ea < eb;
    return a < b;
  });
}

void PrefixCutInto(const std::vector<dag::StageId>& order, size_t prefix_len, size_t n,
                   cluster::CutSet* cut) {
  cut->before_cut.assign(n, false);
  for (size_t i = 0; i < prefix_len; ++i) {
    cut->before_cut[static_cast<size_t>(order[i])] = true;
  }
}

cluster::CutSet PrefixCut(const std::vector<dag::StageId>& order, size_t prefix_len,
                          size_t n) {
  cluster::CutSet cut;
  PrefixCutInto(order, prefix_len, n, &cut);
  return cut;
}

}  // namespace

Status StageCosts::Validate(const dag::JobGraph& graph) const {
  const size_t n = graph.num_stages();
  if (output_bytes.size() != n || ttl.size() != n || end_time.size() != n ||
      tfs.size() != n || num_tasks.size() != n) {
    return Status::InvalidArgument(
        StrFormat("StageCosts sized for %zu stages, graph has %zu", output_bytes.size(),
                  n));
  }
  for (size_t i = 0; i < n; ++i) {
    if (output_bytes[i] < 0 || ttl[i] < 0 || num_tasks[i] < 1) {
      return Status::InvalidArgument(StrFormat("negative cost at stage %zu", i));
    }
  }
  return Status::OK();
}

double EstimateGlobalBytes(const dag::JobGraph& graph, const StageCosts& costs,
                           const cluster::CutSet& cut) {
  if (cut.empty()) return 0.0;
  double total = 0.0;
  for (dag::StageId u = 0; u < static_cast<dag::StageId>(graph.num_stages()); ++u) {
    if (cluster::IsCheckpointStage(graph, cut, u)) {
      total += costs.output_bytes[static_cast<size_t>(u)];
    }
  }
  return total;
}

double FinalClearSlack(const StageCosts& costs) {
  if (costs.job_end <= 0.0) return 0.0;
  double max_end = 0.0;
  for (double e : costs.end_time) max_end = std::max(max_end, e);
  return std::max(0.0, costs.job_end - max_end);
}

Result<std::vector<SweepPoint>> TempStorageSweep(const dag::JobGraph& graph,
                                                 const StageCosts& costs) {
  PHOEBE_RETURN_NOT_OK(costs.Validate(graph));
  const size_t n = costs.size();
  std::vector<dag::StageId> order = EndTimeOrder(costs);

  // Figure 6: after each stage finishes, the temp storage in use has grown by
  // its output; clearing everything accumulated so far saves cum_bytes *
  // min TTL. The min is tracked explicitly because estimated TTLs need not be
  // consistent with the estimated end times. TTLs are priced net of the
  // finalization slack: the job-end clear releases everything anyway, so a
  // cut only realizes the TTL up to that point — in particular the full-set
  // point prices to exactly 0.
  const double slack = FinalClearSlack(costs);
  std::vector<SweepPoint> sweep;
  sweep.reserve(n);
  double sum_bytes = 0.0;
  double min_ttl = 0.0;
  for (size_t k = 0; k < n; ++k) {
    size_t u = static_cast<size_t>(order[k]);
    sum_bytes += costs.output_bytes[u];
    double ttl_eff = std::max(0.0, costs.ttl[u] - slack);
    min_ttl = (k == 0) ? ttl_eff : std::min(min_ttl, ttl_eff);
    SweepPoint p;
    p.stage = order[k];
    p.end_time = costs.end_time[u];
    p.cum_bytes = sum_bytes;
    p.min_ttl = min_ttl;
    p.objective = sum_bytes * min_ttl;
    sweep.push_back(p);
  }
  return sweep;
}

Result<CutResult> OptimizeTempStorage(const dag::JobGraph& graph,
                                      const StageCosts& costs) {
  CheckpointScratch scratch;
  CutResult result;
  PHOEBE_RETURN_NOT_OK(OptimizeTempStorageInto(graph, costs, &scratch, &result));
  return result;
}

Status OptimizeTempStorageInto(const dag::JobGraph& graph, const StageCosts& costs,
                               CheckpointScratch* scratch, CutResult* out) {
  const size_t n = costs.size();
  if (n == 0) return Status::InvalidArgument("empty graph");
  PHOEBE_RETURN_NOT_OK(costs.Validate(graph));
  EndTimeOrderInto(costs, &scratch->order);

  // The Proposition-5.1 sweep, folded into one pass: track the running
  // prefix bytes / min effective TTL and the best prefix, excluding the full
  // set (not a checkpoint). Arithmetic matches TempStorageSweep exactly.
  const double slack = FinalClearSlack(costs);
  double sum_bytes = 0.0;
  double min_ttl = 0.0;
  double best_obj = 0.0;
  size_t best_k = 0;  // 0 = no cut
  for (size_t k = 0; k + 1 < n; ++k) {
    size_t u = static_cast<size_t>(scratch->order[k]);
    sum_bytes += costs.output_bytes[u];
    double ttl_eff = std::max(0.0, costs.ttl[u] - slack);
    min_ttl = (k == 0) ? ttl_eff : std::min(min_ttl, ttl_eff);
    if (sum_bytes * min_ttl > best_obj) {
      best_obj = sum_bytes * min_ttl;
      best_k = k + 1;
    }
  }

  out->objective = best_obj;
  out->global_bytes = 0.0;
  if (best_k > 0) {
    PrefixCutInto(scratch->order, best_k, n, &out->cut);
    out->global_bytes = EstimateGlobalBytes(graph, costs, out->cut);
  } else {
    out->cut.before_cut.clear();
  }
  return Status::OK();
}

Result<std::vector<CutResult>> OptimizeTempStorageMultiCut(const dag::JobGraph& graph,
                                                           const StageCosts& costs,
                                                           int num_cuts) {
  CheckpointScratch scratch;
  std::vector<CutResult> cuts;
  PHOEBE_RETURN_NOT_OK(
      OptimizeTempStorageMultiCutInto(graph, costs, num_cuts, &scratch, &cuts));
  return cuts;
}

Status OptimizeTempStorageMultiCutInto(const dag::JobGraph& graph,
                                       const StageCosts& costs, int num_cuts,
                                       CheckpointScratch* scratch,
                                       std::vector<CutResult>* out) {
  PHOEBE_RETURN_NOT_OK(costs.Validate(graph));
  if (num_cuts < 1) return Status::InvalidArgument("num_cuts must be >= 1");
  const size_t n = costs.size();
  if (n == 0) return Status::InvalidArgument("empty graph");

  std::vector<dag::StageId>& order = scratch->order;
  EndTimeOrderInto(costs, &order);

  // Prefix sums of output bytes and running prefix-min TTL in end-time order.
  // TTLs are net of the finalization slack, mirroring TempStorageSweep.
  const double slack = FinalClearSlack(costs);
  std::vector<double>& pre_bytes = scratch->pre_bytes;
  std::vector<double>& pre_min_ttl = scratch->pre_min_ttl;
  pre_bytes.assign(n + 1, 0.0);
  pre_min_ttl.assign(n + 1, 0.0);
  for (size_t k = 0; k < n; ++k) {
    size_t u = static_cast<size_t>(order[k]);
    pre_bytes[k + 1] = pre_bytes[k] + costs.output_bytes[u];
    double ttl_eff = std::max(0.0, costs.ttl[u] - slack);
    pre_min_ttl[k + 1] = (k == 0) ? ttl_eff : std::min(pre_min_ttl[k], ttl_eff);
  }

  // DP over cut positions: cut c at prefix k saves
  //   (pre_bytes[k] - pre_bytes[prev]) * pre_min_ttl[k]
  // for the stages between cuts (constraints (21)-(26)). Positions are
  // strictly increasing and stay < n (a cut covering everything is not a
  // checkpoint). Tables are flattened (c * (n + 1) + k) onto scratch rows.
  const int kc = num_cuts;
  const double kNeg = -1.0;
  const size_t stride = n + 1;
  std::vector<double>& dp = scratch->dp;
  std::vector<size_t>& parent = scratch->parent;
  dp.assign((static_cast<size_t>(kc) + 1) * stride, kNeg);
  parent.assign((static_cast<size_t>(kc) + 1) * stride, 0);
  dp[0] = 0.0;  // dp[c=0][k=0]
  for (int c = 1; c <= kc; ++c) {
    const size_t row = static_cast<size_t>(c) * stride;
    const size_t prev_row = row - stride;
    for (size_t k = static_cast<size_t>(c); k < n; ++k) {
      for (size_t prev = static_cast<size_t>(c) - 1; prev < k; ++prev) {
        if (dp[prev_row + prev] < 0.0) continue;
        double gain = (pre_bytes[k] - pre_bytes[prev]) * pre_min_ttl[k];
        double total = dp[prev_row + prev] + gain;
        if (total > dp[row + k]) {
          dp[row + k] = total;
          parent[row + k] = prev;
        }
      }
    }
  }

  // Best number of cuts <= num_cuts and last position.
  int best_c = 0;
  size_t best_k = 0;
  double best_obj = 0.0;
  for (int c = 1; c <= kc; ++c) {
    for (size_t k = 1; k < n; ++k) {
      if (dp[static_cast<size_t>(c) * stride + k] > best_obj) {
        best_obj = dp[static_cast<size_t>(c) * stride + k];
        best_c = c;
        best_k = k;
      }
    }
  }

  out->clear();
  if (best_c == 0) return Status::OK();  // nothing worth checkpointing

  // Recover positions outermost-last, then emit innermost-first with nested
  // before-cut sets (cut c contains cut c-1).
  std::vector<size_t>& positions = scratch->positions;
  positions.clear();
  {
    int c = best_c;
    size_t k = best_k;
    while (c > 0) {
      positions.push_back(k);
      k = parent[static_cast<size_t>(c) * stride + k];
      --c;
    }
    std::reverse(positions.begin(), positions.end());
  }
  for (size_t pos : positions) {
    CutResult r;
    r.cut = PrefixCut(order, pos, n);
    r.global_bytes = EstimateGlobalBytes(graph, costs, r.cut);
    out->push_back(std::move(r));
  }
  // Assign the total objective to the front (innermost) entry for reporting.
  out->front().objective = best_obj;
  return Status::OK();
}

Result<CutResult> OptimizeRecovery(const dag::JobGraph& graph, const StageCosts& costs,
                                   double delta) {
  CheckpointScratch scratch;
  CutResult result;
  PHOEBE_RETURN_NOT_OK(OptimizeRecoveryInto(graph, costs, delta, &scratch, &result));
  return result;
}

Status OptimizeRecoveryInto(const dag::JobGraph& graph, const StageCosts& costs,
                            double delta, CheckpointScratch* scratch, CutResult* out) {
  PHOEBE_RETURN_NOT_OK(costs.Validate(graph));
  if (delta < 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in [0, 1)");
  }
  const size_t n = costs.size();
  if (n == 0) return Status::InvalidArgument("empty graph");

  // The recovery objective is driven by the minimum TFS of the after-cut
  // group, so the optimal before-cut set is a lower set by TFS: any stage
  // with TFS below the cut line must be before it (else T-bar collapses to
  // that stage's TFS), and adding a stage above the line only lowers P_F.
  // Sweep TFS-ordered prefixes.
  std::vector<dag::StageId>& order = scratch->order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](dag::StageId a, dag::StageId b) {
    double ta = costs.tfs[static_cast<size_t>(a)];
    double tb = costs.tfs[static_cast<size_t>(b)];
    if (ta != tb) return ta < tb;
    return a < b;
  });

  // Per-stage failure probability p_u = min(delta * v_u, cap) — eq. (32).
  std::vector<double>& p = scratch->p;
  p.resize(n);
  for (size_t i = 0; i < n; ++i) {
    p[i] = std::min(0.999, delta * static_cast<double>(costs.num_tasks[i]));
  }

  // Prefix products of (1 - p) in TFS order, and suffix min TFS.
  std::vector<double>& pre_nofail = scratch->pre_nofail;
  pre_nofail.assign(n + 1, 1.0);
  for (size_t k = 0; k < n; ++k) {
    pre_nofail[k + 1] =
        pre_nofail[k] * (1.0 - p[static_cast<size_t>(order[k])]);
  }
  std::vector<double>& suf_min_tfs = scratch->suf_min_tfs;
  suf_min_tfs.assign(n + 1, 0.0);
  suf_min_tfs[n] = 0.0;
  for (size_t k = n; k-- > 0;) {
    double tfs = costs.tfs[static_cast<size_t>(order[k])];
    suf_min_tfs[k] = (k == n - 1) ? tfs : std::min(suf_min_tfs[k + 1], tfs);
  }

  double total_nofail = pre_nofail[n];
  double best_obj = 0.0;
  size_t best_k = 0;
  for (size_t k = 1; k < n; ++k) {  // at least one stage on each side
    double nofail_before = pre_nofail[k];
    double nofail_after = total_nofail / std::max(1e-300, nofail_before);
    double pf = nofail_before * (1.0 - nofail_after);  // eq. (35)
    double tbar = suf_min_tfs[k];                      // eq. (34)
    double obj = pf * tbar;
    if (obj > best_obj) {
      best_obj = obj;
      best_k = k;
    }
  }

  out->objective = best_obj;
  out->global_bytes = 0.0;
  if (best_k > 0) {
    PrefixCutInto(order, best_k, n, &out->cut);
    out->global_bytes = EstimateGlobalBytes(graph, costs, out->cut);
  } else {
    out->cut.before_cut.clear();
  }
  return Status::OK();
}

Result<CutResult> OptimizeWeighted(const dag::JobGraph& graph, const StageCosts& costs,
                                   double delta, double w_temp, double w_recovery) {
  PHOEBE_RETURN_NOT_OK(costs.Validate(graph));
  if (w_temp < 0.0 || w_recovery < 0.0 || w_temp + w_recovery <= 0.0) {
    return Status::InvalidArgument("weights must be non-negative, not both zero");
  }
  if (delta < 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in [0, 1)");
  }
  const size_t n = costs.size();
  if (n < 2) return Status::InvalidArgument("graph too small to cut");

  std::vector<dag::StageId> order = EndTimeOrder(costs);

  // Per-prefix temp objective (the sweep) and recovery objective (P_F *
  // min-TFS-after over the same end-time prefixes). Note the recovery
  // optimum over TFS-prefixes can exceed the best end-time prefix; the
  // weighted sweep trades exactness on R for a single cut family.
  PHOEBE_ASSIGN_OR_RETURN(std::vector<SweepPoint> sweep,
                          TempStorageSweep(graph, costs));

  std::vector<double> p(n);
  for (size_t i = 0; i < n; ++i) {
    p[i] = std::min(0.999, delta * static_cast<double>(costs.num_tasks[i]));
  }
  std::vector<double> pre_nofail(n + 1, 1.0);
  for (size_t k = 0; k < n; ++k) {
    pre_nofail[k + 1] = pre_nofail[k] * (1.0 - p[static_cast<size_t>(order[k])]);
  }
  std::vector<double> suf_min_tfs(n, 0.0);
  for (size_t k = n; k-- > 0;) {
    double tfs = costs.tfs[static_cast<size_t>(order[k])];
    suf_min_tfs[k] = (k == n - 1) ? tfs : std::min(suf_min_tfs[k + 1], tfs);
  }
  double total_nofail = pre_nofail[n];

  auto recovery_obj = [&](size_t k) {  // prefix of length k (1..n-1)
    double nofail_before = pre_nofail[k];
    double nofail_after = total_nofail / std::max(1e-300, nofail_before);
    return nofail_before * (1.0 - nofail_after) * suf_min_tfs[k];
  };

  // Normalizers: each objective's best value over the same prefix family.
  double t_max = 0.0, r_max = 0.0;
  for (size_t k = 1; k < n; ++k) {
    t_max = std::max(t_max, sweep[k - 1].objective);
    r_max = std::max(r_max, recovery_obj(k));
  }

  double best = 0.0;
  size_t best_k = 0;
  for (size_t k = 1; k < n; ++k) {
    double t_term = t_max > 0.0 ? sweep[k - 1].objective / t_max : 0.0;
    double r_term = r_max > 0.0 ? recovery_obj(k) / r_max : 0.0;
    double v = w_temp * t_term + w_recovery * r_term;
    if (v > best) {
      best = v;
      best_k = k;
    }
  }

  CutResult result;
  result.objective = best;
  if (best_k > 0) {
    result.cut = PrefixCut(order, best_k, n);
    result.global_bytes = EstimateGlobalBytes(graph, costs, result.cut);
  }
  return result;
}

Result<CutResult> RandomCut(const dag::JobGraph& graph, const StageCosts& costs,
                            Rng* rng) {
  PHOEBE_RETURN_NOT_OK(costs.Validate(graph));
  const size_t n = costs.size();
  if (n < 2) return Status::InvalidArgument("graph too small to cut");
  std::vector<dag::StageId> order = EndTimeOrder(costs);
  // Cut at a uniformly random timestamp of the (estimated) schedule: the
  // stages ending before it go before the cut.
  double job_end = 0.0;
  for (double e : costs.end_time) job_end = std::max(job_end, e);
  double t_star = rng->Uniform(0.0, job_end);
  size_t k = 0;
  while (k < n && costs.end_time[static_cast<size_t>(order[k])] <= t_star) ++k;
  k = std::clamp<size_t>(k, 1, n - 1);
  CutResult result;
  result.cut = PrefixCut(order, k, n);
  result.global_bytes = EstimateGlobalBytes(graph, costs, result.cut);
  // Report the temp-saving objective of the random choice.
  double sum_bytes = 0.0, min_ttl = 0.0;
  const double slack = FinalClearSlack(costs);
  for (size_t i = 0; i < k; ++i) {
    size_t u = static_cast<size_t>(order[i]);
    sum_bytes += costs.output_bytes[u];
    double ttl_eff = std::max(0.0, costs.ttl[u] - slack);
    min_ttl = (i == 0) ? ttl_eff : std::min(min_ttl, ttl_eff);
  }
  result.objective = sum_bytes * min_ttl;
  return result;
}

Result<CutResult> MidPointCut(const dag::JobGraph& graph, const StageCosts& costs) {
  PHOEBE_RETURN_NOT_OK(costs.Validate(graph));
  const size_t n = costs.size();
  if (n < 2) return Status::InvalidArgument("graph too small to cut");
  double job_end = 0.0;
  for (double e : costs.end_time) job_end = std::max(job_end, e);
  double mid = job_end / 2.0;

  std::vector<dag::StageId> order = EndTimeOrder(costs);
  size_t k = 0;
  while (k < n && costs.end_time[static_cast<size_t>(order[k])] <= mid) ++k;
  k = std::clamp<size_t>(k, 1, n - 1);

  CutResult result;
  result.cut = PrefixCut(order, k, n);
  result.global_bytes = EstimateGlobalBytes(graph, costs, result.cut);
  double sum_bytes = 0.0, min_ttl = 0.0;
  const double slack = FinalClearSlack(costs);
  for (size_t i = 0; i < k; ++i) {
    size_t u = static_cast<size_t>(order[i]);
    sum_bytes += costs.output_bytes[u];
    double ttl_eff = std::max(0.0, costs.ttl[u] - slack);
    min_ttl = (i == 0) ? ttl_eff : std::min(min_ttl, ttl_eff);
  }
  result.objective = sum_bytes * min_ttl;
  return result;
}

}  // namespace phoebe::core
