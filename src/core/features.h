// Stage featurization: Table 1 of the paper.
//
// Three feature groups feed the stage-level cost models:
//   1. Query-optimizer features: estimated (cumulative) cost, estimated input
//      cardinality, estimated exclusive cost, estimated cardinality of the
//      stage's last operator — all from the compile-time estimate channel.
//   2. Historic statistics: average exclusive time and output size for the
//      (job template, stage type) combination, from the workload repository.
//   3. Text features: hashed character n-gram embeddings of the normalized
//      job name and input path.
// Skewed magnitudes are log1p-compressed. Truth values are never used.
#pragma once

#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/text.h"
#include "telemetry/repository.h"
#include "workload/job_instance.h"

namespace phoebe::core {

/// \brief Which feature groups to emit (ablations toggle these).
struct FeatureConfig {
  bool query_optimizer = true;
  bool historic = true;
  bool text = false;          ///< only the DNN benchmark uses text features
  bool stage_type_id = false; ///< ablation: stage type as a plain feature
  size_t text_dims = 12;      ///< hash buckets per text column
};

/// \brief Prediction targets for the stage cost models.
enum class Target {
  kExecSeconds,   ///< average task latency of the stage
  kOutputBytes,   ///< output size of the last operator
};

/// \brief Builds feature rows for stages of job instances.
class StageFeaturizer {
 public:
  explicit StageFeaturizer(FeatureConfig config = {});

  const FeatureConfig& config() const { return config_; }
  /// Names of the emitted features, in row order (computed once at
  /// construction; this returns a copy).
  std::vector<std::string> FeatureNames() const { return names_; }
  /// Emitted row width (== FeatureNames().size()), without the copy.
  size_t num_features() const { return names_.size(); }

  /// Feature row for stage `stage_id` of `job`, using `stats` for the
  /// historic group. Row length always equals FeatureNames().size().
  std::vector<double> Features(const workload::JobInstance& job, int stage_id,
                               const telemetry::HistoricStats& stats) const;

  /// Same row written into caller-owned storage (cleared first; capacity is
  /// reused, so a warm caller allocates nothing — except under
  /// FeatureConfig::text, whose n-gram hashing builds a lowercase copy).
  void FeaturesInto(const workload::JobInstance& job, int stage_id,
                    const telemetry::HistoricStats& stats,
                    std::vector<double>* row) const;

  /// Feature rows for *all* stages of `job` as one matrix (row i = stage i),
  /// ready for a single Regressor::PredictBatch call. Row i is exactly
  /// Features(job, i, stats).
  ml::FeatureMatrix JobMatrix(const workload::JobInstance& job,
                              const telemetry::HistoricStats& stats) const;

  /// Same matrix filled into caller-owned storage: `m` keeps its schema and
  /// row capacity across calls (set up on first use), so repeated fills on a
  /// warm matrix perform no allocation. `row` is the per-stage staging
  /// buffer. Rows are bit-identical to JobMatrix.
  void JobMatrixInto(const workload::JobInstance& job,
                     const telemetry::HistoricStats& stats,
                     std::vector<double>* row, ml::FeatureMatrix* m) const;

  /// Build a training dataset over whole days: one row per stage, with the
  /// target in *log1p space* (models are trained on log1p(y); use
  /// ExpandTarget to go back).
  ml::Dataset BuildDataset(const std::vector<workload::JobInstance>& jobs,
                           const telemetry::HistoricStats& stats, Target target) const;

  /// Ground-truth target value (origin scale) for a stage.
  static double TargetValue(const workload::JobInstance& job, int stage_id,
                            Target target);

  /// Transform between model space (log1p) and origin space.
  static double CompressTarget(double y) ;
  static double ExpandTarget(double y_log);

 private:
  std::vector<std::string> BuildFeatureNames() const;

  FeatureConfig config_;
  ml::TextHasher hasher_;
  std::vector<std::string> names_;  ///< built once; FeatureNames() copies it
};

}  // namespace phoebe::core
