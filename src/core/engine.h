// DecisionEngine: the stateless, const-only serving facade over a
// PipelineBundle.
//
// This is the decide-time half of the train/serve split (see
// core/bundle.h): the engine borrows an immutable bundle via shared_ptr and
// exposes exclusively const methods, so the const-after-Train invariant the
// fleet driver's parallel phase relies on is enforced by the compiler — a
// caller holding `const DecisionEngine&` cannot reach any mutable pipeline
// state. Engines are cheap values (one shared_ptr); every FleetDriver,
// back-tester, and CLI decide path is built on one, and any number of them
// (across threads or processes) can serve from the same bundle.
#pragma once

#include <array>
#include <memory>

#include "core/bundle.h"
#include "core/checkpoint.h"
#include "core/predictors.h"
#include "core/simulator.h"
#include "obs/metrics.h"

namespace phoebe::core {

/// \brief A compile-time checkpoint decision with overhead breakdown (§6.4).
struct PipelineDecision {
  CutResult cut;
  double lookup_seconds = 0.0;    ///< metadata/model lookup
  double scoring_seconds = 0.0;   ///< ML scoring + schedule simulation
  double optimize_seconds = 0.0;  ///< cut search
};

/// \brief One job's full decision: the combined (reported) cut plus the
/// nested cut sets in physical, innermost-first order. This is the value the
/// fleet template cache stores and the shard protocol serializes.
struct FleetDecision {
  CutResult combined;                 ///< cut = outermost; DP-total objective
  std::vector<cluster::CutSet> cuts;  ///< innermost-first; empty if no cut
};

/// \brief Decision context for DecideJob.
struct DecideOptions {
  Objective objective = Objective::kTempStorage;
  CostSource source = CostSource::kMlStacked;
  /// Cuts per job for the temp-storage objective (1 = single-cut sweep).
  int num_cuts = 1;
};

/// \brief Per-worker scratch arena for the decide path. One instance per
/// serving thread (see fleet.cc's per-worker arenas) owns every intermediate
/// buffer a decision needs — stage costs, exec estimates, the simulated
/// schedule, three featurize→predict streams (exec, size, TTL), and the
/// optimizer tables — so once warm (sized by the widest job seen), a
/// steady-state DecideJobInto/DecideInto performs zero heap allocations.
/// Never share one arena between concurrent calls; results are bit-identical
/// regardless of which arena (or how warm an arena) served a job.
struct DecideScratch {
  StageCosts costs;             ///< BuildCostsInto staging for DecideJobInto
  std::vector<double> exec;     ///< per-stage exec-seconds estimates
  SimulatedSchedule sim;        ///< Algorithm-1 schedule (non-truth sources)
  SimulatorScratch sim_scratch;
  PredictScratch exec_features; ///< exec-predictor stream
  PredictScratch size_features; ///< size-predictor stream (separate schema)
  PredictScratch ttl_features;  ///< TTL stacking stream (4-feature schema)
  CheckpointScratch checkpoint; ///< sweep / DP / recovery tables
  std::vector<CutResult> multicut;  ///< num_cuts > 1 staging
  std::vector<char> persisted;      ///< multi-cut checkpoint-stage union
};

/// \brief Stateless decide-time facade over one immutable bundle.
///
/// Thread-safety: every method is const and the whole call tree (featurizer,
/// GBDT/MLP forests, TTL stacking models, historic-stats maps) reads
/// immutable bundle state with no caches, so concurrent calls on one engine
/// — or on several engines sharing one bundle — are safe.
/// core_fleet_parallel_test pins this under TSan.
class DecisionEngine {
 public:
  /// \param bundle the trained (or untrained, for non-ML sources) state to
  /// serve from. Shared ownership: the bundle outlives every engine view.
  /// \param metrics optional observability registry (borrowed; must outlive
  /// the engine). Null = metrics off, the default. Metrics are strictly
  /// passive — they never feed a decision — so two engines over one bundle,
  /// one instrumented and one not, decide byte-identically.
  explicit DecisionEngine(std::shared_ptr<const PipelineBundle> bundle,
                          obs::MetricsRegistry* metrics = nullptr);

  const PipelineBundle& bundle() const { return *bundle_; }
  std::shared_ptr<const PipelineBundle> shared_bundle() const { return bundle_; }

  bool trained() const { return bundle_->trained(); }
  double delta() const { return bundle_->delta(); }
  const telemetry::HistoricStats& inference_stats() const { return bundle_->stats(); }

  /// Build the optimizer inputs for one job under a cost source, using only
  /// compile-time information (plus truth for the kTruth oracle). Sets
  /// StageCosts::job_end so the optimizers price the final clear: the true
  /// job end for kTruth, the simulated schedule end otherwise.
  Result<StageCosts> BuildCosts(const workload::JobInstance& job,
                                CostSource source) const;
  /// Same, with an explicit historic-stats view (e.g. for later days).
  Result<StageCosts> BuildCosts(const workload::JobInstance& job, CostSource source,
                                const telemetry::HistoricStats& stats) const;

  /// BuildCosts onto a scratch arena: `*out` is fully overwritten (it may be
  /// `&scratch->costs`). Bit-identical to BuildCosts; with a warm arena the
  /// non-truth paths allocate nothing (FeatureConfig::text excepted).
  Status BuildCostsInto(const workload::JobInstance& job, CostSource source,
                        const telemetry::HistoricStats& stats, DecideScratch* scratch,
                        StageCosts* out) const;

  /// Full compile-time decision for one job, with timing breakdown.
  Result<PipelineDecision> Decide(const workload::JobInstance& job, Objective objective,
                                  CostSource source = CostSource::kMlStacked) const;

  /// Decide onto a scratch arena; `*out` is fully overwritten. Bit-identical
  /// to Decide (timing fields aside, which measure wall time either way).
  Status DecideInto(const workload::JobInstance& job, Objective objective,
                    CostSource source, DecideScratch* scratch,
                    PipelineDecision* out) const;

  /// Per-job fleet decision under an explicit context: BuildCosts + the
  /// objective's optimizer, including the multi-cut physical semantics (the
  /// DP-total objective; global bytes as the union of checkpoint stages —
  /// a stage persists its output once even if edges cross several cuts).
  /// Pure function of (bundle, options, job, stats); safe to call
  /// concurrently for distinct jobs.
  Result<FleetDecision> DecideJob(const workload::JobInstance& job,
                                  const telemetry::HistoricStats& stats,
                                  const DecideOptions& options) const;

  /// DecideJob onto a scratch arena; `*out` is fully overwritten and its cut
  /// bitsets are recycled in place (vector<bool> assignment reuses capacity).
  /// Bit-identical to DecideJob. With a warm arena a steady-state single-cut
  /// decision performs zero heap allocations; the multi-cut path still
  /// allocates only inside the returned nested cut sets on first growth.
  Status DecideJobInto(const workload::JobInstance& job,
                       const telemetry::HistoricStats& stats,
                       const DecideOptions& options, DecideScratch* scratch,
                       FleetDecision* out) const;

 private:
  /// Metric pointers for one cost source, resolved once at construction so
  /// the decide path never touches the registry mutex. All null when the
  /// engine runs without metrics.
  struct SourceMetrics {
    obs::Histogram* decide_seconds = nullptr;  ///< engine.decide.<src>.seconds
    obs::Histogram* infer_seconds = nullptr;   ///< engine.inference.<src>.seconds
    obs::Histogram* batch_stages = nullptr;    ///< stages per inference batch
    obs::Counter* batches = nullptr;           ///< inference batches issued
  };
  const SourceMetrics& metrics_for(CostSource source) const {
    return source_metrics_[static_cast<size_t>(source)];
  }

  std::shared_ptr<const PipelineBundle> bundle_;
  std::array<SourceMetrics, 5> source_metrics_;
};

/// Lower-case token for a cost source, used in metric names and reports
/// ("truth", "opt_est", "constant", "ml_sim", "ml_stacked").
const char* CostSourceToken(CostSource source);

/// Inverse of CostSourceToken, for the serve wire protocol and CLI flags.
/// Unknown tokens are an InvalidArgument naming the token; `*out` untouched
/// on error.
Status CostSourceFromToken(const std::string& token, CostSource* out);

}  // namespace phoebe::core
