#include "core/ttl.h"

#include <cmath>

#include "common/strings.h"

namespace phoebe::core {

TtlEstimator::TtlEstimator(TtlConfig config) : config_(std::move(config)) {}

std::vector<std::string> TtlEstimator::StackingFeatureNames() {
  return {"log_sim_ttl", "log_sim_tfs", "sim_position", "log_sim_job_end"};
}

std::vector<double> TtlEstimator::StackingFeatures(const SimulatedSchedule& sim,
                                                   dag::StageId stage) {
  std::vector<double> row;
  StackingFeaturesInto(sim, stage, &row);
  return row;
}

void TtlEstimator::StackingFeaturesInto(const SimulatedSchedule& sim,
                                        dag::StageId stage, std::vector<double>* row) {
  double ttl = sim.Ttl(stage);
  double tfs = sim.Tfs(stage);
  double pos = sim.job_end > 0.0 ? tfs / sim.job_end : 0.0;
  row->clear();
  row->push_back(std::log1p(std::max(0.0, ttl)));
  row->push_back(std::log1p(std::max(0.0, tfs)));
  row->push_back(pos);
  row->push_back(std::log1p(std::max(0.0, sim.job_end)));
}

Status TtlEstimator::Train(const std::vector<workload::JobInstance>& jobs,
                           const telemetry::HistoricStats& stats,
                           const StageCostPredictor& exec_predictor) {
  std::vector<TrainExample> examples;
  examples.reserve(jobs.size());
  for (const workload::JobInstance& job : jobs) examples.push_back({&job, &stats});
  return Train(examples, exec_predictor);
}

Status TtlEstimator::Train(const std::vector<TrainExample>& examples,
                           const StageCostPredictor& exec_predictor) {
  if (examples.empty()) return Status::InvalidArgument("no training jobs");
  PHOEBE_CHECK(exec_predictor.target() == Target::kExecSeconds);

  ml::Dataset all;
  all.x = ml::FeatureMatrix(StackingFeatureNames());
  std::vector<int> row_type;

  for (const TrainExample& ex : examples) {
    const workload::JobInstance& job = *ex.job;
    std::vector<double> exec = exec_predictor.PredictJob(job, *ex.stats);
    auto sim = SimulateSchedule(job.graph, exec);
    PHOEBE_RETURN_NOT_OK(sim.status());
    for (size_t si = 0; si < job.graph.num_stages(); ++si) {
      all.x.AddRow(StackingFeatures(*sim, static_cast<dag::StageId>(si)));
      all.y.push_back(std::log1p(std::max(0.0, job.truth[si].ttl)));
      row_type.push_back(job.graph.stage(static_cast<dag::StageId>(si)).stage_type);
    }
  }
  if (all.size() == 0) return Status::InvalidArgument("no training stages");

  general_ = std::make_unique<ml::GbdtRegressor>(config_.gbdt);
  PHOEBE_RETURN_NOT_OK(general_->Fit(all));

  std::map<int, std::vector<size_t>> rows_by_type;
  for (size_t r = 0; r < row_type.size(); ++r) {
    rows_by_type[row_type[r]].push_back(r);
  }
  per_type_.clear();
  for (const auto& [type, rows] : rows_by_type) {
    if (static_cast<int>(rows.size()) < config_.min_samples_per_type) continue;
    ml::GbdtParams params = config_.gbdt;
    params.seed = config_.gbdt.seed + static_cast<uint64_t>(type) + 7;
    ml::GbdtRegressor model(params);
    PHOEBE_RETURN_NOT_OK(model.Fit(all.Subset(rows)));
    per_type_.emplace(type, std::move(model));
  }
  trained_ = true;
  return Status::OK();
}

std::vector<double> TtlEstimator::Predict(const workload::JobInstance& job,
                                          const SimulatedSchedule& sim) const {
  PredictScratch scratch;
  std::vector<double> out;
  PredictInto(job, sim, &scratch, &out);
  return out;
}

void TtlEstimator::PredictInto(const workload::JobInstance& job,
                               const SimulatedSchedule& sim, PredictScratch* scratch,
                               std::vector<double>* out) const {
  const size_t ns = job.graph.num_stages();
  if (!trained_ || !config_.batch_inference) {
    out->resize(ns);
    for (size_t si = 0; si < ns; ++si) {
      dag::StageId s = static_cast<dag::StageId>(si);
      if (!trained_) {
        (*out)[si] = sim.Ttl(s);
        continue;
      }
      StackingFeaturesInto(sim, s, &scratch->row);
      int type = job.graph.stage(s).stage_type;
      auto it = per_type_.find(type);
      double y_log = (it != per_type_.end()) ? it->second.Predict(scratch->row)
                                             : general_->Predict(scratch->row);
      (*out)[si] = std::max(0.0, std::expm1(y_log));
    }
    return;
  }

  // Batched path: one stacking-feature matrix, one PredictRowsInto per
  // serving model — same grouping and scatter order as the per-job map
  // partition, on reused buffers.
  if (scratch->matrix.num_features() != 4) {  // StackingFeatureNames().size()
    scratch->matrix = ml::FeatureMatrix(StackingFeatureNames());
  }
  scratch->matrix.ClearRows();
  for (size_t si = 0; si < ns; ++si) {
    StackingFeaturesInto(sim, static_cast<dag::StageId>(si), &scratch->row);
    scratch->matrix.AddRow(scratch->row);
  }
  out->assign(ns, 0.0);
  scratch->served.assign(ns, 0);
  auto score = [&](const ml::GbdtRegressor& model) {
    model.PredictRowsInto(scratch->matrix, scratch->rows, &scratch->y_log);
    for (size_t k = 0; k < scratch->rows.size(); ++k) {
      (*out)[scratch->rows[k]] = std::max(0.0, std::expm1(scratch->y_log[k]));
    }
  };
  for (const auto& [type, model] : per_type_) {
    scratch->rows.clear();
    for (size_t si = 0; si < ns; ++si) {
      if (job.graph.stage(static_cast<dag::StageId>(si)).stage_type == type) {
        scratch->rows.push_back(si);
        scratch->served[si] = 1;
      }
    }
    if (scratch->rows.empty()) continue;
    score(model);
  }
  scratch->rows.clear();
  for (size_t si = 0; si < ns; ++si) {
    if (!scratch->served[si]) scratch->rows.push_back(si);
  }
  if (!scratch->rows.empty()) score(*general_);
}

std::string TtlEstimator::ToText() const {
  PHOEBE_CHECK_MSG(trained_, "ToText called before Train");
  std::string out = StrFormat("ttl_estimator %zu\n", per_type_.size());
  out += "general_model\n";
  out += general_->ToText();
  out += "end_model\n";
  for (const auto& [type, model] : per_type_) {
    out += StrFormat("type %d\n", type);
    out += model.ToText();
    out += "end_model\n";
  }
  return out;
}

Status TtlEstimator::LoadFromText(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  size_t i = 0;
  auto take_block = [&]() -> Result<std::string> {
    std::string block;
    while (i < lines.size()) {
      if (lines[i] == "end_model") {
        ++i;
        return block;
      }
      block += lines[i];
      block += '\n';
      ++i;
    }
    return Status::InvalidArgument("unterminated model block");
  };

  while (i < lines.size() && lines[i].empty()) ++i;
  if (i >= lines.size()) return Status::InvalidArgument("empty ttl estimator text");
  std::vector<std::string> hdr = Split(lines[i++], ' ');
  if (hdr.size() != 2 || hdr[0] != "ttl_estimator") {
    return Status::InvalidArgument("bad ttl_estimator header");
  }
  size_t n_types = static_cast<size_t>(std::atoll(hdr[1].c_str()));

  while (i < lines.size() && lines[i].empty()) ++i;
  if (i >= lines.size() || lines[i] != "general_model") {
    return Status::InvalidArgument("missing general_model block");
  }
  ++i;
  PHOEBE_ASSIGN_OR_RETURN(std::string general_block, take_block());
  PHOEBE_ASSIGN_OR_RETURN(ml::GbdtRegressor g,
                          ml::GbdtRegressor::FromText(general_block));
  general_ = std::make_unique<ml::GbdtRegressor>(std::move(g));

  per_type_.clear();
  for (size_t k = 0; k < n_types; ++k) {
    while (i < lines.size() && lines[i].empty()) ++i;
    if (i >= lines.size()) return Status::InvalidArgument("truncated type models");
    std::vector<std::string> th = Split(lines[i++], ' ');
    if (th.size() != 2 || th[0] != "type") {
      return Status::InvalidArgument("bad type model header");
    }
    int type = std::atoi(th[1].c_str());
    PHOEBE_ASSIGN_OR_RETURN(std::string block, take_block());
    PHOEBE_ASSIGN_OR_RETURN(ml::GbdtRegressor m, ml::GbdtRegressor::FromText(block));
    per_type_.emplace(type, std::move(m));
  }
  trained_ = true;
  return Status::OK();
}

}  // namespace phoebe::core
