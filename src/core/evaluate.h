// Back-testing evaluation (paper §6.2/§6.3): choose cuts with each approach's
// (possibly wrong) estimates, then measure the *realized* value against the
// ground truth — exactly the paper's ex-post methodology.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/engine.h"

namespace phoebe::core {

/// \brief Checkpoint-selection approaches compared in Figures 12 and 14.
enum class Approach {
  kRandom,        ///< random cut
  kMidPoint,      ///< mid-point of the simulated schedule (MP)
  kOptimizerEst,  ///< optimizer + estimated cost (OP)
  kConstant,      ///< optimizer + constant cost (OCC)
  kMl,            ///< optimizer + ML cost models (OML)
  kMlStacked,     ///< optimizer + ML + stacking model (OMLS)
  kOptimal,       ///< offline oracle with true costs
};

const std::string& ApproachName(Approach a);
const std::vector<Approach>& AllApproaches();

/// Realized temp-data saving fraction of a cut on one job: the byte-seconds
/// of temp storage released early (at the true cut-clear time) divided by
/// the job's total temp byte-seconds. In [0, 1].
double RealizedTempSaving(const workload::JobInstance& job, const cluster::CutSet& cut);

/// Multi-cut generalization under the *physical* clearing semantics the
/// fleet driver reports (see DESIGN.md "Multi-cut semantics"): `cuts` are
/// nested cut sets ordered innermost-first, and each stage's temp data
/// clears at the true clear time of the earliest cut containing it. With a
/// single cut this reduces bit-exactly to RealizedTempSaving. In [0, 1].
double RealizedTempSavingMultiCut(const workload::JobInstance& job,
                                  const std::vector<cluster::CutSet>& cuts);

/// \brief Per-approach back-tester.
class BackTester {
 public:
  /// \param engine trained decision engine (for ML-based approaches);
  /// borrowed, must outlive the tester
  /// \param mtbf_seconds cluster MTBF used for the recovery objective
  BackTester(const DecisionEngine* engine, double mtbf_seconds, uint64_t seed = 2024);

  /// Choose a cut for `job` with `approach` toward `objective`. Uses the
  /// given stats view for ML scoring.
  Result<CutResult> ChooseCut(const workload::JobInstance& job, Approach approach,
                              Objective objective,
                              const telemetry::HistoricStats& stats);

  /// Realized temp-saving fraction per approach over a set of jobs
  /// (Figure 12: one call per day, aggregate across days outside).
  Result<std::map<Approach, RunningStats>> EvaluateTempStorage(
      const std::vector<workload::JobInstance>& jobs,
      const telemetry::HistoricStats& stats,
      const std::vector<Approach>& approaches = AllApproaches());

  /// Realized recovery-time saving fraction per approach (Figure 14),
  /// evaluated analytically under the true schedule and failure model.
  Result<std::map<Approach, RunningStats>> EvaluateRecovery(
      const std::vector<workload::JobInstance>& jobs,
      const telemetry::HistoricStats& stats,
      const std::vector<Approach>& approaches = AllApproaches());

  /// Realized saving of ONE approach under either objective — the unit the
  /// lifecycle loop's canary comparison aggregates over a trailing window.
  /// Temp-storage savings come from RealizedTempSaving, recovery savings
  /// from the failure model's RestartSavingFraction, exactly as the
  /// per-approach sweeps above. Deterministic approaches delegate to
  /// EvaluateApproachArms as the N=1 case.
  Result<RunningStats> EvaluateApproach(
      const std::vector<workload::JobInstance>& jobs,
      const telemetry::HistoricStats& stats, Approach approach,
      Objective objective);

 private:
  CostSource SourceFor(Approach approach) const;

  const DecisionEngine* engine_;
  double mtbf_seconds_;
  Rng rng_;
};

/// Realized saving of one deterministic approach under N engines in a single
/// pass over the jobs — the arm-based form of BackTester::EvaluateApproach
/// the lifecycle canary uses to cost incumbent and candidate against
/// identical inputs. Per job, the eligibility check and (for the recovery
/// objective) the FailureModel are computed once and shared by every arm, so
/// an N-arm call does one generation pass instead of N. Entry k of the
/// result aggregates engine k's realized savings; each entry is bit-exactly
/// what a standalone EvaluateApproach under that engine returns.
/// Approach::kRandom is rejected (its cut draws consume a per-tester rng
/// stream that a shared pass cannot replay per arm).
Result<std::vector<RunningStats>> EvaluateApproachArms(
    const std::vector<const DecisionEngine*>& engines,
    const std::vector<workload::JobInstance>& jobs,
    const telemetry::HistoricStats& stats, Approach approach,
    Objective objective, double mtbf_seconds);

}  // namespace phoebe::core
