// Retraining driver: keeps the pipeline fresh as the workload drifts.
//
// Figure 8 of the paper shows model accuracy decaying on days further from
// the training window, and §3/§6.1 describe periodic retraining from the
// workload repository. This driver encodes that operational loop: after each
// day completes, it measures the deployed model's accuracy on that day and
// retrains when accuracy degrades or the model exceeds its maximum age.
#pragma once

#include <memory>
#include <vector>

#include "core/pipeline.h"

namespace phoebe::core {

/// \brief When to retrain.
struct RetrainPolicy {
  double min_exec_r2 = 0.70;   ///< retrain if held-out exec R^2 drops below
  int max_age_days = 7;        ///< retrain at least this often
  int train_window_days = 5;   ///< days of history per training run
  int min_history_days = 2;    ///< wait for this much history before training

  Status Validate() const;
};

/// Held-out R^2 of `exec` on `day`'s stage runtimes, featurized against the
/// historic stats available strictly before `day` — the accuracy-decay
/// signal of Figure 8. Shared by RetrainingDriver and the lifecycle loop so
/// both trigger retraining off the same measurement.
double EvaluateExecR2(const StageCostPredictor& exec,
                      const telemetry::WorkloadRepository& repo, int day);

/// \brief Per-day outcome of the driver.
struct RetrainReport {
  int day = 0;
  double exec_r2 = 0.0;        ///< deployed model's accuracy on this day
  int model_age_days = 0;      ///< age at evaluation time (-1: no model yet)
  bool retrained = false;
  const char* reason = "";     ///< "", "bootstrap", "accuracy", "age"
};

/// \brief Drives periodic retraining against a workload repository.
class RetrainingDriver {
 public:
  explicit RetrainingDriver(RetrainPolicy policy = {},
                            PipelineConfig config = PhoebePipeline::DefaultConfig());

  /// Process the freshly completed `day` (which must be stored in `repo`,
  /// along with all prior history being used): evaluate the deployed model
  /// on it, then retrain if the policy says so. Days must arrive in
  /// increasing order.
  Result<RetrainReport> OnDayCompleted(const telemetry::WorkloadRepository& repo,
                                       int day);

  /// The currently deployed pipeline (untrained until enough history).
  const PhoebePipeline& pipeline() const { return *pipeline_; }
  bool deployed() const { return pipeline_->trained(); }
  int trained_on_day() const { return trained_on_day_; }
  const std::vector<RetrainReport>& history() const { return history_; }

 private:
  Status Retrain(const telemetry::WorkloadRepository& repo, int day);

  RetrainPolicy policy_;
  PipelineConfig config_;
  std::unique_ptr<PhoebePipeline> pipeline_;
  int trained_on_day_ = -1;  ///< last day included in training; -1 = never
  int last_day_ = -1;
  std::vector<RetrainReport> history_;
};

}  // namespace phoebe::core
