// Time-to-live estimator (paper §4.2): job runtime simulator + per-stage-type
// stacking model.
//
// The simulator (core/simulator.h) assumes strict stage boundaries and hence
// over-estimates TTL for pipelined stage types. The stacking model corrects
// that bias: per stage type, a small GBDT maps (simulated TTL, simulated TFS)
// — the "position" of the stage within the job — to the true TTL.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/predictors.h"
#include "core/simulator.h"
#include "ml/gbdt.h"

namespace phoebe::core {

/// \brief Configuration of the TTL stacking model.
struct TtlConfig {
  ml::GbdtParams gbdt = [] {
    ml::GbdtParams p;
    p.num_trees = 60;
    p.num_leaves = 15;
    p.min_data_in_leaf = 30;
    return p;
  }();
  int min_samples_per_type = 100;
  /// Score all stages of a job with one PredictBatch call per stacking model
  /// (bit-equal to the scalar loop; throughput knob only).
  bool batch_inference = true;
};

/// \brief Stacked TTL estimator.
class TtlEstimator {
 public:
  explicit TtlEstimator(TtlConfig config = {});

  /// Train the stacking models. For each training job, stage execution times
  /// are predicted by `exec_predictor` (so the stacking model sees the same
  /// input distribution it will see at inference time), the schedule is
  /// simulated, and true TTLs are the regression targets.
  Status Train(const std::vector<TrainExample>& examples,
               const StageCostPredictor& exec_predictor);

  /// Convenience: all jobs share one historic-stats view.
  Status Train(const std::vector<workload::JobInstance>& jobs,
               const telemetry::HistoricStats& stats,
               const StageCostPredictor& exec_predictor);

  bool trained() const { return trained_; }
  size_t num_type_models() const { return per_type_.size(); }

  /// Stacked TTL predictions for every stage given the simulated schedule.
  /// Falls back to the raw simulator TTL if no model covers a stage type.
  /// With config batch_inference on, stages are grouped by stacking model and
  /// scored in one PredictBatch per group (bit-identical results).
  std::vector<double> Predict(const workload::JobInstance& job,
                              const SimulatedSchedule& sim) const;

  /// Predict into caller-owned buffers (bit-identical to Predict; no heap
  /// allocation once `scratch` and `out` are warm). `out` must not alias
  /// scratch fields.
  void PredictInto(const workload::JobInstance& job, const SimulatedSchedule& sim,
                   PredictScratch* scratch, std::vector<double>* out) const;

  /// Toggle batched scoring after construction. Not safe to call
  /// concurrently with inference.
  void set_batch_inference(bool on) { config_.batch_inference = on; }

  /// Stacking feature row: the stage's "position" within the job.
  static std::vector<double> StackingFeatures(const SimulatedSchedule& sim,
                                              dag::StageId stage);
  /// Same row into caller-owned storage (cleared first; capacity reused).
  static void StackingFeaturesInto(const SimulatedSchedule& sim, dag::StageId stage,
                                   std::vector<double>* row);
  static std::vector<std::string> StackingFeatureNames();

  /// Serialize the trained stacking models; LoadFromText restores them.
  std::string ToText() const;
  Status LoadFromText(const std::string& text);

 private:
  TtlConfig config_;
  std::map<int, ml::GbdtRegressor> per_type_;  ///< stage_type -> model
  std::unique_ptr<ml::GbdtRegressor> general_;
  bool trained_ = false;
};

}  // namespace phoebe::core
