#include "core/sensitivity.h"

#include <algorithm>

#include "core/evaluate.h"

namespace phoebe::core {

StageCosts PerturbCosts(const StageCosts& costs, const CostPerturbation& p, Rng* rng) {
  StageCosts out = costs;
  const size_t n = costs.size();
  double job_end = 0.0;
  for (double e : costs.end_time) job_end = std::max(job_end, e);

  for (size_t i = 0; i < n; ++i) {
    if (p.output_sigma > 0.0) {
      out.output_bytes[i] *= rng->LogNormal(0.0, p.output_sigma);
    }
    if (p.ttl_sigma > 0.0) {
      out.ttl[i] *= rng->LogNormal(0.0, p.ttl_sigma);
      // Keep the schedule view consistent with the perturbed lifetime: a
      // stage with a longer TTL "ended earlier" relative to the job end.
      out.end_time[i] = std::max(0.0, job_end - out.ttl[i]);
    }
    if (p.exec_sigma > 0.0) {
      out.tfs[i] *= rng->LogNormal(0.0, p.exec_sigma);
    }
  }
  return out;
}

Result<SensitivityResult> EvaluateCutSensitivity(const workload::JobInstance& job,
                                                 const StageCosts& clean_costs,
                                                 const CostPerturbation& p, Rng* rng) {
  PHOEBE_ASSIGN_OR_RETURN(CutResult clean, OptimizeTempStorage(job.graph, clean_costs));
  StageCosts noisy_costs = PerturbCosts(clean_costs, p, rng);
  PHOEBE_ASSIGN_OR_RETURN(CutResult noisy, OptimizeTempStorage(job.graph, noisy_costs));

  SensitivityResult result;
  result.realized_clean = RealizedTempSaving(job, clean.cut);
  result.realized_noisy = RealizedTempSaving(job, noisy.cut);
  result.regret = result.realized_clean - result.realized_noisy;

  size_t inter = 0, uni = 0;
  const size_t n = job.graph.num_stages();
  for (size_t i = 0; i < n; ++i) {
    bool a = !clean.cut.empty() && clean.cut.before_cut[i];
    bool b = !noisy.cut.empty() && noisy.cut.before_cut[i];
    inter += (a && b) ? 1 : 0;
    uni += (a || b) ? 1 : 0;
  }
  result.jaccard = uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
  return result;
}

}  // namespace phoebe::core
