// Online-knapsack admission for the global storage budget (paper §5.4).
//
// Jobs arrive in a stream; each has an (estimated) global-storage weight w_i
// and a value-to-weight ratio pi_i. The threshold policy accepts a job when
// pi_i >= pi*, where pi* is the (1 - p) quantile of the pi distribution and
// p = W / (lambda * T * E[w]) — the fraction of total arriving weight the
// budget W can hold over period T with arrival rate lambda (Little's law).
#pragma once

#include <limits>
#include <vector>

#include "common/status.h"

namespace phoebe::core {

/// \brief One candidate job for checkpoint admission.
struct KnapsackItem {
  double weight = 0.0;  ///< estimated global storage bytes
  double value = 0.0;   ///< estimated objective value (byte-seconds saved)

  /// Value density pi_i. A zero-weight item with positive value consumes no
  /// budget and is infinitely attractive (it passes every threshold); only a
  /// worthless zero-weight item has ratio 0.
  double Ratio() const {
    if (weight > 0.0) return value / weight;
    return value > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
};

/// \brief Threshold-based online knapsack admission policy.
class OnlineKnapsack {
 public:
  /// Calibrate the threshold from a historical sample of items.
  /// \param capacity     global storage budget W for the period (bytes)
  /// \param expected_items  lambda * T, the expected number of arrivals
  /// \param history      sample used to estimate E[w] and the pi quantile
  static Result<OnlineKnapsack> Calibrate(double capacity, double expected_items,
                                          const std::vector<KnapsackItem>& history);

  /// Decision rule (eq. 37): accept iff pi_i >= pi* and weight fits the
  /// remaining budget. Accepting decrements the remaining budget.
  bool Offer(const KnapsackItem& item);

  double threshold() const { return threshold_; }
  double remaining() const { return remaining_; }
  double capacity() const { return capacity_; }
  double accepted_weight() const { return capacity_ - remaining_; }
  double accepted_value() const { return accepted_value_; }
  int64_t accepted_count() const { return accepted_; }
  int64_t offered_count() const { return offered_; }
  /// The calibrated selection probability p = W / (lambda T E[w]).
  double selection_fraction() const { return p_; }

 private:
  OnlineKnapsack() = default;

  double capacity_ = 0.0;
  double remaining_ = 0.0;
  double threshold_ = 0.0;
  double p_ = 1.0;
  double accepted_value_ = 0.0;
  int64_t accepted_ = 0;
  int64_t offered_ = 0;
};

}  // namespace phoebe::core
