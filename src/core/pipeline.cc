#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "core/simulator.h"

namespace phoebe::core {

PipelineConfig PhoebePipeline::DefaultConfig() {
  PipelineConfig cfg;
  cfg.exec_predictor.kind = ModelKind::kGbdtPerStageType;
  cfg.exec_predictor.gbdt.num_trees = 80;
  cfg.exec_predictor.gbdt.num_leaves = 31;
  cfg.exec_predictor.gbdt.min_data_in_leaf = 20;
  cfg.size_predictor = cfg.exec_predictor;
  cfg.size_predictor.gbdt.seed = 1043;
  return cfg;
}

PhoebePipeline::PhoebePipeline(PipelineConfig config) : config_(std::move(config)) {
  exec_ = std::make_unique<StageCostPredictor>(config_.exec_predictor,
                                               Target::kExecSeconds);
  size_ = std::make_unique<StageCostPredictor>(config_.size_predictor,
                                               Target::kOutputBytes);
  ttl_ = std::make_unique<TtlEstimator>(config_.ttl);
}

void PhoebePipeline::set_batch_inference(bool on) {
  config_.exec_predictor.batch_inference = on;
  config_.size_predictor.batch_inference = on;
  config_.ttl.batch_inference = on;
  exec_->set_batch_inference(on);
  size_->set_batch_inference(on);
  ttl_->set_batch_inference(on);
}

Status PhoebePipeline::Train(const telemetry::WorkloadRepository& repo, int first_day,
                             int num_days) {
  if (num_days < 1) return Status::InvalidArgument("num_days must be >= 1");

  // Each training day is featurized against the stats available before it
  // (mirrors production retraining; avoids peeking at the day's own runs).
  std::deque<telemetry::HistoricStats> stats_store;
  std::vector<TrainExample> examples;
  for (int d = first_day; d < first_day + num_days; ++d) {
    if (!repo.HasDay(d)) {
      return Status::NotFound(StrFormat("day %d not in repository", d));
    }
    stats_store.push_back(repo.StatsBefore(d));
    const telemetry::HistoricStats* stats = &stats_store.back();
    for (const workload::JobInstance& job : repo.Day(d)) {
      examples.push_back({&job, stats});
    }
  }
  if (examples.empty()) return Status::InvalidArgument("no training jobs");

  PHOEBE_RETURN_NOT_OK(exec_->Train(examples));
  PHOEBE_RETURN_NOT_OK(size_->Train(examples));
  PHOEBE_RETURN_NOT_OK(ttl_->Train(examples, *exec_));

  stats_ = repo.StatsBefore(first_day + num_days);
  trained_ = true;
  return Status::OK();
}

Result<StageCosts> PhoebePipeline::BuildCosts(const workload::JobInstance& job,
                                              CostSource source) const {
  return BuildCosts(job, source, stats_);
}

Result<StageCosts> PhoebePipeline::BuildCosts(const workload::JobInstance& job,
                                              CostSource source,
                                              const telemetry::HistoricStats& stats) const {
  const size_t n = job.graph.num_stages();
  StageCosts costs;
  costs.num_tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    costs.num_tasks.push_back(job.truth[i].num_tasks);
  }

  if (source == CostSource::kTruth) {
    costs.output_bytes.reserve(n);
    costs.ttl.reserve(n);
    costs.end_time.reserve(n);
    costs.tfs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const workload::StageTruth& t = job.truth[i];
      costs.output_bytes.push_back(t.output_bytes);
      costs.ttl.push_back(t.ttl);
      costs.end_time.push_back(t.end_time);
      costs.tfs.push_back(t.tfs);
    }
    return costs;
  }

  // Per-stage execution time and output size from the chosen source.
  std::vector<double> exec(n), output(n);
  switch (source) {
    case CostSource::kOptimizerEstimates:
      for (size_t i = 0; i < n; ++i) {
        exec[i] = std::max(0.0, job.est[i].est_exclusive_cost);
        output[i] = std::max(0.0, job.est[i].est_output_bytes);
      }
      break;
    case CostSource::kConstant:
      for (size_t i = 0; i < n; ++i) {
        exec[i] = 1.0;
        output[i] = 1.0;
      }
      break;
    case CostSource::kMlSimulator:
    case CostSource::kMlStacked: {
      if (!trained_) return Status::FailedPrecondition("pipeline not trained");
      exec = exec_->PredictJob(job, stats);
      output = size_->PredictJob(job, stats);
      break;
    }
    case CostSource::kTruth:
      PHOEBE_CHECK(false);
  }

  PHOEBE_ASSIGN_OR_RETURN(SimulatedSchedule sim, SimulateSchedule(job.graph, exec));

  costs.output_bytes = std::move(output);
  costs.end_time = sim.end;
  costs.tfs = sim.start;
  if (source == CostSource::kMlStacked && trained_) {
    costs.ttl = ttl_->Predict(job, sim);
  } else {
    costs.ttl.resize(n);
    for (size_t i = 0; i < n; ++i) {
      costs.ttl[i] = sim.Ttl(static_cast<dag::StageId>(i));
    }
  }
  return costs;
}

Result<PipelineDecision> PhoebePipeline::Decide(const workload::JobInstance& job,
                                                Objective objective,
                                                CostSource source) const {
  using Clock = std::chrono::steady_clock;
  PipelineDecision decision;

  auto t0 = Clock::now();
  // Metadata/model lookup: resolve stats entries for every stage type in the
  // plan (in production this is the Workload Insight Service round trip).
  for (size_t i = 0; i < job.graph.num_stages(); ++i) {
    (void)stats_.Get(job.template_id, job.graph.stage(static_cast<int>(i)).stage_type);
  }
  auto t1 = Clock::now();

  PHOEBE_ASSIGN_OR_RETURN(StageCosts costs, BuildCosts(job, source));
  auto t2 = Clock::now();

  switch (objective) {
    case Objective::kTempStorage: {
      PHOEBE_ASSIGN_OR_RETURN(decision.cut, OptimizeTempStorage(job.graph, costs));
      break;
    }
    case Objective::kRecovery: {
      PHOEBE_ASSIGN_OR_RETURN(decision.cut,
                              OptimizeRecovery(job.graph, costs, config_.delta));
      break;
    }
  }
  auto t3 = Clock::now();

  auto secs = [](auto a, auto b) {
    return std::chrono::duration<double>(b - a).count();
  };
  decision.lookup_seconds = secs(t0, t1);
  decision.scoring_seconds = secs(t1, t2);
  decision.optimize_seconds = secs(t2, t3);
  return decision;
}

namespace {

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open for write: " + path);
  f << content;
  if (!f.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open for read: " + path);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

}  // namespace

Status PhoebePipeline::Save(const std::string& dir) const {
  if (!trained_) return Status::FailedPrecondition("pipeline not trained");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create directory: " + dir);
  PHOEBE_RETURN_NOT_OK(WriteFile(dir + "/exec.model", exec_->ToText()));
  PHOEBE_RETURN_NOT_OK(WriteFile(dir + "/size.model", size_->ToText()));
  PHOEBE_RETURN_NOT_OK(WriteFile(dir + "/ttl.model", ttl_->ToText()));
  PHOEBE_RETURN_NOT_OK(WriteFile(dir + "/stats.txt", stats_.ToText()));
  return Status::OK();
}

Status PhoebePipeline::Load(const std::string& dir) {
  PHOEBE_ASSIGN_OR_RETURN(std::string exec_text, ReadFile(dir + "/exec.model"));
  PHOEBE_ASSIGN_OR_RETURN(std::string size_text, ReadFile(dir + "/size.model"));
  PHOEBE_ASSIGN_OR_RETURN(std::string ttl_text, ReadFile(dir + "/ttl.model"));
  PHOEBE_ASSIGN_OR_RETURN(std::string stats_text, ReadFile(dir + "/stats.txt"));
  PHOEBE_RETURN_NOT_OK(exec_->LoadFromText(exec_text));
  PHOEBE_RETURN_NOT_OK(size_->LoadFromText(size_text));
  PHOEBE_RETURN_NOT_OK(ttl_->LoadFromText(ttl_text));
  PHOEBE_ASSIGN_OR_RETURN(stats_, telemetry::HistoricStats::FromText(stats_text));
  trained_ = true;
  return Status::OK();
}

}  // namespace phoebe::core
