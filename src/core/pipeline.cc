#include "core/pipeline.h"

#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace phoebe::core {

PipelineConfig PhoebePipeline::DefaultConfig() {
  PipelineConfig cfg;
  cfg.exec_predictor.kind = ModelKind::kGbdtPerStageType;
  cfg.exec_predictor.gbdt.num_trees = 80;
  cfg.exec_predictor.gbdt.num_leaves = 31;
  cfg.exec_predictor.gbdt.min_data_in_leaf = 20;
  cfg.size_predictor = cfg.exec_predictor;
  cfg.size_predictor.gbdt.seed = 1043;
  return cfg;
}

PhoebePipeline::PhoebePipeline(PipelineConfig config)
    : config_(std::move(config)),
      engine_(std::make_shared<const PipelineBundle>(config_)) {}

void PhoebePipeline::set_batch_inference(bool on) {
  config_.exec_predictor.batch_inference = on;
  config_.size_predictor.batch_inference = on;
  config_.ttl.batch_inference = on;
  auto toggled = engine_.bundle().WithBatchInference(on);
  toggled.status().Check();  // round-trips our own serialized form
  engine_ = DecisionEngine(std::move(*toggled));
}

Status PhoebePipeline::Train(const telemetry::WorkloadRepository& repo, int first_day,
                             int num_days) {
  if (num_days < 1) return Status::InvalidArgument("num_days must be >= 1");

  // Each training day is featurized against the stats available before it
  // (mirrors production retraining; avoids peeking at the day's own runs).
  std::deque<telemetry::HistoricStats> stats_store;
  std::vector<TrainExample> examples;
  for (int d = first_day; d < first_day + num_days; ++d) {
    if (!repo.HasDay(d)) {
      return Status::NotFound(StrFormat("day %d not in repository", d));
    }
    stats_store.push_back(repo.StatsBefore(d));
    const telemetry::HistoricStats* stats = &stats_store.back();
    for (const workload::JobInstance& job : repo.Day(d)) {
      examples.push_back({&job, stats});
    }
  }
  if (examples.empty()) return Status::InvalidArgument("no training jobs");

  auto exec = std::make_unique<StageCostPredictor>(config_.exec_predictor,
                                                   Target::kExecSeconds);
  auto size = std::make_unique<StageCostPredictor>(config_.size_predictor,
                                                   Target::kOutputBytes);
  auto ttl = std::make_unique<TtlEstimator>(config_.ttl);
  PHOEBE_RETURN_NOT_OK(exec->Train(examples));
  PHOEBE_RETURN_NOT_OK(size->Train(examples));
  PHOEBE_RETURN_NOT_OK(ttl->Train(examples, *exec));

  // Freeze: the trained components move into an immutable bundle and the
  // serving engine re-seats on it. From here on, the compiler enforces
  // const-after-Train for every decide-path caller.
  engine_ = DecisionEngine(std::make_shared<const PipelineBundle>(
      config_, std::move(exec), std::move(size), std::move(ttl),
      repo.StatsBefore(first_day + num_days)));
  return Status::OK();
}

namespace {

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open for write: " + path);
  f << content;
  if (!f.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open for read: " + path);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

}  // namespace

Status PhoebePipeline::Save(const std::string& dir) const {
  const PipelineBundle& b = engine_.bundle();
  if (!b.trained()) return Status::FailedPrecondition("pipeline not trained");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create directory: " + dir);
  PHOEBE_RETURN_NOT_OK(WriteFile(dir + "/exec.model", b.exec_predictor().ToText()));
  PHOEBE_RETURN_NOT_OK(WriteFile(dir + "/size.model", b.size_predictor().ToText()));
  PHOEBE_RETURN_NOT_OK(WriteFile(dir + "/ttl.model", b.ttl_estimator().ToText()));
  PHOEBE_RETURN_NOT_OK(WriteFile(dir + "/stats.txt", b.stats().ToText()));
  return Status::OK();
}

Status PhoebePipeline::Load(const std::string& dir) {
  PHOEBE_ASSIGN_OR_RETURN(std::string exec_text, ReadFile(dir + "/exec.model"));
  PHOEBE_ASSIGN_OR_RETURN(std::string size_text, ReadFile(dir + "/size.model"));
  PHOEBE_ASSIGN_OR_RETURN(std::string ttl_text, ReadFile(dir + "/ttl.model"));
  PHOEBE_ASSIGN_OR_RETURN(std::string stats_text, ReadFile(dir + "/stats.txt"));
  auto exec = std::make_unique<StageCostPredictor>(config_.exec_predictor,
                                                   Target::kExecSeconds);
  auto size = std::make_unique<StageCostPredictor>(config_.size_predictor,
                                                   Target::kOutputBytes);
  auto ttl = std::make_unique<TtlEstimator>(config_.ttl);
  PHOEBE_RETURN_NOT_OK(exec->LoadFromText(exec_text));
  PHOEBE_RETURN_NOT_OK(size->LoadFromText(size_text));
  PHOEBE_RETURN_NOT_OK(ttl->LoadFromText(ttl_text));
  PHOEBE_ASSIGN_OR_RETURN(telemetry::HistoricStats stats,
                          telemetry::HistoricStats::FromText(stats_text));
  engine_ = DecisionEngine(std::make_shared<const PipelineBundle>(
      config_, std::move(exec), std::move(size), std::move(ttl), std::move(stats)));
  return Status::OK();
}

Status PhoebePipeline::SaveBundle(const std::string& path) const {
  return engine_.bundle().SaveToFile(path);
}

Status PhoebePipeline::LoadBundle(const std::string& path) {
  PHOEBE_ASSIGN_OR_RETURN(std::shared_ptr<const PipelineBundle> bundle,
                          PipelineBundle::LoadFromFile(path));
  config_ = bundle->config();
  engine_ = DecisionEngine(std::move(bundle));
  return Status::OK();
}

}  // namespace phoebe::core
