#include "core/fleet.h"

#include <cmath>
#include <optional>
#include <set>

#include "cluster/failure.h"
#include "common/threadpool.h"

namespace phoebe::core {

std::vector<cluster::CutSet> FleetDayReport::AdmittedCuts() const {
  std::vector<cluster::CutSet> cuts(outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].admitted) cuts[i] = outcomes[i].cut;
  }
  return cuts;
}

FleetDriver::FleetDriver(const PhoebePipeline* pipeline, FleetConfig config)
    : pipeline_(pipeline), config_(config),
      template_cache_(config.template_cache.capacity) {
  PHOEBE_CHECK(pipeline != nullptr);
}

namespace {

/// Per-job decision under the fleet's objective/source. Pure function of
/// (pipeline, config, job, stats); safe to call concurrently for distinct
/// jobs because the trained pipeline is const (see DESIGN.md "Concurrency").
Result<FleetDecision> DecideOne(const PhoebePipeline& pipeline, const FleetConfig& config,
                                const workload::JobInstance& job,
                                const telemetry::HistoricStats& stats) {
  PHOEBE_ASSIGN_OR_RETURN(StageCosts costs,
                          pipeline.BuildCosts(job, config.source, stats));
  FleetDecision d;
  if (config.objective == Objective::kRecovery) {
    PHOEBE_ASSIGN_OR_RETURN(d.combined,
                            OptimizeRecovery(job.graph, costs, pipeline.delta()));
    if (!d.combined.cut.empty()) d.cuts.push_back(d.combined.cut);
    return d;
  }
  if (config.num_cuts <= 1) {
    PHOEBE_ASSIGN_OR_RETURN(d.combined, OptimizeTempStorage(job.graph, costs));
    if (!d.combined.cut.empty()) d.cuts.push_back(d.combined.cut);
    return d;
  }

  // Multi-cut plan, reported under the physical semantics the cluster
  // realizes: the DP-total objective (each stage credited at its earliest
  // cut), and global bytes as the union of checkpoint stages across cuts —
  // a stage persists its output once even if edges cross several cuts.
  PHOEBE_ASSIGN_OR_RETURN(
      std::vector<CutResult> cuts,
      OptimizeTempStorageMultiCut(job.graph, costs, config.num_cuts));
  if (cuts.empty()) return d;
  d.combined.cut = cuts.back().cut;           // outermost (largest) set
  d.combined.objective = cuts.front().objective;  // DP total
  std::set<dag::StageId> persisted;
  for (const CutResult& c : cuts) {
    d.cuts.push_back(c.cut);
    for (dag::StageId u : cluster::CheckpointStages(job.graph, c.cut)) {
      persisted.insert(u);
    }
  }
  for (dag::StageId u : persisted) {
    d.combined.global_bytes += costs.output_bytes[static_cast<size_t>(u)];
  }
  return d;
}

/// Phase 1 of the day loop: decide every eligible job, in parallel when the
/// config asks for it. Slot i is engaged iff job i has >= 2 stages. Slots are
/// written by index, so the result is independent of scheduling order.
std::vector<std::optional<Result<FleetDecision>>> DecideAll(
    const PhoebePipeline& pipeline, const FleetConfig& config,
    const std::vector<workload::JobInstance>& jobs,
    const telemetry::HistoricStats& stats) {
  std::vector<std::optional<Result<FleetDecision>>> slots(jobs.size());
  auto decide = [&](size_t i) {
    if (jobs[i].graph.num_stages() < 2) return;
    slots[i].emplace(DecideOne(pipeline, config, jobs[i], stats));
  };
  const int threads = ThreadPool::Resolve(config.num_threads);
  if (threads <= 1) {
    for (size_t i = 0; i < jobs.size(); ++i) decide(i);
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(jobs.size(), decide);
  }
  return slots;
}

}  // namespace

Status FleetDriver::Calibrate(const std::vector<workload::JobInstance>& history_jobs,
                              const telemetry::HistoricStats& history_stats) {
  calibration_.clear();
  auto decisions = DecideAll(*pipeline_, config_, history_jobs, history_stats);
  for (size_t i = 0; i < history_jobs.size(); ++i) {
    if (!decisions[i].has_value()) continue;  // < 2 stages
    const Result<FleetDecision>& d = *decisions[i];
    PHOEBE_RETURN_NOT_OK(d.status());
    const CutResult& cut = d->combined;
    if (cut.cut.empty() || cut.global_bytes <= 0.0) continue;
    calibration_.push_back(KnapsackItem{cut.global_bytes, cut.objective});
  }
  if (calibration_.empty()) {
    return Status::FailedPrecondition("no checkpointable jobs in calibration history");
  }
  calibrated_ = true;
  return Status::OK();
}

Result<FleetDayReport> FleetDriver::RunDay(
    const std::vector<workload::JobInstance>& jobs,
    const telemetry::HistoricStats& stats) {
  const bool budgeted = std::isfinite(config_.storage_budget_bytes);
  if (budgeted && !calibrated_) {
    return Status::FailedPrecondition("Calibrate must run before a budgeted RunDay");
  }

  // Admission policy for the day.
  std::unique_ptr<OnlineKnapsack> knapsack;
  if (budgeted) {
    double arrivals = config_.expected_arrivals > 0.0
                          ? config_.expected_arrivals
                          : static_cast<double>(calibration_.size());
    PHOEBE_ASSIGN_OR_RETURN(
        OnlineKnapsack k,
        OnlineKnapsack::Calibrate(config_.storage_budget_bytes, arrivals, calibration_));
    knapsack = std::make_unique<OnlineKnapsack>(std::move(k));
  }

  const TemplateCacheConfig& cache_cfg = config_.template_cache;
  FleetDayReport report;

  // Phase 1 (parallel): per-job decisions. The pipeline is const after
  // Train, so this is a pure map over the day's jobs.
  //
  // With the template cache on, a serial arrival-order prepass first resolves
  // hits against the cache (as left by prior RunDay calls) and designates the
  // first instance of each unseen key as that key's leader; the parallel
  // phase then computes leaders only, and a serial admission prologue copies
  // leader decisions to their followers and inserts them into the cache — so
  // every cache mutation happens serially in arrival order and the report
  // stays byte-identical for any thread count.
  std::vector<std::optional<Result<FleetDecision>>> decisions;
  std::vector<TemplateCacheKey> keys;
  std::vector<size_t> leader_of;  // follower i -> index of its leader
  std::vector<char> is_leader;
  const int64_t evictions_before = template_cache_.evictions();
  if (!cache_cfg.enabled) {
    decisions = DecideAll(*pipeline_, config_, jobs, stats);
  } else {
    decisions.resize(jobs.size());
    keys.resize(jobs.size());
    leader_of.assign(jobs.size(), jobs.size());
    is_leader.assign(jobs.size(), 0);
    std::map<TemplateCacheKey, size_t> day_leaders;
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].graph.num_stages() < 2) continue;
      keys[i] = BuildTemplateCacheKey(jobs[i], stats, config_.source,
                                      config_.objective, config_.num_cuts,
                                      cache_cfg.quantize_bps);
      auto leader_it = day_leaders.find(keys[i]);
      if (leader_it != day_leaders.end()) {
        // A same-key instance already leads this day: follow it.
        leader_of[i] = leader_it->second;
        ++report.cache_hits;
        continue;
      }
      if (const FleetDecision* hit = template_cache_.Lookup(keys[i])) {
        decisions[i].emplace(*hit);
        ++report.cache_hits;
        continue;
      }
      day_leaders.emplace(keys[i], i);
      is_leader[i] = 1;
      ++report.cache_misses;
    }
    auto decide = [&](size_t i) {
      if (!is_leader[i]) return;
      decisions[i].emplace(DecideOne(*pipeline_, config_, jobs[i], stats));
    };
    const int threads = ThreadPool::Resolve(config_.num_threads);
    if (threads <= 1) {
      for (size_t i = 0; i < jobs.size(); ++i) decide(i);
    } else {
      ThreadPool pool(threads);
      pool.ParallelFor(jobs.size(), decide);
    }
    // Serial admission prologue: insert leader decisions into the cache and
    // copy them to same-day followers, in arrival order, before the admission
    // loop below moves anything out of a leader's decision.
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (is_leader[i] && decisions[i]->ok()) {
        template_cache_.Insert(keys[i], **decisions[i]);
      } else if (leader_of[i] < jobs.size()) {
        decisions[i] = decisions[leader_of[i]];  // copy, leader index < i
      }
    }
  }

  // Phase 2 (serial): replay the online-knapsack admission in arrival order.
  // Every accumulation happens here, in job order, which is what makes the
  // report byte-identical to the legacy serial driver for any thread count.
  report.outcomes.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const workload::JobInstance& job = jobs[i];
    FleetJobOutcome out;
    out.job_id = job.job_id;
    report.total_temp_byte_seconds += job.TempByteSeconds();
    if (decisions[i].has_value()) {
      ++report.jobs_considered;
      Result<FleetDecision>& d = *decisions[i];
      PHOEBE_RETURN_NOT_OK(d.status());
      const CutResult& cut = d->combined;
      if (!cut.cut.empty()) {
        ++report.jobs_with_cut;
        out.cut = cut.cut;
        out.cuts = std::move(d->cuts);
        out.predicted_value = cut.objective;
        bool admit = !knapsack ||
                     knapsack->Offer(KnapsackItem{cut.global_bytes, cut.objective});
        if (admit) {
          out.admitted = true;
          out.global_bytes = cut.global_bytes;
          out.realized_value =
              RealizedTempSavingMultiCut(job, out.cuts) * job.TempByteSeconds();
          ++report.jobs_admitted;
          report.storage_used_bytes += cut.global_bytes;
          report.realized_saving_byte_seconds += out.realized_value;
        }
      }
    }
    report.outcomes.push_back(std::move(out));
  }
  if (cache_cfg.enabled) {
    report.cache_evictions = template_cache_.evictions() - evictions_before;
  }
  if (knapsack) report.knapsack_threshold = knapsack->threshold();
  return report;
}

}  // namespace phoebe::core
