#include "core/fleet.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/threadpool.h"

namespace phoebe::core {

std::vector<cluster::CutSet> FleetDayReport::AdmittedCuts() const {
  std::vector<cluster::CutSet> cuts(outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].admitted) cuts[i] = outcomes[i].cut;
  }
  return cuts;
}

Status FleetConfig::Validate() const {
  if (std::isnan(storage_budget_bytes) || storage_budget_bytes <= 0.0) {
    return Status::InvalidArgument(
        "storage_budget_bytes must be positive (infinite = unbudgeted)");
  }
  if (!std::isfinite(expected_arrivals) || expected_arrivals < 0.0) {
    return Status::InvalidArgument(
        "expected_arrivals must be finite and >= 0 (0 = calibration size)");
  }
  if (num_cuts < 1) {
    return Status::InvalidArgument("num_cuts must be >= 1");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 0 (0 = hardware concurrency)");
  }
  return template_cache.Validate();
}

DecisionArm::DecisionArm(const DecisionEngine* engine, FleetConfig config)
    : engine_(engine), config_(config), config_status_(config.Validate()),
      template_cache_(config.template_cache.capacity) {
  PHOEBE_CHECK(engine != nullptr);
  if (obs::MetricsRegistry* reg = config_.metrics) {
    metrics_.day_seconds = reg->histogram("fleet.day.seconds");
    metrics_.decide_seconds = reg->histogram("fleet.phase.decide.seconds");
    metrics_.admission_seconds = reg->histogram("fleet.phase.admission.seconds");
    metrics_.decide_day_seconds = reg->histogram("fleet.shard.decide_day.seconds");
    metrics_.replay_day_seconds = reg->histogram("fleet.shard.replay_day.seconds");
    metrics_.cache_lookup_seconds = reg->histogram("fleet.cache.lookup.seconds");
    metrics_.cache_insert_seconds = reg->histogram("fleet.cache.insert.seconds");
    metrics_.cache_hits = reg->counter("fleet.cache.hits");
    metrics_.cache_misses = reg->counter("fleet.cache.misses");
    metrics_.cache_evictions = reg->counter("fleet.cache.evictions");
    metrics_.jobs_decided = reg->counter("fleet.decide.jobs");
    const int threads = ThreadPool::Resolve(config_.num_threads);
    metrics_.worker_jobs.reserve(static_cast<size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      metrics_.worker_jobs.push_back(
          reg->counter("fleet.worker." + std::to_string(w) + ".jobs"));
    }
  }
}

namespace {

/// Phase 1 of the day loop: decide every eligible job, in parallel when the
/// config asks for it. Slot i is engaged iff job i has >= 2 stages. Slots are
/// written by index, so the result is independent of scheduling order. Pure
/// map over the jobs: the engine's bundle is immutable, so concurrent calls
/// for distinct jobs are safe by construction (see DESIGN.md "Concurrency").
/// `jobs_decided`/`worker_jobs` are the arm's (possibly null/empty)
/// telemetry counters; per-worker attribution never touches the result slots.
/// One decide-path arena per worker, heap-boxed so workers never share cache
/// lines. ParallelForWorker hands each body invocation its worker id, which
/// makes arena reuse race-free by construction; decisions are bit-identical
/// regardless of which (or how warm an) arena served a job, so the
/// byte-determinism contract is untouched. Each arm builds its own arenas
/// per decide phase — arenas are never shared across arms.
std::vector<std::unique_ptr<DecideScratch>> MakeWorkerArenas(int threads) {
  std::vector<std::unique_ptr<DecideScratch>> arenas(
      static_cast<size_t>(std::max(threads, 1)));
  for (auto& a : arenas) a = std::make_unique<DecideScratch>();
  return arenas;
}

std::vector<std::optional<Result<FleetDecision>>> DecideAll(
    const DecisionEngine& engine, const FleetConfig& config,
    const std::vector<workload::JobInstance>& jobs,
    const telemetry::HistoricStats& stats, obs::Counter* jobs_decided,
    const std::vector<obs::Counter*>& worker_jobs) {
  std::vector<std::optional<Result<FleetDecision>>> slots(jobs.size());
  const DecideOptions options = config.decide_options();
  const int threads = ThreadPool::Resolve(config.num_threads);
  std::vector<std::unique_ptr<DecideScratch>> arenas = MakeWorkerArenas(threads);
  auto decide = [&](int worker, size_t i) {
    if (jobs[i].graph.num_stages() < 2) return;
    FleetDecision d;
    Status st = engine.DecideJobInto(jobs[i], stats, options,
                                     arenas[static_cast<size_t>(worker)].get(), &d);
    if (st.ok()) {
      slots[i].emplace(std::move(d));
    } else {
      slots[i].emplace(std::move(st));
    }
    obs::Increment(jobs_decided);
    if (static_cast<size_t>(worker) < worker_jobs.size()) {
      obs::Increment(worker_jobs[static_cast<size_t>(worker)]);
    }
  };
  if (threads <= 1) {
    for (size_t i = 0; i < jobs.size(); ++i) decide(0, i);
  } else {
    ThreadPool pool(threads);
    pool.ParallelForWorker(jobs.size(), decide);
  }
  return slots;
}

}  // namespace

Status DecisionArm::Calibrate(const DayContext& history) {
  PHOEBE_RETURN_NOT_OK(config_status_);
  const std::vector<workload::JobInstance>& history_jobs = *history.jobs;
  calibration_.clear();
  auto decisions = DecideAll(*engine_, config_, history_jobs, *history.stats,
                             metrics_.jobs_decided, metrics_.worker_jobs);
  for (size_t i = 0; i < history_jobs.size(); ++i) {
    if (!decisions[i].has_value()) continue;  // < 2 stages
    const Result<FleetDecision>& d = *decisions[i];
    PHOEBE_RETURN_NOT_OK(d.status());
    const CutResult& cut = d->combined;
    if (cut.cut.empty() || cut.global_bytes <= 0.0) continue;
    calibration_.push_back(KnapsackItem{cut.global_bytes, cut.objective});
  }
  if (calibration_.empty()) {
    return Status::FailedPrecondition("no checkpointable jobs in calibration history");
  }
  calibrated_ = true;
  return Status::OK();
}

Result<FleetDayDecisions> DecisionArm::DecideDay(const DayContext& ctx) const {
  PHOEBE_RETURN_NOT_OK(config_status_);
  obs::ScopedTimer day_timer(metrics_.decide_day_seconds);
  const std::vector<workload::JobInstance>& jobs = *ctx.jobs;
  // Fresh decisions for *every* eligible job, never consulting the template
  // cache: a shard process has no cache state, and the merge's ReplayDay only
  // consumes the slots RunDay would have computed (leaders / all jobs), so
  // extra slots cost shard CPU but never change the merged report.
  auto slots = DecideAll(*engine_, config_, jobs, *ctx.stats,
                         metrics_.jobs_decided, metrics_.worker_jobs);
  FleetDayDecisions day;
  day.decisions.resize(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!slots[i].has_value()) continue;
    PHOEBE_RETURN_NOT_OK(slots[i]->status());
    day.decisions[i].emplace(std::move(**slots[i]));
  }
  return day;
}

Result<FleetDayReport> DecisionArm::RunDay(const DayContext& ctx) {
  return RunDayImpl(ctx, /*precomputed=*/nullptr);
}

Result<FleetDayReport> DecisionArm::ReplayDay(const DayContext& ctx,
                                              const FleetDayDecisions& precomputed) {
  obs::ScopedTimer replay_timer(metrics_.replay_day_seconds);
  return RunDayImpl(ctx, &precomputed);
}

Result<FleetDayReport> DecisionArm::RunDayImpl(const DayContext& ctx,
                                               const FleetDayDecisions* precomputed) {
  PHOEBE_RETURN_NOT_OK(config_status_);
  obs::ScopedTimer day_timer(metrics_.day_seconds);
  const std::vector<workload::JobInstance>& jobs = *ctx.jobs;
  const telemetry::HistoricStats& stats = *ctx.stats;
  const bool budgeted = std::isfinite(config_.storage_budget_bytes);
  if (budgeted && !calibrated_) {
    return Status::FailedPrecondition("Calibrate must run before a budgeted RunDay");
  }
  if (precomputed != nullptr) {
    if (precomputed->decisions.size() != jobs.size()) {
      return Status::InvalidArgument("precomputed decisions do not match day size");
    }
    for (size_t i = 0; i < jobs.size(); ++i) {
      const bool eligible = jobs[i].graph.num_stages() >= 2;
      if (precomputed->decisions[i].has_value() != eligible) {
        return Status::InvalidArgument(
            "precomputed decision eligibility does not match the day's jobs");
      }
      if (!eligible) continue;
      for (const cluster::CutSet& cut : precomputed->decisions[i]->cuts) {
        if (cut.before_cut.size() != jobs[i].graph.num_stages()) {
          return Status::InvalidArgument(
              "precomputed cut size does not match the job's stage count");
        }
      }
    }
  }

  // Admission policy for the day.
  std::unique_ptr<OnlineKnapsack> knapsack;
  if (budgeted) {
    double arrivals = config_.expected_arrivals > 0.0
                          ? config_.expected_arrivals
                          : static_cast<double>(calibration_.size());
    PHOEBE_ASSIGN_OR_RETURN(
        OnlineKnapsack k,
        OnlineKnapsack::Calibrate(config_.storage_budget_bytes, arrivals, calibration_));
    knapsack = std::make_unique<OnlineKnapsack>(std::move(k));
  }

  const TemplateCacheConfig& cache_cfg = config_.template_cache;
  FleetDayReport report;

  // Phase 1 (parallel): per-job decisions, or — on the ReplayDay path — the
  // precomputed ones, slotted in where this phase would have computed them.
  //
  // With the template cache on, a serial arrival-order prepass first resolves
  // hits against the cache (as left by prior RunDay/ReplayDay calls on this
  // arm) and designates the first instance of each unseen key as that
  // key's leader; the parallel phase then computes leaders only, and a serial
  // admission prologue copies leader decisions to their followers and inserts
  // them into the cache — so every cache mutation happens serially in arrival
  // order and the report stays byte-identical for any thread count. Replay
  // substitutes precomputed decisions for exactly the leader computations
  // (which DecideDay produced fresh, like this phase would), so cache state,
  // hit/miss/eviction counts, and LRU order evolve identically.
  std::vector<std::optional<Result<FleetDecision>>> decisions;
  std::vector<TemplateCacheKey> keys;
  std::vector<size_t> leader_of;  // follower i -> index of its leader
  std::vector<char> is_leader;
  const int64_t evictions_before = template_cache_.evictions();
  obs::ScopedTimer decide_timer(metrics_.decide_seconds);
  if (!cache_cfg.enabled) {
    if (precomputed != nullptr) {
      decisions.resize(jobs.size());
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (precomputed->decisions[i].has_value()) {
          decisions[i].emplace(*precomputed->decisions[i]);
        }
      }
    } else {
      decisions = DecideAll(*engine_, config_, jobs, stats,
                            metrics_.jobs_decided, metrics_.worker_jobs);
    }
  } else {
    decisions.resize(jobs.size());
    keys.resize(jobs.size());
    leader_of.assign(jobs.size(), jobs.size());
    is_leader.assign(jobs.size(), 0);
    std::map<TemplateCacheKey, size_t> day_leaders;
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].graph.num_stages() < 2) continue;
      keys[i] = BuildTemplateCacheKey(jobs[i], stats, config_.source,
                                      config_.objective, config_.num_cuts,
                                      cache_cfg.quantize_bps);
      auto leader_it = day_leaders.find(keys[i]);
      if (leader_it != day_leaders.end()) {
        // A same-key instance already leads this day: follow it.
        leader_of[i] = leader_it->second;
        ++report.cache_hits;
        continue;
      }
      obs::ScopedTimer lookup_timer(metrics_.cache_lookup_seconds);
      const FleetDecision* hit = template_cache_.Lookup(keys[i]);
      lookup_timer.Stop();
      if (hit != nullptr) {
        decisions[i].emplace(*hit);
        ++report.cache_hits;
        continue;
      }
      day_leaders.emplace(keys[i], i);
      is_leader[i] = 1;
      ++report.cache_misses;
    }
    if (precomputed != nullptr) {
      for (size_t i = 0; i < jobs.size(); ++i) {
        if (is_leader[i]) decisions[i].emplace(*precomputed->decisions[i]);
      }
    } else {
      const DecideOptions options = config_.decide_options();
      const int threads = ThreadPool::Resolve(config_.num_threads);
      std::vector<std::unique_ptr<DecideScratch>> arenas = MakeWorkerArenas(threads);
      auto decide = [&](int worker, size_t i) {
        if (!is_leader[i]) return;
        FleetDecision d;
        Status st = engine_->DecideJobInto(
            jobs[i], stats, options, arenas[static_cast<size_t>(worker)].get(), &d);
        if (st.ok()) {
          decisions[i].emplace(std::move(d));
        } else {
          decisions[i].emplace(std::move(st));
        }
        obs::Increment(metrics_.jobs_decided);
        if (static_cast<size_t>(worker) < metrics_.worker_jobs.size()) {
          obs::Increment(metrics_.worker_jobs[static_cast<size_t>(worker)]);
        }
      };
      if (threads <= 1) {
        for (size_t i = 0; i < jobs.size(); ++i) decide(0, i);
      } else {
        ThreadPool pool(threads);
        pool.ParallelForWorker(jobs.size(), decide);
      }
    }
    // Serial admission prologue: insert leader decisions into the cache and
    // copy them to same-day followers, in arrival order, before the admission
    // loop below moves anything out of a leader's decision.
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (is_leader[i] && decisions[i]->ok()) {
        obs::ScopedTimer insert_timer(metrics_.cache_insert_seconds);
        template_cache_.Insert(keys[i], **decisions[i]);
      } else if (leader_of[i] < jobs.size()) {
        decisions[i] = decisions[leader_of[i]];  // copy, leader index < i
      }
    }
  }
  decide_timer.Stop();

  // Phase 2 (serial): replay the online-knapsack admission in arrival order.
  // Every accumulation happens here, in job order, which is what makes the
  // report byte-identical to the legacy serial driver for any thread count.
  obs::ScopedTimer admission_timer(metrics_.admission_seconds);
  report.outcomes.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const workload::JobInstance& job = jobs[i];
    FleetJobOutcome out;
    out.job_id = job.job_id;
    report.total_temp_byte_seconds += job.TempByteSeconds();
    if (decisions[i].has_value()) {
      ++report.jobs_considered;
      Result<FleetDecision>& d = *decisions[i];
      PHOEBE_RETURN_NOT_OK(d.status());
      const CutResult& cut = d->combined;
      if (!cut.cut.empty()) {
        ++report.jobs_with_cut;
        out.cut = cut.cut;
        out.cuts = std::move(d->cuts);
        out.predicted_value = cut.objective;
        bool admit = !knapsack ||
                     knapsack->Offer(KnapsackItem{cut.global_bytes, cut.objective});
        if (admit) {
          out.admitted = true;
          out.global_bytes = cut.global_bytes;
          out.realized_value =
              RealizedTempSavingMultiCut(job, out.cuts) * job.TempByteSeconds();
          ++report.jobs_admitted;
          report.storage_used_bytes += cut.global_bytes;
          report.realized_saving_byte_seconds += out.realized_value;
        }
      }
    }
    report.outcomes.push_back(std::move(out));
  }
  admission_timer.Stop();
  if (cache_cfg.enabled) {
    report.cache_evictions = template_cache_.evictions() - evictions_before;
  }
  if (knapsack) report.knapsack_threshold = knapsack->threshold();
  // Telemetry mirrors of the day's cache traffic (flows, so they accumulate
  // across days; the per-day report keeps the authoritative values).
  obs::Add(metrics_.cache_hits, report.cache_hits);
  obs::Add(metrics_.cache_misses, report.cache_misses);
  obs::Add(metrics_.cache_evictions, report.cache_evictions);
  return report;
}

}  // namespace phoebe::core
