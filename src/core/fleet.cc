#include "core/fleet.h"

#include <cmath>

#include "cluster/failure.h"

namespace phoebe::core {

std::vector<cluster::CutSet> FleetDayReport::AdmittedCuts() const {
  std::vector<cluster::CutSet> cuts(outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].admitted) cuts[i] = outcomes[i].cut;
  }
  return cuts;
}

FleetDriver::FleetDriver(const PhoebePipeline* pipeline, FleetConfig config)
    : pipeline_(pipeline), config_(config) {
  PHOEBE_CHECK(pipeline != nullptr);
}

namespace {

/// Per-job decision under the fleet's objective/source.
Result<CutResult> DecideOne(const PhoebePipeline& pipeline, const FleetConfig& config,
                            const workload::JobInstance& job,
                            const telemetry::HistoricStats& stats) {
  PHOEBE_ASSIGN_OR_RETURN(StageCosts costs,
                          pipeline.BuildCosts(job, config.source, stats));
  if (config.objective == Objective::kTempStorage) {
    return OptimizeTempStorage(job.graph, costs);
  }
  return OptimizeRecovery(job.graph, costs, pipeline.delta());
}

}  // namespace

Status FleetDriver::Calibrate(const std::vector<workload::JobInstance>& history_jobs,
                              const telemetry::HistoricStats& history_stats) {
  calibration_.clear();
  for (const auto& job : history_jobs) {
    if (job.graph.num_stages() < 2) continue;
    PHOEBE_ASSIGN_OR_RETURN(CutResult cut,
                            DecideOne(*pipeline_, config_, job, history_stats));
    if (cut.cut.empty() || cut.global_bytes <= 0.0) continue;
    calibration_.push_back(KnapsackItem{cut.global_bytes, cut.objective});
  }
  if (calibration_.empty()) {
    return Status::FailedPrecondition("no checkpointable jobs in calibration history");
  }
  calibrated_ = true;
  return Status::OK();
}

Result<FleetDayReport> FleetDriver::RunDay(
    const std::vector<workload::JobInstance>& jobs,
    const telemetry::HistoricStats& stats) {
  const bool budgeted = std::isfinite(config_.storage_budget_bytes);
  if (budgeted && !calibrated_) {
    return Status::FailedPrecondition("Calibrate must run before a budgeted RunDay");
  }

  // Admission policy for the day.
  std::unique_ptr<OnlineKnapsack> knapsack;
  if (budgeted) {
    double arrivals = config_.expected_arrivals > 0.0
                          ? config_.expected_arrivals
                          : static_cast<double>(calibration_.size());
    PHOEBE_ASSIGN_OR_RETURN(
        OnlineKnapsack k,
        OnlineKnapsack::Calibrate(config_.storage_budget_bytes, arrivals, calibration_));
    knapsack = std::make_unique<OnlineKnapsack>(std::move(k));
  }

  FleetDayReport report;
  report.outcomes.reserve(jobs.size());
  for (const auto& job : jobs) {
    FleetJobOutcome out;
    out.job_id = job.job_id;
    report.total_temp_byte_seconds += job.TempByteSeconds();
    if (job.graph.num_stages() >= 2) {
      ++report.jobs_considered;
      PHOEBE_ASSIGN_OR_RETURN(CutResult cut, DecideOne(*pipeline_, config_, job, stats));
      if (!cut.cut.empty()) {
        ++report.jobs_with_cut;
        out.cut = cut.cut;
        out.predicted_value = cut.objective;
        bool admit = !knapsack ||
                     knapsack->Offer(KnapsackItem{cut.global_bytes, cut.objective});
        if (admit) {
          out.admitted = true;
          out.global_bytes = cut.global_bytes;
          out.realized_value =
              RealizedTempSaving(job, cut.cut) * job.TempByteSeconds();
          ++report.jobs_admitted;
          report.storage_used_bytes += cut.global_bytes;
          report.realized_saving_byte_seconds += out.realized_value;
        }
      }
    }
    report.outcomes.push_back(std::move(out));
  }
  if (knapsack) report.knapsack_threshold = knapsack->threshold();
  return report;
}

}  // namespace phoebe::core
