// Job runtime simulator — Algorithm 1 of the paper.
//
// Given the execution graph and an estimated execution time per stage, the
// simulator assumes strict stage boundaries (a stage starts when all its
// upstream stages finish), walks stages in topological order, and produces
// estimated start/end times, from which TTL (time-to-live of each stage's
// output) and TFS (time from start) follow.
#pragma once

#include <vector>

#include "common/status.h"
#include "dag/job_graph.h"

namespace phoebe::core {

/// \brief Simulated schedule for one job.
struct SimulatedSchedule {
  std::vector<double> start;  ///< per stage
  std::vector<double> end;    ///< per stage
  double job_end = 0.0;

  /// TTL of stage u: job_end - end[u].
  double Ttl(dag::StageId u) const { return job_end - end[static_cast<size_t>(u)]; }
  /// TFS of stage u: start[u].
  double Tfs(dag::StageId u) const { return start[static_cast<size_t>(u)]; }
};

/// Run Algorithm 1. `exec_seconds` holds the estimated execution time of each
/// stage (one entry per StageId). Fails on cyclic graphs or size mismatch.
Result<SimulatedSchedule> SimulateSchedule(const dag::JobGraph& graph,
                                           const std::vector<double>& exec_seconds);

/// Reusable working storage for SimulateScheduleInto (the topological-order
/// traversal buffers). Warm scratch = allocation-free simulation.
struct SimulatorScratch {
  dag::JobGraph::TopoScratch topo;
  std::vector<dag::StageId> order;
};

/// Same simulation, writing into a caller-owned schedule whose vectors are
/// reused across calls (hot decide path; see core/engine.h DecideScratch).
/// Bit-identical to SimulateSchedule.
Status SimulateScheduleInto(const dag::JobGraph& graph,
                            const std::vector<double>& exec_seconds,
                            SimulatorScratch* scratch, SimulatedSchedule* out);

}  // namespace phoebe::core
