// Decision explanation: render why Phoebe chose a cut, as human-readable
// text or machine-readable JSON (for dashboards / the Workload Insight
// Service UI the paper's Figure 3 screenshot comes from).
#pragma once

#include <string>

#include "core/checkpoint.h"
#include "workload/job_instance.h"

namespace phoebe::core {

/// JSON document describing the decision: job metadata, the sweep curve that
/// was searched (Figure 6), the chosen cut, and per-checkpoint-stage detail.
/// `costs` must be the StageCosts the optimizer saw (estimates, not truth).
Result<std::string> ExplainDecisionJson(const workload::JobInstance& job,
                                        const StageCosts& costs,
                                        const CutResult& decision);

/// Compact multi-line text rendering of the same content.
Result<std::string> ExplainDecisionText(const workload::JobInstance& job,
                                        const StageCosts& costs,
                                        const CutResult& decision);

}  // namespace phoebe::core
