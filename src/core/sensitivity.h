// Sensitivity analysis: how much cost-estimation error can the checkpoint
// optimizer absorb before its cuts degrade?
//
// This makes the paper's implicit claim measurable: stage-level models with
// R^2 ~ 0.85 are "good enough" because the TTL-threshold sweep only needs
// the relative ordering of stages and the rough byte weighting, not exact
// values (§6.1: "the absolute values for TTL are not as important as the
// relative scale").
#pragma once

#include "common/rng.h"
#include "core/checkpoint.h"
#include "workload/job_instance.h"

namespace phoebe::core {

/// \brief Multiplicative log-normal noise applied to each cost channel.
struct CostPerturbation {
  double exec_sigma = 0.0;    ///< on end_time/ttl/tfs via a re-simulated schedule?
                              ///< No: applied directly to ttl & schedule columns.
  double output_sigma = 0.0;  ///< on output_bytes
  double ttl_sigma = 0.0;     ///< on ttl (schedule columns follow consistently)
};

/// Return a copy of `costs` with per-stage multiplicative log-normal noise:
/// output_bytes *= LogNormal(0, output_sigma); ttl *= LogNormal(0,
/// ttl_sigma); end_time is recomputed as (max end) - ttl' so the end-time
/// ordering follows the perturbed TTLs; tfs *= LogNormal(0, exec_sigma).
StageCosts PerturbCosts(const StageCosts& costs, const CostPerturbation& p, Rng* rng);

/// \brief How a perturbed decision compares to the clean-cost decision.
struct SensitivityResult {
  double jaccard = 1.0;        ///< |A ∩ B| / |A ∪ B| of the before-cut sets
  double realized_clean = 0.0; ///< realized temp saving of the clean cut
  double realized_noisy = 0.0; ///< realized temp saving of the perturbed cut
  double regret = 0.0;         ///< realized_clean - realized_noisy (>= 0 usually)
};

/// Optimize under clean and perturbed costs and compare realized (truth)
/// temp savings for `job`.
Result<SensitivityResult> EvaluateCutSensitivity(const workload::JobInstance& job,
                                                 const StageCosts& clean_costs,
                                                 const CostPerturbation& p, Rng* rng);

}  // namespace phoebe::core
