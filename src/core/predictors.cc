#include "core/predictors.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace phoebe::core {

StageCostPredictor::StageCostPredictor(PredictorConfig config, Target target)
    : config_(std::move(config)), target_(target), featurizer_(config_.features) {}

std::unique_ptr<ml::Regressor> StageCostPredictor::MakeGeneral() const {
  if (config_.kind == ModelKind::kMlpGeneral) {
    return std::make_unique<ml::MlpRegressor>(config_.mlp);
  }
  return std::make_unique<ml::GbdtRegressor>(config_.gbdt);
}

Status StageCostPredictor::Train(const std::vector<workload::JobInstance>& jobs,
                                 const telemetry::HistoricStats& stats) {
  std::vector<TrainExample> examples;
  examples.reserve(jobs.size());
  for (const workload::JobInstance& job : jobs) examples.push_back({&job, &stats});
  return Train(examples);
}

Status StageCostPredictor::Train(const std::vector<TrainExample>& examples) {
  if (examples.empty()) return Status::InvalidArgument("no training jobs");

  // Assemble the dataset (one row per stage), each job featurized against
  // its own historic-stats view.
  ml::Dataset all;
  all.x = ml::FeatureMatrix(featurizer_.FeatureNames());
  std::map<int, std::vector<size_t>> rows_by_type;
  size_t row = 0;
  for (const TrainExample& ex : examples) {
    PHOEBE_CHECK(ex.job != nullptr && ex.stats != nullptr);
    const workload::JobInstance& job = *ex.job;
    for (size_t si = 0; si < job.graph.num_stages(); ++si, ++row) {
      all.x.AddRow(featurizer_.Features(job, static_cast<int>(si), *ex.stats));
      all.y.push_back(StageFeaturizer::CompressTarget(
          StageFeaturizer::TargetValue(job, static_cast<int>(si), target_)));
      rows_by_type[job.graph.stage(static_cast<dag::StageId>(si)).stage_type]
          .push_back(row);
    }
  }
  if (all.size() == 0) return Status::InvalidArgument("no training stages");

  // General model over all stages (always trained: fallback for rare types).
  general_ = MakeGeneral();
  PHOEBE_RETURN_NOT_OK(general_->Fit(all));

  auto calibrate = [&](const ml::Regressor& model,
                       const std::vector<size_t>* rows) -> double {
    double sum_true = 0.0, sum_pred = 0.0;
    auto fold = [&](size_t r) {
      sum_true += StageFeaturizer::ExpandTarget(all.y[r]);
      sum_pred += std::max(0.0, StageFeaturizer::ExpandTarget(model.Predict(all.x.Row(r))));
    };
    if (rows) {
      for (size_t r : *rows) fold(r);
    } else {
      for (size_t r = 0; r < all.size(); ++r) fold(r);
    }
    if (sum_pred <= 0.0) return 1.0;
    return std::clamp(sum_true / sum_pred, 0.5, 2.0);
  };
  general_calibration_ = calibrate(*general_, nullptr);

  per_type_.clear();
  calibration_.clear();
  if (config_.kind == ModelKind::kGbdtPerStageType) {
    for (const auto& [type, rows] : rows_by_type) {
      if (static_cast<int>(rows.size()) < config_.min_samples_per_type) continue;
      ml::Dataset sub = all.Subset(rows);
      ml::GbdtParams params = config_.gbdt;
      params.seed = config_.gbdt.seed + static_cast<uint64_t>(type) + 1;
      ml::GbdtRegressor model(params);
      PHOEBE_RETURN_NOT_OK(model.Fit(sub));
      calibration_[type] = calibrate(model, &rows);
      per_type_.emplace(type, std::move(model));
    }
  }
  trained_ = true;
  return Status::OK();
}

double StageCostPredictor::PredictStage(const workload::JobInstance& job, int stage_id,
                                        const telemetry::HistoricStats& stats) const {
  PHOEBE_CHECK_MSG(trained_, "PredictStage called before Train");
  std::vector<double> row = featurizer_.Features(job, stage_id, stats);
  int type = job.graph.stage(stage_id).stage_type;
  double y_log;
  double calibration;
  auto it = per_type_.find(type);
  if (it != per_type_.end()) {
    y_log = it->second.Predict(row);
    calibration = calibration_.at(type);
  } else {
    y_log = general_->Predict(row);
    calibration = general_calibration_;
  }
  return std::max(0.0, StageFeaturizer::ExpandTarget(y_log)) * calibration;
}

std::vector<double> StageCostPredictor::PredictJob(
    const workload::JobInstance& job, const telemetry::HistoricStats& stats) const {
  PredictScratch scratch;
  std::vector<double> out;
  PredictJobInto(job, stats, &scratch, &out);
  return out;
}

void StageCostPredictor::PredictJobInto(const workload::JobInstance& job,
                                        const telemetry::HistoricStats& stats,
                                        PredictScratch* scratch,
                                        std::vector<double>* out) const {
  PHOEBE_CHECK_MSG(trained_, "PredictJob called before Train");
  const size_t ns = job.graph.num_stages();
  if (!config_.batch_inference) {
    // Scalar reference path: one featurize + Predict per stage, exactly what
    // PredictStage computes.
    out->resize(ns);
    for (size_t si = 0; si < ns; ++si) {
      featurizer_.FeaturesInto(job, static_cast<int>(si), stats, &scratch->row);
      int type = job.graph.stage(static_cast<int>(si)).stage_type;
      auto it = per_type_.find(type);
      double y_log;
      double calibration;
      if (it != per_type_.end()) {
        y_log = it->second.Predict(scratch->row);
        calibration = calibration_.at(type);
      } else {
        y_log = general_->Predict(scratch->row);
        calibration = general_calibration_;
      }
      (*out)[si] = std::max(0.0, StageFeaturizer::ExpandTarget(y_log)) * calibration;
    }
    return;
  }

  featurizer_.JobMatrixInto(job, stats, &scratch->row, &scratch->matrix);
  out->assign(ns, 0.0);

  // Partition stages by serving model so each model sees one batch. The
  // per-type models are visited in ascending stage_type (map order), then the
  // general fallback — the same grouping and scatter order the per-job map
  // partition produced, but with one reused index buffer instead of a
  // std::map of vectors per call.
  scratch->served.assign(ns, 0);
  auto score = [&](const ml::Regressor& model, double cal) {
    model.PredictRowsInto(scratch->matrix, scratch->rows, &scratch->y_log);
    for (size_t k = 0; k < scratch->rows.size(); ++k) {
      (*out)[scratch->rows[k]] =
          std::max(0.0, StageFeaturizer::ExpandTarget(scratch->y_log[k])) * cal;
    }
  };
  for (const auto& [type, model] : per_type_) {
    scratch->rows.clear();
    for (size_t si = 0; si < ns; ++si) {
      if (job.graph.stage(static_cast<int>(si)).stage_type == type) {
        scratch->rows.push_back(si);
        scratch->served[si] = 1;
      }
    }
    if (scratch->rows.empty()) continue;
    score(model, calibration_.at(type));
  }
  scratch->rows.clear();
  for (size_t si = 0; si < ns; ++si) {
    if (!scratch->served[si]) scratch->rows.push_back(si);
  }
  if (!scratch->rows.empty()) score(*general_, general_calibration_);
}

namespace {

/// Collect lines [*i, ...) until a line equal to "end_model"; returns the
/// joined block and advances *i past the terminator.
Result<std::string> TakeModelBlock(const std::vector<std::string>& lines, size_t* i) {
  std::string block;
  while (*i < lines.size()) {
    if (lines[*i] == "end_model") {
      ++*i;
      return block;
    }
    block += lines[*i];
    block += '\n';
    ++*i;
  }
  return Status::InvalidArgument("unterminated model block");
}

}  // namespace

std::string StageCostPredictor::ToText() const {
  PHOEBE_CHECK_MSG(trained_, "ToText called before Train");
  std::string out = StrFormat(
      "stage_cost_predictor %d %d %zu %zu %.17g\n", static_cast<int>(target_),
      static_cast<int>(config_.kind), featurizer_.FeatureNames().size(),
      per_type_.size(), general_calibration_);
  out += "general_model\n";
  if (config_.kind == ModelKind::kMlpGeneral) {
    out += static_cast<const ml::MlpRegressor*>(general_.get())->ToText();
  } else {
    out += static_cast<const ml::GbdtRegressor*>(general_.get())->ToText();
  }
  out += "end_model\n";
  for (const auto& [type, model] : per_type_) {
    out += StrFormat("type %d %.17g\n", type, calibration_.at(type));
    out += model.ToText();
    out += "end_model\n";
  }
  return out;
}

Status StageCostPredictor::LoadFromText(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  size_t i = 0;
  while (i < lines.size() && lines[i].empty()) ++i;
  if (i >= lines.size()) return Status::InvalidArgument("empty predictor text");
  std::vector<std::string> hdr = Split(lines[i++], ' ');
  if (hdr.size() != 6 || hdr[0] != "stage_cost_predictor") {
    return Status::InvalidArgument("bad predictor header");
  }
  if (std::atoi(hdr[1].c_str()) != static_cast<int>(target_)) {
    return Status::FailedPrecondition("serialized target does not match");
  }
  if (std::atoi(hdr[2].c_str()) != static_cast<int>(config_.kind)) {
    return Status::FailedPrecondition("serialized model kind does not match");
  }
  if (static_cast<size_t>(std::atoll(hdr[3].c_str())) !=
      featurizer_.FeatureNames().size()) {
    return Status::FailedPrecondition("serialized feature width does not match");
  }
  size_t n_types = static_cast<size_t>(std::atoll(hdr[4].c_str()));
  double general_cal = std::atof(hdr[5].c_str());

  while (i < lines.size() && lines[i].empty()) ++i;
  if (i >= lines.size() || lines[i] != "general_model") {
    return Status::InvalidArgument("missing general_model block");
  }
  ++i;
  PHOEBE_ASSIGN_OR_RETURN(std::string general_block, TakeModelBlock(lines, &i));
  if (config_.kind == ModelKind::kMlpGeneral) {
    PHOEBE_ASSIGN_OR_RETURN(ml::MlpRegressor m, ml::MlpRegressor::FromText(general_block));
    general_ = std::make_unique<ml::MlpRegressor>(std::move(m));
  } else {
    PHOEBE_ASSIGN_OR_RETURN(ml::GbdtRegressor m,
                            ml::GbdtRegressor::FromText(general_block));
    general_ = std::make_unique<ml::GbdtRegressor>(std::move(m));
  }
  general_calibration_ = general_cal;

  per_type_.clear();
  calibration_.clear();
  for (size_t k = 0; k < n_types; ++k) {
    while (i < lines.size() && lines[i].empty()) ++i;
    if (i >= lines.size()) return Status::InvalidArgument("truncated type models");
    std::vector<std::string> th = Split(lines[i++], ' ');
    if (th.size() != 3 || th[0] != "type") {
      return Status::InvalidArgument("bad type model header");
    }
    int type = std::atoi(th[1].c_str());
    double cal = std::atof(th[2].c_str());
    PHOEBE_ASSIGN_OR_RETURN(std::string block, TakeModelBlock(lines, &i));
    PHOEBE_ASSIGN_OR_RETURN(ml::GbdtRegressor m, ml::GbdtRegressor::FromText(block));
    per_type_.emplace(type, std::move(m));
    calibration_[type] = cal;
  }
  trained_ = true;
  return Status::OK();
}

}  // namespace phoebe::core
