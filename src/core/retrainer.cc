#include "core/retrainer.h"

#include <algorithm>

#include "common/stats.h"
#include "common/strings.h"

namespace phoebe::core {

double EvaluateExecR2(const StageCostPredictor& exec,
                      const telemetry::WorkloadRepository& repo, int day) {
  auto stats = repo.StatsBefore(day);
  std::vector<double> y_true, y_pred;
  for (const workload::JobInstance& job : repo.Day(day)) {
    auto pred = exec.PredictJob(job, stats);
    for (size_t i = 0; i < job.graph.num_stages(); ++i) {
      y_true.push_back(job.truth[i].exec_seconds);
      y_pred.push_back(pred[i]);
    }
  }
  return RSquared(y_true, y_pred);
}

Status RetrainPolicy::Validate() const {
  if (min_exec_r2 < -1.0 || min_exec_r2 > 1.0) {
    return Status::InvalidArgument("min_exec_r2 must be in [-1, 1]");
  }
  if (max_age_days < 1) return Status::InvalidArgument("max_age_days must be >= 1");
  if (train_window_days < 1) {
    return Status::InvalidArgument("train_window_days must be >= 1");
  }
  if (min_history_days < 1) {
    return Status::InvalidArgument("min_history_days must be >= 1");
  }
  return Status::OK();
}

RetrainingDriver::RetrainingDriver(RetrainPolicy policy, PipelineConfig config)
    : policy_(policy), config_(std::move(config)) {
  policy_.Validate().Check();
  pipeline_ = std::make_unique<PhoebePipeline>(config_);
}

Status RetrainingDriver::Retrain(const telemetry::WorkloadRepository& repo, int day) {
  // Train on the most recent window ending at `day` (inclusive).
  int first = std::max(0, day - policy_.train_window_days + 1);
  auto fresh = std::make_unique<PhoebePipeline>(config_);
  PHOEBE_RETURN_NOT_OK(fresh->Train(repo, first, day - first + 1));
  pipeline_ = std::move(fresh);
  trained_on_day_ = day;
  return Status::OK();
}

Result<RetrainReport> RetrainingDriver::OnDayCompleted(
    const telemetry::WorkloadRepository& repo, int day) {
  if (day <= last_day_) {
    return Status::InvalidArgument(
        StrFormat("days must arrive in increasing order (%d after %d)", day, last_day_));
  }
  if (!repo.HasDay(day)) {
    return Status::NotFound(StrFormat("day %d not in repository", day));
  }
  last_day_ = day;

  RetrainReport report;
  report.day = day;
  report.model_age_days = trained_on_day_ < 0 ? -1 : day - trained_on_day_;

  if (!pipeline_->trained()) {
    // Bootstrap once enough completed days exist (including this one).
    if (day + 1 >= policy_.min_history_days) {
      PHOEBE_RETURN_NOT_OK(Retrain(repo, day));
      report.retrained = true;
      report.reason = "bootstrap";
    }
    history_.push_back(report);
    return report;
  }

  // Evaluate the deployed model on the freshly completed day.
  report.exec_r2 = EvaluateExecR2(pipeline_->exec_predictor(), repo, day);

  if (report.exec_r2 < policy_.min_exec_r2) {
    PHOEBE_RETURN_NOT_OK(Retrain(repo, day));
    report.retrained = true;
    report.reason = "accuracy";
  } else if (report.model_age_days >= policy_.max_age_days) {
    PHOEBE_RETURN_NOT_OK(Retrain(repo, day));
    report.retrained = true;
    report.reason = "age";
  }
  history_.push_back(report);
  return report;
}

}  // namespace phoebe::core
