#include "core/checkpoint_ip.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/strings.h"

namespace phoebe::core {

namespace {
constexpr double kByteScale = 1e-9;     // bytes -> GB
constexpr double kTimeScale = 1.0 / 3600.0;  // seconds -> hours
}  // namespace

Result<IpResult> SolveTempStorageIp(const dag::JobGraph& graph, const StageCosts& costs,
                                    const IpOptions& options) {
  PHOEBE_RETURN_NOT_OK(costs.Validate(graph));
  if (options.num_cuts < 1) return Status::InvalidArgument("num_cuts must be >= 1");
  const int ns = static_cast<int>(graph.num_stages());
  const int ne = static_cast<int>(graph.num_edges());
  const int nc = options.num_cuts;
  if (ns < 2) return Status::InvalidArgument("graph too small to cut");

  // Scaled model primitives. TTLs are priced net of the finalization slack,
  // matching the sweep/DP heuristics (see FinalClearSlack).
  const double slack = FinalClearSlack(costs);
  std::vector<double> o(static_cast<size_t>(ns)), t_u(static_cast<size_t>(ns));
  double max_ttl = 0.0;
  for (int u = 0; u < ns; ++u) {
    o[static_cast<size_t>(u)] = costs.output_bytes[static_cast<size_t>(u)] * kByteScale;
    t_u[static_cast<size_t>(u)] =
        std::max(0.0, costs.ttl[static_cast<size_t>(u)] - slack) * kTimeScale;
    max_ttl = std::max(max_ttl, t_u[static_cast<size_t>(u)]);
  }
  const double big_m = max_ttl + 1.0;

  solver::Model model;
  // Variable layout.
  auto z = [&](int c, int u) { return c * ns + u; };  // binaries, first block
  for (int c = 0; c < nc; ++c) {
    for (int u = 0; u < ns; ++u) {
      model.AddBinary(StrFormat("z_%d_%d", c, u));
    }
  }
  std::vector<int> g(static_cast<size_t>(ns));
  for (int u = 0; u < ns; ++u) {
    g[static_cast<size_t>(u)] = model.AddContinuous(0.0, 1.0, StrFormat("g_%d", u));
  }
  std::vector<std::vector<int>> d(static_cast<size_t>(nc),
                                  std::vector<int>(static_cast<size_t>(ne)));
  for (int c = 0; c < nc; ++c) {
    for (int e = 0; e < ne; ++e) {
      d[static_cast<size_t>(c)][static_cast<size_t>(e)] =
          model.AddContinuous(0.0, 1.0, StrFormat("d_%d_%d", c, e));
    }
  }
  std::vector<std::vector<int>> w(static_cast<size_t>(nc),
                                  std::vector<int>(static_cast<size_t>(ns)));
  std::vector<int> t_cut(static_cast<size_t>(nc));
  for (int c = 0; c < nc; ++c) {
    for (int u = 0; u < ns; ++u) {
      w[static_cast<size_t>(c)][static_cast<size_t>(u)] =
          model.AddContinuous(0.0, big_m, StrFormat("w_%d_%d", c, u));
    }
    t_cut[static_cast<size_t>(c)] =
        model.AddContinuous(0.0, big_m, StrFormat("t_%d", c));
  }

  using solver::LinearExpr;
  using solver::Sense;

  // (11): d_uv^c - z_u^c + z_v^c >= 0.
  for (int c = 0; c < nc; ++c) {
    for (int e = 0; e < ne; ++e) {
      const dag::Edge& edge = graph.edges()[static_cast<size_t>(e)];
      LinearExpr ex;
      ex.Add(d[static_cast<size_t>(c)][static_cast<size_t>(e)], 1.0);
      ex.Add(z(c, edge.from), -1.0);
      ex.Add(z(c, edge.to), 1.0);
      model.AddConstraint(std::move(ex), Sense::kGe, 0.0);
    }
  }
  // (9): g_u >= d_uv^c for edges leaving u.
  for (int c = 0; c < nc; ++c) {
    for (int e = 0; e < ne; ++e) {
      const dag::Edge& edge = graph.edges()[static_cast<size_t>(e)];
      LinearExpr ex;
      ex.Add(g[static_cast<size_t>(edge.from)], 1.0);
      ex.Add(d[static_cast<size_t>(c)][static_cast<size_t>(e)], -1.0);
      model.AddConstraint(std::move(ex), Sense::kGe, 0.0);
    }
  }
  // (12): sum_c d_uv^c <= 1.
  if (nc > 1) {
    for (int e = 0; e < ne; ++e) {
      LinearExpr ex;
      for (int c = 0; c < nc; ++c) {
        ex.Add(d[static_cast<size_t>(c)][static_cast<size_t>(e)], 1.0);
      }
      model.AddConstraint(std::move(ex), Sense::kLe, 1.0);
    }
  }
  // (10): z_u^{c-1} <= z_u^c.
  for (int c = 1; c < nc; ++c) {
    for (int u = 0; u < ns; ++u) {
      LinearExpr ex;
      ex.Add(z(c, u), 1.0);
      ex.Add(z(c - 1, u), -1.0);
      model.AddConstraint(std::move(ex), Sense::kGe, 0.0);
    }
  }
  // (24): w_u^c <= t^c + M (1 - dz_u^c), dz^c = z^c - z^{c-1} (z^{-1} = 0).
  // (25): w_u^c <= M dz_u^c.
  for (int c = 0; c < nc; ++c) {
    for (int u = 0; u < ns; ++u) {
      {
        LinearExpr ex;
        ex.Add(w[static_cast<size_t>(c)][static_cast<size_t>(u)], 1.0);
        ex.Add(t_cut[static_cast<size_t>(c)], -1.0);
        ex.Add(z(c, u), big_m);
        if (c > 0) ex.Add(z(c - 1, u), -big_m);
        model.AddConstraint(std::move(ex), Sense::kLe, big_m);
      }
      {
        LinearExpr ex;
        ex.Add(w[static_cast<size_t>(c)][static_cast<size_t>(u)], 1.0);
        ex.Add(z(c, u), -big_m);
        if (c > 0) ex.Add(z(c - 1, u), big_m);
        model.AddConstraint(std::move(ex), Sense::kLe, 0.0);
      }
      // (26): t^c <= t_u + M (1 - z_u^c).
      {
        LinearExpr ex;
        ex.Add(t_cut[static_cast<size_t>(c)], 1.0);
        ex.Add(z(c, u), big_m);
        model.AddConstraint(std::move(ex), Sense::kLe,
                            t_u[static_cast<size_t>(u)] + big_m);
      }
    }
  }

  // Objective: max sum_u o_u sum_c w_u^c - alpha sum_u o_u g_u.
  LinearExpr obj;
  for (int u = 0; u < ns; ++u) {
    for (int c = 0; c < nc; ++c) {
      obj.Add(w[static_cast<size_t>(c)][static_cast<size_t>(u)],
              o[static_cast<size_t>(u)]);
    }
    if (options.alpha > 0.0) {
      obj.Add(g[static_cast<size_t>(u)], -options.alpha * o[static_cast<size_t>(u)]);
    }
  }
  model.SetObjective(std::move(obj), /*maximize=*/true);

  PHOEBE_ASSIGN_OR_RETURN(solver::Solution sol, solver::SolveMilp(model, options.milp));

  IpResult result;
  result.nodes = sol.nodes;
  result.pivots = sol.pivots;
  result.optimal = sol.optimal;
  result.objective = sol.objective / (kByteScale * kTimeScale);

  // Extract nested cut sets (skip empty/duplicate/full ones).
  std::vector<cluster::CutSet> raw;
  for (int c = 0; c < nc; ++c) {
    cluster::CutSet cut;
    cut.before_cut.assign(static_cast<size_t>(ns), false);
    int count = 0;
    for (int u = 0; u < ns; ++u) {
      if (sol.values[static_cast<size_t>(z(c, u))] > 0.5) {
        cut.before_cut[static_cast<size_t>(u)] = true;
        ++count;
      }
    }
    if (count == 0 || count == ns) continue;
    if (!raw.empty() && raw.back().before_cut == cut.before_cut) continue;
    raw.push_back(std::move(cut));
  }

  // Global bytes: each persisting stage counted once across cuts.
  std::vector<bool> persisted(static_cast<size_t>(ns), false);
  for (const cluster::CutSet& cut : raw) {
    for (dag::StageId u : cluster::CheckpointStages(graph, cut)) {
      persisted[static_cast<size_t>(u)] = true;
    }
  }
  for (int u = 0; u < ns; ++u) {
    if (persisted[static_cast<size_t>(u)]) {
      result.global_bytes += costs.output_bytes[static_cast<size_t>(u)];
    }
  }
  for (cluster::CutSet& cut : raw) {
    CutResult r;
    r.global_bytes = EstimateGlobalBytes(graph, costs, cut);
    r.cut = std::move(cut);
    result.cuts.push_back(std::move(r));
  }
  if (!result.cuts.empty()) result.cuts.front().objective = result.objective;
  return result;
}

}  // namespace phoebe::core
