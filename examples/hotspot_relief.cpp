// Hotspot relief: the paper's first application (§5.2, §6.2).
//
// A pod of machines is running out of local SSD because of temp data. This
// example trains Phoebe on the pod's history, picks checkpoint cuts under a
// global-storage budget (online knapsack, §5.4), and replays the day on the
// cluster simulator to show the per-machine SSD pressure before and after.
//
//   $ ./build/examples/hotspot_relief
#include <algorithm>
#include <cstdio>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/fleet.h"
#include "core/pipeline.h"
#include "telemetry/repository.h"
#include "workload/generator.h"

using namespace phoebe;

int main() {
  // --- Workload history and training (5 days in, decide on day 5).
  workload::WorkloadConfig wcfg;
  wcfg.num_templates = 80;
  wcfg.seed = 23;
  workload::WorkloadGenerator gen(wcfg);
  telemetry::WorkloadRepository repo;
  for (int d = 0; d < 6; ++d) repo.AddDay(d, gen.GenerateDay(d)).Check();

  core::PhoebePipeline phoebe;
  phoebe.Train(repo, 0, 5).Check();
  auto stats = repo.StatsBefore(5);

  // Compress the day into a busy 6-hour window so the pod is saturated.
  std::vector<workload::JobInstance> jobs = repo.Day(5);
  for (auto& job : jobs) job.submit_time *= 6.0 * 3600.0 / 86400.0;
  std::printf("day 5: %zu jobs submitted to the pod\n", jobs.size());

  // --- The fleet driver handles the whole day: per-job cuts, then admission
  // under the global-storage budget (threshold calibrated on day 4).
  // First measure the unconstrained demand to size the budget.
  core::FleetDriver unbudgeted(&phoebe.engine(), core::FleetConfig{});
  auto open_report = unbudgeted.RunDay(jobs, stats);
  open_report.status().Check();

  core::FleetConfig fleet_cfg;
  fleet_cfg.storage_budget_bytes = 0.8 * open_report->storage_used_bytes;
  core::FleetDriver fleet(&phoebe.engine(), fleet_cfg);
  fleet.Calibrate(repo.Day(4), repo.StatsBefore(4)).Check();
  auto report = fleet.RunDay(jobs, stats);
  report.status().Check();
  std::printf("global-storage budget: %s (threshold pi* = %.3g s)\n",
              HumanBytes(fleet_cfg.storage_budget_bytes).c_str(),
              report->knapsack_threshold);
  std::printf("admitted %d of %d cuts (%s of storage used)\n\n",
              report->jobs_admitted, report->jobs_with_cut,
              HumanBytes(report->storage_used_bytes).c_str());
  std::vector<cluster::CutSet> cuts = report->AdmittedCuts();

  // --- Replay the pod with and without the checkpoints.
  cluster::ClusterConfig ccfg;
  ccfg.num_machines = 40;
  ccfg.skus[0].ssd_gb = 1100.0;
  ccfg.skus[1].ssd_gb = 800.0;
  ccfg.skus[2].ssd_gb = 1500.0;
  cluster::ClusterSimulator before_sim(ccfg), after_sim(ccfg);  // same placement
  auto before = before_sim.SimulateTempUsage(jobs);
  auto after = after_sim.SimulateTempUsage(jobs, &cuts);

  TablePrinter table({"metric", "before", "after", "change"});
  auto pct = [](double a, double b) {
    return a > 0 ? StrFormat("%+.1f%%", 100.0 * (b - a) / a) : std::string("-");
  };
  table.AddRow({"fleet temp byte-hours",
                StrFormat("%.1f TB*h", before.total_byte_seconds / 1e12 / 3600),
                StrFormat("%.1f TB*h", after.total_byte_seconds / 1e12 / 3600),
                pct(before.total_byte_seconds, after.total_byte_seconds)});
  table.AddRow({"fleet peak temp", HumanBytes(before.fleet_peak_bytes),
                HumanBytes(after.fleet_peak_bytes),
                pct(before.fleet_peak_bytes, after.fleet_peak_bytes)});
  for (size_t k = 0; k < ccfg.skus.size(); ++k) {
    table.AddRow({StrFormat("machines out of SSD (%s)", ccfg.skus[k].name.c_str()),
                  StrFormat("%.0f%%", 100 * before.FractionAbove(static_cast<int>(k), 1.0)),
                  StrFormat("%.0f%%", 100 * after.FractionAbove(static_cast<int>(k), 1.0)),
                  ""});
  }
  table.Print();
  std::printf("\n(paper: Phoebe frees >70%% of hotspot temp storage with ~1s of "
              "compile-time overhead per job)\n");
  return 0;
}
