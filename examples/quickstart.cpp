// Quickstart: generate a synthetic SCOPE-like workload, train Phoebe, and
// pick a checkpoint cut for a fresh job.
//
//   $ ./build/examples/quickstart
//
// Walks the full Figure-4 loop: telemetry accumulates in the workload
// repository -> the three predictors train -> a new job is scored, its
// schedule simulated, its TTL stacked, and the optimizer picks the cut.
#include <cstdio>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/evaluate.h"
#include "core/pipeline.h"
#include "telemetry/repository.h"
#include "workload/generator.h"

using namespace phoebe;

int main() {
  // --- 1. A recurring workload: 40 templates, 6 days of history.
  workload::WorkloadConfig wcfg;
  wcfg.num_templates = 40;
  wcfg.seed = 11;
  workload::WorkloadGenerator gen(wcfg);

  telemetry::WorkloadRepository repo;
  for (int day = 0; day < 6; ++day) {
    repo.AddDay(day, gen.GenerateDay(day)).Check();
  }
  std::printf("repository: %zu jobs, %zu stage records over %zu days\n",
              repo.TotalJobs(), repo.TotalStageRecords(), repo.Days().size());

  // --- 2. Train Phoebe on days 0-4 (day 5 stays unseen).
  core::PhoebePipeline phoebe;
  phoebe.Train(repo, /*first_day=*/0, /*num_days=*/5).Check();
  std::printf("trained: %zu exec-time models, %zu output-size models, "
              "%zu TTL stacking models\n",
              phoebe.exec_predictor().num_type_models(),
              phoebe.size_predictor().num_type_models(),
              phoebe.ttl_estimator().num_type_models());

  // --- 3. Prediction quality on the held-out day.
  const auto& test_jobs = repo.Day(5);
  std::vector<double> exec_true, exec_pred, out_true, out_pred, ttl_true, ttl_pred;
  for (const auto& job : test_jobs) {
    auto costs = phoebe.BuildCosts(job, core::CostSource::kMlStacked);
    costs.status().Check();
    for (size_t i = 0; i < job.graph.num_stages(); ++i) {
      exec_true.push_back(job.truth[i].exec_seconds);
      out_true.push_back(job.truth[i].output_bytes);
      ttl_true.push_back(job.truth[i].ttl);
      out_pred.push_back(costs->output_bytes[i]);
      ttl_pred.push_back(costs->ttl[i]);
    }
    auto exec = phoebe.exec_predictor().PredictJob(job, phoebe.inference_stats());
    exec_pred.insert(exec_pred.end(), exec.begin(), exec.end());
  }
  std::printf("held-out day: R2(exec time) = %.3f, R2(output size) = %.3f, "
              "R2(TTL) = %.3f, corr(TTL) = %.3f\n",
              RSquared(exec_true, exec_pred), RSquared(out_true, out_pred),
              RSquared(ttl_true, ttl_pred), PearsonCorrelation(ttl_true, ttl_pred));

  // --- 4. Checkpoint decision for one fresh job.
  const workload::JobInstance* big = nullptr;
  for (const auto& job : test_jobs) {
    if (!big || job.graph.num_stages() > big->graph.num_stages()) big = &job;
  }
  auto decision = phoebe.Decide(*big, core::Objective::kTempStorage);
  decision.status().Check();
  const auto& cut = decision->cut;
  std::printf("\njob '%s': %zu stages, runtime %s\n", big->job_name.c_str(),
              big->graph.num_stages(), HumanDuration(big->JobRuntime()).c_str());
  std::printf("  decision latency: lookup %.1f ms, scoring %.1f ms, optimize %.2f ms\n",
              1e3 * decision->lookup_seconds, 1e3 * decision->scoring_seconds,
              1e3 * decision->optimize_seconds);
  size_t before = 0;
  for (bool b : cut.cut.before_cut) before += b ? 1 : 0;
  std::printf("  cut: %zu stages before, global storage %s, realized temp saving %.1f%%\n",
              before, HumanBytes(cut.global_bytes).c_str(),
              100.0 * core::RealizedTempSaving(*big, cut.cut));
  std::printf("  checkpoint stages:");
  for (dag::StageId u : cluster::CheckpointStages(big->graph, cut.cut)) {
    std::printf(" %s", big->graph.stage(u).name.c_str());
  }
  std::printf("\n");
  return 0;
}
