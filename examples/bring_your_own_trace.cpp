// Bring your own trace: run Phoebe against externally supplied telemetry.
//
// Production users do not have this repo's workload generator — they have
// traces. This example writes a trace file (here produced by the generator,
// in practice exported from your engine's telemetry), then runs the whole
// lifecycle from the trace alone: parse -> repository -> train -> persist the
// models -> reload them in a fresh process-like pipeline -> decide.
//
//   $ ./build/examples/bring_your_own_trace [trace-file]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "core/evaluate.h"
#include "core/pipeline.h"
#include "telemetry/repository.h"
#include "workload/generator.h"
#include "workload/trace.h"

using namespace phoebe;

int main(int argc, char** argv) {
  std::string trace_path = argc > 1 ? argv[1] : "/tmp/phoebe_example.trace";

  // --- 1. Produce a trace file (stand-in for your engine's telemetry dump).
  if (!std::filesystem::exists(trace_path)) {
    workload::WorkloadConfig cfg;
    cfg.num_templates = 30;
    cfg.seed = 47;
    workload::WorkloadGenerator gen(cfg);
    std::vector<workload::JobInstance> jobs;
    for (int d = 0; d < 5; ++d) {
      auto day = gen.GenerateDay(d);
      jobs.insert(jobs.end(), day.begin(), day.end());
    }
    std::ofstream f(trace_path);
    f << workload::SerializeTrace(jobs);
    std::printf("wrote example trace: %s (%zu jobs)\n", trace_path.c_str(),
                jobs.size());
  }

  // --- 2. Parse the trace and load it into a repository by day.
  std::ifstream f(trace_path);
  std::ostringstream buf;
  buf << f.rdbuf();
  std::vector<workload::JobInstance> jobs;
  workload::ParseTrace(std::string_view(buf.str()), &jobs).Check();
  std::printf("parsed %zu jobs from %s\n", jobs.size(), trace_path.c_str());

  telemetry::WorkloadRepository repo;
  std::map<int, std::vector<workload::JobInstance>> by_day;
  for (auto& job : jobs) by_day[job.day].push_back(std::move(job));
  int last_day = -1;
  for (auto& [day, day_jobs] : by_day) {
    repo.AddDay(day, std::move(day_jobs)).Check();
    last_day = day;
  }

  // --- 3. Train on all but the last day; persist the models.
  core::PhoebePipeline phoebe;
  phoebe.Train(repo, 0, last_day).Check();
  const std::string model_dir = "/tmp/phoebe_example_models";
  phoebe.Save(model_dir).Check();
  std::printf("trained on days 0..%d and saved models to %s/\n", last_day - 1,
              model_dir.c_str());

  // --- 4. A "fresh deployment" loads the models and serves decisions.
  core::PhoebePipeline deployed;
  deployed.Load(model_dir).Check();
  const auto& serve_jobs = repo.Day(last_day);
  double saving = 0.0, total = 0.0;
  int checkpointed = 0;
  for (const auto& job : serve_jobs) {
    if (job.graph.num_stages() < 2) continue;
    auto decision = deployed.Decide(job, core::Objective::kTempStorage);
    decision.status().Check();
    total += job.TempByteSeconds();
    if (!decision->cut.cut.empty()) {
      ++checkpointed;
      saving += core::RealizedTempSaving(job, decision->cut.cut) *
                job.TempByteSeconds();
    }
  }
  std::printf("served day %d from the loaded models: %d/%zu jobs checkpointed, "
              "%.1f%% of temp byte-hours cleared early\n",
              last_day, checkpointed, serve_jobs.size(), 100.0 * saving / total);
  return 0;
}
