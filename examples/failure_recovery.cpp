// Fast restart of failed jobs: the paper's second application (§5.3, §6.3).
//
// For the long-running jobs of one day, Phoebe places a recovery checkpoint
// (OptCheck2: maximize P_F * T-bar). We then inject task failures with the
// cluster's MTBF model and compare the wasted work when restarting from
// scratch vs from the checkpoint — both analytically and with Monte-Carlo
// failure sampling.
//
//   $ ./build/examples/failure_recovery
#include <algorithm>
#include <cstdio>

#include "cluster/failure.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/evaluate.h"
#include "core/pipeline.h"
#include "telemetry/repository.h"
#include "workload/generator.h"

using namespace phoebe;

int main() {
  const double kMtbfSeconds = 150 * 3600.0;

  workload::WorkloadConfig wcfg;
  wcfg.num_templates = 80;
  wcfg.seed = 29;
  workload::WorkloadGenerator gen(wcfg);
  telemetry::WorkloadRepository repo;
  for (int d = 0; d < 6; ++d) repo.AddDay(d, gen.GenerateDay(d)).Check();

  core::PhoebePipeline phoebe;
  phoebe.Train(repo, 0, 5).Check();
  core::BackTester tester(&phoebe.engine(), kMtbfSeconds);
  auto stats = repo.StatsBefore(5);

  // Long-running jobs benefit most (Figure 2: failure rate grows with
  // runtime), so checkpoint the slowest quartile of the day.
  std::vector<const workload::JobInstance*> jobs;
  for (const auto& job : repo.Day(5)) {
    if (job.graph.num_stages() >= 4) jobs.push_back(&job);
  }
  std::sort(jobs.begin(), jobs.end(), [](const auto* a, const auto* b) {
    return a->JobRuntime() > b->JobRuntime();
  });
  jobs.resize(std::max<size_t>(1, jobs.size() / 4));
  std::printf("checkpointing the %zu longest jobs of day 5 (runtimes %s .. %s)\n\n",
              jobs.size(), HumanDuration(jobs.back()->JobRuntime()).c_str(),
              HumanDuration(jobs.front()->JobRuntime()).c_str());

  RunningStats analytic_saving, mc_saving, failure_prob;
  Rng rng(7);
  for (const auto* job : jobs) {
    auto cut = tester.ChooseCut(*job, core::Approach::kMlStacked,
                                core::Objective::kRecovery, stats);
    cut.status().Check();
    cluster::FailureModel fm(*job, kMtbfSeconds);
    failure_prob.Add(fm.JobFailureProb());
    analytic_saving.Add(fm.RestartSavingFraction(cut->cut));

    // Monte-Carlo: sample failures; on a failure in an after-cut stage at
    // time t, restarting from scratch wastes t, restarting from the
    // checkpoint wastes t - recovery_line.
    double line = fm.RecoveryLine(cut->cut);
    double clear = cluster::CutClearTime(*job, cut->cut);
    double wasted_scratch = 0.0, wasted_ckpt = 0.0;
    int failures = 0;
    for (int trial = 0; trial < 400; ++trial) {
      auto f = cluster::SampleFailure(*job, kMtbfSeconds, &rng);
      if (!f.failed) continue;
      ++failures;
      wasted_scratch += f.time;
      bool covered = !cut->cut.empty() &&
                     !cut->cut.before_cut[static_cast<size_t>(f.stage)] &&
                     f.time >= clear;
      wasted_ckpt += covered ? std::max(0.0, f.time - line) : f.time;
    }
    if (failures > 0 && wasted_scratch > 0) {
      mc_saving.Add(1.0 - wasted_ckpt / wasted_scratch);
    }
  }

  TablePrinter table({"metric", "value"});
  table.AddRow({"mean job failure probability",
                StrFormat("%.1f%%", 100 * failure_prob.mean())});
  table.AddRow({"restart-time saving, analytic (helped failures)",
                StrFormat("%.1f%%", 100 * analytic_saving.mean())});
  table.AddRow({"restart-time saving, Monte-Carlo (all failures)",
                StrFormat("%.1f%%", 100 * mc_saving.mean())});
  table.Print();
  std::printf("\n(paper: failed jobs restart 64-68%% faster on average with "
              "Phoebe's cuts; the Monte-Carlo number also charges failures the "
              "checkpoint cannot help)\n");
  return 0;
}
