// Splitting a huge job at its checkpoint (paper §6.5, second anecdote).
//
// Very large SCOPE jobs get bad plans because cardinality-estimate errors
// compound across thousands of operators. Phoebe's checkpoint gives a natural
// split point: the second half can be re-planned from *measured* statistics
// at the cut, collapsing the compounded error (the paper saw one production
// job drop from 30+ h to 20+ h). This example makes the mechanism visible:
// it compares downstream cost-estimate quality for the monolithic plan vs the
// split plan, and renders the split as Graphviz.
//
//   $ ./build/examples/job_splitting [--dot]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/evaluate.h"
#include "core/pipeline.h"
#include "dag/dot_export.h"
#include "telemetry/repository.h"
#include "workload/generator.h"

using namespace phoebe;

int main(int argc, char** argv) {
  bool want_dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  workload::WorkloadConfig wcfg;
  wcfg.num_templates = 60;
  wcfg.seed = 7;
  workload::WorkloadGenerator gen(wcfg);
  telemetry::WorkloadRepository repo;
  for (int d = 0; d < 6; ++d) repo.AddDay(d, gen.GenerateDay(d)).Check();
  core::PhoebePipeline phoebe;
  phoebe.Train(repo, 0, 5).Check();
  core::BackTester tester(&phoebe.engine(), 12 * 3600.0);
  auto stats = repo.StatsBefore(5);

  // The biggest job of the day is the splitting candidate.
  const workload::JobInstance* big = nullptr;
  for (const auto& job : repo.Day(5)) {
    if (!big || job.graph.num_stages() > big->graph.num_stages()) big = &job;
  }
  auto cut = tester.ChooseCut(*big, core::Approach::kMlStacked,
                              core::Objective::kTempStorage, stats);
  cut.status().Check();

  if (want_dot) {
    dag::DotOptions opt;
    opt.before_cut = cut->cut.before_cut;
    std::fputs(dag::ToDot(big->graph, opt).c_str(), stdout);
    return 0;
  }

  size_t before = 0;
  for (bool b : cut->cut.before_cut) before += b ? 1 : 0;
  std::printf("job '%s': %zu stages; split %zu / %zu at the checkpoint\n",
              big->job_name.c_str(), big->graph.num_stages(), before,
              big->graph.num_stages() - before);

  // Downstream estimate quality: monolithic vs re-planned-at-the-cut. The
  // depth-compounded error component disappears when the optimizer re-plans
  // from measured statistics at the boundary (depth restarts at the cut).
  const auto& tmpl = gen.templates()[static_cast<size_t>(big->template_id)];
  const auto& cfg = gen.config();
  std::vector<double> q_mono, q_split;
  for (size_t u = 0; u < big->graph.num_stages(); ++u) {
    if (!cut->cut.empty() && cut->cut.before_cut[u]) continue;
    double truth = big->truth[u].exec_seconds;
    q_mono.push_back(QError(truth, big->est[u].est_exclusive_cost));
    double d = static_cast<double>(tmpl.depth[u] - 1);
    double sigma_full = std::sqrt(
        cfg.est_cost_noise_sigma * cfg.est_cost_noise_sigma +
        cfg.est_cost_depth_sigma * cfg.est_cost_depth_sigma * d * d);
    double log_err = std::log(big->est[u].est_exclusive_cost / truth);
    double rescaled = log_err * (cfg.est_cost_noise_sigma / sigma_full);
    q_split.push_back(QError(truth, truth * std::exp(rescaled)));
  }

  TablePrinter t({"plan", "downstream stages", "median QError", "p90 QError"});
  t.AddRow({"monolithic", StrFormat("%zu", q_mono.size()),
            StrFormat("%.2f", Median(q_mono)), StrFormat("%.2f", Quantile(q_mono, 0.9))});
  t.AddRow({"split at checkpoint", StrFormat("%zu", q_split.size()),
            StrFormat("%.2f", Median(q_split)),
            StrFormat("%.2f", Quantile(q_split, 0.9))});
  t.Print();
  std::printf("\nwith order-of-magnitude-accurate costs, the re-planned second "
              "half gets a near-optimal plan\n(paper: 30+ h -> 20+ h on one "
              "production job). Run with --dot for a Graphviz rendering.\n");
  return 0;
}
