#!/usr/bin/env bash
# End-to-end smoke test for phoebe_cli: drives the generate -> train ->
# decide -> backtest loop on a tiny workload and asserts exit codes and
# non-empty, recognizable output. Registered as the `cli_smoke_test` ctest.
#
# Usage: cli_smoke_test.sh /path/to/phoebe_cli
set -u

CLI="${1:?usage: cli_smoke_test.sh /path/to/phoebe_cli}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

expect_exit() {
  # expect_exit <want_code> <label> -- cmd args...
  local want="$1" label="$2"
  shift 3
  "$@" >"$WORKDIR/stdout" 2>"$WORKDIR/stderr"
  local got=$?
  if [ "$got" -ne "$want" ]; then
    fail "$label: exit code $got, wanted $want"
    sed 's/^/    /' "$WORKDIR/stderr" >&2
  fi
}

expect_stdout_contains() {
  local label="$1" needle="$2"
  if ! grep -q "$needle" "$WORKDIR/stdout"; then
    fail "$label: stdout does not contain '$needle'"
    head -5 "$WORKDIR/stdout" | sed 's/^/    /' >&2
  fi
}

expect_stdout_nonempty() {
  local label="$1"
  if [ ! -s "$WORKDIR/stdout" ]; then
    fail "$label: stdout is empty"
  fi
}

expect_stderr_contains() {
  local label="$1" needle="$2"
  if ! grep -q "$needle" "$WORKDIR/stderr"; then
    fail "$label: stderr does not contain '$needle'"
    head -5 "$WORKDIR/stderr" | sed 's/^/    /' >&2
  fi
}

SMALL=(--templates 12 --seed 3)

# Usage errors exit 2.
expect_exit 2 "no arguments" -- "$CLI"
expect_exit 2 "unknown subcommand" -- "$CLI" frobnicate

# Flag-parsing error paths: a typo must fail loudly (with a suggestion),
# never fall back to a default; bad typed values and bad enum values are
# usage errors too; --help succeeds and lists the registered flags.
expect_exit 2 "unknown flag" -- "$CLI" fleet "${SMALL[@]}" --tread 2
expect_stderr_contains "unknown flag" "did you mean '--threads'"
expect_exit 2 "bad int value" -- "$CLI" fleet "${SMALL[@]}" --threads abc
expect_stderr_contains "bad int value" "threads"
expect_exit 2 "missing value" -- "$CLI" fleet "${SMALL[@]}" --threads
expect_exit 2 "bad objective" -- "$CLI" fleet "${SMALL[@]}" --objective bogus
expect_stderr_contains "bad objective" "temp|recovery"
expect_exit 2 "positional argument" -- "$CLI" fleet "${SMALL[@]}" stray
expect_exit 0 "fleet --help" -- "$CLI" fleet --help
expect_stdout_contains "fleet --help" "flags:"
expect_stdout_contains "fleet --help" "metrics"

# generate: writes a non-empty CSV with the expected header.
expect_exit 0 "generate to file" -- \
  "$CLI" generate "${SMALL[@]}" --days 2 --out "$WORKDIR/trace.csv"
if [ ! -s "$WORKDIR/trace.csv" ]; then
  fail "generate: $WORKDIR/trace.csv is empty or missing"
fi
expect_exit 0 "generate to stdout" -- "$CLI" generate "${SMALL[@]}" --days 1
expect_stdout_nonempty "generate to stdout"

# inspect: per-stage table for one job.
expect_exit 0 "inspect" -- "$CLI" inspect "${SMALL[@]}" --day 0 --job 0
expect_stdout_contains "inspect" "stages"

# train: prints the model-quality table.
expect_exit 0 "train" -- "$CLI" train "${SMALL[@]}" --train-days 2
expect_stdout_contains "train" "R^2"
expect_stdout_contains "train" "exec time"

# decide: chooses a cut for one held-out job.
expect_exit 0 "decide" -- "$CLI" decide "${SMALL[@]}" --train-days 2 --job 0
expect_stdout_contains "decide" "job"
expect_exit 1 "decide out-of-range job" -- \
  "$CLI" decide "${SMALL[@]}" --train-days 2 --job 99999

# backtest: approach comparison table must include the oracle row.
expect_exit 0 "backtest" -- "$CLI" backtest "${SMALL[@]}" --train-days 2
expect_stdout_contains "backtest" "Optimal"
expect_stdout_contains "backtest" "Mid-Point"

# fleet: day-level driver; --threads 2 must produce the same report text as
# the serial run (the byte-identical contract, observed end to end).
expect_exit 0 "fleet serial" -- "$CLI" fleet "${SMALL[@]}" --train-days 2
expect_stdout_contains "fleet serial" "jobs admitted"
cp "$WORKDIR/stdout" "$WORKDIR/fleet_serial.out"
expect_exit 0 "fleet threaded" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --threads 2
if ! diff -q "$WORKDIR/fleet_serial.out" <(sed 's/2 threads/1 threads/' "$WORKDIR/stdout") >/dev/null; then
  fail "fleet: threaded report differs from serial report"
fi
expect_exit 0 "fleet multi-cut budgeted" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --num-cuts 2 --budget-gb 50 --threads 2
expect_stdout_contains "fleet multi-cut budgeted" "knapsack threshold"

# fleet inference knobs: --no-batch (scalar scoring) must reproduce the
# batched report exactly, and an exact-mode template cache (--cache-bps 0)
# must be byte-neutral while reporting its hit/miss traffic.
expect_exit 0 "fleet no-batch" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --no-batch
if ! diff -q "$WORKDIR/fleet_serial.out" "$WORKDIR/stdout" >/dev/null; then
  fail "fleet: --no-batch report differs from batched report"
fi
expect_exit 0 "fleet template-cache" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --template-cache 1024 --cache-bps 0
expect_stdout_contains "fleet template-cache" "cache hits/misses"
# The extra cache row re-pads the table, so compare with collapsed whitespace
# and the cache/separator rows dropped.
normalize_fleet() { grep -v -e "^cache " -e "^--" "$1" | tr -s ' '; }
if ! diff -q <(normalize_fleet "$WORKDIR/fleet_serial.out") \
             <(normalize_fleet "$WORKDIR/stdout") >/dev/null; then
  fail "fleet: exact-mode cached report differs from uncached report"
fi

# bundle round trip: train --out writes a loadable artifact, bundle-info
# reads it, and fleet --bundle must reproduce the in-process fleet report
# byte-for-byte (save -> load -> decide is bit-identical).
expect_exit 0 "train --out bundle" -- \
  "$CLI" train "${SMALL[@]}" --train-days 2 --out "$WORKDIR/model.phoebe"
if [ ! -s "$WORKDIR/model.phoebe" ]; then
  fail "train --out: $WORKDIR/model.phoebe is empty or missing"
fi
expect_exit 0 "bundle-info" -- "$CLI" bundle-info --in "$WORKDIR/model.phoebe"
expect_stdout_contains "bundle-info" "checksum"
expect_exit 1 "bundle-info on corrupt file" -- \
  "$CLI" bundle-info --in "$WORKDIR/trace.csv"
expect_exit 0 "fleet from bundle" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --bundle "$WORKDIR/model.phoebe"
if ! diff -q "$WORKDIR/fleet_serial.out" "$WORKDIR/stdout" >/dev/null; then
  fail "fleet: --bundle report differs from in-process report"
fi

# shard/merge: two shard processes over the same bundle, merged, must produce
# the same per-day JSON report as the unsharded run.
expect_exit 0 "fleet unsharded report" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --report "$WORKDIR/report_unsharded.jsonl"
expect_exit 0 "fleet shard 0/2" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --shard 0/2 --out "$WORKDIR/shard0.blob"
expect_exit 0 "fleet shard 1/2" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --shard 1/2 --out "$WORKDIR/shard1.blob"
expect_exit 0 "fleet merge" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" \
  --merge "$WORKDIR/shard0.blob,$WORKDIR/shard1.blob" \
  --report "$WORKDIR/report_merged.jsonl"
if ! diff -q "$WORKDIR/report_unsharded.jsonl" "$WORKDIR/report_merged.jsonl" >/dev/null; then
  fail "fleet: merged shard report differs from unsharded report"
fi

# telemetry export: --metrics writes per-day lines plus a cumulative 'run'
# line, and must be byte-neutral — the JSON report with telemetry on is
# identical to the report without it.
expect_exit 0 "fleet with metrics" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --days 2 --threads 2 \
  --bundle "$WORKDIR/model.phoebe" --report "$WORKDIR/report_metrics.jsonl" \
  --metrics "$WORKDIR/telemetry.jsonl"
if ! diff -q "$WORKDIR/report_unsharded.jsonl" "$WORKDIR/report_metrics.jsonl" >/dev/null; then
  fail "fleet: report with --metrics differs from report without"
fi
if [ "$(wc -l < "$WORKDIR/telemetry.jsonl")" -ne 3 ]; then
  fail "fleet --metrics: expected 2 day lines + 1 run line"
fi
if ! grep -q '"scope":"run"' "$WORKDIR/telemetry.jsonl"; then
  fail "fleet --metrics: missing cumulative run line"
fi
if ! grep -q 'fleet.phase.decide.seconds' "$WORKDIR/telemetry.jsonl"; then
  fail "fleet --metrics: missing decide phase histogram"
fi

# fleet-ab error paths: a single arm is not a comparison; a bad --arm key or
# value must fail loudly.
expect_exit 2 "fleet-ab single arm" -- \
  "$CLI" fleet-ab "${SMALL[@]}" --train-days 2 --bundle "$WORKDIR/model.phoebe"
expect_stderr_contains "fleet-ab single arm" ">= 2 arms"
expect_exit 2 "fleet-ab bad arm key" -- \
  "$CLI" fleet-ab "${SMALL[@]}" --train-days 2 --arm bogus=1
expect_stderr_contains "fleet-ab bad arm key" "name|source|cuts|cache|bps"
expect_exit 2 "fleet-ab bad arm source" -- \
  "$CLI" fleet-ab "${SMALL[@]}" --train-days 2 --arm source=nonsense

# fleet-ab zero diff: two arms serving the same bundle must report zero
# decision and admission flips.
expect_exit 0 "fleet-ab identical bundles" -- \
  "$CLI" fleet-ab "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --bundle "$WORKDIR/model.phoebe" \
  --report "$WORKDIR/ab_same.txt"
if grep "^delta" "$WORKDIR/ab_same.txt" | grep -qv "decision_flips 0 admission_flips 0"; then
  fail "fleet-ab: identical bundles reported a non-zero diff"
fi

# fleet-ab arm-0 identity: the baseline arm's per-day JSON report must be
# byte-identical to the standalone `fleet --report` run under the same
# bundle and config (report_unsharded.jsonl from above).
expect_exit 0 "fleet-ab arm reports" -- \
  "$CLI" fleet-ab "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --arm name=twocut,cuts=2 \
  --arm-reports "$WORKDIR/ab_arm" --report "$WORKDIR/ab_paired.txt"
if ! diff -q "$WORKDIR/report_unsharded.jsonl" "$WORKDIR/ab_arm0.jsonl" >/dev/null; then
  fail "fleet-ab: arm-0 report differs from the standalone fleet report"
fi
if [ ! -s "$WORKDIR/ab_arm1.jsonl" ]; then
  fail "fleet-ab: arm-1 report file is empty or missing"
fi
if ! head -1 "$WORKDIR/ab_paired.txt" | grep -q "phoebe_ab_report 1"; then
  fail "fleet-ab: paired report is missing its header"
fi

# fleet-ab determinism: a threaded re-run must reproduce the paired report
# byte for byte.
expect_exit 0 "fleet-ab threaded" -- \
  "$CLI" fleet-ab "${SMALL[@]}" --train-days 2 --days 2 --threads 2 \
  --bundle "$WORKDIR/model.phoebe" --arm name=twocut,cuts=2 \
  --report "$WORKDIR/ab_paired_t2.txt"
if ! diff -q "$WORKDIR/ab_paired.txt" "$WORKDIR/ab_paired_t2.txt" >/dev/null; then
  fail "fleet-ab: threaded paired report differs from serial"
fi

# fleet-ab shard/merge: per-arm decide phases ship in v3 blobs (regular day
# records for arm 0, `arm` sections for the rest); the merge must reproduce
# the unsharded paired report byte for byte.
expect_exit 0 "fleet-ab shard 0/2" -- \
  "$CLI" fleet-ab "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --arm name=twocut,cuts=2 \
  --shard 0/2 --out "$WORKDIR/ab_shard0.blob"
expect_exit 0 "fleet-ab shard 1/2" -- \
  "$CLI" fleet-ab "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --arm name=twocut,cuts=2 \
  --shard 1/2 --out "$WORKDIR/ab_shard1.blob"
if ! head -1 "$WORKDIR/ab_shard0.blob" | grep -q "phoebe_shard 3"; then
  fail "fleet-ab: shard blob with per-arm sections is not version 3"
fi
expect_exit 0 "fleet-ab merge" -- \
  "$CLI" fleet-ab "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --arm name=twocut,cuts=2 \
  --merge "$WORKDIR/ab_shard0.blob,$WORKDIR/ab_shard1.blob" \
  --report "$WORKDIR/ab_paired_merged.txt"
if ! diff -q "$WORKDIR/ab_paired.txt" "$WORKDIR/ab_paired_merged.txt" >/dev/null; then
  fail "fleet-ab: merged paired report differs from unsharded"
fi

# scenario layer: --scenario baseline is the identity (byte-identical to the
# default run), a hostile preset runs end to end, and a bad value fails
# loudly listing the presets.
expect_exit 0 "fleet scenario baseline" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --scenario baseline \
  --report "$WORKDIR/report_scenario_baseline.jsonl"
if ! diff -q "$WORKDIR/report_unsharded.jsonl" \
             "$WORKDIR/report_scenario_baseline.jsonl" >/dev/null; then
  fail "fleet: --scenario baseline report differs from the default run"
fi
expect_exit 0 "fleet scenario flash-crowd" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --scenario flash-crowd
expect_stdout_contains "fleet scenario flash-crowd" "jobs admitted"
expect_exit 2 "fleet bad scenario" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --scenario nosuch
expect_stderr_contains "fleet bad scenario" "neither a preset"
expect_stderr_contains "fleet bad scenario" "flash-crowd"

# a scenario file: the round-tripping text format is a first-class input.
cat > "$WORKDIR/custom.scenario" <<'EOF'
phoebe_scenario 1
name smoke-burst
event burst step 3 3 5
end_scenario
EOF
expect_exit 0 "fleet scenario file" -- \
  "$CLI" fleet "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --scenario "$WORKDIR/custom.scenario"
expect_stdout_contains "fleet scenario file" "jobs admitted"

# fleet-ab scenario arms: an arm can decide a differently-generated workload
# for the same day index (saving/cost deltas; flip diffs need a shared
# workload). An empty or unknown per-arm scenario fails loudly.
expect_exit 0 "fleet-ab scenario arm" -- \
  "$CLI" fleet-ab "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --arm name=crowd,scenario=flash-crowd \
  --report "$WORKDIR/ab_scenario.txt"
if ! grep -q "^arm 1 crowd" "$WORKDIR/ab_scenario.txt"; then
  fail "fleet-ab: scenario arm missing from the paired report"
fi
expect_exit 2 "fleet-ab empty arm scenario" -- \
  "$CLI" fleet-ab "${SMALL[@]}" --train-days 2 --arm name=x,scenario=
expect_stderr_contains "fleet-ab empty arm scenario" "needs a value"
expect_exit 2 "fleet-ab bad arm scenario" -- \
  "$CLI" fleet-ab "${SMALL[@]}" --train-days 2 --days 2 \
  --bundle "$WORKDIR/model.phoebe" --arm name=x,scenario=nosuch
expect_stderr_contains "fleet-ab bad arm scenario" "neither a preset"

# trace round trip through the CLI surface.
expect_exit 0 "trace-export" -- \
  "$CLI" trace-export "${SMALL[@]}" --days 1 --out "$WORKDIR/trace.txt"
expect_exit 0 "trace-info" -- "$CLI" trace-info --in "$WORKDIR/trace.txt"
expect_stdout_contains "trace-info" "jobs"
expect_exit 2 "trace-info without --in" -- "$CLI" trace-info

# serve error paths first: they must fail fast, before any socket exists.
expect_exit 2 "serve without --bundle" -- "$CLI" serve
expect_stderr_contains "serve without --bundle" "requires --bundle"
expect_exit 2 "serve bad port" -- \
  "$CLI" serve --bundle "$WORKDIR/model.phoebe" --port notaport
expect_exit 1 "serve corrupt bundle" -- "$CLI" serve --bundle "$WORKDIR/trace.csv"
expect_stderr_contains "serve corrupt bundle" "cannot serve '$WORKDIR/trace.csv'"
expect_exit 2 "serve-client without --port" -- "$CLI" serve-client --op ping

# serve round trip: start the daemon on an ephemeral port (found via
# --port-file), then ping / decide / reload / decide / shutdown. A reload of
# the same artifact must not change a byte of the decide output, and the
# daemon must exit 0 with a telemetry line counting the requests.
"$CLI" serve --bundle "$WORKDIR/model.phoebe" --port-file "$WORKDIR/port.txt" \
  --max-seconds 120 --metrics "$WORKDIR/serve_telemetry.jsonl" \
  2>"$WORKDIR/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$WORKDIR/port.txt" ] && break
  sleep 0.1
done
if [ ! -s "$WORKDIR/port.txt" ]; then
  fail "serve: daemon never wrote its port file"
  sed 's/^/    /' "$WORKDIR/serve.log" >&2
  kill "$SERVE_PID" 2>/dev/null
else
  PORT="$(cat "$WORKDIR/port.txt")"
  expect_exit 0 "serve-client ping" -- "$CLI" serve-client --port "$PORT" --op ping
  expect_stdout_contains "serve-client ping" "pong"
  expect_exit 0 "serve-client decide" -- \
    "$CLI" serve-client --port "$PORT" --op decide "${SMALL[@]}" --day 2 --job 0
  expect_stdout_contains "serve-client decide" "decision"
  expect_stdout_contains "serve-client decide" "job 0"
  cp "$WORKDIR/stdout" "$WORKDIR/decide_before.out"
  expect_exit 0 "serve-client reload" -- \
    "$CLI" serve-client --port "$PORT" --op reload
  expect_stdout_contains "serve-client reload" "reloaded"
  expect_exit 0 "serve-client decide after reload" -- \
    "$CLI" serve-client --port "$PORT" --op decide "${SMALL[@]}" --day 2 --job 0
  if ! diff -q "$WORKDIR/decide_before.out" "$WORKDIR/stdout" >/dev/null; then
    fail "serve: decide bytes changed across a reload of the same bundle"
  fi
  expect_exit 0 "serve-client shutdown" -- \
    "$CLI" serve-client --port "$PORT" --op shutdown
  expect_stdout_contains "serve-client shutdown" "bye"
  if ! wait "$SERVE_PID"; then
    fail "serve: daemon exited non-zero after shutdown"
    sed 's/^/    /' "$WORKDIR/serve.log" >&2
  fi
  if ! grep -q "listening on 127.0.0.1" "$WORKDIR/serve.log"; then
    fail "serve: daemon log is missing the listen banner"
  fi
  if ! grep -q "stopped after 1 reload" "$WORKDIR/serve.log"; then
    fail "serve: daemon log did not count exactly one reload"
  fi
  if ! grep -q "serve.requests" "$WORKDIR/serve_telemetry.jsonl"; then
    fail "serve --metrics: telemetry line is missing serve.requests"
  fi
fi

# lifecycle error paths: missing --out-dir and invalid policy knobs are
# usage errors (exit 2) that fail fast before any work runs.
expect_exit 2 "lifecycle without --out-dir" -- "$CLI" lifecycle "${SMALL[@]}" --days 2
expect_stderr_contains "lifecycle without --out-dir" "requires --out-dir"
expect_exit 2 "lifecycle bad policy flag" -- \
  "$CLI" lifecycle "${SMALL[@]}" --out-dir "$WORKDIR/lc_bad" --policy-train-window 0
expect_stderr_contains "lifecycle bad policy flag" "train_window_days"
expect_exit 2 "lifecycle shallow retention" -- \
  "$CLI" lifecycle "${SMALL[@]}" --out-dir "$WORKDIR/lc_bad" --retention-days 1
expect_stderr_contains "lifecycle shallow retention" "retention_days"
expect_exit 2 "lifecycle bad objective" -- \
  "$CLI" lifecycle "${SMALL[@]}" --out-dir "$WORKDIR/lc_bad" --objective bogus
expect_exit 0 "lifecycle --help" -- "$CLI" lifecycle --help
expect_stdout_contains "lifecycle --help" "policy-min-r2"
expect_stdout_contains "lifecycle --help" "shadow"

# lifecycle happy path: the continuous-operation loop bootstraps, retrains on
# age, and leaves the full artifact set; the promotion log records the
# bootstrap promotion; telemetry exports lifecycle.* series.
LC_RUN=(lifecycle "${SMALL[@]}" --days 4 --policy-max-age 2 --policy-min-history 2 \
  --policy-train-window 3 --backtest-window 2 --shadow)
expect_exit 0 "lifecycle run" -- \
  "$CLI" "${LC_RUN[@]}" --out-dir "$WORKDIR/lc1" --metrics "$WORKDIR/lc_telemetry.jsonl"
expect_stdout_contains "lifecycle run" "retrain (bootstrap)"
expect_stdout_contains "lifecycle run" "promoted"
for f in promotion.log day_reports.jsonl current.phoebe; do
  if [ ! -s "$WORKDIR/lc1/$f" ]; then
    fail "lifecycle: $WORKDIR/lc1/$f is empty or missing"
  fi
done
if ! head -1 "$WORKDIR/lc1/promotion.log" | grep -q "phoebe_promotion_log 1"; then
  fail "lifecycle: promotion.log is missing its header"
fi
if ! grep -q "reason bootstrap verdict promoted" "$WORKDIR/lc1/promotion.log"; then
  fail "lifecycle: promotion.log is missing the bootstrap record"
fi
if [ "$(wc -l < "$WORKDIR/lc1/day_reports.jsonl")" -ne 4 ]; then
  fail "lifecycle: expected one day-report line per day"
fi
if ! grep -q "lifecycle.days" "$WORKDIR/lc_telemetry.jsonl"; then
  fail "lifecycle --metrics: telemetry is missing lifecycle.days"
fi
if ! grep -q '"scope":"run"' "$WORKDIR/lc_telemetry.jsonl"; then
  fail "lifecycle --metrics: missing cumulative run line"
fi

# Candidate-architecture canary: --candidate-pipeline small exercises the
# promotion path (the bootstrap always promotes), and crippled candidates —
# one near-zero-learning-rate stump per model — must lose every post-bootstrap
# canary, exercising the rejection path; a bad preset is a usage error.
expect_exit 2 "lifecycle bad candidate-pipeline" -- \
  "$CLI" lifecycle "${SMALL[@]}" --out-dir "$WORKDIR/lc_bad" --candidate-pipeline huge
expect_stderr_contains "lifecycle bad candidate-pipeline" "default|small|crippled"
expect_exit 0 "lifecycle small candidate" -- \
  "$CLI" lifecycle "${SMALL[@]}" --days 4 --policy-max-age 2 --policy-min-history 2 \
  --policy-train-window 3 --backtest-window 2 --candidate-pipeline small \
  --out-dir "$WORKDIR/lc_small"
expect_stdout_contains "lifecycle small candidate" "retrain (bootstrap)"
expect_stdout_contains "lifecycle small candidate" "promoted"
expect_exit 0 "lifecycle crippled candidate" -- \
  "$CLI" lifecycle "${SMALL[@]}" --days 6 --policy-max-age 2 --policy-min-history 2 \
  --policy-train-window 3 --backtest-window 2 --candidate-pipeline crippled \
  --out-dir "$WORKDIR/lc_crippled"
expect_stdout_contains "lifecycle crippled candidate" "rejected"
if ! grep -q "verdict rejected" "$WORKDIR/lc_crippled/promotion.log"; then
  fail "lifecycle: crippled candidate's rejection is missing from promotion.log"
fi

# Determinism end to end: a threaded, exact-cached, metrics-off re-run must
# reproduce every artifact byte (bundles included — same checksums, same
# filenames, same serialized form).
expect_exit 0 "lifecycle rerun threaded+cached" -- \
  "$CLI" "${LC_RUN[@]}" --threads 2 --template-cache 64 --out-dir "$WORKDIR/lc2"
if ! diff -rq "$WORKDIR/lc1" "$WORKDIR/lc2" >/dev/null; then
  fail "lifecycle: threaded+cached artifacts differ from serial run"
  diff -rq "$WORKDIR/lc1" "$WORKDIR/lc2" | head -5 | sed 's/^/    /' >&2
fi

# serve picks up a lifecycle promotion: serve current.phoebe, overwrite it by
# running the loop on drifted data into the same out-dir, SIGHUP the daemon,
# and the next decide must answer from the new bundle (the raw payload embeds
# the answering bundle's checksum, so the bytes must change).
"$CLI" serve --bundle "$WORKDIR/lc1/current.phoebe" \
  --port-file "$WORKDIR/lc_port.txt" --max-seconds 120 \
  2>"$WORKDIR/lc_serve.log" &
LC_SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$WORKDIR/lc_port.txt" ] && break
  sleep 0.1
done
if [ ! -s "$WORKDIR/lc_port.txt" ]; then
  fail "lifecycle serve: daemon never wrote its port file"
  sed 's/^/    /' "$WORKDIR/lc_serve.log" >&2
  kill "$LC_SERVE_PID" 2>/dev/null
else
  LC_PORT="$(cat "$WORKDIR/lc_port.txt")"
  expect_exit 0 "lifecycle serve decide (old bundle)" -- \
    "$CLI" serve-client --port "$LC_PORT" --op decide "${SMALL[@]}" --day 0 --job 0
  cp "$WORKDIR/stdout" "$WORKDIR/lc_decide_old.out"
  # A different workload seed trains a different model, so the promoted
  # current.phoebe is guaranteed to carry a new checksum.
  expect_exit 0 "lifecycle promote onto served path" -- \
    "$CLI" lifecycle --templates 12 --seed 5 --days 4 --policy-max-age 2 \
    --policy-min-history 2 --policy-train-window 3 --backtest-window 2 \
    --out-dir "$WORKDIR/lc1"
  kill -HUP "$LC_SERVE_PID"
  RELOADED=0
  for _ in $(seq 1 100); do
    "$CLI" serve-client --port "$LC_PORT" --op decide "${SMALL[@]}" --day 0 --job 0 \
      >"$WORKDIR/lc_decide_new.out" 2>/dev/null
    if ! diff -q "$WORKDIR/lc_decide_old.out" "$WORKDIR/lc_decide_new.out" >/dev/null; then
      RELOADED=1
      break
    fi
    sleep 0.1
  done
  if [ "$RELOADED" -ne 1 ]; then
    fail "lifecycle serve: decide bytes never changed after SIGHUP on a promoted bundle"
  fi
  expect_exit 0 "lifecycle serve shutdown" -- \
    "$CLI" serve-client --port "$LC_PORT" --op shutdown
  if ! wait "$LC_SERVE_PID"; then
    fail "lifecycle serve: daemon exited non-zero after shutdown"
    sed 's/^/    /' "$WORKDIR/lc_serve.log" >&2
  fi
  if ! grep -q "stopped after 1 reload" "$WORKDIR/lc_serve.log"; then
    fail "lifecycle serve: daemon did not count exactly one reload"
  fi
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES smoke-test assertion(s) failed" >&2
  exit 1
fi
echo "cli smoke test passed"
