// phoebe_cli — operational command-line front end for the library.
//
// Subcommands:
//   generate   generate a synthetic workload and export per-stage telemetry CSV
//   inspect    print one job's execution graph, metrics, and schedule
//   train      train the pipeline and report held-out accuracy; --out saves
//              the trained state as a versioned PipelineBundle file
//   bundle-info  inspect a saved bundle (version, checksum, model config)
//   decide     make a checkpoint decision for one job and explain it
//   backtest   compare checkpoint-selection approaches on a held-out day
//   fleet      run the day-level fleet driver (parallel decisions + budget);
//              --bundle serves a saved artifact, --shard/--merge split the
//              run across processes with byte-identical merged reports
//
// Run with no arguments for usage. All commands are deterministic given
// --seed.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "cluster/cluster.h"
#include "dag/dot_export.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "core/bundle.h"
#include "core/evaluate.h"
#include "core/explain.h"
#include "core/fleet.h"
#include "core/fleet_shard.h"
#include "core/pipeline.h"
#include "dag/graph_metrics.h"
#include "telemetry/repository.h"
#include "workload/generator.h"
#include "workload/trace.h"

using namespace phoebe;

namespace {

struct Args {
  std::map<std::string, std::string> kv;

  static Args Parse(int argc, char** argv, int first) {
    Args a;
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
        std::exit(2);
      }
      std::string key = arg.substr(2);
      std::string value = "1";
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      a.kv[key] = value;
    }
    return a;
  }

  int Int(const std::string& key, int fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : std::atoi(it->second.c_str());
  }
  std::string Str(const std::string& key, const std::string& fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
};

workload::WorkloadGenerator MakeGen(const Args& args) {
  workload::WorkloadConfig cfg;
  cfg.num_templates = args.Int("templates", 60);
  cfg.seed = static_cast<uint64_t>(args.Int("seed", 7));
  return workload::WorkloadGenerator(cfg);
}

int CmdGenerate(const Args& args) {
  auto gen = MakeGen(args);
  int days = args.Int("days", 3);
  telemetry::WorkloadRepository repo;
  for (int d = 0; d < days; ++d) repo.AddDay(d, gen.GenerateDay(d)).Check();

  std::string out = args.Str("out", "");
  std::string csv = repo.ToCsv();
  if (out.empty()) {
    std::fputs(csv.c_str(), stdout);
  } else {
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", out.c_str());
      return 1;
    }
    f << csv;
    std::fprintf(stderr, "wrote %zu jobs / %zu stage records to %s\n",
                 repo.TotalJobs(), repo.TotalStageRecords(), out.c_str());
  }
  return 0;
}

int CmdInspect(const Args& args) {
  auto gen = MakeGen(args);
  int day = args.Int("day", 0);
  auto jobs = gen.GenerateDay(day);
  int index = args.Int("job", 0);
  if (index < 0 || static_cast<size_t>(index) >= jobs.size()) {
    std::fprintf(stderr, "day %d has %zu jobs; --job out of range\n", day,
                 jobs.size());
    return 1;
  }
  const workload::JobInstance& job = jobs[static_cast<size_t>(index)];

  std::printf("job %lld  template %d  name '%s'  input '%s'\n",
              static_cast<long long>(job.job_id), job.template_id,
              job.job_name.c_str(), job.norm_input_name.c_str());
  auto metrics = dag::ComputeMetrics(job.graph);
  metrics.status().Check();
  std::printf("stages %d  edges %d  tasks %d  critical path %d  components %d\n",
              metrics->num_stages, metrics->num_edges, metrics->num_tasks,
              metrics->critical_path, metrics->num_components);
  std::printf("runtime %s  temp data %s\n\n", HumanDuration(job.JobRuntime()).c_str(),
              HumanBytes(job.TotalTempBytes()).c_str());

  if (args.kv.count("graph")) {
    std::fputs(job.graph.ToText().c_str(), stdout);
    return 0;
  }

  TablePrinter t({"stage", "tasks", "input", "output", "exec s", "start", "ttl"});
  for (size_t i = 0; i < job.graph.num_stages(); ++i) {
    const auto& tr = job.truth[i];
    t.AddRow({job.graph.stage(static_cast<dag::StageId>(i)).name,
              StrFormat("%d", tr.num_tasks), HumanBytes(tr.input_bytes),
              HumanBytes(tr.output_bytes), StrFormat("%.1f", tr.exec_seconds),
              StrFormat("%.1f", tr.start_time), StrFormat("%.1f", tr.ttl)});
  }
  t.Print();
  return 0;
}

struct Trained {
  workload::WorkloadGenerator gen;
  telemetry::WorkloadRepository repo;
  core::PhoebePipeline phoebe;
  int train_days;
};

Trained TrainFromArgs(const Args& args) {
  Trained t{MakeGen(args), {}, core::PhoebePipeline(), args.Int("train-days", 5)};
  int test_days = std::max({1, args.Int("test-days", 1), args.Int("days", 1)});
  int total = t.train_days + test_days;
  for (int d = 0; d < total; ++d) t.repo.AddDay(d, t.gen.GenerateDay(d)).Check();
  // --bundle serves from a pre-trained artifact instead of training here —
  // the serve-side half of the train/serve split. Every process loading the
  // same file decides identically (the bundle checksum names the state).
  std::string bundle = args.Str("bundle", "");
  if (!bundle.empty()) {
    t.phoebe.LoadBundle(bundle).Check();
  } else {
    t.phoebe.Train(t.repo, 0, t.train_days).Check();
  }
  return t;
}

int CmdTrain(const Args& args) {
  Trained t = TrainFromArgs(args);
  const auto& jobs = t.repo.Day(t.train_days);
  auto stats = t.repo.StatsBefore(t.train_days);

  std::vector<double> et, ep, ot, op, tt, tp;
  for (const auto& job : jobs) {
    auto exec = t.phoebe.exec_predictor().PredictJob(job, stats);
    auto out = t.phoebe.size_predictor().PredictJob(job, stats);
    auto costs = t.phoebe.BuildCosts(job, core::CostSource::kMlStacked, stats);
    costs.status().Check();
    for (size_t i = 0; i < job.graph.num_stages(); ++i) {
      et.push_back(job.truth[i].exec_seconds);
      ep.push_back(exec[i]);
      ot.push_back(job.truth[i].output_bytes);
      op.push_back(out[i]);
      tt.push_back(job.truth[i].ttl);
      tp.push_back(costs->ttl[i]);
    }
  }
  std::printf("trained on days 0..%d (%zu jobs), evaluated on day %d\n",
              t.train_days - 1, t.repo.TotalJobs() - jobs.size(), t.train_days);
  TablePrinter tab({"target", "R^2", "corr"});
  tab.AddRow("exec time", {RSquared(et, ep), PearsonCorrelation(et, ep)});
  tab.AddRow("output size", {RSquared(ot, op), PearsonCorrelation(ot, op)});
  tab.AddRow("TTL (stacked)", {RSquared(tt, tp), PearsonCorrelation(tt, tp)});
  tab.Print();

  std::string out = args.Str("out", "");
  if (!out.empty()) {
    t.phoebe.SaveBundle(out).Check();
    std::fprintf(stderr, "wrote bundle (checksum %08x) to %s\n",
                 t.phoebe.bundle()->checksum(), out.c_str());
  }
  return 0;
}

int CmdBundleInfo(const Args& args) {
  std::string in = args.Str("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "bundle-info requires --in <file>\n");
    return 2;
  }
  auto bundle = core::PipelineBundle::LoadFromFile(in);
  if (!bundle.ok()) {
    std::fprintf(stderr, "load error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  const core::PipelineBundle& b = **bundle;
  std::printf("bundle %s\n", in.c_str());
  std::printf("format version %d  checksum %08x\n",
              core::PipelineBundle::kFormatVersion, b.checksum());
  const core::PipelineConfig& cfg = b.config();
  std::printf("exec predictor: kind %d, %d trees\n",
              static_cast<int>(cfg.exec_predictor.kind),
              cfg.exec_predictor.gbdt.num_trees);
  std::printf("size predictor: kind %d, %d trees\n",
              static_cast<int>(cfg.size_predictor.kind),
              cfg.size_predictor.gbdt.num_trees);
  std::printf("ttl stacker: %d trees\n", cfg.ttl.gbdt.num_trees);
  std::printf("delta %g  batch inference %s\n", cfg.delta,
              cfg.exec_predictor.batch_inference ? "on" : "off");
  std::printf("historic stats: %lld stage observations\n",
              static_cast<long long>(b.stats().total_observations()));
  return 0;
}

int CmdDecide(const Args& args) {
  Trained t = TrainFromArgs(args);
  const auto& jobs = t.repo.Day(t.train_days);
  int index = args.Int("job", 0);
  if (index < 0 || static_cast<size_t>(index) >= jobs.size()) {
    std::fprintf(stderr, "day has %zu jobs; --job out of range\n", jobs.size());
    return 1;
  }
  const auto& job = jobs[static_cast<size_t>(index)];
  core::Objective objective = args.Str("objective", "temp") == "recovery"
                                  ? core::Objective::kRecovery
                                  : core::Objective::kTempStorage;
  auto decision = t.phoebe.Decide(job, objective);
  decision.status().Check();

  std::printf("job '%s' (%zu stages, runtime %s)\n", job.job_name.c_str(),
              job.graph.num_stages(), HumanDuration(job.JobRuntime()).c_str());
  std::printf("overhead: lookup %.2f ms, scoring %.2f ms, optimize %.3f ms\n",
              1e3 * decision->lookup_seconds, 1e3 * decision->scoring_seconds,
              1e3 * decision->optimize_seconds);
  if (decision->cut.cut.empty()) {
    std::printf("no profitable checkpoint for this job\n");
    return 0;
  }
  size_t before = 0;
  for (bool b : decision->cut.cut.before_cut) before += b ? 1 : 0;
  std::printf("cut: %zu of %zu stages before the cut; est. global storage %s\n",
              before, job.graph.num_stages(),
              HumanBytes(decision->cut.global_bytes).c_str());
  std::printf("checkpoint stages:\n");
  for (dag::StageId u : cluster::CheckpointStages(job.graph, decision->cut.cut)) {
    std::printf("  %-28s output %s\n", job.graph.stage(u).name.c_str(),
                HumanBytes(job.truth[static_cast<size_t>(u)].output_bytes).c_str());
  }
  std::printf("realized temp saving (ex-post): %.1f%%\n",
              100.0 * core::RealizedTempSaving(job, decision->cut.cut));
  return 0;
}

int CmdExplain(const Args& args) {
  Trained t = TrainFromArgs(args);
  const auto& jobs = t.repo.Day(t.train_days);
  int index = args.Int("job", 0);
  if (index < 0 || static_cast<size_t>(index) >= jobs.size()) {
    std::fprintf(stderr, "day has %zu jobs; --job out of range\n", jobs.size());
    return 1;
  }
  const auto& job = jobs[static_cast<size_t>(index)];
  auto costs = t.phoebe.BuildCosts(job, core::CostSource::kMlStacked);
  costs.status().Check();
  auto cut = core::OptimizeTempStorage(job.graph, *costs);
  cut.status().Check();
  if (args.kv.count("json")) {
    auto json = core::ExplainDecisionJson(job, *costs, *cut);
    json.status().Check();
    std::printf("%s\n", json->c_str());
  } else {
    auto text = core::ExplainDecisionText(job, *costs, *cut);
    text.status().Check();
    std::fputs(text->c_str(), stdout);
  }
  return 0;
}

int CmdDot(const Args& args) {
  Trained t = TrainFromArgs(args);
  const auto& jobs = t.repo.Day(t.train_days);
  int index = args.Int("job", 0);
  if (index < 0 || static_cast<size_t>(index) >= jobs.size()) {
    std::fprintf(stderr, "day has %zu jobs; --job out of range\n", jobs.size());
    return 1;
  }
  const auto& job = jobs[static_cast<size_t>(index)];
  auto decision = t.phoebe.Decide(job, core::Objective::kTempStorage);
  decision.status().Check();

  dag::DotOptions opt;
  opt.before_cut = decision->cut.cut.before_cut;
  opt.annotations.resize(job.graph.num_stages());
  for (size_t i = 0; i < job.graph.num_stages(); ++i) {
    opt.annotations[i] = HumanBytes(job.truth[i].output_bytes);
  }
  std::fputs(dag::ToDot(job.graph, opt).c_str(), stdout);
  return 0;
}

int CmdTraceExport(const Args& args) {
  auto gen = MakeGen(args);
  int days = args.Int("days", 1);
  std::vector<workload::JobInstance> jobs;
  for (int d = 0; d < days; ++d) {
    auto day_jobs = gen.GenerateDay(d);
    jobs.insert(jobs.end(), day_jobs.begin(), day_jobs.end());
  }
  std::string out = args.Str("out", "");
  std::string text = workload::SerializeTrace(jobs);
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", out.c_str());
      return 1;
    }
    f << text;
    std::fprintf(stderr, "wrote %zu jobs to %s\n", jobs.size(), out.c_str());
  }
  return 0;
}

int CmdTraceInfo(const Args& args) {
  std::string in = args.Str("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "trace-info requires --in <file>\n");
    return 2;
  }
  std::ifstream f(in);
  if (!f) {
    std::fprintf(stderr, "cannot open '%s'\n", in.c_str());
    return 1;
  }
  std::string text((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  auto jobs = workload::ParseTrace(text);
  if (!jobs.ok()) {
    std::fprintf(stderr, "parse error: %s\n", jobs.status().ToString().c_str());
    return 1;
  }
  RunningStats stages, runtime, temp;
  for (const auto& job : *jobs) {
    stages.Add(static_cast<double>(job.graph.num_stages()));
    runtime.Add(job.JobRuntime());
    temp.Add(job.TotalTempBytes());
  }
  std::printf("trace: %zu jobs\n", jobs->size());
  std::printf("stages/job: mean %.1f max %.0f\n", stages.mean(), stages.max());
  std::printf("runtime: mean %s max %s\n", HumanDuration(runtime.mean()).c_str(),
              HumanDuration(runtime.max()).c_str());
  std::printf("temp data/job: mean %s\n", HumanBytes(temp.mean()).c_str());
  return 0;
}

int CmdSaveModels(const Args& args) {
  Trained t = TrainFromArgs(args);
  std::string dir = args.Str("dir", "phoebe_models");
  t.phoebe.Save(dir).Check();
  std::fprintf(stderr, "saved trained models to %s/\n", dir.c_str());
  return 0;
}

int CmdFleet(const Args& args) {
  Trained t = TrainFromArgs(args);
  const int num_days = std::max(1, args.Int("days", 1));

  core::FleetConfig cfg;
  cfg.objective = args.Str("objective", "temp") == "recovery"
                      ? core::Objective::kRecovery
                      : core::Objective::kTempStorage;
  cfg.num_cuts = std::max(1, args.Int("num-cuts", 1));
  cfg.num_threads = args.Int("threads", 1);
  double budget_gb = std::atof(args.Str("budget-gb", "0").c_str());
  if (budget_gb > 0.0) cfg.storage_budget_bytes = budget_gb * 1e9;

  // Batched ML scoring is the default; --no-batch reverts to the scalar
  // per-stage path (bit-identical results, slower).
  const bool batch = args.Int("no-batch", 0) == 0 && args.Int("batch", 1) != 0;
  t.phoebe.set_batch_inference(batch);

  // --template-cache N enables the recurring-template decision cache with
  // capacity N; --cache-bps sets the input-size drift tolerance (0 = exact).
  int cache_capacity = args.Int("template-cache", 0);
  if (cache_capacity > 0) {
    cfg.template_cache.enabled = true;
    cfg.template_cache.capacity = static_cast<size_t>(cache_capacity);
    cfg.template_cache.quantize_bps = std::max(0, args.Int("cache-bps", 0));
  }

  core::FleetDriver driver(&t.phoebe.engine(), cfg);

  // --shard I/N: decide-only mode. Compute raw decisions for the days this
  // shard owns (day d belongs to shard d % N) and write one blob; a later
  // `fleet --merge` run replays all blobs into the canonical report stream.
  // No calibration, no admission, no cache — those are merge-time concerns.
  std::string shard = args.Str("shard", "");
  if (!shard.empty()) {
    std::vector<std::string> parts = Split(shard, '/');
    int32_t index = -1, count = 0;
    if (parts.size() != 2 || !ParseInt32(parts[0], &index) ||
        !ParseInt32(parts[1], &count) || count < 1 || index < 0 || index >= count) {
      std::fprintf(stderr, "--shard expects I/N with 0 <= I < N, got '%s'\n",
                   shard.c_str());
      return 2;
    }
    std::string out = args.Str("out", "");
    if (out.empty()) {
      std::fprintf(stderr, "fleet --shard requires --out <file>\n");
      return 2;
    }
    core::FleetShardHeader header{index, count, num_days,
                                  t.phoebe.bundle()->checksum()};
    std::map<int, core::FleetDayDecisions> days;
    for (int d = 0; d < num_days; ++d) {
      if (!core::ShardOwnsDay(d, index, count)) continue;
      auto decisions = driver.DecideDay(t.repo.Day(t.train_days + d),
                                        t.repo.StatsBefore(t.train_days + d));
      decisions.status().Check();
      days.emplace(d, std::move(*decisions));
    }
    auto blob = core::SerializeFleetShard(header, days);
    blob.status().Check();
    std::ofstream f(out, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", out.c_str());
      return 1;
    }
    f << *blob;
    std::fprintf(stderr, "shard %d/%d: wrote %zu of %d day(s) to %s\n", index,
                 count, days.size(), num_days, out.c_str());
    return 0;
  }

  // --merge f1,f2,...: replace the decision phase with the shard blobs'
  // precomputed decisions. The admission knapsack and the template cache
  // replay serially here, so the reports are byte-identical to an unsharded
  // run with this same configuration.
  std::map<int, core::FleetDayDecisions> merged;
  bool replay = false;
  std::string merge = args.Str("merge", "");
  if (!merge.empty()) {
    std::vector<core::FleetShardBlob> blobs;
    for (const std::string& path : Split(merge, ',')) {
      std::ifstream f(path, std::ios::binary);
      if (!f) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
      }
      std::string text((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
      auto blob = core::ParseFleetShard(text);
      if (!blob.ok()) {
        std::fprintf(stderr, "parse error in '%s': %s\n", path.c_str(),
                     blob.status().ToString().c_str());
        return 1;
      }
      blobs.push_back(std::move(*blob));
    }
    if (blobs.front().header.num_days != num_days) {
      std::fprintf(stderr, "shard blobs cover %d day(s); pass --days %d\n",
                   blobs.front().header.num_days, blobs.front().header.num_days);
      return 2;
    }
    auto m = core::CombineFleetShards(blobs, t.phoebe.bundle()->checksum());
    m.status().Check();
    merged = std::move(*m);
    replay = true;
  }

  if (budget_gb > 0.0) {
    // Calibrate the admission threshold on the day before the first test day.
    driver.Calibrate(t.repo.Day(t.train_days - 1), t.repo.StatsBefore(t.train_days - 1))
        .Check();
  }

  std::string report_path = args.Str("report", "");
  std::ofstream report_file;
  if (!report_path.empty()) {
    report_file.open(report_path, std::ios::binary);
    if (!report_file) {
      std::fprintf(stderr, "cannot open '%s'\n", report_path.c_str());
      return 1;
    }
  }

  for (int d = 0; d < num_days; ++d) {
    const auto& jobs = t.repo.Day(t.train_days + d);
    auto stats = t.repo.StatsBefore(t.train_days + d);
    auto report = replay ? driver.ReplayDay(jobs, stats, merged.at(d))
                         : driver.RunDay(jobs, stats);
    report.status().Check();

    std::printf("fleet day %d: %zu jobs, %d threads, %d cut(s)%s%s\n",
                t.train_days + d, jobs.size(), ThreadPool::Resolve(cfg.num_threads),
                cfg.num_cuts,
                budget_gb > 0.0 ? StrFormat(", budget %.1f GB", budget_gb).c_str() : "",
                replay ? " (merged from shards)" : "");
    TablePrinter tab({"metric", "value"});
    tab.AddRow({"jobs considered", StrFormat("%d", report->jobs_considered)});
    tab.AddRow({"jobs with a cut", StrFormat("%d", report->jobs_with_cut)});
    tab.AddRow({"jobs admitted", StrFormat("%d", report->jobs_admitted)});
    tab.AddRow({"storage used", HumanBytes(report->storage_used_bytes)});
    tab.AddRow({"realized saving", StrFormat("%.1f%%", 100.0 * report->SavingFraction())});
    if (report->knapsack_threshold > 0.0) {
      tab.AddRow({"knapsack threshold", StrFormat("%.3g", report->knapsack_threshold)});
    }
    if (cfg.template_cache.enabled) {
      tab.AddRow({"cache hits/misses",
                  StrFormat("%lld/%lld", static_cast<long long>(report->cache_hits),
                            static_cast<long long>(report->cache_misses))});
      if (report->cache_evictions > 0) {
        tab.AddRow({"cache evictions",
                    StrFormat("%lld", static_cast<long long>(report->cache_evictions))});
      }
    }
    tab.Print();
    if (report_file.is_open()) {
      report_file << core::FleetDayReportJson(*report, d) << "\n";
    }
  }
  if (report_file.is_open()) {
    report_file.close();
    std::fprintf(stderr, "wrote %d day report(s) to %s\n", num_days,
                 report_path.c_str());
  }
  return 0;
}

int CmdBacktest(const Args& args) {
  Trained t = TrainFromArgs(args);
  core::BackTester tester(&t.phoebe.engine(), /*mtbf_seconds=*/12 * 3600.0);
  const auto& jobs = t.repo.Day(t.train_days);
  auto stats = t.repo.StatsBefore(t.train_days);
  bool recovery = args.Str("objective", "temp") == "recovery";

  auto result = recovery ? tester.EvaluateRecovery(jobs, stats)
                         : tester.EvaluateTempStorage(jobs, stats);
  result.status().Check();
  std::printf("%s back-test over %zu jobs (day %d)\n",
              recovery ? "recovery" : "temp-storage", jobs.size(), t.train_days);
  TablePrinter tab({"approach", "mean saving %", "stddev"});
  for (core::Approach a : core::AllApproaches()) {
    auto& s = (*result)[a];
    tab.AddRow({core::ApproachName(a), StrFormat("%.1f", 100 * s.mean()),
                StrFormat("%.1f", 100 * s.stddev())});
  }
  tab.Print();
  return 0;
}

void Usage() {
  std::fputs(
      "phoebe_cli <command> [--flag value ...]\n"
      "\n"
      "commands:\n"
      "  generate  --templates N --days D --seed S [--out file.csv]\n"
      "  inspect   --seed S --day D --job K [--graph]\n"
      "  train     --templates N --train-days D --seed S [--out bundle.phoebe]\n"
      "            (--out saves the trained state as a versioned single-file\n"
      "             bundle; serve it later with --bundle on any command)\n"
      "  bundle-info --in bundle.phoebe      (inspect a saved bundle)\n"
      "  decide    --seed S --job K [--objective temp|recovery]\n"
      "  backtest  --seed S [--objective temp|recovery]\n"
      "  fleet     --seed S [--days D] [--threads T] [--num-cuts K] [--budget-gb G]\n"
      "            [--batch|--no-batch] [--template-cache N] [--cache-bps B]\n"
      "            [--bundle file] [--report file.jsonl]\n"
      "            [--shard I/N --out blob] [--merge blob0,blob1,...]\n"
      "            (day-level driver; T=0 uses all cores, results are\n"
      "             byte-identical for any T; --template-cache N caches\n"
      "             decisions for recurring templates, B=0 is exact mode;\n"
      "             --shard decides only days d with d%N==I and writes a\n"
      "             blob, --merge replays N blobs into reports that are\n"
      "             byte-identical to the unsharded run)\n"
      "  dot       --seed S --job K          (Graphviz of the job + cut)\n"
      "  explain   --seed S --job K [--json]  (why this cut was chosen)\n"
      "  trace-export --seed S --days D [--out file.trace]\n"
      "  trace-info   --in file.trace\n"
      "  save-models  --seed S --dir DIR     (train, then persist models)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string cmd = argv[1];
  Args args = Args::Parse(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "inspect") return CmdInspect(args);
  if (cmd == "train") return CmdTrain(args);
  if (cmd == "bundle-info") return CmdBundleInfo(args);
  if (cmd == "decide") return CmdDecide(args);
  if (cmd == "backtest") return CmdBacktest(args);
  if (cmd == "fleet") return CmdFleet(args);
  if (cmd == "dot") return CmdDot(args);
  if (cmd == "explain") return CmdExplain(args);
  if (cmd == "trace-export") return CmdTraceExport(args);
  if (cmd == "trace-info") return CmdTraceInfo(args);
  if (cmd == "save-models") return CmdSaveModels(args);
  Usage();
  return 2;
}
