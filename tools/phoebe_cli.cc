// phoebe_cli — operational command-line front end for the library.
//
// Subcommands:
//   generate   generate a synthetic workload and export per-stage telemetry CSV
//   inspect    print one job's execution graph, metrics, and schedule
//   train      train the pipeline and report held-out accuracy; --out saves
//              the trained state as a versioned PipelineBundle file
//   bundle-info  inspect a saved bundle (version, checksum, model config)
//   decide     make a checkpoint decision for one job and explain it
//   backtest   compare checkpoint-selection approaches on a held-out day
//   fleet      run the day-level fleet driver (parallel decisions + budget);
//              --bundle serves a saved artifact, --shard/--merge split the
//              run across processes with byte-identical merged reports,
//              --metrics exports per-day telemetry JSON lines
//   fleet-ab   differential fleet A/B: N decision arms (saved bundles,
//              --arm config variants, --arm scenario= workload variants)
//              decide the same generated days — scenario arms over their own
//              per-arm workload; emits the paired per-day comparison report,
//              with --shard/--merge splitting the run across processes via
//              v3 per-arm shard sections
//   lifecycle  simulated-production continuous-operation loop: daily
//              telemetry, drift-aware retraining, canary backtest promotion,
//              optional shadow diffing; artifacts (promotion.log, bundles,
//              current.phoebe) land in --out-dir
//   serve      long-running decision daemon over the framed socket protocol;
//              hot bundle reload on SIGHUP or a client reload frame — point
//              --bundle at a lifecycle run's current.phoebe and promotions
//              roll onto the daemon with a SIGHUP
//   serve-client  one-shot client for a running daemon (ping, decide,
//              reload, shutdown)
//
// Every subcommand supports --help; flags parse through common::ArgParser
// (typed values, unknown-flag suggestions). All commands are deterministic
// given --seed.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "common/argparse.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "core/bundle.h"
#include "core/evaluate.h"
#include "core/explain.h"
#include "core/fleet.h"
#include "core/fleet_ab.h"
#include "core/fleet_shard.h"
#include "core/pipeline.h"
#include "dag/dot_export.h"
#include "dag/graph_metrics.h"
#include "lifecycle/lifecycle.h"
#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "serve/client.h"
#include "serve/server.h"
#include "telemetry/repository.h"
#include "workload/generator.h"
#include "workload/trace.h"

using namespace phoebe;

namespace {

/// Parse argv for one subcommand. Returns true to continue; otherwise the
/// command should return *code (2 on a flag error, 0 after printing --help).
bool ParseOrReport(ArgParser& parser, int argc, char** argv, int* code) {
  Status st = parser.Parse(argc, argv, 2);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    *code = 2;
    return false;
  }
  if (parser.help_requested()) {
    std::fputs(parser.Help().c_str(), stdout);
    *code = 0;
    return false;
  }
  return true;
}

void AddWorkloadFlags(ArgParser& p) {
  p.AddInt("templates", 60, "number of job templates in the generator");
  p.AddInt("seed", 7, "workload generator seed");
  p.AddString("scenario", "baseline",
              "hostile-workload scenario: a preset (baseline|zipf|flash-crowd|"
              "failure-storm|drift-sudden|drift-gradual) or a phoebe_scenario "
              "file path");
}

void AddTrainFlags(ArgParser& p) {
  AddWorkloadFlags(p);
  p.AddInt("train-days", 5, "days of history to train on");
  p.AddInt("test-days", 1, "held-out days generated after training");
  p.AddString("bundle", "", "serve from this saved bundle instead of training");
}

workload::WorkloadConfig BaseWorkloadConfig(const ArgParser& p) {
  workload::WorkloadConfig cfg;
  cfg.num_templates = p.GetInt("templates");
  cfg.seed = static_cast<uint64_t>(p.GetInt("seed"));
  return cfg;
}

/// Resolve --scenario (preset name or file path); a bad value is a CLI
/// error, reported like any other flag-parse failure.
scenario::ScenarioSpec ResolveScenarioOrExit(const std::string& value) {
  scenario::ScenarioSpec spec;
  if (Status st = scenario::ResolveScenario(value, &spec); !st.ok()) {
    std::fprintf(stderr, "--scenario: %s\n", st.ToString().c_str());
    std::exit(2);
  }
  return spec;
}

workload::WorkloadGenerator MakeGen(const ArgParser& p) {
  return std::move(*scenario::MakeScenarioGenerator(
      ResolveScenarioOrExit(p.GetString("scenario")), BaseWorkloadConfig(p)));
}

/// Map --objective to the enum; unknown values are a CLI error (status set).
Result<core::Objective> ParseObjective(const std::string& value) {
  if (value == "temp") return core::Objective::kTempStorage;
  if (value == "recovery") return core::Objective::kRecovery;
  return Status::InvalidArgument(
      StrFormat("--objective expects temp|recovery, got '%s'", value.c_str()));
}

int CmdGenerate(int argc, char** argv) {
  ArgParser p("phoebe_cli generate",
              "Generate a synthetic workload and export per-stage telemetry CSV.");
  AddWorkloadFlags(p);
  p.AddInt("days", 3, "number of days to generate");
  p.AddString("out", "", "output CSV path (stdout when empty)");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  auto gen = MakeGen(p);
  int days = p.GetInt("days");
  telemetry::WorkloadRepository repo;
  for (int d = 0; d < days; ++d) repo.AddDay(d, gen.GenerateDay(d)).Check();

  std::string out = p.GetString("out");
  std::string csv = repo.ToCsv();
  if (out.empty()) {
    std::fputs(csv.c_str(), stdout);
  } else {
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", out.c_str());
      return 1;
    }
    f << csv;
    std::fprintf(stderr, "wrote %zu jobs / %zu stage records to %s\n",
                 repo.TotalJobs(), repo.TotalStageRecords(), out.c_str());
  }
  return 0;
}

int CmdInspect(int argc, char** argv) {
  ArgParser p("phoebe_cli inspect",
              "Print one job's execution graph, metrics, and schedule.");
  AddWorkloadFlags(p);
  p.AddInt("day", 0, "workload day to inspect");
  p.AddInt("job", 0, "job index within the day");
  p.AddBool("graph", "dump the raw graph text instead of the stage table");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  auto gen = MakeGen(p);
  int day = p.GetInt("day");
  auto jobs = gen.GenerateDay(day);
  int index = p.GetInt("job");
  if (index < 0 || static_cast<size_t>(index) >= jobs.size()) {
    std::fprintf(stderr, "day %d has %zu jobs; --job out of range\n", day,
                 jobs.size());
    return 1;
  }
  const workload::JobInstance& job = jobs[static_cast<size_t>(index)];

  std::printf("job %lld  template %d  name '%s'  input '%s'\n",
              static_cast<long long>(job.job_id), job.template_id,
              job.job_name.c_str(), job.norm_input_name.c_str());
  auto metrics = dag::ComputeMetrics(job.graph);
  metrics.status().Check();
  std::printf("stages %d  edges %d  tasks %d  critical path %d  components %d\n",
              metrics->num_stages, metrics->num_edges, metrics->num_tasks,
              metrics->critical_path, metrics->num_components);
  std::printf("runtime %s  temp data %s\n\n", HumanDuration(job.JobRuntime()).c_str(),
              HumanBytes(job.TotalTempBytes()).c_str());

  if (p.GetBool("graph")) {
    std::fputs(job.graph.ToText().c_str(), stdout);
    return 0;
  }

  TablePrinter t({"stage", "tasks", "input", "output", "exec s", "start", "ttl"});
  for (size_t i = 0; i < job.graph.num_stages(); ++i) {
    const auto& tr = job.truth[i];
    t.AddRow({job.graph.stage(static_cast<dag::StageId>(i)).name,
              StrFormat("%d", tr.num_tasks), HumanBytes(tr.input_bytes),
              HumanBytes(tr.output_bytes), StrFormat("%.1f", tr.exec_seconds),
              StrFormat("%.1f", tr.start_time), StrFormat("%.1f", tr.ttl)});
  }
  t.Print();
  return 0;
}

struct Trained {
  workload::WorkloadGenerator gen;
  telemetry::WorkloadRepository repo;
  core::PhoebePipeline phoebe;
  int train_days;
};

Trained TrainFromArgs(const ArgParser& p, int extra_days = 0) {
  Trained t{MakeGen(p), {}, core::PhoebePipeline(), p.GetInt("train-days")};
  int test_days = std::max({1, p.GetInt("test-days"), extra_days});
  int total = t.train_days + test_days;
  for (int d = 0; d < total; ++d) t.repo.AddDay(d, t.gen.GenerateDay(d)).Check();
  // --bundle serves from a pre-trained artifact instead of training here —
  // the serve-side half of the train/serve split. Every process loading the
  // same file decides identically (the bundle checksum names the state).
  std::string bundle = p.GetString("bundle");
  if (!bundle.empty()) {
    t.phoebe.LoadBundle(bundle).Check();
  } else {
    t.phoebe.Train(t.repo, 0, t.train_days).Check();
  }
  return t;
}

int CmdTrain(int argc, char** argv) {
  ArgParser p("phoebe_cli train",
              "Train the pipeline and report held-out accuracy.");
  AddTrainFlags(p);
  p.AddString("out", "", "save the trained state as a versioned bundle file");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  Trained t = TrainFromArgs(p);
  const auto& jobs = t.repo.Day(t.train_days);
  auto stats = t.repo.StatsBefore(t.train_days);

  std::vector<double> et, ep, ot, op, tt, tp;
  for (const auto& job : jobs) {
    auto exec = t.phoebe.exec_predictor().PredictJob(job, stats);
    auto out = t.phoebe.size_predictor().PredictJob(job, stats);
    auto costs = t.phoebe.BuildCosts(job, core::CostSource::kMlStacked, stats);
    costs.status().Check();
    for (size_t i = 0; i < job.graph.num_stages(); ++i) {
      et.push_back(job.truth[i].exec_seconds);
      ep.push_back(exec[i]);
      ot.push_back(job.truth[i].output_bytes);
      op.push_back(out[i]);
      tt.push_back(job.truth[i].ttl);
      tp.push_back(costs->ttl[i]);
    }
  }
  std::printf("trained on days 0..%d (%zu jobs), evaluated on day %d\n",
              t.train_days - 1, t.repo.TotalJobs() - jobs.size(), t.train_days);
  TablePrinter tab({"target", "R^2", "corr"});
  tab.AddRow("exec time", {RSquared(et, ep), PearsonCorrelation(et, ep)});
  tab.AddRow("output size", {RSquared(ot, op), PearsonCorrelation(ot, op)});
  tab.AddRow("TTL (stacked)", {RSquared(tt, tp), PearsonCorrelation(tt, tp)});
  tab.Print();

  std::string out = p.GetString("out");
  if (!out.empty()) {
    t.phoebe.SaveBundle(out).Check();
    std::fprintf(stderr, "wrote bundle (checksum %08x) to %s\n",
                 t.phoebe.bundle()->checksum(), out.c_str());
  }
  return 0;
}

int CmdBundleInfo(int argc, char** argv) {
  ArgParser p("phoebe_cli bundle-info",
              "Inspect a saved bundle (version, checksum, model config).");
  p.AddString("in", "", "bundle file to inspect (required)");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  std::string in = p.GetString("in");
  if (in.empty()) {
    std::fprintf(stderr, "bundle-info requires --in <file>\n");
    return 2;
  }
  auto bundle = core::PipelineBundle::LoadFromFile(in);
  if (!bundle.ok()) {
    std::fprintf(stderr, "load error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  const core::PipelineBundle& b = **bundle;
  std::printf("bundle %s\n", in.c_str());
  std::printf("format version %d  checksum %08x\n",
              core::PipelineBundle::kFormatVersion, b.checksum());
  const core::PipelineConfig& cfg = b.config();
  std::printf("exec predictor: kind %d, %d trees\n",
              static_cast<int>(cfg.exec_predictor.kind),
              cfg.exec_predictor.gbdt.num_trees);
  std::printf("size predictor: kind %d, %d trees\n",
              static_cast<int>(cfg.size_predictor.kind),
              cfg.size_predictor.gbdt.num_trees);
  std::printf("ttl stacker: %d trees\n", cfg.ttl.gbdt.num_trees);
  std::printf("delta %g  batch inference %s\n", cfg.delta,
              cfg.exec_predictor.batch_inference ? "on" : "off");
  std::printf("historic stats: %lld stage observations\n",
              static_cast<long long>(b.stats().total_observations()));
  return 0;
}

int CmdDecide(int argc, char** argv) {
  ArgParser p("phoebe_cli decide",
              "Make a checkpoint decision for one held-out job and explain it.");
  AddTrainFlags(p);
  p.AddInt("job", 0, "job index within the held-out day");
  p.AddString("objective", "temp", "optimization objective: temp|recovery");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  auto objective = ParseObjective(p.GetString("objective"));
  if (!objective.ok()) {
    std::fprintf(stderr, "%s\n", objective.status().ToString().c_str());
    return 2;
  }
  Trained t = TrainFromArgs(p);
  const auto& jobs = t.repo.Day(t.train_days);
  int index = p.GetInt("job");
  if (index < 0 || static_cast<size_t>(index) >= jobs.size()) {
    std::fprintf(stderr, "day has %zu jobs; --job out of range\n", jobs.size());
    return 1;
  }
  const auto& job = jobs[static_cast<size_t>(index)];
  auto decision = t.phoebe.Decide(job, *objective);
  decision.status().Check();

  std::printf("job '%s' (%zu stages, runtime %s)\n", job.job_name.c_str(),
              job.graph.num_stages(), HumanDuration(job.JobRuntime()).c_str());
  std::printf("overhead: lookup %.2f ms, scoring %.2f ms, optimize %.3f ms\n",
              1e3 * decision->lookup_seconds, 1e3 * decision->scoring_seconds,
              1e3 * decision->optimize_seconds);
  if (decision->cut.cut.empty()) {
    std::printf("no profitable checkpoint for this job\n");
    return 0;
  }
  size_t before = 0;
  for (bool b : decision->cut.cut.before_cut) before += b ? 1 : 0;
  std::printf("cut: %zu of %zu stages before the cut; est. global storage %s\n",
              before, job.graph.num_stages(),
              HumanBytes(decision->cut.global_bytes).c_str());
  std::printf("checkpoint stages:\n");
  for (dag::StageId u : cluster::CheckpointStages(job.graph, decision->cut.cut)) {
    std::printf("  %-28s output %s\n", job.graph.stage(u).name.c_str(),
                HumanBytes(job.truth[static_cast<size_t>(u)].output_bytes).c_str());
  }
  std::printf("realized temp saving (ex-post): %.1f%%\n",
              100.0 * core::RealizedTempSaving(job, decision->cut.cut));
  return 0;
}

int CmdExplain(int argc, char** argv) {
  ArgParser p("phoebe_cli explain", "Explain why one job's cut was chosen.");
  AddTrainFlags(p);
  p.AddInt("job", 0, "job index within the held-out day");
  p.AddBool("json", "emit the machine-readable JSON explanation");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  Trained t = TrainFromArgs(p);
  const auto& jobs = t.repo.Day(t.train_days);
  int index = p.GetInt("job");
  if (index < 0 || static_cast<size_t>(index) >= jobs.size()) {
    std::fprintf(stderr, "day has %zu jobs; --job out of range\n", jobs.size());
    return 1;
  }
  const auto& job = jobs[static_cast<size_t>(index)];
  auto costs = t.phoebe.BuildCosts(job, core::CostSource::kMlStacked);
  costs.status().Check();
  auto cut = core::OptimizeTempStorage(job.graph, *costs);
  cut.status().Check();
  if (p.GetBool("json")) {
    auto json = core::ExplainDecisionJson(job, *costs, *cut);
    json.status().Check();
    std::printf("%s\n", json->c_str());
  } else {
    auto text = core::ExplainDecisionText(job, *costs, *cut);
    text.status().Check();
    std::fputs(text->c_str(), stdout);
  }
  return 0;
}

int CmdDot(int argc, char** argv) {
  ArgParser p("phoebe_cli dot", "Graphviz rendering of one job's graph + cut.");
  AddTrainFlags(p);
  p.AddInt("job", 0, "job index within the held-out day");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  Trained t = TrainFromArgs(p);
  const auto& jobs = t.repo.Day(t.train_days);
  int index = p.GetInt("job");
  if (index < 0 || static_cast<size_t>(index) >= jobs.size()) {
    std::fprintf(stderr, "day has %zu jobs; --job out of range\n", jobs.size());
    return 1;
  }
  const auto& job = jobs[static_cast<size_t>(index)];
  auto decision = t.phoebe.Decide(job, core::Objective::kTempStorage);
  decision.status().Check();

  dag::DotOptions opt;
  opt.before_cut = decision->cut.cut.before_cut;
  opt.annotations.resize(job.graph.num_stages());
  for (size_t i = 0; i < job.graph.num_stages(); ++i) {
    opt.annotations[i] = HumanBytes(job.truth[i].output_bytes);
  }
  std::fputs(dag::ToDot(job.graph, opt).c_str(), stdout);
  return 0;
}

int CmdTraceExport(int argc, char** argv) {
  ArgParser p("phoebe_cli trace-export",
              "Serialize generated days into the text trace format.");
  AddWorkloadFlags(p);
  p.AddInt("days", 1, "number of days to export");
  p.AddString("out", "", "output trace path (stdout when empty)");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  auto gen = MakeGen(p);
  int days = p.GetInt("days");
  std::vector<workload::JobInstance> jobs;
  for (int d = 0; d < days; ++d) {
    auto day_jobs = gen.GenerateDay(d);
    jobs.insert(jobs.end(), day_jobs.begin(), day_jobs.end());
  }
  std::string out = p.GetString("out");
  std::string text = workload::SerializeTrace(jobs);
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", out.c_str());
      return 1;
    }
    f << text;
    std::fprintf(stderr, "wrote %zu jobs to %s\n", jobs.size(), out.c_str());
  }
  return 0;
}

int CmdTraceInfo(int argc, char** argv) {
  ArgParser p("phoebe_cli trace-info", "Summarize a text trace file.");
  p.AddString("in", "", "trace file to read (required)");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  std::string in = p.GetString("in");
  if (in.empty()) {
    std::fprintf(stderr, "trace-info requires --in <file>\n");
    return 2;
  }
  std::ifstream f(in);
  if (!f) {
    std::fprintf(stderr, "cannot open '%s'\n", in.c_str());
    return 1;
  }
  std::string text((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  std::vector<workload::JobInstance> jobs;
  Status parsed = workload::ParseTrace(std::string_view(text), &jobs);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.ToString().c_str());
    return 1;
  }
  RunningStats stages, runtime, temp;
  for (const auto& job : jobs) {
    stages.Add(static_cast<double>(job.graph.num_stages()));
    runtime.Add(job.JobRuntime());
    temp.Add(job.TotalTempBytes());
  }
  std::printf("trace: %zu jobs\n", jobs.size());
  std::printf("stages/job: mean %.1f max %.0f\n", stages.mean(), stages.max());
  std::printf("runtime: mean %s max %s\n", HumanDuration(runtime.mean()).c_str(),
              HumanDuration(runtime.max()).c_str());
  std::printf("temp data/job: mean %s\n", HumanBytes(temp.mean()).c_str());
  return 0;
}

int CmdSaveModels(int argc, char** argv) {
  ArgParser p("phoebe_cli save-models", "Train, then persist the models to a directory.");
  AddTrainFlags(p);
  p.AddString("dir", "phoebe_models", "output directory for the model files");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  Trained t = TrainFromArgs(p);
  std::string dir = p.GetString("dir");
  t.phoebe.Save(dir).Check();
  std::fprintf(stderr, "saved trained models to %s/\n", dir.c_str());
  return 0;
}

int CmdFleet(int argc, char** argv) {
  ArgParser p("phoebe_cli fleet",
              "Day-level fleet driver: parallel decisions, budget admission, "
              "shard/merge, optional telemetry export.");
  AddTrainFlags(p);
  p.AddInt("days", 1, "number of fleet days to run");
  p.AddInt("threads", 1, "decision threads (0 = all cores; reports are "
           "byte-identical for any value)");
  p.AddInt("num-cuts", 1, "checkpoint cuts per job");
  p.AddDouble("budget-gb", 0.0, "global storage budget in GB (0 = unlimited)");
  p.AddString("objective", "temp", "optimization objective: temp|recovery");
  p.AddBool("batch", "force batched ML scoring (already the default)");
  p.AddBool("no-batch", "scalar per-stage ML scoring (bit-identical, slower)");
  p.AddInt("template-cache", 0, "recurring-template decision cache capacity "
           "(0 = disabled)");
  p.AddInt("cache-bps", 0, "cache input-size drift tolerance in basis points "
           "(0 = exact, byte-neutral)");
  p.AddString("report", "", "write per-day JSON report lines to this file");
  p.AddString("metrics", "", "write per-day telemetry JSON lines (and a final "
              "cumulative 'run' line) to this file");
  p.AddString("shard", "", "I/N decide-only mode: decide days d with d%N==I "
              "and write a blob to --out");
  p.AddString("out", "", "output blob path for --shard");
  p.AddString("merge", "", "comma-separated shard blobs to replay into "
              "byte-identical reports");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  auto objective = ParseObjective(p.GetString("objective"));
  if (!objective.ok()) {
    std::fprintf(stderr, "%s\n", objective.status().ToString().c_str());
    return 2;
  }

  // Telemetry is opt-in and strictly passive: the registry only exists when
  // --metrics names an output file, and a null registry compiles the whole
  // instrumented path down to no-ops.
  obs::MetricsConfig metrics_cfg;
  metrics_cfg.output_path = p.GetString("metrics");
  metrics_cfg.enabled = !metrics_cfg.output_path.empty();
  if (Status st = metrics_cfg.Validate(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::ofstream metrics_file;
  if (metrics_cfg.enabled) {
    registry = std::make_unique<obs::MetricsRegistry>();
    metrics_file.open(metrics_cfg.output_path, std::ios::binary);
    if (!metrics_file) {
      std::fprintf(stderr, "cannot open '%s'\n", metrics_cfg.output_path.c_str());
      return 1;
    }
  }

  const int num_days = std::max(1, p.GetInt("days"));
  Trained t = TrainFromArgs(p, num_days);

  core::FleetConfig cfg;
  cfg.objective = *objective;
  cfg.num_cuts = std::max(1, p.GetInt("num-cuts"));
  cfg.num_threads = p.GetInt("threads");
  cfg.metrics = registry.get();
  double budget_gb = p.GetDouble("budget-gb");
  if (budget_gb > 0.0) cfg.storage_budget_bytes = budget_gb * 1e9;

  // Batched ML scoring is the default; --no-batch reverts to the scalar
  // per-stage path (bit-identical results, slower).
  t.phoebe.set_batch_inference(!p.GetBool("no-batch"));

  // --template-cache N enables the recurring-template decision cache with
  // capacity N; --cache-bps sets the input-size drift tolerance (0 = exact).
  int cache_capacity = p.GetInt("template-cache");
  if (cache_capacity > 0) {
    cfg.template_cache.enabled = true;
    cfg.template_cache.capacity = static_cast<size_t>(cache_capacity);
    cfg.template_cache.quantize_bps = std::max(0, p.GetInt("cache-bps"));
  }
  if (Status st = cfg.Validate(); !st.ok()) {
    std::fprintf(stderr, "invalid fleet configuration: %s\n", st.ToString().c_str());
    return 2;
  }

  // With --metrics, decide through a metrics-aware engine view over the same
  // immutable bundle; decisions are identical either way (the engine is a
  // const reader), so reports stay byte-identical with telemetry on.
  std::unique_ptr<core::DecisionEngine> metric_engine;
  const core::DecisionEngine* engine = &t.phoebe.engine();
  if (registry) {
    metric_engine =
        std::make_unique<core::DecisionEngine>(t.phoebe.bundle(), registry.get());
    engine = metric_engine.get();
  }
  core::FleetDriver driver(engine, cfg);

  // --shard I/N: decide-only mode. Compute raw decisions for the days this
  // shard owns (day d belongs to shard d % N) and write one blob; a later
  // `fleet --merge` run replays all blobs into the canonical report stream.
  // No calibration, no admission, no cache — those are merge-time concerns.
  std::string shard = p.GetString("shard");
  if (!shard.empty()) {
    std::vector<std::string> parts = Split(shard, '/');
    int32_t index = -1, count = 0;
    if (parts.size() != 2 || !ParseInt32(parts[0], &index).ok() ||
        !ParseInt32(parts[1], &count).ok() || count < 1 || index < 0 || index >= count) {
      std::fprintf(stderr, "--shard expects I/N with 0 <= I < N, got '%s'\n",
                   shard.c_str());
      return 2;
    }
    std::string out = p.GetString("out");
    if (out.empty()) {
      std::fprintf(stderr, "fleet --shard requires --out <file>\n");
      return 2;
    }
    core::FleetShardHeader header{index, count, num_days,
                                  t.phoebe.bundle()->checksum()};
    // Unbudgeted + cache-off runs have no cross-day state, so each shard can
    // replay its own days and embed the finished reports (v2 blobs); the
    // merge then degenerates to report concatenation. Budgeted or cached
    // runs stay decide-only — admission and the cache are merge-time serial.
    const bool shard_side_replay = budget_gb <= 0.0 && !cfg.template_cache.enabled;
    std::map<int, core::FleetDayDecisions> days;
    std::map<int, core::FleetDayReport> reports;
    for (int d = 0; d < num_days; ++d) {
      if (!core::ShardOwnsDay(d, index, count)) continue;
      const auto& jobs = t.repo.Day(t.train_days + d);
      auto stats = t.repo.StatsBefore(t.train_days + d);
      auto decisions = driver.DecideDay(jobs, stats);
      decisions.status().Check();
      if (shard_side_replay) {
        auto report = driver.ReplayDay(jobs, stats, *decisions);
        report.status().Check();
        reports.emplace(d, std::move(*report));
      }
      days.emplace(d, std::move(*decisions));
    }
    auto blob = core::SerializeFleetShard(header, days,
                                          shard_side_replay ? &reports : nullptr);
    blob.status().Check();
    std::ofstream f(out, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", out.c_str());
      return 1;
    }
    f << *blob;
    std::fprintf(stderr, "shard %d/%d: wrote %zu of %d day(s) to %s\n", index,
                 count, days.size(), num_days, out.c_str());
    if (registry) {
      metrics_file << obs::TelemetryLineJson(registry->Snapshot(), "run", -1) << "\n";
    }
    return 0;
  }

  // --merge f1,f2,...: replace the decision phase with the shard blobs'
  // precomputed decisions. The admission knapsack and the template cache
  // replay serially here, so the reports are byte-identical to an unsharded
  // run with this same configuration.
  std::map<int, core::FleetDayDecisions> merged;
  std::map<int, core::FleetDayReport> shard_reports;
  bool replay = false;
  bool concat_reports = false;  // all days carry embedded shard-side reports
  std::string merge = p.GetString("merge");
  if (!merge.empty()) {
    obs::Histogram* merge_hist =
        registry ? registry->histogram("fleet.shard.merge.seconds") : nullptr;
    obs::ScopedTimer merge_timer(merge_hist);
    std::vector<core::FleetShardBlob> blobs;
    for (const std::string& path : Split(merge, ',')) {
      std::ifstream f(path, std::ios::binary);
      if (!f) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
      }
      std::string text((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
      auto blob = core::ParseFleetShard(text);
      if (!blob.ok()) {
        std::fprintf(stderr, "parse error in '%s': %s\n", path.c_str(),
                     blob.status().ToString().c_str());
        return 1;
      }
      blobs.push_back(std::move(*blob));
    }
    if (blobs.front().header.num_days != num_days) {
      std::fprintf(stderr, "shard blobs cover %d day(s); pass --days %d\n",
                   blobs.front().header.num_days, blobs.front().header.num_days);
      return 2;
    }
    auto m = core::CombineFleetShards(blobs, t.phoebe.bundle()->checksum());
    m.status().Check();
    merged = std::move(m->days);
    shard_reports = std::move(m->reports);
    replay = true;
    // Embedded reports are only trusted when this merge's configuration is
    // the one they are valid for (unbudgeted, cache off) and every day has
    // one; otherwise fall back to the serial per-day replay.
    concat_reports = budget_gb <= 0.0 && !cfg.template_cache.enabled &&
                     static_cast<int>(shard_reports.size()) == num_days;
  }

  if (budget_gb > 0.0) {
    // Calibrate the admission threshold on the day before the first test day.
    driver.Calibrate(t.repo.Day(t.train_days - 1), t.repo.StatsBefore(t.train_days - 1))
        .Check();
  }

  std::string report_path = p.GetString("report");
  std::ofstream report_file;
  if (!report_path.empty()) {
    report_file.open(report_path, std::ios::binary);
    if (!report_file) {
      std::fprintf(stderr, "cannot open '%s'\n", report_path.c_str());
      return 1;
    }
  }

  for (int d = 0; d < num_days; ++d) {
    obs::MetricsSnapshot day_before;
    if (registry) day_before = registry->Snapshot();
    const auto& jobs = t.repo.Day(t.train_days + d);
    auto stats = t.repo.StatsBefore(t.train_days + d);
    Result<core::FleetDayReport> report =
        concat_reports ? Result<core::FleetDayReport>(std::move(shard_reports.at(d)))
        : replay       ? driver.ReplayDay(jobs, stats, merged.at(d))
                       : driver.RunDay(jobs, stats);
    report.status().Check();

    std::printf("fleet day %d: %zu jobs, %d threads, %d cut(s)%s%s\n",
                t.train_days + d, jobs.size(), ThreadPool::Resolve(cfg.num_threads),
                cfg.num_cuts,
                budget_gb > 0.0 ? StrFormat(", budget %.1f GB", budget_gb).c_str() : "",
                concat_reports ? " (concatenated shard reports)"
                : replay       ? " (merged from shards)"
                               : "");
    TablePrinter tab({"metric", "value"});
    tab.AddRow({"jobs considered", StrFormat("%d", report->jobs_considered)});
    tab.AddRow({"jobs with a cut", StrFormat("%d", report->jobs_with_cut)});
    tab.AddRow({"jobs admitted", StrFormat("%d", report->jobs_admitted)});
    tab.AddRow({"storage used", HumanBytes(report->storage_used_bytes)});
    tab.AddRow({"realized saving", StrFormat("%.1f%%", 100.0 * report->SavingFraction())});
    if (report->knapsack_threshold > 0.0) {
      tab.AddRow({"knapsack threshold", StrFormat("%.3g", report->knapsack_threshold)});
    }
    if (cfg.template_cache.enabled) {
      tab.AddRow({"cache hits/misses",
                  StrFormat("%lld/%lld", static_cast<long long>(report->cache_hits),
                            static_cast<long long>(report->cache_misses))});
      if (report->cache_evictions > 0) {
        tab.AddRow({"cache evictions",
                    StrFormat("%lld", static_cast<long long>(report->cache_evictions))});
      }
    }
    tab.Print();
    if (report_file.is_open()) {
      report_file << core::FleetDayReportJson(*report, d) << "\n";
    }
    if (registry) {
      metrics_file << obs::TelemetryLineJson(
                          obs::SnapshotDelta(day_before, registry->Snapshot()),
                          "day", d)
                   << "\n";
    }
  }
  if (report_file.is_open()) {
    report_file.close();
    std::fprintf(stderr, "wrote %d day report(s) to %s\n", num_days,
                 report_path.c_str());
  }
  if (registry) {
    // Cumulative line last: whole-run totals including merge/calibration work
    // that falls outside any single day window.
    metrics_file << obs::TelemetryLineJson(registry->Snapshot(), "run", -1) << "\n";
    metrics_file.close();
    std::fprintf(stderr, "wrote telemetry to %s\n", metrics_cfg.output_path.c_str());
  }
  return 0;
}

/// Apply one `--arm` spec ("name=twocut,cuts=2,source=ml_sim,cache=64,bps=50,
/// scenario=flash-crowd") on top of the baseline FleetConfig. Only the listed
/// keys are accepted; a typo is a CLI error, never a silently ignored knob.
/// `scenario` names a preset or phoebe_scenario file the arm's workload is
/// generated under (validated when the arm's generator is built).
Status ApplyArmSpec(const std::string& spec, core::FleetConfig* cfg,
                    std::string* name, std::string* scenario) {
  for (const std::string& kv : Split(spec, ',')) {
    size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(StrFormat(
          "--arm expects comma-separated key=value pairs, got '%s'", kv.c_str()));
    }
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    Status parsed = Status::OK();
    if (key == "name") {
      *name = value;
    } else if (key == "source") {
      parsed = core::CostSourceFromToken(value, &cfg->source);
    } else if (key == "cuts") {
      int32_t v = 0;
      parsed = ParseInt32(value, &v);
      if (parsed.ok()) cfg->num_cuts = std::max(1, v);
    } else if (key == "cache") {
      int32_t v = 0;
      parsed = ParseInt32(value, &v);
      if (parsed.ok()) {
        cfg->template_cache.enabled = v > 0;
        if (v > 0) cfg->template_cache.capacity = static_cast<size_t>(v);
      }
    } else if (key == "bps") {
      int32_t v = 0;
      parsed = ParseInt32(value, &v);
      if (parsed.ok()) cfg->template_cache.quantize_bps = std::max(0, v);
    } else if (key == "scenario") {
      if (value.empty()) {
        return Status::InvalidArgument("--arm scenario= needs a value");
      }
      *scenario = value;
    } else {
      return Status::InvalidArgument(
          StrFormat("--arm key '%s' is not one of name|source|cuts|cache|bps"
                    "|scenario",
                    key.c_str()));
    }
    if (!parsed.ok()) {
      return Status::InvalidArgument(StrFormat("--arm %s: %s", key.c_str(),
                                               parsed.message().c_str()));
    }
  }
  return Status::OK();
}

int CmdFleetAb(int argc, char** argv) {
  ArgParser p("phoebe_cli fleet-ab",
              "Differential fleet A/B: N decision arms (saved bundles and/or "
              "--arm config variants) decide the same generated days over one "
              "shared context. Arm 0 is the baseline every delta is measured "
              "against; each arm's day report is byte-identical to a "
              "standalone `fleet` run under that arm's engine and config.");
  AddWorkloadFlags(p);
  p.AddInt("train-days", 5, "days of history to train on");
  p.AddInt("test-days", 1, "held-out days generated after training");
  p.AddStringList("bundle", "saved bundle file; each occurrence adds one arm "
                  "serving that bundle (arm 0 trains in-process when absent)");
  p.AddStringList("arm", "config arm over the arm-0 bundle: comma-separated "
                  "key=value of name|source|cuts|cache|bps|scenario "
                  "(e.g. name=twocut,cuts=2 or name=storm,scenario=flash-crowd; "
                  "a scenario arm decides its own workload, so it reports "
                  "cost/saving deltas but no decision flips)");
  p.AddInt("days", 1, "number of fleet days to run");
  p.AddInt("threads", 1, "decision threads (0 = all cores; paired reports are "
           "byte-identical for any value)");
  p.AddInt("num-cuts", 1, "checkpoint cuts per job (baseline config)");
  p.AddDouble("budget-gb", 0.0, "global storage budget in GB (0 = unlimited)");
  p.AddString("objective", "temp", "optimization objective: temp|recovery");
  p.AddInt("template-cache", 0, "baseline template cache capacity (0 = off)");
  p.AddInt("cache-bps", 0, "baseline cache drift tolerance in basis points "
           "(0 = exact, byte-neutral)");
  p.AddString("report", "", "write the paired A/B report text to this file");
  p.AddString("arm-reports", "", "write each arm's per-day JSON report lines "
              "to <prefix><k>.jsonl (arm 0's file is byte-identical to a "
              "standalone `fleet --report` under the same config)");
  p.AddString("metrics", "", "write telemetry JSON lines to this file "
              "(per-arm names under ab.arm<k>.)");
  p.AddString("shard", "", "I/N decide-only mode: write one v3 blob with "
              "per-arm sections to --out");
  p.AddString("out", "", "output blob path for --shard");
  p.AddString("merge", "", "comma-separated v3 shard blobs to replay into "
              "byte-identical paired reports");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  auto objective = ParseObjective(p.GetString("objective"));
  if (!objective.ok()) {
    std::fprintf(stderr, "%s\n", objective.status().ToString().c_str());
    return 2;
  }

  std::unique_ptr<obs::MetricsRegistry> registry;
  std::ofstream metrics_file;
  const std::string metrics_path = p.GetString("metrics");
  if (!metrics_path.empty()) {
    registry = std::make_unique<obs::MetricsRegistry>();
    metrics_file.open(metrics_path, std::ios::binary);
    if (!metrics_file) {
      std::fprintf(stderr, "cannot open '%s'\n", metrics_path.c_str());
      return 1;
    }
  }

  // Workload + history: the arm-independent half of the day loop, generated
  // exactly once no matter how many arms decide it.
  const int num_days = std::max(1, p.GetInt("days"));
  auto gen = MakeGen(p);
  telemetry::WorkloadRepository repo;
  const int train_days = p.GetInt("train-days");
  const int total = train_days + std::max({1, p.GetInt("test-days"), num_days});
  for (int d = 0; d < total; ++d) repo.AddDay(d, gen.GenerateDay(d)).Check();

  const double budget_gb = p.GetDouble("budget-gb");
  core::FleetConfig base_cfg;
  base_cfg.objective = *objective;
  base_cfg.num_cuts = std::max(1, p.GetInt("num-cuts"));
  base_cfg.num_threads = p.GetInt("threads");
  if (budget_gb > 0.0) base_cfg.storage_budget_bytes = budget_gb * 1e9;
  int cache_capacity = p.GetInt("template-cache");
  if (cache_capacity > 0) {
    base_cfg.template_cache.enabled = true;
    base_cfg.template_cache.capacity = static_cast<size_t>(cache_capacity);
    base_cfg.template_cache.quantize_bps = std::max(0, p.GetInt("cache-bps"));
  }

  // Arm plan: one arm per --bundle (arm 0 trains in-process when none are
  // named), then one arm per --arm spec over the arm-0 bundle.
  struct ArmPlan {
    std::string name;
    std::shared_ptr<const core::PipelineBundle> bundle;
    core::FleetConfig cfg;
    std::string scenario;  // empty = the run-level --scenario workload
  };
  std::vector<ArmPlan> plans;
  core::PhoebePipeline trained;
  for (const std::string& path : p.GetStrings("bundle")) {
    auto bundle = core::PipelineBundle::LoadFromFile(path, registry.get());
    if (!bundle.ok()) {
      std::fprintf(stderr, "cannot load '%s': %s\n", path.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    plans.push_back(
        {StrFormat("bundle%zu", plans.size()), *bundle, base_cfg, ""});
  }
  if (plans.empty()) {
    trained.Train(repo, 0, train_days).Check();
    plans.push_back({"base", trained.bundle(), base_cfg, ""});
  }
  for (const std::string& spec : p.GetStrings("arm")) {
    ArmPlan plan{StrFormat("cfg%zu", plans.size()), plans.front().bundle,
                 base_cfg, ""};
    if (Status st = ApplyArmSpec(spec, &plan.cfg, &plan.name, &plan.scenario);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    plans.push_back(std::move(plan));
  }
  if (plans.size() < 2) {
    std::fprintf(stderr, "fleet-ab compares >= 2 arms; pass --bundle twice "
                 "and/or add --arm specs\n");
    return 2;
  }

  // Per-arm workloads: arms without a scenario= key decide the run-level
  // repository; each distinct `--arm scenario=` value gets one generator and
  // repository over the same base config (templates, seed), shared by every
  // arm naming it. Sharing a repository object means sharing the day's jobs
  // vector, which is what keeps the flip diff defined for same-workload arms.
  std::map<std::string, std::unique_ptr<telemetry::WorkloadRepository>>
      scenario_repos;
  std::vector<telemetry::WorkloadRepository*> arm_repos(plans.size(), &repo);
  for (size_t k = 0; k < plans.size(); ++k) {
    const std::string& sc = plans[k].scenario;
    if (sc.empty()) continue;
    auto it = scenario_repos.find(sc);
    if (it == scenario_repos.end()) {
      scenario::ScenarioSpec spec;
      if (Status st = scenario::ResolveScenario(sc, &spec); !st.ok()) {
        std::fprintf(stderr, "--arm '%s' scenario: %s\n", plans[k].name.c_str(),
                     st.ToString().c_str());
        return 2;
      }
      auto sgen = scenario::MakeScenarioGenerator(spec, BaseWorkloadConfig(p));
      auto r = std::make_unique<telemetry::WorkloadRepository>();
      for (int d = 0; d < total; ++d) r->AddDay(d, sgen->GenerateDay(d)).Check();
      it = scenario_repos.emplace(sc, std::move(r)).first;
    }
    arm_repos[k] = it->second.get();
  }

  // Each arm decides through its own engine view (cheap: a const reader over
  // the shared immutable bundle) so its engine.* and fleet.* metric names
  // carry the arm's ab.arm<k>. prefix and never collide.
  std::vector<std::unique_ptr<core::DecisionEngine>> engines;
  std::vector<core::FleetArmSpec> specs;
  for (size_t k = 0; k < plans.size(); ++k) {
    obs::MetricsRegistry* arm_metrics =
        registry ? registry->Namespaced(StrFormat("ab.arm%zu.", k)) : nullptr;
    plans[k].cfg.metrics = arm_metrics;
    engines.push_back(
        std::make_unique<core::DecisionEngine>(plans[k].bundle, arm_metrics));
    core::FleetArmSpec spec;
    spec.name = plans[k].name;
    spec.engine = engines.back().get();
    spec.config = plans[k].cfg;
    spec.bundle_checksum = plans[k].bundle->checksum();
    specs.push_back(std::move(spec));
  }
  core::FleetAbDriver driver(std::move(specs));

  // One DayContext per arm for a repository day: scenario arms read their
  // own repo, the rest read the run-level one. `stats` owns the per-arm
  // stats views the contexts point into (stable across the struct's move).
  struct DayInputs {
    std::vector<telemetry::HistoricStats> stats;
    std::vector<core::DayContext> ctxs;
  };
  auto MakeArmContexts = [&](int day_index, int repo_day) {
    DayInputs in;
    in.stats.reserve(arm_repos.size());
    for (auto* r : arm_repos) in.stats.push_back(r->StatsBefore(repo_day));
    in.ctxs.reserve(arm_repos.size());
    for (size_t k = 0; k < arm_repos.size(); ++k) {
      in.ctxs.emplace_back(day_index, arm_repos[k]->Day(repo_day), in.stats[k]);
    }
    return in;
  };

  if (budget_gb > 0.0) {
    DayInputs hist = MakeArmContexts(-1, train_days - 1);
    driver.Calibrate(hist.ctxs).Check();
  }

  // --shard I/N: decide-only mode. Arm 0's decisions are the blob's regular
  // day records; arms 1..n-1 land in v3 per-arm sections, so one blob carries
  // the whole differential run's decide phase for the days it owns.
  std::string shard = p.GetString("shard");
  if (!shard.empty()) {
    std::vector<std::string> parts = Split(shard, '/');
    int32_t index = -1, count = 0;
    if (parts.size() != 2 || !ParseInt32(parts[0], &index).ok() ||
        !ParseInt32(parts[1], &count).ok() || count < 1 || index < 0 || index >= count) {
      std::fprintf(stderr, "--shard expects I/N with 0 <= I < N, got '%s'\n",
                   shard.c_str());
      return 2;
    }
    std::string out = p.GetString("out");
    if (out.empty()) {
      std::fprintf(stderr, "fleet-ab --shard requires --out <file>\n");
      return 2;
    }
    core::FleetShardHeader header{index, count, num_days,
                                  driver.spec(0).bundle_checksum};
    std::map<int, core::FleetDayDecisions> days;
    std::map<int, std::map<int, core::FleetDayDecisions>> arm_days;
    for (int d = 0; d < num_days; ++d) {
      if (!core::ShardOwnsDay(d, index, count)) continue;
      DayInputs in = MakeArmContexts(d, train_days + d);
      auto decisions = driver.DecideDay(in.ctxs);
      decisions.status().Check();
      for (size_t k = 1; k < decisions->size(); ++k) {
        arm_days[d].emplace(static_cast<int>(k), std::move((*decisions)[k]));
      }
      days.emplace(d, std::move(decisions->front()));
    }
    auto blob = core::SerializeFleetShard(header, days, nullptr,
                                          arm_days.empty() ? nullptr : &arm_days);
    blob.status().Check();
    std::ofstream f(out, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", out.c_str());
      return 1;
    }
    f << *blob;
    std::fprintf(stderr, "shard %d/%d: wrote %zu of %d day(s) x %zu arm(s) to %s\n",
                 index, count, days.size(), num_days, driver.num_arms(),
                 out.c_str());
    if (registry) {
      metrics_file << obs::TelemetryLineJson(registry->Snapshot(), "run", -1) << "\n";
    }
    return 0;
  }

  // --merge f1,f2,...: replace every arm's decide phase with the blobs'
  // precomputed records; cache + admission replay per arm here, so the paired
  // reports are byte-identical to an unsharded fleet-ab run.
  std::map<int, core::FleetDayDecisions> merged;
  std::map<int, std::map<int, core::FleetDayDecisions>> merged_arms;
  bool replay = false;
  std::string merge = p.GetString("merge");
  if (!merge.empty()) {
    std::vector<core::FleetShardBlob> blobs;
    for (const std::string& path : Split(merge, ',')) {
      std::ifstream f(path, std::ios::binary);
      if (!f) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
      }
      std::string text((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
      auto blob = core::ParseFleetShard(text);
      if (!blob.ok()) {
        std::fprintf(stderr, "parse error in '%s': %s\n", path.c_str(),
                     blob.status().ToString().c_str());
        return 1;
      }
      blobs.push_back(std::move(*blob));
    }
    if (blobs.front().header.num_days != num_days) {
      std::fprintf(stderr, "shard blobs cover %d day(s); pass --days %d\n",
                   blobs.front().header.num_days, blobs.front().header.num_days);
      return 2;
    }
    auto m = core::CombineFleetShards(blobs, driver.spec(0).bundle_checksum);
    m.status().Check();
    merged = std::move(m->days);
    merged_arms = std::move(m->arm_days);
    replay = true;
  }

  std::string report_path = p.GetString("report");
  std::string arm_reports_prefix = p.GetString("arm-reports");
  std::vector<std::unique_ptr<std::ofstream>> arm_report_files;
  if (!arm_reports_prefix.empty()) {
    for (size_t k = 0; k < driver.num_arms(); ++k) {
      std::string path = StrFormat("%s%zu.jsonl", arm_reports_prefix.c_str(), k);
      auto f = std::make_unique<std::ofstream>(path, std::ios::binary);
      if (!*f) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
      }
      arm_report_files.push_back(std::move(f));
    }
  }

  std::vector<core::AbDayComparison> all_days;
  for (int d = 0; d < num_days; ++d) {
    obs::MetricsSnapshot day_before;
    if (registry) day_before = registry->Snapshot();
    DayInputs in = MakeArmContexts(d, train_days + d);
    auto result = [&]() -> Result<core::FleetAbDriver::AbDayResult> {
      if (!replay) return driver.RunDay(in.ctxs);
      std::vector<core::FleetDayDecisions> pre;
      pre.push_back(std::move(merged.at(d)));
      auto ait = merged_arms.find(d);
      for (size_t k = 1; k < driver.num_arms(); ++k) {
        if (ait == merged_arms.end() ||
            ait->second.find(static_cast<int>(k)) == ait->second.end()) {
          return Status::InvalidArgument(StrFormat(
              "shard blobs carry no arm-%zu section for day %d", k, d));
        }
        pre.push_back(std::move(ait->second.at(static_cast<int>(k))));
      }
      return driver.ReplayDay(in.ctxs, pre);
    }();
    result.status().Check();
    const core::AbDayComparison& cmp = result->comparison;

    std::printf("fleet-ab day %d: %d jobs, %zu arms%s%s\n", d, cmp.jobs,
                driver.num_arms(),
                budget_gb > 0.0 ? StrFormat(", budget %.1f GB", budget_gb).c_str() : "",
                replay ? " (merged from shards)" : "");
    TablePrinter tab({"arm", "saving %", "cost", "flips", "admission", "cost delta"});
    for (size_t k = 0; k < cmp.arms.size(); ++k) {
      const core::AbArmDaySummary& a = cmp.arms[k];
      const core::AbArmDelta& delta = cmp.deltas[k];
      tab.AddRow({a.name, StrFormat("%.1f", 100.0 * a.saving_fraction),
                  StrFormat("%.4f", a.cost),
                  k == 0 ? "-" : StrFormat("%d", delta.decision_flips),
                  k == 0 ? "-" : StrFormat("%d", delta.admission_flips),
                  k == 0 ? "-" : StrFormat("%+.4f", delta.cost_delta)});
    }
    tab.Print();

    for (size_t k = 0; k < arm_report_files.size(); ++k) {
      *arm_report_files[k] << core::FleetDayReportJson(result->reports[k], d)
                           << "\n";
    }
    all_days.push_back(std::move(result->comparison));
    if (registry) {
      metrics_file << obs::TelemetryLineJson(
                          obs::SnapshotDelta(day_before, registry->Snapshot()),
                          "day", d)
                   << "\n";
    }
  }
  if (!report_path.empty()) {
    std::ofstream f(report_path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", report_path.c_str());
      return 1;
    }
    f << core::SerializeAbReport(all_days);
    std::fprintf(stderr, "wrote paired report (%d day(s), %zu arms) to %s\n",
                 num_days, driver.num_arms(), report_path.c_str());
  }
  if (!arm_report_files.empty()) {
    std::fprintf(stderr, "wrote per-arm day reports to %s{0..%zu}.jsonl\n",
                 arm_reports_prefix.c_str(), driver.num_arms() - 1);
  }
  if (registry) {
    metrics_file << obs::TelemetryLineJson(registry->Snapshot(), "run", -1) << "\n";
    metrics_file.close();
    std::fprintf(stderr, "wrote telemetry to %s\n", metrics_path.c_str());
  }
  return 0;
}

/// Candidate-architecture presets for `lifecycle --candidate-pipeline`.
/// "small" shrinks every GBDT to 8 trees — a cheaper architecture that can
/// still win the canary; "crippled" is one near-zero-learning-rate stump per
/// model, deliberately too weak to beat a trained incumbent (the knob that
/// exercises the rejection path end to end).
core::PipelineConfig SmallPipelineConfig() {
  core::PipelineConfig cfg = core::PhoebePipeline::DefaultConfig();
  cfg.exec_predictor.gbdt.num_trees = 8;
  cfg.size_predictor.gbdt.num_trees = 8;
  cfg.ttl.gbdt.num_trees = 8;
  return cfg;
}

core::PipelineConfig CrippledPipelineConfig() {
  core::PipelineConfig cfg = SmallPipelineConfig();
  for (core::PredictorConfig* pc : {&cfg.exec_predictor, &cfg.size_predictor}) {
    pc->gbdt.num_trees = 1;
    pc->gbdt.num_leaves = 2;
    pc->gbdt.learning_rate = 1e-4;
  }
  cfg.ttl.gbdt.num_trees = 1;
  cfg.ttl.gbdt.num_leaves = 2;
  cfg.ttl.gbdt.learning_rate = 1e-4;
  return cfg;
}

int CmdLifecycle(int argc, char** argv) {
  ArgParser p("phoebe_cli lifecycle",
              "Simulated-production continuous-operation loop: each day "
              "appends telemetry, the retrain policy triggers candidate "
              "training on drift or age, and a candidate replaces the "
              "incumbent only when it wins the trailing-window canary "
              "backtest. Artifacts: promotion.log (CRC-checked, append-only), "
              "day_reports.jsonl, shadow_day_*.diff, versioned bundles, and "
              "current.phoebe (atomic — a serve daemon can reload it on "
              "SIGHUP mid-run).");
  AddWorkloadFlags(p);
  p.AddInt("days", 10, "simulated production days");
  p.AddDouble("policy-min-r2", 0.70, "retrain when the incumbent's held-out "
              "exec R^2 on the day drops below this");
  p.AddInt("policy-max-age", 7, "retrain when the incumbent is at least this "
           "many days old");
  p.AddInt("policy-train-window", 5, "days of history per training run");
  p.AddInt("policy-min-history", 2, "completed days required before the "
           "bootstrap training");
  p.AddInt("backtest-window", 3, "trailing days of the canary backtest");
  p.AddString("objective", "temp", "optimization objective: temp|recovery");
  p.AddInt("threads", 1, "decision threads (0 = all cores; artifacts are "
           "byte-identical for any value)");
  p.AddInt("num-cuts", 1, "checkpoint cuts per job");
  p.AddInt("template-cache", 0, "recurring-template decision cache capacity "
           "(0 = disabled; exact mode is byte-neutral)");
  p.AddInt("cache-bps", 0, "cache input-size drift tolerance in basis points "
           "(0 = exact)");
  p.AddInt("retention-days", 0, "evict repository days older than this "
           "(0 = keep everything; must cover the deepest window)");
  p.AddBool("shadow", "record the candidate's would-be decisions as shard-blob "
            "job records and byte-diff them against the incumbent's");
  p.AddString("candidate-pipeline", "default", "architecture candidates train "
              "under while the incumbent keeps its own: default|small|crippled "
              "(crippled always loses the canary — the rejection-path demo)");
  p.AddString("out-dir", "", "artifact directory (required)");
  p.AddString("metrics", "", "write per-day lifecycle.* telemetry JSON lines "
              "(and a final cumulative 'run' line) to this file");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  const std::string out_dir = p.GetString("out-dir");
  if (out_dir.empty()) {
    std::fprintf(stderr, "lifecycle requires --out-dir <directory>\n");
    return 2;
  }
  auto objective = ParseObjective(p.GetString("objective"));
  if (!objective.ok()) {
    std::fprintf(stderr, "%s\n", objective.status().ToString().c_str());
    return 2;
  }

  std::unique_ptr<obs::MetricsRegistry> registry;
  std::ofstream metrics_file;
  const std::string metrics_path = p.GetString("metrics");
  if (!metrics_path.empty()) {
    registry = std::make_unique<obs::MetricsRegistry>();
    metrics_file.open(metrics_path, std::ios::binary);
    if (!metrics_file) {
      std::fprintf(stderr, "cannot open '%s'\n", metrics_path.c_str());
      return 1;
    }
  }

  lifecycle::LifecycleConfig cfg;
  cfg.policy.min_exec_r2 = p.GetDouble("policy-min-r2");
  cfg.policy.max_age_days = p.GetInt("policy-max-age");
  cfg.policy.train_window_days = p.GetInt("policy-train-window");
  cfg.policy.min_history_days = p.GetInt("policy-min-history");
  cfg.backtest_window_days = p.GetInt("backtest-window");
  cfg.fleet.objective = *objective;
  cfg.fleet.num_threads = p.GetInt("threads");
  cfg.fleet.num_cuts = std::max(1, p.GetInt("num-cuts"));
  int cache_capacity = p.GetInt("template-cache");
  if (cache_capacity > 0) {
    cfg.fleet.template_cache.enabled = true;
    cfg.fleet.template_cache.capacity = static_cast<size_t>(cache_capacity);
    cfg.fleet.template_cache.quantize_bps = std::max(0, p.GetInt("cache-bps"));
  }
  cfg.shadow = p.GetBool("shadow");
  const std::string candidate = p.GetString("candidate-pipeline");
  if (candidate == "small") {
    cfg.candidate_pipeline = SmallPipelineConfig();
  } else if (candidate == "crippled") {
    cfg.candidate_pipeline = CrippledPipelineConfig();
  } else if (candidate != "default") {
    std::fprintf(stderr, "--candidate-pipeline expects default|small|crippled, "
                 "got '%s'\n", candidate.c_str());
    return 2;
  }
  cfg.retention_days = p.GetInt("retention-days");
  cfg.out_dir = out_dir;
  cfg.metrics = registry.get();
  // The scenario shapes both halves of the loop: MakeGen below generates the
  // shaped workload, and a failure-storm's MTBF spikes reach the canary
  // backtest through the per-day factor (a no-op ×1.0 for other presets).
  const scenario::ScenarioSpec scen =
      ResolveScenarioOrExit(p.GetString("scenario"));
  cfg.mtbf_factor = [scen](int d) { return scen.MtbfFactor(d); };
  if (Status st = cfg.Validate(); !st.ok()) {
    std::fprintf(stderr, "invalid lifecycle configuration: %s\n",
                 st.ToString().c_str());
    return 2;
  }

  lifecycle::LifecycleDriver driver(cfg);
  auto gen = MakeGen(p);
  telemetry::WorkloadRepository repo;
  const int num_days = std::max(1, p.GetInt("days"));
  int promotions = 0, rejections = 0;
  for (int d = 0; d < num_days; ++d) {
    obs::MetricsSnapshot day_before;
    if (registry) day_before = registry->Snapshot();
    repo.AddDay(d, gen.GenerateDay(d)).Check();
    auto report = driver.OnDayCompleted(&repo, d);
    if (!report.ok()) {
      std::fprintf(stderr, "lifecycle day %d: %s\n", d,
                   report.status().ToString().c_str());
      return 1;
    }
    if (report->served) {
      std::printf("lifecycle day %d: %d jobs, saving %.1f%%, exec R^2 %.3f, "
                  "model age %d\n",
                  d, report->jobs, 100.0 * report->saving_fraction,
                  report->exec_r2, report->model_age_days);
    } else {
      std::printf("lifecycle day %d: %d jobs, not served (no deployed model)\n",
                  d, report->jobs);
    }
    if (report->retrained) {
      std::printf("  retrain (%s): candidate %08x cost %.4f vs incumbent %08x "
                  "cost %.4f -> %s\n",
                  report->reason.c_str(), report->candidate_checksum,
                  report->candidate_cost, report->incumbent_checksum,
                  report->incumbent_cost, report->verdict.c_str());
      if (report->verdict == "promoted") ++promotions;
      else ++rejections;
    }
    if (cfg.shadow && report->shadow_jobs > 0) {
      std::printf("  shadow: %d of %d job records differ\n",
                  report->shadow_differing, report->shadow_jobs);
    }
    if (registry) {
      metrics_file << obs::TelemetryLineJson(
                          obs::SnapshotDelta(day_before, registry->Snapshot()),
                          "day", d)
                   << "\n";
    }
  }
  std::printf("lifecycle: %d day(s), %zu retrain(s), %d promoted, %d rejected; "
              "serving %08x\n",
              num_days, driver.promotion_records().size(), promotions,
              rejections, driver.incumbent_checksum());
  std::fprintf(stderr, "artifacts in %s/ (promotion.log, day_reports.jsonl, "
               "current.phoebe)\n", out_dir.c_str());
  if (registry) {
    metrics_file << obs::TelemetryLineJson(registry->Snapshot(), "run", -1)
                 << "\n";
    metrics_file.close();
    std::fprintf(stderr, "wrote telemetry to %s\n", metrics_path.c_str());
  }
  return 0;
}

// SIGHUP = "reload your bundle", the classic daemon convention. The handler
// only flips a flag; the serve loop below does the actual (non-signal-safe)
// reload between WaitForShutdown polls.
volatile std::sig_atomic_t g_sighup_reload = 0;

void OnSighup(int) { g_sighup_reload = 1; }

int CmdServe(int argc, char** argv) {
  ArgParser p("phoebe_cli serve",
              "Long-running decision daemon over the framed socket protocol "
              "(see DESIGN.md 'Serving'). Reloads its bundle on SIGHUP or a "
              "client reload frame; in-flight requests keep the bundle they "
              "started with.");
  p.AddString("bundle", "", "trained bundle file to serve (required)");
  p.AddInt("port", 0, "TCP port on 127.0.0.1 (0 = pick an ephemeral port)");
  p.AddString("port-file", "", "write the bound port number to this file "
              "(how scripts find an ephemeral port)");
  p.AddInt("workers", 2, "decide worker threads");
  p.AddInt("max-batch", 16, "max requests coalesced into one decide batch");
  p.AddInt("queue-capacity", 256, "bounded request queue capacity (producers "
           "block when full; requests are never dropped)");
  p.AddBool("no-coalesce", "decide one request per worker wakeup "
            "(byte-identical responses, more wakeups)");
  p.AddString("metrics", "", "write a cumulative telemetry JSON line to this "
              "file on exit");
  p.AddDouble("max-seconds", 0.0, "exit after this long even without a "
              "shutdown request (0 = run until shutdown; a safety net for "
              "scripted runs)");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  const std::string bundle_path = p.GetString("bundle");
  if (bundle_path.empty()) {
    std::fprintf(stderr, "serve requires --bundle <file>\n");
    return 2;
  }

  std::unique_ptr<obs::MetricsRegistry> registry;
  const std::string metrics_path = p.GetString("metrics");
  if (!metrics_path.empty()) registry = std::make_unique<obs::MetricsRegistry>();

  auto bundle = core::PipelineBundle::LoadFromFile(bundle_path, registry.get());
  if (!bundle.ok()) {
    std::fprintf(stderr, "cannot serve '%s': %s\n", bundle_path.c_str(),
                 bundle.status().ToString().c_str());
    return 1;
  }

  serve::ServeConfig cfg;
  cfg.port = p.GetInt("port");
  cfg.num_workers = p.GetInt("workers");
  cfg.max_batch = p.GetInt("max-batch");
  cfg.queue_capacity = p.GetInt("queue-capacity");
  cfg.coalesce = !p.GetBool("no-coalesce");
  cfg.bundle_path = bundle_path;
  cfg.metrics = registry.get();
  if (Status st = cfg.Validate(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  serve::ServeServer server(*bundle, cfg);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "cannot start serve daemon: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "phoebe serve: listening on 127.0.0.1:%d (bundle %s, checksum "
               "%08x, %d worker(s))\n",
               server.port(), bundle_path.c_str(), server.bundle_checksum(),
               cfg.num_workers);

  const std::string port_file = p.GetString("port-file");
  if (!port_file.empty()) {
    std::ofstream f(port_file, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", port_file.c_str());
      server.Stop();
      return 1;
    }
    f << server.port() << "\n";
  }

  std::signal(SIGHUP, OnSighup);
  const double max_seconds = p.GetDouble("max-seconds");
  const auto started = std::chrono::steady_clock::now();
  while (true) {
    if (server.WaitForShutdown(0.25)) break;
    if (g_sighup_reload != 0) {
      g_sighup_reload = 0;
      auto checksum = server.Reload(bundle_path);
      if (!checksum.ok()) {
        // Keep serving the old bundle: a bad artifact on disk must never
        // take the daemon down.
        std::fprintf(stderr, "phoebe serve: SIGHUP reload of '%s' failed: %s\n",
                     bundle_path.c_str(), checksum.status().ToString().c_str());
      }
    }
    if (max_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                .count() >= max_seconds) {
      std::fprintf(stderr, "phoebe serve: --max-seconds %.1f reached, exiting\n",
                   max_seconds);
      break;
    }
  }
  server.Stop();
  std::fprintf(stderr, "phoebe serve: stopped after %lld reload(s)\n",
               static_cast<long long>(server.reload_count()));

  if (registry) {
    std::ofstream f(metrics_path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", metrics_path.c_str());
      return 1;
    }
    f << obs::TelemetryLineJson(registry->Snapshot(), "run", -1) << "\n";
    std::fprintf(stderr, "wrote telemetry to %s\n", metrics_path.c_str());
  }
  return 0;
}

int CmdServeClient(int argc, char** argv) {
  ArgParser p("phoebe_cli serve-client",
              "One-shot client for a running serve daemon.");
  p.AddInt("port", 0, "daemon port on 127.0.0.1 (required)");
  p.AddString("op", "ping", "operation: ping|decide|reload|shutdown");
  AddWorkloadFlags(p);
  p.AddInt("day", 0, "workload day of the job to decide");
  p.AddInt("job", 0, "job index within the day");
  p.AddString("objective", "temp", "optimization objective: temp|recovery");
  p.AddString("source", "ml_stacked",
              "cost source: truth|opt_est|constant|ml_sim|ml_stacked");
  p.AddInt("num-cuts", 1, "checkpoint cuts per job");
  p.AddString("reload-bundle", "", "bundle path for --op reload (empty = the "
              "path the daemon was started with)");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  const int port = p.GetInt("port");
  if (port <= 0) {
    std::fprintf(stderr, "serve-client requires --port <daemon port>\n");
    return 2;
  }
  serve::ServeClient client;
  if (Status st = client.Connect(port); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const std::string op = p.GetString("op");
  if (op == "ping") {
    if (Status st = client.Ping(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }
  if (op == "reload") {
    auto checksum = client.Reload(p.GetString("reload-bundle"));
    if (!checksum.ok()) {
      std::fprintf(stderr, "%s\n", checksum.status().ToString().c_str());
      return 1;
    }
    std::printf("reloaded %08x\n", *checksum);
    return 0;
  }
  if (op == "shutdown") {
    if (Status st = client.RequestShutdown(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("bye\n");
    return 0;
  }
  if (op == "decide") {
    auto objective = ParseObjective(p.GetString("objective"));
    if (!objective.ok()) {
      std::fprintf(stderr, "%s\n", objective.status().ToString().c_str());
      return 2;
    }
    core::DecideOptions options;
    options.objective = *objective;
    options.num_cuts = std::max(1, p.GetInt("num-cuts"));
    if (Status st = core::CostSourceFromToken(p.GetString("source"), &options.source);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    auto gen = MakeGen(p);
    auto jobs = gen.GenerateDay(p.GetInt("day"));
    int index = p.GetInt("job");
    if (index < 0 || static_cast<size_t>(index) >= jobs.size()) {
      std::fprintf(stderr, "day %d has %zu jobs; --job out of range\n",
                   p.GetInt("day"), jobs.size());
      return 1;
    }
    std::string raw_payload;
    auto response =
        client.Decide(jobs[static_cast<size_t>(index)], options, &raw_payload);
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
      return 1;
    }
    // The raw payload IS the decision, in the shard-blob job record format
    // prefixed by the answering bundle's checksum — printable and diffable
    // against fleet shard artifacts from the same bundle.
    std::fputs(raw_payload.c_str(), stdout);
    return 0;
  }
  std::fprintf(stderr, "--op expects ping|decide|reload|shutdown, got '%s'\n",
               op.c_str());
  return 2;
}

int CmdBacktest(int argc, char** argv) {
  ArgParser p("phoebe_cli backtest",
              "Compare checkpoint-selection approaches on a held-out day.");
  AddTrainFlags(p);
  p.AddString("objective", "temp", "optimization objective: temp|recovery");
  int code;
  if (!ParseOrReport(p, argc, argv, &code)) return code;

  auto objective = ParseObjective(p.GetString("objective"));
  if (!objective.ok()) {
    std::fprintf(stderr, "%s\n", objective.status().ToString().c_str());
    return 2;
  }
  Trained t = TrainFromArgs(p);
  // A failure-storm scenario shortens the effective MTBF on the held-out
  // day, so the recovery comparison runs under the storm it describes.
  const scenario::ScenarioSpec scen =
      ResolveScenarioOrExit(p.GetString("scenario"));
  core::BackTester tester(&t.phoebe.engine(),
                          12 * 3600.0 / scen.MtbfFactor(t.train_days));
  const auto& jobs = t.repo.Day(t.train_days);
  auto stats = t.repo.StatsBefore(t.train_days);
  bool recovery = *objective == core::Objective::kRecovery;

  auto result = recovery ? tester.EvaluateRecovery(jobs, stats)
                         : tester.EvaluateTempStorage(jobs, stats);
  result.status().Check();
  std::printf("%s back-test over %zu jobs (day %d)\n",
              recovery ? "recovery" : "temp-storage", jobs.size(), t.train_days);
  TablePrinter tab({"approach", "mean saving %", "stddev"});
  for (core::Approach a : core::AllApproaches()) {
    auto& s = (*result)[a];
    tab.AddRow({core::ApproachName(a), StrFormat("%.1f", 100 * s.mean()),
                StrFormat("%.1f", 100 * s.stddev())});
  }
  tab.Print();
  return 0;
}

void Usage() {
  std::fputs(
      "phoebe_cli <command> [--flag value ...]\n"
      "\n"
      "commands (each supports --help for its full flag list):\n"
      "  generate     synthetic workload -> per-stage telemetry CSV\n"
      "  inspect      one job's graph, metrics, and schedule\n"
      "  train        train the pipeline; --out saves a versioned bundle\n"
      "  bundle-info  inspect a saved bundle (version, checksum, config)\n"
      "  decide       checkpoint decision for one job, explained\n"
      "  backtest     compare checkpoint approaches on a held-out day\n"
      "  fleet        day-level driver: threads, budget, template cache,\n"
      "               --shard/--merge process split, --metrics telemetry\n"
      "  fleet-ab     differential A/B: N arms (bundles, --arm configs, --arm\n"
      "               scenario= workloads), paired comparison reports\n"
      "  lifecycle    continuous-operation loop: drift-aware retraining,\n"
      "               canary backtest promotion, shadow diffing (--out-dir)\n"
      "  serve        long-running decision daemon (framed socket protocol,\n"
      "               hot bundle reload on SIGHUP / reload frame)\n"
      "  serve-client one-shot client: ping, decide, reload, shutdown\n"
      "  dot          Graphviz of the job + cut\n"
      "  explain      why this cut was chosen (--json for machine output)\n"
      "  trace-export / trace-info   text trace round trip\n"
      "  save-models  train, then persist models to a directory\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(argc, argv);
  if (cmd == "inspect") return CmdInspect(argc, argv);
  if (cmd == "train") return CmdTrain(argc, argv);
  if (cmd == "bundle-info") return CmdBundleInfo(argc, argv);
  if (cmd == "decide") return CmdDecide(argc, argv);
  if (cmd == "backtest") return CmdBacktest(argc, argv);
  if (cmd == "fleet") return CmdFleet(argc, argv);
  if (cmd == "fleet-ab") return CmdFleetAb(argc, argv);
  if (cmd == "lifecycle") return CmdLifecycle(argc, argv);
  if (cmd == "serve") return CmdServe(argc, argv);
  if (cmd == "serve-client") return CmdServeClient(argc, argv);
  if (cmd == "dot") return CmdDot(argc, argv);
  if (cmd == "explain") return CmdExplain(argc, argv);
  if (cmd == "trace-export") return CmdTraceExport(argc, argv);
  if (cmd == "trace-info") return CmdTraceInfo(argc, argv);
  if (cmd == "save-models") return CmdSaveModels(argc, argv);
  if (cmd == "--help" || cmd == "help") {
    Usage();
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  Usage();
  return 2;
}
