#!/usr/bin/env python3
"""Compare a bench JSON document against a checked-in snapshot.

Guards the perf trajectory: the nightly CI regenerates each bench's JSON and
diffs it against the snapshot under bench/snapshots/, failing on any metric
that regressed by more than the tolerance (default 10%). Correctness booleans
in the documents (byte-identity gates) must never flip to false, regardless
of tolerance.

Usage:
  tools/bench_compare.py --snapshot bench/snapshots/BENCH_decide_throughput.json \
      --current /tmp/current.json [--tolerance 0.10]

Exit status: 0 = no regression, 1 = regression (or flipped gate), 2 = usage /
input error. Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys

# Per-bench comparison plan: which array to walk, how to key its entries,
# and which metrics to compare in which direction. "higher" metrics fail
# when current < snapshot * (1 - tol); "lower" metrics fail when
# current > snapshot * (1 + tol).
PLANS = {
    "decide_throughput": {
        "series": [
            {
                "path": "series",
                "key": "config",
                "metrics": [
                    ("decisions_per_sec", "higher"),
                    ("stage_scorings_per_sec", "higher"),
                ],
            }
        ],
        "gates": ["batch_reports_identical", "exact_mode_reports_identical"],
    },
    "ab_harness": {
        "series": [
            {
                "path": "series",
                "key": "threads",
                "metrics": [("seconds", "lower")],
                "gates": ["paired_identical_to_serial"],
            }
        ],
        "gates": ["arm_reports_identical_to_standalone"],
    },
    "scenario_sweep": {
        "series": [
            {
                "path": "series",
                "key": "scenario",
                "metrics": [
                    ("cost", "lower"),
                    ("canary_cost", "lower"),
                    ("cache_hit_rate", "higher"),
                    ("exec_r2", "higher"),
                ],
                "gates": ["deterministic"],
            }
        ],
        "gates": ["all_deterministic"],
    },
    "fleet_scale": {
        "series": [
            {
                "path": "series",
                "key": "threads",
                "metrics": [("seconds", "lower")],
                "gates": ["identical_to_serial"],
            },
            {
                "path": "process_series",
                "key": "processes",
                "metrics": [("decide_seconds", "lower"), ("merge_seconds", "lower")],
                "gates": ["identical_to_sequential"],
            },
        ],
        "gates": [],
    },
}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def index_series(doc, path, key):
    out = {}
    for entry in doc.get(path, []):
        if key in entry:
            out[entry[key]] = entry
    return out


def compare(snapshot, current, tolerance):
    """Returns (regressions, notes): failure strings and informational lines."""
    bench = snapshot.get("bench")
    if bench != current.get("bench"):
        return ([f"bench kind mismatch: snapshot={bench!r} current={current.get('bench')!r}"], [])
    plan = PLANS.get(bench)
    if plan is None:
        return ([f"no comparison plan for bench kind {bench!r}"], [])

    regressions, notes = [], []

    for gate in plan["gates"]:
        if snapshot.get(gate) and not current.get(gate):
            regressions.append(f"correctness gate '{gate}' flipped to false")

    for spec in plan["series"]:
        snap_rows = index_series(snapshot, spec["path"], spec["key"])
        cur_rows = index_series(current, spec["path"], spec["key"])
        for key, snap_row in snap_rows.items():
            cur_row = cur_rows.get(key)
            label = f"{spec['path']}[{spec['key']}={key}]"
            if cur_row is None:
                regressions.append(f"{label}: missing from current run")
                continue
            for gate in spec.get("gates", []):
                if snap_row.get(gate) and not cur_row.get(gate):
                    regressions.append(f"{label}: gate '{gate}' flipped to false")
            for metric, direction in spec["metrics"]:
                if metric not in snap_row:
                    continue
                base, now = snap_row[metric], cur_row.get(metric)
                if now is None:
                    regressions.append(f"{label}: metric '{metric}' missing")
                    continue
                if base == 0:
                    continue
                change = (now - base) / base
                line = f"{label} {metric}: {base:.6g} -> {now:.6g} ({change:+.1%})"
                bad = (direction == "higher" and now < base * (1.0 - tolerance)) or (
                    direction == "lower" and now > base * (1.0 + tolerance)
                )
                if bad:
                    regressions.append(line + f"  [> {tolerance:.0%} regression]")
                else:
                    notes.append(line)
    return regressions, notes


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--snapshot", required=True, help="checked-in baseline JSON")
    ap.add_argument("--current", required=True, help="freshly generated bench JSON")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional regression per metric (default 0.10)",
    )
    args = ap.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        print("bench_compare: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2

    regressions, notes = compare(load(args.snapshot), load(args.current), args.tolerance)
    for line in notes:
        print(f"  ok   {line}")
    for line in regressions:
        print(f"  FAIL {line}")
    if regressions:
        print(
            f"bench_compare: {len(regressions)} regression(s) vs {args.snapshot} "
            f"(tolerance {args.tolerance:.0%})"
        )
        return 1
    print(f"bench_compare: no regression vs {args.snapshot} (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
