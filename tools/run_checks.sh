#!/usr/bin/env bash
# Full local verification: build + test the Release config, the
# Debug + ASan/UBSan config (PHOEBE_SANITIZE=ON), and a TSan config
# (PHOEBE_SANITIZE=thread) running the parallel fleet tests. Mirrors
# .github/workflows/ci.yml.
#
# Usage: tools/run_checks.sh [extra ctest args...]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1" name="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$ROOT/$dir" -S "$ROOT" "$@"
  echo "=== [$name] build ==="
  cmake --build "$ROOT/$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  (cd "$ROOT/$dir" && ctest --output-on-failure -j "$JOBS" "${EXTRA_CTEST_ARGS[@]}")
}

EXTRA_CTEST_ARGS=("$@")

run_config build-release "release" -DCMAKE_BUILD_TYPE=Release

# Fail fast on any sanitizer report instead of continuing.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
run_config build-asan "asan+ubsan" -DCMAKE_BUILD_TYPE=Debug -DPHOEBE_SANITIZE=ON

# TSan over the concurrent paths: the thread-pool tests, the parallel
# fleet driver (which exercises the const-after-Train pipeline invariant
# across worker threads), the metrics registry (concurrent lock-free
# updates), the metrics-on fleet byte-neutrality suite, and the serve
# daemon's client/reload races (readers, workers, and hot bundle swaps on
# live traffic), the lifecycle determinism suite (full retrain/promote
# loops at 4 decision threads), and the per-worker decide-scratch arenas
# (FleetScratch: warm-arena reuse across threads must stay byte-neutral),
# and the A/B harness (FleetAb: per-arm decide fan-out on the shared day
# context must stay byte-identical across thread counts), and the scenario
# determinism matrix (ScenarioDeterminism: every hostile-workload preset's
# fleet reports across threads x cache x shards).
# The full suite under TSan is too slow for a local gate, and the
# serial-only tests cannot race by construction.
export TSAN_OPTIONS="halt_on_error=1"
EXTRA_CTEST_ARGS=(-R "ThreadPool|FleetParallel|FleetFixture|ObsRegistry|FleetMetrics|ServeConcurrency|LifecycleDeterminism|FleetScratch|FleetAb|ScenarioDeterminism" "$@")
run_config build-tsan "tsan" -DCMAKE_BUILD_TYPE=Debug -DPHOEBE_SANITIZE=thread

echo "All checks passed (release + asan/ubsan + tsan fleet tests)."
