// Section 6.1 ablations:
//   * stage-type-specific GBDTs vs one general GBDT vs stage-type-as-feature
//     (paper: output-size R^2 drops 0.91 -> 0.84 and exec-time 0.85 -> 0.72
//     when stage type becomes a plain feature);
//   * DNN benchmark with text features (paper: 0.84 exec / 0.89 output —
//     slightly worse than the GBDTs, far slower to train);
//   * perfect-cardinality inputs (paper: R^2 improves only by 0.04-0.05,
//     showing the models already correct input biases).
#include <chrono>
#include <cstdio>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/predictors.h"
#include "bench_util.h"

using namespace phoebe;

namespace {

struct EvalResult {
  double r2_exec = 0.0;
  double r2_out = 0.0;
  double train_seconds = 0.0;
};

EvalResult Evaluate(const bench::BenchEnv& env, const core::PredictorConfig& cfg,
                    const std::vector<workload::JobInstance>& train_jobs,
                    const std::vector<workload::JobInstance>& test_jobs,
                    const telemetry::HistoricStats& train_stats,
                    const telemetry::HistoricStats& test_stats) {
  EvalResult r;
  auto t0 = std::chrono::steady_clock::now();
  core::StageCostPredictor exec(cfg, core::Target::kExecSeconds);
  core::PredictorConfig size_cfg = cfg;
  size_cfg.gbdt.seed = cfg.gbdt.seed + 1;
  core::StageCostPredictor size(size_cfg, core::Target::kOutputBytes);
  exec.Train(train_jobs, train_stats).Check();
  size.Train(train_jobs, train_stats).Check();
  r.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<double> et, ep, ot, op;
  for (const auto& job : test_jobs) {
    auto e = exec.PredictJob(job, test_stats);
    auto o = size.PredictJob(job, test_stats);
    for (size_t i = 0; i < job.graph.num_stages(); ++i) {
      et.push_back(job.truth[i].exec_seconds);
      ep.push_back(e[i]);
      ot.push_back(job.truth[i].output_bytes);
      op.push_back(o[i]);
    }
  }
  r.r2_exec = RSquared(et, ep);
  r.r2_out = RSquared(ot, op);
  return r;
}

/// Clone jobs with the estimate channel's cardinalities replaced by truth
/// ("perfect cardinality estimation as inputs", §6.1).
std::vector<workload::JobInstance> PerfectCardinality(
    const std::vector<workload::JobInstance>& jobs,
    const workload::WorkloadGenerator& gen) {
  std::vector<workload::JobInstance> out = jobs;
  for (auto& job : out) {
    double row_bytes =
        gen.templates()[static_cast<size_t>(job.template_id)].row_bytes;
    for (size_t i = 0; i < job.graph.num_stages(); ++i) {
      job.est[i].est_output_bytes = job.truth[i].output_bytes;
      job.est[i].est_cardinality = job.truth[i].output_bytes / row_bytes;
      job.est[i].est_input_cardinality = job.truth[i].input_bytes / row_bytes;
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::Banner("Section 6.1 (ablations)",
                "Model-architecture and input ablations for the stage cost models.");

  auto env = bench::MakeEnv(60, 5, 1);
  std::vector<workload::JobInstance> train_jobs;
  for (int d = 0; d < env.train_days; ++d) {
    for (const auto& j : env.repo.Day(d)) train_jobs.push_back(j);
  }
  const auto& test_jobs = env.TestDay(0);
  auto train_stats = env.repo.StatsBefore(env.train_days - 1);
  auto test_stats = env.StatsForTestDay(0);

  TablePrinter table(
      {"model", "R^2 exec", "R^2 output", "train s", "paper exec", "paper output"});

  core::PredictorConfig per_type;  // defaults: per-stage-type GBDT
  per_type.gbdt.num_trees = 80;
  auto a = Evaluate(env, per_type, train_jobs, test_jobs, train_stats, test_stats);
  table.AddRow({"GBDT per stage type", StrFormat("%.3f", a.r2_exec),
                StrFormat("%.3f", a.r2_out), StrFormat("%.2f", a.train_seconds),
                "0.85", "0.91"});

  core::PredictorConfig general = per_type;
  general.kind = core::ModelKind::kGbdtGeneral;
  auto b = Evaluate(env, general, train_jobs, test_jobs, train_stats, test_stats);
  table.AddRow({"GBDT general", StrFormat("%.3f", b.r2_exec),
                StrFormat("%.3f", b.r2_out), StrFormat("%.2f", b.train_seconds), "-",
                "-"});

  core::PredictorConfig as_feature = general;
  as_feature.features.stage_type_id = true;
  auto c = Evaluate(env, as_feature, train_jobs, test_jobs, train_stats, test_stats);
  table.AddRow({"GBDT, stage-type as feature", StrFormat("%.3f", c.r2_exec),
                StrFormat("%.3f", c.r2_out), StrFormat("%.2f", c.train_seconds),
                "0.72", "0.84"});

  core::PredictorConfig dnn;
  dnn.kind = core::ModelKind::kMlpGeneral;
  dnn.features.text = true;  // word-embedding role: hashed char n-grams
  dnn.mlp.hidden = {64, 64};
  dnn.mlp.epochs = 30;
  auto d = Evaluate(env, dnn, train_jobs, test_jobs, train_stats, test_stats);
  table.AddRow({"DNN + text features", StrFormat("%.3f", d.r2_exec),
                StrFormat("%.3f", d.r2_out), StrFormat("%.2f", d.train_seconds), "0.84",
                "0.89"});

  auto perfect_train = PerfectCardinality(train_jobs, *env.gen);
  auto perfect_test = PerfectCardinality(test_jobs, *env.gen);
  auto e = Evaluate(env, per_type, perfect_train, perfect_test, train_stats, test_stats);
  table.AddRow({"GBDT per type + perfect card.", StrFormat("%.3f", e.r2_exec),
                StrFormat("%.3f", e.r2_out), StrFormat("%.2f", e.train_seconds),
                "+0.04-0.05", "+0.04-0.05"});

  table.Print();
  std::printf("\nperfect-cardinality delta: exec %+.3f, output %+.3f "
              "(paper: +0.04-0.05 — models already absorb input bias)\n",
              e.r2_exec - a.r2_exec, e.r2_out - a.r2_out);
  std::printf("DNN vs GBDT training time: %.1fx slower "
              "(paper: ~40 h vs minutes)\n",
              d.train_seconds / std::max(1e-9, a.train_seconds));
  return 0;
}
