// Figure 15 / §6.4 production test: latency and IO impact of materializing
// the chosen checkpoints. Paper: 1000+ random jobs -> median latency +1.8%;
// 256 large (>1 h) jobs -> median latency +2.6%, some IO increases >20%;
// on large jobs, 12.3% of data checkpointed and 48.6% of temp storage saved.
#include <cstdio>

#include "cluster/impact.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "bench_util.h"

using namespace phoebe;

int main() {
  bench::Banner("Figure 15 / Section 6.4",
                "Latency and IO impact of checkpoint materialization "
                "(all jobs vs large jobs).");

  auto env = bench::MakeEnv(/*num_templates=*/60, /*train_days=*/5, /*test_days=*/2);
  core::BackTester tester(&env.phoebe->engine(), bench::kMtbfSeconds);
  cluster::ClusterConfig ccfg;

  struct Cohort {
    std::vector<double> latency_pct, io_pct, ckpt_frac, temp_saved;
  };
  Cohort all, large;
  const double kLargeRuntime = 400.0;  // "large" in this scaled workload (~top 15%)

  for (int k = 0; k < env.test_days; ++k) {
    auto stats = env.StatsForTestDay(k);
    for (const auto& job : env.TestDay(k)) {
      if (job.graph.num_stages() < 2) continue;
      auto cut = tester.ChooseCut(job, core::Approach::kMlStacked,
                                  core::Objective::kTempStorage, stats);
      cut.status().Check();
      auto impact = cluster::EvaluateImpact(job, cut->cut, ccfg);
      Cohort* cohorts[2] = {&all,
                            job.JobRuntime() > kLargeRuntime ? &large : nullptr};
      for (Cohort* c : cohorts) {
        if (!c) continue;
        c->latency_pct.push_back(100.0 * impact.latency_increase);
        c->io_pct.push_back(100.0 * impact.io_increase);
        c->ckpt_frac.push_back(100.0 * impact.checkpointed_fraction);
        c->temp_saved.push_back(100.0 * impact.temp_saving_fraction);
      }
    }
  }

  auto row = [&](TablePrinter* t, const char* name, std::vector<double> v,
                 const char* paper) {
    t->AddRow({name, StrFormat("%.2f", Median(v)), StrFormat("%.2f", Quantile(v, 0.9)),
               StrFormat("%.2f", Quantile(v, 0.99)), paper});
  };

  std::printf("--- all jobs (%zu) ---\n", all.latency_pct.size());
  TablePrinter ta({"metric", "median", "p90", "p99", "paper"});
  row(&ta, "latency increase %", all.latency_pct, "1.8 (median)");
  row(&ta, "IO time increase %", all.io_pct, "-");
  ta.Print();

  std::printf("\n--- large jobs (%zu, runtime > %.0fs) ---\n", large.latency_pct.size(),
              kLargeRuntime);
  TablePrinter tl({"metric", "median", "p90", "p99", "paper"});
  row(&tl, "latency increase %", large.latency_pct, "2.6 (median)");
  row(&tl, "IO time increase %", large.io_pct, "some >20");
  row(&tl, "data checkpointed %", large.ckpt_frac, "12.3 (mean)");
  row(&tl, "temp storage saved %", large.temp_saved, "48.6 (mean)");
  tl.Print();

  RunningStats ck, ts;
  for (double v : large.ckpt_frac) ck.Add(v);
  for (double v : large.temp_saved) ts.Add(v);
  std::printf("\nlarge jobs, means: data checkpointed %.1f%% (paper 12.3%%), "
              "temp saved %.1f%% (paper 48.6%%)\n",
              ck.mean(), ts.mean());
  return 0;
}
