// Figure 9: end-to-end job runtime prediction accuracy, QError distribution.
// Phoebe (ML stage costs composed through the schedule simulator) vs a
// CLEO-style baseline that composes the raw optimizer estimates. Paper: the
// baseline has a long QError tail concentrated on long-running jobs.
#include <algorithm>
#include <cstdio>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/simulator.h"
#include "bench_util.h"

using namespace phoebe;

int main() {
  bench::Banner("Figure 9",
                "QError of end-to-end job runtime prediction: Phoebe vs "
                "CLEO-style estimate composition.");

  auto env = bench::MakeEnv(60, 5, 1);
  const auto& jobs = env.TestDay(0);
  auto stats = env.StatsForTestDay(0);

  std::vector<double> q_phoebe, q_cleo;
  std::vector<std::pair<double, double>> cleo_by_runtime;  // (runtime, qerror)
  for (const auto& job : jobs) {
    double truth = job.JobRuntime();
    if (truth <= 0) continue;

    auto exec_ml = env.phoebe->exec_predictor().PredictJob(job, stats);
    auto sim_ml = core::SimulateSchedule(job.graph, exec_ml);
    sim_ml.status().Check();
    q_phoebe.push_back(QError(truth, sim_ml->job_end));

    std::vector<double> exec_est(job.graph.num_stages());
    for (size_t i = 0; i < exec_est.size(); ++i) {
      exec_est[i] = std::max(0.0, job.est[i].est_exclusive_cost);
    }
    auto sim_est = core::SimulateSchedule(job.graph, exec_est);
    sim_est.status().Check();
    double q = QError(truth, sim_est->job_end);
    q_cleo.push_back(q);
    cleo_by_runtime.emplace_back(truth, q);
  }

  TablePrinter table({"percentile", "Phoebe QError", "CLEO-style QError"});
  for (double p : {0.5, 0.75, 0.9, 0.95, 0.99}) {
    table.AddRow(StrFormat("p%.0f", 100 * p),
                 {Quantile(q_phoebe, p), Quantile(q_cleo, p)});
  }
  table.AddRow("max", {Quantile(q_phoebe, 1.0), Quantile(q_cleo, 1.0)});
  table.Print();

  // The paper notes the baseline's long tail sits on long-running jobs
  // (">66% longer on average than all the jobs").
  std::sort(cleo_by_runtime.begin(), cleo_by_runtime.end(),
            [](auto& a, auto& b) { return a.second > b.second; });
  size_t tail = std::max<size_t>(1, cleo_by_runtime.size() / 20);  // worst 5%
  RunningStats tail_rt, all_rt;
  for (size_t i = 0; i < cleo_by_runtime.size(); ++i) {
    if (i < tail) tail_rt.Add(cleo_by_runtime[i].first);
    all_rt.Add(cleo_by_runtime[i].first);
  }
  std::printf("\nmean runtime of the worst-5%%-QError jobs (CLEO-style): %.0fs vs "
              "%.0fs overall (%+.0f%%; paper: >66%% longer)\n",
              tail_rt.mean(), all_rt.mean(),
              100.0 * (tail_rt.mean() / all_rt.mean() - 1.0));
  return 0;
}
