// Figure 14: distribution of expected recovery-time saving for failed jobs,
// per selection algorithm, over one day. Paper averages: Random 36%,
// Mid-Point 41%, Phoebe 64%, Optimal 73%.
#include <cstdio>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "cluster/failure.h"
#include "bench_util.h"

using namespace phoebe;

int main() {
  bench::Banner("Figure 14",
                "Expected recovery-time saving per job (1 back-testing day); "
                "distribution summary per algorithm.");

  auto env = bench::MakeEnv(/*num_templates=*/60, /*train_days=*/5, /*test_days=*/1);
  core::BackTester tester(&env.phoebe->engine(), bench::kMtbfSeconds);
  const auto& jobs = env.TestDay(0);
  auto stats = env.StatsForTestDay(0);

  const std::vector<core::Approach> algos = {
      core::Approach::kRandom, core::Approach::kMidPoint, core::Approach::kMlStacked,
      core::Approach::kOptimal};
  const std::map<core::Approach, const char*> paper = {
      {core::Approach::kRandom, "36"},
      {core::Approach::kMidPoint, "41"},
      {core::Approach::kMlStacked, "64 (Phoebe)"},
      {core::Approach::kOptimal, "73"},
  };

  std::map<core::Approach, std::vector<double>> savings;
  for (const auto& job : jobs) {
    if (job.graph.num_stages() < 2) continue;
    cluster::FailureModel fm(job, bench::kMtbfSeconds);
    for (core::Approach a : algos) {
      auto cut = tester.ChooseCut(job, a, core::Objective::kRecovery, stats);
      cut.status().Check();
      savings[a].push_back(100.0 * fm.RestartSavingFraction(cut->cut));
    }
  }

  TablePrinter table({"algorithm", "mean %", "p25 %", "median %", "p75 %", "paper %"});
  for (core::Approach a : algos) {
    RunningStats s;
    for (double v : savings[a]) s.Add(v);
    table.AddRow({core::ApproachName(a), StrFormat("%.1f", s.mean()),
                  StrFormat("%.1f", Quantile(savings[a], 0.25)),
                  StrFormat("%.1f", Median(savings[a])),
                  StrFormat("%.1f", Quantile(savings[a], 0.75)), paper.at(a)});
  }
  table.Print();
  std::printf("\n(%zu jobs; shape check: Random < Mid-Point < Phoebe <= Optimal)\n",
              savings[core::Approach::kRandom].size());
  return 0;
}
