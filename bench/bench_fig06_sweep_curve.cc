// Figure 6: potential temp-data saving as a function of the checkpoint
// timestamp, for one job. The curve rises while accumulated temp bytes grow
// faster than the remaining TTL shrinks; the optimizer picks its peak. The
// recovery analogue (§5.3) — failure probability and expected recovery
// saving per cut time — is printed alongside.
#include <algorithm>
#include <cstdio>

#include "common/strings.h"
#include "common/table.h"
#include "core/checkpoint.h"
#include "bench_util.h"

using namespace phoebe;

int main() {
  bench::Banner("Figure 6",
                "Potential saving as a function of the checkpoint time, for "
                "one representative job (true costs).");

  auto env = bench::MakeEnv(40, 0, 1, /*seed=*/13);
  // Pick a mid-sized job: a readable number of sweep rows.
  const workload::JobInstance* job = nullptr;
  for (const auto& j : env.TestDay(0)) {
    if (j.graph.num_stages() >= 12 && j.graph.num_stages() <= 18) {
      job = &j;
      break;
    }
  }
  PHOEBE_CHECK(job != nullptr);
  auto costs = env.phoebe->BuildCosts(*job, core::CostSource::kTruth);
  costs.status().Check();

  auto sweep = core::TempStorageSweep(job->graph, *costs);
  sweep.status().Check();
  auto best = core::OptimizeTempStorage(job->graph, *costs);
  best.status().Check();

  std::printf("job '%s': %zu stages, runtime %s\n\n", job->job_name.c_str(),
              job->graph.num_stages(), HumanDuration(job->JobRuntime()).c_str());
  TablePrinter t({"cut time s", "stage", "temp in use", "min TTL s",
                  "saving GB*h", "peak"});
  double best_obj = 0.0;
  for (const auto& p : *sweep) best_obj = std::max(best_obj, p.objective);
  for (const auto& p : *sweep) {
    bool is_peak = p.objective == best_obj && best_obj > 0.0;
    t.AddRow({StrFormat("%.1f", p.end_time),
              job->graph.stage(p.stage).name,
              HumanBytes(p.cum_bytes),
              StrFormat("%.1f", p.min_ttl),
              StrFormat("%.3f", p.objective / 1e9 / 3600.0),
              is_peak ? "<== cut here" : ""});
  }
  t.Print();
  std::printf("\nchosen cut saves %.3f GB*h of temp storage, persisting %s "
              "to the global store\n(paper: the curve peaks where accumulated "
              "bytes x remaining lifetime is largest)\n",
              best->objective / 1e9 / 3600.0, HumanBytes(best->global_bytes).c_str());
  return 0;
}
