// Serve-latency bench: closed-loop clients against an in-process
// `phoebe serve` daemon over real loopback sockets. For each client-thread
// count the bench reports QPS and the p50/p99/p999 request latency — the
// number a deployment needs before putting the daemon on a decide path.
//
// Two gates make this bench double as a regression check (the nightly CI
// job fails on a nonzero exit):
//   1. Every response must carry the serving bundle's checksum and parse
//      cleanly — zero failed or dropped requests at every thread count.
//   2. The final series re-runs the top thread count while another thread
//      hot-reloads the same bundle in a loop. Latency may move; correctness
//      may not: zero failures, zero responses from a "different" bundle.
// --metrics-out writes the server-side telemetry JSONL (queue depth,
// batch-size histogram, request latency) from the instrumented runs.
//
// Usage: bench_serve_latency [--requests N] [--max-batch B] [--no-coalesce]
//                            [--metrics-out FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "core/bundle.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"

namespace phoebe::bench {
namespace {

int ArgInt(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

const char* ArgStr(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool ArgFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Nearest-rank percentile over a sorted latency vector (seconds).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

struct SeriesResult {
  int threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  int64_t failures = 0;
  int64_t wrong_checksum = 0;
  int64_t reloads = 0;  // only nonzero for the reload series
};

/// One closed-loop series: `threads` clients, each issuing
/// `requests_per_thread` decides back to back on its own connection.
/// When `reload` is set, a reloader thread hot-swaps the same artifact in a
/// loop for the duration of the traffic.
SeriesResult RunSeries(serve::ServeServer& server,
                       const std::vector<workload::JobInstance>& jobs,
                       const std::string& bundle_path, int threads,
                       int requests_per_thread, bool reload) {
  SeriesResult result;
  result.threads = threads;
  const uint32_t expected_checksum = server.bundle_checksum();
  const int64_t reloads_before = server.reload_count();

  std::vector<std::vector<double>> latencies(static_cast<size_t>(threads));
  std::atomic<int64_t> failures{0};
  std::atomic<int64_t> wrong_checksum{0};
  std::atomic<bool> traffic_done{false};

  std::thread reloader;
  if (reload) {
    reloader = std::thread([&] {
      while (!traffic_done.load(std::memory_order_acquire)) {
        auto checksum = server.Reload(bundle_path);
        if (!checksum.ok() || *checksum != expected_checksum) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      serve::ServeClient client;
      if (!client.Connect(server.port()).ok()) {
        failures.fetch_add(requests_per_thread);
        return;
      }
      auto& lat = latencies[static_cast<size_t>(t)];
      lat.reserve(static_cast<size_t>(requests_per_thread));
      for (int r = 0; r < requests_per_thread; ++r) {
        const auto& job =
            jobs[static_cast<size_t>(t * 31 + r) % jobs.size()];
        auto q0 = std::chrono::steady_clock::now();
        auto response = client.Decide(job, {});
        auto q1 = std::chrono::steady_clock::now();
        if (!response.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (response->bundle_checksum != expected_checksum) {
          wrong_checksum.fetch_add(1);
        }
        lat.push_back(std::chrono::duration<double>(q1 - q0).count());
      }
    });
  }
  for (auto& c : clients) c.join();
  auto t1 = std::chrono::steady_clock::now();
  traffic_done.store(true, std::memory_order_release);
  if (reloader.joinable()) reloader.join();

  std::vector<double> all;
  for (const auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());

  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.qps = static_cast<double>(all.size()) / result.seconds;
  result.p50_ms = 1e3 * Percentile(all, 0.50);
  result.p99_ms = 1e3 * Percentile(all, 0.99);
  result.p999_ms = 1e3 * Percentile(all, 0.999);
  result.failures = failures.load();
  result.wrong_checksum = wrong_checksum.load();
  result.reloads = server.reload_count() - reloads_before;
  return result;
}

int Run(int argc, char** argv) {
  const int requests_per_thread = ArgInt(argc, argv, "--requests", 400);
  const int max_batch = ArgInt(argc, argv, "--max-batch", 16);
  const bool coalesce = !ArgFlag(argc, argv, "--no-coalesce");
  const std::string metrics_out = ArgStr(argc, argv, "--metrics-out", "");

  std::fprintf(stderr, "training pipeline...\n");
  BenchEnv env = MakeEnv(/*num_templates=*/30, /*train_days=*/3, /*test_days=*/1);
  const std::vector<workload::JobInstance>& jobs = env.TestDay(0);

  const std::string bundle_path =
      (std::filesystem::temp_directory_path() / "phoebe_bench_serve.bundle")
          .string();
  env.phoebe->SaveBundle(bundle_path).Check();
  auto bundle = core::PipelineBundle::LoadFromFile(bundle_path);
  bundle.status().Check();

  std::unique_ptr<obs::MetricsRegistry> registry;
  if (!metrics_out.empty()) registry = std::make_unique<obs::MetricsRegistry>();

  const std::vector<int> thread_counts = {1, 2, 4};
  std::vector<SeriesResult> series;
  for (int threads : thread_counts) {
    serve::ServeConfig cfg;
    cfg.num_workers = threads;
    cfg.max_batch = max_batch;
    cfg.coalesce = coalesce;
    cfg.bundle_path = bundle_path;
    cfg.metrics = registry.get();
    serve::ServeServer server(*bundle, cfg);
    server.Start().Check();
    series.push_back(
        RunSeries(server, jobs, bundle_path, threads, requests_per_thread,
                  /*reload=*/false));
    server.Stop();
    const SeriesResult& r = series.back();
    std::fprintf(stderr,
                 "threads %d: %.0f qps, p50 %.3f ms, p99 %.3f ms, p999 %.3f ms\n",
                 r.threads, r.qps, r.p50_ms, r.p99_ms, r.p999_ms);
  }

  // The reload gate: top thread count with a concurrent hot-reload loop.
  SeriesResult reload_series;
  {
    serve::ServeConfig cfg;
    cfg.num_workers = thread_counts.back();
    cfg.max_batch = max_batch;
    cfg.coalesce = coalesce;
    cfg.bundle_path = bundle_path;
    cfg.metrics = registry.get();
    serve::ServeServer server(*bundle, cfg);
    server.Start().Check();
    reload_series = RunSeries(server, jobs, bundle_path, thread_counts.back(),
                              requests_per_thread, /*reload=*/true);
    server.Stop();
    std::fprintf(stderr,
                 "reload series: %.0f qps through %lld reload(s), p99 %.3f ms\n",
                 reload_series.qps,
                 static_cast<long long>(reload_series.reloads),
                 reload_series.p99_ms);
  }
  std::filesystem::remove(bundle_path);

  if (registry) {
    std::ofstream tele(metrics_out, std::ios::binary);
    if (!tele) {
      std::fprintf(stderr, "cannot open '%s'\n", metrics_out.c_str());
      return 1;
    }
    tele << obs::TelemetryLineJson(registry->Snapshot(), "run", -1) << "\n";
    std::fprintf(stderr, "wrote telemetry to %s\n", metrics_out.c_str());
  }

  JsonWriter json;
  json.BeginObject();
  json.KV("bench", "serve_latency");
  json.KV("requests_per_thread", requests_per_thread);
  json.KV("max_batch", max_batch);
  json.KV("coalesce", coalesce);
  json.Key("series").BeginArray();
  for (const SeriesResult& r : series) {
    json.BeginObject();
    json.KV("threads", r.threads);
    json.KV("qps", r.qps);
    json.KV("p50_ms", r.p50_ms);
    json.KV("p99_ms", r.p99_ms);
    json.KV("p999_ms", r.p999_ms);
    json.KV("failures", r.failures);
    json.EndObject();
  }
  json.EndArray();
  json.Key("reload_series").BeginObject();
  json.KV("threads", reload_series.threads);
  json.KV("qps", reload_series.qps);
  json.KV("p50_ms", reload_series.p50_ms);
  json.KV("p99_ms", reload_series.p99_ms);
  json.KV("p999_ms", reload_series.p999_ms);
  json.KV("reloads", reload_series.reloads);
  json.KV("failures", reload_series.failures);
  json.KV("wrong_checksum", reload_series.wrong_checksum);
  json.EndObject();
  json.EndObject();
  std::printf("%s\n", json.str().c_str());

  for (const SeriesResult& r : series) {
    if (r.failures != 0 || r.wrong_checksum != 0) {
      std::fprintf(stderr, "FAIL: %lld failure(s) at %d threads\n",
                   static_cast<long long>(r.failures + r.wrong_checksum),
                   r.threads);
      return 1;
    }
  }
  if (reload_series.failures != 0 || reload_series.wrong_checksum != 0) {
    std::fprintf(stderr,
                 "FAIL: reload series saw %lld failure(s), %lld mixed-bundle "
                 "response(s)\n",
                 static_cast<long long>(reload_series.failures),
                 static_cast<long long>(reload_series.wrong_checksum));
    return 1;
  }
  if (reload_series.reloads < 1) {
    std::fprintf(stderr, "FAIL: reload series completed no reloads\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace phoebe::bench

int main(int argc, char** argv) { return phoebe::bench::Run(argc, argv); }
