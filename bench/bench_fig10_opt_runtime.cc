// Figure 10: optimizer runtime — the Proposition-5.1 heuristic vs the exact
// IP with 1..3 cuts, over growing graph sizes. Paper: the IP is about two
// orders of magnitude slower than the heuristic, and grows with the number
// of cuts; the heuristic runs at interactive speed.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/checkpoint_ip.h"
#include "core/simulator.h"

using namespace phoebe;

namespace {

struct Instance {
  dag::JobGraph graph;
  core::StageCosts costs;
};

Instance MakeInstance(int n, uint64_t seed) {
  Rng rng(seed);
  Instance t;
  for (int i = 0; i < n; ++i) {
    dag::Stage s;
    s.name = "s" + std::to_string(i);
    s.operators = {dag::OperatorKind::kFilter};
    s.num_tasks = static_cast<int>(rng.UniformInt(1, 100));
    t.graph.AddStage(std::move(s));
  }
  for (int v = 1; v < n; ++v) {
    int k = static_cast<int>(rng.UniformInt(1, 2));
    for (int j = 0; j < k; ++j) {
      (void)t.graph.AddEdge(static_cast<dag::StageId>(rng.UniformInt(0, v - 1)),
                            static_cast<dag::StageId>(v));
    }
  }
  std::vector<double> exec(static_cast<size_t>(n));
  for (double& e : exec) e = rng.Uniform(30.0, 1800.0);
  auto sim = core::SimulateSchedule(t.graph, exec);
  sim.status().Check();
  t.costs.end_time = sim->end;
  t.costs.tfs = sim->start;
  t.costs.ttl.resize(static_cast<size_t>(n));
  t.costs.output_bytes.resize(static_cast<size_t>(n));
  t.costs.num_tasks.resize(static_cast<size_t>(n));
  for (int u = 0; u < n; ++u) {
    t.costs.ttl[static_cast<size_t>(u)] = sim->Ttl(static_cast<dag::StageId>(u));
    t.costs.output_bytes[static_cast<size_t>(u)] = rng.Uniform(0.5, 50.0) * 1e9;
    t.costs.num_tasks[static_cast<size_t>(u)] = t.graph.stage(u).num_tasks;
  }
  return t;
}

void BM_Heuristic(benchmark::State& state) {
  Instance t = MakeInstance(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    auto r = core::OptimizeTempStorage(t.graph, t.costs);
    benchmark::DoNotOptimize(r);
  }
}

void BM_HeuristicMultiCut(benchmark::State& state) {
  Instance t = MakeInstance(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    auto r = core::OptimizeTempStorageMultiCut(t.graph, t.costs,
                                               static_cast<int>(state.range(1)));
    benchmark::DoNotOptimize(r);
  }
}

void BM_Ip(benchmark::State& state) {
  Instance t = MakeInstance(static_cast<int>(state.range(0)), 42);
  core::IpOptions opt;
  opt.num_cuts = static_cast<int>(state.range(1));
  opt.milp.time_limit_seconds = 120.0;
  int64_t nodes = 0;
  for (auto _ : state) {
    auto r = core::SolveTempStorageIp(t.graph, t.costs, opt);
    r.status().Check();
    nodes = r->nodes;
    benchmark::DoNotOptimize(r);
  }
  state.counters["bnb_nodes"] = static_cast<double>(nodes);
}

}  // namespace

BENCHMARK(BM_Heuristic)->Arg(8)->Arg(12)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HeuristicMultiCut)
    ->Args({16, 1})->Args({16, 2})->Args({16, 3})
    ->Unit(benchmark::kMicrosecond);
// Larger instances (e.g. {12,2}, {16,2}) take minutes with this teaching-
// grade B&B; the gap vs the heuristic only widens further.
BENCHMARK(BM_Ip)
    ->Args({8, 1})->Args({8, 2})->Args({8, 3})
    ->Args({12, 1})
    ->Args({16, 1})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_MAIN();
