// Differential A/B harness bench: N arms over one shared DayContext vs the
// same arms run standalone, one FleetDriver each. Times both and gates the
// contract that makes the harness trustworthy — every arm's per-day report
// must be byte-identical to the report that arm produces standalone, and the
// paired comparison report must be byte-identical across thread counts.
// Emits a JSON document on stdout for dashboards; human-readable progress
// goes to stderr.
//
// The harness's win is structural (workload generation, historic stats, and
// the day context are materialized once instead of once per arm), so the
// wall-clock series is the perf-trajectory signal and the byte-identity
// booleans are the correctness gates — tools/bench_compare.py fails the
// nightly if either regresses.
//
// Usage: bench_ab_harness [--days N] [--num-cuts K] [--budget-gb G]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/threadpool.h"
#include "core/engine.h"
#include "core/fleet.h"
#include "core/fleet_ab.h"
#include "core/fleet_shard.h"

namespace phoebe::bench {
namespace {

int ArgInt(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

int Run(int argc, char** argv) {
  const int num_days = ArgInt(argc, argv, "--days", 3);
  const int num_cuts = ArgInt(argc, argv, "--num-cuts", 1);
  const int budget_gb = ArgInt(argc, argv, "--budget-gb", 0);

  std::fprintf(stderr, "training pipeline...\n");
  BenchEnv env = MakeEnv(/*num_templates=*/60, /*train_days=*/5, /*test_days=*/1);

  // The fleet span: the stored test day plus freshly generated days beyond
  // it. Stats stay fixed at the test-day view, as in production serving.
  std::vector<std::vector<workload::JobInstance>> days;
  days.push_back(env.TestDay(0));
  for (int d = 1; d < num_days; ++d) {
    days.push_back(env.gen->GenerateDay(env.train_days + env.test_days + d));
  }
  const telemetry::HistoricStats stats = env.StatsForTestDay(0);
  size_t total_jobs = 0;
  for (const auto& day : days) total_jobs += day.size();
  std::fprintf(stderr, "%d day(s) assembled: %zu jobs total\n", num_days,
               total_jobs);

  // Two arms over the shared bundle: the baseline config and a 2x-cuts
  // variant — a realistic "does more cut candidates pay for itself?" run.
  core::FleetConfig base_cfg;
  base_cfg.num_cuts = num_cuts;
  if (budget_gb > 0) base_cfg.storage_budget_bytes = budget_gb * 1e9;
  core::FleetConfig variant_cfg = base_cfg;
  variant_cfg.num_cuts = num_cuts * 2;

  const uint32_t checksum = env.phoebe->bundle()->checksum();
  auto make_specs = [&](int threads) {
    core::FleetConfig b = base_cfg, v = variant_cfg;
    b.num_threads = threads;
    v.num_threads = threads;
    return std::vector<core::FleetArmSpec>{
        {"base", &env.phoebe->engine(), b, checksum},
        {"morecuts", &env.phoebe->engine(), v, checksum}};
  };
  const core::DayContext calibration_day(-1, env.repo.Day(env.train_days - 1),
                                         env.repo.StatsBefore(env.train_days - 1));

  // --- Standalone baseline: one FleetDriver per arm, full pass each -------
  auto t_sa0 = std::chrono::steady_clock::now();
  std::vector<std::string> standalone_json(2);
  {
    const auto specs = make_specs(1);
    for (size_t k = 0; k < specs.size(); ++k) {
      core::FleetDriver driver(specs[k].engine, specs[k].config);
      if (budget_gb > 0) {
        driver.Calibrate(env.repo.Day(env.train_days - 1),
                         env.repo.StatsBefore(env.train_days - 1))
            .Check();
      }
      for (int d = 0; d < num_days; ++d) {
        auto report = driver.RunDay(days[static_cast<size_t>(d)], stats);
        report.status().Check();
        standalone_json[k] += core::FleetDayReportJson(*report, d) + "\n";
      }
    }
  }
  const double standalone_seconds =
      Seconds(t_sa0, std::chrono::steady_clock::now());
  std::fprintf(stderr, "standalone (2 arms, serial): %.3f s\n",
               standalone_seconds);

  // --- Harness series: shared DayContext, every arm, 1/2/4 threads --------
  struct Series {
    int threads;
    double seconds;
    bool paired_identical;
  };
  std::vector<Series> series;
  std::string paired_baseline;
  bool arm_reports_identical = true;

  for (int threads : {1, 2, 4}) {
    core::FleetAbDriver ab(make_specs(threads));
    if (budget_gb > 0) ab.Calibrate(calibration_day).Check();
    auto t0 = std::chrono::steady_clock::now();
    std::vector<core::AbDayComparison> comparisons;
    std::vector<std::string> arm_json(2);
    for (int d = 0; d < num_days; ++d) {
      core::DayContext ctx(d, days[static_cast<size_t>(d)], stats);
      auto result = ab.RunDay(ctx);
      result.status().Check();
      comparisons.push_back(result->comparison);
      for (size_t k = 0; k < arm_json.size(); ++k) {
        arm_json[k] += core::FleetDayReportJson(result->reports[k], d) + "\n";
      }
    }
    const std::string paired = core::SerializeAbReport(comparisons);
    const double seconds = Seconds(t0, std::chrono::steady_clock::now());

    bool paired_identical = true;
    if (threads == 1) {
      paired_baseline = paired;
      for (size_t k = 0; k < arm_json.size(); ++k) {
        arm_reports_identical =
            arm_reports_identical && arm_json[k] == standalone_json[k];
      }
    } else {
      paired_identical = paired == paired_baseline;
    }
    series.push_back({threads, seconds, paired_identical});
    std::fprintf(stderr, "harness threads %d: %.3f s%s\n", threads, seconds,
                 paired_identical ? "" : "  PAIRED REPORT MISMATCH");
  }
  std::fprintf(stderr, "arm reports identical to standalone: %s\n",
               arm_reports_identical ? "yes" : "NO");

  JsonWriter json;
  json.BeginObject();
  json.KV("bench", "ab_harness");
  json.KV("days", num_days);
  json.KV("jobs_total", total_jobs);
  json.KV("arms", 2);
  json.KV("num_cuts", num_cuts);
  json.KV("budget_gb", budget_gb);
  json.KV("hardware_concurrency", ThreadPool::Resolve(0));
  json.KV("arm_reports_identical_to_standalone", arm_reports_identical);
  json.Key("series").BeginArray();
  {
    json.BeginObject();
    json.KV("threads", 0);  // standalone two-driver baseline
    json.KV("seconds", standalone_seconds);
    json.EndObject();
  }
  for (const Series& s : series) {
    json.BeginObject();
    json.KV("threads", s.threads);
    json.KV("seconds", s.seconds);
    json.KV("speedup_vs_standalone", standalone_seconds / s.seconds);
    json.KV("paired_identical_to_serial", s.paired_identical);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::printf("%s\n", json.str().c_str());

  if (!arm_reports_identical) return 1;  // determinism violation = failure
  for (const Series& s : series) {
    if (!s.paired_identical) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace phoebe::bench

int main(int argc, char** argv) { return phoebe::bench::Run(argc, argv); }
