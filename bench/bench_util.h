// Shared setup for the per-figure bench binaries: a standard workload, a
// populated repository, and a trained Phoebe pipeline.
//
// Scale note: the paper back-tests against hundreds of thousands of
// production jobs per day; these benches run the same code paths against a
// generated workload sized to finish on one core in seconds to minutes.
// EXPERIMENTS.md records paper-vs-measured values for every figure.
#pragma once

#include <cstdio>
#include <memory>

#include "core/evaluate.h"
#include "core/pipeline.h"
#include "telemetry/repository.h"
#include "workload/generator.h"

namespace phoebe::bench {

/// \brief One fully-prepared experiment environment.
struct BenchEnv {
  std::unique_ptr<workload::WorkloadGenerator> gen;
  telemetry::WorkloadRepository repo;
  std::unique_ptr<core::PhoebePipeline> phoebe;
  int train_days = 0;
  int test_days = 0;

  /// Jobs of test day `k` (0-based within the test span).
  const std::vector<workload::JobInstance>& TestDay(int k) const {
    return repo.Day(train_days + k);
  }
  /// Stats available when compiling test-day-`k` jobs.
  telemetry::HistoricStats StatsForTestDay(int k) const {
    return repo.StatsBefore(train_days + k);
  }
};

/// Build the standard environment: `num_templates` recurring templates,
/// `train_days` + `test_days` days generated and stored, pipeline trained on
/// the training span.
BenchEnv MakeEnv(int num_templates = 60, int train_days = 5, int test_days = 1,
                 uint64_t seed = 7);

/// Print a standard figure banner.
void Banner(const char* figure, const char* caption);

/// MTBF used across failure-related benches (seconds).
inline constexpr double kMtbfSeconds = 12.0 * 3600.0;

}  // namespace phoebe::bench
