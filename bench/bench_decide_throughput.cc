// Decision-throughput bench for the fleet hot path: one large recurring day
// (10k jobs by default) through FleetDriver::RunDay on a single thread, at
// the four corners of {batched inference on/off} x {template cache on/off}.
// Reports decisions/sec, stage-scorings/sec, and the cache hit rate as JSON
// on stdout (human-readable progress on stderr).
//
// Two correctness gates make this bench double as a regression check (the
// nightly CI job fails on a nonzero exit):
//   1. Batched and scalar inference must produce byte-identical reports —
//      the PredictBatch overrides are bit-equal to scalar Predict.
//   2. At zero drift tolerance (quantize_bps = 0) all four configurations
//      must produce byte-identical reports — exact-mode cache hits replay
//      provably identical decisions.
// The timed runs use an approximate cache (--cache-bps, default 5000) since
// that is the configuration that shows real hit rates on noisy recurrences.
//
// A third gate covers the observability layer: the "batch" corner re-runs
// with a MetricsRegistry attached (min-of-3 each way). Reports must stay
// byte-identical with telemetry on — always fatal — and when
// --gate-overhead-bps N is passed (the nightly CI does, with N=200 = 2%)
// the measured overhead must stay under N basis points of decide time.
// --metrics-out writes the instrumented run's telemetry JSONL artifact.
//
// Usage: bench_decide_throughput [--jobs N] [--num-cuts K]
//                                [--template-cache CAP] [--cache-bps B]
//                                [--metrics-out FILE] [--gate-overhead-bps N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "core/engine.h"
#include "core/fleet.h"
#include "obs/metrics.h"

namespace phoebe::bench {
namespace {

int ArgInt(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

const char* ArgStr(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Exact comparison over everything the day decided (cache counters are
/// excluded — they differ across configurations by construction).
bool ReportsIdentical(const core::FleetDayReport& a, const core::FleetDayReport& b) {
  if (a.jobs_considered != b.jobs_considered || a.jobs_with_cut != b.jobs_with_cut ||
      a.jobs_admitted != b.jobs_admitted ||
      a.storage_used_bytes != b.storage_used_bytes ||
      a.total_temp_byte_seconds != b.total_temp_byte_seconds ||
      a.realized_saving_byte_seconds != b.realized_saving_byte_seconds ||
      a.knapsack_threshold != b.knapsack_threshold) {
    return false;
  }
  if (a.outcomes.size() != b.outcomes.size()) return false;
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    const core::FleetJobOutcome& x = a.outcomes[i];
    const core::FleetJobOutcome& y = b.outcomes[i];
    if (x.job_id != y.job_id || x.admitted != y.admitted ||
        x.global_bytes != y.global_bytes || x.predicted_value != y.predicted_value ||
        x.realized_value != y.realized_value ||
        x.cut.before_cut != y.cut.before_cut || x.cuts.size() != y.cuts.size()) {
      return false;
    }
    for (size_t c = 0; c < x.cuts.size(); ++c) {
      if (x.cuts[c].before_cut != y.cuts[c].before_cut) return false;
    }
  }
  return true;
}

struct ConfigRun {
  ConfigRun(const char* n, bool b, bool c) : name(n), batch(b), cache(c) {}
  const char* name;
  bool batch;
  bool cache;
  double seconds = 0.0;
  double hit_rate = 0.0;
  core::FleetDayReport report;
};

int Run(int argc, char** argv) {
  const int target_jobs = ArgInt(argc, argv, "--jobs", 10000);
  const int num_cuts = ArgInt(argc, argv, "--num-cuts", 1);
  const int cache_capacity = ArgInt(argc, argv, "--template-cache", 65536);
  const int cache_bps = ArgInt(argc, argv, "--cache-bps", 5000);
  const std::string metrics_out = ArgStr(argc, argv, "--metrics-out", "");
  // 0 = measure and report only; N > 0 = fail if overhead exceeds N bps.
  const int gate_overhead_bps = ArgInt(argc, argv, "--gate-overhead-bps", 0);

  std::fprintf(stderr, "training pipeline...\n");
  BenchEnv env = MakeEnv(/*num_templates=*/60, /*train_days=*/3, /*test_days=*/1);

  // One oversized recurring day: concatenate generated days beyond the stored
  // span until the target job count is reached (recurrences of the same 60
  // templates — the workload the cache is for). Stats stay fixed at the
  // test-day view, as in production.
  std::vector<workload::JobInstance> jobs = env.TestDay(0);
  for (int d = env.train_days + env.test_days;
       static_cast<int>(jobs.size()) < target_jobs; ++d) {
    auto extra = env.gen->GenerateDay(d);
    jobs.insert(jobs.end(), extra.begin(), extra.end());
  }
  if (static_cast<int>(jobs.size()) > target_jobs) {
    jobs.resize(static_cast<size_t>(target_jobs));
  }
  auto stats = env.StatsForTestDay(0);

  int64_t eligible = 0, eligible_stages = 0;
  for (const workload::JobInstance& job : jobs) {
    if (job.graph.num_stages() < 2) continue;
    ++eligible;
    eligible_stages += static_cast<int64_t>(job.graph.num_stages());
  }
  std::fprintf(stderr, "day assembled: %zu jobs (%lld eligible, %lld stages)\n",
               jobs.size(), static_cast<long long>(eligible),
               static_cast<long long>(eligible_stages));

  auto run_one = [&](bool batch, bool cache, int bps, core::FleetDayReport* report,
                     double* hit_rate) -> double {
    env.phoebe->set_batch_inference(batch);
    core::FleetConfig cfg;
    cfg.num_cuts = num_cuts;
    cfg.num_threads = 1;
    cfg.template_cache.enabled = cache;
    cfg.template_cache.capacity = static_cast<size_t>(cache_capacity);
    cfg.template_cache.quantize_bps = bps;
    core::FleetDriver driver(&env.phoebe->engine(), cfg);
    auto t0 = std::chrono::steady_clock::now();
    auto r = driver.RunDay(jobs, stats);
    auto t1 = std::chrono::steady_clock::now();
    r.status().Check();
    const int64_t lookups = r->cache_hits + r->cache_misses;
    if (hit_rate) {
      *hit_rate = lookups > 0 ? static_cast<double>(r->cache_hits) /
                                    static_cast<double>(lookups)
                              : 0.0;
    }
    *report = *std::move(r);
    return Seconds(t0, t1);
  };

  // Timed runs: the four corners, approximate cache for the cached corners.
  std::vector<ConfigRun> runs = {
      {"scalar", false, false},
      {"batch", true, false},
      {"scalar+cache", false, true},
      {"batch+cache", true, true},
  };
  for (ConfigRun& run : runs) {
    run.seconds = run_one(run.batch, run.cache, cache_bps, &run.report, &run.hit_rate);
    std::fprintf(stderr, "%-13s %.3f s  (hit rate %.2f)\n", run.name, run.seconds,
                 run.hit_rate);
  }
  const double base_seconds = runs.front().seconds;

  // Gate 1: batched inference must not change any decision (lossless, so it
  // holds at the approximate-cache corners too, config against config).
  bool batch_identical = ReportsIdentical(runs[0].report, runs[1].report) &&
                         ReportsIdentical(runs[2].report, runs[3].report);

  // Gate 2: at zero drift tolerance, all four corners are byte-identical.
  bool exact_identical = true;
  {
    core::FleetDayReport exact_base;
    double hr = 0.0;
    run_one(false, false, 0, &exact_base, nullptr);
    for (bool batch : {false, true}) {
      for (bool cache : {false, true}) {
        core::FleetDayReport r;
        run_one(batch, cache, 0, &r, &hr);
        if (!ReportsIdentical(exact_base, r)) exact_identical = false;
      }
    }
  }
  env.phoebe->set_batch_inference(true);  // restore the default

  // Gate 3: the observability layer. Re-run the batch corner with a
  // MetricsRegistry attached to both the engine and the driver; min-of-3
  // per side to shave scheduler noise. Byte-identical reports are a hard
  // requirement; the overhead gate is opt-in (nightly CI passes
  // --gate-overhead-bps 200, i.e. <= 2% of decide time).
  obs::MetricsRegistry registry;
  core::DecisionEngine metrics_engine(env.phoebe->bundle(), &registry);
  double plain_seconds = 0.0, metrics_seconds = 0.0;
  bool metrics_identical = true;
  {
    core::FleetConfig mcfg;
    mcfg.num_cuts = num_cuts;
    mcfg.num_threads = 1;
    auto timed_day = [&](const core::DecisionEngine* engine,
                         obs::MetricsRegistry* reg,
                         core::FleetDayReport* report) -> double {
      mcfg.metrics = reg;
      core::FleetDriver driver(engine, mcfg);
      auto t0 = std::chrono::steady_clock::now();
      auto r = driver.RunDay(jobs, stats);
      auto t1 = std::chrono::steady_clock::now();
      r.status().Check();
      *report = *std::move(r);
      return Seconds(t0, t1);
    };
    core::FleetDayReport plain_report, metrics_report;
    plain_seconds = timed_day(&env.phoebe->engine(), nullptr, &plain_report);
    metrics_seconds = timed_day(&metrics_engine, &registry, &metrics_report);
    for (int rep = 1; rep < 3; ++rep) {
      plain_seconds = std::min(
          plain_seconds, timed_day(&env.phoebe->engine(), nullptr, &plain_report));
      metrics_seconds = std::min(
          metrics_seconds, timed_day(&metrics_engine, &registry, &metrics_report));
    }
    metrics_identical = ReportsIdentical(plain_report, metrics_report);
    std::fprintf(stderr, "metrics off %.3f s, on %.3f s (overhead %.2f%%)\n",
                 plain_seconds, metrics_seconds,
                 100.0 * (metrics_seconds - plain_seconds) / plain_seconds);
  }
  const double overhead_frac = (metrics_seconds - plain_seconds) / plain_seconds;

  if (!metrics_out.empty()) {
    std::ofstream tele(metrics_out, std::ios::binary);
    if (!tele) {
      std::fprintf(stderr, "cannot open '%s'\n", metrics_out.c_str());
      return 1;
    }
    tele << obs::TelemetryLineJson(registry.Snapshot(), "run", -1) << "\n";
    std::fprintf(stderr, "wrote telemetry to %s\n", metrics_out.c_str());
  }

  JsonWriter json;
  json.BeginObject();
  json.KV("bench", "decide_throughput");
  json.KV("jobs", jobs.size());
  json.KV("eligible_jobs", eligible);
  json.KV("eligible_stages", eligible_stages);
  json.KV("num_cuts", num_cuts);
  json.KV("cache_capacity", cache_capacity);
  json.KV("cache_bps", cache_bps);
  json.Key("series").BeginArray();
  for (const ConfigRun& run : runs) {
    json.BeginObject();
    json.KV("config", run.name);
    json.KV("batch", run.batch);
    json.KV("cache", run.cache);
    json.KV("seconds", run.seconds);
    json.KV("decisions_per_sec", static_cast<double>(eligible) / run.seconds);
    json.KV("stage_scorings_per_sec",
            static_cast<double>(eligible_stages) / run.seconds);
    json.KV("cache_hit_rate", run.hit_rate);
    json.KV("speedup_vs_scalar", base_seconds / run.seconds);
    json.EndObject();
  }
  json.EndArray();
  json.KV("batch_reports_identical", batch_identical);
  json.KV("exact_mode_reports_identical", exact_identical);
  json.Key("metrics_overhead").BeginObject();
  json.KV("plain_seconds", plain_seconds);
  json.KV("metrics_seconds", metrics_seconds);
  json.KV("overhead_fraction", overhead_frac);
  json.KV("reports_identical", metrics_identical);
  json.KV("gate_bps", gate_overhead_bps);
  json.EndObject();
  json.EndObject();
  std::printf("%s\n", json.str().c_str());

  if (!batch_identical) {
    std::fprintf(stderr, "FAIL: batched inference changed a decision\n");
    return 1;
  }
  if (!exact_identical) {
    std::fprintf(stderr, "FAIL: exact-mode cache changed a decision\n");
    return 1;
  }
  if (!metrics_identical) {
    std::fprintf(stderr, "FAIL: attaching metrics changed a decision\n");
    return 1;
  }
  if (gate_overhead_bps > 0 && overhead_frac * 1e4 > gate_overhead_bps) {
    std::fprintf(stderr, "FAIL: metrics overhead %.1f bps exceeds the %d bps gate\n",
                 overhead_frac * 1e4, gate_overhead_bps);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace phoebe::bench

int main(int argc, char** argv) { return phoebe::bench::Run(argc, argv); }
