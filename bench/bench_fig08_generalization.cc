// Figure 8: generalization to future days — accuracy of a once-trained model
// on test days progressively further from the training window (paper: R^2
// decays gradually, motivating periodic retraining).
#include <cstdio>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "bench_util.h"

using namespace phoebe;

int main() {
  bench::Banner("Figure 8",
                "Accuracy of the day-0..4-trained models on test days +1..+7.");

  auto env = bench::MakeEnv(/*num_templates=*/60, /*train_days=*/5, /*test_days=*/7);

  TablePrinter table({"days after training", "R^2 exec", "R^2 output", "R^2 TTL"});
  double first_exec = 0.0, last_exec = 0.0;
  for (int k = 0; k < env.test_days; ++k) {
    const auto& jobs = env.TestDay(k);
    // Production keeps serving the stats snapshot from deployment time, so
    // the decay reflects both model and statistics staleness.
    auto stats = env.StatsForTestDay(0);
    std::vector<double> et, ep, ot, op, tt, tp;
    for (const auto& job : jobs) {
      auto exec = env.phoebe->exec_predictor().PredictJob(job, stats);
      auto out = env.phoebe->size_predictor().PredictJob(job, stats);
      auto costs = env.phoebe->BuildCosts(job, core::CostSource::kMlStacked, stats);
      costs.status().Check();
      for (size_t i = 0; i < job.graph.num_stages(); ++i) {
        et.push_back(job.truth[i].exec_seconds);
        ep.push_back(exec[i]);
        ot.push_back(job.truth[i].output_bytes);
        op.push_back(out[i]);
        tt.push_back(job.truth[i].ttl);
        tp.push_back(costs->ttl[i]);
      }
    }
    double r2e = RSquared(et, ep);
    if (k == 0) first_exec = r2e;
    last_exec = r2e;
    table.AddRow(StrFormat("+%d", k + 1),
                 {r2e, RSquared(ot, op), RSquared(tt, tp)});
  }
  table.Print();
  std::printf("\nexec-time R^2 drift over the week: %+.3f "
              "(paper: gradual decay as test days move away from training)\n",
              last_exec - first_exec);
  return 0;
}
