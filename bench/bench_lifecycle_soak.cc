// Lifecycle soak: the continuous-operation loop run for a month of simulated
// days (30 by default), twice, under deliberately different execution
// configurations — run A serial and uncached, run B threaded with the
// exact-mode template cache — gating that every artifact the loop emits
// (promotion log, per-day report JSON, shadow diffs) is byte-identical
// between the two. Any divergence is a determinism regression and the bench
// exits nonzero. This is the nightly CI's long-horizon complement to
// lifecycle_determinism_test's 6-day unit pin.
//
// Emits a JSON summary on stdout (days, retrains, promotions, rejections,
// per-run wall time, the identical verdict); human-readable progress goes to
// stderr. With --out-dir DIR the artifacts of both runs are written under
// DIR/runA and DIR/runB for upload — diffing the two trees by hand shows
// exactly where a nondeterministic run diverged.
//
// Usage: bench_lifecycle_soak [--days N] [--templates T] [--seed S]
//                             [--out-dir DIR]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "lifecycle/lifecycle.h"
#include "workload/generator.h"

namespace phoebe::bench {
namespace {

int ArgInt(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

const char* ArgStr(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

/// Every artifact stream one soak run produces, rendered to the exact bytes
/// the driver writes under an out_dir.
struct SoakArtifacts {
  std::string promotion_log;
  std::string day_reports;
  std::string shadow;
  size_t retrains = 0;
  size_t promotions = 0;
  size_t jobs = 0;
  double seconds = 0.0;
};

SoakArtifacts RunSoak(const char* label, int days, int templates, uint64_t seed,
                      int num_threads, bool cache, const std::string& out_dir) {
  core::PipelineConfig pipeline = core::PhoebePipeline::DefaultConfig();
  pipeline.exec_predictor.gbdt.num_trees = 12;
  pipeline.size_predictor.gbdt.num_trees = 12;
  pipeline.ttl.gbdt.num_trees = 12;

  lifecycle::LifecycleConfig cfg;
  cfg.pipeline = pipeline;
  cfg.policy.min_history_days = 2;
  cfg.policy.train_window_days = 4;
  cfg.policy.max_age_days = 3;  // age is the floor; accuracy can fire earlier
  cfg.policy.min_exec_r2 = 0.5;
  cfg.backtest_window_days = 3;
  cfg.shadow = true;
  cfg.mtbf_seconds = kMtbfSeconds;
  cfg.fleet.num_threads = num_threads;
  if (cache) {
    cfg.fleet.template_cache.enabled = true;
    cfg.fleet.template_cache.capacity = 256;
    cfg.fleet.template_cache.quantize_bps = 0;  // exact mode is byte-neutral
  }
  cfg.out_dir = out_dir;  // empty = in-memory only

  workload::WorkloadConfig wcfg;
  wcfg.num_templates = templates;
  wcfg.seed = seed;
  workload::WorkloadGenerator gen(wcfg);
  telemetry::WorkloadRepository repo;
  lifecycle::LifecycleDriver driver(cfg);

  SoakArtifacts out;
  auto t0 = std::chrono::steady_clock::now();
  for (int d = 0; d < days; ++d) {
    repo.AddDay(d, gen.GenerateDay(d)).Check();
    auto report = driver.OnDayCompleted(&repo, d);
    report.status().Check();
    out.day_reports += lifecycle::LifecycleDayReportJson(*report) + "\n";
    out.jobs += static_cast<size_t>(report->jobs);
    if (report->retrained) {
      ++out.retrains;
      std::fprintf(stderr, "[%s] day %d: retrain (%s) -> %s\n", label, d,
                   report->reason.c_str(), report->verdict.c_str());
    }
  }
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
  out.promotion_log = lifecycle::SerializePromotionLog(driver.promotion_records());
  for (const lifecycle::ShadowDayDiff& diff : driver.shadow_diffs()) {
    out.shadow += diff.text;
  }
  for (const lifecycle::PromotionRecord& r : driver.promotion_records()) {
    out.promotions += (r.verdict == "promoted") ? 1u : 0u;
  }
  std::fprintf(stderr,
               "[%s] %d days, %zu jobs, %zu retrains, %zu promoted, %.1f s\n",
               label, days, out.jobs, out.retrains, out.promotions, out.seconds);
  return out;
}

int Run(int argc, char** argv) {
  const int days = ArgInt(argc, argv, "--days", 30);
  const int templates = ArgInt(argc, argv, "--templates", 16);
  const uint64_t seed =
      static_cast<uint64_t>(ArgInt(argc, argv, "--seed", 23));
  const std::string out_dir = ArgStr(argc, argv, "--out-dir", "");

  Banner("lifecycle_soak",
         "30-day continuous-operation soak; two runs under different "
         "thread/cache configs must be byte-identical");

  const std::string dir_a = out_dir.empty() ? "" : out_dir + "/runA";
  const std::string dir_b = out_dir.empty() ? "" : out_dir + "/runB";
  const SoakArtifacts a =
      RunSoak("runA 1-thread uncached", days, templates, seed,
              /*num_threads=*/1, /*cache=*/false, dir_a);
  const SoakArtifacts b =
      RunSoak("runB 4-thread cached", days, templates, seed,
              /*num_threads=*/4, /*cache=*/true, dir_b);

  const bool log_ok = a.promotion_log == b.promotion_log;
  const bool reports_ok = a.day_reports == b.day_reports;
  const bool shadow_ok = a.shadow == b.shadow;
  const bool identical = log_ok && reports_ok && shadow_ok;
  if (!identical) {
    std::fprintf(stderr,
                 "NONDETERMINISM: promotion_log %s, day_reports %s, shadow %s\n",
                 log_ok ? "ok" : "DIVERGED", reports_ok ? "ok" : "DIVERGED",
                 shadow_ok ? "ok" : "DIVERGED");
  }

  JsonWriter json;
  json.BeginObject();
  json.KV("bench", "lifecycle_soak");
  json.KV("days", days);
  json.KV("templates", templates);
  json.KV("jobs", a.jobs);
  json.KV("retrains", a.retrains);
  json.KV("promotions", a.promotions);
  json.KV("rejections", a.retrains - a.promotions);
  json.KV("run_a_seconds", a.seconds);
  json.KV("run_b_seconds", b.seconds);
  json.KV("promotion_log_bytes", a.promotion_log.size());
  json.KV("shadow_bytes", a.shadow.size());
  json.KV("identical", identical);
  json.EndObject();
  std::printf("%s\n", json.str().c_str());

  return identical ? 0 : 1;
}

}  // namespace
}  // namespace phoebe::bench

int main(int argc, char** argv) { return phoebe::bench::Run(argc, argv); }
