// Ablation for the §5.4/§5.5 two-phase design: per-job cuts first, then a
// *separate* admission step under the global-storage budget. Compares the
// paper's online threshold knapsack against alternatives at the same budget:
//
//   online-threshold   the paper's policy (calibrated pi*, arrival order)
//   greedy-estimated   offline sort by estimated value/weight (needs the
//                      whole day up front — not deployable online)
//   greedy-oracle      offline sort by *realized* value/weight (upper bound)
//   fifo               accept in arrival order until the budget is gone
//
// The paper's claim: the simple threshold policy captures most of the
// offline-greedy value while remaining a one-pass online rule.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/knapsack.h"
#include "bench_util.h"

using namespace phoebe;

namespace {

struct Candidate {
  double weight = 0.0;          // estimated global bytes
  double est_value = 0.0;       // predicted objective (byte-seconds)
  double realized_value = 0.0;  // realized byte-seconds saved
};

}  // namespace

int main() {
  bench::Banner("Two-phase budget ablation (§5.4/§5.5)",
                "Admission policies at the same global-storage budget; value "
                "is realized temp byte-seconds saved.");

  auto env = bench::MakeEnv(60, 5, 2);
  core::BackTester tester(&env.phoebe->engine(), bench::kMtbfSeconds);

  auto collect = [&](int day) {
    std::vector<Candidate> out;
    auto stats = env.StatsForTestDay(day);
    for (const auto& job : env.TestDay(day)) {
      if (job.graph.num_stages() < 2) continue;
      auto cut = tester.ChooseCut(job, core::Approach::kMlStacked,
                                  core::Objective::kTempStorage, stats);
      cut.status().Check();
      if (cut->cut.empty() || cut->global_bytes <= 0) continue;
      out.push_back({cut->global_bytes, cut->objective,
                     core::RealizedTempSaving(job, cut->cut) * job.TempByteSeconds()});
    }
    return out;
  };
  auto history = collect(0);   // calibration day
  auto stream = collect(1);    // evaluation day
  double demand = 0.0, total_value = 0.0;
  for (const auto& c : stream) {
    demand += c.weight;
    total_value += c.realized_value;
  }

  auto greedy = [&](bool oracle, double budget) {
    std::vector<size_t> order(stream.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      auto ratio = [&](const Candidate& c) {
        return (oracle ? c.realized_value : c.est_value) / c.weight;
      };
      return ratio(stream[a]) > ratio(stream[b]);
    });
    double used = 0.0, value = 0.0;
    for (size_t i : order) {
      if (used + stream[i].weight > budget) continue;
      used += stream[i].weight;
      value += stream[i].realized_value;
    }
    return value;
  };

  auto fifo = [&](double budget, Rng* rng) {
    std::vector<size_t> order(stream.size());
    std::iota(order.begin(), order.end(), 0);
    rng->Shuffle(&order);
    double used = 0.0, value = 0.0;
    for (size_t i : order) {
      if (used + stream[i].weight > budget) continue;
      used += stream[i].weight;
      value += stream[i].realized_value;
    }
    return value;
  };

  auto online = [&](double budget, Rng* rng) {
    std::vector<core::KnapsackItem> hist_items;
    for (const auto& c : history) hist_items.push_back({c.weight, c.est_value});
    auto k = core::OnlineKnapsack::Calibrate(budget,
                                             static_cast<double>(stream.size()),
                                             hist_items);
    k.status().Check();
    std::vector<size_t> order(stream.size());
    std::iota(order.begin(), order.end(), 0);
    rng->Shuffle(&order);
    double value = 0.0;
    for (size_t i : order) {
      if (k->Offer({stream[i].weight, stream[i].est_value})) {
        value += stream[i].realized_value;
      }
    }
    return value;
  };

  TablePrinter table({"budget", "online-threshold %", "greedy-estimated %",
                      "greedy-oracle %", "fifo %"});
  for (double frac : {0.1, 0.2, 0.3, 0.5, 0.8}) {
    double budget = frac * demand;
    RunningStats on, ff;
    Rng rng(77);
    for (int trial = 0; trial < 15; ++trial) {
      on.Add(online(budget, &rng));
      ff.Add(fifo(budget, &rng));
    }
    table.AddRow(StrFormat("%.0f%%", 100 * frac),
                 {100 * on.mean() / total_value,
                  100 * greedy(false, budget) / total_value,
                  100 * greedy(true, budget) / total_value,
                  100 * ff.mean() / total_value},
                 1);
  }
  table.Print();
  std::printf("\nreading: the one-pass threshold policy should sit between fifo "
              "and offline greedy,\ncapturing most of the oracle's value "
              "without seeing the day in advance (paper's design rationale).\n");
  return 0;
}
