// Scenario sweep: every named hostile-workload preset (baseline, zipf,
// flash-crowd, failure-storm, drift-sudden, drift-gradual) run through the
// continuous-operation loop, reporting per scenario what the preset actually
// stresses — decision cost (1 - mean realized saving), the template cache's
// hit rate on the final day, the incumbent's mean exec R^2 (the drift
// signal), and how often RetrainPolicy fired and promoted. The failure-storm
// preset reaches the canary backtest through LifecycleConfig::mtbf_factor,
// so its storm days weigh recovery more.
//
// Each scenario also runs its loop twice under deliberately different
// execution configs (serial uncached vs threaded exact-cache) and
// byte-compares the day reports and promotion log: a scenario only reshapes
// workload generation, so every preset must keep the determinism contract.
// Any divergence exits nonzero — tools/bench_compare.py additionally gates
// the checked-in snapshot on the per-row `deterministic` flag.
//
// Emits one JSON document on stdout (`"bench": "scenario_sweep"`, one series
// row per scenario); with --out-dir DIR each scenario's row is also written
// to DIR/scenario_<name>.json for per-preset artifact upload. Progress goes
// to stderr.
//
// Usage: bench_scenario_sweep [--days N] [--templates T] [--seed S]
//                             [--out-dir DIR]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "core/engine.h"
#include "core/fleet.h"
#include "lifecycle/lifecycle.h"
#include "scenario/scenario.h"
#include "telemetry/repository.h"
#include "workload/generator.h"

namespace phoebe::bench {
namespace {

int ArgInt(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

const char* ArgStr(int argc, char** argv, const char* flag, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

/// Everything one lifecycle pass under one scenario produces.
struct LoopArtifacts {
  std::string day_reports;   ///< concatenated LifecycleDayReportJson lines
  std::string promotion_log;
  size_t jobs = 0;
  size_t retrains = 0;
  size_t promotions = 0;
  int served_days = 0;
  double saving_sum = 0.0;  ///< over served days
  double r2_sum = 0.0;      ///< over served days
  int canary_days = 0;
  double canary_sum = 0.0;  ///< incumbent backtest cost over retrain days
  double cache_hit_rate = 0.0;  ///< final-day fleet pass, exact cache
  double seconds = 0.0;
};

LoopArtifacts RunLoop(const scenario::ScenarioSpec& spec, int days,
                      int templates, uint64_t seed, int num_threads,
                      bool cache) {
  core::PipelineConfig pipeline = core::PhoebePipeline::DefaultConfig();
  pipeline.exec_predictor.gbdt.num_trees = 12;
  pipeline.size_predictor.gbdt.num_trees = 12;
  pipeline.ttl.gbdt.num_trees = 12;

  lifecycle::LifecycleConfig cfg;
  cfg.pipeline = pipeline;
  cfg.policy.min_history_days = 2;
  cfg.policy.train_window_days = 4;
  cfg.policy.max_age_days = 4;
  cfg.policy.min_exec_r2 = 0.5;  // drift presets should trip this early
  cfg.backtest_window_days = 3;
  // The recovery objective (OptCheck2, Figure 14): the canary backtest costs
  // each bundle against the failure model, so failure-storm's mtbf_factor
  // spike actually moves promotion decisions instead of being ignored the
  // way the temp-storage objective would.
  cfg.fleet.objective = core::Objective::kRecovery;
  cfg.mtbf_seconds = kMtbfSeconds;
  cfg.mtbf_factor = [spec](int d) { return spec.MtbfFactor(d); };
  cfg.fleet.num_threads = num_threads;
  if (cache) {
    cfg.fleet.template_cache.enabled = true;
    cfg.fleet.template_cache.capacity = 256;
    cfg.fleet.template_cache.quantize_bps = 0;  // exact mode is byte-neutral
  }

  workload::WorkloadConfig wcfg;
  wcfg.num_templates = templates;
  wcfg.seed = seed;
  auto gen = scenario::MakeScenarioGenerator(spec, wcfg);
  telemetry::WorkloadRepository repo;
  lifecycle::LifecycleDriver driver(cfg);

  LoopArtifacts out;
  auto t0 = std::chrono::steady_clock::now();
  for (int d = 0; d < days; ++d) {
    repo.AddDay(d, gen->GenerateDay(d)).Check();
    auto report = driver.OnDayCompleted(&repo, d);
    report.status().Check();
    out.day_reports += lifecycle::LifecycleDayReportJson(*report) + "\n";
    out.jobs += static_cast<size_t>(report->jobs);
    if (report->served) {
      ++out.served_days;
      out.saving_sum += report->saving_fraction;
      out.r2_sum += report->exec_r2;
    }
    if (report->retrained) {
      ++out.retrains;
      // The canary backtest is the one consumer of mtbf_factor: a
      // failure-storm day weighs recovery more and spikes this cost even
      // though the served workload's bytes are untouched.
      if (report->incumbent_cost >= 0.0) {
        ++out.canary_days;
        out.canary_sum += report->incumbent_cost;
      }
    }
  }
  out.promotion_log = lifecycle::SerializePromotionLog(driver.promotion_records());
  for (const lifecycle::PromotionRecord& r : driver.promotion_records()) {
    out.promotions += (r.verdict == "promoted") ? 1u : 0u;
  }

  // Final-day cache pass: the incumbent re-decides the last day through a
  // fresh approximate-mode cache (quantized keys, so recurring templates
  // with drifted inputs still hit). A Zipf-skewed day concentrates traffic
  // on a few hot templates and converts it into a visibly higher hit rate.
  // This pass only feeds the hit-rate metric; the determinism gate compares
  // the loop artifacts above, which never see it.
  if (driver.deployed()) {
    core::DecisionEngine engine(driver.incumbent(), nullptr);
    core::FleetConfig fleet_cfg;
    fleet_cfg.num_threads = num_threads;
    fleet_cfg.template_cache.enabled = true;
    fleet_cfg.template_cache.capacity = 256;
    fleet_cfg.template_cache.quantize_bps = 5000;
    core::FleetDriver fleet(&engine, fleet_cfg);
    auto report = fleet.RunDay(repo.Day(days - 1), repo.StatsBefore(days - 1));
    report.status().Check();
    const int64_t lookups = report->cache_hits + report->cache_misses;
    out.cache_hit_rate =
        lookups > 0 ? static_cast<double>(report->cache_hits) /
                          static_cast<double>(lookups)
                    : 0.0;
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

/// One scenario's reported row.
struct SweepRow {
  std::string name;
  LoopArtifacts a;  ///< serial uncached run (the reported numbers)
  bool deterministic = false;
  double seconds_b = 0.0;
};

void WriteRow(JsonWriter* json, const SweepRow& row) {
  const int served = row.a.served_days > 0 ? row.a.served_days : 1;
  json->BeginObject();
  json->KV("scenario", row.name);
  json->KV("jobs", row.a.jobs);
  json->KV("served_days", row.a.served_days);
  json->KV("cost", 1.0 - row.a.saving_sum / served);
  json->KV("cache_hit_rate", row.a.cache_hit_rate);
  json->KV("exec_r2", row.a.r2_sum / served);
  json->KV("canary_cost",
           row.a.canary_days > 0 ? row.a.canary_sum / row.a.canary_days : 0.0);
  json->KV("retrains", row.a.retrains);
  json->KV("promotions", row.a.promotions);
  json->KV("deterministic", row.deterministic);
  json->KV("run_a_seconds", row.a.seconds);
  json->KV("run_b_seconds", row.seconds_b);
  json->EndObject();
}

int Run(int argc, char** argv) {
  const int days = ArgInt(argc, argv, "--days", 10);
  const int templates = ArgInt(argc, argv, "--templates", 12);
  const uint64_t seed = static_cast<uint64_t>(ArgInt(argc, argv, "--seed", 23));
  const std::string out_dir = ArgStr(argc, argv, "--out-dir", "");

  // Banner on stderr: stdout carries exactly one JSON document.
  std::fprintf(stderr,
               "=== scenario_sweep ===\nevery hostile-workload preset through "
               "the continuous-operation loop; each must stay "
               "byte-deterministic across thread/cache configs\n");

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --out-dir %s: %s\n", out_dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
  }

  std::vector<SweepRow> rows;
  bool all_deterministic = true;
  for (const std::string& name : scenario::ScenarioPresetNames()) {
    scenario::ScenarioSpec spec;
    scenario::ScenarioFromPreset(name, &spec).Check();
    SweepRow row;
    row.name = name;
    row.a = RunLoop(spec, days, templates, seed, /*num_threads=*/1,
                    /*cache=*/false);
    const LoopArtifacts b = RunLoop(spec, days, templates, seed,
                                    /*num_threads=*/4, /*cache=*/true);
    row.seconds_b = b.seconds;
    row.deterministic = row.a.day_reports == b.day_reports &&
                        row.a.promotion_log == b.promotion_log;
    all_deterministic = all_deterministic && row.deterministic;
    const int served = row.a.served_days > 0 ? row.a.served_days : 1;
    std::fprintf(stderr,
                 "[%s] %zu jobs, cost %.4f, cache hit %.2f, r2 %.3f, "
                 "%zu retrains (%zu promoted), %s, %.1f+%.1f s\n",
                 name.c_str(), row.a.jobs, 1.0 - row.a.saving_sum / served,
                 row.a.cache_hit_rate, row.a.r2_sum / served, row.a.retrains,
                 row.a.promotions,
                 row.deterministic ? "deterministic" : "DIVERGED",
                 row.a.seconds, row.seconds_b);

    if (!out_dir.empty()) {
      JsonWriter artifact;
      WriteRow(&artifact, row);
      std::ofstream f(out_dir + "/scenario_" + name + ".json",
                      std::ios::binary);
      f << artifact.str() << "\n";
    }
    rows.push_back(std::move(row));
  }

  JsonWriter json;
  json.BeginObject();
  json.KV("bench", "scenario_sweep");
  json.KV("days", days);
  json.KV("templates", templates);
  json.KV("all_deterministic", all_deterministic);
  json.Key("series").BeginArray();
  for (const SweepRow& row : rows) WriteRow(&json, row);
  json.EndArray();
  json.EndObject();
  std::printf("%s\n", json.str().c_str());

  return all_deterministic ? 0 : 1;  // determinism violation = failure
}

}  // namespace
}  // namespace phoebe::bench

int main(int argc, char** argv) { return phoebe::bench::Run(argc, argv); }
