#include "bench_util.h"

namespace phoebe::bench {

BenchEnv MakeEnv(int num_templates, int train_days, int test_days, uint64_t seed) {
  workload::WorkloadConfig cfg;
  cfg.num_templates = num_templates;
  cfg.seed = seed;
  BenchEnv env;
  env.gen = std::make_unique<workload::WorkloadGenerator>(cfg);
  env.train_days = train_days;
  env.test_days = test_days;
  for (int d = 0; d < train_days + test_days; ++d) {
    env.repo.AddDay(d, env.gen->GenerateDay(d)).Check();
  }
  env.phoebe = std::make_unique<core::PhoebePipeline>();
  if (train_days > 0) env.phoebe->Train(env.repo, 0, train_days).Check();
  return env;
}

void Banner(const char* figure, const char* caption) {
  std::printf("=== %s ===\n%s\n\n", figure, caption);
}

}  // namespace phoebe::bench
