// Figure 12: daily average percentage of temp-data storage saving for the
// seven checkpoint-selection approaches, back-tested over 6 days.
// Paper: Random 36%, OML 67%, OMLS 74%, Optimal 76% (OP below OCC because of
// the optimizer's estimation errors); error bars are the across-day stddev.
#include <cstdio>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "bench_util.h"

using namespace phoebe;

int main() {
  bench::Banner("Figure 12",
                "Daily average % of temp-data storage (PB*h) saved per "
                "approach, 6 back-testing days.");

  auto env = bench::MakeEnv(/*num_templates=*/60, /*train_days=*/5, /*test_days=*/6);
  core::BackTester tester(&env.phoebe->engine(), bench::kMtbfSeconds);

  // Per-approach across-day statistics of the *weighted* saving: total
  // byte-seconds cleared early / total byte-seconds, per day (that is the
  // PB*Hour fraction the paper reports).
  std::map<core::Approach, RunningStats> daily;
  for (int k = 0; k < env.test_days; ++k) {
    const auto& jobs = env.TestDay(k);
    auto stats = env.StatsForTestDay(k);
    std::map<core::Approach, double> saved_bs;
    double total_bs = 0.0;
    for (const auto& job : jobs) {
      if (job.graph.num_stages() < 2) continue;
      total_bs += job.TempByteSeconds();
      for (core::Approach a : core::AllApproaches()) {
        auto cut = tester.ChooseCut(job, a, core::Objective::kTempStorage, stats);
        cut.status().Check();
        saved_bs[a] += core::RealizedTempSaving(job, cut->cut) * job.TempByteSeconds();
      }
    }
    for (core::Approach a : core::AllApproaches()) {
      daily[a].Add(total_bs > 0 ? saved_bs[a] / total_bs : 0.0);
    }
  }

  const std::map<core::Approach, const char*> paper = {
      {core::Approach::kRandom, "36"},       {core::Approach::kMidPoint, "~45"},
      {core::Approach::kOptimizerEst, "<OCC"}, {core::Approach::kConstant, ">OP"},
      {core::Approach::kMl, "67"},           {core::Approach::kMlStacked, "74"},
      {core::Approach::kOptimal, "76"},
  };
  TablePrinter table({"approach", "mean saving %", "stddev", "paper %"});
  for (core::Approach a : core::AllApproaches()) {
    table.AddRow({core::ApproachName(a), StrFormat("%.1f", 100 * daily[a].mean()),
                  StrFormat("%.1f", 100 * daily[a].stddev()), paper.at(a)});
  }
  table.Print();
  std::printf("\nshape checks: OML > Random, OMLS >= OML, OMLS close to Optimal, "
              "OP hurt by estimate errors.\n");
  return 0;
}
