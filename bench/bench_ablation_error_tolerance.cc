// Error-tolerance ablation: how does realized temp saving degrade as the
// cost inputs get noisier? This connects Figure 7 (model accuracy) to
// Figure 12 (end savings): the TTL-threshold sweep needs ordering, not
// absolute values, so savings degrade gracefully until errors are large
// enough to reshuffle the stage order — which is also why the raw optimizer
// estimates (orders of magnitude off) land so far below the learned models.
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/sensitivity.h"
#include "bench_util.h"

using namespace phoebe;

int main() {
  bench::Banner("Error-tolerance ablation",
                "Realized temp saving and cut stability vs injected log-normal "
                "error on the optimizer's inputs (truth + noise).");

  auto env = bench::MakeEnv(60, 0, 1, /*seed=*/19);
  const auto& jobs = env.TestDay(0);

  TablePrinter table({"noise sigma (log)", "approx QError", "mean saving %",
                      "mean regret pts", "cut Jaccard"});
  Rng rng(5);
  for (double sigma : {0.0, 0.2, 0.5, 1.0, 1.5, 2.5}) {
    core::CostPerturbation p;
    p.output_sigma = sigma;
    p.ttl_sigma = sigma;
    RunningStats saving, regret, jaccard;
    for (const auto& job : jobs) {
      if (job.graph.num_stages() < 4) continue;
      auto costs = env.phoebe->BuildCosts(job, core::CostSource::kTruth);
      costs.status().Check();
      auto r = core::EvaluateCutSensitivity(job, *costs, p, &rng);
      r.status().Check();
      saving.Add(r->realized_noisy);
      regret.Add(r->regret);
      jaccard.Add(r->jaccard);
    }
    // Median multiplicative error of LogNormal(0, sigma) noise ~ exp(0.674*sigma).
    table.AddRow(StrFormat("%.1f", sigma),
                 {std::exp(0.6745 * sigma), 100 * saving.mean(), 100 * regret.mean(),
                  jaccard.mean()},
                 2);
  }
  table.Print();
  std::printf("\nreading: at the learned models' error level (sigma ~0.2, i.e. "
              "~1.1-1.2x typical error)\nthe regret is only a few points — the "
              "OMLS-vs-Optimal gap of Figure 12. At the multi-x\nerrors of raw "
              "optimizer estimates, savings halve — the OP bar of Figure 12.\n");
  return 0;
}
