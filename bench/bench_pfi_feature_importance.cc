// Section 6.1, PFI analysis: top-5 permutation feature importances of a
// trained cost model. Paper (one trained model): Estimated Exclusive Cost
// (0.75), Estimated Cardinality (0.13), Historic MergeJoin Latency (0.10),
// Estimated Input Cardinality (0.06), Historic Reduce Latency (0.06) — a mix
// of optimizer estimates and historic statistics.
#include <cstdio>

#include "common/strings.h"
#include "common/table.h"
#include "core/features.h"
#include "ml/gbdt.h"
#include "ml/importance.h"
#include "bench_util.h"

using namespace phoebe;

int main() {
  bench::Banner("Section 6.1 (PFI)",
                "Permutation feature importance (delta R^2 when shuffling a "
                "feature) of the general execution-time GBDT.");

  auto env = bench::MakeEnv(60, 5, 1);
  auto stats = env.StatsForTestDay(0);

  // Train a general model so PFI covers one model over all features.
  core::StageFeaturizer featurizer;
  std::vector<workload::JobInstance> train_jobs;
  for (int d = 0; d < env.train_days; ++d) {
    for (const auto& j : env.repo.Day(d)) train_jobs.push_back(j);
  }
  ml::Dataset train =
      featurizer.BuildDataset(train_jobs, stats, core::Target::kExecSeconds);
  ml::GbdtRegressor model;
  model.Fit(train).Check();

  ml::Dataset test =
      featurizer.BuildDataset(env.TestDay(0), stats, core::Target::kExecSeconds);
  Rng rng(5);
  auto importance = ml::PermutationImportance(model, test, &rng, 3);

  TablePrinter table({"rank", "feature", "delta R^2"});
  for (size_t i = 0; i < importance.size() && i < 8; ++i) {
    table.AddRow({StrFormat("%zu", i + 1), importance[i].name,
                  StrFormat("%.3f", importance[i].delta_r2)});
  }
  table.Print();
  std::printf("\n(paper top-5: Estimated Exclusive Cost 0.75, Estimated Cardinality "
              "0.13,\n Historic MergeJoin Latency 0.10, Estimated Input Cardinality "
              "0.06, Historic Reduce Latency 0.06 —\n optimizer estimates and "
              "historic statistics jointly drive accuracy)\n");

  // Gain-based importance from the trees, as a cross-check.
  std::printf("\ntraining-gain importance (tree split gains, normalized):\n");
  auto gain = model.FeatureImportanceGain();
  TablePrinter gt({"feature", "gain share"});
  for (size_t f = 0; f < gain.size(); ++f) {
    gt.AddRow({train.x.feature_names()[f], StrFormat("%.3f", gain[f])});
  }
  gt.Print();
  return 0;
}
