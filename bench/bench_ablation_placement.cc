// Ablation for the paper's footnote 1: instead of checkpointing, one could
// make the scheduler SSD-aware (place tasks on the least-loaded machines).
// The paper rejects that as operationally expensive cluster-wide tuning.
// This bench quantifies the trade: storage-aware placement spreads the SAME
// temp data more evenly (lower per-machine peaks) but cannot reduce the
// total byte-hours; checkpointing removes the data itself. Both combined is
// strictly best.
#include <cstdio>

#include "cluster/cluster.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/fleet.h"
#include "bench_util.h"

using namespace phoebe;

int main() {
  bench::Banner("Placement ablation (footnote 1)",
                "SSD-aware placement vs checkpointing vs both, same workload.");

  auto env = bench::MakeEnv(80, 5, 1, /*seed=*/23);
  std::vector<workload::JobInstance> jobs = env.TestDay(0);
  for (auto& job : jobs) job.submit_time *= 6.0 * 3600.0 / 86400.0;  // busy pod

  core::FleetDriver fleet(&env.phoebe->engine(), core::FleetConfig{});
  auto report = fleet.RunDay(jobs, env.StatsForTestDay(0));
  report.status().Check();
  auto cuts = report->AdmittedCuts();

  auto run = [&](cluster::Placement placement, const std::vector<cluster::CutSet>* c) {
    cluster::ClusterConfig cfg;
    cfg.num_machines = 40;
    cfg.placement = placement;
    for (auto& sku : cfg.skus) sku.ssd_gb = 1100.0;
    cluster::ClusterSimulator sim(cfg);
    return sim.SimulateTempUsage(jobs, c);
  };

  struct Row {
    const char* name;
    cluster::Placement placement;
    const std::vector<cluster::CutSet>* cuts;
  };
  const Row rows[] = {
      {"random placement, no checkpoints", cluster::Placement::kRandomSpread, nullptr},
      {"SSD-aware placement only", cluster::Placement::kLeastLoaded, nullptr},
      {"checkpoints only (Phoebe)", cluster::Placement::kRandomSpread, &cuts},
      {"both", cluster::Placement::kLeastLoaded, &cuts},
  };

  TablePrinter table({"policy", "temp TB*h", "worst machine peak", "machines out of SSD %"});
  for (const Row& r : rows) {
    auto rep = run(r.placement, r.cuts);
    double out_frac = 0.0;
    size_t nm = rep.peak_fraction.size();
    for (double f : rep.peak_fraction) out_frac += (f >= 1.0) ? 1.0 : 0.0;
    double worst = 0.0;
    for (double p : rep.peak_bytes) worst = std::max(worst, p);
    table.AddRow({r.name, StrFormat("%.2f", rep.total_byte_seconds / 1e12 / 3600.0),
                  HumanBytes(worst),
                  StrFormat("%.0f", 100.0 * out_frac / static_cast<double>(nm))});
  }
  table.Print();
  std::printf("\nreading: SSD-aware placement levels peaks but leaves total "
              "byte-hours unchanged;\ncheckpointing removes the data (and also "
              "enables fast restart + stats collection),\nwhich is why the "
              "paper chooses it over scheduler changes.\n");
  return 0;
}
