// Section 6.4 overheads: per-job compile-time cost of Phoebe. Paper: metadata
// and model lookup ~15 ms, scoring + optimization ~1.09 s, against several
// minutes of end-to-end job compilation. This repo's in-process substrate has
// no service round-trips, so absolute numbers are far smaller; the breakdown
// (scoring dominates lookup and optimization) is the shape to compare.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"

using namespace phoebe;

namespace {

bench::BenchEnv* Env() {
  static bench::BenchEnv env = bench::MakeEnv(40, 4, 1, /*seed=*/5);
  return &env;
}

const workload::JobInstance* BigJob() {
  const workload::JobInstance* big = nullptr;
  for (const auto& j : Env()->TestDay(0)) {
    if (!big || j.graph.num_stages() > big->graph.num_stages()) big = &j;
  }
  return big;
}

void BM_DecideTempStorage(benchmark::State& state) {
  auto* env = Env();
  const auto* job = BigJob();
  double lookup = 0, scoring = 0, optimize = 0;
  for (auto _ : state) {
    auto d = env->phoebe->Decide(*job, core::Objective::kTempStorage);
    d.status().Check();
    lookup += d->lookup_seconds;
    scoring += d->scoring_seconds;
    optimize += d->optimize_seconds;
    benchmark::DoNotOptimize(d);
  }
  double n = static_cast<double>(state.iterations());
  state.counters["lookup_ms"] = 1e3 * lookup / n;
  state.counters["scoring_ms"] = 1e3 * scoring / n;
  state.counters["optimize_ms"] = 1e3 * optimize / n;
  state.counters["stages"] = static_cast<double>(job->graph.num_stages());
}

void BM_DecideRecovery(benchmark::State& state) {
  auto* env = Env();
  const auto* job = BigJob();
  for (auto _ : state) {
    auto d = env->phoebe->Decide(*job, core::Objective::kRecovery);
    d.status().Check();
    benchmark::DoNotOptimize(d);
  }
}

void BM_ScoreOnly(benchmark::State& state) {
  auto* env = Env();
  const auto* job = BigJob();
  for (auto _ : state) {
    auto costs = env->phoebe->BuildCosts(*job, core::CostSource::kMlStacked);
    costs.status().Check();
    benchmark::DoNotOptimize(costs);
  }
}

void BM_TrainPipeline(benchmark::State& state) {
  auto* env = Env();
  for (auto _ : state) {
    core::PhoebePipeline fresh;
    fresh.Train(env->repo, 0, env->train_days).Check();
    benchmark::DoNotOptimize(fresh);
  }
}

}  // namespace

BENCHMARK(BM_DecideTempStorage)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DecideRecovery)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScoreOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainPipeline)->Unit(benchmark::kMillisecond)->Iterations(2);

BENCHMARK_MAIN();
