// Figure 13: cumulative temp-data saving as a function of the global-storage
// capacity devoted to checkpoints, using the online-knapsack admission policy
// of §5.4. Paper: saving grows with capacity but with decreasing slope (the
// policy admits progressively less cost-effective jobs); band shows the
// 5th/95th confidence across arrival orders.
#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/knapsack.h"
#include "bench_util.h"

using namespace phoebe;

int main() {
  bench::Banner("Figure 13",
                "Cumulative temp saving vs global-storage budget under the "
                "threshold-based online knapsack (5th/95th band over arrival "
                "orders).");

  auto env = bench::MakeEnv(60, 5, 2);
  core::BackTester tester(&env.phoebe->engine(), bench::kMtbfSeconds);

  // Calibration history from test day 0, evaluation stream from test day 1.
  auto make_items = [&](int day) {
    std::vector<core::KnapsackItem> items;
    auto stats = env.StatsForTestDay(day);
    for (const auto& job : env.TestDay(day)) {
      if (job.graph.num_stages() < 2) continue;
      auto cut =
          tester.ChooseCut(job, core::Approach::kMlStacked,
                           core::Objective::kTempStorage, stats);
      cut.status().Check();
      if (cut->cut.empty()) continue;
      // Weight: estimated global bytes; value: realized byte-seconds saved.
      items.push_back(core::KnapsackItem{
          cut->global_bytes,
          core::RealizedTempSaving(job, cut->cut) * job.TempByteSeconds()});
    }
    return items;
  };
  auto history = make_items(0);
  auto stream = make_items(1);
  double total_weight = 0.0, total_value = 0.0;
  for (const auto& it : stream) {
    total_weight += it.weight;
    total_value += it.value;
  }

  TablePrinter table({"budget (frac of demand)", "accepted jobs", "saving %",
                      "p5 %", "p95 %", "threshold pi*"});
  for (double frac : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    double budget = frac * total_weight;
    std::vector<double> savings;
    int64_t accepted = 0;
    double threshold = 0.0;
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
      auto k = core::OnlineKnapsack::Calibrate(budget,
                                               static_cast<double>(stream.size()),
                                               history);
      k.status().Check();
      std::vector<core::KnapsackItem> order = stream;
      rng.Shuffle(&order);
      for (const auto& it : order) k->Offer(it);
      savings.push_back(100.0 * k->accepted_value() / total_value);
      accepted = k->accepted_count();
      threshold = k->threshold();
    }
    table.AddRow({StrFormat("%.2f", frac), StrFormat("%lld", (long long)accepted),
                  StrFormat("%.1f", Median(savings)),
                  StrFormat("%.1f", Quantile(savings, 0.05)),
                  StrFormat("%.1f", Quantile(savings, 0.95)),
                  StrFormat("%.3g", threshold)});
  }
  table.Print();
  std::printf("\nshape check: saving increases with capacity but the marginal "
              "slope decreases (less selective admission), as in the paper.\n");
  return 0;
}
