// Figure 7: accuracy of the stage-type-specific LightGBM-style models on a
// held-out day — execution time (paper R^2 = 0.85), output size (0.91), and
// TTL (0.35, correlation 0.77).
#include <cstdio>
#include <map>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "bench_util.h"
#include "workload/stage_type.h"

using namespace phoebe;

int main() {
  bench::Banner("Figure 7",
                "Held-out-day accuracy of the stage-type-specific GBDT models "
                "(5 training days, 1 test day).");

  auto env = bench::MakeEnv(/*num_templates=*/60, /*train_days=*/5, /*test_days=*/1);
  const auto& jobs = env.TestDay(0);
  auto stats = env.StatsForTestDay(0);

  std::vector<double> et, ep, ot, op, tt, tp, traw;
  std::map<int, std::pair<std::vector<double>, std::vector<double>>> exec_by_type;
  for (const auto& job : jobs) {
    auto exec = env.phoebe->exec_predictor().PredictJob(job, stats);
    auto out = env.phoebe->size_predictor().PredictJob(job, stats);
    auto costs_stacked = env.phoebe->BuildCosts(job, core::CostSource::kMlStacked, stats);
    auto costs_raw = env.phoebe->BuildCosts(job, core::CostSource::kMlSimulator, stats);
    costs_stacked.status().Check();
    costs_raw.status().Check();
    for (size_t i = 0; i < job.graph.num_stages(); ++i) {
      et.push_back(job.truth[i].exec_seconds);
      ep.push_back(exec[i]);
      ot.push_back(job.truth[i].output_bytes);
      op.push_back(out[i]);
      tt.push_back(job.truth[i].ttl);
      tp.push_back(costs_stacked->ttl[i]);
      traw.push_back(costs_raw->ttl[i]);
      int type = job.graph.stage(static_cast<dag::StageId>(i)).stage_type;
      exec_by_type[type].first.push_back(job.truth[i].exec_seconds);
      exec_by_type[type].second.push_back(exec[i]);
    }
  }

  TablePrinter table({"target", "R^2 (measured)", "R^2 (paper)", "corr (measured)"});
  table.AddRow({"stage execution time", StrFormat("%.3f", RSquared(et, ep)), "0.85",
                StrFormat("%.3f", PearsonCorrelation(et, ep))});
  table.AddRow({"stage output size", StrFormat("%.3f", RSquared(ot, op)), "0.91",
                StrFormat("%.3f", PearsonCorrelation(ot, op))});
  table.AddRow({"time-to-live (stacked)", StrFormat("%.3f", RSquared(tt, tp)), "0.35",
                StrFormat("%.3f (paper 0.77)", PearsonCorrelation(tt, tp))});
  table.AddRow({"time-to-live (simulator only)", StrFormat("%.3f", RSquared(tt, traw)),
                "-", StrFormat("%.3f", PearsonCorrelation(tt, traw))});
  table.Print();

  // TTL bias check: the strict-boundary simulator over-estimates TTL (§4.2.2).
  double bias_raw = 0, bias_stacked = 0;
  for (size_t i = 0; i < tt.size(); ++i) {
    bias_raw += traw[i] - tt[i];
    bias_stacked += tp[i] - tt[i];
  }
  std::printf("\nmean TTL bias: simulator %+.1fs, after stacking %+.1fs "
              "(paper: strict boundaries bias the simulator's TTL; the "
              "stacking model shrinks the bias)\n",
              bias_raw / static_cast<double>(tt.size()),
              bias_stacked / static_cast<double>(tt.size()));

  // Per-stage-type view of the exec-time models (the color coding of Fig. 7).
  std::printf("\nper-stage-type execution-time R^2 (types with >= 200 test stages):\n");
  TablePrinter per_type({"stage type", "test stages", "R^2"});
  for (const auto& [type, data] : exec_by_type) {
    if (data.first.size() < 200) continue;
    per_type.AddRow({workload::StageTypeCatalog()[static_cast<size_t>(type)].name,
                     StrFormat("%zu", data.first.size()),
                     StrFormat("%.3f", RSquared(data.first, data.second))});
  }
  per_type.Print();
  return 0;
}
